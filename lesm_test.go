package lesm

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"

	"lesm/internal/synth"
)

func demoCorpus() *Corpus {
	ds := synth.DBLPTitles(synth.TextConfig{NumDocs: 1200, Seed: 1001})
	return ds.Corpus
}

func TestBuildTextHierarchyCATHY(t *testing.T) {
	h, err := BuildTextHierarchy(demoCorpus(), HierarchyOptions{K: 3, Levels: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Root.Children) != 3 {
		t.Fatalf("children = %d", len(h.Root.Children))
	}
}

func TestBuildTextHierarchySTROD(t *testing.T) {
	h, err := BuildTextHierarchy(demoCorpus(), HierarchyOptions{Engine: EngineSTROD, K: 3, Levels: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Root.Children) != 3 {
		t.Fatalf("children = %d", len(h.Root.Children))
	}
}

func TestBuildHierarchyErrors(t *testing.T) {
	if _, err := BuildHierarchy(nil, HierarchyOptions{}); err == nil {
		t.Fatal("nil network should error")
	}
	if _, err := BuildTextHierarchy(NewCorpus(), HierarchyOptions{}); err == nil {
		t.Fatal("empty corpus should error")
	}
	if _, err := TopicalPhrases(demoCorpus(), 1, 0); err == nil {
		t.Fatal("k=1 should error")
	}
}

func TestAttachPhrasesAndRoles(t *testing.T) {
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: 1000, NumAuthors: 250, Seed: 1002})
	net := ds.CollapsedNetwork(0)
	h, err := BuildHierarchy(net, HierarchyOptions{K: 3, Levels: 2, LearnLinkWeights: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	an, err := AttachPhrases(ds.Corpus, ds.Docs, h, PhraseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	withPhrases := 0
	h.Root.Walk(func(n *TopicNode) {
		if n.Parent() != nil && len(n.Phrases) > 0 {
			withPhrases++
		}
	})
	if withPhrases == 0 {
		t.Fatal("no topics got phrases")
	}
	top := an.RankEntities(1, h.Root.Children[0].Path, 0, 5)
	if len(top) == 0 {
		t.Fatal("no ranked entities")
	}
}

func TestTopicalPhrasesFlat(t *testing.T) {
	topics, err := TopicalPhrases(demoCorpus(), 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(topics) != 4 {
		t.Fatalf("topics = %d", len(topics))
	}
	multi := false
	for _, ps := range topics {
		for _, p := range ps {
			if strings.Contains(p.Display, " ") {
				multi = true
			}
		}
	}
	if !multi {
		t.Fatal("no multiword phrases")
	}
}

func TestMineAdvisorTree(t *testing.T) {
	g := synth.NewGenealogy(synth.GenealogyConfig{Seed: 1003})
	papers := make([]RelPaper, len(g.Papers))
	for i, p := range g.Papers {
		papers[i] = RelPaper{Year: p.Year, Authors: p.Authors, Venue: p.Venue}
	}
	res, err := MineAdvisorTree(papers, g.NumAuthors, 6)
	if err != nil {
		t.Fatal(err)
	}
	hit, n := 0, 0
	for a, adv := range g.AdvisorOf {
		if adv < 0 {
			continue
		}
		n++
		if got, _ := res.Advisor(a); got == adv {
			hit++
		}
	}
	if acc := float64(hit) / float64(n); acc < 0.6 {
		t.Fatalf("accuracy = %v", acc)
	}
	// Candidates accessor sane.
	for a := range g.AdvisorOf {
		for _, c := range res.Candidates(a) {
			if c.Rank < 0 || c.Start > c.End {
				t.Fatalf("bad candidate %+v", c)
			}
		}
	}
}

func TestMineAdvisorTreeSupervised(t *testing.T) {
	g := synth.NewGenealogy(synth.GenealogyConfig{Seed: 1004})
	papers := make([]RelPaper, len(g.Papers))
	for i, p := range g.Papers {
		papers[i] = RelPaper{Year: p.Year, Authors: p.Authors, Venue: p.Venue}
	}
	var train []int
	for a, adv := range g.AdvisorOf {
		if adv >= 0 && a%2 == 0 {
			train = append(train, a)
		}
	}
	res, err := MineAdvisorTreeSupervised(papers, g.NumAuthors, g.AdvisorOf, train, 7)
	if err != nil {
		t.Fatal(err)
	}
	hit, n := 0, 0
	for a, adv := range g.AdvisorOf {
		if adv < 0 || a%2 == 0 {
			continue
		}
		n++
		if got, _ := res.Advisor(a); got == adv {
			hit++
		}
	}
	if acc := float64(hit) / float64(n); acc < 0.6 {
		t.Fatalf("supervised accuracy = %v", acc)
	}
}

func TestInferTopics(t *testing.T) {
	ds := synth.Arxiv(synth.TextConfig{NumDocs: 1500, Seed: 1005})
	m, err := InferTopics(ds.Corpus, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Phi) != 5 {
		t.Fatalf("topics = %d", len(m.Phi))
	}
	words := m.TopWords(ds.Corpus.Vocab, 0, 5)
	if len(words) != 5 || words[0] == "" {
		t.Fatalf("top words = %v", words)
	}
}

// --- Persistence & serving (PR 3) ---

func TestTopWordsClampsToVocabulary(t *testing.T) {
	// A model whose word axis is longer than the vocabulary (e.g. a model
	// fit on a larger corpus queried through a trimmed vocabulary) must
	// clamp instead of panicking in Vocabulary.Word.
	v := NewCorpus().Vocab
	v.Add("alpha")
	v.Add("beta")
	m := &TopicModel{Phi: [][]float64{{0.1, 0.5, 0.3, 0.05, 0.05}}}
	words := m.TopWords(v, 0, 5)
	if len(words) != 2 {
		t.Fatalf("clamped words = %v, want 2 entries", words)
	}
	// Highest-probability renderable word first (id 1 = "beta").
	if words[0] != "beta" || words[1] != "alpha" {
		t.Fatalf("words = %v", words)
	}
	if got := m.TopWords(v, 0, 0); got != nil {
		t.Fatalf("n=0 gave %v", got)
	}
}

func TestInferTopicsGibbsExportsCounts(t *testing.T) {
	corpus := demoCorpus()
	m, err := InferTopicsGibbs(corpus, 4, 21)
	if err != nil {
		t.Fatal(err)
	}
	if m.NKV == nil || m.NK == nil || m.Beta <= 0 {
		t.Fatal("Gibbs model missing fold-in sufficient statistics")
	}
	if len(m.Phi) != 4 || len(m.Weight) != 4 {
		t.Fatalf("shape: phi=%d weight=%d", len(m.Phi), len(m.Weight))
	}
	if words := m.TopWords(corpus.Vocab, 0, 5); len(words) != 5 {
		t.Fatalf("top words = %v", words)
	}
}

// fullArtifact fits every artifact type on small synthetic data.
func fullArtifact(t *testing.T) *Artifact {
	t.Helper()
	corpus := demoCorpus()
	h, err := BuildTextHierarchy(corpus, HierarchyOptions{K: 3, Levels: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AttachPhrases(corpus, nil, h, PhraseOptions{TopN: 6}); err != nil {
		t.Fatal(err)
	}
	topics, err := InferTopicsGibbs(corpus, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	g := synth.NewGenealogy(synth.GenealogyConfig{Seed: 1003})
	papers := make([]RelPaper, len(g.Papers))
	for i, p := range g.Papers {
		papers[i] = RelPaper{Year: p.Year, Authors: p.Authors, Venue: p.Venue}
	}
	adv, err := MineAdvisorTree(papers, g.NumAuthors, 6)
	if err != nil {
		t.Fatal(err)
	}
	return &Artifact{
		Hierarchy:   h,
		Topics:      topics,
		Vocab:       corpus.Vocab,
		Corpus:      NewCorpusMeta(corpus),
		RolePhrases: RolePhrasesOf(h),
		Advisor:     adv,
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	a := fullArtifact(t)
	dir := t.TempDir()
	p1, p2 := dir+"/m1.lesm", dir+"/m2.lesm"
	if err := Save(p1, a); err != nil {
		t.Fatal(err)
	}
	got, err := Load(p1)
	if err != nil {
		t.Fatal(err)
	}
	// Save(Load(Save(a))) must be byte-identical to Save(a).
	if err := Save(p2, got); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("re-saved snapshot differs: %d vs %d bytes", len(b1), len(b2))
	}
	// Restored content answers the same queries.
	if got.Vocab.Size() != a.Vocab.Size() {
		t.Fatalf("vocab size %d != %d", got.Vocab.Size(), a.Vocab.Size())
	}
	if got.Hierarchy.Root.Size() != a.Hierarchy.Root.Size() {
		t.Fatalf("hierarchy size changed")
	}
	if !reflect.DeepEqual(got.Topics, a.Topics) {
		t.Fatal("topic model changed across round-trip")
	}
	if len(got.RolePhrases) != len(a.RolePhrases) {
		t.Fatal("role phrases changed")
	}
	wantAdv, wantScore := a.Advisor.Advisor(5)
	gotAdv, gotScore := got.Advisor.Advisor(5)
	if wantAdv != gotAdv || wantScore != gotScore {
		t.Fatalf("advisor answer changed: %d/%v vs %d/%v", gotAdv, gotScore, wantAdv, wantScore)
	}
	if !reflect.DeepEqual(got.Sections(), a.Sections()) || len(a.Sections()) != 6 {
		t.Fatalf("sections = %v vs %v", got.Sections(), a.Sections())
	}
}

// TestArtifactSearchIndex pins the public index accessor: lazily built,
// cached, deterministic per content, and answering exact + fuzzy lookups
// over the artifact's names.
func TestArtifactSearchIndex(t *testing.T) {
	a := fullArtifact(t)
	ix := a.SearchIndex()
	if ix == nil || ix.Entries() == 0 {
		t.Fatal("empty search index for a full artifact")
	}
	if a.SearchIndex() != ix {
		t.Fatal("accessor rebuilt the index instead of caching it")
	}
	// A vocabulary word resolves exactly and under one edit.
	word := a.Vocab.Word(0)
	h, ok := ix.Resolve(word, SearchWord)
	if !ok || h.ID != 0 {
		t.Fatalf("Resolve(%q) = %+v, %v", word, h, ok)
	}
	if hits := ix.Search(word+"x", 3); len(hits) == 0 {
		t.Fatalf("fuzzy search for %q found nothing", word+"x")
	}
	// Loading the same snapshot yields a bit-identical index.
	dir := t.TempDir()
	if err := Save(dir+"/m.lesm", a); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir + "/m.lesm")
	if err != nil {
		t.Fatal(err)
	}
	if got.SearchIndex().Checksum() != ix.Checksum() {
		t.Fatal("search index differs across a save/load round-trip")
	}
}

func TestArtifactInferDeterministicAcrossP(t *testing.T) {
	corpus := demoCorpus()
	topics, err := InferTopicsGibbs(corpus, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	a := &Artifact{Topics: topics, Vocab: corpus.Vocab}
	docs := make([][]int, 60)
	for i := range docs {
		docs[i] = []int{i % corpus.Vocab.Size(), (3 * i) % corpus.Vocab.Size()}
	}
	base, err := a.Infer(docs, 13, RunOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := a.Infer(docs, 13, RunOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, par) {
		t.Fatal("fold-in differs across parallelism")
	}
	// Text-level inference drops unknown words and still normalizes.
	theta, err := a.InferText([]string{"database query processing", "entirely unknown words"}, DefaultPipeline, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range theta {
		sum := 0.0
		for _, v := range th {
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("theta not normalized: %v", th)
		}
	}
	// No topics section -> typed error.
	if _, err := (&Artifact{Vocab: corpus.Vocab}).Infer(docs, 1); err == nil {
		t.Fatal("inference without topics should error")
	}
}

func TestLoadRejectsCorruptFile(t *testing.T) {
	a := fullArtifact(t)
	path := t.TempDir() + "/m.lesm"
	if err := Save(path, a); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0x55
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("corrupted snapshot accepted")
	}
}

// TestLoadMappedMatchesLoad: the zero-copy mmap load must answer the same
// queries as the heap load and produce identical fold-in results; the
// mapping stays usable until the closer is released.
func TestLoadMappedMatchesLoad(t *testing.T) {
	a := fullArtifact(t)
	path := t.TempDir() + "/m.lesm"
	if err := Save(path, a); err != nil {
		t.Fatal(err)
	}
	heap, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, closer, err := LoadMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if !reflect.DeepEqual(mapped.Topics, heap.Topics) {
		t.Fatal("mapped topic model differs from heap load")
	}
	if mapped.Vocab.Size() != heap.Vocab.Size() || mapped.Hierarchy.Root.Size() != heap.Hierarchy.Root.Size() {
		t.Fatal("mapped structure differs from heap load")
	}
	docs := [][]int{{0, 1, 2, 3}, {4, 5}}
	want, err := heap.Infer(docs, 9)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mapped.Infer(docs, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("mapped fold-in differs from heap fold-in")
	}
	// Corruption is caught at open, exactly like Load.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0x55
	bad := t.TempDir() + "/bad.lesm"
	if err := os.WriteFile(bad, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadMapped(bad); err == nil {
		t.Fatal("corrupted snapshot accepted by LoadMapped")
	}
}
