package lesm

import (
	"strings"
	"testing"

	"lesm/internal/synth"
)

func demoCorpus() *Corpus {
	ds := synth.DBLPTitles(synth.TextConfig{NumDocs: 1200, Seed: 1001})
	return ds.Corpus
}

func TestBuildTextHierarchyCATHY(t *testing.T) {
	h, err := BuildTextHierarchy(demoCorpus(), HierarchyOptions{K: 3, Levels: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Root.Children) != 3 {
		t.Fatalf("children = %d", len(h.Root.Children))
	}
}

func TestBuildTextHierarchySTROD(t *testing.T) {
	h, err := BuildTextHierarchy(demoCorpus(), HierarchyOptions{Engine: EngineSTROD, K: 3, Levels: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Root.Children) != 3 {
		t.Fatalf("children = %d", len(h.Root.Children))
	}
}

func TestBuildHierarchyErrors(t *testing.T) {
	if _, err := BuildHierarchy(nil, HierarchyOptions{}); err == nil {
		t.Fatal("nil network should error")
	}
	if _, err := BuildTextHierarchy(NewCorpus(), HierarchyOptions{}); err == nil {
		t.Fatal("empty corpus should error")
	}
	if _, err := TopicalPhrases(demoCorpus(), 1, 0); err == nil {
		t.Fatal("k=1 should error")
	}
}

func TestAttachPhrasesAndRoles(t *testing.T) {
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: 1000, NumAuthors: 250, Seed: 1002})
	net := ds.CollapsedNetwork(0)
	h, err := BuildHierarchy(net, HierarchyOptions{K: 3, Levels: 2, LearnLinkWeights: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	an, err := AttachPhrases(ds.Corpus, ds.Docs, h, PhraseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	withPhrases := 0
	h.Root.Walk(func(n *TopicNode) {
		if n.Parent() != nil && len(n.Phrases) > 0 {
			withPhrases++
		}
	})
	if withPhrases == 0 {
		t.Fatal("no topics got phrases")
	}
	top := an.RankEntities(1, h.Root.Children[0].Path, 0, 5)
	if len(top) == 0 {
		t.Fatal("no ranked entities")
	}
}

func TestTopicalPhrasesFlat(t *testing.T) {
	topics, err := TopicalPhrases(demoCorpus(), 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(topics) != 4 {
		t.Fatalf("topics = %d", len(topics))
	}
	multi := false
	for _, ps := range topics {
		for _, p := range ps {
			if strings.Contains(p.Display, " ") {
				multi = true
			}
		}
	}
	if !multi {
		t.Fatal("no multiword phrases")
	}
}

func TestMineAdvisorTree(t *testing.T) {
	g := synth.NewGenealogy(synth.GenealogyConfig{Seed: 1003})
	papers := make([]RelPaper, len(g.Papers))
	for i, p := range g.Papers {
		papers[i] = RelPaper{Year: p.Year, Authors: p.Authors, Venue: p.Venue}
	}
	res, err := MineAdvisorTree(papers, g.NumAuthors, 6)
	if err != nil {
		t.Fatal(err)
	}
	hit, n := 0, 0
	for a, adv := range g.AdvisorOf {
		if adv < 0 {
			continue
		}
		n++
		if got, _ := res.Advisor(a); got == adv {
			hit++
		}
	}
	if acc := float64(hit) / float64(n); acc < 0.6 {
		t.Fatalf("accuracy = %v", acc)
	}
	// Candidates accessor sane.
	for a := range g.AdvisorOf {
		for _, c := range res.Candidates(a) {
			if c.Rank < 0 || c.Start > c.End {
				t.Fatalf("bad candidate %+v", c)
			}
		}
	}
}

func TestMineAdvisorTreeSupervised(t *testing.T) {
	g := synth.NewGenealogy(synth.GenealogyConfig{Seed: 1004})
	papers := make([]RelPaper, len(g.Papers))
	for i, p := range g.Papers {
		papers[i] = RelPaper{Year: p.Year, Authors: p.Authors, Venue: p.Venue}
	}
	var train []int
	for a, adv := range g.AdvisorOf {
		if adv >= 0 && a%2 == 0 {
			train = append(train, a)
		}
	}
	res, err := MineAdvisorTreeSupervised(papers, g.NumAuthors, g.AdvisorOf, train, 7)
	if err != nil {
		t.Fatal(err)
	}
	hit, n := 0, 0
	for a, adv := range g.AdvisorOf {
		if adv < 0 || a%2 == 0 {
			continue
		}
		n++
		if got, _ := res.Advisor(a); got == adv {
			hit++
		}
	}
	if acc := float64(hit) / float64(n); acc < 0.6 {
		t.Fatalf("supervised accuracy = %v", acc)
	}
}

func TestInferTopics(t *testing.T) {
	ds := synth.Arxiv(synth.TextConfig{NumDocs: 1500, Seed: 1005})
	m, err := InferTopics(ds.Corpus, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Phi) != 5 {
		t.Fatalf("topics = %d", len(m.Phi))
	}
	words := m.TopWords(ds.Corpus.Vocab, 0, 5)
	if len(words) != 5 || words[0] == "" {
		t.Fatalf("top words = %v", words)
	}
}
