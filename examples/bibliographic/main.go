// Bibliographic analysis: the paper's flagship scenario. Build an
// entity-enriched topical hierarchy from a DBLP-style network (papers,
// authors, venues), then answer Chapter 5 role questions: what does a given
// author work on, and who are the key authors of each subtopic?
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"lesm"
	"lesm/internal/synth"
)

func main() {
	par := flag.Int("p", 0, "parallel workers for the mining engines (0 = GOMAXPROCS)")
	flag.Parse()

	ds := synth.DBLP(synth.DBLPConfig{NumPapers: 3000, NumAuthors: 800, Seed: 21})

	// Collapsed heterogeneous network (Example 3.1): term/author/venue nodes.
	net := ds.CollapsedNetwork(0)
	h, err := lesm.BuildHierarchy(net, lesm.HierarchyOptions{
		K: 3, Levels: 2, LearnLinkWeights: true, Seed: 5, Parallelism: *par,
	})
	if err != nil {
		log.Fatal(err)
	}
	analyzer, err := lesm.AttachPhrases(ds.Corpus, ds.Docs, h, lesm.PhraseOptions{TopN: 10, Parallelism: *par})
	if err != nil {
		log.Fatal(err)
	}
	analyzer.Names = ds.Names

	fmt.Println("Hierarchy:")
	fmt.Print(h.String())

	// Type-B question: who plays the most important roles in topic o/1?
	const authorType = lesm.TypeID(1)
	topic := h.Root.Children[0]
	fmt.Printf("\nTop authors of %s (popularity + purity):\n", topic.Path)
	for _, e := range analyzer.RankEntities(authorType, topic.Path, lesm.ERankPopPur, 5) {
		fmt.Printf("  %-22s %.4f\n", e.Display, e.Score)
	}

	// Type-A question: what is that author's role in the topic?
	top := analyzer.RankEntities(authorType, topic.Path, lesm.ERankPop, 1)
	if len(top) > 0 {
		a := top[0]
		fmt.Printf("\n%s's role in %s (entity-specific phrases):\n", a.Display, topic.Path)
		var phrases []string
		for _, p := range analyzer.EntityPhrases(authorType, a.ID, topic.Path, 0.5, 6) {
			phrases = append(phrases, p.Display)
		}
		fmt.Println("  " + strings.Join(phrases, " / "))
		// Distribution over subtopics.
		fmt.Printf("\n%s's estimated papers per subtopic:\n", a.Display)
		for _, c := range topic.Children {
			ef := analyzer.EntityFrequency(authorType, c.Path)
			fmt.Printf("  %-8s %.1f  (%s)\n", c.Path, ef[a.ID], strings.Join(c.TopPhrases(3), "; "))
		}
	}
}
