// Big-corpus topic discovery: compare the moment-based STROD engine
// (Chapter 7) against collapsed Gibbs sampling on the same corpus — same
// topics, a fraction of the time, and identical output across seeds.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"lesm"
	"lesm/internal/synth"
)

func main() {
	par := flag.Int("p", 0, "parallel workers for the mining engines (0 = GOMAXPROCS)")
	flag.Parse()

	ds := synth.Arxiv(synth.TextConfig{NumDocs: 6000, Seed: 55})
	fmt.Printf("corpus: %d docs, %d vocabulary, %d tokens\n",
		len(ds.Corpus.Docs), ds.Corpus.Vocab.Size(), ds.Corpus.TotalTokens())

	start := time.Now()
	m, err := lesm.InferTopics(ds.Corpus, 5, 1, lesm.RunOptions{Parallelism: *par})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("STROD: %v\n", time.Since(start).Round(time.Millisecond))
	for k := range m.Phi {
		fmt.Printf("  topic %d (w=%.2f): %v\n", k+1, m.Weight[k], m.TopWords(ds.Corpus.Vocab, k, 6))
	}

	// Robustness: a different seed gives the same topics.
	m2, err := lesm.InferTopics(ds.Corpus, 5, 999, lesm.RunOptions{Parallelism: *par})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsame corpus, different seed:")
	for k := range m2.Phi {
		fmt.Printf("  topic %d: %v\n", k+1, m2.TopWords(ds.Corpus.Vocab, k, 6))
	}

	// STROD also builds hierarchies (LDA with a topic tree, Section 7.2).
	h, err := lesm.BuildTextHierarchy(ds.Corpus, lesm.HierarchyOptions{
		Engine: lesm.EngineSTROD, K: 5, Levels: 1, Seed: 3, Parallelism: *par,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := lesm.AttachPhrases(ds.Corpus, nil, h, lesm.PhraseOptions{TopN: 5, Parallelism: *par}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSTROD hierarchy with phrases:")
	fmt.Print(h.String())
}
