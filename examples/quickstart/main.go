// Quickstart: build a phrase-represented topical hierarchy from a small
// synthetic computer-science title corpus and print it.
package main

import (
	"flag"
	"fmt"
	"log"

	"lesm"
	"lesm/internal/synth"
)

func main() {
	par := flag.Int("p", 0, "parallel workers for the mining engines (0 = GOMAXPROCS)")
	flag.Parse()

	// A corpus of ~2000 synthetic CS paper titles (stands in for DBLP).
	ds := synth.DBLPTitles(synth.TextConfig{NumDocs: 2000, Seed: 42})
	corpus := ds.Corpus

	// Build a 2-level hierarchy with the CATHY engine, 3 children per node.
	h, err := lesm.BuildTextHierarchy(corpus, lesm.HierarchyOptions{K: 3, Levels: 2, Seed: 7, Parallelism: *par})
	if err != nil {
		log.Fatal(err)
	}

	// Attach ranked topical phrases (ToPMine) to every topic.
	if _, err := lesm.AttachPhrases(corpus, nil, h, lesm.PhraseOptions{TopN: 6, Parallelism: *par}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Topical hierarchy (top phrases per topic):")
	fmt.Print(h.String())

	// Flat topical phrases via the full ToPMine pipeline.
	topics, err := lesm.TopicalPhrases(corpus, 4, 11, lesm.RunOptions{Parallelism: *par})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFlat ToPMine topics:")
	for t, ps := range topics {
		fmt.Printf("topic %d:", t+1)
		for i, p := range ps {
			if i == 5 {
				break
			}
			fmt.Printf(" [%s]", p.Display)
		}
		fmt.Println()
	}
}
