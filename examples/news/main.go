// News analysis: mine a topical hierarchy from a news collection with
// person and location entities (the paper's NEWS dataset scenario), showing
// how heterogeneous links sharpen noisy text topics.
package main

import (
	"flag"
	"fmt"
	"log"

	"lesm"
	"lesm/internal/synth"
)

func main() {
	par := flag.Int("p", 0, "parallel workers for the mining engines (0 = GOMAXPROCS)")
	flag.Parse()

	ds := synth.News(synth.NewsConfig{NumArticles: 3000, Seed: 33, Stories: 8})
	net := ds.CollapsedNetwork(0)

	h, err := lesm.BuildHierarchy(net, lesm.HierarchyOptions{
		K: 4, Levels: 2, LearnLinkWeights: true, Seed: 9, Parallelism: *par,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := lesm.AttachPhrases(ds.Corpus, ds.Docs, h, lesm.PhraseOptions{TopN: 8, Parallelism: *par}); err != nil {
		log.Fatal(err)
	}

	const personType, locationType = lesm.TypeID(1), lesm.TypeID(2)
	fmt.Println("News topic hierarchy with entities:")
	h.Root.Walk(func(n *lesm.TopicNode) {
		if n.Parent() == nil {
			return
		}
		fmt.Printf("%s\n  phrases:   %v\n", n.Path, n.TopPhrases(5))
		// Entities ranked by the topic's own distributions.
		printTop := func(label string, x lesm.TypeID) {
			phi := n.Phi[x]
			best, second := -1, -1
			for i, p := range phi {
				if best < 0 || p > phi[best] {
					second = best
					best = i
				} else if second < 0 || p > phi[second] {
					second = i
				}
			}
			if best >= 0 && second >= 0 {
				fmt.Printf("  %s: %s, %s\n", label, ds.Names[x][best], ds.Names[x][second])
			}
		}
		printTop("persons  ", personType)
		printTop("locations", locationType)
	})
}
