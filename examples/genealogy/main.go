// Genealogy mining: recover the advisor-advisee forest from a temporal
// collaboration network with TPFG (Chapter 6.1), then improve it with the
// supervised relational CRF (Chapter 6.2) using a handful of labels.
package main

import (
	"flag"
	"fmt"
	"log"

	"lesm"
	"lesm/internal/synth"
)

func main() {
	par := flag.Int("p", 0, "parallel workers for TPFG message passing and CRF training (0 = GOMAXPROCS)")
	flag.Parse()

	g := synth.NewGenealogy(synth.GenealogyConfig{Seed: 77})
	papers := make([]lesm.RelPaper, len(g.Papers))
	for i, p := range g.Papers {
		papers[i] = lesm.RelPaper{Year: p.Year, Authors: p.Authors, Venue: p.Venue}
	}
	fmt.Printf("collaboration network: %d authors, %d papers, %d with known advisors\n",
		g.NumAuthors, len(g.Papers), g.NumAdvised())

	// Unsupervised TPFG.
	res, err := lesm.MineAdvisorTree(papers, g.NumAuthors, 1, lesm.RunOptions{Parallelism: *par})
	if err != nil {
		log.Fatal(err)
	}
	acc := accuracy(res, g, nil)
	fmt.Printf("TPFG accuracy: %.3f\n", acc)

	// Show one inferred relation with its interval.
	for a, adv := range g.AdvisorOf {
		if adv < 0 {
			continue
		}
		got, score := res.Advisor(a)
		if got == adv {
			for _, c := range res.Candidates(a) {
				if c.Advisor == got {
					fmt.Printf("example: %s advised by %s (%.2f, [%d-%d]; truth [%d-%d])\n",
						g.AuthorNames[a], g.AuthorNames[adv], score, c.Start, c.End,
						g.AdviseStart[a], g.AdviseEnd[a])
				}
			}
			break
		}
	}

	// Supervised CRF with 30% labels.
	var train []int
	skip := map[int]bool{}
	for a, adv := range g.AdvisorOf {
		if adv >= 0 && a%3 == 0 {
			train = append(train, a)
			skip[a] = true
		}
	}
	sup, err := lesm.MineAdvisorTreeSupervised(papers, g.NumAuthors, g.AdvisorOf, train, 2,
		lesm.RunOptions{Parallelism: *par})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CRF accuracy on unlabeled authors: %.3f\n", accuracy(sup, g, skip))
}

func accuracy(res *lesm.AdvisorResult, g *synth.Genealogy, skip map[int]bool) float64 {
	hit, n := 0, 0
	for a, adv := range g.AdvisorOf {
		if adv < 0 || (skip != nil && skip[a]) {
			continue
		}
		n++
		if got, _ := res.Advisor(a); got == adv {
			hit++
		}
	}
	return float64(hit) / float64(n)
}
