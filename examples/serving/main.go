// Serving: the full fit → Save → lesmd → HTTP query loop in one process.
//
// The example fits a hierarchy, topical phrases and a Gibbs topic model on
// the quickstart corpus, persists everything as a model snapshot, loads
// the snapshot into the serving layer (the same code path cmd/lesmd
// runs), and queries it over real HTTP: top words, hierarchy nodes,
// phrase search, and deterministic fold-in inference for unseen titles.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"lesm"
	"lesm/internal/serve"
	"lesm/internal/store"
	"lesm/internal/synth"
)

func main() {
	par := flag.Int("p", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.Parse()

	// --- Fit (the batch side) ---
	ds := synth.DBLPTitles(synth.TextConfig{NumDocs: 2000, Seed: 42})
	corpus := ds.Corpus
	h, err := lesm.BuildTextHierarchy(corpus, lesm.HierarchyOptions{K: 3, Levels: 2, Seed: 7, Parallelism: *par})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := lesm.AttachPhrases(corpus, nil, h, lesm.PhraseOptions{TopN: 6, Parallelism: *par}); err != nil {
		log.Fatal(err)
	}
	topics, err := lesm.InferTopicsGibbs(corpus, 4, 11, lesm.RunOptions{Parallelism: *par})
	if err != nil {
		log.Fatal(err)
	}

	// --- Save (the snapshot store) ---
	dir, err := os.MkdirTemp("", "lesm-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.lesm")
	if err := lesm.Save(path, &lesm.Artifact{
		Hierarchy:   h,
		Topics:      topics,
		Vocab:       corpus.Vocab,
		Corpus:      lesm.NewCorpusMeta(corpus),
		RolePhrases: lesm.RolePhrasesOf(h),
	}); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("snapshot: %s (%d KiB)\n", path, info.Size()/1024)

	// --- Serve (what `lesmd -snapshot model.lesm` does) ---
	snap, err := store.Read(path)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.New(snap, serve.Options{P: *par})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("lesmd serving on %s\n\n", base)

	// --- Query over HTTP ---
	show := func(label, url string) {
		resp, err := http.Get(url)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("%s\n  GET %s\n  %s\n", label, url[len(base):], bytes.TrimSpace(body))
	}
	show("health:", base+"/healthz")
	show("topic 0 top words:", base+"/topics/0/top-words?n=5")
	show("hierarchy node o/1:", base+"/hierarchy/node/o/1")
	show("phrase search:", base+"/phrases/search?q=mining&limit=3")

	// Fold-in inference: encode two unseen titles and POST them twice —
	// identical (seed, doc) must give identical distributions.
	req, _ := json.Marshal(map[string]any{
		"seed": 7,
		"docs": [][]string{
			{"database", "query", "optimization"},
			{"neural", "network", "training"},
		},
	})
	var bodies [2][]byte
	for i := range bodies {
		resp, err := http.Post(base+"/infer", "application/json", bytes.NewReader(req))
		if err != nil {
			log.Fatal(err)
		}
		bodies[i], _ = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	fmt.Printf("fold-in inference:\n  POST /infer\n  %s\n", bytes.TrimSpace(bodies[0]))
	if !bytes.Equal(bodies[0], bodies[1]) {
		log.Fatal("determinism violated: identical requests gave different theta")
	}
	fmt.Println("  repeated request byte-identical: deterministic ✓")
}
