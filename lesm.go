// Package lesm is the public API of the latent entity structure mining
// framework — a Go reproduction of "Mining latent entity structures from
// massive unstructured and interconnected data" (Chi Wang, 2014).
//
// The framework solves and integrates a chain of tasks over text-attached
// heterogeneous information networks:
//
//   - hierarchical topic and community discovery (CATHY / CATHYHIN, Ch. 3,
//     and the moment-based STROD engine, Ch. 7);
//   - topical phrase mining (KERT and ToPMine, Ch. 4);
//   - entity topical role analysis (Ch. 5);
//   - hierarchical relation mining (TPFG and a supervised relational CRF,
//     Ch. 6).
//
// A typical flow: build a Corpus (and optionally per-document entity
// attachments), construct a collapsed Network, call BuildHierarchy, attach
// phrases with AttachPhrases, then explore with a RoleAnalyzer. See the
// runnable programs under examples/ for end-to-end usage.
package lesm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"lesm/internal/cathy"
	"lesm/internal/core"
	"lesm/internal/hin"
	"lesm/internal/lda"
	"lesm/internal/linalg"
	"lesm/internal/obs"
	"lesm/internal/par"
	"lesm/internal/relcrf"
	"lesm/internal/roles"
	"lesm/internal/search"
	"lesm/internal/store"
	"lesm/internal/strod"
	"lesm/internal/textkit"
	"lesm/internal/topmine"
	"lesm/internal/tpfg"
)

// Re-exported core types. External importers use these names; the internal
// packages stay private.
type (
	// Corpus is an id-encoded document collection with its vocabulary.
	Corpus = textkit.Corpus
	// Pipeline configures text preprocessing (stopwords, Porter stemming).
	Pipeline = textkit.Pipeline
	// Vocabulary maps words to dense ids and back.
	Vocabulary = textkit.Vocabulary
	// Hierarchy is a phrase-represented, entity-enriched topical hierarchy.
	Hierarchy = core.Hierarchy
	// TopicNode is one topic in a hierarchy.
	TopicNode = core.TopicNode
	// TypeID identifies a node type (TermType = 0 is the word type).
	TypeID = core.TypeID
	// RankedPhrase is a scored phrase attached to a topic.
	RankedPhrase = core.RankedPhrase
	// RankedEntity is a scored entity attached to a topic.
	RankedEntity = core.RankedEntity
	// Network is an edge-weighted network with typed nodes.
	Network = hin.Network
	// DocRecord carries one document's term ids and entity attachments.
	DocRecord = hin.DocRecord
	// RoleAnalyzer answers the Chapter 5 role questions.
	RoleAnalyzer = roles.Analyzer
)

// TermType is the node type holding vocabulary terms.
const TermType = core.TermType

// Entity ranking modes for RoleAnalyzer.RankEntities (Section 5.2).
const (
	// ERankPop ranks entities by popularity p(e|t) alone.
	ERankPop = roles.ERankPop
	// ERankPopPur combines popularity with purity against sibling topics.
	ERankPopPur = roles.ERankPopPur
)

// DefaultPipeline removes stopwords and keeps tokens of length >= 2.
var DefaultPipeline = textkit.DefaultPipeline

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus { return textkit.NewCorpus() }

// BuildCollapsedNetwork converts documents with attached entities into the
// collapsed heterogeneous network of Example 3.1. typeNames[0] must be
// "term" and numNodes[0] the vocabulary size.
func BuildCollapsedNetwork(typeNames []string, numNodes []int, docs []DocRecord) *Network {
	return hin.BuildCollapsed(typeNames, numNodes, docs, hin.BuildOptions{})
}

// Engine selects the hierarchy construction algorithm.
type Engine int

const (
	// EngineCATHY uses the recursive Poisson link-clustering EM of Ch. 3
	// (CATHYHIN on heterogeneous networks).
	EngineCATHY Engine = iota
	// EngineSTROD uses the moment-based tensor decomposition of Ch. 7
	// (text only; fast and robust to restarts).
	EngineSTROD
)

// Sampler selects the collapsed-Gibbs sampling core for Gibbs-backed
// entry points (InferTopicsGibbs, Artifact.Infer/InferText). All cores
// are deterministic at any parallelism level; they follow different
// trajectories.
type Sampler = lda.Sampler

const (
	// SamplerAuto (the default) resolves per workload: dense below the
	// topic/vocabulary thresholds where the constant factors dominate, MH
	// above them. The resolved core is recorded on the fitted model.
	SamplerAuto = lda.SamplerAuto
	// SamplerSparse is the bucket-decomposed sparse core with Walker alias
	// tables: O(K_d) amortized per token instead of O(K), at an O(K·V)
	// table rebuild every sweep.
	SamplerSparse = lda.SamplerSparse
	// SamplerMH is the Metropolis–Hastings core: LightLDA-style alias
	// proposals from stale tables with an exact acceptance correction,
	// amortizing the O(K·V) rebuild over RunOptions.AliasRefresh sweeps.
	SamplerMH = lda.SamplerMH
	// SamplerDense is the classic O(K)-per-token core, kept for A/B
	// validation of the others.
	SamplerDense = lda.SamplerDense
)

// --- Fit-side observability ---

type (
	// Recorder receives per-sweep sampler statistics and parallel-pool
	// telemetry from instrumented entry points (RunOptions.Recorder,
	// HierarchyOptions.Recorder). Implementations must be safe for
	// concurrent use. Recording is strictly observational: fitted models
	// are bit-identical with or without a recorder attached.
	Recorder = obs.Recorder
	// SweepStats is one completed sampler sweep (throughput, changed
	// fraction, MH accept rates, alias rebuilds, merge costs, optional
	// convergence probe).
	SweepStats = obs.SweepStats
	// PoolStats is one parallel pass (chunk wait/exec latencies).
	PoolStats = obs.PoolStats
	// TraceRecorder writes one JSON object per event (JSONL).
	TraceRecorder = obs.Trace
	// ProgressRecorder maintains a live one-line terminal status.
	ProgressRecorder = obs.Progress
)

// NewTraceRecorder returns a Recorder writing JSONL events to w. Close
// it when the run ends: a mid-fit cancellation unwinding through a
// deferred Close still leaves a complete, parseable file. If w is an
// io.Closer, Close closes it after flushing.
func NewTraceRecorder(w io.Writer) *TraceRecorder { return obs.NewTrace(w) }

// NewProgressRecorder returns a Recorder painting a live status line to
// w (typically os.Stderr). Call Done when the run ends to terminate the
// line with a newline.
func NewProgressRecorder(w io.Writer) *ProgressRecorder { return obs.NewProgress(w) }

// MultiRecorder fans events out to several recorders, skipping nils; it
// returns nil when none remain, preserving the zero-cost nil path.
func MultiRecorder(rs ...Recorder) Recorder { return obs.Multi(rs...) }

// RunOptions carries the execution-policy knobs of the shared parallel
// runtime for entry points without a richer options struct.
type RunOptions struct {
	// Parallelism bounds the worker count of the engines' parallel hot
	// loops (0 = GOMAXPROCS). Results are bit-identical at any setting.
	Parallelism int
	// Sampler selects the Gibbs sampling core for Gibbs-backed entry
	// points — InferTopicsGibbs, Artifact.Infer/InferText, and the
	// PhraseLDA stage of TopicalPhrases; engines without a Gibbs stage
	// ignore it. Empty = auto (resolved per workload); unknown values are
	// a validation error.
	Sampler Sampler
	// AliasRefresh is the MH core's alias-table rebuild cadence in sweeps
	// (0 = default; ignored by the other cores).
	AliasRefresh int
	// Recorder, when non-nil, receives per-sweep sampler statistics and
	// pool telemetry from instrumented entry points (see NewTraceRecorder,
	// NewProgressRecorder). Recording is observational only: results are
	// bit-identical with or without it, and the nil path costs nothing.
	Recorder Recorder
	// ProbeEvery asks Gibbs-backed fits to compute the read-only
	// corpus log-likelihood convergence probe every N sweeps (0 = never;
	// the final sweep always probes when recording with N > 0). The
	// probe is O(corpus tokens x K) per evaluation.
	ProbeEvery int
	// CheckpointEvery asks Gibbs-backed fits to capture a resumable
	// checkpoint every N sweeps through CheckpointFunc (0 = never;
	// requires CheckpointFunc when > 0). Checkpointing is observational:
	// the fitted model is bit-identical with or without it.
	CheckpointEvery int
	// CheckpointFunc receives each captured checkpoint, synchronously at
	// the sweep boundary. Persist it with SaveCheckpoint; a returned
	// error aborts the fit.
	CheckpointFunc func(*Checkpoint) error
	// Resume continues a fit from a checkpoint (LoadCheckpoint) instead
	// of initializing fresh. The configuration and corpus must match the
	// checkpointed run exactly — any mismatch is an error, never a
	// silently different trajectory — and the resumed fit's final model
	// is bit-identical to the uninterrupted run's.
	Resume *Checkpoint
	// Stop, polled at sweep boundaries, requests a graceful stop: when
	// it returns true the fit captures a final checkpoint (if
	// CheckpointFunc is set) and returns ErrStopped. Wire it to a signal
	// handler for kill-safe long fits.
	Stop func() bool
	// Ctx cancels the computation between work chunks (nil = background).
	Ctx context.Context
}

func firstRunOptions(opts []RunOptions) RunOptions {
	if len(opts) > 0 {
		return opts[0]
	}
	return RunOptions{}
}

// HierarchyOptions configure BuildHierarchy.
type HierarchyOptions struct {
	// Engine picks the algorithm (default EngineCATHY).
	Engine Engine
	// K is the number of children per topic (0 = select by BIC, CATHY only).
	K int
	// Levels is the depth below the root (default 2).
	Levels int
	// LearnLinkWeights enables link-type weight learning (Eq. 3.37).
	LearnLinkWeights bool
	// Seed drives all randomness.
	Seed int64
	// Parallelism bounds the worker count of the engine's parallel hot
	// loops (0 = GOMAXPROCS). Same seed gives bit-identical hierarchies at
	// any setting.
	Parallelism int
	// Recorder, when non-nil, receives one record per CATHY EM sweep
	// (log-likelihood convergence trace, labeled by topic path and
	// restart) plus pool telemetry. Observational only. EngineSTROD has
	// no sweep loop and ignores it.
	Recorder Recorder
	// Ctx cancels construction between work chunks (nil = background).
	Ctx context.Context
}

// BuildHierarchy constructs a topical hierarchy from a heterogeneous
// network (EngineCATHY) or from the term type of the network (EngineSTROD
// requires a corpus; use BuildTextHierarchy instead).
func BuildHierarchy(net *Network, opt HierarchyOptions) (*Hierarchy, error) {
	if net == nil {
		return nil, errors.New("lesm: nil network")
	}
	if opt.Engine == EngineSTROD {
		return nil, errors.New("lesm: EngineSTROD requires a corpus; use BuildTextHierarchy")
	}
	if opt.Levels == 0 {
		opt.Levels = 2
	}
	mode := cathy.EqualWeights
	if opt.LearnLinkWeights {
		mode = cathy.LearnWeights
	}
	res, err := cathy.Build(net, cathy.Options{
		K: opt.K, Levels: opt.Levels, Seed: opt.Seed,
		Background: true, Weights: mode,
		P: opt.Parallelism, Ctx: opt.Ctx, Rec: opt.Recorder,
	})
	if err != nil {
		return nil, err
	}
	return res.Hierarchy, nil
}

// BuildTextHierarchy constructs a topical hierarchy from plain text.
func BuildTextHierarchy(corpus *Corpus, opt HierarchyOptions) (*Hierarchy, error) {
	if corpus == nil || len(corpus.Docs) == 0 {
		return nil, errors.New("lesm: empty corpus")
	}
	if opt.Levels == 0 {
		opt.Levels = 2
	}
	docs := make([][]int, len(corpus.Docs))
	for i, d := range corpus.Docs {
		docs[i] = d.Tokens
	}
	switch opt.Engine {
	case EngineSTROD:
		k := opt.K
		if k == 0 {
			k = 5
		}
		return strod.BuildTree(strod.FromTokens(docs), corpus.Vocab.Size(), strod.TreeConfig{
			K: k, Levels: opt.Levels,
			Config: strod.Config{Seed: opt.Seed, P: opt.Parallelism, Ctx: opt.Ctx},
		})
	default:
		net := hin.TermNetwork(corpus.Vocab.Size(), docs, 0)
		net.Names[0] = corpus.Vocab.Words()
		res, err := cathy.Build(net, cathy.Options{
			K: opt.K, Levels: opt.Levels, Seed: opt.Seed,
			P: opt.Parallelism, Ctx: opt.Ctx, Rec: opt.Recorder,
		})
		if err != nil {
			return nil, err
		}
		return res.Hierarchy, nil
	}
}

// PhraseOptions configure phrase mining.
type PhraseOptions struct {
	// MinSupport is the frequent-phrase threshold (default 5).
	MinSupport int
	// MaxLen caps phrase length (default 5).
	MaxLen int
	// TopN truncates each topic's phrase list (default 20).
	TopN int
	// Parallelism bounds the worker count of the parallel mining and
	// segmentation passes (0 = GOMAXPROCS). Results are identical at any
	// setting.
	Parallelism int
	// Ctx cancels mining between work chunks (nil = background).
	Ctx context.Context
}

// AttachPhrases mines frequent phrases from the corpus (ToPMine, Ch. 4) and
// attaches ranked phrase lists to every topic of the hierarchy. It returns
// the role analyzer primed with the same mining results, ready for Chapter 5
// queries; docs may be nil when the corpus has no entities.
func AttachPhrases(corpus *Corpus, docs []DocRecord, h *Hierarchy, opt PhraseOptions) (*RoleAnalyzer, error) {
	if corpus == nil || h == nil {
		return nil, errors.New("lesm: nil corpus or hierarchy")
	}
	if opt.MinSupport == 0 {
		opt.MinSupport = 5
	}
	if opt.MaxLen == 0 {
		opt.MaxLen = 5
	}
	if opt.TopN == 0 {
		opt.TopN = 20
	}
	cfg := topmine.Config{
		MinSupport: opt.MinSupport, MaxLen: opt.MaxLen,
		P: opt.Parallelism, Ctx: opt.Ctx,
	}
	miner := topmine.MineFrequentPhrases(corpus.Docs, cfg)
	if opt.Ctx != nil && opt.Ctx.Err() != nil {
		return nil, opt.Ctx.Err()
	}
	if err := topmine.VisualizeHierarchy(corpus, miner, h.Root, opt.TopN, par.Opts{P: opt.Parallelism, Ctx: opt.Ctx}); err != nil {
		return nil, err
	}
	if docs == nil {
		docs = make([]DocRecord, len(corpus.Docs))
		for i, d := range corpus.Docs {
			docs[i] = DocRecord{Tokens: d.Tokens}
		}
	}
	part := miner.SegmentCorpus(corpus.Docs)
	if opt.Ctx != nil && opt.Ctx.Err() != nil {
		return nil, opt.Ctx.Err()
	}
	return roles.NewAnalyzer(corpus, docs, h.Root, miner, part), nil
}

// TopicalPhrases runs the full flat ToPMine pipeline (mining, segmentation,
// PhraseLDA, ranking) and returns ranked phrases per topic. An optional
// RunOptions bounds parallelism and carries a cancellation context.
func TopicalPhrases(corpus *Corpus, k int, seed int64, opts ...RunOptions) ([][]RankedPhrase, error) {
	if corpus == nil || len(corpus.Docs) == 0 {
		return nil, errors.New("lesm: empty corpus")
	}
	if k < 2 {
		return nil, fmt.Errorf("lesm: k = %d, need >= 2", k)
	}
	ro := firstRunOptions(opts)
	res, err := topmine.Run(corpus, topmine.Config{P: ro.Parallelism, Ctx: ro.Ctx},
		lda.Config{
			K: k, Seed: seed, Background: true, Sampler: ro.Sampler,
			AliasRefresh: ro.AliasRefresh, Rec: ro.Recorder, ProbeEvery: ro.ProbeEvery,
		}, topmine.RankConfig{})
	if err != nil {
		return nil, err
	}
	return res.Topics, nil
}

// --- Relation mining (Chapter 6) ---

// RelPaper is one publication record for advisor-advisee mining.
type RelPaper struct {
	Year    int
	Authors []int
	Venue   int
}

// AdvisorResult holds the inferred advisor ranking.
type AdvisorResult struct {
	res *tpfg.Result
}

// Advisor returns author i's top-ranked advisor (-1 = none) and its
// normalized ranking score.
func (r *AdvisorResult) Advisor(i int) (int, float64) {
	pred := r.res.Predict()
	best := pred[i]
	score := r.res.Rank[i][0]
	if best >= 0 {
		for v, c := range r.res.Net.Cands[i] {
			if c.Advisor == best {
				score = r.res.Rank[i][v+1]
			}
		}
	}
	return best, score
}

// Candidates returns author i's candidate advisors with ranks and estimated
// advising intervals.
func (r *AdvisorResult) Candidates(i int) []struct {
	Advisor    int
	Rank       float64
	Start, End int
} {
	var out []struct {
		Advisor    int
		Rank       float64
		Start, End int
	}
	for v, c := range r.res.Net.Cands[i] {
		out = append(out, struct {
			Advisor    int
			Rank       float64
			Start, End int
		}{c.Advisor, r.res.Rank[i][v+1], c.Start, c.End})
	}
	return out
}

// MineAdvisorTree runs the unsupervised TPFG pipeline (Section 6.1) on a
// temporal collaboration network. An optional RunOptions bounds the
// parallelism of the message-passing sweeps.
func MineAdvisorTree(papers []RelPaper, numAuthors int, seed int64, opts ...RunOptions) (*AdvisorResult, error) {
	if numAuthors <= 0 || len(papers) == 0 {
		return nil, errors.New("lesm: empty collaboration network")
	}
	ro := firstRunOptions(opts)
	plain := make([]tpfg.Paper, len(papers))
	for i, p := range papers {
		plain[i] = tpfg.Paper{Year: p.Year, Authors: p.Authors}
	}
	net := tpfg.Preprocess(plain, numAuthors, tpfg.PreprocessOptions{Rules: tpfg.AllRules})
	res := tpfg.Infer(net, tpfg.Config{P: ro.Parallelism, Ctx: ro.Ctx})
	if ro.Ctx != nil && ro.Ctx.Err() != nil {
		return nil, ro.Ctx.Err()
	}
	_ = seed
	return &AdvisorResult{res: res}, nil
}

// MineAdvisorTreeSupervised trains the relational CRF of Section 6.2 on
// labeled authors (advisorOf[i] = advisor id or -1) listed in trainIdx, then
// predicts jointly for everyone. An optional RunOptions bounds the
// parallelism of the mini-batch gradient training and the prediction
// sweeps; the learned model is bit-identical at any setting.
func MineAdvisorTreeSupervised(papers []RelPaper, numAuthors int, advisorOf []int, trainIdx []int, seed int64, opts ...RunOptions) (*AdvisorResult, error) {
	if numAuthors <= 0 || len(papers) == 0 {
		return nil, errors.New("lesm: empty collaboration network")
	}
	ro := firstRunOptions(opts)
	numVenues := 0
	for _, p := range papers {
		if p.Venue+1 > numVenues {
			numVenues = p.Venue + 1
		}
	}
	rp := make([]relcrf.Paper, len(papers))
	plain := make([]tpfg.Paper, len(papers))
	for i, p := range papers {
		rp[i] = relcrf.Paper{Year: p.Year, Authors: p.Authors, Venue: p.Venue}
		plain[i] = tpfg.Paper{Year: p.Year, Authors: p.Authors}
	}
	net := tpfg.Preprocess(plain, numAuthors, tpfg.PreprocessOptions{Rules: tpfg.AllRules})
	feats := relcrf.Features(rp, numAuthors, numVenues, net)
	m, err := relcrf.Train(net, feats, advisorOf, trainIdx, relcrf.TrainOptions{
		Seed: seed, P: ro.Parallelism, Ctx: ro.Ctx,
	})
	if err != nil {
		return nil, err
	}
	res, err := m.Infer(net, feats, par.Opts{P: ro.Parallelism, Ctx: ro.Ctx})
	if err != nil {
		return nil, err
	}
	return &AdvisorResult{res: res}, nil
}

// --- Flat topic inference (Chapter 7) ---

// TopicModel is a flat topic-word model, recovered either by the
// moment-based STROD method (InferTopics) or by collapsed Gibbs sampling
// (InferTopicsGibbs).
type TopicModel struct {
	// Phi[k] is topic k's word distribution; Weight[k] its share.
	Phi    [][]float64
	Weight []float64
	// NKV[k][v] and NK[k] are the Gibbs sampler's final token count tables
	// — the sufficient statistics fold-in inference uses. Nil for STROD
	// models (fold-in then samples against Phi directly).
	NKV [][]int
	NK  []int
	// Alpha and Beta are the fit's effective Dirichlet hyperparameters
	// (zero for STROD models).
	Alpha, Beta float64
}

// InferTopics recovers k flat topics from the corpus with the moment-based
// STROD method: deterministic given a seed, no sampling iterations. An
// optional RunOptions bounds parallelism and carries a cancellation context.
func InferTopics(corpus *Corpus, k int, seed int64, opts ...RunOptions) (*TopicModel, error) {
	if corpus == nil || len(corpus.Docs) == 0 {
		return nil, errors.New("lesm: empty corpus")
	}
	if k < 2 {
		return nil, fmt.Errorf("lesm: k = %d, need >= 2", k)
	}
	ro := firstRunOptions(opts)
	docs := make([][]int, len(corpus.Docs))
	for i, d := range corpus.Docs {
		docs[i] = d.Tokens
	}
	m, err := strod.Fit(strod.FromTokens(docs), corpus.Vocab.Size(), strod.Config{
		K: k, Seed: seed, LearnAlpha0: true,
		P: ro.Parallelism, Ctx: ro.Ctx,
	})
	if err != nil {
		return nil, err
	}
	return &TopicModel{Phi: m.Phi, Weight: m.Weight}, nil
}

// TopWords returns topic k's top-n words rendered through the vocabulary
// (linalg.TopK selection: O(V log n), ties to the lower word id). n is
// clamped to the number of renderable words, min(len(Phi[k]),
// vocab.Size()), so a vocabulary smaller than the model's word axis yields
// a short list instead of an out-of-range panic.
func (m *TopicModel) TopWords(vocab *Vocabulary, k, n int) []string {
	phi := m.Phi[k]
	if vs := vocab.Size(); len(phi) > vs {
		phi = phi[:vs]
	}
	ids := linalg.TopK(phi, n)
	if ids == nil {
		return nil
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = vocab.Word(id)
	}
	return out
}

// InferTopicsGibbs fits k flat topics with the collapsed Gibbs sampler of
// Chapter 4's LDA substrate. Unlike InferTopics (STROD), the returned model
// carries the sampler's sufficient statistics (NKV/NK), so fold-in
// inference — Artifact.Infer, the lesmd /infer endpoint — samples against
// the exact smoothed distributions the fit would have used. Deterministic:
// same seed gives a bit-identical model at any parallelism level.
func InferTopicsGibbs(corpus *Corpus, k int, seed int64, opts ...RunOptions) (*TopicModel, error) {
	if corpus == nil || len(corpus.Docs) == 0 {
		return nil, errors.New("lesm: empty corpus")
	}
	if k < 2 {
		return nil, fmt.Errorf("lesm: k = %d, need >= 2", k)
	}
	ro := firstRunOptions(opts)
	docs := make([][]int, len(corpus.Docs))
	for i, d := range corpus.Docs {
		docs[i] = d.Tokens
	}
	m, err := lda.Run(docs, corpus.Vocab.Size(), lda.Config{
		K: k, Seed: seed, P: ro.Parallelism, Sampler: ro.Sampler,
		AliasRefresh: ro.AliasRefresh, Ctx: ro.Ctx,
		Rec: ro.Recorder, ProbeEvery: ro.ProbeEvery,
		CheckpointEvery: ro.CheckpointEvery, CheckpointFunc: ro.CheckpointFunc,
		Resume: ro.Resume, Stop: ro.Stop,
	})
	if err != nil {
		return nil, err
	}
	return &TopicModel{
		Phi: m.Phi, Weight: m.Rho, NKV: m.NKV, NK: m.NK,
		Alpha: m.Alpha, Beta: m.Beta,
	}, nil
}

// --- Crash-safe fitting (checkpoint/resume) ---

// Checkpoint is a resumable snapshot of a Gibbs fit at a sweep boundary:
// the topic assignments, the run's configuration fingerprint, and — for
// the MH core — the alias-proposal source counts. Captured through
// RunOptions.CheckpointFunc, persisted with SaveCheckpoint, and fed back
// through RunOptions.Resume; resuming reproduces the uninterrupted run's
// final model bit for bit, at any parallelism level.
type Checkpoint = lda.Checkpoint

// ErrStopped is returned by Gibbs-backed fits when RunOptions.Stop
// requested a graceful stop at a sweep boundary. The fit is incomplete
// but a final checkpoint was captured (when CheckpointFunc is set), so
// the run can be resumed where it left off.
var ErrStopped = lda.ErrStopped

// SaveCheckpoint persists a fit checkpoint at path in the versioned
// LESMCKPT binary format, with the same atomic-replace write discipline
// as Save: a crash mid-write never corrupts a previously saved
// checkpoint.
func SaveCheckpoint(path string, cp *Checkpoint) error {
	return store.WriteCheckpoint(path, cp)
}

// LoadCheckpoint reads a checkpoint persisted by SaveCheckpoint,
// verifying the per-section checksums and the checkpoint's internal
// shape invariants. Feed the result to RunOptions.Resume.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	return store.ReadCheckpoint(path)
}

// --- Persistence & serving (the snapshot store) ---

// CorpusMeta is the corpus-level metadata persisted alongside a model:
// enough for a server to report shapes and compute IDF-style statistics
// without shipping the documents themselves.
type CorpusMeta = store.CorpusMeta

// TopicPhrases pairs a topic path with its ranked phrase list — the role
// analyzer's per-topic view in snapshot form.
type TopicPhrases = store.TopicPhrases

// NewCorpusMeta extracts the persistable metadata of a corpus.
func NewCorpusMeta(c *Corpus) *CorpusMeta {
	if c == nil {
		return nil
	}
	return &CorpusMeta{
		NumDocs:     len(c.Docs),
		TotalTokens: c.TotalTokens(),
		WordCounts:  c.WordCounts(),
	}
}

// RolePhrasesOf collects every topic's ranked phrase list from a
// phrase-enriched hierarchy (AttachPhrases output) in pre-order — the
// snapshot's roles section.
func RolePhrasesOf(h *Hierarchy) []TopicPhrases {
	if h == nil {
		return nil
	}
	var out []TopicPhrases
	h.Root.Walk(func(n *TopicNode) {
		out = append(out, TopicPhrases{Path: n.Path, Phrases: n.Phrases})
	})
	return out
}

// Artifact aggregates the persistable mining outputs of one fit. Every
// field is optional; Save writes a section per present field and Load
// restores exactly the sections the file carries.
type Artifact struct {
	// Hierarchy is a (possibly phrase-enriched) topical hierarchy.
	Hierarchy *Hierarchy
	// Topics is a flat topic model; with NKV/NK present, fold-in inference
	// (Artifact.Infer, lesmd /infer) uses the exact fitted statistics.
	Topics *TopicModel
	// Vocab maps word ids to strings for rendering and query encoding.
	Vocab *Vocabulary
	// Corpus is the fitting corpus's metadata.
	Corpus *CorpusMeta
	// RolePhrases is the role analyzer's per-topic ranked phrase view.
	RolePhrases []TopicPhrases
	// Advisor is a mined advisor-advisee ranking.
	Advisor *AdvisorResult

	// foldOnce caches the frozen fold-in model: deriving the smoothed
	// distributions from the count tables is O(K·V), too much to repeat on
	// every Infer call against an immutable model. Callers must not mutate
	// Topics after the first Infer.
	foldOnce  sync.Once
	foldModel *lda.FoldInModel
	foldErr   error

	// searchOnce caches the entity search index: building it walks every
	// name the artifact carries, so it is derived once per immutable
	// artifact like the fold-in model above.
	searchOnce sync.Once
	searchIdx  *search.Index
}

// SearchIndex is the entity search index over everything an artifact (or
// snapshot) knows by name, with edit-distance-tolerant lookup — see
// internal/search.
type SearchIndex = search.Index

// SearchHit is one ranked, typed search result.
type SearchHit = search.Hit

// SearchKind types a search hit: word, phrase or author.
type SearchKind = search.Kind

// Search hit kinds.
const (
	SearchWord   = search.KindWord
	SearchPhrase = search.KindPhrase
	SearchAuthor = search.KindAuthor
)

// Sections lists the snapshot sections this artifact would persist, in
// file order.
func (a *Artifact) Sections() []string { return a.snapshot().Sections() }

// SearchIndex returns the artifact's entity search index — the same
// tokenized inverted index with fuzzy matching that lesmd serves /search
// and /entity/:name from — built lazily on first use and cached. The
// build is deterministic per artifact content. Callers must not mutate
// the artifact's name-bearing fields (Vocab, Hierarchy, RolePhrases,
// Advisor) after the first call.
func (a *Artifact) SearchIndex() *SearchIndex {
	a.searchOnce.Do(func() { a.searchIdx = search.FromSnapshot(a.snapshot()) })
	return a.searchIdx
}

// Infer runs deterministic fold-in Gibbs inference for unseen documents
// against the artifact's frozen topic model: theta[d][k] is document d's
// topic distribution. Identical (seed, document index, tokens) give
// identical results at any parallelism level. The artifact must carry a
// topic model.
func (a *Artifact) Infer(docs [][]int, seed int64, opts ...RunOptions) ([][]float64, error) {
	fm, err := a.foldInModel()
	if err != nil {
		return nil, err
	}
	ro := firstRunOptions(opts)
	return lda.FoldIn(fm, docs, lda.FoldInConfig{
		Seed: seed, P: ro.Parallelism, Sampler: ro.Sampler,
		Rec: ro.Recorder, Ctx: ro.Ctx,
	})
}

// InferText tokenizes raw text through the pipeline, encodes it with the
// artifact's vocabulary (unknown words dropped) and folds it in.
func (a *Artifact) InferText(texts []string, p Pipeline, seed int64, opts ...RunOptions) ([][]float64, error) {
	if a.Vocab == nil {
		return nil, errors.New("lesm: artifact has no vocabulary; use Infer with token ids")
	}
	docs := make([][]int, len(texts))
	for i, text := range texts {
		var ids []int
		for _, tok := range p.Process(text) {
			if id, ok := a.Vocab.ID(tok); ok {
				ids = append(ids, id)
			}
		}
		docs[i] = ids
	}
	return a.Infer(docs, seed, opts...)
}

func (a *Artifact) foldInModel() (*lda.FoldInModel, error) {
	a.foldOnce.Do(func() {
		t := a.Topics
		if t == nil {
			a.foldErr = errors.New("lesm: artifact has no topic model")
			return
		}
		// The fold-in prior is deliberately NOT the fitting alpha (50/K by
		// convention): that prior is calibrated for whole training
		// documents and bounds a short query document's theta to
		// near-uniform regardless of content.
		if t.NKV != nil && t.NK != nil {
			a.foldModel = lda.FoldInModelFromCounts(t.NKV, t.NK, lda.DefaultFoldInAlpha, t.Beta)
			return
		}
		a.foldModel = lda.NewFoldInModel(t.Phi, lda.DefaultFoldInAlpha)
	})
	return a.foldModel, a.foldErr
}

// snapshot converts the artifact to the store's section set.
func (a *Artifact) snapshot() *store.Snapshot {
	s := &store.Snapshot{
		Hierarchy:   a.Hierarchy,
		Corpus:      a.Corpus,
		RolePhrases: a.RolePhrases,
	}
	if a.Vocab != nil {
		s.Vocab = a.Vocab.Words()
	}
	if t := a.Topics; t != nil {
		v := 0
		if len(t.Phi) > 0 {
			v = len(t.Phi[0])
		}
		s.Topics = &store.Topics{
			K: len(t.Phi), V: v, Weight: t.Weight, Phi: t.Phi,
			Alpha: t.Alpha, Beta: t.Beta, NKV: t.NKV, NK: t.NK,
		}
	}
	if a.Advisor != nil {
		s.Advisor = &store.Advisor{Net: a.Advisor.res.Net, Rank: a.Advisor.res.Rank}
	}
	return s
}

func artifactFromSnapshot(s *store.Snapshot) *Artifact {
	a := &Artifact{
		Hierarchy:   s.Hierarchy,
		Corpus:      s.Corpus,
		RolePhrases: s.RolePhrases,
	}
	if s.Vocab != nil {
		a.Vocab = textkit.VocabularyFromWords(s.Vocab)
	}
	if t := s.Topics; t != nil {
		a.Topics = &TopicModel{
			Phi: t.Phi, Weight: t.Weight, NKV: t.NKV, NK: t.NK,
			Alpha: t.Alpha, Beta: t.Beta,
		}
	}
	if s.Advisor != nil {
		a.Advisor = &AdvisorResult{res: &tpfg.Result{Net: s.Advisor.Net, Rank: s.Advisor.Rank}}
	}
	return a
}

// Save persists the artifact to path in the versioned binary snapshot
// format (magic + section table + per-section CRC; see internal/store).
// Encoding is deterministic — the same artifact always produces the same
// bytes — and Load(Save(a)) re-encodes byte-identically.
func Save(path string, a *Artifact) error {
	if a == nil {
		return errors.New("lesm: nil artifact")
	}
	return store.Write(path, a.snapshot())
}

// Load reads an artifact persisted by Save, verifying the per-section
// checksums and the sections' cross-field shape invariants. The result can
// be queried directly (Infer, the typed fields) or served with cmd/lesmd.
func Load(path string) (*Artifact, error) {
	s, err := store.Read(path)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return artifactFromSnapshot(s), nil
}

// LoadMapped is Load through the zero-copy mmap decode path: the big
// numeric sections (topic count tables, phi rows, ranks) alias a
// read-only mapping of the file instead of being copied to the heap, so
// opening a large model costs page tables rather than resident memory and
// pages fault in lazily as queries touch them. Checksums and shape
// invariants are verified exactly as in Load.
//
// The returned closer releases the mapping. It must stay open for as long
// as any part of the artifact is in use, and the artifact must be treated
// as strictly read-only — writing through an aliased slice faults. Use
// Load when you need a mutable or mapping-independent artifact.
func LoadMapped(path string) (*Artifact, io.Closer, error) {
	m, err := store.OpenMapped(path)
	if err != nil {
		return nil, nil, err
	}
	s := m.Snapshot()
	if err := s.Validate(); err != nil {
		m.Close()
		return nil, nil, err
	}
	return artifactFromSnapshot(s), m, nil
}
