// Package lesm is the public API of the latent entity structure mining
// framework — a Go reproduction of "Mining latent entity structures from
// massive unstructured and interconnected data" (Chi Wang, 2014).
//
// The framework solves and integrates a chain of tasks over text-attached
// heterogeneous information networks:
//
//   - hierarchical topic and community discovery (CATHY / CATHYHIN, Ch. 3,
//     and the moment-based STROD engine, Ch. 7);
//   - topical phrase mining (KERT and ToPMine, Ch. 4);
//   - entity topical role analysis (Ch. 5);
//   - hierarchical relation mining (TPFG and a supervised relational CRF,
//     Ch. 6).
//
// A typical flow: build a Corpus (and optionally per-document entity
// attachments), construct a collapsed Network, call BuildHierarchy, attach
// phrases with AttachPhrases, then explore with a RoleAnalyzer. See the
// runnable programs under examples/ for end-to-end usage.
package lesm

import (
	"context"
	"errors"
	"fmt"

	"lesm/internal/cathy"
	"lesm/internal/core"
	"lesm/internal/hin"
	"lesm/internal/lda"
	"lesm/internal/par"
	"lesm/internal/relcrf"
	"lesm/internal/roles"
	"lesm/internal/strod"
	"lesm/internal/textkit"
	"lesm/internal/topmine"
	"lesm/internal/tpfg"
)

// Re-exported core types. External importers use these names; the internal
// packages stay private.
type (
	// Corpus is an id-encoded document collection with its vocabulary.
	Corpus = textkit.Corpus
	// Pipeline configures text preprocessing (stopwords, Porter stemming).
	Pipeline = textkit.Pipeline
	// Vocabulary maps words to dense ids and back.
	Vocabulary = textkit.Vocabulary
	// Hierarchy is a phrase-represented, entity-enriched topical hierarchy.
	Hierarchy = core.Hierarchy
	// TopicNode is one topic in a hierarchy.
	TopicNode = core.TopicNode
	// TypeID identifies a node type (TermType = 0 is the word type).
	TypeID = core.TypeID
	// RankedPhrase is a scored phrase attached to a topic.
	RankedPhrase = core.RankedPhrase
	// RankedEntity is a scored entity attached to a topic.
	RankedEntity = core.RankedEntity
	// Network is an edge-weighted network with typed nodes.
	Network = hin.Network
	// DocRecord carries one document's term ids and entity attachments.
	DocRecord = hin.DocRecord
	// RoleAnalyzer answers the Chapter 5 role questions.
	RoleAnalyzer = roles.Analyzer
)

// TermType is the node type holding vocabulary terms.
const TermType = core.TermType

// Entity ranking modes for RoleAnalyzer.RankEntities (Section 5.2).
const (
	// ERankPop ranks entities by popularity p(e|t) alone.
	ERankPop = roles.ERankPop
	// ERankPopPur combines popularity with purity against sibling topics.
	ERankPopPur = roles.ERankPopPur
)

// DefaultPipeline removes stopwords and keeps tokens of length >= 2.
var DefaultPipeline = textkit.DefaultPipeline

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus { return textkit.NewCorpus() }

// BuildCollapsedNetwork converts documents with attached entities into the
// collapsed heterogeneous network of Example 3.1. typeNames[0] must be
// "term" and numNodes[0] the vocabulary size.
func BuildCollapsedNetwork(typeNames []string, numNodes []int, docs []DocRecord) *Network {
	return hin.BuildCollapsed(typeNames, numNodes, docs, hin.BuildOptions{})
}

// Engine selects the hierarchy construction algorithm.
type Engine int

const (
	// EngineCATHY uses the recursive Poisson link-clustering EM of Ch. 3
	// (CATHYHIN on heterogeneous networks).
	EngineCATHY Engine = iota
	// EngineSTROD uses the moment-based tensor decomposition of Ch. 7
	// (text only; fast and robust to restarts).
	EngineSTROD
)

// RunOptions carries the execution-policy knobs of the shared parallel
// runtime for entry points without a richer options struct.
type RunOptions struct {
	// Parallelism bounds the worker count of the engines' parallel hot
	// loops (0 = GOMAXPROCS). Results are bit-identical at any setting.
	Parallelism int
	// Ctx cancels the computation between work chunks (nil = background).
	Ctx context.Context
}

func firstRunOptions(opts []RunOptions) RunOptions {
	if len(opts) > 0 {
		return opts[0]
	}
	return RunOptions{}
}

// HierarchyOptions configure BuildHierarchy.
type HierarchyOptions struct {
	// Engine picks the algorithm (default EngineCATHY).
	Engine Engine
	// K is the number of children per topic (0 = select by BIC, CATHY only).
	K int
	// Levels is the depth below the root (default 2).
	Levels int
	// LearnLinkWeights enables link-type weight learning (Eq. 3.37).
	LearnLinkWeights bool
	// Seed drives all randomness.
	Seed int64
	// Parallelism bounds the worker count of the engine's parallel hot
	// loops (0 = GOMAXPROCS). Same seed gives bit-identical hierarchies at
	// any setting.
	Parallelism int
	// Ctx cancels construction between work chunks (nil = background).
	Ctx context.Context
}

// BuildHierarchy constructs a topical hierarchy from a heterogeneous
// network (EngineCATHY) or from the term type of the network (EngineSTROD
// requires a corpus; use BuildTextHierarchy instead).
func BuildHierarchy(net *Network, opt HierarchyOptions) (*Hierarchy, error) {
	if net == nil {
		return nil, errors.New("lesm: nil network")
	}
	if opt.Engine == EngineSTROD {
		return nil, errors.New("lesm: EngineSTROD requires a corpus; use BuildTextHierarchy")
	}
	if opt.Levels == 0 {
		opt.Levels = 2
	}
	mode := cathy.EqualWeights
	if opt.LearnLinkWeights {
		mode = cathy.LearnWeights
	}
	res, err := cathy.Build(net, cathy.Options{
		K: opt.K, Levels: opt.Levels, Seed: opt.Seed,
		Background: true, Weights: mode,
		P: opt.Parallelism, Ctx: opt.Ctx,
	})
	if err != nil {
		return nil, err
	}
	return res.Hierarchy, nil
}

// BuildTextHierarchy constructs a topical hierarchy from plain text.
func BuildTextHierarchy(corpus *Corpus, opt HierarchyOptions) (*Hierarchy, error) {
	if corpus == nil || len(corpus.Docs) == 0 {
		return nil, errors.New("lesm: empty corpus")
	}
	if opt.Levels == 0 {
		opt.Levels = 2
	}
	docs := make([][]int, len(corpus.Docs))
	for i, d := range corpus.Docs {
		docs[i] = d.Tokens
	}
	switch opt.Engine {
	case EngineSTROD:
		k := opt.K
		if k == 0 {
			k = 5
		}
		return strod.BuildTree(strod.FromTokens(docs), corpus.Vocab.Size(), strod.TreeConfig{
			K: k, Levels: opt.Levels,
			Config: strod.Config{Seed: opt.Seed, P: opt.Parallelism, Ctx: opt.Ctx},
		})
	default:
		net := hin.TermNetwork(corpus.Vocab.Size(), docs, 0)
		net.Names[0] = corpus.Vocab.Words()
		res, err := cathy.Build(net, cathy.Options{
			K: opt.K, Levels: opt.Levels, Seed: opt.Seed,
			P: opt.Parallelism, Ctx: opt.Ctx,
		})
		if err != nil {
			return nil, err
		}
		return res.Hierarchy, nil
	}
}

// PhraseOptions configure phrase mining.
type PhraseOptions struct {
	// MinSupport is the frequent-phrase threshold (default 5).
	MinSupport int
	// MaxLen caps phrase length (default 5).
	MaxLen int
	// TopN truncates each topic's phrase list (default 20).
	TopN int
	// Parallelism bounds the worker count of the parallel mining and
	// segmentation passes (0 = GOMAXPROCS). Results are identical at any
	// setting.
	Parallelism int
	// Ctx cancels mining between work chunks (nil = background).
	Ctx context.Context
}

// AttachPhrases mines frequent phrases from the corpus (ToPMine, Ch. 4) and
// attaches ranked phrase lists to every topic of the hierarchy. It returns
// the role analyzer primed with the same mining results, ready for Chapter 5
// queries; docs may be nil when the corpus has no entities.
func AttachPhrases(corpus *Corpus, docs []DocRecord, h *Hierarchy, opt PhraseOptions) (*RoleAnalyzer, error) {
	if corpus == nil || h == nil {
		return nil, errors.New("lesm: nil corpus or hierarchy")
	}
	if opt.MinSupport == 0 {
		opt.MinSupport = 5
	}
	if opt.MaxLen == 0 {
		opt.MaxLen = 5
	}
	if opt.TopN == 0 {
		opt.TopN = 20
	}
	cfg := topmine.Config{
		MinSupport: opt.MinSupport, MaxLen: opt.MaxLen,
		P: opt.Parallelism, Ctx: opt.Ctx,
	}
	miner := topmine.MineFrequentPhrases(corpus.Docs, cfg)
	if opt.Ctx != nil && opt.Ctx.Err() != nil {
		return nil, opt.Ctx.Err()
	}
	if err := topmine.VisualizeHierarchy(corpus, miner, h.Root, opt.TopN, par.Opts{P: opt.Parallelism, Ctx: opt.Ctx}); err != nil {
		return nil, err
	}
	if docs == nil {
		docs = make([]DocRecord, len(corpus.Docs))
		for i, d := range corpus.Docs {
			docs[i] = DocRecord{Tokens: d.Tokens}
		}
	}
	part := miner.SegmentCorpus(corpus.Docs)
	if opt.Ctx != nil && opt.Ctx.Err() != nil {
		return nil, opt.Ctx.Err()
	}
	return roles.NewAnalyzer(corpus, docs, h.Root, miner, part), nil
}

// TopicalPhrases runs the full flat ToPMine pipeline (mining, segmentation,
// PhraseLDA, ranking) and returns ranked phrases per topic. An optional
// RunOptions bounds parallelism and carries a cancellation context.
func TopicalPhrases(corpus *Corpus, k int, seed int64, opts ...RunOptions) ([][]RankedPhrase, error) {
	if corpus == nil || len(corpus.Docs) == 0 {
		return nil, errors.New("lesm: empty corpus")
	}
	if k < 2 {
		return nil, fmt.Errorf("lesm: k = %d, need >= 2", k)
	}
	ro := firstRunOptions(opts)
	res, err := topmine.Run(corpus, topmine.Config{P: ro.Parallelism, Ctx: ro.Ctx},
		lda.Config{K: k, Seed: seed, Background: true}, topmine.RankConfig{})
	if err != nil {
		return nil, err
	}
	return res.Topics, nil
}

// --- Relation mining (Chapter 6) ---

// RelPaper is one publication record for advisor-advisee mining.
type RelPaper struct {
	Year    int
	Authors []int
	Venue   int
}

// AdvisorResult holds the inferred advisor ranking.
type AdvisorResult struct {
	res *tpfg.Result
}

// Advisor returns author i's top-ranked advisor (-1 = none) and its
// normalized ranking score.
func (r *AdvisorResult) Advisor(i int) (int, float64) {
	pred := r.res.Predict()
	best := pred[i]
	score := r.res.Rank[i][0]
	if best >= 0 {
		for v, c := range r.res.Net.Cands[i] {
			if c.Advisor == best {
				score = r.res.Rank[i][v+1]
			}
		}
	}
	return best, score
}

// Candidates returns author i's candidate advisors with ranks and estimated
// advising intervals.
func (r *AdvisorResult) Candidates(i int) []struct {
	Advisor    int
	Rank       float64
	Start, End int
} {
	var out []struct {
		Advisor    int
		Rank       float64
		Start, End int
	}
	for v, c := range r.res.Net.Cands[i] {
		out = append(out, struct {
			Advisor    int
			Rank       float64
			Start, End int
		}{c.Advisor, r.res.Rank[i][v+1], c.Start, c.End})
	}
	return out
}

// MineAdvisorTree runs the unsupervised TPFG pipeline (Section 6.1) on a
// temporal collaboration network. An optional RunOptions bounds the
// parallelism of the message-passing sweeps.
func MineAdvisorTree(papers []RelPaper, numAuthors int, seed int64, opts ...RunOptions) (*AdvisorResult, error) {
	if numAuthors <= 0 || len(papers) == 0 {
		return nil, errors.New("lesm: empty collaboration network")
	}
	ro := firstRunOptions(opts)
	plain := make([]tpfg.Paper, len(papers))
	for i, p := range papers {
		plain[i] = tpfg.Paper{Year: p.Year, Authors: p.Authors}
	}
	net := tpfg.Preprocess(plain, numAuthors, tpfg.PreprocessOptions{Rules: tpfg.AllRules})
	res := tpfg.Infer(net, tpfg.Config{P: ro.Parallelism, Ctx: ro.Ctx})
	if ro.Ctx != nil && ro.Ctx.Err() != nil {
		return nil, ro.Ctx.Err()
	}
	_ = seed
	return &AdvisorResult{res: res}, nil
}

// MineAdvisorTreeSupervised trains the relational CRF of Section 6.2 on
// labeled authors (advisorOf[i] = advisor id or -1) listed in trainIdx, then
// predicts jointly for everyone. An optional RunOptions bounds the
// parallelism of the mini-batch gradient training and the prediction
// sweeps; the learned model is bit-identical at any setting.
func MineAdvisorTreeSupervised(papers []RelPaper, numAuthors int, advisorOf []int, trainIdx []int, seed int64, opts ...RunOptions) (*AdvisorResult, error) {
	if numAuthors <= 0 || len(papers) == 0 {
		return nil, errors.New("lesm: empty collaboration network")
	}
	ro := firstRunOptions(opts)
	numVenues := 0
	for _, p := range papers {
		if p.Venue+1 > numVenues {
			numVenues = p.Venue + 1
		}
	}
	rp := make([]relcrf.Paper, len(papers))
	plain := make([]tpfg.Paper, len(papers))
	for i, p := range papers {
		rp[i] = relcrf.Paper{Year: p.Year, Authors: p.Authors, Venue: p.Venue}
		plain[i] = tpfg.Paper{Year: p.Year, Authors: p.Authors}
	}
	net := tpfg.Preprocess(plain, numAuthors, tpfg.PreprocessOptions{Rules: tpfg.AllRules})
	feats := relcrf.Features(rp, numAuthors, numVenues, net)
	m, err := relcrf.Train(net, feats, advisorOf, trainIdx, relcrf.TrainOptions{
		Seed: seed, P: ro.Parallelism, Ctx: ro.Ctx,
	})
	if err != nil {
		return nil, err
	}
	res, err := m.Infer(net, feats, par.Opts{P: ro.Parallelism, Ctx: ro.Ctx})
	if err != nil {
		return nil, err
	}
	return &AdvisorResult{res: res}, nil
}

// --- Flat topic inference (Chapter 7) ---

// TopicModel is a flat topic-word model recovered by STROD.
type TopicModel struct {
	// Phi[k] is topic k's word distribution; Weight[k] its share.
	Phi    [][]float64
	Weight []float64
}

// InferTopics recovers k flat topics from the corpus with the moment-based
// STROD method: deterministic given a seed, no sampling iterations. An
// optional RunOptions bounds parallelism and carries a cancellation context.
func InferTopics(corpus *Corpus, k int, seed int64, opts ...RunOptions) (*TopicModel, error) {
	if corpus == nil || len(corpus.Docs) == 0 {
		return nil, errors.New("lesm: empty corpus")
	}
	if k < 2 {
		return nil, fmt.Errorf("lesm: k = %d, need >= 2", k)
	}
	ro := firstRunOptions(opts)
	docs := make([][]int, len(corpus.Docs))
	for i, d := range corpus.Docs {
		docs[i] = d.Tokens
	}
	m, err := strod.Fit(strod.FromTokens(docs), corpus.Vocab.Size(), strod.Config{
		K: k, Seed: seed, LearnAlpha0: true,
		P: ro.Parallelism, Ctx: ro.Ctx,
	})
	if err != nil {
		return nil, err
	}
	return &TopicModel{Phi: m.Phi, Weight: m.Weight}, nil
}

// TopWords returns topic k's top-n words rendered through the vocabulary.
// Selection keeps a size-n min-heap over the vocabulary — O(V log n) instead
// of the O(n·V) selection scan — with ties going to the lower word id.
func (m *TopicModel) TopWords(vocab *Vocabulary, k, n int) []string {
	phi := m.Phi[k]
	if n > len(phi) {
		n = len(phi)
	}
	if n <= 0 {
		return nil
	}
	type wp struct {
		w int
		p float64
	}
	// less orders the heap worst-first: lower probability, tie broken by
	// HIGHER word id so that the lowest-id word among equals survives.
	less := func(a, b wp) bool {
		if a.p != b.p {
			return a.p < b.p
		}
		return a.w > b.w
	}
	heap := make([]wp, 0, n)
	siftUp := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !less(heap[i], heap[parent]) {
				break
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	siftDown := func(i int) {
		for {
			small := i
			if l := 2*i + 1; l < len(heap) && less(heap[l], heap[small]) {
				small = l
			}
			if r := 2*i + 2; r < len(heap) && less(heap[r], heap[small]) {
				small = r
			}
			if small == i {
				return
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
	}
	for w, p := range phi {
		e := wp{w, p}
		if len(heap) < n {
			heap = append(heap, e)
			siftUp(len(heap) - 1)
		} else if less(heap[0], e) {
			heap[0] = e
			siftDown(0)
		}
	}
	// Drain worst-first into the output back-to-front.
	out := make([]string, len(heap))
	for i := len(heap) - 1; i >= 0; i-- {
		out[i] = vocab.Word(heap[0].w)
		heap[0] = heap[len(heap)-1]
		heap = heap[:len(heap)-1]
		siftDown(0)
	}
	return out
}
