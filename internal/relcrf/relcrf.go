package relcrf

import (
	"context"
	"math"
	"math/rand"

	"lesm/internal/par"
	"lesm/internal/tpfg"
)

// Paper is a publication record with a venue attribute (the heterogeneous
// signal the CRF exploits beyond TPFG).
type Paper struct {
	Year    int
	Authors []int
	Venue   int
}

// Model holds the learned potential weights: W over pair features and Bias
// for the virtual no-parent option.
type Model struct {
	W    []float64
	Bias float64
}

// Features extends tpfg.PairFeatures with a venue-overlap feature: the
// cosine similarity between the advisee's and the candidate's venue
// histograms (advisors and their students publish in the same venues).
func Features(papers []Paper, numAuthors, numVenues int, net *tpfg.Network) map[[2]int][]float64 {
	plain := make([]tpfg.Paper, len(papers))
	for i, p := range papers {
		plain[i] = tpfg.Paper{Year: p.Year, Authors: p.Authors}
	}
	base := tpfg.PairFeatures(plain, numAuthors, net)
	hist := make([][]float64, numAuthors)
	for a := range hist {
		hist[a] = make([]float64, numVenues)
	}
	for _, p := range papers {
		for _, a := range p.Authors {
			if p.Venue >= 0 && p.Venue < numVenues {
				hist[a][p.Venue]++
			}
		}
	}
	cos := func(a, b []float64) float64 {
		var ab, aa, bb float64
		for i := range a {
			ab += a[i] * b[i]
			aa += a[i] * a[i]
			bb += b[i] * b[i]
		}
		if aa == 0 || bb == 0 {
			return 0
		}
		return ab / math.Sqrt(aa*bb)
	}
	out := map[[2]int][]float64{}
	for key, f := range base {
		ext := make([]float64, len(f)+1)
		copy(ext, f)
		ext[len(f)] = cos(hist[key[0]], hist[key[1]])
		out[key] = ext
	}
	return out
}

// TrainOptions configure pseudo-likelihood mini-batch gradient training.
type TrainOptions struct {
	// Epochs is the number of passes over the labeled set (default 60).
	Epochs int
	// LR is the initial learning rate (default 0.05), decayed 3% per epoch.
	LR float64
	// L2 is the weight-decay coefficient (default 1e-4).
	L2 float64
	// Seed drives the per-epoch shuffle of the labeled examples.
	Seed int64
	// P bounds the worker count of the parallel gradient computation
	// (0 = GOMAXPROCS). The learned weights are bit-identical at any P.
	P int
	// Ctx cancels training between mini-batches (nil = background); a
	// cancelled run returns the context error and no model.
	Ctx context.Context
}

func (o TrainOptions) parOpts() par.Opts { return par.Opts{P: o.P, Ctx: o.Ctx} }

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Epochs == 0 {
		o.Epochs = 60
	}
	if o.LR == 0 {
		o.LR = 0.05
	}
	if o.L2 == 0 {
		o.L2 = 1e-4
	}
	return o
}

// Train fits the CRF by maximizing the pseudo-likelihood of the labeled
// parent assignments: for each labeled author i, the conditional
// distribution over i's candidates given all other labels, including the
// temporal constraint factors evaluated at the neighbors' labels.
//
// Each epoch shuffles the labeled examples (seeded), splits them into
// mini-batches whose boundaries depend only on the example count, computes
// every example's gradient against the batch-start weights in parallel on
// the shared runtime, and applies the gradients in example order — so the
// learned weights are a pure function of the seed at any opt.P. Train only
// returns an error when opt.Ctx is cancelled.
func Train(net *tpfg.Network, feats map[[2]int][]float64, advisorOf []int, trainIdx []int, opt TrainOptions) (*Model, error) {
	opt = opt.withDefaults()
	o := opt.parOpts()
	rng := rand.New(rand.NewSource(opt.Seed))
	var dim int
	for _, f := range feats {
		dim = len(f)
		break
	}
	m := &Model{W: make([]float64, dim)}

	// Advisee index: for constraint evaluation we need, per author i, the
	// labeled advisees x (advisorOf[x] == i) and the start year st_{x,i}.
	type advisee struct{ start int }
	advisees := make([][]advisee, net.NumAuthors)
	inTrain := make([]bool, net.NumAuthors)
	for _, i := range trainIdx {
		inTrain[i] = true
	}
	for x := 0; x < net.NumAuthors; x++ {
		if !inTrain[x] || advisorOf[x] < 0 {
			continue
		}
		for _, c := range net.Cands[x] {
			if c.Advisor == advisorOf[x] {
				advisees[c.Advisor] = append(advisees[c.Advisor], advisee{start: c.Start})
			}
		}
	}

	// allowed reports whether i choosing candidate c is compatible with i's
	// labeled advisees: i must stop being advised before advising starts.
	allowed := func(i int, c tpfg.Candidate) bool {
		for _, a := range advisees[i] {
			if c.End >= a.start {
				return false
			}
		}
		return true
	}

	// exGrad computes example i's pseudo-likelihood gradient (observed minus
	// expected features, plus weight decay) against the current weights,
	// writing the W part into g[:dim] and the bias part into g[dim]. It only
	// reads m, so a mini-batch of examples can run concurrently.
	exGrad := func(i int, g []float64) {
		for d := range g {
			g[d] = 0
		}
		cands := net.Cands[i]
		// Scores: virtual no-parent option first.
		scores := make([]float64, len(cands)+1)
		ok := make([]bool, len(cands)+1)
		scores[0] = m.Bias
		ok[0] = true
		for v, c := range cands {
			f := feats[[2]int{i, c.Advisor}]
			s := 0.0
			for d := range m.W {
				s += m.W[d] * f[d]
			}
			scores[v+1] = s
			ok[v+1] = allowed(i, c)
		}
		// Softmax over allowed options.
		max := math.Inf(-1)
		for v := range scores {
			if ok[v] && scores[v] > max {
				max = scores[v]
			}
		}
		z := 0.0
		probs := make([]float64, len(scores))
		for v := range scores {
			if ok[v] {
				probs[v] = math.Exp(scores[v] - max)
				z += probs[v]
			}
		}
		for v := range probs {
			probs[v] /= z
		}
		// Target index.
		target := 0
		if advisorOf[i] >= 0 {
			for v, c := range cands {
				if c.Advisor == advisorOf[i] {
					target = v + 1
					break
				}
			}
			if target == 0 {
				return // true advisor filtered from candidates: zero gradient
			}
		}
		g[dim] = -probs[0]
		if target == 0 {
			g[dim] += 1
		}
		touched := false
		for v, c := range cands {
			f := feats[[2]int{i, c.Advisor}]
			coef := -probs[v+1]
			if v+1 == target {
				coef += 1
			}
			if coef == 0 {
				continue
			}
			touched = true
			for d := 0; d < dim; d++ {
				g[d] += coef * f[d]
			}
		}
		if touched {
			for d := 0; d < dim; d++ {
				g[d] -= opt.L2 * m.W[d]
			}
		}
	}

	idx := append([]int(nil), trainIdx...)
	lr := opt.LR
	// Mini-batches of ~batchSize examples: big enough that the parallel
	// gradient fan-out inside a batch amortizes the pool's per-call
	// overhead over real work, and a pure function of n — never of P — so
	// the update sequence is too.
	const batchSize = 64
	nb := len(idx) / batchSize
	if nb < 1 {
		nb = 1
	}
	// Per-example gradient slots for one batch (only one batch is in
	// flight at a time); slot j-lo belongs to position j of the shuffled
	// order, so parallel writes are disjoint.
	grads := make([][]float64, (len(idx)+nb-1)/nb+1)
	for j := range grads {
		grads[j] = make([]float64, dim+1)
	}
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for b := 0; b < nb; b++ {
			lo, hi := par.ChunkBoundsN(len(idx), nb, b)
			if err := par.For(o, hi-lo, func(glo, ghi int) {
				for j := glo; j < ghi; j++ {
					exGrad(idx[lo+j], grads[j])
				}
			}); err != nil {
				return nil, err
			}
			// Apply in example order: deterministic floating-point sums.
			for j := 0; j < hi-lo; j++ {
				g := grads[j]
				m.Bias += lr * g[dim]
				for d := 0; d < dim; d++ {
					m.W[d] += lr * g[d]
				}
			}
		}
		lr *= 0.97
	}
	return m, nil
}

// Infer runs TPFG's max-product message passing with the learned potentials:
// candidate locals become exp(w·f) and the no-parent weight exp(bias), so
// temporal constraints are enforced jointly at prediction time too. An
// optional par.Opts bounds the parallelism of the potential scaling and the
// message-passing sweeps; predictions are identical at any setting. Infer
// only returns an error when o.Ctx is cancelled.
func (m *Model) Infer(net *tpfg.Network, feats map[[2]int][]float64, opts ...par.Opts) (*tpfg.Result, error) {
	var o par.Opts
	if len(opts) > 0 {
		o = opts[0]
	}
	scaled := &tpfg.Network{
		NumAuthors: net.NumAuthors,
		Cands:      make([][]tpfg.Candidate, net.NumAuthors),
		First:      net.First,
	}
	err := par.For(o, net.NumAuthors, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cands := net.Cands[i]
			out := make([]tpfg.Candidate, len(cands))
			for v, c := range cands {
				f := feats[[2]int{i, c.Advisor}]
				s := 0.0
				for d := range m.W {
					s += m.W[d] * f[d]
				}
				c.Local = math.Exp(clamp(s, -20, 20))
				out[v] = c
			}
			scaled.Cands[i] = out
		}
	})
	if err != nil {
		return nil, err
	}
	res := tpfg.Infer(scaled, tpfg.Config{
		NoAdvisorWeight: math.Exp(clamp(m.Bias, -20, 20)),
		P:               o.P, Ctx: o.Ctx,
	})
	if err := o.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
