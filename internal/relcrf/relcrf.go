// Package relcrf implements the supervised hierarchical-relation model of
// Section 6.2: a conditional random field over each object's choice of
// parent, with potential functions over heterogeneous attributes and links
// (collaboration statistics plus venue overlap) and the same temporal
// consistency constraints as TPFG.
//
// Learning maximizes the pseudo-likelihood of labeled parent assignments
// with the neighbors clamped to their labels (Section 6.2.3); prediction
// plugs the learned potentials into TPFG's max-product message passing, so
// the supervised and unsupervised models share one inference engine.
package relcrf

import (
	"math"
	"math/rand"

	"lesm/internal/tpfg"
)

// Paper is a publication record with a venue attribute (the heterogeneous
// signal the CRF exploits beyond TPFG).
type Paper struct {
	Year    int
	Authors []int
	Venue   int
}

// Model holds the learned potential weights: W over pair features and Bias
// for the virtual no-parent option.
type Model struct {
	W    []float64
	Bias float64
}

// Features extends tpfg.PairFeatures with a venue-overlap feature: the
// cosine similarity between the advisee's and the candidate's venue
// histograms (advisors and their students publish in the same venues).
func Features(papers []Paper, numAuthors, numVenues int, net *tpfg.Network) map[[2]int][]float64 {
	plain := make([]tpfg.Paper, len(papers))
	for i, p := range papers {
		plain[i] = tpfg.Paper{Year: p.Year, Authors: p.Authors}
	}
	base := tpfg.PairFeatures(plain, numAuthors, net)
	hist := make([][]float64, numAuthors)
	for a := range hist {
		hist[a] = make([]float64, numVenues)
	}
	for _, p := range papers {
		for _, a := range p.Authors {
			if p.Venue >= 0 && p.Venue < numVenues {
				hist[a][p.Venue]++
			}
		}
	}
	cos := func(a, b []float64) float64 {
		var ab, aa, bb float64
		for i := range a {
			ab += a[i] * b[i]
			aa += a[i] * a[i]
			bb += b[i] * b[i]
		}
		if aa == 0 || bb == 0 {
			return 0
		}
		return ab / math.Sqrt(aa*bb)
	}
	out := map[[2]int][]float64{}
	for key, f := range base {
		ext := make([]float64, len(f)+1)
		copy(ext, f)
		ext[len(f)] = cos(hist[key[0]], hist[key[1]])
		out[key] = ext
	}
	return out
}

// TrainOptions configure pseudo-likelihood SGD.
type TrainOptions struct {
	Epochs int
	LR     float64
	L2     float64
	Seed   int64
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Epochs == 0 {
		o.Epochs = 60
	}
	if o.LR == 0 {
		o.LR = 0.05
	}
	if o.L2 == 0 {
		o.L2 = 1e-4
	}
	return o
}

// Train fits the CRF by maximizing the pseudo-likelihood of the labeled
// parent assignments: for each labeled author i, the conditional
// distribution over i's candidates given all other labels, including the
// temporal constraint factors evaluated at the neighbors' labels.
func Train(net *tpfg.Network, feats map[[2]int][]float64, advisorOf []int, trainIdx []int, opt TrainOptions) *Model {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	var dim int
	for _, f := range feats {
		dim = len(f)
		break
	}
	m := &Model{W: make([]float64, dim)}

	// Advisee index: for constraint evaluation we need, per author i, the
	// labeled advisees x (advisorOf[x] == i) and the start year st_{x,i}.
	type advisee struct{ start int }
	advisees := make([][]advisee, net.NumAuthors)
	inTrain := make([]bool, net.NumAuthors)
	for _, i := range trainIdx {
		inTrain[i] = true
	}
	for x := 0; x < net.NumAuthors; x++ {
		if !inTrain[x] || advisorOf[x] < 0 {
			continue
		}
		for _, c := range net.Cands[x] {
			if c.Advisor == advisorOf[x] {
				advisees[c.Advisor] = append(advisees[c.Advisor], advisee{start: c.Start})
			}
		}
	}

	// allowed reports whether i choosing candidate c is compatible with i's
	// labeled advisees: i must stop being advised before advising starts.
	allowed := func(i int, c tpfg.Candidate) bool {
		for _, a := range advisees[i] {
			if c.End >= a.start {
				return false
			}
		}
		return true
	}

	idx := append([]int(nil), trainIdx...)
	lr := opt.LR
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for _, i := range idx {
			cands := net.Cands[i]
			// Scores: virtual no-parent option first.
			scores := make([]float64, len(cands)+1)
			ok := make([]bool, len(cands)+1)
			scores[0] = m.Bias
			ok[0] = true
			for v, c := range cands {
				f := feats[[2]int{i, c.Advisor}]
				s := 0.0
				for d := range m.W {
					s += m.W[d] * f[d]
				}
				scores[v+1] = s
				ok[v+1] = allowed(i, c)
			}
			// Softmax over allowed options.
			max := math.Inf(-1)
			for v := range scores {
				if ok[v] && scores[v] > max {
					max = scores[v]
				}
			}
			z := 0.0
			probs := make([]float64, len(scores))
			for v := range scores {
				if ok[v] {
					probs[v] = math.Exp(scores[v] - max)
					z += probs[v]
				}
			}
			for v := range probs {
				probs[v] /= z
			}
			// Target index.
			target := 0
			if advisorOf[i] >= 0 {
				for v, c := range cands {
					if c.Advisor == advisorOf[i] {
						target = v + 1
						break
					}
				}
				if target == 0 {
					continue // true advisor filtered from candidates
				}
			}
			// Gradient step: observed minus expected features.
			gBias := -probs[0]
			if target == 0 {
				gBias += 1
			}
			m.Bias += lr * gBias
			for v, c := range cands {
				f := feats[[2]int{i, c.Advisor}]
				coef := -probs[v+1]
				if v+1 == target {
					coef += 1
				}
				if coef == 0 {
					continue
				}
				for d := range m.W {
					m.W[d] += lr * (coef*f[d] - opt.L2*m.W[d])
				}
			}
		}
		lr *= 0.97
	}
	return m
}

// Infer runs TPFG's max-product message passing with the learned potentials:
// candidate locals become exp(w·f) and the no-parent weight exp(bias), so
// temporal constraints are enforced jointly at prediction time too.
func (m *Model) Infer(net *tpfg.Network, feats map[[2]int][]float64) *tpfg.Result {
	scaled := &tpfg.Network{
		NumAuthors: net.NumAuthors,
		Cands:      make([][]tpfg.Candidate, net.NumAuthors),
		First:      net.First,
	}
	for i, cands := range net.Cands {
		out := make([]tpfg.Candidate, len(cands))
		for v, c := range cands {
			f := feats[[2]int{i, c.Advisor}]
			s := 0.0
			for d := range m.W {
				s += m.W[d] * f[d]
			}
			c.Local = math.Exp(clamp(s, -20, 20))
			out[v] = c
		}
		scaled.Cands[i] = out
	}
	return tpfg.Infer(scaled, tpfg.Config{NoAdvisorWeight: math.Exp(clamp(m.Bias, -20, 20))})
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
