package relcrf

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"lesm/internal/synth"
	"lesm/internal/tpfg"
)

func setup(seed int64) (*synth.Genealogy, []Paper, *tpfg.Network, map[[2]int][]float64) {
	g := synth.NewGenealogy(synth.GenealogyConfig{Seed: seed})
	papers := make([]Paper, len(g.Papers))
	plain := make([]tpfg.Paper, len(g.Papers))
	for i, p := range g.Papers {
		papers[i] = Paper{Year: p.Year, Authors: p.Authors, Venue: p.Venue}
		plain[i] = tpfg.Paper{Year: p.Year, Authors: p.Authors}
	}
	net := tpfg.Preprocess(plain, g.NumAuthors, tpfg.PreprocessOptions{Rules: tpfg.AllRules})
	feats := Features(papers, g.NumAuthors, g.NumVenues, net)
	return g, papers, net, feats
}

func split(g *synth.Genealogy, frac float64) (train, test []int) {
	for a, adv := range g.AdvisorOf {
		if adv < 0 {
			continue
		}
		if float64(len(train)) < frac*float64(g.NumAdvised()) {
			train = append(train, a)
		} else {
			test = append(test, a)
		}
	}
	return
}

func TestFeaturesIncludeVenueOverlap(t *testing.T) {
	g, _, _, feats := setup(81)
	if len(feats) == 0 {
		t.Fatal("no features")
	}
	var dim int
	for _, f := range feats {
		dim = len(f)
		break
	}
	// tpfg.PairFeatures has 6 dims; venue overlap adds one.
	if dim != 7 {
		t.Fatalf("feature dim = %d, want 7", dim)
	}
	// Venue overlap between a student and the true advisor should usually
	// be high (students adopt the advisor's venues).
	high, n := 0, 0
	for a, adv := range g.AdvisorOf {
		if adv < 0 {
			continue
		}
		if f, ok := feats[[2]int{a, adv}]; ok {
			n++
			if f[dim-1] > 0.5 {
				high++
			}
		}
	}
	if n == 0 {
		t.Fatal("no advisor pairs in candidate graph")
	}
	if frac := float64(high) / float64(n); frac < 0.7 {
		t.Fatalf("venue overlap high for only %v of true pairs", frac)
	}
}

func TestTrainImprovesOverUnsupervised(t *testing.T) {
	g, _, net, feats := setup(82)
	train, test := split(g, 0.5)
	m, err := Train(net, feats, g.AdvisorOf, train, TrainOptions{Seed: 83})
	if err != nil {
		t.Fatal(err)
	}
	crfPred := mustInfer(t, m, net, feats).Predict()
	crfAcc := tpfg.Accuracy(crfPred, g.AdvisorOf, test)
	unsup := tpfg.Infer(net, tpfg.Config{})
	unsupAcc := tpfg.Accuracy(unsup.Predict(), g.AdvisorOf, test)
	t.Logf("accuracy: CRF=%.3f TPFG=%.3f", crfAcc, unsupAcc)
	if crfAcc < 0.6 {
		t.Fatalf("CRF accuracy = %v", crfAcc)
	}
	if crfAcc+0.03 < unsupAcc {
		t.Fatalf("supervised CRF (%v) clearly worse than unsupervised TPFG (%v)", crfAcc, unsupAcc)
	}
}

func TestTrainedWeightsFinite(t *testing.T) {
	g, _, net, feats := setup(84)
	train, _ := split(g, 0.3)
	m, err := Train(net, feats, g.AdvisorOf, train, TrainOptions{Seed: 85, Epochs: 20})
	if err != nil {
		t.Fatal(err)
	}
	for d, w := range m.W {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("weight %d = %v", d, w)
		}
	}
	if math.IsNaN(m.Bias) {
		t.Fatal("bias NaN")
	}
}

func TestMoreTrainingDataHelps(t *testing.T) {
	g, _, net, feats := setup(86)
	// Fixed test set: last 30% of advised authors.
	var advised []int
	for a, adv := range g.AdvisorOf {
		if adv >= 0 {
			advised = append(advised, a)
		}
	}
	cut := len(advised) * 7 / 10
	test := advised[cut:]
	accAt := func(frac float64) float64 {
		n := int(frac * float64(cut))
		m, err := Train(net, feats, g.AdvisorOf, advised[:n], TrainOptions{Seed: 87})
		if err != nil {
			t.Fatal(err)
		}
		return tpfg.Accuracy(mustInfer(t, m, net, feats).Predict(), g.AdvisorOf, test)
	}
	small := accAt(0.1)
	large := accAt(1.0)
	t.Logf("accuracy: 10%%=%.3f 100%%=%.3f", small, large)
	if large+0.05 < small {
		t.Fatalf("more training data hurt badly: %v -> %v", small, large)
	}
}

// TestTrainDeterministicAcrossP pins the mini-batch trainer's determinism
// contract: batch boundaries come from the runtime's P-independent
// chunking and per-example gradients apply in example order, so the
// learned weights must be bit-identical at any parallelism level.
func TestTrainDeterministicAcrossP(t *testing.T) {
	g, _, net, feats := setup(88)
	train, _ := split(g, 0.5)
	run := func(p int) *Model {
		m, err := Train(net, feats, g.AdvisorOf, train, TrainOptions{Seed: 89, Epochs: 15, P: p})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	want := run(1)
	for _, p := range []int{2, 8} {
		if got := run(p); !reflect.DeepEqual(want, got) {
			t.Fatalf("P=%d weights differ from P=1: %v vs %v (bias %v vs %v)",
				p, got.W, want.W, got.Bias, want.Bias)
		}
	}
}

func TestTrainCancelledContextReturnsError(t *testing.T) {
	g, _, net, feats := setup(90)
	train, _ := split(g, 0.5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := Train(net, feats, g.AdvisorOf, train, TrainOptions{Seed: 91, Ctx: ctx})
	if !errors.Is(err, context.Canceled) || m != nil {
		t.Fatalf("model=%v err=%v, want nil model and context.Canceled", m, err)
	}
}

// mustInfer unwraps Infer for tests that pass no cancellation context.
func mustInfer(t *testing.T, m *Model, net *tpfg.Network, feats map[[2]int][]float64) *tpfg.Result {
	t.Helper()
	res, err := m.Infer(net, feats)
	if err != nil {
		t.Fatal(err)
	}
	return res
}
