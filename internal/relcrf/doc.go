// Package relcrf implements the supervised hierarchical-relation model of
// Section 6.2: a conditional random field over each object's choice of
// parent, with potential functions over heterogeneous attributes and links
// (collaboration statistics plus venue overlap) and the same temporal
// consistency constraints as TPFG.
//
// Learning maximizes the pseudo-likelihood of labeled parent assignments
// with the neighbors clamped to their labels (Section 6.2.3); prediction
// plugs the learned potentials into TPFG's max-product message passing, so
// the supervised and unsupervised models share one inference engine.
package relcrf
