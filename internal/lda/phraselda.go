package lda

// PhraseDoc is a document partitioned into a bag of phrases (each phrase a
// word-id sequence), the output form of ToPMine's segmentation step.
type PhraseDoc [][]int

// RunPhrases fits the phrase-constrained LDA of Section 4.4.3: each phrase
// instance receives a single topic shared by all of its words, sampled from
//
//	p(z=k) ∝ (n_dk + α) · Π_i (n_k,w_i + β + c_i) / (n_k + Vβ + i)
//
// where c_i counts earlier occurrences of word w_i inside the same phrase.
// Sampling one topic per multi-word phrase is also why PhraseLDA often runs
// faster than token-level LDA (Table 4.5).
//
// Like Run, sweeps execute as chunked document passes on the shared
// parallel runtime with per-document (Seed, doc, sweep) PRNG streams and
// chunk-ordered delta merging, so the model is bit-identical at any
// Config.P. RunPhrases only returns an error when Config.Ctx is cancelled.
func RunPhrases(docs []PhraseDoc, v int, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	o := cfg.parOpts()
	kTotal := cfg.K
	if cfg.Background {
		kTotal++
	}
	d := len(docs)
	nDK := make([][]int, d)
	nKV := make([][]int, kTotal)
	nK := make([]int, kTotal)
	for k := range nKV {
		nKV[k] = make([]int, v)
	}
	// zP[d][p] is the topic of phrase p in doc d.
	zP := make([][]int, d)
	alpha := alphaVec(cfg, kTotal)
	sc := newSweepScratch(samplerChunks(d, kTotal, v), kTotal, v)

	err := gibbsPass(o, cfg.Seed, 0, d, sc, nKV, nK,
		func(di int, rng *stream, dl *delta, _ []float64) {
			doc := docs[di]
			nDK[di] = make([]int, kTotal)
			zP[di] = make([]int, len(doc))
			for pi, phrase := range doc {
				k := rng.Intn(kTotal)
				zP[di][pi] = k
				nDK[di][k] += len(phrase)
				for _, w := range phrase {
					dl.add(k, w, 1)
				}
			}
		})
	if err != nil {
		return nil, err
	}

	vb := float64(v) * cfg.Beta
	for it := 0; it < cfg.Iters; it++ {
		err := gibbsPass(o, cfg.Seed, uint64(it+1), d, sc, nKV, nK,
			func(di int, rng *stream, dl *delta, probs []float64) {
				doc := docs[di]
				for pi, phrase := range doc {
					k := zP[di][pi]
					nDK[di][k] -= len(phrase)
					for _, w := range phrase {
						dl.add(k, w, -1)
					}
					total := 0.0
					for kk := 0; kk < kTotal; kk++ {
						p := float64(nDK[di][kk]) + alpha[kk]
						for i, w := range phrase {
							// c counts earlier in-phrase occurrences of w.
							c := 0
							for j := 0; j < i; j++ {
								if phrase[j] == w {
									c++
								}
							}
							p *= (float64(nKV[kk][w]+dl.kv[kk][w]) + cfg.Beta + float64(c)) /
								(float64(nK[kk]+dl.k[kk]) + vb + float64(i))
						}
						probs[kk] = p
						total += p
					}
					r := rng.Float64() * total
					k = kTotal - 1
					for kk := 0; kk < kTotal; kk++ {
						r -= probs[kk]
						if r <= 0 {
							k = kk
							break
						}
					}
					zP[di][pi] = k
					nDK[di][k] += len(phrase)
					for _, w := range phrase {
						dl.add(k, w, 1)
					}
				}
			})
		if err != nil {
			return nil, err
		}
	}

	// Expand phrase assignments to token assignments for the summary.
	flat := make([][]int, d)
	zTok := make([][]int, d)
	for di, doc := range docs {
		for pi, phrase := range doc {
			for _, w := range phrase {
				flat[di] = append(flat[di], w)
				zTok[di] = append(zTok[di], zP[di][pi])
			}
		}
	}
	m := summarize(flat, v, kTotal, cfg, nDK, nKV, nK, zTok)
	m.PhraseZ = zP
	return m, nil
}
