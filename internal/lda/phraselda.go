package lda

import (
	"fmt"
	"time"

	"lesm/internal/par"
)

// PhraseDoc is a document partitioned into a bag of phrases (each phrase a
// word-id sequence), the output form of ToPMine's segmentation step.
type PhraseDoc [][]int

// RunPhrases fits the phrase-constrained LDA of Section 4.4.3: each phrase
// instance receives a single topic shared by all of its words, sampled from
//
//	p(z=k) ∝ (n_dk + α) · Π_i (n_k,w_i + β + c_i) / (n_k + Vβ + i)
//
// where c_i counts earlier occurrences of word w_i inside the same phrase.
// Sampling one topic per multi-word phrase is also why PhraseLDA often runs
// faster than token-level LDA (Table 4.5).
//
// Like Run, sweeps execute as chunked document passes on the shared
// parallel runtime with per-document (Seed, doc, sweep) PRNG streams and
// chunk-ordered delta merging, so the model is bit-identical at any
// Config.P. The sparse core applies to single-word phrases — for those the
// conditional is exactly token LDA's, so they go through the bucket+alias
// decomposition at O(K_d) amortized; multi-word phrases keep the dense
// O(K·len) product (the bucket split does not factor across a product of
// word likelihoods) while reading counts through the same incremental
// state. Since segmented corpora are dominated by unigram phrases, the
// sparse win carries over. RunPhrases returns an error when the config or
// a token id is invalid, or when Config.Ctx is cancelled.
func RunPhrases(docs []PhraseDoc, v int, cfg Config) (*Model, error) {
	if err := cfg.validate(v); err != nil {
		return nil, err
	}
	for di, doc := range docs {
		for pi, phrase := range doc {
			for _, w := range phrase {
				if w < 0 || w >= v {
					return nil, fmt.Errorf("lda: doc %d phrase %d: word id %d outside vocabulary [0, %d)", di, pi, w, v)
				}
			}
		}
	}
	cfg = cfg.withDefaults()
	o := cfg.parOpts()
	kTotal := cfg.K
	if cfg.Background {
		kTotal++
	}
	d := len(docs)
	nDK := make([][]int, d)
	nKV := make([][]int, kTotal)
	nK := make([]int, kTotal)
	for k := range nKV {
		nKV[k] = make([]int, v)
	}
	// zP[d][p] is the topic of phrase p in doc d.
	zP := make([][]int, d)
	alpha := alphaVec(cfg, kTotal)
	sc := newSweepScratch(samplerChunks(d, kTotal, v), kTotal, v)
	core := cfg.Sampler.ResolveFor(kTotal, v)

	var fp Fingerprint
	if cfg.CheckpointFunc != nil || cfg.Stop != nil || cfg.Resume != nil {
		fp = newFingerprint("phraselda", core, cfg, v, d, countPhraseTokens(docs), hashPhraseDocs(docs))
	}

	start := 0
	if cp := cfg.Resume; cp != nil {
		docLens := make([]int, d)
		for di, doc := range docs {
			docLens[di] = len(doc)
		}
		if err := cp.check(fp, kTotal, docLens); err != nil {
			return nil, err
		}
		restoreCounts(cp, kTotal, nDK, nKV, nK, zP,
			func(di, slot int) int { return len(docs[di][slot]) },
			func(di, slot, j int) int { return docs[di][slot][j] })
		start = cp.Sweep
	} else {
		err := gibbsPass(o, cfg.Seed, 0, d, sc, nKV, nK, nil, nil,
			func(_, di int, rng *stream, dl *delta, _ []float64) {
				doc := docs[di]
				nDK[di] = make([]int, kTotal)
				zP[di] = make([]int, len(doc))
				for pi, phrase := range doc {
					k := rng.Intn(kTotal)
					zP[di][pi] = k
					nDK[di][k] += len(phrase)
					for _, w := range phrase {
						dl.add(k, w, 1)
					}
				}
			})
		if err != nil {
			return nil, err
		}
	}

	rr := newRunRecorder(cfg, "phraselda", d, countPhraseTokens(docs), sc,
		phraseProbe(docs, alpha, cfg.Beta, v, nDK, nKV, nK))
	ck := newCkptState(cfg, fp, zP)

	var err error
	rebuilds := 0
	switch core {
	case SamplerSparse:
		err = runPhrasesSparse(o, cfg, docs, v, d, start, sc, alpha, nDK, nKV, nK, zP, rr, ck)
		if d > 0 {
			rebuilds = cfg.Iters
		}
	case SamplerMH:
		rebuilds, err = runPhrasesMH(o, cfg, docs, v, d, start, sc, alpha, nDK, nKV, nK, zP, rr, ck)
	default:
		err = runPhrasesDense(o, cfg, docs, v, d, kTotal, start, sc, alpha, nDK, nKV, nK, zP, rr, ck)
	}
	if err != nil {
		return nil, err
	}

	// Expand phrase assignments to token assignments for the summary.
	flat := make([][]int, d)
	zTok := make([][]int, d)
	for di, doc := range docs {
		for pi, phrase := range doc {
			for _, w := range phrase {
				flat[di] = append(flat[di], w)
				zTok[di] = append(zTok[di], zP[di][pi])
			}
		}
	}
	m := summarize(flat, v, kTotal, cfg, nDK, nKV, nK, zTok)
	m.Sampler, m.AliasRebuilds = core, rebuilds
	m.PhraseZ = zP
	return m, nil
}

// samplePhrase draws a topic for one (already-removed) phrase from the
// dense product conditional, reading effective counts (global + own-chunk
// delta) by direct indexing — this is the innermost loop of both phrase
// cores, shared so the dense/sparse A/B can never desynchronize on the
// phrase math (the in-phrase duplicate-word correction c and the
// position-shifted denominator). Consumes exactly one PRNG step.
func samplePhrase(phrase []int, nDK, nK []int, nKV [][]int, dl *delta,
	alpha []float64, beta, vb float64, probs []float64, rng *stream) int {
	kTotal := len(alpha)
	total := 0.0
	for kk := 0; kk < kTotal; kk++ {
		p := float64(nDK[kk]) + alpha[kk]
		for i, w := range phrase {
			// c counts earlier in-phrase occurrences of w.
			c := 0
			for j := 0; j < i; j++ {
				if phrase[j] == w {
					c++
				}
			}
			p *= (float64(nKV[kk][w]+dl.kv[kk][w]) + beta + float64(c)) /
				(float64(nK[kk]+dl.k[kk]) + vb + float64(i))
		}
		probs[kk] = p
		total += p
	}
	r := rng.Float64() * total
	for kk := 0; kk < kTotal; kk++ {
		r -= probs[kk]
		if r <= 0 {
			return kk
		}
	}
	return kTotal - 1
}

func runPhrasesDense(o par.Opts, cfg Config, docs []PhraseDoc, v, d, kTotal, start int, sc *sweepScratch,
	alpha []float64, nDK [][]int, nKV [][]int, nK []int, zP [][]int, rr *runRecorder, ck *ckptState) error {
	vb := float64(v) * cfg.Beta
	for it := start; it < cfg.Iters; it++ {
		err := gibbsPass(o, cfg.Seed, uint64(it+1), d, sc, nKV, nK, nil, nil,
			func(_, di int, rng *stream, dl *delta, probs []float64) {
				doc := docs[di]
				for pi, phrase := range doc {
					kOld := zP[di][pi]
					k := kOld
					nDK[di][k] -= len(phrase)
					for _, w := range phrase {
						dl.add(k, w, -1)
					}
					k = samplePhrase(phrase, nDK[di], nK, nKV, dl, alpha, cfg.Beta, vb, probs, rng)
					if k != kOld {
						dl.ctr.changed += int64(len(phrase))
					}
					zP[di][pi] = k
					nDK[di][k] += len(phrase)
					for _, w := range phrase {
						dl.add(k, w, 1)
					}
				}
			})
		if err != nil {
			return err
		}
		if err := rr.endSweep(o, it+1, 0, 0); err != nil {
			return err
		}
		if err := ck.boundary(it + 1); err != nil {
			return err
		}
	}
	return nil
}

func runPhrasesSparse(o par.Opts, cfg Config, docs []PhraseDoc, v, d, start int, sc *sweepScratch,
	alpha []float64, nDK [][]int, nKV [][]int, nK []int, zP [][]int, rr *runRecorder, ck *ckptState) error {
	if d == 0 {
		// Every pass is a no-op; skip the per-sweep O(K·V) alias rebuilds.
		return o.Err()
	}
	qa := newQAlias(v)
	sc.enableSparse(alpha, cfg.Beta, v, nKV, nK, qa)
	rr.prime(start, 0)
	var rebuildT time.Duration
	for it := start; it < cfg.Iters; it++ {
		var t0 time.Time
		if rr != nil {
			t0 = time.Now()
		}
		if err := qa.rebuild(o, alpha, cfg.Beta, nKV, nK); err != nil {
			return err
		}
		if rr != nil {
			rebuildT += time.Since(t0)
		}
		err := gibbsPass(o, cfg.Seed, uint64(it+1), d, sc, nKV, nK,
			func(c int) { sc.sparse[c].beginPass() }, nil,
			func(c, di int, rng *stream, _ *delta, probs []float64) {
				ch := sc.sparse[c]
				ch.beginDoc(nDK[di])
				doc := docs[di]
				for pi, phrase := range doc {
					kOld := zP[di][pi]
					k := kOld
					for _, w := range phrase {
						ch.adjust(k, w, -1)
					}
					if len(phrase) == 1 {
						k = ch.sampleToken(phrase[0], rng)
					} else {
						// Multi-word phrases keep the dense product — the
						// bucket split does not factor across a product
						// of word likelihoods.
						k = samplePhrase(phrase, ch.nDK, nK, nKV, ch.dl, alpha, ch.beta, ch.vb, probs, rng)
					}
					if k != kOld {
						ch.dl.ctr.changed += int64(len(phrase))
					}
					zP[di][pi] = k
					for _, w := range phrase {
						ch.adjust(k, w, 1)
					}
				}
			})
		if err != nil {
			return err
		}
		if err := rr.endSweep(o, it+1, it+1, rebuildT); err != nil {
			return err
		}
		if err := ck.boundary(it + 1); err != nil {
			return err
		}
	}
	return nil
}
