package lda

import (
	"lesm/internal/par"
)

// Parallel Gibbs machinery shared by Run and RunPhrases.
//
// A sweep is one chunked pass over the documents on the shared runtime
// (internal/par). The global count tables nKV/nK are frozen for the
// duration of the pass; every chunk records its count changes in a private
// delta table, and sampling inside a chunk reads global + own-chunk delta.
// After the pass, deltas merge into the global tables in chunk order.
// Chunk boundaries and per-document PRNG streams depend only on
// (seed, n, sweep) — never on the worker count — so the sampled trajectory
// is bit-identical at any parallelism level. Across chunks the counts are
// one pass stale, the standard approximate-distributed-Gibbs trade
// (AD-LDA, Newman et al. 2009); within a chunk sampling remains fully
// collapsed.

// Sampler chunk policy: clamp(d/minDocsPerChunk, 1, maxSamplerChunks),
// further lowered until the delta tables fit deltaCellBudget.
//
// The sampler deliberately uses coarser chunks than the runtime's default
// policy, for two reasons. Statistically, counts are stale across chunks
// within a sweep, so fewer/bigger chunks keep the sampler closer to fully
// collapsed Gibbs — and the small corpora where staleness hurts most are
// exactly the ones that get few chunks. In memory, each chunk carries a
// delta table of O(topics x vocabulary) ints, so maxSamplerChunks bounds
// the sampler at 64 such tables while still exposing 64-way parallelism
// for corpora of 2048+ documents, and deltaCellBudget caps the tables'
// total cell count (~0.5 GB of ints when saturated) so a huge vocabulary
// sheds parallelism instead of multiplying the serial sampler's memory.
const (
	minDocsPerChunk  = 32
	maxSamplerChunks = 64
	deltaCellBudget  = 1 << 26
)

// samplerChunks is the pass's chunk count for d documents over kTotal
// topics and v words. A pure function of the problem shape, never of P —
// the determinism contract's requirement.
func samplerChunks(d, kTotal, v int) int {
	nc := d / minDocsPerChunk
	if nc < 1 {
		nc = 1
	}
	if nc > maxSamplerChunks {
		nc = maxSamplerChunks
	}
	if cells := kTotal * v; cells > 0 {
		if byMem := deltaCellBudget / cells; nc > byMem {
			nc = byMem
			if nc < 1 {
				nc = 1
			}
		}
	}
	return nc
}

// delta is one chunk's private count-table diff against the sweep-start
// global tables. Reads during sampling go through the dense kv table;
// writes go through add, which also tracks the touched cells, so folding a
// delta back into the globals costs O(cells touched) rather than a full
// O(topics x vocabulary) scan per chunk per sweep — on realistic
// vocabularies a chunk's documents touch a tiny fraction of the table.
type delta struct {
	v       int
	kv      [][]int // [kTotal][v] topic-word count changes
	k       []int   // [kTotal] topic total changes
	touched []bool  // [kTotal*v] whether the flat cell is on the dirty list
	dirty   []int   // flat k*v+w indices with touched == true
}

func newDelta(kTotal, v int) *delta {
	kv := make([][]int, kTotal)
	for k := range kv {
		kv[k] = make([]int, v)
	}
	return &delta{
		v:       v,
		kv:      kv,
		k:       make([]int, kTotal),
		touched: make([]bool, kTotal*v),
	}
}

// add applies a count change for (topic k, word w), recording the cell on
// the dirty list on first touch.
func (dl *delta) add(k, w, c int) {
	idx := k*dl.v + w
	if !dl.touched[idx] {
		dl.touched[idx] = true
		dl.dirty = append(dl.dirty, idx)
	}
	dl.kv[k][w] += c
	dl.k[k] += c
}

// applyTo folds the delta into the global tables and resets it for the
// next pass, visiting only the touched cells. Counts are integers, so
// merge order cannot change the result; we still merge in chunk order to
// honor the runtime's ordered-reduction contract.
func (dl *delta) applyTo(nKV [][]int, nK []int) {
	for _, idx := range dl.dirty {
		k, w := idx/dl.v, idx%dl.v
		if c := dl.kv[k][w]; c != 0 {
			nKV[k][w] += c
			dl.kv[k][w] = 0
		}
		dl.touched[idx] = false
	}
	dl.dirty = dl.dirty[:0]
	for k, c := range dl.k {
		nK[k] += c
		dl.k[k] = 0
	}
}

// sweepScratch is the per-chunk scratch of a sampler run — delta tables
// and probability buffers — allocated once and reused across all sweeps
// (the tables are O(topics x vocabulary) each, too big to reallocate per
// sweep). applyTo re-zeroes each delta as it folds it into the globals.
type sweepScratch struct {
	deltas []*delta
	probs  [][]float64
}

func newSweepScratch(nc, kTotal, v int) *sweepScratch {
	sc := &sweepScratch{deltas: make([]*delta, nc), probs: make([][]float64, nc)}
	for c := range sc.deltas {
		sc.deltas[c] = newDelta(kTotal, v)
		sc.probs[c] = make([]float64, kTotal)
	}
	return sc
}

// gibbsPass runs one chunked pass (initialization or a Gibbs sweep) over d
// documents, using the chunk count the scratch was sized for. visit
// samples document di with its own counter-based PRNG stream derived from
// (seed, di, sweep), records count changes in the chunk's delta dl, and
// may use probs (len kTotal) as scratch. On success the chunk deltas are
// merged into nKV/nK in chunk order and reset; on cancellation the global
// tables are left unchanged and the context error is returned. A pass over
// zero documents is a no-op.
func gibbsPass(o par.Opts, seed int64, sweep uint64, d int, sc *sweepScratch,
	nKV [][]int, nK []int, visit func(di int, rng *stream, dl *delta, probs []float64)) error {
	if d <= 0 {
		return o.Err()
	}
	nc := len(sc.deltas)
	err := par.ForChunksN(o, d, nc, func(c, lo, hi int) {
		dl := sc.deltas[c]
		probs := sc.probs[c]
		for di := lo; di < hi; di++ {
			rng := newStream(seed, uint64(di), sweep)
			visit(di, &rng, dl, probs)
		}
	})
	if err != nil {
		return err
	}
	// ForChunksN clamps nc to d, so trailing deltas may be untouched;
	// applying an empty delta is O(topics), harmless.
	for _, dl := range sc.deltas {
		dl.applyTo(nKV, nK)
	}
	return nil
}

// alphaVec expands the document prior: cfg.Alpha per content topic, with
// the background slot (index cfg.K) inflated by BGWeight when present.
func alphaVec(cfg Config, kTotal int) []float64 {
	alpha := make([]float64, kTotal)
	for k := 0; k < cfg.K; k++ {
		alpha[k] = cfg.Alpha
	}
	if cfg.Background {
		alpha[cfg.K] = cfg.Alpha * cfg.BGWeight
	}
	return alpha
}

// Must unwraps a (model, error) pair from Run or RunPhrases, panicking on
// error. A run can only fail through a cancelled Config.Ctx, so callers
// that pass no context use Must to keep call sites expression-shaped.
func Must(m *Model, err error) *Model {
	if err != nil {
		panic(err)
	}
	return m
}
