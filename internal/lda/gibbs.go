package lda

import (
	"time"

	"lesm/internal/par"
)

// Parallel Gibbs machinery shared by Run and RunPhrases.
//
// A sweep is one chunked pass over the documents on the shared runtime
// (internal/par). The global count tables nKV/nK are frozen for the
// duration of the pass; every chunk records its count changes in a private
// delta table, and sampling inside a chunk reads global + own-chunk delta.
// After the pass, deltas merge into the global tables in chunk order.
// Chunk boundaries and per-document PRNG streams depend only on
// (seed, n, sweep) — never on the worker count — so the sampled trajectory
// is bit-identical at any parallelism level. Across chunks the counts are
// one pass stale, the standard approximate-distributed-Gibbs trade
// (AD-LDA, Newman et al. 2009); within a chunk sampling remains fully
// collapsed.

// samplerChunks is the pass's chunk count for d documents over kTotal
// topics and v words — the shared coarse sampler policy (par.SamplerChunks:
// clamp(d/32, 1, 64), lowered until the O(topics x vocabulary) delta
// tables fit the cell budget; see the rationale there). internal/tng uses
// the same policy, so the two samplers' staleness/memory behavior cannot
// silently diverge.
func samplerChunks(d, kTotal, v int) int {
	return par.SamplerChunks(d, kTotal*v)
}

// delta is one chunk's private count-table diff against the sweep-start
// global tables. Reads during sampling go through the dense kv table;
// writes go through add, which also tracks the touched cells, so folding a
// delta back into the globals costs O(cells touched) rather than a full
// O(topics x vocabulary) scan per chunk per sweep — on realistic
// vocabularies a chunk's documents touch a tiny fraction of the table.
type delta struct {
	v       int
	kv      [][]int // [kTotal][v] topic-word count changes
	k       []int   // [kTotal] topic total changes
	touched []bool  // [kTotal*v] whether the flat cell is on the dirty list
	dirty   []int   // flat k*v+w indices with touched == true
	// ctr tallies sampling events for observability. The cores bump
	// these unconditionally (plain int adds on chunk-private state, far
	// cheaper than a branch per token); they are harvested and reset by
	// runRecorder only when a Recorder is attached, and are never read
	// by the sampling math, so they cannot perturb the trajectory.
	ctr sweepCounters
}

func newDelta(kTotal, v int) *delta {
	kv := make([][]int, kTotal)
	for k := range kv {
		kv[k] = make([]int, v)
	}
	return &delta{
		v:       v,
		kv:      kv,
		k:       make([]int, kTotal),
		touched: make([]bool, kTotal*v),
	}
}

// add applies a count change for (topic k, word w), recording the cell on
// the dirty list on first touch.
func (dl *delta) add(k, w, c int) {
	idx := k*dl.v + w
	if !dl.touched[idx] {
		dl.touched[idx] = true
		dl.dirty = append(dl.dirty, idx)
	}
	dl.kv[k][w] += c
	dl.k[k] += c
}

// applyTo folds the delta into the global tables and resets it for the
// next pass, visiting only the touched cells. Counts are integers, so
// merge order cannot change the result; we still merge in chunk order to
// honor the runtime's ordered-reduction contract.
func (dl *delta) applyTo(nKV [][]int, nK []int) {
	for _, idx := range dl.dirty {
		k, w := idx/dl.v, idx%dl.v
		if c := dl.kv[k][w]; c != 0 {
			nKV[k][w] += c
			dl.kv[k][w] = 0
		}
		dl.touched[idx] = false
	}
	dl.dirty = dl.dirty[:0]
	for k, c := range dl.k {
		nK[k] += c
		dl.k[k] = 0
	}
}

// sweepScratch is the per-chunk scratch of a sampler run — delta tables,
// probability buffers and (for the sparse sampler) incremental bucket
// state — allocated once and reused across all sweeps (the tables are
// O(topics x vocabulary) each, too big to reallocate per sweep). applyTo
// re-zeroes each delta as it folds it into the globals.
type sweepScratch struct {
	deltas []*delta
	probs  [][]float64
	// rngs[c] is chunk c's reusable stream slot: per-document streams are
	// values reseeded in place, so a sweep performs no per-document heap
	// allocation (the pointer handed to visit would otherwise force each
	// stream to escape).
	rngs []stream
	// sparse[c] is chunk c's incremental bucket state; nil for dense runs
	// (see enableSparse / sparse.go).
	sparse []*sparseChunk
	// mh[c] is chunk c's Metropolis–Hastings state; nil unless the MH core
	// runs (see enableMH / mh.go).
	mh []*mhChunk
	// ps, when non-nil, makes gibbsPass accumulate pass timings and
	// delta-table sizes (set by newRunRecorder; nil keeps the pass free
	// of time syscalls on the unrecorded path).
	ps *passStats

	// pass carries one gibbsPass invocation's parameters to chunkFn, the
	// chunk closure built once per run — re-binding fields is free, so a
	// sweep allocates no closure either (TestNilRecorderSweepAllocFree).
	pass    passArgs
	chunkFn func(c, lo, hi int)
}

// passArgs are one gibbsPass call's parameters, held on the scratch so
// the prebuilt chunk closure can read them.
type passArgs struct {
	seed  int64
	sweep uint64
	begin func(c int)
	visit func(c, di int, rng *stream, dl *delta, probs []float64)
}

func newSweepScratch(nc, kTotal, v int) *sweepScratch {
	sc := &sweepScratch{
		deltas: make([]*delta, nc),
		probs:  make([][]float64, nc),
		rngs:   make([]stream, nc),
	}
	for c := range sc.deltas {
		sc.deltas[c] = newDelta(kTotal, v)
		sc.probs[c] = make([]float64, kTotal)
	}
	sc.chunkFn = func(c, lo, hi int) {
		if sc.pass.begin != nil {
			sc.pass.begin(c)
		}
		dl := sc.deltas[c]
		probs := sc.probs[c]
		rng := &sc.rngs[c]
		for di := lo; di < hi; di++ {
			*rng = newStream(sc.pass.seed, uint64(di), sc.pass.sweep)
			sc.pass.visit(c, di, rng, dl, probs)
		}
	}
	return sc
}

// gibbsPass runs one chunked pass (initialization or a Gibbs sweep) over d
// documents, using the chunk count the scratch was sized for. begin, when
// non-nil, runs once at the start of each chunk (the sparse sampler
// refreshes its per-chunk bucket masses there). end, when non-nil, runs
// once after every chunk finishes but *before* the deltas merge into the
// global tables — the MH core joins its background alias rebuild there,
// while the globals the rebuild reads are still frozen; an end error
// aborts the pass without merging. visit samples document di of chunk c
// with its own counter-based PRNG stream derived from (seed, di, sweep),
// records count changes in the chunk's delta dl, and may use probs (len
// kTotal) as scratch. On success the chunk deltas are merged into nKV/nK
// in chunk order and reset; on cancellation the global tables are left
// unchanged and the context error is returned. A pass over zero documents
// is a no-op.
func gibbsPass(o par.Opts, seed int64, sweep uint64, d int, sc *sweepScratch,
	nKV [][]int, nK []int, begin func(c int), end func() error,
	visit func(c, di int, rng *stream, dl *delta, probs []float64)) error {
	if d <= 0 {
		return o.Err()
	}
	var start time.Time
	if sc.ps != nil {
		start = time.Now()
	}
	nc := len(sc.deltas)
	sc.pass = passArgs{seed: seed, sweep: sweep, begin: begin, visit: visit}
	err := par.ForChunksN(o, d, nc, sc.chunkFn)
	sc.pass = passArgs{} // drop the closure references
	if err != nil {
		return err
	}
	if end != nil {
		if err := end(); err != nil {
			return err
		}
	}
	// ForChunksN clamps nc to d, so trailing deltas may be untouched;
	// applying an empty delta is O(topics), harmless.
	if sc.ps != nil {
		mergeStart := time.Now()
		for _, dl := range sc.deltas {
			sc.ps.cells += int64(len(dl.dirty))
			dl.applyTo(nKV, nK)
		}
		sc.ps.merge += time.Since(mergeStart)
		sc.ps.wall += time.Since(start)
		return nil
	}
	for _, dl := range sc.deltas {
		dl.applyTo(nKV, nK)
	}
	return nil
}

// alphaVec expands the document prior: cfg.Alpha per content topic, with
// the background slot (index cfg.K) inflated by BGWeight when present.
func alphaVec(cfg Config, kTotal int) []float64 {
	alpha := make([]float64, kTotal)
	for k := 0; k < cfg.K; k++ {
		alpha[k] = cfg.Alpha
	}
	if cfg.Background {
		alpha[cfg.K] = cfg.Alpha * cfg.BGWeight
	}
	return alpha
}

// Must unwraps a (model, error) pair from Run or RunPhrases, panicking on
// error. A run can only fail through a cancelled Config.Ctx, so callers
// that pass no context use Must to keep call sites expression-shaped.
func Must(m *Model, err error) *Model {
	if err != nil {
		panic(err)
	}
	return m
}
