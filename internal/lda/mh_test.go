// MH-core invariants: the alias-proposal kernel must target the *exact*
// collapsed conditional even when its word-proposal tables are stale
// (chi-square check), honor the bit-identical-at-any-P determinism
// contract for Run / RunPhrases / FoldIn, amortize alias rebuilds to
// < 1 per sweep, resolve SamplerAuto per workload, and the new config
// knobs must validate instead of panicking.
package lda

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"lesm/internal/linalg"
	"lesm/internal/par"
)

// TestMHKernelMatchesExactConditional drives mhChunk.sampleToken as a
// single-site Markov chain with the surrounding counts held fixed and the
// word-proposal tables built from *deliberately different* (stale) counts.
// The chain's stationary distribution must still be the exact collapsed
// conditional computed from the current counts — staleness may only slow
// mixing, never shift the target. The stream is counter-based, so the
// chi-square statistic is deterministic: the threshold is ~2x the 99.9%
// critical value of chi2(K-1), far below what a missing or miswired
// acceptance correction produces.
func TestMHKernelMatchesExactConditional(t *testing.T) {
	const (
		kTotal = 8
		v      = 4
		w      = 1
		beta   = 0.1
		n      = 300000
	)
	alpha := []float64{0.3, 0.7, 0.1, 1.2, 0.4, 0.05, 0.9, 0.2}

	// Base counts: the surrounding state with the token under test removed.
	// The exact conditional is computed from these; the chunk sees the
	// *full* counts (base + the token at the chain's current topic), per
	// the virtual-removal convention.
	base := [][]int{
		{3, 9, 0, 2}, {1, 0, 4, 4}, {0, 2, 0, 0}, {5, 7, 1, 3},
		{0, 0, 0, 6}, {2, 1, 8, 0}, {4, 5, 2, 1}, {0, 3, 3, 2},
	}
	baseK := make([]int, kTotal)
	for k, row := range base {
		for _, c := range row {
			baseK[k] += c
		}
	}
	// Stale counts for the proposal tables: shifted and partly zeroed so
	// the proposal visibly disagrees with the target.
	stale := [][]int{
		{0, 1, 2, 0}, {9, 9, 0, 1}, {0, 0, 5, 5}, {1, 0, 0, 0},
		{3, 8, 1, 2}, {0, 4, 0, 7}, {2, 0, 6, 0}, {5, 2, 1, 4},
	}

	prop := newMHProposal(v, kTotal, beta)
	if err := prop.buildInactive(par.Opts{}, stale); err != nil {
		t.Fatal(err)
	}
	prop.swap()

	// Document state: topic tallies of the *other* tokens; zDoc mirrors
	// them slot by slot, with slot i appended for the token under test at
	// its starting topic 0.
	baseDK := []int{2, 0, 1, 3, 0, 1, 0, 2}
	var zDoc []int
	for k, c := range baseDK {
		for j := 0; j < c; j++ {
			_ = j
			zDoc = append(zDoc, k)
		}
	}
	i := len(zDoc)
	zDoc = append(zDoc, 0) // slot i; sampleToken updates it in place

	// Full counts seen by the chunk: base + the token at its current topic.
	// The chain moves these on every accepted transition, exactly as runMH
	// does.
	nKV := make([][]int, kTotal)
	nK := append([]int(nil), baseK...)
	nDK := append([]int(nil), baseDK...)
	for k := range nKV {
		nKV[k] = append([]int(nil), base[k]...)
	}
	nKV[0][w]++
	nK[0]++
	nDK[0]++

	ch := newMHChunk(alpha, beta, v, nKV, nK, newDelta(kTotal, v), prop, linalg.NewAlias(alpha), false)
	ch.beginDoc(nDK, nil)

	// Exact conditional from the base (token-removed) counts.
	vb := float64(v) * beta
	exact := make([]float64, kTotal)
	total := 0.0
	for k := 0; k < kTotal; k++ {
		exact[k] = (float64(baseDK[k]) + alpha[k]) * (float64(base[k][w]) + beta) / (float64(baseK[k]) + vb)
		total += exact[k]
	}

	rng := newStream(77, 0, 1)
	hist := make([]int, kTotal)
	for it := 0; it < n; it++ {
		kPrev := zDoc[i]
		k := ch.sampleToken(w, zDoc, ch.nDK, i, &rng)
		if k != kPrev {
			// Move the counts exactly as runMH's visit loop does: through
			// the chunk's delta, keeping its denominator cache coherent.
			ch.adjust(kPrev, w, -1)
			ch.adjust(k, w, 1)
		}
		hist[k]++
	}
	chi2 := 0.0
	for k := 0; k < kTotal; k++ {
		exp := float64(n) * exact[k] / total
		d := float64(hist[k]) - exp
		chi2 += d * d / exp
	}
	// chi2(7) 99.9% critical value is 24.3; the kernel's serial
	// correlation inflates the statistic somewhat, a wrong target by
	// orders of magnitude.
	if chi2 > 50 {
		t.Fatalf("chi-square %.1f > 50 against exact conditional (hist %v)", chi2, hist)
	}
}

func TestMHRunDeterministicAcrossP(t *testing.T) {
	docs := bigSynthCorpus(160, 71)
	run := func(p int) *Model {
		return Must(Run(docs, 10, Config{K: 3, Iters: 30, Seed: 72, Background: true, P: p, Sampler: SamplerMH, AliasRefresh: 3}))
	}
	want := run(1)
	for _, p := range []int{2, 8} {
		if got := run(p); !reflect.DeepEqual(want, got) {
			t.Fatalf("MH P=%d model differs from P=1 model", p)
		}
	}
	if want.Sampler != SamplerMH {
		t.Fatalf("Model.Sampler = %q, want %q", want.Sampler, SamplerMH)
	}
	// 30 sweeps at refresh 3: initial build + ⌊29/3⌋ amortized rebuilds.
	if wantRebuilds := 1 + 29/3; want.AliasRebuilds != wantRebuilds {
		t.Fatalf("AliasRebuilds = %d, want %d", want.AliasRebuilds, wantRebuilds)
	}
}

func TestMHRunPhrasesDeterministicAcrossP(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	docs := make([]PhraseDoc, 160)
	for d := range docs {
		top := d % 2
		var doc PhraseDoc
		for p := 0; p < 8; p++ {
			// Unigram phrases exercise the MH kernel; bigrams the dense
			// product fallback.
			doc = append(doc, []int{top*6 + rng.Intn(3)})
			doc = append(doc, []int{top*6 + rng.Intn(3), top*6 + 3 + rng.Intn(3)})
		}
		docs[d] = doc
	}
	run := func(p int) *Model {
		return Must(RunPhrases(docs, 12, Config{K: 2, Iters: 30, Seed: 74, P: p, Sampler: SamplerMH}))
	}
	want := run(1)
	for _, p := range []int{2, 8} {
		if got := run(p); !reflect.DeepEqual(want, got) {
			t.Fatalf("MH P=%d phrase model differs from P=1 model", p)
		}
	}
	if want.Sampler != SamplerMH || want.AliasRebuilds != 1+29/DefaultAliasRefresh {
		t.Fatalf("Sampler=%q AliasRebuilds=%d, want mh / %d", want.Sampler, want.AliasRebuilds, 1+29/DefaultAliasRefresh)
	}
}

func TestMHFoldInDeterministicAcrossP(t *testing.T) {
	m := foldInFixture(t)
	fm := FoldInModelFromCounts(m.NKV, m.NK, DefaultFoldInAlpha, m.Beta)
	docs := make([][]int, 97)
	for i := range docs {
		docs[i] = []int{i % 10, (i + 3) % 10, (2 * i) % 10, (i * i) % 10}
	}
	base, err := FoldIn(fm, docs, FoldInConfig{Seed: 5, P: 1, Sampler: SamplerMH})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8} {
		got, err := FoldIn(fm, docs, FoldInConfig{Seed: 5, P: p, Sampler: SamplerMH})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("MH fold-in differs at P=%d", p)
		}
	}
}

// TestMHFoldInMatchesDenseQuality pins that the MH fold-in (same
// stationary conditional, different trajectory) recovers topics as
// decisively as the dense one — the fold-in twin of the fitting-side
// perplexity parity gate.
func TestMHFoldInMatchesDenseQuality(t *testing.T) {
	m := foldInFixture(t)
	fm := FoldInModelFromCounts(m.NKV, m.NK, 0.1, m.Beta)
	docs := [][]int{{0, 1, 2, 0, 1, 3}, {5, 6, 7, 5, 8, 9}}
	theta, err := FoldIn(fm, docs, FoldInConfig{Seed: 11, Sampler: SamplerMH})
	if err != nil {
		t.Fatal(err)
	}
	topicA := 0
	if m.Phi[1][0] > m.Phi[0][0] {
		topicA = 1
	}
	if theta[0][topicA] < 0.7 {
		t.Fatalf("MH fold-in: doc of topic-A words got theta %v", theta[0])
	}
	if theta[1][topicA] > 0.3 {
		t.Fatalf("MH fold-in: doc of topic-B words got theta %v", theta[1])
	}
}

// TestMHCancelledContextReturnsError pins that the MH loop propagates
// cancellation and joins its background rebuild goroutine on the way out
// (the drain path — run under -race this would flag a leaked rebuild
// reading merged counts).
func TestMHCancelledContextReturnsError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	docs := bigSynthCorpus(160, 75)
	if m, err := Run(docs, 10, Config{K: 2, Iters: 30, Seed: 76, P: 4, Sampler: SamplerMH, Ctx: ctx}); !errors.Is(err, context.Canceled) || m != nil {
		t.Fatalf("Run: model=%v err=%v, want nil model and context.Canceled", m, err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	docs2 := bigSynthCorpus(160, 77)
	go cancel2()
	if _, err := Run(docs2, 10, Config{K: 2, Iters: 10000, Seed: 78, P: 2, Sampler: SamplerMH, AliasRefresh: 1, Ctx: ctx2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-sampling cancel: err = %v, want context.Canceled", err)
	}
}

// TestMHAliasStalenessStress hammers the double-buffered rebuild under the
// tightest cadence (a rebuild in flight on almost every sweep) at P=8 and
// checks the result is still bit-identical to P=1 — the test -race runs in
// CI to prove sweeps never observe a half-built buffer. Skipped under
// -short; the two 60-sweep fits dominate its runtime.
func TestMHAliasStalenessStress(t *testing.T) {
	if testing.Short() {
		t.Skip("staleness stress is slow; skipped under -short")
	}
	docs := bigSynthCorpus(256, 79)
	run := func(p int) *Model {
		return Must(Run(docs, 10, Config{K: 4, Iters: 60, Seed: 80, P: p, Sampler: SamplerMH, AliasRefresh: 1}))
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("MH model with refresh=1 differs between P=1 and P=8")
	}
	// refresh=1 rebuilds every sweep: initial + one per later sweep.
	if a.AliasRebuilds != 60 {
		t.Fatalf("AliasRebuilds = %d, want 60", a.AliasRebuilds)
	}
}

// --- SamplerAuto resolution ---

func TestSamplerResolveFor(t *testing.T) {
	cases := []struct {
		s         Sampler
		kTotal, v int
		want      Sampler
	}{
		{SamplerAuto, 2, 10, SamplerDense},     // tiny workload: dense wins
		{SamplerAuto, 200, 10, SamplerDense},   // vocab below threshold
		{SamplerAuto, 2, 100000, SamplerDense}, // topics below threshold
		{SamplerAuto, 32, 64, SamplerMH},       // at both thresholds: MH
		{SamplerAuto, 200, 1000, SamplerMH},
		{SamplerDense, 200, 1000, SamplerDense}, // explicit choice wins
		{SamplerSparse, 2, 10, SamplerSparse},
		{SamplerMH, 2, 10, SamplerMH},
	}
	for _, tc := range cases {
		if got := tc.s.ResolveFor(tc.kTotal, tc.v); got != tc.want {
			t.Fatalf("Sampler(%q).ResolveFor(%d, %d) = %q, want %q", tc.s, tc.kTotal, tc.v, got, tc.want)
		}
	}
}

// TestSamplerAutoRecordedOnModel pins the integration: a fit run under
// SamplerAuto records the core it resolved to on Model.Sampler, on both
// sides of the workload threshold.
func TestSamplerAutoRecordedOnModel(t *testing.T) {
	small := Must(Run([][]int{{0, 1, 2}, {2, 1, 0}}, 3, Config{K: 2, Iters: 2, Seed: 1}))
	if small.Sampler != SamplerDense || small.AliasRebuilds != 0 {
		t.Fatalf("small auto fit: Sampler=%q AliasRebuilds=%d, want dense/0", small.Sampler, small.AliasRebuilds)
	}
	docs := bigSynthCorpus(64, 81)
	big := Must(Run(docs, 10, Config{K: 40, Iters: 3, Seed: 82}))
	if v := 10; 40 >= autoMinTopics && v < autoMinVocab {
		// bigSynthCorpus vocab is 10 < autoMinVocab: still dense.
		if big.Sampler != SamplerDense {
			t.Fatalf("v=%d auto fit resolved to %q, want dense", v, big.Sampler)
		}
	}
	wide := make([][]int, 48)
	rng := rand.New(rand.NewSource(83))
	for d := range wide {
		doc := make([]int, 40)
		for i := range doc {
			doc[i] = rng.Intn(200)
		}
		wide[d] = doc
	}
	m := Must(Run(wide, 200, Config{K: 40, Iters: 3, Seed: 84}))
	if m.Sampler != SamplerMH || m.AliasRebuilds != 1 {
		t.Fatalf("wide auto fit: Sampler=%q AliasRebuilds=%d, want mh/1", m.Sampler, m.AliasRebuilds)
	}
}

// --- validation regressions for the new knobs ---

func TestConfigValidatesAliasRefresh(t *testing.T) {
	docs := [][]int{{0, 1}, {1, 0}}
	if m, err := Run(docs, 2, Config{K: 2, Iters: 1, AliasRefresh: -1}); err == nil || m != nil || !strings.Contains(err.Error(), "AliasRefresh") {
		t.Fatalf("negative AliasRefresh: model=%v err=%v, want validation error", m, err)
	}
	if _, err := RunPhrases([]PhraseDoc{{{0}, {1}}}, 2, Config{K: 2, Iters: 1, AliasRefresh: -1}); err == nil || !strings.Contains(err.Error(), "AliasRefresh") {
		t.Fatalf("RunPhrases negative AliasRefresh: err=%v, want validation error", err)
	}
	// "mh" is a valid sampler everywhere a sampler is named.
	if _, err := Run(docs, 2, Config{K: 2, Iters: 1, Sampler: "mh"}); err != nil {
		t.Fatalf("Sampler mh rejected: %v", err)
	}
	fm := &FoldInModel{PhiLike: [][]float64{{0.5, 0.5}}, Alpha: []float64{1}}
	if _, err := FoldIn(fm, [][]int{{0}}, FoldInConfig{Sampler: SamplerMH}); err != nil {
		t.Fatalf("fold-in Sampler mh rejected: %v", err)
	}
	// Unknown names still fail, and the error names all three cores.
	_, err := Run(docs, 2, Config{K: 2, Iters: 1, Sampler: "turbo"})
	if err == nil {
		t.Fatal("unknown sampler accepted")
	}
	for _, want := range []string{"dense", "sparse", "mh"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("unknown-sampler error %q does not mention %q", err, want)
		}
	}
}

// TestSamplerResolveForBoundary walks the auto-resolution thresholds cell
// by cell: the MH core requires BOTH kTotal >= autoMinTopics (32) AND
// v >= autoMinVocab (64); one dimension short of either threshold stays
// dense no matter how large the other grows.
func TestSamplerResolveForBoundary(t *testing.T) {
	cases := []struct {
		kTotal, v int
		want      Sampler
	}{
		{31, 63, SamplerDense},     // both one short
		{31, 64, SamplerDense},     // topics one short, vocab at threshold
		{32, 63, SamplerDense},     // vocab one short, topics at threshold
		{32, 64, SamplerMH},        // exactly at both thresholds
		{33, 64, SamplerMH},        // just past topics threshold
		{32, 65, SamplerMH},        // just past vocab threshold
		{31, 100000, SamplerDense}, // huge vocab cannot compensate topics
		{100000, 63, SamplerDense}, // huge K cannot compensate vocab
		{0, 0, SamplerDense},       // degenerate workload
	}
	for _, tc := range cases {
		if got := SamplerAuto.ResolveFor(tc.kTotal, tc.v); got != tc.want {
			t.Errorf("ResolveFor(%d, %d) = %q, want %q", tc.kTotal, tc.v, got, tc.want)
		}
	}
	// The thresholds the table above encodes are the exported contract of
	// the constants; if someone retunes them, this test must be retuned
	// consciously too.
	if autoMinTopics != 32 || autoMinVocab != 64 {
		t.Fatalf("auto thresholds moved (topics=%d vocab=%d): retune TestSamplerResolveForBoundary",
			autoMinTopics, autoMinVocab)
	}
}
