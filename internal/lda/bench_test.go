// Gibbs-sampler benchmarks: dense vs sparse vs MH core at Parallelism 1
// and NumCPU over fixed-seed workloads, reporting tokens/sec so the perf
// trajectory stays comparable across BENCH_*.json files regardless of
// workload shape. `go test -bench 'LDA|FoldIn' -run '^$' ./internal/lda`
// regenerates the numbers recorded in BENCH_pr4.json / BENCH_pr6.json.
// The determinism guarantee means every variant of one core produces
// identical models at any P, so P1-vs-PN comparisons are pure wall clock;
// cross-core comparisons are over different (equally valid) trajectories
// of the same workload — see TestSparseDensePerplexityParity for the
// quality gate. The K200 benches additionally report rebuilds/sweep, the
// amortization the MH core buys (sparse pays 1; MH 1/AliasRefresh).
package lda

import (
	"math/rand"
	"runtime"
	"testing"
)

// reportTokensPerSec converts the benchmark's elapsed time into the
// sampler's end-to-end token throughput (init pass excluded: tokens
// sampled = corpus tokens x sweeps x iterations run).
func reportTokensPerSec(b *testing.B, tokensPerOp int) {
	b.ReportMetric(float64(tokensPerOp)*float64(b.N)/b.Elapsed().Seconds(), "tokens/s")
}

func benchLDA(b *testing.B, p int, sampler Sampler) {
	docs, _ := synthCorpus(2048, 64, 71)
	cfg := Config{K: 5, Iters: 50, Seed: 72, Background: true, P: p, Sampler: sampler}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(docs, 10, cfg); err != nil {
			b.Fatal(err)
		}
	}
	reportTokensPerSec(b, 2048*64*cfg.Iters)
}

// wideCorpus is the many-topic workload for the K >= 200 comparison: 32
// topic blocks over a 1000-word vocabulary with a 10% uniform noise
// floor, so fitted documents concentrate on few topics (K_d << K) the way
// real corpora do.
func wideCorpus(nDocs, docLen int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	docs := make([][]int, nDocs)
	for d := range docs {
		top := d % 32
		doc := make([]int, docLen)
		for i := range doc {
			if rng.Float64() < 0.1 {
				doc[i] = rng.Intn(1000)
			} else {
				doc[i] = top*30 + rng.Intn(30)
			}
		}
		docs[d] = doc
	}
	return docs
}

func benchLDAK200(b *testing.B, sampler Sampler) {
	docs := wideCorpus(512, 64, 75)
	cfg := Config{K: 200, Alpha: 0.25, Iters: 20, Seed: 76, Sampler: sampler}
	rebuilds := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := Run(docs, 1000, cfg)
		if err != nil {
			b.Fatal(err)
		}
		rebuilds = m.AliasRebuilds
	}
	reportTokensPerSec(b, 512*64*cfg.Iters)
	b.ReportMetric(float64(rebuilds)/float64(cfg.Iters), "rebuilds/sweep")
}

func benchPhraseLDA(b *testing.B, p int, sampler Sampler) {
	rng := rand.New(rand.NewSource(73))
	docs := make([]PhraseDoc, 2048)
	for d := range docs {
		top := d % 2
		var doc PhraseDoc
		for q := 0; q < 24; q++ {
			doc = append(doc, []int{top*6 + rng.Intn(3), top*6 + 3 + rng.Intn(3)})
		}
		docs[d] = doc
	}
	cfg := Config{K: 5, Iters: 50, Seed: 74, P: p, Sampler: sampler}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunPhrases(docs, 12, cfg); err != nil {
			b.Fatal(err)
		}
	}
	reportTokensPerSec(b, 2048*24*2*cfg.Iters)
}

func benchFoldIn(b *testing.B, sampler Sampler) {
	// Frozen K=200 model over the wide corpus; 256 short query docs per
	// op, the serving-shaped workload.
	m := Must(Run(wideCorpus(512, 64, 77), 1000, Config{K: 200, Alpha: 0.25, Iters: 10, Seed: 78}))
	fm := FoldInModelFromCounts(m.NKV, m.NK, DefaultFoldInAlpha, m.Beta)
	fm.PrecomputeSparse() // pay the one-time alias build outside the timer
	rng := rand.New(rand.NewSource(79))
	docs := make([][]int, 256)
	for i := range docs {
		docs[i] = make([]int, 16)
		top := rng.Intn(32)
		for j := range docs[i] {
			docs[i][j] = top*30 + rng.Intn(30)
		}
	}
	cfg := FoldInConfig{Seed: 80, Sweeps: 30, Sampler: sampler}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FoldIn(fm, docs, cfg); err != nil {
			b.Fatal(err)
		}
	}
	reportTokensPerSec(b, 256*16*cfg.Sweeps)
}

func BenchmarkLDA_Dense_P1(b *testing.B)  { benchLDA(b, 1, SamplerDense) }
func BenchmarkLDA_Dense_PN(b *testing.B)  { benchLDA(b, runtime.NumCPU(), SamplerDense) }
func BenchmarkLDA_Sparse_P1(b *testing.B) { benchLDA(b, 1, SamplerSparse) }
func BenchmarkLDA_Sparse_PN(b *testing.B) { benchLDA(b, runtime.NumCPU(), SamplerSparse) }
func BenchmarkLDA_MH_P1(b *testing.B)     { benchLDA(b, 1, SamplerMH) }
func BenchmarkLDA_MH_PN(b *testing.B)     { benchLDA(b, runtime.NumCPU(), SamplerMH) }

func BenchmarkLDA_K200_Dense(b *testing.B)  { benchLDAK200(b, SamplerDense) }
func BenchmarkLDA_K200_Sparse(b *testing.B) { benchLDAK200(b, SamplerSparse) }
func BenchmarkLDA_K200_MH(b *testing.B)     { benchLDAK200(b, SamplerMH) }

func BenchmarkPhraseLDA_Dense_P1(b *testing.B)  { benchPhraseLDA(b, 1, SamplerDense) }
func BenchmarkPhraseLDA_Dense_PN(b *testing.B)  { benchPhraseLDA(b, runtime.NumCPU(), SamplerDense) }
func BenchmarkPhraseLDA_Sparse_P1(b *testing.B) { benchPhraseLDA(b, 1, SamplerSparse) }
func BenchmarkPhraseLDA_Sparse_PN(b *testing.B) { benchPhraseLDA(b, runtime.NumCPU(), SamplerSparse) }
func BenchmarkPhraseLDA_MH_P1(b *testing.B)     { benchPhraseLDA(b, 1, SamplerMH) }
func BenchmarkPhraseLDA_MH_PN(b *testing.B)     { benchPhraseLDA(b, runtime.NumCPU(), SamplerMH) }

func BenchmarkFoldIn_Dense(b *testing.B)  { benchFoldIn(b, SamplerDense) }
func BenchmarkFoldIn_Sparse(b *testing.B) { benchFoldIn(b, SamplerSparse) }
func BenchmarkFoldIn_MH(b *testing.B)     { benchFoldIn(b, SamplerMH) }
