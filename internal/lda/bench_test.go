// Gibbs-sampler benchmarks at Parallelism 1 vs NumCPU over the same
// fixed-seed workload. `go test -bench 'LDA' -run '^$' ./internal/lda`
// regenerates the numbers recorded in BENCH_pr2.json; the determinism
// guarantee means the P=1 and P=N variants produce identical models, so
// the comparison is pure wall clock.
package lda

import (
	"math/rand"
	"runtime"
	"testing"
)

func benchLDA(b *testing.B, p int) {
	docs, _ := synthCorpus(2048, 64, 71)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(docs, 10, Config{K: 5, Iters: 50, Seed: 72, Background: true, P: p}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPhraseLDA(b *testing.B, p int) {
	rng := rand.New(rand.NewSource(73))
	docs := make([]PhraseDoc, 2048)
	for d := range docs {
		top := d % 2
		var doc PhraseDoc
		for q := 0; q < 24; q++ {
			doc = append(doc, []int{top*6 + rng.Intn(3), top*6 + 3 + rng.Intn(3)})
		}
		docs[d] = doc
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunPhrases(docs, 12, Config{K: 5, Iters: 50, Seed: 74, P: p}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLDA_P1(b *testing.B)       { benchLDA(b, 1) }
func BenchmarkLDA_PN(b *testing.B)       { benchLDA(b, runtime.NumCPU()) }
func BenchmarkPhraseLDA_P1(b *testing.B) { benchPhraseLDA(b, 1) }
func BenchmarkPhraseLDA_PN(b *testing.B) { benchPhraseLDA(b, runtime.NumCPU()) }
