// Sparse-sampler invariants: the bucket+alias core must honor the same
// determinism contract as the dense core (bit-identical models at any
// Config.P), match the dense core statistically (held-out perplexity
// parity on a fixed-seed synthetic corpus), and the new input validation
// must reject malformed configs instead of panicking mid-sweep.
package lda

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestSparseRunDeterministicAcrossP(t *testing.T) {
	docs := bigSynthCorpus(160, 61)
	run := func(p int) *Model {
		return Must(Run(docs, 10, Config{K: 3, Iters: 30, Seed: 62, Background: true, P: p, Sampler: SamplerSparse}))
	}
	want := run(1)
	for _, p := range []int{2, 8} {
		if got := run(p); !reflect.DeepEqual(want, got) {
			t.Fatalf("sparse P=%d model differs from P=1 model", p)
		}
	}
}

func TestSparseRunPhrasesDeterministicAcrossP(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	docs := make([]PhraseDoc, 160)
	for d := range docs {
		top := d % 2
		var doc PhraseDoc
		for p := 0; p < 8; p++ {
			// Mix unigram phrases (sparse fast path) with bigrams (dense
			// product fallback) so both arms sample in one run.
			doc = append(doc, []int{top*6 + rng.Intn(3)})
			doc = append(doc, []int{top*6 + rng.Intn(3), top*6 + 3 + rng.Intn(3)})
		}
		docs[d] = doc
	}
	run := func(p int) *Model {
		return Must(RunPhrases(docs, 12, Config{K: 2, Iters: 30, Seed: 64, P: p, Sampler: SamplerSparse}))
	}
	want := run(1)
	for _, p := range []int{2, 8} {
		if got := run(p); !reflect.DeepEqual(want, got) {
			t.Fatalf("sparse P=%d phrase model differs from P=1 model", p)
		}
	}
}

func TestSparseFoldInDeterministicAcrossP(t *testing.T) {
	m := foldInFixture(t)
	fm := FoldInModelFromCounts(m.NKV, m.NK, DefaultFoldInAlpha, m.Beta)
	docs := make([][]int, 97)
	for i := range docs {
		docs[i] = []int{i % 10, (i + 3) % 10, (2 * i) % 10, (i * i) % 10}
	}
	base, err := FoldIn(fm, docs, FoldInConfig{Seed: 5, P: 1, Sampler: SamplerSparse})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8} {
		got, err := FoldIn(fm, docs, FoldInConfig{Seed: 5, P: p, Sampler: SamplerSparse})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("sparse fold-in differs at P=%d", p)
		}
	}
}

// TestSparseSamplerSeparatesTopics is the sparse twin of
// TestRunSeparatesTopics: the core must actually converge, not just run.
func TestSparseSamplerSeparatesTopics(t *testing.T) {
	docs, labels := synthCorpus(100, 20, 1)
	m := Must(Run(docs, 10, Config{K: 2, Iters: 100, Seed: 2, Sampler: SamplerSparse}))
	argmax := func(x []float64) int {
		best := 0
		for i := range x {
			if x[i] > x[best] {
				best = i
			}
		}
		return best
	}
	agree := map[int]map[int]int{0: {}, 1: {}}
	for d := range docs {
		agree[labels[d]][argmax(m.Theta[d])]++
	}
	sep := 0
	for lbl := range agree {
		bestC := 0
		for _, c := range agree[lbl] {
			if c > bestC {
				bestC = c
			}
		}
		sep += bestC
	}
	if acc := float64(sep) / 100; acc < 0.9 {
		t.Fatalf("sparse sampler separation accuracy = %v, want >= 0.9", acc)
	}
}

// heldOutPerplexity evaluates a fitted model on unseen documents: theta
// comes from (dense, to keep the evaluator fixed) fold-in, the likelihood
// from the model's smoothed topic-word distributions.
func heldOutPerplexity(t *testing.T, m *Model, held [][]int) float64 {
	t.Helper()
	fm := FoldInModelFromCounts(m.NKV, m.NK, DefaultFoldInAlpha, m.Beta)
	theta, err := FoldIn(fm, held, FoldInConfig{Seed: 9, Sampler: SamplerDense})
	if err != nil {
		t.Fatal(err)
	}
	ll, n := 0.0, 0
	for di, doc := range held {
		for _, w := range doc {
			p := 0.0
			for k := range fm.PhiLike {
				p += theta[di][k] * fm.PhiLike[k][w]
			}
			ll += math.Log(p)
			n++
		}
	}
	return math.Exp(-ll / float64(n))
}

// TestSparseDensePerplexityParity is the acceptance gate for the sparse
// and MH cores: on a fixed-seed synthetic corpus with topic structure plus
// shared noise, each core's held-out perplexity must land within 2% of the
// dense-fit model's. (The trajectories differ; their stationary quality
// must not — for MH this also exercises the stale-table acceptance
// correction over a full fit at the default AliasRefresh.)
func TestSparseDensePerplexityParity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mk := func(n int) [][]int {
		docs := make([][]int, n)
		for d := range docs {
			top := rng.Intn(4)
			doc := make([]int, 48)
			for i := range doc {
				if rng.Float64() < 0.2 {
					doc[i] = 40 + rng.Intn(20) // shared noise block
				} else {
					doc[i] = top*10 + rng.Intn(10)
				}
			}
			docs[d] = doc
		}
		return docs
	}
	train, held := mk(400), mk(64)
	dense := Must(Run(train, 60, Config{K: 8, Iters: 100, Seed: 7, Sampler: SamplerDense}))
	pd := heldOutPerplexity(t, dense, held)
	for _, s := range []Sampler{SamplerSparse, SamplerMH} {
		m := Must(Run(train, 60, Config{K: 8, Iters: 100, Seed: 7, Sampler: s}))
		ps := heldOutPerplexity(t, m, held)
		if rel := math.Abs(ps-pd) / pd; rel > 0.02 {
			t.Fatalf("%s ppl %.4f vs dense ppl %.4f: relative gap %.4f > 0.02", s, ps, pd, rel)
		}
	}
}

// TestSparseFoldInMatchesDenseQuality pins that the sparse fold-in (exact
// same conditional, different trajectory) recovers topics as decisively as
// the dense one.
func TestSparseFoldInMatchesDenseQuality(t *testing.T) {
	m := foldInFixture(t)
	fm := FoldInModelFromCounts(m.NKV, m.NK, 0.1, m.Beta)
	docs := [][]int{{0, 1, 2, 0, 1, 3}, {5, 6, 7, 5, 8, 9}}
	theta, err := FoldIn(fm, docs, FoldInConfig{Seed: 11, Sampler: SamplerSparse})
	if err != nil {
		t.Fatal(err)
	}
	topicA := 0
	if m.Phi[1][0] > m.Phi[0][0] {
		topicA = 1
	}
	if theta[0][topicA] < 0.7 {
		t.Fatalf("sparse fold-in: doc of topic-A words got theta %v", theta[0])
	}
	if theta[1][topicA] > 0.3 {
		t.Fatalf("sparse fold-in: doc of topic-B words got theta %v", theta[1])
	}
}

// --- validation regressions (each previously a panic deep in the sampler) ---

func TestRunValidatesConfig(t *testing.T) {
	docs := [][]int{{0, 1}, {1, 0}}
	cases := []struct {
		name string
		v    int
		cfg  Config
		want string
	}{
		{"zero K", 2, Config{K: 0, Iters: 1}, "Config.K"},
		{"negative K", 2, Config{K: -3, Iters: 1}, "Config.K"},
		{"zero vocab", 0, Config{K: 2, Iters: 1}, "vocabulary"},
		{"negative alpha", 2, Config{K: 2, Iters: 1, Alpha: -1}, "Alpha"},
		{"NaN alpha", 2, Config{K: 2, Iters: 1, Alpha: math.NaN()}, "Alpha"},
		{"negative beta", 2, Config{K: 2, Iters: 1, Beta: -0.5}, "Beta"},
		{"NaN beta", 2, Config{K: 2, Iters: 1, Beta: math.NaN()}, "Beta"},
		{"NaN bgweight", 2, Config{K: 2, Iters: 1, Background: true, BGWeight: math.NaN()}, "BGWeight"},
		{"negative iters", 2, Config{K: 2, Iters: -1}, "Iters"},
		{"negative bgweight", 2, Config{K: 2, Iters: 1, Background: true, BGWeight: -2}, "BGWeight"},
		{"unknown sampler", 2, Config{K: 2, Iters: 1, Sampler: "turbo"}, "sampler"},
	}
	for _, tc := range cases {
		m, err := Run(docs, tc.v, tc.cfg)
		if err == nil || m != nil {
			t.Fatalf("%s: model=%v err=%v, want validation error", tc.name, m, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		pm, err := RunPhrases([]PhraseDoc{{{0}, {1}}}, tc.v, tc.cfg)
		if err == nil || pm != nil {
			t.Fatalf("%s: RunPhrases model=%v err=%v, want validation error", tc.name, pm, err)
		}
	}
}

func TestRunValidatesTokenRange(t *testing.T) {
	if _, err := Run([][]int{{0, 5}}, 5, Config{K: 2, Iters: 1}); err == nil || !strings.Contains(err.Error(), "word id 5") {
		t.Fatalf("out-of-range token: err=%v, want word-id error", err)
	}
	if _, err := Run([][]int{{-1}}, 5, Config{K: 2, Iters: 1}); err == nil {
		t.Fatal("negative token id accepted")
	}
	if _, err := RunPhrases([]PhraseDoc{{{0}, {2, 9}}}, 5, Config{K: 2, Iters: 1}); err == nil || !strings.Contains(err.Error(), "word id 9") {
		t.Fatalf("out-of-range phrase token: err=%v, want word-id error", err)
	}
}

func TestFoldInValidatesModel(t *testing.T) {
	// Ragged likelihood rows.
	fm := &FoldInModel{PhiLike: [][]float64{{0.5, 0.5}, {1}}, Alpha: []float64{1, 1}}
	if _, err := FoldIn(fm, [][]int{{0}}, FoldInConfig{}); err == nil || !strings.Contains(err.Error(), "row 1") {
		t.Fatalf("ragged PhiLike: err=%v", err)
	}
	// Alpha length mismatch.
	fm = &FoldInModel{PhiLike: [][]float64{{0.5, 0.5}, {0.5, 0.5}}, Alpha: []float64{1}}
	if _, err := FoldIn(fm, [][]int{{0}}, FoldInConfig{}); err == nil || !strings.Contains(err.Error(), "Alpha") {
		t.Fatalf("alpha mismatch: err=%v", err)
	}
	// Negative prior.
	fm = &FoldInModel{PhiLike: [][]float64{{0.5, 0.5}, {0.5, 0.5}}, Alpha: []float64{1, -1}}
	if _, err := FoldIn(fm, [][]int{{0}}, FoldInConfig{}); err == nil || !strings.Contains(err.Error(), "Alpha[1]") {
		t.Fatalf("negative alpha: err=%v", err)
	}
	// Unknown sampler.
	fm = &FoldInModel{PhiLike: [][]float64{{0.5, 0.5}}, Alpha: []float64{1}}
	if _, err := FoldIn(fm, [][]int{{0}}, FoldInConfig{Sampler: "turbo"}); err == nil || !strings.Contains(err.Error(), "sampler") {
		t.Fatalf("unknown fold-in sampler: err=%v", err)
	}
}

// TestDenseSamplerStillAvailable pins the A/B escape hatch: explicitly
// requesting the dense core must produce the same model as before the
// sparse core became the default (self-consistency at both P values).
func TestDenseSamplerStillAvailable(t *testing.T) {
	docs := bigSynthCorpus(96, 65)
	a := Must(Run(docs, 10, Config{K: 2, Iters: 10, Seed: 66, Sampler: SamplerDense, P: 1}))
	b := Must(Run(docs, 10, Config{K: 2, Iters: 10, Seed: 66, Sampler: SamplerDense, P: 8}))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("dense sampler no longer deterministic across P")
	}
	s := Must(Run(docs, 10, Config{K: 2, Iters: 10, Seed: 66, Sampler: SamplerSparse}))
	if reflect.DeepEqual(a.Z, s.Z) {
		t.Fatal("dense and sparse trajectories are identical; expected distinct deterministic trajectories")
	}
}
