package lda

import (
	"context"
	"math"
	"reflect"
	"runtime"
	"testing"
)

// foldInFixture fits a tiny two-topic model whose topics are cleanly
// separated: words 0-4 belong to topic A, words 5-9 to topic B.
func foldInFixture(t *testing.T) *Model {
	t.Helper()
	var docs [][]int
	for i := 0; i < 40; i++ {
		a := []int{0, 1, 2, 3, 4, 0, 1, 2}
		b := []int{5, 6, 7, 8, 9, 5, 6, 7}
		docs = append(docs, a, b)
	}
	m, err := Run(docs, 10, Config{K: 2, Seed: 3, Iters: 60})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelExportsSufficientStatistics(t *testing.T) {
	m := foldInFixture(t)
	if m.NKV == nil || m.NK == nil {
		t.Fatal("model missing NKV/NK sufficient statistics")
	}
	if m.Alpha <= 0 || m.Beta <= 0 {
		t.Fatalf("hyperparameters not echoed: alpha=%v beta=%v", m.Alpha, m.Beta)
	}
	// Phi must be the smoothed normalization of the counts.
	vb := float64(m.V) * m.Beta
	for k := range m.Phi {
		for w := range m.Phi[k] {
			want := (float64(m.NKV[k][w]) + m.Beta) / (float64(m.NK[k]) + vb)
			if math.Abs(m.Phi[k][w]-want) > 1e-12 {
				t.Fatalf("Phi[%d][%d] = %v, counts give %v", k, w, m.Phi[k][w], want)
			}
		}
	}
	// NK must be the row sums of NKV.
	for k, row := range m.NKV {
		sum := 0
		for _, c := range row {
			sum += c
		}
		if sum != m.NK[k] {
			t.Fatalf("NK[%d] = %d, row sum = %d", k, m.NK[k], sum)
		}
	}
}

func TestFoldInRecoversTopic(t *testing.T) {
	m := foldInFixture(t)
	// A small fold-in alpha keeps short documents' theta evidence-driven
	// (the fitting alpha 50/K would swamp a 6-token document).
	fm := FoldInModelFromCounts(m.NKV, m.NK, 0.1, m.Beta)
	theta, err := FoldIn(fm, [][]int{
		{0, 1, 2, 0, 1, 3},
		{5, 6, 7, 5, 8, 9},
	}, FoldInConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Which fitted topic is the "word 0-4" topic?
	topicA := 0
	if m.Phi[1][0] > m.Phi[0][0] {
		topicA = 1
	}
	if theta[0][topicA] < 0.7 {
		t.Fatalf("doc of topic-A words got theta %v", theta[0])
	}
	if theta[1][topicA] > 0.3 {
		t.Fatalf("doc of topic-B words got theta %v", theta[1])
	}
	for _, th := range theta {
		sum := 0.0
		for _, v := range th {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("theta not normalized: %v", th)
		}
	}
}

// TestFoldInDeterministicAcrossP is the serving determinism contract:
// identical (seed, doc index, tokens) must give bit-identical theta at any
// parallelism level.
func TestFoldInDeterministicAcrossP(t *testing.T) {
	m := foldInFixture(t)
	fm := FoldInModelFromCounts(m.NKV, m.NK, m.Alpha, m.Beta)
	docs := make([][]int, 97)
	for i := range docs {
		docs[i] = []int{i % 10, (i + 3) % 10, (2 * i) % 10, (i * i) % 10}
	}
	base, err := FoldIn(fm, docs, FoldInConfig{Seed: 5, P: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, runtime.GOMAXPROCS(0) + 3} {
		got, err := FoldIn(fm, docs, FoldInConfig{Seed: 5, P: p})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("fold-in differs at P=%d", p)
		}
	}
}

func TestFoldInIndependentOfBatchmates(t *testing.T) {
	m := foldInFixture(t)
	fm := FoldInModelFromCounts(m.NKV, m.NK, m.Alpha, m.Beta)
	doc := []int{0, 1, 5, 6, 2}
	solo, err := FoldIn(fm, [][]int{doc}, FoldInConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := FoldIn(fm, [][]int{doc, {7, 8, 9}, {0, 0, 0}}, FoldInConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(solo[0], batch[0]) {
		t.Fatalf("doc 0 theta depends on batchmates: %v vs %v", solo[0], batch[0])
	}
}

func TestFoldInEdgeCases(t *testing.T) {
	m := foldInFixture(t)
	fm := FoldInModelFromCounts(m.NKV, m.NK, m.Alpha, m.Beta)
	// Empty batch.
	theta, err := FoldIn(fm, nil, FoldInConfig{Seed: 1})
	if err != nil || len(theta) != 0 {
		t.Fatalf("empty batch: theta=%v err=%v", theta, err)
	}
	// Empty doc and all-unknown doc fall back to the normalized prior.
	theta, err = FoldIn(fm, [][]int{{}, {999, 1000}}, FoldInConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range theta {
		for k, v := range th {
			want := fm.Alpha[k] / (fm.Alpha[0] + fm.Alpha[1])
			if math.Abs(v-want) > 1e-12 {
				t.Fatalf("prior fallback wrong: %v", th)
			}
		}
	}
	// Negative sweeps fall back to the default rather than silently
	// skipping every refinement sweep.
	neg, err := FoldIn(fm, [][]int{{0, 1, 2}}, FoldInConfig{Seed: 4, Sweeps: -1})
	if err != nil {
		t.Fatal(err)
	}
	def, err := FoldIn(fm, [][]int{{0, 1, 2}}, FoldInConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(neg, def) {
		t.Fatalf("negative sweeps diverged from default: %v vs %v", neg, def)
	}
	// Nil / empty model errors.
	if _, err := FoldIn(nil, [][]int{{0}}, FoldInConfig{}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := FoldIn(&FoldInModel{}, [][]int{{0}}, FoldInConfig{}); err == nil {
		t.Fatal("empty model accepted")
	}
}

func TestFoldInCancellation(t *testing.T) {
	m := foldInFixture(t)
	fm := FoldInModelFromCounts(m.NKV, m.NK, m.Alpha, m.Beta)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FoldIn(fm, [][]int{{0, 1}, {2, 3}}, FoldInConfig{Seed: 1, Ctx: ctx}); err == nil {
		t.Fatal("cancelled fold-in returned no error")
	}
}

func TestNewFoldInModelFromPhi(t *testing.T) {
	phi := [][]float64{{0.9, 0.1}, {0.1, 0.9}}
	fm := NewFoldInModel(phi, 0)
	if fm.K() != 2 || fm.V() != 2 {
		t.Fatalf("K=%d V=%d", fm.K(), fm.V())
	}
	if fm.Alpha[0] != 25 || fm.Alpha[1] != 25 {
		t.Fatalf("default alpha = %v", fm.Alpha)
	}
	theta, err := FoldIn(fm, [][]int{{0, 0, 0, 0, 0, 0, 0, 0}}, FoldInConfig{Seed: 2, Sweeps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if theta[0][0] <= theta[0][1] {
		t.Fatalf("phi-only fold-in ignored the evidence: %v", theta[0])
	}
}
