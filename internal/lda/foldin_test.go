package lda

import (
	"context"
	"math"
	"reflect"
	"runtime"
	"testing"
)

// foldInFixture fits a tiny two-topic model whose topics are cleanly
// separated: words 0-4 belong to topic A, words 5-9 to topic B.
func foldInFixture(t *testing.T) *Model {
	t.Helper()
	var docs [][]int
	for i := 0; i < 40; i++ {
		a := []int{0, 1, 2, 3, 4, 0, 1, 2}
		b := []int{5, 6, 7, 8, 9, 5, 6, 7}
		docs = append(docs, a, b)
	}
	m, err := Run(docs, 10, Config{K: 2, Seed: 3, Iters: 60})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelExportsSufficientStatistics(t *testing.T) {
	m := foldInFixture(t)
	if m.NKV == nil || m.NK == nil {
		t.Fatal("model missing NKV/NK sufficient statistics")
	}
	if m.Alpha <= 0 || m.Beta <= 0 {
		t.Fatalf("hyperparameters not echoed: alpha=%v beta=%v", m.Alpha, m.Beta)
	}
	// Phi must be the smoothed normalization of the counts.
	vb := float64(m.V) * m.Beta
	for k := range m.Phi {
		for w := range m.Phi[k] {
			want := (float64(m.NKV[k][w]) + m.Beta) / (float64(m.NK[k]) + vb)
			if math.Abs(m.Phi[k][w]-want) > 1e-12 {
				t.Fatalf("Phi[%d][%d] = %v, counts give %v", k, w, m.Phi[k][w], want)
			}
		}
	}
	// NK must be the row sums of NKV.
	for k, row := range m.NKV {
		sum := 0
		for _, c := range row {
			sum += c
		}
		if sum != m.NK[k] {
			t.Fatalf("NK[%d] = %d, row sum = %d", k, m.NK[k], sum)
		}
	}
}

func TestFoldInRecoversTopic(t *testing.T) {
	m := foldInFixture(t)
	// A small fold-in alpha keeps short documents' theta evidence-driven
	// (the fitting alpha 50/K would swamp a 6-token document).
	fm := FoldInModelFromCounts(m.NKV, m.NK, 0.1, m.Beta)
	theta, err := FoldIn(fm, [][]int{
		{0, 1, 2, 0, 1, 3},
		{5, 6, 7, 5, 8, 9},
	}, FoldInConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Which fitted topic is the "word 0-4" topic?
	topicA := 0
	if m.Phi[1][0] > m.Phi[0][0] {
		topicA = 1
	}
	if theta[0][topicA] < 0.7 {
		t.Fatalf("doc of topic-A words got theta %v", theta[0])
	}
	if theta[1][topicA] > 0.3 {
		t.Fatalf("doc of topic-B words got theta %v", theta[1])
	}
	for _, th := range theta {
		sum := 0.0
		for _, v := range th {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("theta not normalized: %v", th)
		}
	}
}

// TestFoldInDeterministicAcrossP is the serving determinism contract:
// identical (seed, doc index, tokens) must give bit-identical theta at any
// parallelism level.
func TestFoldInDeterministicAcrossP(t *testing.T) {
	m := foldInFixture(t)
	fm := FoldInModelFromCounts(m.NKV, m.NK, m.Alpha, m.Beta)
	docs := make([][]int, 97)
	for i := range docs {
		docs[i] = []int{i % 10, (i + 3) % 10, (2 * i) % 10, (i * i) % 10}
	}
	base, err := FoldIn(fm, docs, FoldInConfig{Seed: 5, P: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, runtime.GOMAXPROCS(0) + 3} {
		got, err := FoldIn(fm, docs, FoldInConfig{Seed: 5, P: p})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("fold-in differs at P=%d", p)
		}
	}
}

func TestFoldInIndependentOfBatchmates(t *testing.T) {
	m := foldInFixture(t)
	fm := FoldInModelFromCounts(m.NKV, m.NK, m.Alpha, m.Beta)
	doc := []int{0, 1, 5, 6, 2}
	solo, err := FoldIn(fm, [][]int{doc}, FoldInConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := FoldIn(fm, [][]int{doc, {7, 8, 9}, {0, 0, 0}}, FoldInConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(solo[0], batch[0]) {
		t.Fatalf("doc 0 theta depends on batchmates: %v vs %v", solo[0], batch[0])
	}
}

func TestFoldInEdgeCases(t *testing.T) {
	m := foldInFixture(t)
	fm := FoldInModelFromCounts(m.NKV, m.NK, m.Alpha, m.Beta)
	// Empty batch.
	theta, err := FoldIn(fm, nil, FoldInConfig{Seed: 1})
	if err != nil || len(theta) != 0 {
		t.Fatalf("empty batch: theta=%v err=%v", theta, err)
	}
	// Empty doc and all-unknown doc fall back to the normalized prior.
	theta, err = FoldIn(fm, [][]int{{}, {999, 1000}}, FoldInConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range theta {
		for k, v := range th {
			want := fm.Alpha[k] / (fm.Alpha[0] + fm.Alpha[1])
			if math.Abs(v-want) > 1e-12 {
				t.Fatalf("prior fallback wrong: %v", th)
			}
		}
	}
	// Negative sweeps fall back to the default rather than silently
	// skipping every refinement sweep.
	neg, err := FoldIn(fm, [][]int{{0, 1, 2}}, FoldInConfig{Seed: 4, Sweeps: -1})
	if err != nil {
		t.Fatal(err)
	}
	def, err := FoldIn(fm, [][]int{{0, 1, 2}}, FoldInConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(neg, def) {
		t.Fatalf("negative sweeps diverged from default: %v vs %v", neg, def)
	}
	// Nil / empty model errors.
	if _, err := FoldIn(nil, [][]int{{0}}, FoldInConfig{}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := FoldIn(&FoldInModel{}, [][]int{{0}}, FoldInConfig{}); err == nil {
		t.Fatal("empty model accepted")
	}
}

func TestFoldInCancellation(t *testing.T) {
	m := foldInFixture(t)
	fm := FoldInModelFromCounts(m.NKV, m.NK, m.Alpha, m.Beta)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FoldIn(fm, [][]int{{0, 1}, {2, 3}}, FoldInConfig{Seed: 1, Ctx: ctx}); err == nil {
		t.Fatal("cancelled fold-in returned no error")
	}
}

func TestNewFoldInModelFromPhi(t *testing.T) {
	phi := [][]float64{{0.9, 0.1}, {0.1, 0.9}}
	fm := NewFoldInModel(phi, 0)
	if fm.K() != 2 || fm.V() != 2 {
		t.Fatalf("K=%d V=%d", fm.K(), fm.V())
	}
	if fm.Alpha[0] != 25 || fm.Alpha[1] != 25 {
		t.Fatalf("default alpha = %v", fm.Alpha)
	}
	theta, err := FoldIn(fm, [][]int{{0, 0, 0, 0, 0, 0, 0, 0}}, FoldInConfig{Seed: 2, Sweeps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if theta[0][0] <= theta[0][1] {
		t.Fatalf("phi-only fold-in ignored the evidence: %v", theta[0])
	}
}

// TestFoldInBatchMatchesFoldIn is the coalescing correctness contract:
// merging documents from independent (seed, sweeps) requests into one
// FoldInBatch must reproduce each request's plain FoldIn output bit for
// bit, for both cores and at any parallelism level.
func TestFoldInBatchMatchesFoldIn(t *testing.T) {
	m := foldInFixture(t)
	fm := FoldInModelFromCounts(m.NKV, m.NK, DefaultFoldInAlpha, m.Beta)

	// Three "requests" with different seeds, sweep counts and doc counts,
	// including an empty doc and an unknown-token doc.
	reqs := []struct {
		seed   int64
		sweeps int
		docs   [][]int
	}{
		{seed: 7, sweeps: 30, docs: [][]int{{0, 1, 2, 3}, {5, 7, 8}}},
		{seed: 99, sweeps: 5, docs: [][]int{{9, 9, 9}, {}, {42, 0}}},
		{seed: 7, sweeps: 12, docs: [][]int{{4, 4, 1, 6}}},
	}
	for _, sampler := range []Sampler{SamplerSparse, SamplerDense} {
		for _, p := range []int{1, 8} {
			var want [][][]float64
			for _, r := range reqs {
				theta, err := FoldIn(fm, r.docs, FoldInConfig{Seed: r.seed, Sweeps: r.sweeps, P: p, Sampler: sampler})
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, theta)
			}
			var batch []BatchDoc
			for _, r := range reqs {
				for i, d := range r.docs {
					batch = append(batch, BatchDoc{Tokens: d, Seed: r.seed, Index: uint64(i), Sweeps: r.sweeps})
				}
			}
			got, err := FoldInBatch(fm, batch, FoldInConfig{P: p, Sampler: sampler})
			if err != nil {
				t.Fatal(err)
			}
			at := 0
			for ri, r := range reqs {
				for i := range r.docs {
					if !reflect.DeepEqual(got[at], want[ri][i]) {
						t.Fatalf("sampler %q P=%d: request %d doc %d differs: coalesced %v, plain %v",
							sampler, p, ri, i, got[at], want[ri][i])
					}
					at++
				}
			}
		}
	}
}

// TestFoldInBatchDefaults pins BatchDoc.Sweeps <= 0 falling back to
// cfg.Sweeps, and batch-level validation matching FoldIn's.
func TestFoldInBatchDefaults(t *testing.T) {
	m := foldInFixture(t)
	fm := FoldInModelFromCounts(m.NKV, m.NK, DefaultFoldInAlpha, m.Beta)
	doc := []int{0, 1, 2}
	got, err := FoldInBatch(fm, []BatchDoc{{Tokens: doc, Seed: 5, Index: 0}}, FoldInConfig{Sweeps: 8})
	if err != nil {
		t.Fatal(err)
	}
	want, err := FoldIn(fm, [][]int{doc}, FoldInConfig{Seed: 5, Sweeps: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0], want[0]) {
		t.Fatalf("sweep fallback differs: %v vs %v", got[0], want[0])
	}
	if _, err := FoldInBatch(fm, nil, FoldInConfig{Sampler: "bogus"}); err == nil {
		t.Fatal("unknown sampler accepted")
	}
	if _, err := FoldInBatch(nil, nil, FoldInConfig{}); err == nil {
		t.Fatal("nil model accepted")
	}
}

// TestFoldInBatchCancellation mirrors TestFoldInCancellation for the
// batched entry point.
func TestFoldInBatchCancellation(t *testing.T) {
	m := foldInFixture(t)
	fm := FoldInModelFromCounts(m.NKV, m.NK, DefaultFoldInAlpha, m.Beta)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	batch := make([]BatchDoc, 64)
	for i := range batch {
		batch[i] = BatchDoc{Tokens: []int{0, 1, 2}, Seed: 1, Index: uint64(i)}
	}
	if _, err := FoldInBatch(fm, batch, FoldInConfig{Ctx: ctx}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
