package lda

import (
	"context"
	"math"
	"reflect"
	"sync"
	"testing"

	"lesm/internal/obs"
	"lesm/internal/par"
)

// collectRecorder gathers every event for assertions.
type collectRecorder struct {
	mu     sync.Mutex
	sweeps []obs.SweepStats
	pools  []obs.PoolStats
}

func (c *collectRecorder) RecordSweep(s obs.SweepStats) {
	c.mu.Lock()
	c.sweeps = append(c.sweeps, s)
	c.mu.Unlock()
}

func (c *collectRecorder) RecordPool(p obs.PoolStats) {
	c.mu.Lock()
	c.pools = append(c.pools, p)
	c.mu.Unlock()
}

// TestRecorderBitIdentity is the tentpole contract: attaching a Recorder
// (with the convergence probe on) must not perturb the fitted model in
// any way, for every sampler core, at serial and high parallelism.
func TestRecorderBitIdentity(t *testing.T) {
	docs, _ := synthCorpus(60, 24, 11)
	for _, sampler := range []Sampler{SamplerDense, SamplerSparse, SamplerMH} {
		for _, p := range []int{1, 8} {
			cfg := Config{K: 3, Iters: 12, Seed: 7, Sampler: sampler, P: p}
			base := Must(Run(docs, 10, cfg))

			rec := &collectRecorder{}
			cfg.Rec, cfg.ProbeEvery = rec, 4
			got := Must(Run(docs, 10, cfg))

			if !reflect.DeepEqual(base.Z, got.Z) || !reflect.DeepEqual(base.NKV, got.NKV) ||
				!reflect.DeepEqual(base.NK, got.NK) || !reflect.DeepEqual(base.Theta, got.Theta) ||
				!reflect.DeepEqual(base.Phi, got.Phi) {
				t.Fatalf("%s P=%d: model differs with recorder attached", sampler, p)
			}
			if len(rec.sweeps) != cfg.Iters {
				t.Fatalf("%s P=%d: %d sweep records, want %d", sampler, p, len(rec.sweeps), cfg.Iters)
			}
		}
	}
}

// TestRecorderBitIdentityPhrases is the same contract for the phrase
// cores (RunPhrases shares gibbsPass but has its own three sweep loops).
func TestRecorderBitIdentityPhrases(t *testing.T) {
	raw, _ := synthCorpus(40, 18, 13)
	docs := make([]PhraseDoc, len(raw))
	for i, d := range raw {
		// Alternate unigrams and bigrams so both phrase paths run.
		var pd PhraseDoc
		for j := 0; j < len(d); {
			if j%3 == 0 && j+1 < len(d) {
				pd = append(pd, []int{d[j], d[j+1]})
				j += 2
			} else {
				pd = append(pd, []int{d[j]})
				j++
			}
		}
		docs[i] = pd
	}
	for _, sampler := range []Sampler{SamplerDense, SamplerSparse, SamplerMH} {
		for _, p := range []int{1, 8} {
			cfg := Config{K: 3, Iters: 8, Seed: 17, Sampler: sampler, P: p}
			base := Must(RunPhrases(docs, 10, cfg))
			rec := &collectRecorder{}
			cfg.Rec, cfg.ProbeEvery = rec, 3
			got := Must(RunPhrases(docs, 10, cfg))
			if !reflect.DeepEqual(base.PhraseZ, got.PhraseZ) || !reflect.DeepEqual(base.NKV, got.NKV) ||
				!reflect.DeepEqual(base.Theta, got.Theta) {
				t.Fatalf("phrases %s P=%d: model differs with recorder attached", sampler, p)
			}
			if len(rec.sweeps) != cfg.Iters {
				t.Fatalf("phrases %s P=%d: %d sweep records, want %d", sampler, p, len(rec.sweeps), cfg.Iters)
			}
		}
	}
}

// TestRecordedSweepStats checks the contents of the records: monotonic
// sweep numbers, exact token totals, changed <= tokens, MH proposal
// accounting, and the probe firing exactly on its schedule.
func TestRecordedSweepStats(t *testing.T) {
	docs, _ := synthCorpus(60, 24, 19)
	rec := &collectRecorder{}
	cfg := Config{K: 3, Iters: 10, Seed: 23, Sampler: SamplerMH, P: 4, Rec: rec, ProbeEvery: 4}
	Must(Run(docs, 10, cfg))

	if len(rec.sweeps) != cfg.Iters {
		t.Fatalf("%d sweep records, want %d", len(rec.sweeps), cfg.Iters)
	}
	wantTokens := int64(60 * 24)
	for i, s := range rec.sweeps {
		if s.Sweep != i+1 || s.Sweeps != cfg.Iters {
			t.Fatalf("record %d: sweep %d/%d, want %d/%d", i, s.Sweep, s.Sweeps, i+1, cfg.Iters)
		}
		if s.Engine != "lda" {
			t.Fatalf("record %d: engine %q, want lda", i, s.Engine)
		}
		if s.Tokens != wantTokens {
			t.Fatalf("record %d: tokens %d, want %d", i, s.Tokens, wantTokens)
		}
		if s.Changed < 0 || s.Changed > s.Tokens {
			t.Fatalf("record %d: changed %d outside [0, %d]", i, s.Changed, s.Tokens)
		}
		if s.WordAccepts > s.WordProposals || s.DocAccepts > s.DocProposals {
			t.Fatalf("record %d: accepts exceed proposals: %+v", i, s)
		}
		if s.WordProposals == 0 {
			t.Fatalf("record %d: MH core made no word proposals", i)
		}
		probeSweep := s.Sweep%cfg.ProbeEvery == 0 || s.Sweep == cfg.Iters
		if probeSweep == math.IsNaN(s.LogLikelihood) {
			t.Fatalf("record %d: probe on sweep %d = %v, want probe=%v",
				i, s.Sweep, s.LogLikelihood, probeSweep)
		}
		if probeSweep && s.LogLikelihood >= 0 {
			t.Fatalf("record %d: corpus LL %v, want negative", i, s.LogLikelihood)
		}
		if s.Chunks <= 0 || s.DeltaCells <= 0 {
			t.Fatalf("record %d: chunks %d / delta cells %d, want positive", i, s.Chunks, s.DeltaCells)
		}
	}
	if len(rec.pools) == 0 {
		t.Fatal("no pool telemetry recorded")
	}
	for i, p := range rec.pools {
		if p.Chunks <= 0 || p.Workers <= 0 {
			t.Fatalf("pool record %d: %+v", i, p)
		}
	}
}

// TestAliasRebuildAccounting locks the Model.AliasRebuilds bookkeeping
// to the recorded per-sweep attribution: the trace's rebuild counts must
// sum to the model's figure at any P, and the MH figure must match the
// 1 + floor((Iters-1)/AliasRefresh) schedule.
func TestAliasRebuildAccounting(t *testing.T) {
	docs, _ := synthCorpus(60, 24, 29)
	cases := []struct {
		sampler Sampler
		refresh int
		want    int
	}{
		{SamplerDense, 0, 0},
		{SamplerSparse, 0, 10}, // one per sweep
		{SamplerMH, 4, 1 + (10-1)/4},
		{SamplerMH, 1, 10}, // rebuild every sweep: initial + 9
	}
	for _, tc := range cases {
		var perP []int
		for _, p := range []int{1, 8} {
			rec := &collectRecorder{}
			cfg := Config{K: 3, Iters: 10, Seed: 31, Sampler: tc.sampler,
				AliasRefresh: tc.refresh, P: p, Rec: rec}
			m := Must(Run(docs, 10, cfg))
			if m.AliasRebuilds != tc.want {
				t.Fatalf("%s refresh=%d P=%d: Model.AliasRebuilds = %d, want %d",
					tc.sampler, tc.refresh, p, m.AliasRebuilds, tc.want)
			}
			sum := 0
			for _, s := range rec.sweeps {
				if s.AliasRebuilds < 0 {
					t.Fatalf("%s P=%d sweep %d: negative rebuild count", tc.sampler, p, s.Sweep)
				}
				sum += s.AliasRebuilds
			}
			if sum != m.AliasRebuilds {
				t.Fatalf("%s refresh=%d P=%d: recorded rebuilds sum %d != model %d",
					tc.sampler, tc.refresh, p, sum, m.AliasRebuilds)
			}
			perP = append(perP, sum)
		}
		if perP[0] != perP[1] {
			t.Fatalf("%s refresh=%d: rebuild count differs across P: %v", tc.sampler, tc.refresh, perP)
		}
	}
}

// cancelRecorder cancels a context from inside RecordSweep — simulating
// an operator killing a fit mid-run while a trace is attached.
type cancelRecorder struct {
	at     int
	cancel context.CancelFunc
	inner  obs.Recorder
}

func (c *cancelRecorder) RecordSweep(s obs.SweepStats) {
	c.inner.RecordSweep(s)
	if s.Sweep == c.at {
		c.cancel()
	}
}

func (c *cancelRecorder) RecordPool(p obs.PoolStats) { c.inner.RecordPool(p) }

// TestCancellationFlushesRecorder: a fit cancelled mid-run still emits a
// record per completed sweep and nothing for the aborted one, and the
// run surfaces the context error.
func TestCancellationFlushesRecorder(t *testing.T) {
	docs, _ := synthCorpus(60, 24, 37)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	col := &collectRecorder{}
	rec := &cancelRecorder{at: 3, cancel: cancel, inner: col}
	_, err := Run(docs, 10, Config{K: 3, Iters: 10, Seed: 41, Rec: rec, Ctx: ctx})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(col.sweeps) != 3 {
		t.Fatalf("%d sweep records after cancel at sweep 3, want 3", len(col.sweeps))
	}
	for i, s := range col.sweeps {
		if s.Sweep != i+1 {
			t.Fatalf("record %d: sweep %d, want %d", i, s.Sweep, i+1)
		}
	}
}

// TestFoldInRecorder: fold-in emits one aggregate record per batch with
// the exact token-visit total, and recording does not perturb theta.
func TestFoldInRecorder(t *testing.T) {
	docs, _ := synthCorpus(60, 24, 43)
	m := Must(Run(docs, 10, Config{K: 3, Iters: 30, Seed: 47}))
	fm := FoldInModelFromCounts(m.NKV, m.NK, DefaultFoldInAlpha, m.Beta)
	queries := [][]int{{0, 1, 2, 3}, {5, 6, 7}, {2, 7, 9, 1, 4}}
	for _, sampler := range []Sampler{SamplerDense, SamplerSparse, SamplerMH} {
		cfg := FoldInConfig{Seed: 3, Sweeps: 5, Sampler: sampler}
		base, err := FoldIn(fm, queries, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec := &collectRecorder{}
		cfg.Rec = rec
		got, err := FoldIn(fm, queries, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("%s: theta differs with recorder attached", sampler)
		}
		if len(rec.sweeps) != 1 {
			t.Fatalf("%s: %d records per batch, want 1", sampler, len(rec.sweeps))
		}
		s := rec.sweeps[0]
		if s.Engine != "foldin" {
			t.Fatalf("%s: engine %q, want foldin", sampler, s.Engine)
		}
		wantTokens := int64((4 + 3 + 5) * (cfg.Sweeps + 1)) // init pass + sweeps
		if s.Tokens != wantTokens {
			t.Fatalf("%s: tokens %d, want %d", sampler, s.Tokens, wantTokens)
		}
		if s.Docs != len(queries) {
			t.Fatalf("%s: docs %d, want %d", sampler, s.Docs, len(queries))
		}
	}
}

// TestNilRecorderSweepAllocFree is the grep-gated zero-cost contract:
// with no Recorder attached, a serial Gibbs sweep performs zero heap
// allocations — the counters are plain int bumps on pre-allocated
// chunk state and no timing or aggregation code runs.
func TestNilRecorderSweepAllocFree(t *testing.T) {
	docs, _ := synthCorpus(32, 16, 53)
	const k, v = 3, 10
	d := len(docs)
	nDK := make([][]int, d)
	nKV := make([][]int, k)
	nK := make([]int, k)
	for i := range nKV {
		nKV[i] = make([]int, v)
	}
	z := make([][]int, d)
	alpha := alphaVec(Config{K: k, Alpha: 0.5}, k)
	sc := newSweepScratch(samplerChunks(d, k, v), k, v)
	o := par.Opts{P: 1}

	// Initialization pass, outside the measured region.
	initVisit := func(_, di int, rng *stream, dl *delta, _ []float64) {
		doc := docs[di]
		nDK[di] = make([]int, k)
		z[di] = make([]int, len(doc))
		for i, w := range doc {
			kk := rng.Intn(k)
			z[di][i] = kk
			nDK[di][kk]++
			dl.add(kk, w, 1)
		}
	}
	if err := gibbsPass(o, 1, 0, d, sc, nKV, nK, nil, nil, initVisit); err != nil {
		t.Fatal(err)
	}

	// The measured sweep: the dense core's visit, closures prebuilt.
	const beta, vb = 0.1, 0.1 * v
	sweep := uint64(0)
	visit := func(_, di int, rng *stream, dl *delta, probs []float64) {
		doc := docs[di]
		for i, w := range doc {
			kOld := z[di][i]
			nDK[di][kOld]--
			dl.add(kOld, w, -1)
			total := 0.0
			for kk := 0; kk < k; kk++ {
				p := (float64(nDK[di][kk]) + alpha[kk]) *
					(float64(nKV[kk][w]+dl.kv[kk][w]) + beta) /
					(float64(nK[kk]+dl.k[kk]) + vb)
				probs[kk] = p
				total += p
			}
			r := rng.Float64() * total
			kNew := k - 1
			for kk := 0; kk < k; kk++ {
				if r -= probs[kk]; r <= 0 {
					kNew = kk
					break
				}
			}
			if kNew != kOld {
				dl.ctr.changed++
			}
			z[di][i] = kNew
			nDK[di][kNew]++
			dl.add(kNew, w, 1)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		sweep++
		if err := gibbsPass(o, 1, sweep, d, sc, nKV, nK, nil, nil, visit); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-recorder serial sweep allocates %.1f times, want 0", allocs)
	}
}
