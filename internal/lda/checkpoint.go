package lda

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"lesm/internal/obs"
)

// Crash-safe fitting: checkpoint and resume.
//
// A checkpoint is the complete sampler state at a sweep boundary. Because
// the determinism contract keys every per-document PRNG stream by
// (Seed, doc, sweep) and derives chunk boundaries only from the corpus
// shape, the state needed to reproduce the remainder of a fit is tiny:
// the topic assignments Z (counts are a pure function of Z), the sweep
// number, and — for the MH core — the frozen count table its active alias
// proposal tables were built from. A resumed fit rebuilds nDK/nKV/nK by
// replaying Z, reconstructs the alias state, and re-enters the sweep loop
// at Sweep+1; from there it consumes exactly the streams the uninterrupted
// fit would have consumed, so the final model is bit-identical at any
// Config.P (test-gated in resume_test.go).

// ErrStopped is returned by Run and RunPhrases when Config.Stop requested
// a graceful stop: the run halted at a sweep boundary after handing a
// final checkpoint to Config.CheckpointFunc (when one is set). No model is
// returned — resume from the checkpoint to finish the fit.
var ErrStopped = errors.New("lda: fit stopped at a sweep boundary by Config.Stop")

// Fingerprint identifies the exact fit a checkpoint belongs to: the
// effective configuration (post-defaulting), the resolved sampling core,
// and a hash of the corpus shape and token ids. Resume refuses a
// checkpoint whose fingerprint does not match the run it is handed to —
// a mismatched corpus or config would silently produce a model from
// neither trajectory.
type Fingerprint struct {
	// Engine is "lda" for Run, "phraselda" for RunPhrases.
	Engine string
	// Sampler is the resolved core (never SamplerAuto).
	Sampler Sampler
	// K and V are the content-topic count and vocabulary size.
	K, V int
	// Alpha, Beta and BGWeight are the effective (post-default) priors.
	Alpha, Beta, BGWeight float64
	Background            bool
	Iters                 int
	Seed                  int64
	// AliasRefresh is the effective MH rebuild cadence (set for every
	// core — it is part of the defaulted config even when unused).
	AliasRefresh int
	// Docs and Tokens are the corpus dimensions; CorpusHash is an FNV-1a
	// digest of the full document/phrase structure and token ids.
	Docs       int
	Tokens     int64
	CorpusHash uint64
}

// Checkpoint is the resumable state of a Gibbs fit at the end of sweep
// Sweep. It is self-contained and owns all of its memory (Z and
// MHSourceKV are deep copies), so it may outlive the run and cross
// goroutines; internal/store persists it in the LESMCKPT binary format.
type Checkpoint struct {
	Fingerprint Fingerprint
	// Sweep is the last completed sweep (1-based).
	Sweep int
	// Z holds the per-document topic assignments: per token for Run, per
	// phrase for RunPhrases.
	Z [][]int
	// AliasRebuilds is the number of alias-table builds the trajectory has
	// performed so far (MH core only; 0 otherwise). Restored so a resumed
	// model reports the same Model.AliasRebuilds as the uninterrupted fit.
	AliasRebuilds int
	// MHStale is the MH rebuild schedule's staleness counter at the
	// boundary: how many sweeps the active tables have aged since they
	// were swapped in. 0 for other cores.
	MHStale int
	// MHSourceKV is the frozen topic-word count table the MH core's
	// active alias tables were built from — generally *older* than the
	// counts implied by Z (tables rebuild every AliasRefresh sweeps), so
	// it must travel with the checkpoint to reproduce the proposal
	// distributions exactly. nil for other cores.
	MHSourceKV [][]int
}

// hashU64 feeds one little-endian u64 into an FNV-1a digest.
func hashU64(h *uint64, v uint64) {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		*h ^= v & 0xff
		*h *= prime
		v >>= 8
	}
}

// hashTokenDocs digests a token corpus: doc count, then each document's
// length and token ids. Any insertion, deletion, reorder or relabel
// changes the digest.
func hashTokenDocs(docs [][]int) uint64 {
	h := fnv.New64a().Sum64() // offset basis
	hashU64(&h, uint64(len(docs)))
	for _, doc := range docs {
		hashU64(&h, uint64(len(doc)))
		for _, w := range doc {
			hashU64(&h, uint64(w))
		}
	}
	return h
}

// hashPhraseDocs digests a phrase corpus including its segmentation: two
// corpora with the same tokens but different phrase boundaries hash
// differently (their trajectories differ).
func hashPhraseDocs(docs []PhraseDoc) uint64 {
	h := fnv.New64a().Sum64()
	hashU64(&h, uint64(len(docs)))
	for _, doc := range docs {
		hashU64(&h, uint64(len(doc)))
		for _, phrase := range doc {
			hashU64(&h, uint64(len(phrase)))
			for _, w := range phrase {
				hashU64(&h, uint64(w))
			}
		}
	}
	return h
}

// newFingerprint builds the fingerprint of a (defaulted) run.
func newFingerprint(engine string, core Sampler, cfg Config, v, docs int, tokens int64, corpusHash uint64) Fingerprint {
	return Fingerprint{
		Engine: engine, Sampler: core, K: cfg.K, V: v,
		Alpha: cfg.Alpha, Beta: cfg.Beta, BGWeight: cfg.BGWeight,
		Background: cfg.Background, Iters: cfg.Iters, Seed: cfg.Seed,
		AliasRefresh: cfg.AliasRefresh,
		Docs:         docs, Tokens: tokens, CorpusHash: corpusHash,
	}
}

// check validates cp against the run it is being resumed into: exact
// fingerprint equality, a sweep within the run, assignments shaped like
// the corpus with every topic in range, and — when the run's core is MH —
// a complete source count table. docLens[di] is the expected length of
// Z[di] (tokens per document for Run, phrases per document for
// RunPhrases).
func (cp *Checkpoint) check(fp Fingerprint, kTotal int, docLens []int) error {
	if cp.Fingerprint != fp {
		return fmt.Errorf("lda: resume checkpoint does not match this run (checkpoint %+v, run %+v)", cp.Fingerprint, fp)
	}
	if cp.Sweep < 1 || cp.Sweep > fp.Iters {
		return fmt.Errorf("lda: resume checkpoint sweep %d outside [1, %d]", cp.Sweep, fp.Iters)
	}
	if len(cp.Z) != len(docLens) {
		return fmt.Errorf("lda: resume checkpoint has %d documents, corpus has %d", len(cp.Z), len(docLens))
	}
	for di, zd := range cp.Z {
		if len(zd) != docLens[di] {
			return fmt.Errorf("lda: resume checkpoint doc %d has %d assignments, corpus wants %d", di, len(zd), docLens[di])
		}
		for i, k := range zd {
			if k < 0 || k >= kTotal {
				return fmt.Errorf("lda: resume checkpoint doc %d slot %d: topic %d outside [0, %d)", di, i, k, kTotal)
			}
		}
	}
	if fp.Sampler == SamplerMH && len(docLens) > 0 {
		if cp.AliasRebuilds < 1 {
			return fmt.Errorf("lda: resume checkpoint for the MH core records %d alias rebuilds, need >= 1", cp.AliasRebuilds)
		}
		if cp.MHStale < 0 {
			return fmt.Errorf("lda: resume checkpoint MH staleness %d, need >= 0", cp.MHStale)
		}
		if len(cp.MHSourceKV) != kTotal {
			return fmt.Errorf("lda: resume checkpoint MH source table has %d topics, run has %d", len(cp.MHSourceKV), kTotal)
		}
		for k, row := range cp.MHSourceKV {
			if len(row) != fp.V {
				return fmt.Errorf("lda: resume checkpoint MH source table topic %d has %d words, vocabulary is %d", k, len(row), fp.V)
			}
			for w, c := range row {
				if c < 0 {
					return fmt.Errorf("lda: resume checkpoint MH source count [%d][%d] = %d, need >= 0", k, w, c)
				}
			}
		}
	}
	return nil
}

// restoreCounts replays the checkpoint's assignments into freshly zeroed
// count tables, exactly reproducing the tables the uninterrupted fit held
// at the end of sweep cp.Sweep. weight(di, slot) is the token mass of one
// assignment slot (1 for token documents, the phrase length for phrase
// documents); word(di, slot, j) enumerates that slot's j-th word.
func restoreCounts(cp *Checkpoint, kTotal int, nDK [][]int, nKV [][]int, nK []int,
	z [][]int, weight func(di, slot int) int, word func(di, slot, j int) int) {
	for di, zd := range cp.Z {
		row := make([]int, len(zd))
		copy(row, zd)
		z[di] = row
		nDK[di] = make([]int, kTotal)
		for slot, k := range row {
			n := weight(di, slot)
			nDK[di][k] += n
			nK[k] += n
			for j := 0; j < n; j++ {
				nKV[k][word(di, slot, j)]++
			}
		}
	}
}

// copyTable deep-copies a count table.
func copyTable(t [][]int) [][]int {
	out := make([][]int, len(t))
	for i, row := range t {
		r := make([]int, len(row))
		copy(r, row)
		out[i] = r
	}
	return out
}

// ckptState drives the checkpoint/stop protocol at sweep boundaries. A
// nil *ckptState (no CheckpointFunc, no Stop) makes boundary a single nil
// check, preserving the unconfigured path's zero cost.
type ckptState struct {
	every int
	fn    func(*Checkpoint) error
	stop  func() bool
	fp    Fingerprint
	// z aliases the run's live assignment arrays (token z or phrase zP);
	// snapshot deep-copies them at the boundary, after the sweep's deltas
	// have merged, so the copy is a consistent end-of-sweep state.
	z [][]int
	// mh is the MH run's rebuild schedule (nil for other cores), the
	// source of the alias-state fields of a checkpoint.
	mh *mhRebuildSchedule
	// rec receives one RecordCheckpoint per delivered checkpoint when the
	// run's Recorder implements the optional obs.CheckpointRecorder.
	rec obs.CheckpointRecorder
}

// newCkptState returns nil when the config neither checkpoints nor stops.
func newCkptState(cfg Config, fp Fingerprint, z [][]int) *ckptState {
	if cfg.CheckpointFunc == nil && cfg.Stop == nil {
		return nil
	}
	c := &ckptState{
		every: cfg.CheckpointEvery, fn: cfg.CheckpointFunc, stop: cfg.Stop,
		fp: fp, z: z,
	}
	if cr, ok := cfg.Rec.(obs.CheckpointRecorder); ok {
		c.rec = cr
	}
	return c
}

// wantsSnapshots reports whether checkpoints will actually be built — the
// MH schedule only pays for source-table copies when they will be read.
func (c *ckptState) wantsSnapshots() bool { return c != nil && c.fn != nil }

// boundary runs the protocol at the end of sweep s: deliver a checkpoint
// on the CheckpointEvery cadence or when a stop was requested, then honor
// the stop with ErrStopped. A CheckpointFunc error aborts the fit.
func (c *ckptState) boundary(sweep int) error {
	if c == nil {
		return nil
	}
	stopping := c.stop != nil && c.stop()
	if c.fn != nil && (stopping || (c.every > 0 && sweep%c.every == 0)) {
		t0 := time.Now()
		if err := c.fn(c.snapshot(sweep)); err != nil {
			return err
		}
		if c.rec != nil {
			c.rec.RecordCheckpoint(obs.CheckpointStats{
				Engine: c.fp.Engine, Sweep: sweep, Took: time.Since(t0),
			})
		}
	}
	if stopping {
		return ErrStopped
	}
	return nil
}

// snapshot builds a self-contained checkpoint of the end-of-sweep state.
func (c *ckptState) snapshot(sweep int) *Checkpoint {
	cp := &Checkpoint{Fingerprint: c.fp, Sweep: sweep, Z: copyTable(c.z)}
	if c.mh != nil {
		cp.AliasRebuilds = c.mh.Rebuilds
		cp.MHStale = c.mh.stale
		cp.MHSourceKV = copyTable(c.mh.srcKV)
	}
	return cp
}
