package lda

import (
	"math"
	"time"

	"lesm/internal/obs"
	"lesm/internal/par"
)

// Fit-side observability plumbing. The contract (test-gated):
//
//   - Recording never perturbs the trajectory: recorders see aggregated
//     copies after the sweep's deltas merged; nothing feeds back into
//     counts or PRNG streams, so models are bit-identical with a
//     Recorder attached or nil at any Config.P.
//   - The nil path is free: the cores bump chunk-local int counters
//     unconditionally (cheaper than a branch per token), but timing,
//     aggregation, probes and emission only run when a Recorder is
//     attached. runRecorder is nil-receiver-safe so the sweep loops
//     call it unconditionally; the nil path is allocation-free
//     (TestNilRecorderSweepAllocFree).

// sweepCounters are one chunk's sampling-event tallies, embedded in its
// delta table so the hot loops reach them through a pointer they
// already hold. Proposal counters tick only in the MH core and only
// for proposals naming a topic different from the incumbent
// (self-proposals are no-ops and would inflate the accept rate).
type sweepCounters struct {
	tokens   int64 // token visits (fold-in only; fits derive it once)
	changed  int64 // visits whose topic changed
	wordProp int64
	wordAcc  int64
	docProp  int64
	docAcc   int64
}

func (c *sweepCounters) addFrom(o *sweepCounters) {
	c.tokens += o.tokens
	c.changed += o.changed
	c.wordProp += o.wordProp
	c.wordAcc += o.wordAcc
	c.docProp += o.docProp
	c.docAcc += o.docAcc
}

// passStats accumulates gibbsPass timings between runRecorder harvests.
// It hangs off sweepScratch and is nil on the unrecorded path, keeping
// time syscalls out of unrecorded passes entirely.
type passStats struct {
	cells int64 // delta-table cells merged
	merge time.Duration
	wall  time.Duration
}

// runRecorder aggregates one fit's chunk counters and pass timings into
// per-sweep obs.SweepStats. A nil *runRecorder is the disabled state:
// every method no-ops, so the sweep loops call it unconditionally.
type runRecorder struct {
	rec        obs.Recorder
	engine     string
	docs       int
	tokens     int64 // token visits per full sweep
	sweeps     int
	probeEvery int
	probe      func(par.Opts) (float64, error)
	sc         *sweepScratch

	// Cumulative rebuild figures already attributed to earlier sweeps;
	// endSweep diffs the running totals against these.
	rebuilds int
	rebuildT time.Duration
}

// newRunRecorder returns nil (the zero-cost disabled state) unless
// cfg.Rec is set. When enabled it arms the scratch's passStats so
// subsequent gibbsPass calls time themselves.
func newRunRecorder(cfg Config, engine string, docs int, tokens int64, sc *sweepScratch,
	probe func(par.Opts) (float64, error)) *runRecorder {
	if cfg.Rec == nil {
		return nil
	}
	sc.ps = &passStats{}
	return &runRecorder{
		rec: cfg.Rec, engine: engine, docs: docs, tokens: tokens,
		sweeps: cfg.Iters, probeEvery: cfg.ProbeEvery, probe: probe, sc: sc,
	}
}

// prime seeds the cumulative-rebuild baseline endSweep diffs against.
// Resumed runs call it with the trajectory's rebuild figures at the
// resume point so the first resumed sweep is attributed only its own
// rebuilds, not everything since sweep 1.
func (r *runRecorder) prime(rebuilds int, rebuildT time.Duration) {
	if r == nil {
		return
	}
	r.rebuilds, r.rebuildT = rebuilds, rebuildT
}

// endSweep harvests the chunk counters and pass timings accumulated
// since the previous call and emits one SweepStats. rebuildsTotal and
// rebuildTime are the run's *cumulative* alias-rebuild figures; the
// per-sweep attribution is the diff (so the MH core's initial build
// lands on sweep 1). The returned error is a cancelled convergence
// probe's context error.
func (r *runRecorder) endSweep(o par.Opts, sweep, rebuildsTotal int, rebuildTime time.Duration) error {
	if r == nil {
		return nil
	}
	var c sweepCounters
	for _, dl := range r.sc.deltas {
		c.addFrom(&dl.ctr)
		dl.ctr = sweepCounters{}
	}
	chunks := len(r.sc.deltas)
	if r.docs < chunks {
		chunks = r.docs
	}
	s := obs.SweepStats{
		Engine: r.engine, Sweep: sweep, Sweeps: r.sweeps, Docs: r.docs,
		Tokens: r.tokens, Changed: c.changed,
		WordProposals: c.wordProp, WordAccepts: c.wordAcc,
		DocProposals: c.docProp, DocAccepts: c.docAcc,
		AliasRebuilds: rebuildsTotal - r.rebuilds,
		RebuildTime:   rebuildTime - r.rebuildT,
		Chunks:        chunks,
		DeltaCells:    r.sc.ps.cells,
		MergeTime:     r.sc.ps.merge,
		SweepTime:     r.sc.ps.wall,
		LogLikelihood: math.NaN(),
	}
	r.rebuilds, r.rebuildT = rebuildsTotal, rebuildTime
	*r.sc.ps = passStats{}
	if r.probe != nil && r.probeEvery > 0 && (sweep%r.probeEvery == 0 || sweep == r.sweeps) {
		ll, err := r.probe(o)
		if err != nil {
			return err
		}
		s.LogLikelihood = ll
	}
	r.rec.RecordSweep(s)
	return nil
}

// tokenProbe builds the read-only convergence probe for token-document
// fits: the corpus log-likelihood under the current point estimates,
//
//	LL = Σ_d Σ_i log Σ_k θ̂_dk · φ̂_kw,  θ̂ and φ̂ the smoothed count
//	normalizations summarize would produce right now.
//
// It only reads the count tables after a sweep's deltas have merged, so
// it can never perturb the trajectory; the chunk-ordered MapReduce
// float merge keeps the reported value itself deterministic at any P.
func tokenProbe(docs [][]int, alpha []float64, beta float64, v int,
	nDK, nKV [][]int, nK []int) func(par.Opts) (float64, error) {
	var alphaSum float64
	for _, a := range alpha {
		alphaSum += a
	}
	vb := float64(v) * beta
	kTotal := len(alpha)
	return func(o par.Opts) (float64, error) {
		acc, err := par.MapReduce(o, len(docs),
			func() *float64 { return new(float64) },
			func(acc *float64, _, lo, hi int) {
				for di := lo; di < hi; di++ {
					doc := docs[di]
					denom := float64(len(doc)) + alphaSum
					s := 0.0
					for _, w := range doc {
						p := 0.0
						for k := 0; k < kTotal; k++ {
							p += (float64(nDK[di][k]) + alpha[k]) *
								(float64(nKV[k][w]) + beta) / (float64(nK[k]) + vb)
						}
						s += math.Log(p / denom)
					}
					*acc += s
				}
			},
			func(dst, src *float64) { *dst += *src },
		)
		if err != nil {
			return 0, err
		}
		return *acc, nil
	}
}

// phraseProbe is tokenProbe over phrase documents: phrases share a
// topic, but the probe scores tokens independently under the current
// point estimates (the same quantity held-out perplexity reports).
func phraseProbe(docs []PhraseDoc, alpha []float64, beta float64, v int,
	nDK, nKV [][]int, nK []int) func(par.Opts) (float64, error) {
	var alphaSum float64
	for _, a := range alpha {
		alphaSum += a
	}
	vb := float64(v) * beta
	kTotal := len(alpha)
	return func(o par.Opts) (float64, error) {
		acc, err := par.MapReduce(o, len(docs),
			func() *float64 { return new(float64) },
			func(acc *float64, _, lo, hi int) {
				for di := lo; di < hi; di++ {
					doc := docs[di]
					n := 0
					for _, phrase := range doc {
						n += len(phrase)
					}
					denom := float64(n) + alphaSum
					s := 0.0
					for _, phrase := range doc {
						for _, w := range phrase {
							p := 0.0
							for k := 0; k < kTotal; k++ {
								p += (float64(nDK[di][k]) + alpha[k]) *
									(float64(nKV[k][w]) + beta) / (float64(nK[k]) + vb)
							}
							s += math.Log(p / denom)
						}
					}
					*acc += s
				}
			},
			func(dst, src *float64) { *dst += *src },
		)
		if err != nil {
			return 0, err
		}
		return *acc, nil
	}
}

// countTokens is the per-sweep token-visit total of a token-document
// corpus (SweepStats.Tokens).
func countTokens(docs [][]int) int64 {
	var n int64
	for _, doc := range docs {
		n += int64(len(doc))
	}
	return n
}

// countPhraseTokens is countTokens for phrase documents.
func countPhraseTokens(docs []PhraseDoc) int64 {
	var n int64
	for _, doc := range docs {
		for _, phrase := range doc {
			n += int64(len(phrase))
		}
	}
	return n
}
