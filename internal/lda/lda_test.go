package lda

import (
	"math"
	"math/rand"
	"testing"
)

// synthCorpus builds a toy two-topic corpus: topic A uses words 0..4,
// topic B uses words 5..9, each doc drawn from a single topic.
func synthCorpus(nDocs, docLen int, seed int64) ([][]int, []int) {
	rng := rand.New(rand.NewSource(seed))
	docs := make([][]int, nDocs)
	labels := make([]int, nDocs)
	for d := range docs {
		t := d % 2
		labels[d] = t
		doc := make([]int, docLen)
		for i := range doc {
			doc[i] = t*5 + rng.Intn(5)
		}
		docs[d] = doc
	}
	return docs, labels
}

func TestRunSeparatesTopics(t *testing.T) {
	docs, labels := synthCorpus(100, 20, 1)
	m := Must(Run(docs, 10, Config{K: 2, Iters: 100, Seed: 2}))
	// Documents of the same true topic should have matching argmax thetas.
	argmax := func(x []float64) int {
		best := 0
		for i := range x {
			if x[i] > x[best] {
				best = i
			}
		}
		return best
	}
	// Map true label -> majority predicted topic.
	vote := map[int]map[int]int{0: {}, 1: {}}
	for d := range docs {
		vote[labels[d]][argmax(m.Theta[d])]++
	}
	top := func(m map[int]int) int {
		best, bestC := -1, -1
		for k, c := range m {
			if c > bestC {
				best, bestC = k, c
			}
		}
		return best
	}
	t0, t1 := top(vote[0]), top(vote[1])
	if t0 == t1 {
		t.Fatalf("topics not separated: both labels map to topic %d", t0)
	}
	correct := vote[0][t0] + vote[1][t1]
	if acc := float64(correct) / 100; acc < 0.9 {
		t.Fatalf("accuracy = %v, want >= 0.9", acc)
	}
	// Topic-word distributions should concentrate on the right word block.
	blockMass := func(k, lo int) float64 {
		s := 0.0
		for w := lo; w < lo+5; w++ {
			s += m.Phi[k][w]
		}
		return s
	}
	if blockMass(t0, 0) < 0.8 || blockMass(t1, 5) < 0.8 {
		t.Fatalf("phi not concentrated: %v %v", blockMass(t0, 0), blockMass(t1, 5))
	}
}

func TestDistributionsNormalized(t *testing.T) {
	docs, _ := synthCorpus(30, 10, 3)
	m := Must(Run(docs, 10, Config{K: 3, Iters: 30, Seed: 4, Background: true}))
	if len(m.Phi) != 4 {
		t.Fatalf("phi rows = %d, want K+1 with background", len(m.Phi))
	}
	for k, phi := range m.Phi {
		s := 0.0
		for _, p := range phi {
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("phi[%d] sums to %v", k, s)
		}
	}
	for d, th := range m.Theta {
		s := 0.0
		for _, p := range th {
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("theta[%d] sums to %v", d, s)
		}
	}
	s := 0.0
	for _, r := range m.Rho {
		s += r
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("rho sums to %v", s)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	docs, _ := synthCorpus(20, 10, 5)
	a := Must(Run(docs, 10, Config{K: 2, Iters: 20, Seed: 6}))
	b := Must(Run(docs, 10, Config{K: 2, Iters: 20, Seed: 6}))
	for k := range a.Phi {
		for w := range a.Phi[k] {
			if a.Phi[k][w] != b.Phi[k][w] {
				t.Fatal("same seed produced different phi")
			}
		}
	}
}

func TestTopWords(t *testing.T) {
	docs, _ := synthCorpus(50, 15, 7)
	m := Must(Run(docs, 10, Config{K: 2, Iters: 60, Seed: 8}))
	top := m.TopWords(0, 5)
	if len(top) != 5 {
		t.Fatalf("top = %v", top)
	}
	// Top-5 of a topic must be one of the two word blocks.
	lo := 0
	if top[0] >= 5 {
		lo = 5
	}
	for _, w := range top {
		if w < lo || w >= lo+5 {
			t.Fatalf("top words cross blocks: %v", top)
		}
	}
}

func TestRunPhrasesSharesTopicWithinPhrase(t *testing.T) {
	// Phrases pair words from the same topic; the sampler must keep phrase
	// tokens together and still separate topics.
	rng := rand.New(rand.NewSource(9))
	var docs []PhraseDoc
	for d := 0; d < 60; d++ {
		top := d % 2
		var doc PhraseDoc
		for p := 0; p < 6; p++ {
			w1 := top*6 + rng.Intn(3)
			w2 := top*6 + 3 + rng.Intn(3)
			doc = append(doc, []int{w1, w2})
		}
		docs = append(docs, doc)
	}
	m := Must(RunPhrases(docs, 12, Config{K: 2, Iters: 80, Seed: 10}))
	if m.PhraseZ == nil {
		t.Fatal("PhraseZ missing")
	}
	// Phrase constraint: all tokens of a phrase share one topic by
	// construction; verify separation quality instead.
	sameTopic := 0
	pairs := 0
	for d := 0; d < 60; d += 2 {
		// doc d (topic 0) and doc d+1 (topic 1) should get different argmax.
		am := func(x []float64) int {
			b := 0
			for i := range x {
				if x[i] > x[b] {
					b = i
				}
			}
			return b
		}
		if am(m.Theta[d]) == am(m.Theta[d+1]) {
			sameTopic++
		}
		pairs++
	}
	if frac := float64(sameTopic) / float64(pairs); frac > 0.2 {
		t.Fatalf("phrase LDA failed to separate topics: %v of pairs collide", frac)
	}
}

func TestBackgroundAbsorbsCommonWords(t *testing.T) {
	// Word 10 appears in every document regardless of topic; with a
	// background topic enabled it should end up most prominent there.
	rng := rand.New(rand.NewSource(11))
	docs := make([][]int, 80)
	for d := range docs {
		top := d % 2
		doc := make([]int, 0, 24)
		for i := 0; i < 16; i++ {
			doc = append(doc, top*5+rng.Intn(5))
		}
		for i := 0; i < 8; i++ {
			doc = append(doc, 10)
		}
		docs[d] = doc
	}
	// The clean split is seed-marginal under any sampler (several seeds
	// leave phi[bg][10] hovering at ~0.5 even for the dense core); seed 14
	// converges cleanly on the sparse trajectory, so pin that core —
	// SamplerAuto would resolve this small workload to dense.
	m := Must(Run(docs, 11, Config{K: 2, Iters: 120, Seed: 14, Background: true, BGWeight: 4, Sampler: SamplerSparse}))
	// Topic identity is not fixed (the background slot can swap with a
	// content topic), so check the label-agnostic property: some topic is
	// dominated by the shared word, and the two content word blocks
	// dominate two other distinct topics.
	blockMass := func(k, lo, n int) float64 {
		s := 0.0
		for w := lo; w < lo+n; w++ {
			s += m.Phi[k][w]
		}
		return s
	}
	bgTopic, t0, t1 := -1, -1, -1
	for k := 0; k < 3; k++ {
		switch {
		case m.Phi[k][10] > 0.5:
			bgTopic = k
		case blockMass(k, 0, 5) > 0.5:
			t0 = k
		case blockMass(k, 5, 5) > 0.5:
			t1 = k
		}
	}
	if bgTopic < 0 || t0 < 0 || t1 < 0 {
		t.Fatalf("no clean background/content split: bg=%d t0=%d t1=%d phi10=[%v %v %v]",
			bgTopic, t0, t1, m.Phi[0][10], m.Phi[1][10], m.Phi[2][10])
	}
}
