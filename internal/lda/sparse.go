package lda

import (
	"lesm/internal/linalg"
	"lesm/internal/par"
)

// The sparse sampling core: a bucket decomposition of the collapsed Gibbs
// conditional plus per-sweep Walker alias tables, cutting the per-token
// cost from O(K) to O(K_d) amortized (K_d = topics the document actually
// uses). The decomposition expands the conditional's numerator
//
//	p(k) ∝ (n_dk + α_k)(n_kw + β) / (n_k + Vβ)
//	     = [ n_dk·n_kw  +  n_dk·β  +  α_k·n_kw  +  α_k·β ] / (n_k + Vβ)
//	         t bucket      r bucket    q bucket     s bucket
//
// following SparseLDA's s/r/q split (Yao, Mimno & McCallum, KDD 2009) with
// the doc-dependent part of q peeled off into t, so that q becomes fully
// document-independent and can be served by an alias table per word
// (AliasLDA / LightLDA, Li et al., KDD 2014):
//
//   - t: sparse in the document's topics — computed fresh per token by
//     walking the per-document topic list (O(K_d)); uses exact
//     global+delta counts.
//   - r: sparse in the document's topics — maintained incrementally as
//     counts change (O(1) per change), recomputed at doc start.
//   - s: dense but tiny (α·β terms) — maintained incrementally, walked
//     only on the rare draws that land in it.
//   - q: dense over the word's topics — served by a Walker alias table
//     built once per sweep from the *frozen* global nKV/nK. This is the
//     same one-pass-stale kind of approximation the AD-LDA chunk design
//     already makes — the globals are frozen for the pass either way — but
//     it is strictly more of it: the dense core folds the own-chunk delta
//     into every term (and is exact collapsed Gibbs on single-chunk runs),
//     while the sparse q bucket ignores within-pass count movement, with
//     no Metropolis-Hastings correction. The t/r/s buckets stay exact
//     against global + own-chunk delta; the perplexity-parity gate below
//     bounds the consequence empirically.
//
// Chunk boundaries and per-document PRNG streams are untouched, so the
// sparse sampler is bit-identical at any Config.P — but it consumes the
// per-document streams differently than the dense sampler, so it is a
// *different* deterministic trajectory (same stationary behaviour; see
// TestSparseDensePerplexityParity). The dense path remains available
// behind Config.Sampler for A/B validation.

// qAlias is the per-sweep alias machinery for the q bucket: one Walker
// table per vocabulary word over the topics whose frozen global count is
// nonzero, held in a linalg.AliasSet whose backing storage is reused
// across sweeps.
type qAlias struct {
	v      int
	set    linalg.AliasSet
	invDen []float64
}

func newQAlias(v int) *qAlias {
	q := &qAlias{v: v}
	q.set.Reset(v)
	return q
}

func (q *qAlias) mass(w int) float64      { return q.set.Mass[w] }
func (q *qAlias) tab(w int) *linalg.Alias { return &q.set.Tab[w] }

// rebuild reconstructs every word's alias table from the frozen global
// tables at the start of a sweep. Two row-major O(K·V) scans gather the
// nonzeros into the set's CSC layout (cache-friendly; the column-major
// alternative walks the table V-strided), then the per-word table builds
// run on the shared pool — each word's build is independent, so
// parallelism cannot change the result. Cost is O(K·V + nnz) per sweep,
// amortized over the corpus's tokens.
func (q *qAlias) rebuild(o par.Opts, alpha []float64, beta float64, nKV [][]int, nK []int) error {
	kTotal := len(nKV)
	vb := float64(q.v) * beta
	if cap(q.invDen) < kTotal {
		q.invDen = make([]float64, kTotal)
	}
	invDen := q.invDen[:kTotal]
	for k, n := range nK {
		invDen[k] = 1 / (float64(n) + vb)
	}
	s := &q.set
	s.Reset(q.v)
	for _, row := range nKV {
		for w, c := range row {
			if c > 0 {
				s.Count(w)
			}
		}
	}
	s.Layout()
	for k, row := range nKV {
		ak := alpha[k] * invDen[k]
		for w, c := range row {
			if c > 0 {
				s.Put(w, int32(k), ak*float64(c))
			}
		}
	}
	return s.Build(o)
}

// sparseChunk is one chunk's incremental bucket state. It owns no counts:
// nKV/nK are the frozen globals, dl is the chunk's delta (shared with the
// dense merge machinery), nDK is the current document's dense topic
// counts. The chunk keeps the derived quantities — inverse denominators,
// s/r masses, the document's topic support — in sync as adjust is called.
type sparseChunk struct {
	alpha    []float64
	beta, vb float64
	nKV      [][]int
	nK       []int
	dl       *delta
	qa       *qAlias

	// invDen[k] = 1/(nK[k]+dl.k[k]+Vβ), the chunk's current denominator.
	invDen []float64
	// sMass = Σ_k α_k·β·invDen[k], updated incrementally.
	sMass float64

	// Per-document state, valid between beginDoc calls.
	nDK    []int
	docSet *linalg.IndexSet
	// rMass = Σ_{k ∈ docSet} nDK[k]·β·invDen[k], updated incrementally.
	rMass float64
	// tvals[j] is the t-bucket value of docSet.Indices()[j] for the token
	// being sampled (filled by sampleToken, reused for the bucket walk).
	tvals []float64
}

func newSparseChunk(alpha []float64, beta float64, v int, nKV [][]int, nK []int, dl *delta, qa *qAlias) *sparseChunk {
	kTotal := len(alpha)
	return &sparseChunk{
		alpha: alpha, beta: beta, vb: float64(v) * beta,
		nKV: nKV, nK: nK, dl: dl, qa: qa,
		invDen: make([]float64, kTotal),
		docSet: linalg.NewIndexSet(kTotal),
		tvals:  make([]float64, kTotal),
	}
}

// enableSparse attaches sparse bucket state to every chunk of the scratch.
func (sc *sweepScratch) enableSparse(alpha []float64, beta float64, v int, nKV [][]int, nK []int, qa *qAlias) {
	sc.sparse = make([]*sparseChunk, len(sc.deltas))
	for c := range sc.sparse {
		sc.sparse[c] = newSparseChunk(alpha, beta, v, nKV, nK, sc.deltas[c], qa)
	}
}

// effKV and effK are the chunk's current effective counts: frozen global
// plus own-chunk delta (never negative — the chunk only removes tokens it
// owns, and those were merged into the globals by the previous pass).
func (s *sparseChunk) effKV(k, w int) int { return s.nKV[k][w] + s.dl.kv[k][w] }
func (s *sparseChunk) effK(k int) int     { return s.nK[k] + s.dl.k[k] }

// beginPass refreshes the denominators and s mass from the sweep-start
// globals (the chunk delta is empty here: applyTo reset it). O(K), once
// per chunk per sweep.
func (s *sparseChunk) beginPass() {
	sm := 0.0
	for k := range s.invDen {
		inv := 1 / (float64(s.nK[k]) + s.vb)
		s.invDen[k] = inv
		sm += s.alpha[k] * s.beta * inv
	}
	s.sMass = sm
}

// beginDoc points the chunk at document state nDK and rebuilds the
// document's topic support and r mass. O(K) — amortized over the
// document's tokens, and the incremental updates keep it O(1) thereafter.
func (s *sparseChunk) beginDoc(nDK []int) {
	s.nDK = nDK
	s.docSet.Clear()
	rm := 0.0
	for k, c := range nDK {
		if c > 0 {
			s.docSet.Add(k)
			rm += float64(c) * s.beta * s.invDen[k]
		}
	}
	s.rMass = rm
}

// adjust moves c tokens of word w into (+) or out of (−) topic k,
// updating the delta table, the document counts, the denominators and the
// incremental bucket masses together. O(1).
func (s *sparseChunk) adjust(k, w, c int) {
	old := s.invDen[k]
	s.sMass -= s.alpha[k] * s.beta * old
	s.rMass -= float64(s.nDK[k]) * s.beta * old
	s.dl.add(k, w, c)
	s.nDK[k] += c
	inv := 1 / (float64(s.effK(k)) + s.vb)
	s.invDen[k] = inv
	s.sMass += s.alpha[k] * s.beta * inv
	if s.nDK[k] > 0 {
		s.docSet.Add(k)
		s.rMass += float64(s.nDK[k]) * s.beta * inv
	} else {
		s.docSet.Remove(k)
	}
}

// sampleToken draws a topic for one token of word w from the current
// conditional via the bucket decomposition. The t bucket is computed fresh
// (O(K_d), exact against global+delta counts); r and s are the maintained
// masses; q answers from the frozen alias table in O(1). Consumes one PRNG
// step, plus a second one only for draws landing in the q bucket.
func (s *sparseChunk) sampleToken(w int, rng *stream) int {
	nz := s.docSet.Indices()
	tvals := s.tvals[:len(nz)]
	tMass := 0.0
	for j, k32 := range nz {
		k := int(k32)
		tv := float64(s.nDK[k]) * float64(s.effKV(k, w)) * s.invDen[k]
		tvals[j] = tv
		tMass += tv
	}
	qm := s.qa.mass(w)
	total := tMass + s.rMass + s.sMass + qm
	u := rng.Float64() * total
	switch {
	case u < tMass:
		for j, tv := range tvals {
			u -= tv
			if u <= 0 {
				return int(nz[j])
			}
		}
		return int(nz[len(nz)-1])
	case u < tMass+s.rMass:
		u -= tMass
		for _, k32 := range nz {
			k := int(k32)
			u -= float64(s.nDK[k]) * s.beta * s.invDen[k]
			if u <= 0 {
				return k
			}
		}
		return int(nz[len(nz)-1])
	case u < tMass+s.rMass+s.sMass || qm <= 0:
		// Incremental masses carry float rounding, so a draw can
		// overshoot into a zero q bucket; the s walk's clamp absorbs it.
		u -= tMass + s.rMass
		for k := range s.alpha {
			u -= s.alpha[k] * s.beta * s.invDen[k]
			if u <= 0 {
				return k
			}
		}
		return len(s.alpha) - 1
	default:
		return s.qa.tab(w).Draw(rng.Float64())
	}
}
