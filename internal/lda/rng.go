package lda

// Counter-based PRNG streams for the parallel Gibbs samplers.
//
// Each document gets an independent stream per sweep, keyed by
// (seed, doc, sweep) through the SplitMix64 finalizer. Because a stream's
// output depends only on that key — never on which worker runs the
// document or how many other documents were sampled first — the sampled
// trajectory is a pure function of the seed at any parallelism level.

// mix64 is the SplitMix64 finalizer (Steele et al., "Fast splittable
// pseudorandom number generators"), a strong 64-bit avalanche function.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// stream is a SplitMix64 generator positioned by a (seed, doc, sweep) key.
type stream struct {
	s uint64
}

const (
	golden    = 0x9e3779b97f4a7c15 // 2^64 / phi, the SplitMix64 increment
	sweepSalt = 0xd1b54a32d192ed03
)

// newStream derives the stream of document doc at sweep number sweep.
// Sweep 0 is the initialization pass; Gibbs sweeps count from 1.
func newStream(seed int64, doc, sweep uint64) stream {
	s := mix64(uint64(seed) + golden)
	s = mix64(s ^ (doc+1)*golden)
	s = mix64(s ^ (sweep+1)*sweepSalt)
	return stream{s}
}

// next advances the stream one step.
func (st *stream) next() uint64 {
	st.s += golden
	return mix64(st.s)
}

// Float64 returns a uniform float64 in [0, 1).
func (st *stream) Float64() float64 {
	return float64(st.next()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). The modulo bias is < n/2^64 —
// irrelevant for topic-count-sized n.
func (st *stream) Intn(n int) int {
	return int(st.next() % uint64(n))
}
