package lda

import "lesm/internal/rng"

// The samplers' counter-based PRNG streams live in internal/rng (shared
// with internal/tng since the TNG sampler went parallel); these aliases
// keep the package-local names the sampler code reads naturally.

// stream is a SplitMix64 generator positioned by a (seed, doc, sweep) key.
type stream = rng.Stream

// newStream derives the stream of document doc at sweep number sweep.
// Sweep 0 is the initialization pass; Gibbs sweeps count from 1.
func newStream(seed int64, doc, sweep uint64) stream {
	return rng.NewStream(seed, doc, sweep)
}
