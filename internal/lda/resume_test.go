package lda

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// resumeCorpus is synthCorpus plus an empty document, so every resume
// test also exercises the zero-token row parity between the init pass
// and the restore path.
func resumeCorpus(nDocs, docLen int, seed int64) [][]int {
	docs, _ := synthCorpus(nDocs, docLen, seed)
	docs = append(docs, []int{})
	return docs
}

// resumePhraseCorpus builds the two-topic phrase corpus of the phrase
// sampler tests, plus an empty document.
func resumePhraseCorpus(nDocs int, seed int64) []PhraseDoc {
	rng := rand.New(rand.NewSource(seed))
	docs := make([]PhraseDoc, 0, nDocs+1)
	for d := 0; d < nDocs; d++ {
		top := d % 2
		var doc PhraseDoc
		for p := 0; p < 6; p++ {
			w1 := top*6 + rng.Intn(3)
			w2 := top*6 + 3 + rng.Intn(3)
			doc = append(doc, []int{w1, w2})
		}
		docs = append(docs, doc)
	}
	return append(docs, PhraseDoc{})
}

// fitOnce runs the token or phrase fit for cfg, capturing every
// checkpoint by sweep.
func fitOnce(t *testing.T, phrase bool, cfg Config, ckpts map[int]*Checkpoint) *Model {
	t.Helper()
	if ckpts != nil {
		cfg.CheckpointFunc = func(cp *Checkpoint) error {
			ckpts[cp.Sweep] = cp
			return nil
		}
	}
	var m *Model
	var err error
	if phrase {
		m, err = RunPhrases(resumePhraseCorpus(40, 9), 12, cfg)
	} else {
		m, err = Run(resumeCorpus(40, 12, 9), 10, cfg)
	}
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	return m
}

// TestResumeBitIdentical is the crash-safety contract: a fit killed at a
// sweep boundary and resumed from its checkpoint produces a final model
// bit-identical to the uninterrupted run's — for every sampling core,
// token and phrase variants, at P=1 and P=8, and across a parallelism
// change between the checkpointing run and the resuming run.
func TestResumeBitIdentical(t *testing.T) {
	cases := []struct {
		name     string
		sampler  Sampler
		phrase   bool
		bg       bool
		p, pBack int
	}{
		{"dense/p1", SamplerDense, false, true, 1, 1},
		{"dense/p8", SamplerDense, false, false, 8, 8},
		{"sparse/p1", SamplerSparse, false, false, 1, 1},
		{"sparse/p8", SamplerSparse, false, true, 8, 8},
		{"mh/p1", SamplerMH, false, false, 1, 1},
		{"mh/p8", SamplerMH, false, false, 8, 8},
		{"dense/phrase/p8", SamplerDense, true, false, 8, 8},
		{"sparse/phrase/p1", SamplerSparse, true, false, 1, 1},
		{"mh/phrase/p8", SamplerMH, true, true, 8, 8},
		// Checkpoint at one parallelism level, resume at another: P is
		// deliberately outside the fingerprint because the trajectory is
		// P-independent.
		{"dense/cross-p", SamplerDense, false, false, 1, 8},
		{"mh/cross-p", SamplerMH, true, false, 8, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			// Iters=20 with CheckpointEvery=7 puts the resume point at
			// sweep 14 — deliberately NOT a multiple of AliasRefresh=3, so
			// the MH cases resume with mid-staleness alias tables (the
			// hard case: the active tables were built from counts three
			// sweeps older than the checkpointed Z).
			cfg := Config{
				K: 2, Iters: 20, Seed: 42, Sampler: tc.sampler,
				AliasRefresh: 3, Background: tc.bg, P: tc.p,
				CheckpointEvery: 7,
			}
			ckpts := map[int]*Checkpoint{}
			want := fitOnce(t, tc.phrase, cfg, ckpts)
			cp := ckpts[14]
			if cp == nil {
				t.Fatalf("no checkpoint at sweep 14 (have %v)", sweepsOf(ckpts))
			}
			if tc.sampler == SamplerMH && cp.MHSourceKV == nil {
				t.Fatal("MH checkpoint missing alias source counts")
			}
			resumeCfg := cfg
			resumeCfg.CheckpointEvery = 0
			resumeCfg.P = tc.pBack
			resumeCfg.Resume = cp
			got := fitOnce(t, tc.phrase, resumeCfg, nil)
			if !reflect.DeepEqual(want, got) {
				t.Fatal("resumed model differs from the uninterrupted fit")
			}
		})
	}
}

func sweepsOf(ckpts map[int]*Checkpoint) []int {
	var s []int
	for k := range ckpts {
		s = append(s, k)
	}
	return s
}

// TestStopCheckpointResume: Config.Stop ends the fit at a sweep boundary
// with ErrStopped after a final checkpoint, and resuming that checkpoint
// completes to the exact model the uninterrupted run produces.
func TestStopCheckpointResume(t *testing.T) {
	for _, sampler := range []Sampler{SamplerDense, SamplerSparse, SamplerMH} {
		sampler := sampler
		t.Run(string(sampler), func(t *testing.T) {
			t.Parallel()
			docs := resumeCorpus(40, 12, 9)
			cfg := Config{K: 2, Iters: 18, Seed: 7, Sampler: sampler, AliasRefresh: 3, P: 4}
			want := Must(Run(docs, 10, cfg))

			// Stop as soon as the cadence checkpoint at sweep 5 exists; the
			// boundary then writes a final checkpoint at sweep 6 and stops.
			var last *Checkpoint
			stopCfg := cfg
			stopCfg.CheckpointEvery = 5
			stopCfg.CheckpointFunc = func(cp *Checkpoint) error { last = cp; return nil }
			stopCfg.Stop = func() bool { return last != nil }
			if _, err := Run(docs, 10, stopCfg); !errors.Is(err, ErrStopped) {
				t.Fatalf("stopped fit returned %v, want ErrStopped", err)
			}
			if last == nil || last.Sweep != 6 {
				t.Fatalf("final checkpoint = %+v, want sweep 6", last)
			}

			resumeCfg := cfg
			resumeCfg.Resume = last
			got := Must(Run(docs, 10, resumeCfg))
			if !reflect.DeepEqual(want, got) {
				t.Fatal("stop+resume model differs from the uninterrupted fit")
			}
		})
	}
}

// TestCheckpointFuncErrorAbortsFit: a failing checkpoint sink (disk
// full, say) fails the fit loudly instead of sampling on with
// crash-safety silently gone.
func TestCheckpointFuncErrorAbortsFit(t *testing.T) {
	boom := errors.New("sink failed")
	_, err := Run(resumeCorpus(10, 8, 3), 10, Config{
		K: 2, Iters: 10, Seed: 1, CheckpointEvery: 2,
		CheckpointFunc: func(*Checkpoint) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sink's error", err)
	}
}

// TestResumeRejectsMismatch: a checkpoint only resumes the exact run it
// came from — configuration or corpus drift is an error, never a
// silently different trajectory.
func TestResumeRejectsMismatch(t *testing.T) {
	docs := resumeCorpus(20, 10, 5)
	cfg := Config{K: 2, Iters: 12, Seed: 6, CheckpointEvery: 4}
	ckpts := map[int]*Checkpoint{}
	cfg.CheckpointFunc = func(cp *Checkpoint) error { ckpts[cp.Sweep] = cp; return nil }
	if _, err := Run(docs, 10, cfg); err != nil {
		t.Fatal(err)
	}
	cp := ckpts[8]
	if cp == nil {
		t.Fatal("no checkpoint at sweep 8")
	}
	try := func(name string, mut func(c *Config, d *[][]int, v *int)) {
		t.Run(name, func(t *testing.T) {
			rcfg := Config{K: 2, Iters: 12, Seed: 6, Resume: cp}
			rdocs := make([][]int, len(docs))
			copy(rdocs, docs)
			v := 10
			mut(&rcfg, &rdocs, &v)
			if _, err := Run(rdocs, v, rcfg); err == nil {
				t.Fatal("mismatched resume accepted")
			}
		})
	}
	try("seed", func(c *Config, _ *[][]int, _ *int) { c.Seed = 7 })
	try("k", func(c *Config, _ *[][]int, _ *int) { c.K = 3 })
	try("iters", func(c *Config, _ *[][]int, _ *int) { c.Iters = 40 })
	try("sampler", func(c *Config, _ *[][]int, _ *int) { c.Sampler = SamplerMH })
	try("background", func(c *Config, _ *[][]int, _ *int) { c.Background = true })
	try("vocab", func(_ *Config, _ *[][]int, v *int) { *v = 11 })
	try("doc-count", func(_ *Config, d *[][]int, _ *int) { *d = (*d)[:len(*d)-1] })
	try("token-edit", func(_ *Config, d *[][]int, _ *int) {
		doc := append([]int(nil), (*d)[0]...)
		doc[0] = (doc[0] + 1) % 10
		(*d)[0] = doc
	})
	// A token checkpoint must not resume a phrase fit even over the same
	// word ids: the segmentation is part of the corpus hash.
	t.Run("engine", func(t *testing.T) {
		pdocs := make([]PhraseDoc, len(docs))
		for i, d := range docs {
			for _, w := range d {
				pdocs[i] = append(pdocs[i], []int{w})
			}
		}
		if _, err := RunPhrases(pdocs, 10, Config{K: 2, Iters: 12, Seed: 6, Resume: cp}); err == nil {
			t.Fatal("token checkpoint accepted by a phrase fit")
		}
	})
}

// TestCheckpointConfigValidation: the checkpoint knobs validate like
// every other Config field.
func TestCheckpointConfigValidation(t *testing.T) {
	docs := resumeCorpus(5, 6, 2)
	if _, err := Run(docs, 10, Config{K: 2, Iters: 5, CheckpointEvery: -1}); err == nil {
		t.Fatal("negative CheckpointEvery accepted")
	}
	if _, err := Run(docs, 10, Config{K: 2, Iters: 5, CheckpointEvery: 3}); err == nil {
		t.Fatal("CheckpointEvery without CheckpointFunc accepted")
	}
}

// TestCheckpointingIsObservational: a fit with checkpointing enabled
// produces the same model as one without — capturing state must not
// perturb the trajectory.
func TestCheckpointingIsObservational(t *testing.T) {
	for _, sampler := range []Sampler{SamplerSparse, SamplerMH} {
		t.Run(string(sampler), func(t *testing.T) {
			cfg := Config{K: 2, Iters: 15, Seed: 11, Sampler: sampler, AliasRefresh: 3, P: 4}
			want := fitOnce(t, false, cfg, nil)
			ckCfg := cfg
			ckCfg.CheckpointEvery = 1
			got := fitOnce(t, false, ckCfg, map[int]*Checkpoint{})
			if !reflect.DeepEqual(want, got) {
				t.Fatal("checkpointing changed the fitted model")
			}
		})
	}
}
