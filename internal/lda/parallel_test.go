// Parallel-sampler invariants, mirroring the top-level parallel_test.go:
// the Gibbs samplers chunk documents independently of the worker count,
// give every document its own (seed, doc, sweep) PRNG stream, and merge
// per-chunk count deltas in chunk order — so a fitted model must be
// bit-identical at Config.P = 1 and 8, and a cancelled context must
// surface promptly as an error.
package lda

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"lesm/internal/par"
)

// bigSynthCorpus builds a corpus large enough to span several sampler
// chunks (samplerChunks asks for one chunk per 32 documents).
func bigSynthCorpus(nDocs int, seed int64) [][]int {
	docs, _ := synthCorpus(nDocs, 24, seed)
	return docs
}

func TestRunDeterministicAcrossP(t *testing.T) {
	docs := bigSynthCorpus(160, 41)
	run := func(p int) *Model {
		return Must(Run(docs, 10, Config{K: 3, Iters: 30, Seed: 42, Background: true, P: p}))
	}
	want := run(1)
	if nc := samplerChunks(len(docs), 4, 10); nc < 2 {
		t.Fatalf("corpus spans %d chunk(s); the test needs >= 2 to exercise delta merging", nc)
	}
	for _, p := range []int{2, 8} {
		got := run(p)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("P=%d model differs from P=1 model", p)
		}
	}
}

func TestRunPhrasesDeterministicAcrossP(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	docs := make([]PhraseDoc, 160)
	for d := range docs {
		top := d % 2
		var doc PhraseDoc
		for p := 0; p < 8; p++ {
			doc = append(doc, []int{top*6 + rng.Intn(3), top*6 + 3 + rng.Intn(3)})
		}
		docs[d] = doc
	}
	run := func(p int) *Model {
		return Must(RunPhrases(docs, 12, Config{K: 2, Iters: 30, Seed: 44, P: p}))
	}
	want := run(1)
	for _, p := range []int{2, 8} {
		got := run(p)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("P=%d model differs from P=1 model", p)
		}
	}
}

// TestRunIndependentOfWorkerScheduling stresses the pool: many workers on
// few chunks, repeated runs, all bitwise equal.
func TestRunIndependentOfWorkerScheduling(t *testing.T) {
	docs := bigSynthCorpus(96, 45)
	want := Must(Run(docs, 10, Config{K: 2, Iters: 10, Seed: 46, P: 1}))
	for trial := 0; trial < 5; trial++ {
		got := Must(Run(docs, 10, Config{K: 2, Iters: 10, Seed: 46, P: 7}))
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: P=7 model differs from P=1 model", trial)
		}
	}
}

// TestSamplerChunksPolicy pins the sampler's chunk policy (shared with
// internal/tng via par.SamplerChunks): coarse doc chunks, a 64-chunk
// ceiling, and a delta-table cell budget that sheds parallelism on huge
// vocabularies instead of multiplying memory. All pure functions of the
// problem shape, never of P.
func TestSamplerChunksPolicy(t *testing.T) {
	if nc := samplerChunks(2048, 5, 100); nc != par.SamplerMaxChunks {
		t.Fatalf("samplerChunks(2048, small vocab) = %d, want %d", nc, par.SamplerMaxChunks)
	}
	if nc := samplerChunks(31, 5, 100); nc != 1 {
		t.Fatalf("samplerChunks(31) = %d, want 1", nc)
	}
	// 21 topics x 500k words = 10.5M cells per chunk: the budget allows
	// only a handful of live delta tables.
	nc := samplerChunks(100000, 21, 500000)
	if nc < 1 || nc*21*500000 > par.SamplerCellBudget {
		t.Fatalf("samplerChunks huge-vocab = %d chunks, %d cells exceeds budget %d",
			nc, nc*21*500000, par.SamplerCellBudget)
	}
}

// TestEmptyCorpus pins the serial sampler's behaviour on degenerate input:
// no documents is not an error, just an empty model.
func TestEmptyCorpus(t *testing.T) {
	m := Must(Run(nil, 5, Config{K: 2, Iters: 10, Seed: 52}))
	if len(m.Phi) != 2 || len(m.Theta) != 0 || len(m.Z) != 0 {
		t.Fatalf("empty-corpus model malformed: %+v", m)
	}
	pm := Must(RunPhrases(nil, 5, Config{K: 2, Iters: 10, Seed: 53}))
	if len(pm.Phi) != 2 || len(pm.PhraseZ) != 0 {
		t.Fatalf("empty-corpus phrase model malformed: %+v", pm)
	}
}

func TestCancelledContextReturnsError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	docs := bigSynthCorpus(160, 47)
	if m, err := Run(docs, 10, Config{K: 2, Iters: 30, Seed: 48, P: 4, Ctx: ctx}); !errors.Is(err, context.Canceled) || m != nil {
		t.Fatalf("Run: model=%v err=%v, want nil model and context.Canceled", m, err)
	}
	pdocs := make([]PhraseDoc, 160)
	for d := range pdocs {
		pdocs[d] = PhraseDoc{{0, 1}, {2, 3}}
	}
	if m, err := RunPhrases(pdocs, 4, Config{K: 2, Iters: 30, Seed: 49, P: 4, Ctx: ctx}); !errors.Is(err, context.Canceled) || m != nil {
		t.Fatalf("RunPhrases: model=%v err=%v, want nil model and context.Canceled", m, err)
	}
}

func TestMidSamplingCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	docs := bigSynthCorpus(160, 50)
	go cancel()
	_, err := Run(docs, 10, Config{K: 2, Iters: 10000, Seed: 51, P: 2, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
