package lda

import (
	"time"

	"lesm/internal/linalg"
	"lesm/internal/par"
)

// The Metropolis–Hastings sampling core (Config.Sampler "mh"): LightLDA-
// style alias proposals (Yuan et al., WWW 2015; AliasLDA, Li et al., KDD
// 2014) over the same bucket-decomposed conditional the sparse core
// samples exactly,
//
//	p(k) ∝ (n_dk + α_k)(n_kw + β) / (n_k + Vβ).
//
// Where the sparse core pays an O(K·V) alias rebuild every sweep to keep
// its q bucket only one pass stale, the MH core draws each token's topic
// from cheap proposal distributions and corrects with an accept/reject
// step, so the per-word alias tables can go *several* sweeps stale without
// biasing the stationary distribution. Per token it alternates two
// proposals, each O(1):
//
//   - word proposal: q_w(k) ∝ n̂_kw + β over the *stale* global topic-word
//     counts n̂ frozen at the last alias rebuild — an alias draw from the
//     word's table (mass Σ_k n̂_kw) mixed with a uniform draw for the Kβ
//     smoothing mass;
//   - doc proposal: q_d(k) ∝ n_dk + α_k over the document's *current*
//     assignments — a uniform draw over the document's token slots (the z
//     array is the alias table, no build needed) mixed with an α draw from
//     a static table.
//
// Each proposal t is accepted over the incumbent k with the standard MH
// probability min(1, [p(t)·q(k)] / [p(k)·q(t)]) where p uses the *current*
// counts (global + own-chunk delta, exactly what the other cores sample
// from) and q the proposal's own distribution — the stale tables appear
// only inside q, so detailed balance holds against the current conditional
// and the chain's stationary distribution is the exact collapsed Gibbs
// conditional no matter how stale the tables are (staleness only lowers
// the acceptance rate). See TestMHKernelMatchesExactConditional for the
// chi-square check against deliberately stale tables.
//
// Alias tables rebuild every Config.AliasRefresh sweeps on the shared pool
// — double-buffered: the rebuild reads the sweep-start globals (frozen for
// the duration of the pass) and fills the inactive buffer concurrently
// with the sweep, swapping in at the pass boundary before the chunk deltas
// merge. A fit therefore performs 1 + ⌊(Iters−1)/AliasRefresh⌋ builds
// (Model.AliasRebuilds) instead of the sparse core's one per sweep.
//
// Determinism: chunk boundaries, per-document (Seed, doc, sweep) streams
// and the rebuild schedule are all P-independent, so MH models are
// bit-identical at any Config.P — the extra proposal/acceptance draws are
// consumed from the same per-document stream, making MH a third
// deterministic trajectory next to dense and sparse.

// DefaultAliasRefresh is the default MH alias-table rebuild cadence in
// sweeps (Config.AliasRefresh = 0). Eight sweeps keeps the amortized
// rebuild cost under an eighth of the sparse core's while the acceptance
// step absorbs the added staleness.
const DefaultAliasRefresh = 8

// mhProposal is the double-buffered word-proposal state: two AliasSets
// over the global topic-word counts, one active for sampling while the
// other absorbs a background rebuild. Only the pass boundary calls swap,
// so sampling always reads a complete, immutable buffer.
type mhProposal struct {
	v, kTotal int
	beta      float64
	// betaMass is the uniform smoothing mass Kβ every word's proposal
	// carries next to its alias mass.
	betaMass float64
	bufs     [2]linalg.AliasSet
	active   int
}

func newMHProposal(v, kTotal int, beta float64) *mhProposal {
	m := &mhProposal{v: v, kTotal: kTotal, beta: beta, betaMass: float64(kTotal) * beta}
	m.bufs[0].Reset(v)
	m.bufs[1].Reset(v)
	return m
}

func (m *mhProposal) cur() *linalg.AliasSet { return &m.bufs[m.active] }

// swap activates the most recently built buffer. Must not run while a
// pass is sampling.
func (m *mhProposal) swap() { m.active = 1 - m.active }

// buildInactive rebuilds the inactive buffer from the current global
// topic-word counts: CSC gather over the nonzeros (weights are the raw
// counts n̂_kw; the β smoothing mass is handled by the uniform arm of the
// draw) and per-word table builds on the pool. The caller must guarantee
// nKV is not mutated until the build completes — during a sweep the
// globals are frozen, which is exactly that guarantee.
func (m *mhProposal) buildInactive(o par.Opts, nKV [][]int) error {
	s := &m.bufs[1-m.active]
	s.Reset(m.v)
	for _, row := range nKV {
		for w, c := range row {
			if c > 0 {
				s.Count(w)
			}
		}
	}
	s.Layout()
	for k, row := range nKV {
		for w, c := range row {
			if c > 0 {
				s.Put(w, int32(k), float64(c))
			}
		}
	}
	return s.Build(o)
}

// buildAsync runs buildInactive on its own goroutine, overlapping the
// rebuild with the sweep that still samples from the active buffer. The
// caller must receive from the channel before merging chunk deltas into
// nKV (the build reads it) and before calling swap. The build's wall
// time is written to took before the channel send, so the receive
// orders the write for the joining goroutine.
func (m *mhProposal) buildAsync(o par.Opts, nKV [][]int, took *time.Duration) chan error {
	done := make(chan error, 1)
	go func() {
		t0 := time.Now()
		err := m.buildInactive(o, nKV)
		*took = time.Since(t0)
		done <- err
	}()
	return done
}

// propose draws one topic from the word proposal q_w(k) ∝ n̂_kw + β: the
// stale alias table with probability mass/(mass+Kβ), the uniform arm
// otherwise. One uniform variate drives both the arm choice and the draw
// inside the arm.
func (m *mhProposal) propose(w int, u float64) int {
	s := m.cur()
	mass := s.Mass[w]
	u *= mass + m.betaMass
	if u < mass {
		return s.Tab[w].Draw(u / mass)
	}
	t := int((u - mass) / m.beta)
	if t >= m.kTotal {
		t = m.kTotal - 1
	}
	return t
}

// density returns the word proposal's unnormalized density n̂_kw + β at
// topic k — the factor the acceptance ratio needs at the incumbent and
// proposed topics. O(log K_w) via the stale CSC column.
func (m *mhProposal) density(w, k int) float64 {
	return m.cur().Weight(w, int32(k)) + m.beta
}

// mhChunk is one chunk's MH sampling state. Unlike sparseChunk it keeps no
// incremental bucket masses — acceptance ratios read the handful of counts
// they need directly — so adjust is two array updates plus the delta
// bookkeeping.
type mhChunk struct {
	alpha    []float64
	alphaSum float64
	beta, vb float64
	nKV      [][]int
	nK       []int
	dl       *delta
	prop     *mhProposal
	// alphaTab serves the α arm of the doc proposal; static per run.
	alphaTab *linalg.Alias

	// den caches the per-topic conditional denominators
	// float64(nK[k]+dl.k[k]) + Vβ, the hottest loads in the acceptance
	// ratio. Rebuilt at sweep start (refreshDen) and maintained by adjust;
	// counts are far below 2^52, so every cached value is the exactly
	// rounded float of the integer sum.
	den []float64

	// Per-document state, valid between beginDoc calls.
	nDK []int
	// pDK[k] counts document phrases assigned topic k — the doc-proposal
	// density for RunPhrases, whose position draw is over phrase slots
	// rather than token slots. nil for token documents.
	pDK []int
}

func newMHChunk(alpha []float64, beta float64, v int, nKV [][]int, nK []int, dl *delta,
	prop *mhProposal, alphaTab *linalg.Alias, phrases bool) *mhChunk {
	c := &mhChunk{
		alpha: alpha, beta: beta, vb: float64(v) * beta,
		nKV: nKV, nK: nK, dl: dl, prop: prop, alphaTab: alphaTab,
	}
	for _, a := range alpha {
		c.alphaSum += a
	}
	if phrases {
		c.pDK = make([]int, len(alpha))
	}
	c.den = make([]float64, len(alpha))
	c.refreshDen()
	return c
}

// refreshDen recomputes the cached denominators from the chunk's current
// view of the topic totals. The run loops call it at every sweep start,
// after the previous sweep's deltas merged into nK.
func (s *mhChunk) refreshDen() {
	for k := range s.den {
		s.den[k] = float64(s.nK[k]+s.dl.k[k]) + s.vb
	}
}

// enableMH attaches MH sampling state to every chunk of the scratch.
func (sc *sweepScratch) enableMH(alpha []float64, beta float64, v int, nKV [][]int, nK []int,
	prop *mhProposal, alphaTab *linalg.Alias, phrases bool) {
	sc.mh = make([]*mhChunk, len(sc.deltas))
	for c := range sc.mh {
		sc.mh[c] = newMHChunk(alpha, beta, v, nKV, nK, sc.deltas[c], prop, alphaTab, phrases)
	}
}

func (s *mhChunk) effKV(k, w int) int { return s.nKV[k][w] + s.dl.kv[k][w] }

// beginDoc points the chunk at document state nDK; for phrase documents it
// also tallies the per-topic phrase counts from zDoc.
func (s *mhChunk) beginDoc(nDK []int, zDoc []int) {
	s.nDK = nDK
	if s.pDK != nil {
		for k := range s.pDK {
			s.pDK[k] = 0
		}
		for _, k := range zDoc {
			s.pDK[k]++
		}
	}
}

// adjust moves c tokens of word w into (+) or out of (−) topic k. O(1).
func (s *mhChunk) adjust(k, w, c int) {
	s.dl.add(k, w, c)
	s.nDK[k] += c
	s.den[k] += float64(c)
}

// target is the unnormalized collapsed conditional at topic x for word w
// with the token under resampling *virtually* removed: the counts still
// include it at topic kOld, so the three counts drop by 1 exactly when
// x == kOld. Virtual removal keeps the hot loop free of delta updates for
// the (majority of) tokens whose topic does not change — the caller only
// moves real counts on a change. Split into numerator and denominator so
// acceptance tests stay division-free.
func (s *mhChunk) target(x, w, kOld int) (num, den float64) {
	d := 0
	if x == kOld {
		d = 1
	}
	return (float64(s.nDK[x]-d) + s.alpha[x]) * (float64(s.effKV(x, w)-d) + s.beta),
		s.den[x] - float64(d)
}

// sampleToken draws a topic for one token of word w through the MH kernel:
// one word-proposal step then one doc-proposal step, each accepted against
// the current-count conditional with the token virtually removed (counts
// still include it at kOld = zDoc[i] on entry; target and the densities
// below carry the correction). zDoc[i] is updated in place after each
// sub-step so the doc proposal's slot draw is consistent with the
// incumbent; the caller moves the real counts only when the returned topic
// differs from kOld. posCnt is the per-topic tally of zDoc's slots
// *including* slot i at kOld (nDK for token documents, pDK for phrase
// documents).
//
// Doc-proposal densities: the slot draw includes slot i at the incumbent
// k, so q_d(y | k) ∝ cnt¬i(y) + 1{y=k} + α_y (cnt¬i = slot tally without
// slot i) and the reverse density is evaluated at the *destination* t,
// q_d(k | t) ∝ cnt¬i(k) + 1{k=t} + α_k. The acceptance branch only runs
// for t ≠ k, where both indicators vanish — evaluating the reverse density
// at the current state instead (the LightLDA paper's extra +1 on the
// incumbent) breaks detailed balance and measurably biases the chain (see
// the chi-square kernel test).
func (s *mhChunk) sampleToken(w int, zDoc []int, posCnt []int, i int, rng *stream) int {
	kOld := zDoc[i]
	k := kOld
	// Virtual removal freezes the counts for the token's duration, so the
	// incumbent's target factors are computed once and carried across both
	// proposal steps (updated only when a proposal is accepted).
	kn, kd := s.target(k, w, kOld)

	// Word proposal from the stale alias tables. q_w does not depend on
	// the incumbent, so this is plain independence MH. Only proposals
	// naming a different topic tick the counters — self-proposals are
	// no-ops either way and would inflate the recorded accept rate.
	if t := s.prop.propose(w, rng.Float64()); t != k {
		s.dl.ctr.wordProp++
		tn, td := s.target(t, w, kOld)
		// π = [p(t)·q_w(k)] / [p(k)·q_w(t)]; accept iff u·den < num.
		num := tn * kd * s.prop.density(w, k)
		den := kn * td * s.prop.density(w, t)
		if rng.Float64()*den < num {
			s.dl.ctr.wordAcc++
			k = t
			kn, kd = tn, td
			zDoc[i] = k
		}
	}

	// Doc proposal from the document's own assignment slots + α. One
	// variate picks the arm and, in the slot arm, the slot.
	u := rng.Float64() * (float64(len(zDoc)) + s.alphaSum)
	var t int
	if u < float64(len(zDoc)) {
		t = zDoc[int(u)]
	} else {
		t = s.alphaTab.Draw(rng.Float64())
	}
	if t != k {
		s.dl.ctr.docProp++
		dk, dt := 0, 0
		if k == kOld {
			dk = 1
		} else if t == kOld {
			dt = 1
		}
		qk := float64(posCnt[k]-dk) + s.alpha[k]
		qt := float64(posCnt[t]-dt) + s.alpha[t]
		tn, td := s.target(t, w, kOld)
		num := tn * kd * qk
		den := kn * td * qt
		if rng.Float64()*den < num {
			s.dl.ctr.docAcc++
			k = t
			zDoc[i] = k
		}
	}
	return k
}

// mhRebuildSchedule owns the amortized, double-buffered rebuild loop both
// MH run paths share: kick an async rebuild when the active tables are
// AliasRefresh sweeps stale, join it at the pass boundary (before the
// sweep's deltas merge into the globals the rebuild is reading), swap.
type mhRebuildSchedule struct {
	prop    *mhProposal
	refresh int
	stale   int
	pending chan error
	// Rebuilds counts completed builds, including the initial one.
	Rebuilds int
	// BuildTime accumulates the wall time of completed builds (the
	// async builds' concurrent wall time, not kick-to-join). lastBuild
	// is the in-flight build's landing slot, synchronized by the
	// pending-channel receive.
	BuildTime time.Duration
	lastBuild time.Duration
	// keepSrc makes the schedule retain srcKV, a deep copy of the exact
	// counts the *active* tables were built from. Checkpoints need it —
	// at a sweep boundary the active tables are up to refresh sweeps
	// stale, so their source is not recoverable from the boundary counts
	// — and restore rebuilds bit-identical tables from it (the alias
	// build is deterministic in its input). Off unless the run
	// checkpoints; the copy costs O(K·V) per completed build.
	keepSrc bool
	srcKV   [][]int
	// liveKV remembers the table the in-flight (or initial) build reads,
	// so endPass can snapshot it after the swap. The globals are frozen
	// from the build's kick to endPass, so its contents there are
	// exactly what the build saw.
	liveKV [][]int
}

// start performs the initial synchronous build from the post-init counts.
func (r *mhRebuildSchedule) start(o par.Opts, nKV [][]int) error {
	t0 := time.Now()
	if err := r.prop.buildInactive(o, nKV); err != nil {
		return err
	}
	r.BuildTime += time.Since(t0)
	r.prop.swap()
	r.Rebuilds = 1
	if r.keepSrc {
		r.srcKV = copyTable(nKV)
	}
	return nil
}

// restore rebuilds the schedule's state from a checkpoint: the active
// tables from the checkpoint's source counts (bitwise identical to the
// tables the uninterrupted run held, since the build is deterministic),
// the staleness clock and the rebuild counter from the stored values —
// so every subsequent rebuild fires on the same sweep it would have.
func (r *mhRebuildSchedule) restore(o par.Opts, cp *Checkpoint) error {
	t0 := time.Now()
	if err := r.prop.buildInactive(o, cp.MHSourceKV); err != nil {
		return err
	}
	r.BuildTime += time.Since(t0)
	r.prop.swap()
	r.Rebuilds = cp.AliasRebuilds
	r.stale = cp.MHStale
	if r.keepSrc {
		r.srcKV = copyTable(cp.MHSourceKV)
	}
	return nil
}

// beginSweep kicks a background rebuild when the tables are stale enough.
func (r *mhRebuildSchedule) beginSweep(o par.Opts, nKV [][]int) {
	if r.stale >= r.refresh && r.pending == nil {
		r.liveKV = nKV
		r.pending = r.prop.buildAsync(o, nKV, &r.lastBuild)
	}
}

// endPass joins a pending rebuild and swaps the fresh tables in; gibbsPass
// calls it after the chunks finish and before the deltas merge.
func (r *mhRebuildSchedule) endPass() error {
	if r.pending == nil {
		return nil
	}
	err := <-r.pending
	r.pending = nil
	if err != nil {
		return err
	}
	r.BuildTime += r.lastBuild
	r.prop.swap()
	r.Rebuilds++
	r.stale = 0
	if r.keepSrc {
		// Still pre-merge: liveKV holds exactly the counts the joined
		// build read.
		r.srcKV = copyTable(r.liveKV)
	}
	return nil
}

// endSweep ages the active tables by one sweep.
func (r *mhRebuildSchedule) endSweep() { r.stale++ }

// drain joins a pending rebuild on an error exit so the goroutine (which
// reads the count tables) cannot outlive the run.
func (r *mhRebuildSchedule) drain() {
	if r.pending != nil {
		<-r.pending
		r.pending = nil
	}
}

// runMH is the MH fitting loop behind Run. Returns the number of alias
// rebuilds performed, for Model.AliasRebuilds.
func runMH(o par.Opts, cfg Config, docs [][]int, v, d, start int, sc *sweepScratch,
	alpha []float64, nDK [][]int, nKV [][]int, nK []int, z [][]int, rr *runRecorder, ck *ckptState) (int, error) {
	if d == 0 {
		return 0, o.Err()
	}
	prop := newMHProposal(v, len(alpha), cfg.Beta)
	sched := &mhRebuildSchedule{prop: prop, refresh: cfg.AliasRefresh, keepSrc: ck.wantsSnapshots()}
	if ck != nil {
		ck.mh = sched
	}
	if cp := cfg.Resume; cp != nil {
		if err := sched.restore(o, cp); err != nil {
			return sched.Rebuilds, err
		}
		rr.prime(sched.Rebuilds, sched.BuildTime)
	} else if err := sched.start(o, nKV); err != nil {
		return sched.Rebuilds, err
	}
	alphaTab := linalg.NewAlias(alpha)
	sc.enableMH(alpha, cfg.Beta, v, nKV, nK, prop, alphaTab, false)
	for it := start; it < cfg.Iters; it++ {
		for _, ch := range sc.mh {
			ch.refreshDen()
		}
		sched.beginSweep(o, nKV)
		err := gibbsPass(o, cfg.Seed, uint64(it+1), d, sc, nKV, nK, nil, sched.endPass,
			func(c, di int, rng *stream, _ *delta, _ []float64) {
				ch := sc.mh[c]
				zd := z[di]
				ch.beginDoc(nDK[di], zd)
				doc := docs[di]
				for i, w := range doc {
					kOld := zd[i]
					// sampleToken removes the token virtually and writes
					// zd[i]; counts move only on an actual topic change.
					if k := ch.sampleToken(w, zd, ch.nDK, i, rng); k != kOld {
						ch.dl.ctr.changed++
						ch.adjust(kOld, w, -1)
						ch.adjust(k, w, 1)
					}
				}
			})
		if err != nil {
			sched.drain()
			return sched.Rebuilds, err
		}
		sched.endSweep()
		// Diffed against the previous sweep's totals inside endSweep,
		// so the initial synchronous build lands on sweep 1's record.
		if err := rr.endSweep(o, it+1, sched.Rebuilds, sched.BuildTime); err != nil {
			return sched.Rebuilds, err
		}
		if err := ck.boundary(it + 1); err != nil {
			return sched.Rebuilds, err
		}
	}
	return sched.Rebuilds, nil
}

// runPhrasesMH is the MH loop behind RunPhrases. Unigram phrases — the
// dominant case in segmented corpora — go through the MH kernel with the
// doc proposal drawing over phrase slots (density pDK + α); multi-word
// phrases keep the dense product conditional, exactly as in the sparse
// core, reading counts through the same chunk state.
func runPhrasesMH(o par.Opts, cfg Config, docs []PhraseDoc, v, d, start int, sc *sweepScratch,
	alpha []float64, nDK [][]int, nKV [][]int, nK []int, zP [][]int, rr *runRecorder, ck *ckptState) (int, error) {
	if d == 0 {
		return 0, o.Err()
	}
	prop := newMHProposal(v, len(alpha), cfg.Beta)
	sched := &mhRebuildSchedule{prop: prop, refresh: cfg.AliasRefresh, keepSrc: ck.wantsSnapshots()}
	if ck != nil {
		ck.mh = sched
	}
	if cp := cfg.Resume; cp != nil {
		if err := sched.restore(o, cp); err != nil {
			return sched.Rebuilds, err
		}
		rr.prime(sched.Rebuilds, sched.BuildTime)
	} else if err := sched.start(o, nKV); err != nil {
		return sched.Rebuilds, err
	}
	alphaTab := linalg.NewAlias(alpha)
	sc.enableMH(alpha, cfg.Beta, v, nKV, nK, prop, alphaTab, true)
	for it := start; it < cfg.Iters; it++ {
		for _, ch := range sc.mh {
			ch.refreshDen()
		}
		sched.beginSweep(o, nKV)
		err := gibbsPass(o, cfg.Seed, uint64(it+1), d, sc, nKV, nK, nil, sched.endPass,
			func(c, di int, rng *stream, _ *delta, probs []float64) {
				ch := sc.mh[c]
				zPd := zP[di]
				ch.beginDoc(nDK[di], zPd)
				doc := docs[di]
				for pi, phrase := range doc {
					k := zPd[pi]
					if len(phrase) == 1 {
						// Unigram fast path: virtual removal, counts move
						// only on an actual topic change.
						w := phrase[0]
						if kNew := ch.sampleToken(w, zPd, ch.pDK, pi, rng); kNew != k {
							ch.dl.ctr.changed++
							ch.adjust(k, w, -1)
							ch.adjust(kNew, w, 1)
							ch.pDK[k]--
							ch.pDK[kNew]++
						}
						continue
					}
					// Multi-word phrases keep the dense product over
					// really-removed counts, exactly as in the sparse core.
					kOld := k
					for _, w := range phrase {
						ch.adjust(k, w, -1)
					}
					ch.pDK[k]--
					k = samplePhrase(phrase, ch.nDK, nK, nKV, ch.dl, alpha, ch.beta, ch.vb, probs, rng)
					if k != kOld {
						// A moved phrase moves all of its tokens, keeping
						// Changed in token units next to Tokens.
						ch.dl.ctr.changed += int64(len(phrase))
					}
					zPd[pi] = k
					ch.pDK[k]++
					for _, w := range phrase {
						ch.adjust(k, w, 1)
					}
				}
			})
		if err != nil {
			sched.drain()
			return sched.Rebuilds, err
		}
		sched.endSweep()
		if err := rr.endSweep(o, it+1, sched.Rebuilds, sched.BuildTime); err != nil {
			return sched.Rebuilds, err
		}
		if err := ck.boundary(it + 1); err != nil {
			return sched.Rebuilds, err
		}
	}
	return sched.Rebuilds, nil
}
