package lda

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"lesm/internal/linalg"
	"lesm/internal/obs"
	"lesm/internal/par"
)

// Fold-in inference: estimate document-topic distributions for unseen
// documents against a *fixed* fitted model (Griffiths & Steyvers' query
// sampling). The topic-word statistics never change during fold-in, so
// documents are fully independent of each other — the sampler
// parallelizes over documents with no shared mutable state, and every
// document's trajectory is a pure function of (Seed, doc index). This is
// the inference mode the serving daemon (internal/serve) runs per request.
//
// The conditional p(k) ∝ (n_dk + α_k)·φ_kw splits into a document part
// n_dk·φ_kw (sparse over the topics the query document uses, O(K_d)) and a
// prior part α_k·φ_kw that depends only on the word — served by one Walker
// alias table per word, built lazily once per model and cached (the model
// is immutable, so unlike the fitting side the tables never go stale and
// the sparse fold-in samples the *exact* same conditional as the dense
// one, just through a different draw pattern). FoldInConfig.Sampler picks
// the core; the default is sparse.

// DefaultFoldInAlpha is the document prior fold-in consumers should reach
// for when the caller doesn't supply one. The *fitting* default (50/K) is
// calibrated for estimating topic-word counts over whole training
// documents; folded-in query documents are typically a handful of tokens,
// and a 50/K prior bounds their theta to near-uniform regardless of
// content. 0.1 keeps short-document estimates evidence-driven.
const DefaultFoldInAlpha = 0.1

// FoldInModel is the frozen topic side of fold-in: the per-topic word
// likelihoods and the document prior. Treat a model as immutable once it
// has served a FoldIn call (the sparse core caches per-word alias tables
// derived from it).
type FoldInModel struct {
	// PhiLike[k][w] is the fixed p(w | topic k) each token is scored
	// against. Rows must share one length V; tokens with id >= V are
	// ignored.
	PhiLike [][]float64
	// Alpha[k] is the Dirichlet document prior (uniform in practice, but
	// kept per-topic so a background topic's inflated prior survives).
	Alpha []float64

	// Lazily-built sparse/MH machinery: per-word alias tables over the
	// prior part α_k·φ_kw of the conditional, plus their masses, plus one
	// table over α alone (the MH doc proposal's prior arm). ~2 extra words
	// of memory per (topic, word) cell, paid only when a non-dense core is
	// first used.
	sparseOnce sync.Once
	qMass      []float64
	qTab       []linalg.Alias
	alphaTab   *linalg.Alias
}

// NewFoldInModel freezes explicit topic-word distributions (e.g. a STROD
// model's Phi) with a uniform symmetric prior alpha (default 50/K).
func NewFoldInModel(phi [][]float64, alpha float64) *FoldInModel {
	k := len(phi)
	if alpha <= 0 {
		alpha = 50 / float64(max(k, 1))
	}
	av := make([]float64, k)
	for i := range av {
		av[i] = alpha
	}
	return &FoldInModel{PhiLike: phi, Alpha: av}
}

// FoldInModelFromCounts freezes a Gibbs model's sufficient statistics:
// PhiLike[k][w] = (nKV[k][w]+beta) / (nK[k]+V*beta), the exact smoothed
// distribution the fitting sampler would have used on its next sweep.
func FoldInModelFromCounts(nKV [][]int, nK []int, alpha, beta float64) *FoldInModel {
	k := len(nKV)
	if beta <= 0 {
		beta = 0.01
	}
	phi := make([][]float64, k)
	for t := range nKV {
		v := len(nKV[t])
		vb := float64(v) * beta
		row := make([]float64, v)
		for w, c := range nKV[t] {
			row[w] = (float64(c) + beta) / (float64(nK[t]) + vb)
		}
		phi[t] = row
	}
	return NewFoldInModel(phi, alpha)
}

// K returns the number of topics.
func (fm *FoldInModel) K() int { return len(fm.PhiLike) }

// V returns the vocabulary size (0 for an empty model).
func (fm *FoldInModel) V() int {
	if len(fm.PhiLike) == 0 {
		return 0
	}
	return len(fm.PhiLike[0])
}

// validate rejects malformed models up front instead of panicking deep in
// the per-document sampler.
func (fm *FoldInModel) validate() error {
	if fm == nil || fm.K() == 0 {
		return errors.New("lda: fold-in against an empty model")
	}
	v := fm.V()
	for k, row := range fm.PhiLike {
		if len(row) != v {
			return fmt.Errorf("lda: FoldInModel.PhiLike row %d has length %d, want %d (rows must share one vocabulary)", k, len(row), v)
		}
	}
	if len(fm.Alpha) != fm.K() {
		return fmt.Errorf("lda: FoldInModel has %d topics but %d Alpha entries", fm.K(), len(fm.Alpha))
	}
	for k, a := range fm.Alpha {
		if a < 0 || math.IsNaN(a) {
			return fmt.Errorf("lda: FoldInModel.Alpha[%d] = %v, need >= 0", k, a)
		}
	}
	return nil
}

// ensureSparse builds the per-word alias tables over α_k·φ_kw once. The
// build is O(K·V) and the result is cached for the model's lifetime —
// serving pays it on the first sparse /infer, not per request.
func (fm *FoldInModel) ensureSparse() {
	fm.sparseOnce.Do(func() {
		k, v := fm.K(), fm.V()
		fm.qMass = make([]float64, v)
		fm.qTab = make([]linalg.Alias, v)
		prob := make([]float64, k*v)
		alias := make([]int32, k*v)
		weights := make([]float64, k)
		var b linalg.AliasBuilder
		for w := 0; w < v; w++ {
			for t := 0; t < k; t++ {
				weights[t] = fm.Alpha[t] * fm.PhiLike[t][w]
			}
			fm.qTab[w] = b.Build(nil, weights, prob[w*k:(w+1)*k], alias[w*k:(w+1)*k])
			fm.qMass[w] = fm.qTab[w].Total
		}
		fm.alphaTab = linalg.NewAlias(fm.Alpha)
	})
}

// PrecomputeSparse eagerly builds the sparse core's cached per-word alias
// tables (normally built lazily on the first sparse FoldIn call), so a
// long-lived server pays the O(K·V) build at startup instead of on its
// first request. Safe to call concurrently; a no-op after the first build.
func (fm *FoldInModel) PrecomputeSparse() { fm.ensureSparse() }

// FoldInConfig parameterizes FoldIn.
type FoldInConfig struct {
	// Sweeps is the number of Gibbs sweeps per document (default 30 —
	// fold-in mixes fast because the topic side is frozen).
	Sweeps int
	// Seed keys the per-document PRNG streams: document i of the batch
	// samples from the (Seed, i, sweep) SplitMix64 stream, so results are
	// a pure function of (Seed, i, tokens) at any parallelism level.
	Seed int64
	// P bounds the worker count (0 = GOMAXPROCS).
	P int
	// Sampler selects the sampling core. SamplerAuto resolves per workload
	// exactly as in fitting (dense below the K/V thresholds, MH above; see
	// Sampler.ResolveFor). All cores sample the same per-token conditional
	// — the fold-in model is frozen, so even the MH core's proposal tables
	// are exact and acceptance only reshapes the trajectory, never the
	// stationary distribution.
	Sampler Sampler
	// Ctx cancels the batch between document chunks (nil = background).
	Ctx context.Context
	// Rec, when non-nil, receives one aggregate obs.SweepStats per
	// fold-in batch (Engine "foldin": token visits, changed fraction,
	// MH accept rates, batch wall time) plus pool telemetry. Recording
	// is observational only — thetas are bit-identical with Rec set or
	// nil — and must be safe for concurrent use (a serving process
	// records many batches at once).
	Rec obs.Recorder
}

func (c FoldInConfig) withDefaults() FoldInConfig {
	if c.Sweeps <= 0 {
		c.Sweeps = 30
	}
	return c
}

// FoldIn estimates theta[d][k] for each document against the frozen model.
// Unknown token ids (>= V) are skipped; a document with no usable token
// gets the normalized prior. Because the model is fixed, each document is
// sampled independently on the shared pool — bit-identical output at any
// cfg.P, and identical for a given (Seed, doc index, tokens) regardless of
// what else is in the batch.
func FoldIn(fm *FoldInModel, docs [][]int, cfg FoldInConfig) ([][]float64, error) {
	w, err := newFoldInWorkload(fm, cfg)
	if err != nil {
		return nil, err
	}
	agg := newFoldInAgg(cfg.Rec)
	theta := make([][]float64, len(docs))
	err = par.For(w.parOpts(), len(docs), func(lo, hi int) {
		sc := w.newScratch()
		for di := lo; di < hi; di++ {
			theta[di] = w.doc(sc, docs[di], w.cfg.Seed, uint64(di), w.cfg.Sweeps)
		}
		agg.absorb(&sc.ctr)
	})
	if err != nil {
		return nil, err
	}
	agg.emit(len(docs), w.cfg.Sweeps)
	return theta, nil
}

// BatchDoc is one document of a heterogeneous fold-in batch. Its sampling
// trajectory is keyed by its own (Seed, Index) pair — not by its position
// in the batch — so a coalescing server can merge documents from
// independent requests into one sweep batch without changing any
// request's result.
type BatchDoc struct {
	// Tokens are the document's vocabulary ids; ids outside [0, V) are
	// skipped exactly as in FoldIn.
	Tokens []int
	// Seed and Index key the document's PRNG streams: the document draws
	// from the (Seed, Index, sweep) streams, making its theta identical to
	// document Index of a FoldIn batch run with FoldInConfig.Seed = Seed.
	Seed  int64
	Index uint64
	// Sweeps overrides cfg.Sweeps for this document when > 0, so requests
	// with different sweep counts can share a batch.
	Sweeps int
}

// FoldInBatch is FoldIn over documents that do not share one (seed,
// position) keying — the request-coalescing entry point the serving layer
// uses to merge concurrent /infer requests into a single batch on the
// shared pool. theta[i] is bit-identical to what FoldIn would return for
// docs[i].Tokens at index docs[i].Index under seed docs[i].Seed, at any
// cfg.P and regardless of batch composition.
func FoldInBatch(fm *FoldInModel, docs []BatchDoc, cfg FoldInConfig) ([][]float64, error) {
	w, err := newFoldInWorkload(fm, cfg)
	if err != nil {
		return nil, err
	}
	agg := newFoldInAgg(cfg.Rec)
	theta := make([][]float64, len(docs))
	err = par.For(w.parOpts(), len(docs), func(lo, hi int) {
		sc := w.newScratch()
		for di := lo; di < hi; di++ {
			d := docs[di]
			sweeps := d.Sweeps
			if sweeps <= 0 {
				sweeps = w.cfg.Sweeps
			}
			theta[di] = w.doc(sc, d.Tokens, d.Seed, d.Index, sweeps)
		}
		agg.absorb(&sc.ctr)
	})
	if err != nil {
		return nil, err
	}
	agg.emit(len(docs), w.cfg.Sweeps)
	return theta, nil
}

// foldInWorkload is the validated, core-resolved state one fold-in batch
// shares across its workers; foldInScratch is the per-worker part.
type foldInWorkload struct {
	fm       *FoldInModel
	cfg      FoldInConfig
	core     Sampler
	alphaSum float64
	k, v     int
}

type foldInScratch struct {
	nDK    []int
	vals   []float64
	docSet *linalg.IndexSet
	// ctr tallies this worker chunk's sampling events; absorbed into
	// the batch aggregate (and only read at all) when a Recorder is
	// attached to the batch.
	ctr sweepCounters
}

// parOpts is the batch's runtime policy, with pool telemetry attached
// when a Recorder is.
func (w *foldInWorkload) parOpts() par.Opts {
	o := par.Opts{P: w.cfg.P, Ctx: w.cfg.Ctx}
	if w.cfg.Rec != nil {
		o.Obs = w.cfg.Rec
	}
	return o
}

// foldInAgg accumulates a batch's counters across workers and emits the
// single Engine-"foldin" record. nil (no Recorder) no-ops everywhere.
type foldInAgg struct {
	rec   obs.Recorder
	start time.Time

	tokens, changed                    atomic.Int64
	wordProp, wordAcc, docProp, docAcc atomic.Int64
}

func newFoldInAgg(rec obs.Recorder) *foldInAgg {
	if rec == nil {
		return nil
	}
	return &foldInAgg{rec: rec, start: time.Now()}
}

func (a *foldInAgg) absorb(c *sweepCounters) {
	if a == nil {
		return
	}
	a.tokens.Add(c.tokens)
	a.changed.Add(c.changed)
	a.wordProp.Add(c.wordProp)
	a.wordAcc.Add(c.wordAcc)
	a.docProp.Add(c.docProp)
	a.docAcc.Add(c.docAcc)
}

// emit publishes the batch record: Tokens counts token visits across
// all sweeps including each document's init pass, SweepTime is the
// batch wall time.
func (a *foldInAgg) emit(docs, sweeps int) {
	if a == nil {
		return
	}
	a.rec.RecordSweep(obs.SweepStats{
		Engine: "foldin", Sweep: sweeps, Sweeps: sweeps, Docs: docs,
		Tokens: a.tokens.Load(), Changed: a.changed.Load(),
		WordProposals: a.wordProp.Load(), WordAccepts: a.wordAcc.Load(),
		DocProposals: a.docProp.Load(), DocAccepts: a.docAcc.Load(),
		SweepTime:     time.Since(a.start),
		LogLikelihood: math.NaN(),
	})
}

func newFoldInWorkload(fm *FoldInModel, cfg FoldInConfig) (*foldInWorkload, error) {
	if err := fm.validate(); err != nil {
		return nil, err
	}
	if !cfg.Sampler.Valid() {
		return nil, cfg.Sampler.errUnknown()
	}
	cfg = cfg.withDefaults()
	w := &foldInWorkload{
		fm: fm, cfg: cfg, k: fm.K(), v: fm.V(),
		core: cfg.Sampler.ResolveFor(fm.K(), fm.V()),
	}
	if w.core != SamplerDense {
		fm.ensureSparse()
	}
	for _, a := range fm.Alpha {
		w.alphaSum += a
	}
	return w, nil
}

func (w *foldInWorkload) newScratch() *foldInScratch {
	sc := &foldInScratch{nDK: make([]int, w.k), vals: make([]float64, w.k)}
	if w.core == SamplerSparse {
		sc.docSet = linalg.NewIndexSet(w.k)
	}
	return sc
}

// doc samples one document through the workload's core. The (seed, index,
// sweeps) triple fully determines the trajectory.
func (w *foldInWorkload) doc(sc *foldInScratch, doc []int, seed int64, index uint64, sweeps int) []float64 {
	switch w.core {
	case SamplerSparse:
		return foldInDocSparse(w.fm, doc, seed, index, sweeps, sc.nDK, sc.docSet, sc.vals, w.alphaSum, w.v, &sc.ctr)
	case SamplerMH:
		return foldInDocMH(w.fm, doc, seed, index, sweeps, sc.nDK, w.alphaSum, w.v, &sc.ctr)
	default:
		return foldInDoc(w.fm, doc, seed, index, sweeps, sc.nDK, sc.vals, w.alphaSum, w.v, &sc.ctr)
	}
}

// foldInDoc runs the dense per-document sampler. nDK and probs are
// caller-owned scratch of length K; nDK is re-zeroed here before use.
func foldInDoc(fm *FoldInModel, doc []int, seed int64, di uint64, sweeps int, nDK []int, probs []float64, alphaSum float64, v int, ctr *sweepCounters) []float64 {
	k := len(nDK)
	for t := range nDK {
		nDK[t] = 0
	}
	// Keep only tokens the model can score.
	toks := make([]int, 0, len(doc))
	for _, w := range doc {
		if w >= 0 && w < v {
			toks = append(toks, w)
		}
	}
	z := make([]int, len(toks))
	ctr.tokens += int64(len(toks)) * int64(sweeps+1)

	// Initialization pass (sweep 0): sample from alpha * phi.
	rng := newStream(seed, di, 0)
	for i, w := range toks {
		total := 0.0
		for t := 0; t < k; t++ {
			p := fm.Alpha[t] * fm.PhiLike[t][w]
			probs[t] = p
			total += p
		}
		z[i] = drawIndex(&rng, probs, total)
		nDK[z[i]]++
	}

	for sweep := 1; sweep <= sweeps; sweep++ {
		rng := newStream(seed, di, uint64(sweep))
		for i, w := range toks {
			told := z[i]
			nDK[told]--
			total := 0.0
			for t := 0; t < k; t++ {
				p := (float64(nDK[t]) + fm.Alpha[t]) * fm.PhiLike[t][w]
				probs[t] = p
				total += p
			}
			z[i] = drawIndex(&rng, probs, total)
			if z[i] != told {
				ctr.changed++
			}
			nDK[z[i]]++
		}
	}

	return foldInTheta(fm, nDK, len(toks), alphaSum)
}

// foldInDocSparse runs the per-document sampler through the sparse
// decomposition: the prior part answers from the model's cached alias
// tables in O(1), the document part walks the query document's topic
// support in O(K_d). Same conditional as foldInDoc, different trajectory.
// nDK, docSet and tvals are caller-owned scratch of length K; nDK and
// docSet are reset here before use.
func foldInDocSparse(fm *FoldInModel, doc []int, seed int64, di uint64, sweeps int, nDK []int, docSet *linalg.IndexSet, tvals []float64, alphaSum float64, v int, ctr *sweepCounters) []float64 {
	k := len(nDK)
	for t := range nDK {
		nDK[t] = 0
	}
	docSet.Clear()
	toks := make([]int, 0, len(doc))
	for _, w := range doc {
		if w >= 0 && w < v {
			toks = append(toks, w)
		}
	}
	z := make([]int, len(toks))
	ctr.tokens += int64(len(toks)) * int64(sweeps+1)

	// Initialization pass (sweep 0): the conditional is exactly the prior
	// part α_k·φ_kw — a pure alias draw.
	rng := newStream(seed, di, 0)
	for i, w := range toks {
		var t int
		if fm.qMass[w] > 0 {
			t = fm.qTab[w].Draw(rng.Float64())
		} else {
			t = rng.Intn(k) // every topic scores zero: uniform fallback
		}
		z[i] = t
		nDK[t]++
		docSet.Add(t)
	}

	for sweep := 1; sweep <= sweeps; sweep++ {
		rng := newStream(seed, di, uint64(sweep))
		for i, w := range toks {
			told := z[i]
			nDK[told]--
			if nDK[told] == 0 {
				docSet.Remove(told)
			}
			nz := docSet.Indices()
			tv := tvals[:len(nz)]
			tMass := 0.0
			for j, t32 := range nz {
				t := int(t32)
				val := float64(nDK[t]) * fm.PhiLike[t][w]
				tv[j] = val
				tMass += val
			}
			qm := fm.qMass[w]
			total := tMass + qm
			var t int
			switch {
			case total <= 0:
				t = rng.Intn(k) // every topic scores zero: uniform fallback
			default:
				u := rng.Float64() * total
				switch {
				case u < tMass:
					t = int(nz[len(nz)-1])
					for j, val := range tv {
						u -= val
						if u <= 0 {
							t = int(nz[j])
							break
						}
					}
				case qm > 0:
					t = fm.qTab[w].Draw(rng.Float64())
				default:
					t = int(nz[len(nz)-1]) // rounding pushed u past tMass
				}
			}
			if t != told {
				ctr.changed++
			}
			z[i] = t
			nDK[t]++
			docSet.Add(t)
		}
	}

	return foldInTheta(fm, nDK, len(toks), alphaSum)
}

// foldInDocMH runs the per-document sampler through the MH kernel: per
// token one word proposal from the model's cached α·φ alias tables and one
// doc proposal over the document's own assignment slots + α, each accepted
// against the current conditional p(k) ∝ (n_dk + α_k)·φ_kw. Because the
// model is frozen, the word proposal is *exact* — q_w(k) ∝ α_k·φ_kw — so
// φ cancels from its acceptance ratio:
//
//	π = [(n_dt + α_t)·α_k] / [(n_dk + α_k)·α_t]
//
// leaving pure O(1) arithmetic per step (fitting-side MH pays an O(log K_w)
// stale-density lookup here). Same stationary conditional as the other
// cores, different trajectory. nDK is caller-owned scratch of length K.
func foldInDocMH(fm *FoldInModel, doc []int, seed int64, di uint64, sweeps int, nDK []int, alphaSum float64, v int, ctr *sweepCounters) []float64 {
	k := len(nDK)
	for t := range nDK {
		nDK[t] = 0
	}
	toks := make([]int, 0, len(doc))
	for _, w := range doc {
		if w >= 0 && w < v {
			toks = append(toks, w)
		}
	}
	z := make([]int, len(toks))
	ctr.tokens += int64(len(toks)) * int64(sweeps+1)

	// Initialization pass (sweep 0): the conditional is exactly the prior
	// part α_k·φ_kw — a pure alias draw, identical to the sparse init.
	rng := newStream(seed, di, 0)
	for i, w := range toks {
		var t int
		if fm.qMass[w] > 0 {
			t = fm.qTab[w].Draw(rng.Float64())
		} else {
			t = rng.Intn(k) // every topic scores zero: uniform fallback
		}
		z[i] = t
		nDK[t]++
	}

	slotMass := float64(len(toks))
	for sweep := 1; sweep <= sweeps; sweep++ {
		rng := newStream(seed, di, uint64(sweep))
		for i, w := range toks {
			kCur := z[i]
			kOld := kCur
			nDK[kCur]--

			// Word proposal. Exact (q ∝ α·φ), so φ cancels; a word whose
			// prior mass is all zero falls back to a uniform proposal, whose
			// acceptance keeps the full φ ratio.
			exact := fm.qMass[w] > 0
			var t int
			if exact {
				t = fm.qTab[w].Draw(rng.Float64())
			} else {
				t = rng.Intn(k)
			}
			if t != kCur {
				ctr.wordProp++
				var num, den float64
				if exact {
					num = (float64(nDK[t]) + fm.Alpha[t]) * fm.Alpha[kCur]
					den = (float64(nDK[kCur]) + fm.Alpha[kCur]) * fm.Alpha[t]
				} else {
					num = (float64(nDK[t]) + fm.Alpha[t]) * fm.PhiLike[t][w]
					den = (float64(nDK[kCur]) + fm.Alpha[kCur]) * fm.PhiLike[kCur][w]
				}
				if rng.Float64()*den < num {
					ctr.wordAcc++
					kCur = t
					z[i] = kCur
				}
			}

			// Doc proposal over the document's slots + α. Slot i holds the
			// incumbent, so for t ≠ kCur both the forward and the reverse
			// (destination-state) density indicators vanish — see
			// mhChunk.sampleToken for the detailed-balance argument.
			u := rng.Float64() * (slotMass + alphaSum)
			if u < slotMass {
				t = z[int(u)]
			} else {
				t = fm.alphaTab.Draw(rng.Float64())
			}
			if t != kCur {
				ctr.docProp++
				// q_d(y) ∝ n_dy + α_y is exactly the doc part of the
				// target, so the acceptance collapses to the word-
				// likelihood ratio φ_tw/φ_kw.
				if rng.Float64()*fm.PhiLike[kCur][w] < fm.PhiLike[t][w] {
					ctr.docAcc++
					kCur = t
					z[i] = kCur
				}
			}

			if kCur != kOld {
				ctr.changed++
			}
			nDK[kCur]++
		}
	}

	return foldInTheta(fm, nDK, len(toks), alphaSum)
}

// foldInTheta is the smoothed normalization both cores share.
func foldInTheta(fm *FoldInModel, nDK []int, nToks int, alphaSum float64) []float64 {
	out := make([]float64, len(nDK))
	denom := float64(nToks) + alphaSum
	for t := range nDK {
		out[t] = (float64(nDK[t]) + fm.Alpha[t]) / denom
	}
	return out
}

// drawIndex samples an index proportionally to probs (sum = total). A
// non-positive total (every topic scored zero) falls back to a uniform
// draw, consuming exactly one stream step either way so trajectories stay
// aligned.
func drawIndex(rng *stream, probs []float64, total float64) int {
	if total <= 0 {
		return rng.Intn(len(probs))
	}
	r := rng.Float64() * total
	for t, p := range probs {
		r -= p
		if r <= 0 {
			return t
		}
	}
	return len(probs) - 1
}
