package lda

import (
	"context"
	"errors"

	"lesm/internal/par"
)

// Fold-in inference: estimate document-topic distributions for unseen
// documents against a *fixed* fitted model (Griffiths & Steyvers' query
// sampling). The topic-word statistics never change during fold-in, so
// documents are fully independent of each other — the sampler
// parallelizes over documents with no shared mutable state, and every
// document's trajectory is a pure function of (Seed, doc index). This is
// the inference mode the serving daemon (internal/serve) runs per request.

// DefaultFoldInAlpha is the document prior fold-in consumers should reach
// for when the caller doesn't supply one. The *fitting* default (50/K) is
// calibrated for estimating topic-word counts over whole training
// documents; folded-in query documents are typically a handful of tokens,
// and a 50/K prior bounds their theta to near-uniform regardless of
// content. 0.1 keeps short-document estimates evidence-driven.
const DefaultFoldInAlpha = 0.1

// FoldInModel is the frozen topic side of fold-in: the per-topic word
// likelihoods and the document prior.
type FoldInModel struct {
	// PhiLike[k][w] is the fixed p(w | topic k) each token is scored
	// against. Rows must share one length V; tokens with id >= V are
	// ignored.
	PhiLike [][]float64
	// Alpha[k] is the Dirichlet document prior (uniform in practice, but
	// kept per-topic so a background topic's inflated prior survives).
	Alpha []float64
}

// NewFoldInModel freezes explicit topic-word distributions (e.g. a STROD
// model's Phi) with a uniform symmetric prior alpha (default 50/K).
func NewFoldInModel(phi [][]float64, alpha float64) *FoldInModel {
	k := len(phi)
	if alpha <= 0 {
		alpha = 50 / float64(max(k, 1))
	}
	av := make([]float64, k)
	for i := range av {
		av[i] = alpha
	}
	return &FoldInModel{PhiLike: phi, Alpha: av}
}

// FoldInModelFromCounts freezes a Gibbs model's sufficient statistics:
// PhiLike[k][w] = (nKV[k][w]+beta) / (nK[k]+V*beta), the exact smoothed
// distribution the fitting sampler would have used on its next sweep.
func FoldInModelFromCounts(nKV [][]int, nK []int, alpha, beta float64) *FoldInModel {
	k := len(nKV)
	if beta <= 0 {
		beta = 0.01
	}
	phi := make([][]float64, k)
	for t := range nKV {
		v := len(nKV[t])
		vb := float64(v) * beta
		row := make([]float64, v)
		for w, c := range nKV[t] {
			row[w] = (float64(c) + beta) / (float64(nK[t]) + vb)
		}
		phi[t] = row
	}
	return NewFoldInModel(phi, alpha)
}

// K returns the number of topics.
func (fm *FoldInModel) K() int { return len(fm.PhiLike) }

// V returns the vocabulary size (0 for an empty model).
func (fm *FoldInModel) V() int {
	if len(fm.PhiLike) == 0 {
		return 0
	}
	return len(fm.PhiLike[0])
}

// FoldInConfig parameterizes FoldIn.
type FoldInConfig struct {
	// Sweeps is the number of Gibbs sweeps per document (default 30 —
	// fold-in mixes fast because the topic side is frozen).
	Sweeps int
	// Seed keys the per-document PRNG streams: document i of the batch
	// samples from the (Seed, i, sweep) SplitMix64 stream, so results are
	// a pure function of (Seed, i, tokens) at any parallelism level.
	Seed int64
	// P bounds the worker count (0 = GOMAXPROCS).
	P int
	// Ctx cancels the batch between document chunks (nil = background).
	Ctx context.Context
}

func (c FoldInConfig) withDefaults() FoldInConfig {
	if c.Sweeps <= 0 {
		c.Sweeps = 30
	}
	return c
}

// FoldIn estimates theta[d][k] for each document against the frozen model.
// Unknown token ids (>= V) are skipped; a document with no usable token
// gets the normalized prior. Because the model is fixed, each document is
// sampled independently on the shared pool — bit-identical output at any
// cfg.P, and identical for a given (Seed, doc index, tokens) regardless of
// what else is in the batch.
func FoldIn(fm *FoldInModel, docs [][]int, cfg FoldInConfig) ([][]float64, error) {
	if fm == nil || fm.K() == 0 {
		return nil, errors.New("lda: fold-in against an empty model")
	}
	cfg = cfg.withDefaults()
	k := fm.K()
	v := fm.V()
	alphaSum := 0.0
	for _, a := range fm.Alpha {
		alphaSum += a
	}
	theta := make([][]float64, len(docs))
	err := par.For(par.Opts{P: cfg.P, Ctx: cfg.Ctx}, len(docs), func(lo, hi int) {
		nDK := make([]int, k)
		probs := make([]float64, k)
		for di := lo; di < hi; di++ {
			theta[di] = foldInDoc(fm, docs[di], cfg, uint64(di), nDK, probs, alphaSum, v)
		}
	})
	if err != nil {
		return nil, err
	}
	return theta, nil
}

// foldInDoc runs the per-document sampler. nDK and probs are caller-owned
// scratch of length K; nDK is re-zeroed here before use.
func foldInDoc(fm *FoldInModel, doc []int, cfg FoldInConfig, di uint64, nDK []int, probs []float64, alphaSum float64, v int) []float64 {
	k := len(nDK)
	for t := range nDK {
		nDK[t] = 0
	}
	// Keep only tokens the model can score.
	toks := make([]int, 0, len(doc))
	for _, w := range doc {
		if w >= 0 && w < v {
			toks = append(toks, w)
		}
	}
	z := make([]int, len(toks))

	// Initialization pass (sweep 0): sample from alpha * phi.
	rng := newStream(cfg.Seed, di, 0)
	for i, w := range toks {
		total := 0.0
		for t := 0; t < k; t++ {
			p := fm.Alpha[t] * fm.PhiLike[t][w]
			probs[t] = p
			total += p
		}
		z[i] = drawIndex(&rng, probs, total)
		nDK[z[i]]++
	}

	for sweep := 1; sweep <= cfg.Sweeps; sweep++ {
		rng := newStream(cfg.Seed, di, uint64(sweep))
		for i, w := range toks {
			nDK[z[i]]--
			total := 0.0
			for t := 0; t < k; t++ {
				p := (float64(nDK[t]) + fm.Alpha[t]) * fm.PhiLike[t][w]
				probs[t] = p
				total += p
			}
			z[i] = drawIndex(&rng, probs, total)
			nDK[z[i]]++
		}
	}

	out := make([]float64, k)
	denom := float64(len(toks)) + alphaSum
	for t := 0; t < k; t++ {
		out[t] = (float64(nDK[t]) + fm.Alpha[t]) / denom
	}
	return out
}

// drawIndex samples an index proportionally to probs (sum = total). A
// non-positive total (every topic scored zero) falls back to a uniform
// draw, consuming exactly one stream step either way so trajectories stay
// aligned.
func drawIndex(rng *stream, probs []float64, total float64) int {
	if total <= 0 {
		return rng.Intn(len(probs))
	}
	r := rng.Float64() * total
	for t, p := range probs {
		r -= p
		if r <= 0 {
			return t
		}
	}
	return len(probs) - 1
}
