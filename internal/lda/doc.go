// Package lda implements latent Dirichlet allocation with collapsed Gibbs
// sampling, the workhorse baseline of the paper's evaluations (Sections
// 4.4.2-4.4.3, Chapter 7) and the topic-inference substrate of KERT.
//
// Two variants extend the plain sampler:
//
//   - a background topic (topic index K) with an inflated document prior,
//     which absorbs corpus-wide common words — the "background LDA" used by
//     KERT (Section 4.4.3);
//   - PhraseLDA, the phrase-constrained sampler of ToPMine, where all words
//     of a mined phrase share one topic assignment.
//
// Both samplers are deterministically parallel: sweeps run as chunked
// document passes on the shared runtime (internal/par), every document
// draws from its own counter-based PRNG stream keyed by (seed, doc,
// sweep), and per-chunk count deltas merge in chunk order, so a fitted
// model is a pure function of the seed at any Config.P (see gibbs.go for
// the design and its AD-LDA-style staleness trade).
//
// Two sampling cores implement the per-token draw (Config.Sampler /
// FoldInConfig.Sampler): the default sparse core — a SparseLDA-style
// bucket decomposition with per-sweep Walker alias tables, O(K_d + 1)
// amortized per token (sparse.go) — and the classic dense O(K) core kept
// for A/B validation. Fold-in inference against a frozen model (foldin.go)
// shares the machinery and is what the serving daemon runs per request.
package lda
