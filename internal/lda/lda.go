package lda

import (
	"context"
	"fmt"
	"math"
	"time"

	"lesm/internal/obs"
	"lesm/internal/par"
)

// Sampler selects the Gibbs sampling core. Both cores honor the
// determinism contract (bit-identical models at any Config.P), but they
// consume the per-document PRNG streams differently, so they are two
// *different* deterministic trajectories with the same stationary
// behaviour.
type Sampler string

const (
	// SamplerAuto resolves per workload: SamplerDense below the topic/
	// vocabulary threshold where the decomposed cores' bookkeeping costs
	// more than the O(K) scan it avoids, SamplerMH above it. See
	// Sampler.ResolveFor.
	SamplerAuto Sampler = ""
	// SamplerSparse is the bucket-decomposed sparse core with per-sweep
	// Walker alias tables (SparseLDA / AliasLDA hybrid): O(K_d) amortized
	// per token instead of O(K). See sparse.go.
	SamplerSparse Sampler = "sparse"
	// SamplerDense is the classic O(K)-per-token collapsed sampler, kept
	// for A/B validation of the decomposed cores.
	SamplerDense Sampler = "dense"
	// SamplerMH is the Metropolis–Hastings core: alias proposals from
	// *stale* tables rebuilt every Config.AliasRefresh sweeps, with the
	// accept/reject step restoring exactness — O(1) proposals per token
	// and an amortized rebuild instead of the sparse core's per-sweep
	// O(K·V). See mh.go.
	SamplerMH Sampler = "mh"
)

// SamplerAuto's workload thresholds: below either bound the dense core's
// O(K) scan is cheap enough that the decomposed cores' bucket/proposal
// bookkeeping is pure overhead (BENCH_pr4.json measured sparse at ~0.8x
// dense on the K=6, V=10 workload, 8.4x at K=200, V=1000).
const (
	autoMinTopics = 32
	autoMinVocab  = 64
)

// ResolveFor resolves SamplerAuto for a workload of kTotal topics (content
// topics plus the background topic when present) over a v-word vocabulary:
// the dense core below the small-K/small-V threshold, the MH core above
// it. Explicit sampler names resolve to themselves. Run, RunPhrases and
// FoldIn resolve through this and record the choice on Model.Sampler (the
// CLIs log it).
func (s Sampler) ResolveFor(kTotal, v int) Sampler {
	if s != SamplerAuto {
		return s
	}
	if kTotal < autoMinTopics || v < autoMinVocab {
		return SamplerDense
	}
	return SamplerMH
}

// Valid reports whether s names a known sampling core. Consumers that
// accept a sampler name from a flag or an options struct (internal/serve,
// the CLIs) share this check so a new core only has to be registered here.
func (s Sampler) Valid() bool {
	switch s {
	case SamplerAuto, SamplerSparse, SamplerDense, SamplerMH:
		return true
	}
	return false
}

// errUnknown is the shared rejection message for unknown sampler names.
func (s Sampler) errUnknown() error {
	return fmt.Errorf("lda: unknown sampler %q (want %q, %q or %q)", s, SamplerSparse, SamplerDense, SamplerMH)
}

// Config parameterizes a Gibbs run.
type Config struct {
	// K is the number of content topics.
	K int
	// Alpha and Beta are the Dirichlet hyperparameters (defaults 50/K and
	// 0.01, the conventional settings).
	Alpha, Beta float64
	// Iters is the number of Gibbs sweeps (default 200).
	Iters int
	// Seed drives the sampler's randomness. Every document draws from its
	// own counter-based PRNG stream keyed by (Seed, doc, sweep), so the
	// trajectory is a pure function of Seed at any parallelism level.
	Seed int64
	// Background adds one extra shared topic with prior Alpha*BGWeight that
	// soaks up topic-independent words.
	Background bool
	// BGWeight inflates the background topic's document prior (default 3).
	BGWeight float64
	// P bounds the worker count of the parallel sweeps (0 = GOMAXPROCS).
	// Models are bit-identical at any P.
	P int
	// Sampler selects the sampling core: SamplerSparse (bucket+alias),
	// SamplerMH (Metropolis–Hastings alias proposals with amortized
	// rebuilds) or SamplerDense (classic O(K) per token). SamplerAuto
	// picks per workload — see Sampler.ResolveFor. All cores are
	// deterministic at any P; each follows its own trajectory.
	Sampler Sampler
	// AliasRefresh is the MH core's alias-table rebuild cadence in sweeps
	// (0 = DefaultAliasRefresh; negative is a validation error): the
	// word-proposal tables rebuild from the global counts every
	// AliasRefresh sweeps, double-buffered so sweeps never block on the
	// build. Larger values amortize the O(K·V) rebuild further at the
	// price of staler proposals (lower acceptance, never bias). Other
	// cores ignore it.
	AliasRefresh int
	// Ctx cancels sampling between work chunks (nil = background); a
	// cancelled run returns the context error and no model.
	Ctx context.Context
	// Rec, when non-nil, receives one obs.SweepStats per sweep (and
	// pool telemetry via par.Opts.Obs). Recording is observational
	// only: models are bit-identical with Rec set or nil at any P, and
	// the nil path is allocation-free.
	Rec obs.Recorder
	// ProbeEvery enables the read-only convergence probe: every
	// ProbeEvery-th sweep (and the last) computes the corpus
	// log-likelihood under the current point estimates and attaches it
	// to that sweep's record. 0 disables; requires Rec. The probe only
	// reads merged counts, so it cannot perturb the trajectory.
	ProbeEvery int
	// CheckpointEvery delivers a checkpoint to CheckpointFunc at every
	// CheckpointEvery-th sweep boundary. 0 means no periodic checkpoints
	// (a Stop request still produces a final one when CheckpointFunc is
	// set); negative, or nonzero without CheckpointFunc, is a validation
	// error.
	CheckpointEvery int
	// CheckpointFunc, when non-nil, receives self-contained checkpoints
	// (deep copies — they may be persisted or inspected from other
	// goroutines) at sweep boundaries: every CheckpointEvery sweeps and
	// once more when Stop requests a halt. It runs on the fitting
	// goroutine between sweeps, so it cannot observe torn state; a
	// returned error aborts the fit with that error. Checkpointing is
	// observational: models are bit-identical with or without it.
	CheckpointFunc func(*Checkpoint) error
	// Stop, when non-nil, is polled at every sweep boundary; returning
	// true halts the fit with ErrStopped after delivering a final
	// checkpoint to CheckpointFunc (when set). Unlike Ctx cancellation —
	// which can abort mid-sweep and therefore cannot leave resumable
	// state — Stop always halts at a clean boundary.
	Stop func() bool
	// Resume, when non-nil, restores a fit from a checkpoint instead of
	// initializing: counts and alias state are rebuilt from the
	// checkpoint and sweeps continue at Sweep+1, reproducing the
	// uninterrupted run's remaining trajectory bit-identically at any P.
	// The checkpoint's fingerprint must match this run's config and
	// corpus exactly; a mismatch is an error.
	Resume *Checkpoint
}

func (c Config) parOpts() par.Opts {
	o := par.Opts{P: c.P, Ctx: c.Ctx}
	if c.Rec != nil {
		o.Obs = c.Rec
	}
	return o
}

// validate rejects configurations that would otherwise panic deep inside
// the sampler (K <= 0 divides by zero in withDefaults, an empty vocabulary
// indexes out of range, negative priors produce negative probabilities).
// Called on the raw config, before defaulting fills zero fields.
func (c Config) validate(v int) error {
	if c.K <= 0 {
		return fmt.Errorf("lda: Config.K = %d, need at least 1 topic", c.K)
	}
	if v <= 0 {
		return fmt.Errorf("lda: vocabulary size %d, need at least 1", v)
	}
	// NaN compares false against everything, so "< 0" alone would wave a
	// NaN prior through into every per-token probability.
	if c.Alpha < 0 || math.IsNaN(c.Alpha) {
		return fmt.Errorf("lda: Config.Alpha = %v, need >= 0 (0 = default 50/K)", c.Alpha)
	}
	if c.Beta < 0 || math.IsNaN(c.Beta) {
		return fmt.Errorf("lda: Config.Beta = %v, need >= 0 (0 = default 0.01)", c.Beta)
	}
	if c.Iters < 0 {
		return fmt.Errorf("lda: Config.Iters = %d, need >= 0 (0 = default 200)", c.Iters)
	}
	if c.BGWeight < 0 || math.IsNaN(c.BGWeight) {
		return fmt.Errorf("lda: Config.BGWeight = %v, need >= 0 (0 = default 3)", c.BGWeight)
	}
	if !c.Sampler.Valid() {
		return c.Sampler.errUnknown()
	}
	if c.AliasRefresh < 0 {
		return fmt.Errorf("lda: Config.AliasRefresh = %d, need >= 0 (0 = default %d)", c.AliasRefresh, DefaultAliasRefresh)
	}
	if c.ProbeEvery < 0 {
		return fmt.Errorf("lda: Config.ProbeEvery = %d, need >= 0 (0 = no probe)", c.ProbeEvery)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("lda: Config.CheckpointEvery = %d, need >= 0 (0 = stop-triggered checkpoints only)", c.CheckpointEvery)
	}
	if c.CheckpointEvery > 0 && c.CheckpointFunc == nil {
		return fmt.Errorf("lda: Config.CheckpointEvery = %d without Config.CheckpointFunc", c.CheckpointEvery)
	}
	return nil
}

// validateTokens rejects word ids outside [0, v) up front: the count
// tables are sized by v, and an out-of-range id would panic mid-sweep.
func validateTokens(docs [][]int, v int) error {
	for di, doc := range docs {
		for i, w := range doc {
			if w < 0 || w >= v {
				return fmt.Errorf("lda: doc %d token %d: word id %d outside vocabulary [0, %d)", di, i, w, v)
			}
		}
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 50 / float64(c.K)
	}
	if c.Beta == 0 {
		c.Beta = 0.01
	}
	if c.Iters == 0 {
		c.Iters = 200
	}
	if c.BGWeight == 0 {
		c.BGWeight = 3
	}
	if c.AliasRefresh == 0 {
		c.AliasRefresh = DefaultAliasRefresh
	}
	return c
}

// Model is the posterior summary of a Gibbs run. If the run used a
// background topic it is the last row of Phi (index K).
type Model struct {
	K, V int
	// Phi[k][v] is the topic-word distribution (including the background
	// topic as row K when present).
	Phi [][]float64
	// Theta[d][k] is the document-topic distribution.
	Theta [][]float64
	// Rho[k] is the corpus-wide fraction of tokens assigned to topic k.
	Rho []float64
	// Z[d][i] is the final topic assignment of token i in document d.
	Z [][]int
	// PhraseZ[d][p] is the per-phrase topic assignment when the model was
	// fit with RunPhrases; nil otherwise.
	PhraseZ [][]int
	// Background reports whether row K of Phi is a background topic.
	Background bool
	// NKV[k][v] and NK[k] are the final topic-word and topic-total token
	// counts — the sufficient statistics fold-in inference (FoldIn) and
	// incremental refitting need. Phi is their smoothed normalization:
	// Phi[k][v] = (NKV[k][v]+Beta) / (NK[k]+V*Beta).
	NKV [][]int
	NK  []int
	// Alpha and Beta echo the fit's effective hyperparameters so a
	// persisted model can be folded into with the same smoothing.
	Alpha, Beta float64
	// Sampler is the core the fit actually ran — the resolved value of
	// Config.Sampler (SamplerAuto resolves per workload; see
	// Sampler.ResolveFor).
	Sampler Sampler
	// AliasRebuilds counts the word-proposal alias-table builds the fit
	// performed: Iters for the sparse core (one per sweep), 1 +
	// ⌊(Iters−1)/AliasRefresh⌋ for the MH core (amortized), 0 for dense.
	AliasRebuilds int
}

// Run fits LDA to id-encoded documents over a vocabulary of size V.
//
// Sweeps execute as chunked passes over the documents on the shared
// parallel runtime: every document samples from its own (Seed, doc, sweep)
// PRNG stream against the sweep-start counts plus its chunk's running
// delta, and chunk deltas merge in chunk order afterwards (see gibbsPass).
// The fitted model is therefore bit-identical at any Config.P. Run returns
// an error when the config or a token id is invalid, or when Config.Ctx is
// cancelled.
func Run(docs [][]int, v int, cfg Config) (*Model, error) {
	if err := cfg.validate(v); err != nil {
		return nil, err
	}
	if err := validateTokens(docs, v); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	o := cfg.parOpts()
	kTotal := cfg.K
	if cfg.Background {
		kTotal++
	}
	d := len(docs)
	nDK := make([][]int, d)
	nKV := make([][]int, kTotal)
	nK := make([]int, kTotal)
	for k := range nKV {
		nKV[k] = make([]int, v)
	}
	z := make([][]int, d)
	alpha := alphaVec(cfg, kTotal)
	sc := newSweepScratch(samplerChunks(d, kTotal, v), kTotal, v)
	core := cfg.Sampler.ResolveFor(kTotal, v)

	// The fingerprint binds checkpoints to this exact fit; computing it
	// (one corpus hash) is skipped entirely when the run neither
	// checkpoints, stops, nor resumes.
	var fp Fingerprint
	if cfg.CheckpointFunc != nil || cfg.Stop != nil || cfg.Resume != nil {
		fp = newFingerprint("lda", core, cfg, v, d, countTokens(docs), hashTokenDocs(docs))
	}

	// start is the number of already-completed sweeps: 0 for a fresh fit
	// (whose state comes from the init pass below), the checkpoint's
	// sweep on resume (whose state is replayed from the stored Z).
	start := 0
	if cp := cfg.Resume; cp != nil {
		docLens := make([]int, d)
		for di, doc := range docs {
			docLens[di] = len(doc)
		}
		if err := cp.check(fp, kTotal, docLens); err != nil {
			return nil, err
		}
		restoreCounts(cp, kTotal, nDK, nKV, nK, z,
			func(int, int) int { return 1 },
			func(di, slot, _ int) int { return docs[di][slot] })
		start = cp.Sweep
	} else {
		// Initialization pass (uniform assignments), shared by all cores
		// so an A/B comparison starts from the same state.
		err := gibbsPass(o, cfg.Seed, 0, d, sc, nKV, nK, nil, nil,
			func(_, di int, rng *stream, dl *delta, _ []float64) {
				doc := docs[di]
				nDK[di] = make([]int, kTotal)
				z[di] = make([]int, len(doc))
				for i, w := range doc {
					k := rng.Intn(kTotal)
					z[di][i] = k
					nDK[di][k]++
					dl.add(k, w, 1)
				}
			})
		if err != nil {
			return nil, err
		}
	}

	// The recorder attaches after the init pass so sweep 1's timings
	// cover sweep 1 only; nil (the common case) makes every endSweep a
	// no-op and keeps gibbsPass untimed.
	rr := newRunRecorder(cfg, "lda", d, countTokens(docs), sc,
		tokenProbe(docs, alpha, cfg.Beta, v, nDK, nKV, nK))
	ck := newCkptState(cfg, fp, z)

	var err error
	rebuilds := 0
	switch core {
	case SamplerSparse:
		err = runSparse(o, cfg, docs, v, d, start, sc, alpha, nDK, nKV, nK, z, rr, ck)
		if d > 0 {
			// One rebuild per sweep over the whole trajectory — resumed
			// runs report the uninterrupted fit's figure, not the sweeps
			// they themselves executed, so the models stay bit-identical.
			rebuilds = cfg.Iters
		}
	case SamplerMH:
		rebuilds, err = runMH(o, cfg, docs, v, d, start, sc, alpha, nDK, nKV, nK, z, rr, ck)
	default:
		err = runDense(o, cfg, docs, v, d, kTotal, start, sc, alpha, nDK, nKV, nK, z, rr, ck)
	}
	if err != nil {
		return nil, err
	}
	m := summarize(docs, v, kTotal, cfg, nDK, nKV, nK, z)
	m.Sampler, m.AliasRebuilds = core, rebuilds
	return m, nil
}

// runDense is the classic collapsed sampler: every token scores all kTotal
// topics (O(K) per token) against global + own-chunk delta counts.
func runDense(o par.Opts, cfg Config, docs [][]int, v, d, kTotal, start int, sc *sweepScratch,
	alpha []float64, nDK [][]int, nKV [][]int, nK []int, z [][]int, rr *runRecorder, ck *ckptState) error {
	vb := float64(v) * cfg.Beta
	for it := start; it < cfg.Iters; it++ {
		err := gibbsPass(o, cfg.Seed, uint64(it+1), d, sc, nKV, nK, nil, nil,
			func(_, di int, rng *stream, dl *delta, probs []float64) {
				doc := docs[di]
				for i, w := range doc {
					kOld := z[di][i]
					k := kOld
					nDK[di][k]--
					dl.add(k, w, -1)
					total := 0.0
					for kk := 0; kk < kTotal; kk++ {
						p := (float64(nDK[di][kk]) + alpha[kk]) *
							(float64(nKV[kk][w]+dl.kv[kk][w]) + cfg.Beta) /
							(float64(nK[kk]+dl.k[kk]) + vb)
						probs[kk] = p
						total += p
					}
					r := rng.Float64() * total
					k = kTotal - 1
					for kk := 0; kk < kTotal; kk++ {
						r -= probs[kk]
						if r <= 0 {
							k = kk
							break
						}
					}
					if k != kOld {
						dl.ctr.changed++
					}
					z[di][i] = k
					nDK[di][k]++
					dl.add(k, w, 1)
				}
			})
		if err != nil {
			return err
		}
		if err := rr.endSweep(o, it+1, 0, 0); err != nil {
			return err
		}
		if err := ck.boundary(it + 1); err != nil {
			return err
		}
	}
	return nil
}

// runSparse is the bucket+alias core (sparse.go): per sweep, the q-bucket
// alias tables rebuild from the frozen globals, then every chunk samples
// its documents through the incremental bucket state at O(K_d) amortized
// per token.
func runSparse(o par.Opts, cfg Config, docs [][]int, v, d, start int, sc *sweepScratch,
	alpha []float64, nDK [][]int, nKV [][]int, nK []int, z [][]int, rr *runRecorder, ck *ckptState) error {
	if d == 0 {
		// Every pass is a no-op; skip the per-sweep O(K·V) alias rebuilds.
		return o.Err()
	}
	qa := newQAlias(v)
	sc.enableSparse(alpha, cfg.Beta, v, nKV, nK, qa)
	// On resume the cumulative rebuild totals below count from the
	// trajectory's start; prime the recorder so the first resumed sweep
	// is not charged with the skipped sweeps' rebuilds.
	rr.prime(start, 0)
	var rebuildT time.Duration
	for it := start; it < cfg.Iters; it++ {
		var t0 time.Time
		if rr != nil {
			t0 = time.Now()
		}
		if err := qa.rebuild(o, alpha, cfg.Beta, nKV, nK); err != nil {
			return err
		}
		if rr != nil {
			rebuildT += time.Since(t0)
		}
		err := gibbsPass(o, cfg.Seed, uint64(it+1), d, sc, nKV, nK,
			func(c int) { sc.sparse[c].beginPass() }, nil,
			func(c, di int, rng *stream, _ *delta, _ []float64) {
				ch := sc.sparse[c]
				ch.beginDoc(nDK[di])
				doc := docs[di]
				zd := z[di]
				for i, w := range doc {
					kOld := zd[i]
					ch.adjust(kOld, w, -1)
					k := ch.sampleToken(w, rng)
					if k != kOld {
						ch.dl.ctr.changed++
					}
					zd[i] = k
					ch.adjust(k, w, 1)
				}
			})
		if err != nil {
			return err
		}
		if err := rr.endSweep(o, it+1, it+1, rebuildT); err != nil {
			return err
		}
		if err := ck.boundary(it + 1); err != nil {
			return err
		}
	}
	return nil
}

func summarize(docs [][]int, v, kTotal int, cfg Config, nDK [][]int, nKV [][]int, nK []int, z [][]int) *Model {
	m := &Model{K: cfg.K, V: v, Background: cfg.Background, Z: z,
		NKV: nKV, NK: nK, Alpha: cfg.Alpha, Beta: cfg.Beta}
	vb := float64(v) * cfg.Beta
	m.Phi = make([][]float64, kTotal)
	for k := 0; k < kTotal; k++ {
		m.Phi[k] = make([]float64, v)
		for w := 0; w < v; w++ {
			m.Phi[k][w] = (float64(nKV[k][w]) + cfg.Beta) / (float64(nK[k]) + vb)
		}
	}
	m.Theta = make([][]float64, len(docs))
	for di, doc := range docs {
		m.Theta[di] = make([]float64, kTotal)
		denom := float64(len(doc))
		var asum float64
		for k := 0; k < kTotal; k++ {
			if cfg.Background && k == cfg.K {
				asum += cfg.Alpha * cfg.BGWeight
			} else {
				asum += cfg.Alpha
			}
		}
		for k := 0; k < kTotal; k++ {
			a := cfg.Alpha
			if cfg.Background && k == cfg.K {
				a = cfg.Alpha * cfg.BGWeight
			}
			m.Theta[di][k] = (float64(nDK[di][k]) + a) / (denom + asum)
		}
	}
	m.Rho = make([]float64, kTotal)
	total := 0
	for _, n := range nK {
		total += n
	}
	for k, n := range nK {
		if total > 0 {
			m.Rho[k] = float64(n) / float64(total)
		} else {
			m.Rho[k] = 1 / float64(kTotal)
		}
	}
	return m
}

// TopWords returns the k highest-probability word ids of topic t.
func (m *Model) TopWords(t, k int) []int {
	type wp struct {
		w int
		p float64
	}
	ws := make([]wp, m.V)
	for w := 0; w < m.V; w++ {
		ws[w] = wp{w, m.Phi[t][w]}
	}
	// partial selection sort: k is small
	if k > m.V {
		k = m.V
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < m.V; j++ {
			if ws[j].p > ws[best].p {
				best = j
			}
		}
		ws[i], ws[best] = ws[best], ws[i]
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ws[i].w
	}
	return out
}
