// Package lda implements latent Dirichlet allocation with collapsed Gibbs
// sampling, the workhorse baseline of the paper's evaluations (Sections
// 4.4.2-4.4.3, Chapter 7) and the topic-inference substrate of KERT.
//
// Two variants extend the plain sampler:
//
//   - a background topic (topic index K) with an inflated document prior,
//     which absorbs corpus-wide common words — the "background LDA" used by
//     KERT (Section 4.4.3);
//   - PhraseLDA, the phrase-constrained sampler of ToPMine, where all words
//     of a mined phrase share one topic assignment.
package lda

import "math/rand"

// Config parameterizes a Gibbs run.
type Config struct {
	// K is the number of content topics.
	K int
	// Alpha and Beta are the Dirichlet hyperparameters (defaults 50/K and
	// 0.01, the conventional settings).
	Alpha, Beta float64
	// Iters is the number of Gibbs sweeps (default 200).
	Iters int
	// Seed drives the sampler's randomness.
	Seed int64
	// Background adds one extra shared topic with prior Alpha*BGWeight that
	// soaks up topic-independent words.
	Background bool
	// BGWeight inflates the background topic's document prior (default 3).
	BGWeight float64
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 50 / float64(c.K)
	}
	if c.Beta == 0 {
		c.Beta = 0.01
	}
	if c.Iters == 0 {
		c.Iters = 200
	}
	if c.BGWeight == 0 {
		c.BGWeight = 3
	}
	return c
}

// Model is the posterior summary of a Gibbs run. If the run used a
// background topic it is the last row of Phi (index K).
type Model struct {
	K, V int
	// Phi[k][v] is the topic-word distribution (including the background
	// topic as row K when present).
	Phi [][]float64
	// Theta[d][k] is the document-topic distribution.
	Theta [][]float64
	// Rho[k] is the corpus-wide fraction of tokens assigned to topic k.
	Rho []float64
	// Z[d][i] is the final topic assignment of token i in document d.
	Z [][]int
	// PhraseZ[d][p] is the per-phrase topic assignment when the model was
	// fit with RunPhrases; nil otherwise.
	PhraseZ [][]int
	// Background reports whether row K of Phi is a background topic.
	Background bool
}

// Run fits LDA to id-encoded documents over a vocabulary of size V.
func Run(docs [][]int, v int, cfg Config) *Model {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	kTotal := cfg.K
	if cfg.Background {
		kTotal++
	}
	d := len(docs)
	nDK := make([][]int, d)
	nKV := make([][]int, kTotal)
	nK := make([]int, kTotal)
	for k := range nKV {
		nKV[k] = make([]int, v)
	}
	z := make([][]int, d)
	alpha := make([]float64, kTotal)
	for k := 0; k < cfg.K; k++ {
		alpha[k] = cfg.Alpha
	}
	if cfg.Background {
		alpha[cfg.K] = cfg.Alpha * cfg.BGWeight
	}

	for di, doc := range docs {
		nDK[di] = make([]int, kTotal)
		z[di] = make([]int, len(doc))
		for i, w := range doc {
			k := rng.Intn(kTotal)
			z[di][i] = k
			nDK[di][k]++
			nKV[k][w]++
			nK[k]++
		}
	}

	probs := make([]float64, kTotal)
	vb := float64(v) * cfg.Beta
	for it := 0; it < cfg.Iters; it++ {
		for di, doc := range docs {
			for i, w := range doc {
				k := z[di][i]
				nDK[di][k]--
				nKV[k][w]--
				nK[k]--
				total := 0.0
				for kk := 0; kk < kTotal; kk++ {
					p := (float64(nDK[di][kk]) + alpha[kk]) *
						(float64(nKV[kk][w]) + cfg.Beta) / (float64(nK[kk]) + vb)
					probs[kk] = p
					total += p
				}
				r := rng.Float64() * total
				k = kTotal - 1
				for kk := 0; kk < kTotal; kk++ {
					r -= probs[kk]
					if r <= 0 {
						k = kk
						break
					}
				}
				z[di][i] = k
				nDK[di][k]++
				nKV[k][w]++
				nK[k]++
			}
		}
	}
	return summarize(docs, v, kTotal, cfg, nDK, nKV, nK, z)
}

func summarize(docs [][]int, v, kTotal int, cfg Config, nDK [][]int, nKV [][]int, nK []int, z [][]int) *Model {
	m := &Model{K: cfg.K, V: v, Background: cfg.Background, Z: z}
	vb := float64(v) * cfg.Beta
	m.Phi = make([][]float64, kTotal)
	for k := 0; k < kTotal; k++ {
		m.Phi[k] = make([]float64, v)
		for w := 0; w < v; w++ {
			m.Phi[k][w] = (float64(nKV[k][w]) + cfg.Beta) / (float64(nK[k]) + vb)
		}
	}
	m.Theta = make([][]float64, len(docs))
	for di, doc := range docs {
		m.Theta[di] = make([]float64, kTotal)
		denom := float64(len(doc))
		var asum float64
		for k := 0; k < kTotal; k++ {
			if cfg.Background && k == cfg.K {
				asum += cfg.Alpha * cfg.BGWeight
			} else {
				asum += cfg.Alpha
			}
		}
		for k := 0; k < kTotal; k++ {
			a := cfg.Alpha
			if cfg.Background && k == cfg.K {
				a = cfg.Alpha * cfg.BGWeight
			}
			m.Theta[di][k] = (float64(nDK[di][k]) + a) / (denom + asum)
		}
	}
	m.Rho = make([]float64, kTotal)
	total := 0
	for _, n := range nK {
		total += n
	}
	for k, n := range nK {
		if total > 0 {
			m.Rho[k] = float64(n) / float64(total)
		} else {
			m.Rho[k] = 1 / float64(kTotal)
		}
	}
	return m
}

// TopWords returns the k highest-probability word ids of topic t.
func (m *Model) TopWords(t, k int) []int {
	type wp struct {
		w int
		p float64
	}
	ws := make([]wp, m.V)
	for w := 0; w < m.V; w++ {
		ws[w] = wp{w, m.Phi[t][w]}
	}
	// partial selection sort: k is small
	if k > m.V {
		k = m.V
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < m.V; j++ {
			if ws[j].p > ws[best].p {
				best = j
			}
		}
		ws[i], ws[best] = ws[best], ws[i]
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ws[i].w
	}
	return out
}
