// Package hin implements the paper's data model (Definition 1): the
// text-attached heterogeneous information network, and the collapsed
// edge-weighted network derived from it (Example 3.1) that CATHYHIN analyzes.
//
// A network holds m node types; links are stored per unordered type pair
// with float weights. Documents contribute term-term co-occurrence links;
// entities attached to a document are linked to the document's words and to
// each other.
package hin
