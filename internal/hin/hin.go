package hin

import (
	"fmt"
	"sort"

	"lesm/internal/core"
)

// Link is a weighted link between node I of the pair's first type and node J
// of the pair's second type.
type Link struct {
	I, J int
	W    float64
}

// TypePair identifies an unordered node-type pair (X <= Y).
type TypePair struct {
	X, Y core.TypeID
}

// Pair returns the canonical (ordered) TypePair for x, y.
func Pair(x, y core.TypeID) TypePair {
	if x > y {
		x, y = y, x
	}
	return TypePair{x, y}
}

// Network is an edge-weighted network with typed nodes (G^t in Section 3.2).
// Links of an unordered type pair are stored once; algorithms that need both
// directions (the generative model duplicates undirected links) iterate each
// stored link twice.
type Network struct {
	// TypeNames[x] names node type x; index 0 is "term" by convention.
	TypeNames []string
	// NumNodes[x] is the number of type-x nodes.
	NumNodes []int
	// Names[x][i] optionally holds the display name for node i of type x;
	// Names[x] may be nil if the caller resolves names externally.
	Names [][]string
	// Links maps a canonical type pair to its weighted links. For same-type
	// pairs (X == Y) each unordered node pair appears at most once with
	// I <= J.
	Links map[TypePair][]Link
}

// NewNetwork creates an empty network with the given type names and node
// counts per type.
func NewNetwork(typeNames []string, numNodes []int) *Network {
	if len(typeNames) != len(numNodes) {
		panic("hin: typeNames and numNodes length mismatch")
	}
	return &Network{
		TypeNames: append([]string(nil), typeNames...),
		NumNodes:  append([]int(nil), numNodes...),
		Names:     make([][]string, len(typeNames)),
		Links:     map[TypePair][]Link{},
	}
}

// NumTypes returns the number of node types.
func (n *Network) NumTypes() int { return len(n.TypeNames) }

// SortedPairs returns the network's type pairs in (X, Y) order. Iterating
// pairs through it instead of ranging over the Links map keeps
// floating-point accumulations bit-reproducible across runs (map order
// varies per process, and fractional child-network weights make the sums
// order sensitive).
func (n *Network) SortedPairs() []TypePair {
	ps := make([]TypePair, 0, len(n.Links))
	for p := range n.Links {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].X != ps[b].X {
			return ps[a].X < ps[b].X
		}
		return ps[a].Y < ps[b].Y
	})
	return ps
}

// TotalWeight returns M^t, the total link weight (each stored link counted
// once).
func (n *Network) TotalWeight() float64 {
	s := 0.0
	for _, p := range n.SortedPairs() {
		for _, l := range n.Links[p] {
			s += l.W
		}
	}
	return s
}

// TotalLinks returns the number of stored (non-zero) links.
func (n *Network) TotalLinks() int {
	c := 0
	for _, ls := range n.Links {
		c += len(ls)
	}
	return c
}

// PairWeight returns M^t_{x,y}, the total link weight of a type pair.
func (n *Network) PairWeight(p TypePair) float64 {
	s := 0.0
	for _, l := range n.Links[p] {
		s += l.W
	}
	return s
}

// SortLinks orders every link list deterministically (by I then J); builders
// that accumulate via maps call this to make downstream iteration stable.
func (n *Network) SortLinks() {
	for p := range n.Links {
		ls := n.Links[p]
		sort.Slice(ls, func(a, b int) bool {
			if ls[a].I != ls[b].I {
				return ls[a].I < ls[b].I
			}
			return ls[a].J < ls[b].J
		})
	}
}

// Stats describes the network shape (Table 3.4): node counts per type and
// link weights per type pair.
type Stats struct {
	Nodes map[string]int
	Links map[string]float64
}

// Stats summarizes node counts and per-pair total link weights with readable
// keys such as "term-author".
func (n *Network) Stats() Stats {
	st := Stats{Nodes: map[string]int{}, Links: map[string]float64{}}
	for x, name := range n.TypeNames {
		st.Nodes[name] = n.NumNodes[x]
	}
	for p := range n.Links {
		key := fmt.Sprintf("%s-%s", n.TypeNames[p.X], n.TypeNames[p.Y])
		st.Links[key] = n.PairWeight(p)
	}
	return st
}

// DocRecord is one document of a text-attached heterogeneous network: its
// term ids plus the entity ids attached per non-term type.
type DocRecord struct {
	Tokens   []int
	Entities map[core.TypeID][]int
}

// BuildOptions control collapsed-network construction.
type BuildOptions struct {
	// Window bounds term-term co-occurrence distance within a document;
	// 0 means the whole document co-occurs (the paper's setting for titles).
	Window int
	// SkipPairs lists type pairs to omit (e.g. venue-venue in DBLP, where a
	// paper has exactly one venue so no such link can form anyway).
	SkipPairs []TypePair
}

// BuildCollapsed converts documents with attached entities into the collapsed
// edge-weighted network of Example 3.1: term-term co-occurrence links plus
// entity-term and entity-entity co-occurrence links, with link weight equal
// to the number of co-occurrences.
func BuildCollapsed(typeNames []string, numNodes []int, docs []DocRecord, opts BuildOptions) *Network {
	n := NewNetwork(typeNames, numNodes)
	skip := map[TypePair]bool{}
	for _, p := range opts.SkipPairs {
		skip[Pair(p.X, p.Y)] = true
	}
	acc := map[TypePair]map[[2]int]float64{}
	add := func(x core.TypeID, i int, y core.TypeID, j int, w float64) {
		p := Pair(x, y)
		if skip[p] {
			return
		}
		// Canonicalize node order to match the pair orientation.
		if x > y || (x == y && i > j) {
			i, j = j, i
		}
		m := acc[p]
		if m == nil {
			m = map[[2]int]float64{}
			acc[p] = m
		}
		m[[2]int{i, j}] += w
	}
	for _, d := range docs {
		// Term-term co-occurrences.
		for a := 0; a < len(d.Tokens); a++ {
			hi := len(d.Tokens)
			if opts.Window > 0 && a+opts.Window+1 < hi {
				hi = a + opts.Window + 1
			}
			for b := a + 1; b < hi; b++ {
				if d.Tokens[a] == d.Tokens[b] {
					continue
				}
				add(core.TermType, d.Tokens[a], core.TermType, d.Tokens[b], 1)
			}
		}
		// Entity-term links: an attached entity links to every token.
		for x, ents := range d.Entities {
			for _, e := range ents {
				for _, tok := range d.Tokens {
					add(x, e, core.TermType, tok, 1)
				}
			}
		}
		// Entity-entity links within and across entity types.
		types := make([]core.TypeID, 0, len(d.Entities))
		for x := range d.Entities {
			types = append(types, x)
		}
		sort.Slice(types, func(a, b int) bool { return types[a] < types[b] })
		for ai, x := range types {
			for _, y := range types[ai:] {
				ex, ey := d.Entities[x], d.Entities[y]
				if x == y {
					for u := 0; u < len(ex); u++ {
						for v := u + 1; v < len(ex); v++ {
							if ex[u] == ex[v] {
								continue
							}
							add(x, ex[u], x, ex[v], 1)
						}
					}
				} else {
					for _, u := range ex {
						for _, v := range ey {
							add(x, u, y, v, 1)
						}
					}
				}
			}
		}
	}
	for p, m := range acc {
		ls := make([]Link, 0, len(m))
		for key, w := range m {
			ls = append(ls, Link{I: key[0], J: key[1], W: w})
		}
		n.Links[p] = ls
	}
	n.SortLinks()
	return n
}

// TermNetwork builds the homogeneous term co-occurrence network of Section
// 3.1 from a plain corpus of token-id documents.
func TermNetwork(numTerms int, docs [][]int, window int) *Network {
	recs := make([]DocRecord, len(docs))
	for i, d := range docs {
		recs[i] = DocRecord{Tokens: d}
	}
	return BuildCollapsed([]string{"term"}, []int{numTerms}, recs, BuildOptions{Window: window})
}
