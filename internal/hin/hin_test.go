package hin

import (
	"testing"

	"lesm/internal/core"
)

func TestPairCanonical(t *testing.T) {
	if Pair(2, 1) != (TypePair{1, 2}) {
		t.Fatalf("Pair(2,1) = %v", Pair(2, 1))
	}
	if Pair(0, 0) != (TypePair{0, 0}) {
		t.Fatalf("Pair(0,0) = %v", Pair(0, 0))
	}
}

func simpleDocs() []DocRecord {
	// Two docs. Types: 0 term, 1 author, 2 venue.
	return []DocRecord{
		{Tokens: []int{0, 1}, Entities: map[core.TypeID][]int{1: {0, 1}, 2: {0}}},
		{Tokens: []int{1, 2}, Entities: map[core.TypeID][]int{1: {1}, 2: {0}}},
	}
}

func TestBuildCollapsedWeights(t *testing.T) {
	n := BuildCollapsed([]string{"term", "author", "venue"}, []int{3, 2, 1}, simpleDocs(),
		BuildOptions{SkipPairs: []TypePair{{2, 2}}})

	tt := n.Links[Pair(0, 0)]
	if len(tt) != 2 {
		t.Fatalf("term-term links = %v", tt)
	}
	// author-term: author 1 appears in both docs -> links to tokens 0,1 and 1,2.
	at := map[[2]int]float64{}
	for _, l := range n.Links[Pair(0, 1)] {
		at[[2]int{l.I, l.J}] = l.W
	}
	// Pair(0,1) = {term, author}: orientation X=0 so I is term, J is author.
	if at[[2]int{1, 1}] != 2 {
		t.Fatalf("author1-term1 weight = %v, want 2 (both docs)", at[[2]int{1, 1}])
	}
	// author-author co-occurrence only in doc 0.
	aa := n.Links[Pair(1, 1)]
	if len(aa) != 1 || aa[0].W != 1 || aa[0].I != 0 || aa[0].J != 1 {
		t.Fatalf("author-author = %v", aa)
	}
	// author-venue: (a0,v0) once, (a1,v0) twice.
	av := map[[2]int]float64{}
	for _, l := range n.Links[Pair(1, 2)] {
		av[[2]int{l.I, l.J}] = l.W
	}
	if av[[2]int{0, 0}] != 1 || av[[2]int{1, 0}] != 2 {
		t.Fatalf("author-venue = %v", av)
	}
	// venue-venue skipped.
	if len(n.Links[Pair(2, 2)]) != 0 {
		t.Fatal("venue-venue should be skipped")
	}
}

func TestBuildCollapsedNoDuplicateTermPairs(t *testing.T) {
	// Repeated token must not create a self link.
	docs := []DocRecord{{Tokens: []int{0, 0, 1}}}
	n := BuildCollapsed([]string{"term"}, []int{2}, docs, BuildOptions{})
	ls := n.Links[Pair(0, 0)]
	if len(ls) != 1 || ls[0].I != 0 || ls[0].J != 1 || ls[0].W != 2 {
		t.Fatalf("links = %v, want single (0,1) with weight 2", ls)
	}
}

func TestWindowLimitsCooccurrence(t *testing.T) {
	docs := []DocRecord{{Tokens: []int{0, 1, 2, 3}}}
	n := BuildCollapsed([]string{"term"}, []int{4}, docs, BuildOptions{Window: 1})
	ls := n.Links[Pair(0, 0)]
	if len(ls) != 3 {
		t.Fatalf("window=1 should give 3 adjacent links, got %v", ls)
	}
}

func TestStatsAndTotals(t *testing.T) {
	n := BuildCollapsed([]string{"term", "author", "venue"}, []int{3, 2, 1}, simpleDocs(), BuildOptions{})
	st := n.Stats()
	if st.Nodes["term"] != 3 || st.Nodes["author"] != 2 || st.Nodes["venue"] != 1 {
		t.Fatalf("node stats = %v", st.Nodes)
	}
	if st.Links["term-term"] != 2 {
		t.Fatalf("term-term weight = %v", st.Links["term-term"])
	}
	if n.TotalWeight() <= 0 || n.TotalLinks() <= 0 {
		t.Fatal("totals should be positive")
	}
	if n.PairWeight(Pair(1, 2)) != 3 {
		t.Fatalf("author-venue pair weight = %v", n.PairWeight(Pair(1, 2)))
	}
}

func TestTermNetwork(t *testing.T) {
	n := TermNetwork(3, [][]int{{0, 1, 2}, {0, 1}}, 0)
	if n.NumTypes() != 1 {
		t.Fatalf("types = %d", n.NumTypes())
	}
	ls := n.Links[Pair(0, 0)]
	w := map[[2]int]float64{}
	for _, l := range ls {
		w[[2]int{l.I, l.J}] = l.W
	}
	if w[[2]int{0, 1}] != 2 || w[[2]int{0, 2}] != 1 || w[[2]int{1, 2}] != 1 {
		t.Fatalf("weights = %v", w)
	}
}
