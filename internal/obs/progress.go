package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"time"
)

// progressRepaint rate-limits terminal repaints; the final sweep of a
// run always paints so the last line is never stale.
const progressRepaint = 100 * time.Millisecond

// Progress is a Recorder that maintains a single live status line
// (carriage-return repaint, no newline until Done). Pool events are
// ignored — the line summarizes sweeps only.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	last  time.Time
	width int // widest line painted, for trailing-blank erase
	wrote bool
}

// NewProgress returns a progress-line sink writing to w (typically
// os.Stderr so the line never mixes with piped output).
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w}
}

// RecordSweep repaints the status line (rate-limited).
func (p *Progress) RecordSweep(s SweepStats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	final := s.Sweeps > 0 && s.Sweep >= s.Sweeps
	if !final && now.Sub(p.last) < progressRepaint {
		return
	}
	p.last = now

	var b strings.Builder
	fmt.Fprintf(&b, "%s", s.Engine)
	if s.Label != "" {
		fmt.Fprintf(&b, "[%s]", s.Label)
	}
	fmt.Fprintf(&b, " sweep %d", s.Sweep)
	if s.Sweeps > 0 {
		fmt.Fprintf(&b, "/%d", s.Sweeps)
	}
	if tps := s.TokensPerSec(); tps > 0 {
		fmt.Fprintf(&b, "  %s tok/s", siFloat(tps))
	}
	if s.Tokens > 0 {
		fmt.Fprintf(&b, "  changed %.1f%%", 100*s.ChangedFrac())
	}
	if wr := s.WordAcceptRate(); !math.IsNaN(wr) {
		fmt.Fprintf(&b, "  acc w %.2f", wr)
	}
	if dr := s.DocAcceptRate(); !math.IsNaN(dr) {
		fmt.Fprintf(&b, " d %.2f", dr)
	}
	if s.AliasRebuilds > 0 {
		fmt.Fprintf(&b, "  rebuilds %d", s.AliasRebuilds)
	}
	if !math.IsNaN(s.LogLikelihood) {
		// Perplexity overflows to +Inf when the log-likelihood is large
		// relative to the token count (CATHY's hierarchy likelihood);
		// fall back to the raw value rather than painting "ppl +Inf".
		if ppl := s.Perplexity(); isFinite(ppl) {
			fmt.Fprintf(&b, "  ppl %.1f", ppl)
		} else {
			fmt.Fprintf(&b, "  ll %.4g", s.LogLikelihood)
		}
	}
	line := b.String()
	pad := p.width - len(line)
	if pad < 0 {
		pad = 0
		p.width = len(line)
	}
	fmt.Fprintf(p.w, "\r%s%s", line, strings.Repeat(" ", pad))
	p.wrote = true
}

// RecordPool is a no-op; the progress line tracks sweeps only.
func (p *Progress) RecordPool(PoolStats) {}

// Done terminates the live line with a newline (if anything painted).
func (p *Progress) Done() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.wrote {
		fmt.Fprintln(p.w)
		p.wrote = false
	}
}

// siFloat renders a rate compactly (4.8M, 312k, 87).
func siFloat(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	}
	return fmt.Sprintf("%.0f", v)
}
