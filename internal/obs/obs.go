package obs

import (
	"math"
	"time"
)

// SweepStats is one completed sweep of one engine's sampler. Producers
// fill only the fields that apply to their core: the MH proposal
// counters stay zero for dense/sparse, AliasRebuilds stays zero for
// dense, the merge/delta fields stay zero for engines without chunked
// delta tables.
type SweepStats struct {
	// Engine names the producer: "lda" (token Gibbs fit), "phraselda",
	// "foldin" (one record per fold-in batch), "tng", "cathy".
	Engine string
	// Label is an optional sub-scope within the engine, e.g. the
	// hierarchy node path and restart index for CATHY EM runs.
	Label string

	Sweep  int // 1-based sweep number within the run
	Sweeps int // planned sweeps for the run (0 if open-ended)
	Docs   int // documents visited this sweep

	Tokens  int64 // token-sweep visits this sweep
	Changed int64 // visits whose topic assignment changed

	// MH proposal accounting. A proposal is counted only when it names
	// a topic different from the incumbent (self-proposals are no-ops
	// and would inflate the accept rate toward 1).
	WordProposals int64
	WordAccepts   int64
	DocProposals  int64
	DocAccepts    int64

	AliasRebuilds int           // alias-table rebuilds attributed to this sweep
	RebuildTime   time.Duration // wall time of those rebuilds

	Chunks     int           // parallel chunks the sweep was split into
	DeltaCells int64         // touched (k,v) delta-table cells merged
	MergeTime  time.Duration // chunk-ordered delta merge wall time
	SweepTime  time.Duration // whole-sweep wall time

	// LogLikelihood is the read-only convergence probe's corpus
	// log-likelihood, or NaN when no probe ran this sweep.
	LogLikelihood float64
}

// TokensPerSec is the sweep's sampling throughput (0 if untimed).
func (s SweepStats) TokensPerSec() float64 {
	if s.SweepTime <= 0 {
		return 0
	}
	return float64(s.Tokens) / s.SweepTime.Seconds()
}

// ChangedFrac is the fraction of token visits that moved topic.
func (s SweepStats) ChangedFrac() float64 {
	if s.Tokens == 0 {
		return 0
	}
	return float64(s.Changed) / float64(s.Tokens)
}

// WordAcceptRate is accepted/attempted for non-trivial word proposals
// (NaN when the sweep made none).
func (s SweepStats) WordAcceptRate() float64 {
	return rate(s.WordAccepts, s.WordProposals)
}

// DocAcceptRate is accepted/attempted for non-trivial doc proposals
// (NaN when the sweep made none).
func (s SweepStats) DocAcceptRate() float64 {
	return rate(s.DocAccepts, s.DocProposals)
}

func rate(num, den int64) float64 {
	if den == 0 {
		return math.NaN()
	}
	return float64(num) / float64(den)
}

// Perplexity derives exp(-LL/Tokens) from the probe (NaN when the
// sweep carried no probe or visited no tokens).
func (s SweepStats) Perplexity() float64 {
	if math.IsNaN(s.LogLikelihood) || s.Tokens == 0 {
		return math.NaN()
	}
	return math.Exp(-s.LogLikelihood / float64(s.Tokens))
}

// PoolStats is one parallel pass through internal/par: how long chunks
// waited for a worker and how long they ran, summed over chunks.
type PoolStats struct {
	Chunks  int
	Workers int
	Wait    time.Duration // sum over chunks of (dequeue time - pass start)
	Exec    time.Duration // sum over chunks of chunk body wall time
	Wall    time.Duration // whole pass wall time
}

// PoolObserver receives pool-level telemetry. internal/par depends
// only on this narrow interface, not on the full Recorder.
type PoolObserver interface {
	RecordPool(PoolStats)
}

// Recorder receives per-sweep sampler events and pool telemetry.
// Implementations must be safe for concurrent use: fit sweeps emit
// serially, but fold-in batches on a server record from many
// goroutines at once.
type Recorder interface {
	RecordSweep(SweepStats)
	PoolObserver
}

// CheckpointStats is one delivered fit checkpoint: which engine's run,
// the sweep boundary it captured, and how long building and handing it
// off (typically the durable write) took.
type CheckpointStats struct {
	Engine string
	Sweep  int
	Took   time.Duration
}

// CheckpointRecorder is the optional extension a Recorder implements to
// also receive checkpoint events. The fit cores type-assert for it, so
// recorders that don't care need no changes.
type CheckpointRecorder interface {
	RecordCheckpoint(CheckpointStats)
}

// multi fans events out to several recorders in order.
type multi []Recorder

func (m multi) RecordSweep(s SweepStats) {
	for _, r := range m {
		r.RecordSweep(s)
	}
}

func (m multi) RecordPool(p PoolStats) {
	for _, r := range m {
		r.RecordPool(p)
	}
}

// RecordCheckpoint forwards to the members that implement the optional
// CheckpointRecorder extension. multi always satisfies it so a combined
// recorder never hides a member's checkpoint interest.
func (m multi) RecordCheckpoint(c CheckpointStats) {
	for _, r := range m {
		if cr, ok := r.(CheckpointRecorder); ok {
			cr.RecordCheckpoint(c)
		}
	}
}

// Multi combines recorders into one, skipping nils. It returns nil
// when nothing remains (so callers keep the zero-cost nil path) and
// the sole survivor unwrapped when only one does.
func Multi(rs ...Recorder) Recorder {
	m := make(multi, 0, len(rs))
	for _, r := range rs {
		if r != nil {
			m = append(m, r)
		}
	}
	switch len(m) {
	case 0:
		return nil
	case 1:
		return m[0]
	}
	return m
}
