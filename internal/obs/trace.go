package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"sync"
)

// traceEvent is the JSONL schema: one object per line, discriminated
// by "type" ("sweep", "pool" or "checkpoint"). Durations are seconds as floats;
// fields that don't apply are omitted. The probe's log-likelihood is
// a pointer so a sweep without a probe omits the key entirely instead
// of emitting NaN (which encoding/json cannot represent).
type traceEvent struct {
	Type   string `json:"type"`
	Engine string `json:"engine,omitempty"`
	Label  string `json:"label,omitempty"`
	Sweep  int    `json:"sweep,omitempty"`
	Sweeps int    `json:"sweeps,omitempty"`
	Docs   int    `json:"docs,omitempty"`

	Tokens  int64 `json:"tokens,omitempty"`
	Changed int64 `json:"changed,omitempty"`

	WordProposals int64 `json:"word_proposals,omitempty"`
	WordAccepts   int64 `json:"word_accepts,omitempty"`
	DocProposals  int64 `json:"doc_proposals,omitempty"`
	DocAccepts    int64 `json:"doc_accepts,omitempty"`

	AliasRebuilds  int     `json:"alias_rebuilds,omitempty"`
	RebuildSeconds float64 `json:"rebuild_seconds,omitempty"`

	Chunks       int     `json:"chunks,omitempty"`
	DeltaCells   int64   `json:"delta_cells,omitempty"`
	MergeSeconds float64 `json:"merge_seconds,omitempty"`
	SweepSeconds float64 `json:"sweep_seconds,omitempty"`
	TokensPerSec float64 `json:"tokens_per_sec,omitempty"`

	LogLikelihood *float64 `json:"log_likelihood,omitempty"`
	Perplexity    *float64 `json:"perplexity,omitempty"`

	Workers     int     `json:"workers,omitempty"`
	WaitSeconds float64 `json:"wait_seconds,omitempty"`
	ExecSeconds float64 `json:"exec_seconds,omitempty"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`

	CheckpointSeconds float64 `json:"checkpoint_seconds,omitempty"`
}

// isFinite reports whether f is representable in JSON (not NaN, not ±Inf).
func isFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// Trace is a Recorder that writes one JSON object per event to a
// buffered writer. Safe for concurrent use. Close flushes and, when
// the underlying writer is an io.Closer, closes it — a mid-fit
// cancellation that unwinds through a deferred Close still leaves a
// complete, parseable file of everything recorded so far.
type Trace struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer
	err error
}

// NewTrace wraps w in a trace sink. If w implements io.Closer, Close
// closes it after flushing.
func NewTrace(w io.Writer) *Trace {
	t := &Trace{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// RecordSweep writes one "sweep" line.
func (t *Trace) RecordSweep(s SweepStats) {
	e := traceEvent{
		Type: "sweep", Engine: s.Engine, Label: s.Label,
		Sweep: s.Sweep, Sweeps: s.Sweeps, Docs: s.Docs,
		Tokens: s.Tokens, Changed: s.Changed,
		WordProposals: s.WordProposals, WordAccepts: s.WordAccepts,
		DocProposals: s.DocProposals, DocAccepts: s.DocAccepts,
		AliasRebuilds: s.AliasRebuilds, RebuildSeconds: s.RebuildTime.Seconds(),
		Chunks: s.Chunks, DeltaCells: s.DeltaCells,
		MergeSeconds: s.MergeTime.Seconds(), SweepSeconds: s.SweepTime.Seconds(),
	}
	// encoding/json rejects NaN and ±Inf outright — and one rejected
	// event would poison the whole trace — so every derived float is
	// gated on finiteness. Perplexity overflows to +Inf whenever the
	// log-likelihood is large relative to the token count (CATHY's
	// hierarchy likelihood, for one); the log-likelihood itself is still
	// recorded, so nothing is lost.
	if tps := s.TokensPerSec(); isFinite(tps) {
		e.TokensPerSec = tps
	}
	if isFinite(s.LogLikelihood) {
		ll := s.LogLikelihood
		e.LogLikelihood = &ll
		if p := s.Perplexity(); isFinite(p) {
			e.Perplexity = &p
		}
	}
	t.write(e)
}

// RecordCheckpoint writes one "checkpoint" line.
func (t *Trace) RecordCheckpoint(c CheckpointStats) {
	t.write(traceEvent{
		Type: "checkpoint", Engine: c.Engine, Sweep: c.Sweep,
		CheckpointSeconds: c.Took.Seconds(),
	})
}

// RecordPool writes one "pool" line.
func (t *Trace) RecordPool(p PoolStats) {
	t.write(traceEvent{
		Type: "pool", Chunks: p.Chunks, Workers: p.Workers,
		WaitSeconds: p.Wait.Seconds(), ExecSeconds: p.Exec.Seconds(),
		WallSeconds: p.Wall.Seconds(),
	})
}

func (t *Trace) write(e traceEvent) {
	b, err := json.Marshal(e)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.bw.Write(append(b, '\n')); err != nil {
		t.err = err
	}
}

// Close flushes buffered lines and closes the underlying writer when
// it is closeable. Safe to call more than once.
func (t *Trace) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.c != nil {
		if err := t.c.Close(); err != nil && t.err == nil {
			t.err = err
		}
		t.c = nil
	}
	return t.err
}

// Err reports the first write error, if any.
func (t *Trace) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
