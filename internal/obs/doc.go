// Package obs is the fit-side observability backbone: a Recorder
// interface the sampler cores and the parallel runtime report into,
// plus ready-made sinks (JSONL trace, live progress line, fan-out).
//
// The package is dependency-free (stdlib only) and is designed around
// two hard constraints inherited from the sampler contract:
//
//   - Recording must never perturb the trajectory. Recorders receive
//     copies of aggregated per-sweep statistics after the sweep's
//     deltas have merged; nothing a Recorder does can reach back into
//     counts or RNG streams, so models are bit-identical with
//     recording on or off at any parallelism.
//   - A nil Recorder must cost nothing. Producers keep cheap chunk-
//     local counters unconditionally and only aggregate/emit when a
//     recorder is attached; the nil path is allocation-free
//     (gated by testing.AllocsPerRun in internal/lda).
//
// Event model: one SweepStats per completed sweep (per engine), one
// PoolStats per parallel pass when pool telemetry is enabled via
// par.Opts.Obs. See docs/ARCHITECTURE.md "Observability".
package obs
