package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

func sweep(n int) SweepStats {
	return SweepStats{
		Engine: "lda", Sweep: n, Sweeps: 10, Docs: 4,
		Tokens: 100, Changed: 40,
		WordProposals: 50, WordAccepts: 25,
		SweepTime:     time.Millisecond,
		LogLikelihood: math.NaN(),
	}
}

func TestSweepStatsDerivedRates(t *testing.T) {
	s := sweep(1)
	if got := s.ChangedFrac(); got != 0.4 {
		t.Fatalf("ChangedFrac = %v, want 0.4", got)
	}
	if got := s.WordAcceptRate(); got != 0.5 {
		t.Fatalf("WordAcceptRate = %v, want 0.5", got)
	}
	if !math.IsNaN(s.DocAcceptRate()) {
		t.Fatalf("DocAcceptRate with no proposals = %v, want NaN", s.DocAcceptRate())
	}
	if got := s.TokensPerSec(); got != 100_000 {
		t.Fatalf("TokensPerSec = %v, want 100000", got)
	}
	if !math.IsNaN(s.Perplexity()) {
		t.Fatalf("Perplexity without a probe = %v, want NaN", s.Perplexity())
	}
	s.LogLikelihood = -100
	want := math.Exp(1) // exp(-(-100)/100)
	if got := s.Perplexity(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Perplexity = %v, want %v", got, want)
	}
}

// TestTraceJSONL: every line parses as JSON, sweep numbers are monotonic,
// and the NaN log-likelihood is omitted rather than emitted (NaN is not
// representable in JSON).
func TestTraceJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	for i := 1; i <= 5; i++ {
		s := sweep(i)
		if i == 4 {
			s.LogLikelihood = -123.5
		}
		tr.RecordSweep(s)
	}
	tr.RecordPool(PoolStats{Chunks: 8, Workers: 2, Wait: time.Millisecond, Exec: 2 * time.Millisecond, Wall: 3 * time.Millisecond})
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6", len(lines))
	}
	lastSweep := 0
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, ln)
		}
		switch m["type"] {
		case "sweep":
			n := int(m["sweep"].(float64))
			if n <= lastSweep {
				t.Fatalf("sweep numbers not monotonic: %d after %d", n, lastSweep)
			}
			lastSweep = n
			_, hasLL := m["log_likelihood"]
			if n == 4 && !hasLL {
				t.Fatalf("probe sweep 4 lost its log_likelihood: %s", ln)
			}
			if n != 4 && hasLL {
				t.Fatalf("sweep %d has log_likelihood but carried no probe: %s", n, ln)
			}
		case "pool":
			if int(m["chunks"].(float64)) != 8 {
				t.Fatalf("pool chunks = %v, want 8", m["chunks"])
			}
		default:
			t.Fatalf("unknown event type %q", m["type"])
		}
	}
	if lastSweep != 5 {
		t.Fatalf("last sweep = %d, want 5", lastSweep)
	}
}

// TestTraceSurvivesNonFiniteDerived: encoding/json rejects ±Inf, and one
// rejected event used to poison the whole trace. A log-likelihood big
// enough to overflow Perplexity to +Inf (CATHY's hierarchy likelihood
// does this on every sweep) must still serialize its finite fields, an
// outright ±Inf log-likelihood must be omitted like NaN, and — the real
// regression — lines recorded *afterwards* must still be written.
func TestTraceSurvivesNonFiniteDerived(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)

	s := sweep(1)
	s.LogLikelihood = -1e9 // exp(1e9/100) = +Inf perplexity
	tr.RecordSweep(s)
	s = sweep(2)
	s.LogLikelihood = math.Inf(-1)
	tr.RecordSweep(s)
	tr.RecordSweep(sweep(3))
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %q", len(lines), buf.String())
	}
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, ln)
		}
		if _, ok := m["perplexity"]; ok {
			t.Fatalf("line %d carries a perplexity that should be non-finite or absent: %s", i+1, ln)
		}
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if ll, ok := first["log_likelihood"].(float64); !ok || ll != -1e9 {
		t.Fatalf("finite log-likelihood lost: %s", lines[0])
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if _, ok := second["log_likelihood"]; ok {
		t.Fatalf("-Inf log-likelihood should be omitted: %s", lines[1])
	}
}

// closeRecorder wraps a bytes.Buffer and records whether Close ran —
// Trace.Close must close a closeable underlying writer exactly once.
type closeRecorder struct {
	bytes.Buffer
	closed int
}

func (c *closeRecorder) Close() error { c.closed++; return nil }

func TestTraceCloseClosesUnderlying(t *testing.T) {
	cw := &closeRecorder{}
	tr := NewTrace(cw)
	tr.RecordSweep(sweep(1))
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := tr.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	if cw.closed != 1 {
		t.Fatalf("underlying writer closed %d times, want 1", cw.closed)
	}
	if !strings.Contains(cw.String(), `"type":"sweep"`) {
		t.Fatalf("flushed output missing sweep line: %q", cw.String())
	}
}

type failWriter struct{ err error }

func (f *failWriter) Write(p []byte) (int, error) { return 0, f.err }

func TestTraceErrSurfacesWriteFailure(t *testing.T) {
	sentinel := errors.New("disk full")
	tr := NewTrace(&failWriter{err: sentinel})
	// The bufio layer absorbs small writes; Close flushes and must surface
	// the failure through Err.
	tr.RecordSweep(sweep(1))
	tr.Close()
	if !errors.Is(tr.Err(), sentinel) {
		t.Fatalf("Err = %v, want %v", tr.Err(), sentinel)
	}
}

type countRecorder struct{ sweeps, pools int }

func (c *countRecorder) RecordSweep(SweepStats) { c.sweeps++ }
func (c *countRecorder) RecordPool(PoolStats)   { c.pools++ }

func TestMulti(t *testing.T) {
	if Multi() != nil {
		t.Fatal("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi(nil, nil) should be nil")
	}
	a := &countRecorder{}
	if got := Multi(nil, a, nil); got != Recorder(a) {
		t.Fatalf("Multi with one survivor should unwrap it, got %T", got)
	}
	b := &countRecorder{}
	m := Multi(a, b)
	m.RecordSweep(sweep(1))
	m.RecordPool(PoolStats{})
	if a.sweeps != 1 || b.sweeps != 1 || a.pools != 1 || b.pools != 1 {
		t.Fatalf("fan-out miscounted: a=%+v b=%+v", a, b)
	}
}

func TestProgressPaintsAndDone(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	s := sweep(10) // final sweep always paints, bypassing the rate limit
	s.LogLikelihood = -50
	p.RecordSweep(s)
	p.Done()
	out := buf.String()
	for _, want := range []string{"lda sweep 10/10", "tok/s", "changed 40.0%", "acc w 0.50", "ppl"} {
		if !strings.Contains(out, want) {
			t.Fatalf("progress line missing %q: %q", want, out)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("Done did not terminate the line: %q", out)
	}
	buf.Reset()
	p.Done() // no repaint since: no extra newline
	if buf.Len() != 0 {
		t.Fatalf("second Done wrote %q", buf.String())
	}
}
