// Package experiments regenerates every table and figure of the paper's
// evaluation chapters on the synthetic stand-in datasets (DESIGN.md §3 maps
// experiment ids to paper artifacts). Each experiment accepts a scale factor
// in (0, 1] that shrinks workloads proportionally, so the same code drives
// the full `cmd/repro` runs, the unit tests and the benchmarks.
package experiments
