package experiments

import (
	"fmt"
	"strings"

	"lesm/internal/cathy"
	"lesm/internal/core"
	"lesm/internal/eval"
	"lesm/internal/hin"
	"lesm/internal/netclus"
	"lesm/internal/synth"
)

// hpmiMethods runs the Table 3.2/3.3 method set on one dataset and returns
// per-link-type HPMI rows.
func hpmiMethods(ds *synth.Dataset, k int, seed int64) ([][]string, []string) {
	e := eval.NewHPMIEvaluator(ds.Docs)
	nTypes := len(ds.TypeNames)
	// Link-type columns: all unordered pairs, term-term first.
	var pairs []hin.TypePair
	for x := 0; x < nTypes; x++ {
		for y := x; y < nTypes; y++ {
			if ds.TypeNames[x] == "venue" && ds.TypeNames[y] == "venue" {
				continue
			}
			pairs = append(pairs, hin.TypePair{X: core.TypeID(x), Y: core.TypeID(y)})
		}
	}
	kOf := func(x core.TypeID) int {
		if ds.TypeNames[x] == "venue" {
			return 3 // the paper's venue exception (only 20 venues exist)
		}
		return 20
	}
	scoreTopics := func(topics []*core.TopicNode) []string {
		var cells []string
		total := 0.0
		for _, p := range pairs {
			v := e.TopicSetHPMI(topics, p.X, p.Y, kOf(p.X), kOf(p.Y))
			total += v
			cells = append(cells, f3(v))
		}
		cells = append(cells, f3(total/float64(len(pairs))))
		return cells
	}

	var rows [][]string

	// TopK pseudo-topic baseline.
	pseudo := &core.TopicNode{Phi: map[core.TypeID][]float64{}}
	counts := map[core.TypeID][]float64{}
	for x := 0; x < nTypes; x++ {
		counts[core.TypeID(x)] = make([]float64, ds.NumNodes[x])
	}
	for _, d := range ds.Docs {
		for _, w := range d.Tokens {
			counts[core.TermType][w]++
		}
		for x, es := range d.Entities {
			for _, id := range es {
				counts[x][id]++
			}
		}
	}
	for x, c := range counts {
		pseudo.Phi[x] = c
	}
	rows = append(rows, append([]string{"TopK"}, scoreTopics([]*core.TopicNode{pseudo})...))

	// NetClus.
	nc := netclus.Run(ds.Docs, ds.NumNodes, netclus.Config{K: k, Iters: 25, Seed: seed})
	var ncTopics []*core.TopicNode
	for c := 0; c < k; c++ {
		tn := &core.TopicNode{Phi: map[core.TypeID][]float64{}}
		for x := 0; x < nTypes; x++ {
			tn.Phi[core.TypeID(x)] = nc.Rank[x][c]
		}
		ncTopics = append(ncTopics, tn)
	}
	rows = append(rows, append([]string{"NetClus"}, scoreTopics(ncTopics)...))

	// CATHYHIN variants.
	for _, v := range []struct {
		name string
		mode cathy.WeightMode
	}{
		{"CATHYHIN (equal weight)", cathy.EqualWeights},
		{"CATHYHIN (norm weight)", cathy.NormWeights},
		{"CATHYHIN (learn weight)", cathy.LearnWeights},
	} {
		res := buildHIN(ds, k, 1, v.mode, seed+int64(v.mode)+3)
		rows = append(rows, append([]string{v.name}, scoreTopics(res.Hierarchy.Root.Children)...))
	}

	header := []string{"method"}
	for _, p := range pairs {
		header = append(header, ds.TypeNames[p.X]+"-"+ds.TypeNames[p.Y])
	}
	header = append(header, "overall")
	return rows, header
}

// Table32 reproduces Table 3.2: HPMI on the DBLP 20-conference dataset and
// its Database-area subset.
func Table32(scale float64) *Table {
	t := &Table{ID: "table3.2", Title: "Heterogeneous PMI on DBLP (higher is better)"}
	full := synth.DBLP(synth.DBLPConfig{NumPapers: scaled(6000, scale), NumAuthors: scaled(1500, scale), Seed: 301})
	rows, header := hpmiMethods(full, 6, 302)
	t.Header = header
	t.Rows = append(t.Rows, []string{"-- DBLP (20 conferences) --"})
	t.Rows = append(t.Rows, rows...)
	db := synth.DBLP(synth.DBLPConfig{NumPapers: scaled(2000, scale), NumAuthors: scaled(500, scale), Seed: 303, AreaOnly: 1})
	rows2, _ := hpmiMethods(db, 4, 304)
	t.Rows = append(t.Rows, []string{"-- DBLP (Database area) --"})
	t.Rows = append(t.Rows, rows2...)
	t.Notes = append(t.Notes,
		"synthetic DBLP stand-in (DESIGN.md §2); expected shape: CATHYHIN > NetClus > TopK, learned weights best overall")
	return t
}

// Table33 reproduces Table 3.3: HPMI on NEWS with 16 stories and the
// 4-story subset.
func Table33(scale float64) *Table {
	t := &Table{ID: "table3.3", Title: "Heterogeneous PMI on NEWS (higher is better)"}
	sub := synth.News(synth.NewsConfig{NumArticles: scaled(2000, scale), Seed: 305, Stories: 4})
	rows, header := hpmiMethods(sub, 4, 306)
	t.Header = header
	t.Rows = append(t.Rows, []string{"-- NEWS (4 topics subset) --"})
	t.Rows = append(t.Rows, rows...)
	full := synth.News(synth.NewsConfig{NumArticles: scaled(6000, scale), Seed: 307})
	rows2, _ := hpmiMethods(full, 16, 308)
	t.Rows = append(t.Rows, []string{"-- NEWS (16 topics) --"})
	t.Rows = append(t.Rows, rows2...)
	t.Notes = append(t.Notes, "entity links carry simulated extraction noise, as in the crawled NEWS data")
	return t
}

// Table34 reproduces Table 3.4: node counts and link weights per type pair.
func Table34(scale float64) *Table {
	t := &Table{ID: "table3.4", Title: "# nodes and links in the constructed networks",
		Header: []string{"dataset", "stat", "value"}}
	add := func(name string, ds *synth.Dataset) {
		net := ds.CollapsedNetwork(0)
		st := net.Stats()
		for x, tn := range ds.TypeNames {
			t.Rows = append(t.Rows, []string{name, "nodes:" + tn, fmt.Sprintf("%d", ds.NumNodes[x])})
		}
		keys := make([]string, 0, len(st.Links))
		for k := range st.Links {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, k := range keys {
			t.Rows = append(t.Rows, []string{name, "links:" + k, fmt.Sprintf("%.0f", st.Links[k])})
		}
	}
	add("DBLP", synth.DBLP(synth.DBLPConfig{NumPapers: scaled(6000, scale), NumAuthors: scaled(1500, scale), Seed: 309}))
	add("NEWS", synth.News(synth.NewsConfig{NumArticles: scaled(6000, scale), Seed: 310}))
	return t
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// intrusionMethodSet builds the eight Table 3.5 method hierarchies on one
// dataset and scores the intrusion tasks.
func intrusionMethodSet(ds *synth.Dataset, k int, questions int, seed int64) ([][]string, []string) {
	cfg := eval.IntrusionConfig{Questions: questions, Seed: seed}
	type method struct {
		name string
		root *core.TopicNode
	}
	var methods []method

	// CATHYHIN with phrases + CATHYHIN1 (unigram patterns).
	resHIN := buildHIN(ds, k, 2, cathy.LearnWeights, seed+1)
	attachPhrases(ds, resHIN.Hierarchy.Root, 5, 20)
	attachEntitiesFromPhi(ds, resHIN.Hierarchy.Root, 20)
	methods = append(methods, method{"CATHYHIN", resHIN.Hierarchy.Root})

	resHIN1 := buildHIN(ds, k, 2, cathy.LearnWeights, seed+1)
	attachPhrases(ds, resHIN1.Hierarchy.Root, 1, 20)
	attachEntitiesFromPhi(ds, resHIN1.Hierarchy.Root, 20)
	methods = append(methods, method{"CATHYHIN1", resHIN1.Hierarchy.Root})

	// CATHY text-only (+ unigram variant + heuristic entity ranking).
	resTxt := buildTextHierarchy(ds, k, 2, seed+2)
	miner := attachPhrases(ds, resTxt.Hierarchy.Root, 5, 20)
	methods = append(methods, method{"CATHY", resTxt.Hierarchy.Root})

	resTxt1 := buildTextHierarchy(ds, k, 2, seed+2)
	attachPhrases(ds, resTxt1.Hierarchy.Root, 1, 20)
	methods = append(methods, method{"CATHY1", resTxt1.Hierarchy.Root})

	resHeur := buildTextHierarchy(ds, k, 2, seed+2)
	attachPhrases(ds, resHeur.Hierarchy.Root, 5, 20)
	attachEntitiesHeuristic(ds, resHeur.Hierarchy.Root, miner, 20)
	methods = append(methods, method{"CATHYheurHIN", resHeur.Hierarchy.Root})

	// NetClus hierarchy with phrases / unigram phrases / raw.
	nch := netclusHierarchy(ds, k, 2, seed+3)
	attachPhrases(ds, nch.Root, 5, 20)
	attachEntitiesFromPhi(ds, nch.Root, 20)
	methods = append(methods, method{"NetClusphrase", nch.Root})

	nch1 := netclusHierarchy(ds, k, 2, seed+3)
	attachPhrases(ds, nch1.Root, 1, 20)
	attachEntitiesFromPhi(ds, nch1.Root, 20)
	methods = append(methods, method{"NetClusphrase1", nch1.Root})

	nchRaw := netclusHierarchy(ds, k, 2, seed+3)
	attachPhrases(ds, nchRaw.Root, 1, 20)
	attachEntitiesFromPhi(ds, nchRaw.Root, 20)
	methods = append(methods, method{"NetClus", nchRaw.Root})

	entityTypes := []core.TypeID{2, 1} // venue/location first, author/person second
	var rows [][]string
	for _, m := range methods {
		row := []string{m.name, f2(eval.PhraseIntrusion(m.root, ds.Truth, cfg))}
		for _, x := range entityTypes {
			// Questions draw from each topic's top-5 entities: venue-like
			// types only have a handful of on-topic members.
			row = append(row, f2(eval.EntityIntrusion(m.root, ds.Truth, x, 5, cfg)))
		}
		row = append(row, f2(eval.TopicIntrusion(m.root, ds.Truth, cfg)))
		rows = append(rows, row)
	}
	header := []string{"method", "phrase", ds.TypeNames[2], ds.TypeNames[1], "topic"}
	return rows, header
}

// Table35 reproduces Table 3.5: the three intruder-detection tasks for the
// eight method variants on DBLP and NEWS.
func Table35(scale float64) *Table {
	t := &Table{ID: "table3.5", Title: "Intrusion tasks (% questions with intruder identified)"}
	dblp := synth.DBLP(synth.DBLPConfig{NumPapers: scaled(4000, scale), NumAuthors: scaled(1000, scale), Seed: 311})
	q := scaled(210, scale)
	rows, header := intrusionMethodSet(dblp, 6, q, 312)
	t.Header = header
	t.Rows = append(t.Rows, []string{"-- DBLP --"})
	t.Rows = append(t.Rows, rows...)
	news := synth.News(synth.NewsConfig{NumArticles: scaled(4000, scale), Seed: 313, Stories: 8})
	rows2, _ := intrusionMethodSet(news, 4, scaled(280, scale), 314)
	t.Rows = append(t.Rows, []string{"-- NEWS --"})
	t.Rows = append(t.Rows, rows2...)
	t.Notes = append(t.Notes,
		"three oracle judges with 12% noise replace the human annotators; majority scoring as in Section 3.3.2")
	return t
}

// irTopic finds the hierarchy topic best aligned with a ground-truth area by
// the affinity of its top phrases.
func bestAlignedTopic(root *core.TopicNode, ds *synth.Dataset, leafWant func(leaf int) bool) *core.TopicNode {
	var best *core.TopicNode
	bestScore := -1.0
	for _, c := range root.Children {
		score := 0.0
		for i, p := range c.Phrases {
			if i >= 10 {
				break
			}
			aff := ds.Truth.PhraseAffinity(p.Display)
			for l, v := range aff {
				if leafWant(l) {
					score += v
				}
			}
		}
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	return best
}

// topicCard renders a topic as "{phrases} / {entities type1} / {entities type2}".
func topicCard(n *core.TopicNode, k int) string {
	parts := []string{strings.Join(n.TopPhrases(k), "; ")}
	for x := core.TypeID(1); x <= 2; x++ {
		if es := n.TopEntities(x, k); len(es) > 0 {
			parts = append(parts, strings.Join(es, "; "))
		}
	}
	return "{" + strings.Join(parts, "} / {") + "}"
}

// Table36 reproduces Table 3.6: the information-retrieval topic as produced
// by CATHYHIN, CATHY_heuristic-HIN and NetClus_phrase.
func Table36(scale float64) *Table {
	t := &Table{ID: "table3.6", Title: "The 'information retrieval' topic under three methods",
		Header: []string{"method", "topic card (phrases / authors / venues)"}}
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: scaled(5000, scale), NumAuthors: scaled(1200, scale), Seed: 315})
	irLeafs := map[int]bool{}
	for l := 0; l < ds.Truth.NumLeaves(); l++ {
		if strings.Contains(ds.Truth.LeafName(l), "retrieval") || strings.Contains(ds.Truth.LeafName(l), "web search") ||
			strings.Contains(ds.Truth.LeafName(l), "question") || strings.Contains(ds.Truth.LeafName(l), "recommendation") {
			irLeafs[l] = true
		}
	}
	want := func(l int) bool { return irLeafs[l] }

	resHIN := buildHIN(ds, 6, 1, cathy.LearnWeights, 316)
	attachPhrases(ds, resHIN.Hierarchy.Root, 5, 20)
	attachEntitiesFromPhi(ds, resHIN.Hierarchy.Root, 20)
	if n := bestAlignedTopic(resHIN.Hierarchy.Root, ds, want); n != nil {
		t.Rows = append(t.Rows, []string{"CATHYHIN", topicCard(n, 3)})
	}

	resTxt := buildTextHierarchy(ds, 6, 1, 317)
	miner := attachPhrases(ds, resTxt.Hierarchy.Root, 5, 20)
	attachEntitiesHeuristic(ds, resTxt.Hierarchy.Root, miner, 20)
	if n := bestAlignedTopic(resTxt.Hierarchy.Root, ds, want); n != nil {
		t.Rows = append(t.Rows, []string{"CATHYheurHIN", topicCard(n, 3)})
	}

	nch := netclusHierarchy(ds, 6, 1, 318)
	attachPhrases(ds, nch.Root, 5, 20)
	attachEntitiesFromPhi(ds, nch.Root, 20)
	if n := bestAlignedTopic(nch.Root, ds, want); n != nil {
		t.Rows = append(t.Rows, []string{"NetClusphrase", topicCard(n, 3)})
	}
	return t
}

// Table37 reproduces Table 3.7: the Egypt topic and its least coherent
// subtopic per method.
func Table37(scale float64) *Table {
	t := &Table{ID: "table3.7", Title: "The 'egypt' topic and its weakest subtopic",
		Header: []string{"method", "level", "topic card (phrases / persons / locations)"}}
	ds := synth.News(synth.NewsConfig{NumArticles: scaled(4000, scale), Seed: 319, Stories: 8})
	egyptLeafs := map[int]bool{}
	for l := 0; l < ds.Truth.NumLeaves(); l++ {
		if strings.Contains(ds.Truth.LeafName(l), "egypt") {
			egyptLeafs[l] = true
		}
	}
	want := func(l int) bool { return egyptLeafs[l] }

	addMethod := func(name string, root *core.TopicNode) {
		n := bestAlignedTopic(root, ds, want)
		if n == nil {
			return
		}
		t.Rows = append(t.Rows, []string{name, "topic", topicCard(n, 4)})
		// Weakest subtopic: lowest mean pairwise phrase affinity coherence.
		var worst *core.TopicNode
		worstScore := 2.0
		for _, c := range n.Children {
			if len(c.Phrases) == 0 {
				continue
			}
			score := 0.0
			cnt := 0
			for i := 0; i < len(c.Phrases) && i < 5; i++ {
				aff := ds.Truth.PhraseAffinity(c.Phrases[i].Display)
				max := 0.0
				for l, v := range aff {
					if want(l) && v > max {
						max = v
					}
				}
				score += max
				cnt++
			}
			if cnt > 0 && score/float64(cnt) < worstScore {
				worstScore = score / float64(cnt)
				worst = c
			}
		}
		if worst != nil {
			t.Rows = append(t.Rows, []string{name, "worst subtopic", topicCard(worst, 4)})
		}
	}

	resHIN := buildHIN(ds, 8, 2, cathy.LearnWeights, 320)
	attachPhrases(ds, resHIN.Hierarchy.Root, 5, 20)
	attachEntitiesFromPhi(ds, resHIN.Hierarchy.Root, 20)
	addMethod("CATHYHIN", resHIN.Hierarchy.Root)

	resTxt := buildTextHierarchy(ds, 8, 2, 321)
	miner := attachPhrases(ds, resTxt.Hierarchy.Root, 5, 20)
	attachEntitiesHeuristic(ds, resTxt.Hierarchy.Root, miner, 20)
	addMethod("CATHYheurHIN", resTxt.Hierarchy.Root)

	nch := netclusHierarchy(ds, 8, 2, 322)
	attachPhrases(ds, nch.Root, 5, 20)
	attachEntitiesFromPhi(ds, nch.Root, 20)
	addMethod("NetClusphrase", nch.Root)
	return t
}

// Fig34 prints a sample CATHYHIN hierarchy (Figure 3.4).
func Fig34(scale float64) *Table {
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: scaled(4000, scale), NumAuthors: scaled(1000, scale), Seed: 323})
	res := buildHIN(ds, 3, 2, cathy.LearnWeights, 324)
	attachPhrases(ds, res.Hierarchy.Root, 5, 10)
	attachEntitiesFromPhi(ds, res.Hierarchy.Root, 5)
	t := &Table{ID: "fig3.4", Title: "sample CATHYHIN hierarchy (phrases / authors / venues per node)",
		Header: []string{"topic", "card"}}
	res.Hierarchy.Root.Walk(func(n *core.TopicNode) {
		if n.Parent() == nil {
			return
		}
		t.Rows = append(t.Rows, []string{n.Path, topicCard(n, 4)})
	})
	return t
}

// Fig38 reproduces Figure 3.8: learned link-type weights at the first and
// second level of the DBLP hierarchy.
func Fig38(scale float64) *Table {
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: scaled(5000, scale), NumAuthors: scaled(1200, scale), Seed: 325})
	res := buildHIN(ds, 6, 2, cathy.LearnWeights, 326)
	t := &Table{ID: "fig3.8", Title: "learned link-type weights per level",
		Header: []string{"link type", "level 1 (root split)", "level 2 (area splits, mean)"}}
	rootA := res.Alphas["o"]
	// Average level-2 alphas across children that were split.
	sum := map[hin.TypePair]float64{}
	cnt := map[hin.TypePair]int{}
	for _, c := range res.Hierarchy.Root.Children {
		if a, ok := res.Alphas[c.Path]; ok {
			for p, v := range a {
				sum[p] += v
				cnt[p]++
			}
		}
	}
	var keys []hin.TypePair
	for p := range rootA {
		keys = append(keys, p)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0; j-- {
			a, b := keys[j-1], keys[j]
			if a.X > b.X || (a.X == b.X && a.Y > b.Y) {
				keys[j-1], keys[j] = keys[j], keys[j-1]
			}
		}
	}
	for _, p := range keys {
		l2 := "-"
		if cnt[p] > 0 {
			l2 = f3(sum[p] / float64(cnt[p]))
		}
		name := ds.TypeNames[p.X] + "-" + ds.TypeNames[p.Y]
		t.Rows = append(t.Rows, []string{name, f3(rootA[p]), l2})
	}
	t.Notes = append(t.Notes,
		"paper's shape: venue links weighted high at level 1 and much lower at level 2")
	return t
}
