package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"lesm/internal/cathy"
	"lesm/internal/core"
	"lesm/internal/hin"
	"lesm/internal/lda"
	"lesm/internal/netclus"
	"lesm/internal/par"
	"lesm/internal/roles"
	"lesm/internal/synth"
	"lesm/internal/topmine"
)

// Table is one regenerated artifact: an id like "table3.2" or "fig4.2",
// headers, string rows and free-form notes (substitutions, scale).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is a registered artifact generator.
type Experiment struct {
	ID    string
	Short string
	Run   func(scale float64) *Table
}

// Registry lists every experiment in paper order.
var Registry = []Experiment{
	{"table3.2", "HPMI on DBLP (20 conferences and Database area)", Table32},
	{"table3.3", "HPMI on NEWS (16 topics and 4-topic subset)", Table33},
	{"table3.4", "dataset node and link statistics", Table34},
	{"table3.5", "intrusion detection tasks (% correct)", Table35},
	{"table3.6", "case study: the information-retrieval topic", Table36},
	{"table3.7", "case study: the Egypt topic and weakest subtopic", Table37},
	{"fig3.4", "sample CATHYHIN hierarchy", Fig34},
	{"fig3.8", "learned link-type weights per level (DBLP)", Fig38},
	{"table4.3", "top-10 machine learning phrases per ranking variant", Table43},
	{"table4.4", "nKQM@K for the ranking variants", Table44},
	{"fig4.2", "mutual information at K (labeled arXiv)", Fig42},
	{"fig4.3", "phrase intrusion across phrase mining methods", Fig43},
	{"fig4.4", "topical coherence z-scores", Fig44},
	{"fig4.5", "phrase quality z-scores", Fig45},
	{"fig4.6", "runtime split: phrase mining vs PhraseLDA", Fig46},
	{"table4.5", "runtimes of the phrase mining methods", Table45},
	{"table4.6", "ToPMine topics on CS abstracts", Table46},
	{"table4.7", "ToPMine topics on AP-style news", Table47},
	{"table4.8", "ToPMine topics on Yelp-style reviews", Table48},
	{"table5.1", "entity-specific vs combined phrase ranking", Table51},
	{"fig5.2", "author roles across subtopics", Fig52},
	{"table5.2", "venue roles in the information-retrieval topic", Table52},
	{"table5.3", "top authors per subtopic: popularity vs pop+purity", Table53},
	{"table6.1", "advisor mining accuracy: TPFG vs baselines", Table61},
	{"fig6.4", "TPFG preprocessing ablations", Fig64},
	{"table6.2", "supervised CRF vs unsupervised TPFG (F1)", Table62},
	{"fig7.1", "topic inference scalability: STROD vs Gibbs", Fig71},
	{"table7.1", "robustness: run-to-run topic variation", Table71},
	{"table7.2", "interpretability: topic recovery error and top words", Table72},
}

// Find returns the experiment with the given id, or nil.
func Find(id string) *Experiment {
	for i := range Registry {
		if Registry[i].ID == id {
			return &Registry[i]
		}
	}
	return nil
}

func f3(v float64) string       { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string       { return fmt.Sprintf("%.2f", v) }
func ms(d time.Duration) string { return fmt.Sprintf("%.0fms", float64(d.Microseconds())/1000) }

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		v = 1
	}
	return v
}

// --- shared pipeline helpers ---

// must unwraps engine results inside the harness: experiments always run
// with a background context, so the only possible error is a programming
// mistake worth failing loudly on.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// buildHIN constructs a CATHYHIN hierarchy over a dataset's collapsed
// network.
func buildHIN(ds *synth.Dataset, k, levels int, mode cathy.WeightMode, seed int64) *cathy.Result {
	net := ds.CollapsedNetwork(0)
	return must(cathy.Build(net, cathy.Options{
		K: k, Levels: levels, EMIters: 60, Restarts: 3, Seed: seed,
		Background: true, Weights: mode,
	}))
}

// buildTextHierarchy constructs a text-only CATHY hierarchy.
func buildTextHierarchy(ds *synth.Dataset, k, levels int, seed int64) *cathy.Result {
	net := hin.TermNetwork(ds.Corpus.Vocab.Size(), tokensOf(ds), 0)
	net.Names[0] = ds.Corpus.Vocab.Words()
	return must(cathy.Build(net, cathy.Options{
		K: k, Levels: levels, EMIters: 40, Restarts: 2, Seed: seed,
	}))
}

func tokensOf(ds *synth.Dataset) [][]int {
	out := make([][]int, len(ds.Corpus.Docs))
	for i, d := range ds.Corpus.Docs {
		out[i] = d.Tokens
	}
	return out
}

// attachPhrases mines frequent phrases (maxLen 1 restricts to unigrams,
// reproducing the "pattern length restricted to 1" method variants) and
// attaches ranked phrases to every topic.
func attachPhrases(ds *synth.Dataset, root *core.TopicNode, maxLen int, topN int) *topmine.Miner {
	miner := topmine.MineFrequentPhrases(ds.Corpus.Docs, topmine.Config{MinSupport: 5, MaxLen: maxLen, Alpha: 3})
	topmine.VisualizeHierarchy(ds.Corpus, miner, root, topN, par.Opts{})
	return miner
}

// attachEntitiesFromPhi ranks each topic's entities by its own ranking
// distribution phi (the CATHYHIN way).
func attachEntitiesFromPhi(ds *synth.Dataset, root *core.TopicNode, topN int) {
	root.Walk(func(n *core.TopicNode) {
		if n.Parent() == nil {
			return
		}
		for x := 1; x < len(ds.TypeNames); x++ {
			phi := n.Phi[core.TypeID(x)]
			if phi == nil {
				continue
			}
			ids := make([]int, len(phi))
			for i := range ids {
				ids[i] = i
			}
			sort.SliceStable(ids, func(a, b int) bool {
				if phi[ids[a]] != phi[ids[b]] {
					return phi[ids[a]] > phi[ids[b]]
				}
				return ids[a] < ids[b]
			})
			k := topN
			if k > len(ids) {
				k = len(ids)
			}
			var es []core.RankedEntity
			for _, id := range ids[:k] {
				if phi[id] <= 0 {
					break
				}
				es = append(es, core.RankedEntity{ID: id, Display: ds.Names[x][id], Score: phi[id]})
			}
			n.Entities[core.TypeID(x)] = es
		}
	})
}

// attachEntitiesHeuristic ranks entities by their document-attributed
// topical frequency (the CATHY_heuristic-HIN variant: text-only topics,
// entities ranked post hoc from the original links).
func attachEntitiesHeuristic(ds *synth.Dataset, root *core.TopicNode, miner *topmine.Miner, topN int) *roles.Analyzer {
	part := miner.SegmentCorpus(ds.Corpus.Docs)
	an := roles.NewAnalyzer(ds.Corpus, ds.Docs, root, miner, part)
	an.Names = ds.Names
	root.Walk(func(n *core.TopicNode) {
		if n.Parent() == nil {
			return
		}
		for x := 1; x < len(ds.TypeNames); x++ {
			es := an.RankEntities(core.TypeID(x), n.Path, roles.ERankPop, topN)
			n.Entities[core.TypeID(x)] = es
		}
	})
	return an
}

// netclusHierarchy builds the NetClus comparison hierarchy and fills phi so
// HPMI and intrusion tasks can read rankings.
func netclusHierarchy(ds *synth.Dataset, k, levels int, seed int64) *core.Hierarchy {
	return netclus.BuildHierarchy(ds.Docs, ds.NumNodes, levels, netclus.Config{K: k, Iters: 25, Seed: seed})
}

// ldaTopicsOf converts a fitted LDA model into per-topic ranked unigram
// "phrases" (for the unigram baselines).
func ldaTopicsOf(ds *synth.Dataset, m *lda.Model, topN int) [][]core.RankedPhrase {
	out := make([][]core.RankedPhrase, m.K)
	for t := 0; t < m.K; t++ {
		for _, w := range m.TopWords(t, topN) {
			out[t] = append(out[t], core.RankedPhrase{
				Words: []int{w}, Display: ds.Corpus.Vocab.Word(w), Score: m.Phi[t][w],
			})
		}
	}
	return out
}
