package experiments

import (
	"strings"
	"testing"
)

// smallScale keeps experiment smoke tests fast.
const smallScale = 0.08

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Registry {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
		if e.Run == nil {
			t.Fatalf("experiment %q has no Run", e.ID)
		}
	}
	// Every chapter 3-7 artifact named in DESIGN.md must be present.
	for _, want := range []string{
		"table3.2", "table3.3", "table3.4", "table3.5", "table3.6", "table3.7",
		"fig3.4", "fig3.8",
		"table4.3", "table4.4", "fig4.2", "fig4.3", "fig4.4", "fig4.5", "fig4.6",
		"table4.5", "table4.6", "table4.7", "table4.8",
		"table5.1", "fig5.2", "table5.2", "table5.3",
		"table6.1", "fig6.4", "table6.2",
		"fig7.1", "table7.1", "table7.2",
	} {
		if !ids[want] {
			t.Fatalf("missing experiment %q", want)
		}
	}
}

func TestFindExperiment(t *testing.T) {
	if Find("table3.2") == nil {
		t.Fatal("Find failed")
	}
	if Find("nope") != nil {
		t.Fatal("Find should return nil for unknown ids")
	}
}

// runAndCheck executes one experiment at smoke scale and sanity-checks the
// table shape.
func runAndCheck(t *testing.T, id string) *Table {
	t.Helper()
	e := Find(id)
	if e == nil {
		t.Fatalf("experiment %q not found", id)
	}
	tab := e.Run(smallScale)
	if tab.ID != id {
		t.Fatalf("table id %q != %q", tab.ID, id)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	s := tab.String()
	if !strings.Contains(s, id) {
		t.Fatalf("%s render missing id", id)
	}
	return tab
}

func TestTable34Smoke(t *testing.T) { runAndCheck(t, "table3.4") }
func TestFig38Smoke(t *testing.T)   { runAndCheck(t, "fig3.8") }
func TestTable43Smoke(t *testing.T) { runAndCheck(t, "table4.3") }
func TestFig46Smoke(t *testing.T)   { runAndCheck(t, "fig4.6") }
func TestTable46Smoke(t *testing.T) { runAndCheck(t, "table4.6") }
func TestTable51Smoke(t *testing.T) { runAndCheck(t, "table5.1") }
func TestTable53Smoke(t *testing.T) { runAndCheck(t, "table5.3") }
func TestTable61Smoke(t *testing.T) { runAndCheck(t, "table6.1") }
func TestFig64Smoke(t *testing.T)   { runAndCheck(t, "fig6.4") }
func TestTable62Smoke(t *testing.T) { runAndCheck(t, "table6.2") }
func TestTable71Smoke(t *testing.T) { runAndCheck(t, "table7.1") }

func TestTable32Shape(t *testing.T) {
	tab := runAndCheck(t, "table3.2")
	// 2 section rows + 5 methods x 2 datasets.
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(tab.Rows))
	}
	if tab.Header[len(tab.Header)-1] != "overall" {
		t.Fatalf("last header = %q", tab.Header[len(tab.Header)-1])
	}
}

func TestFig42Shape(t *testing.T) {
	tab := runAndCheck(t, "fig4.2")
	if len(tab.Rows) != 6 {
		t.Fatalf("methods = %d, want 6", len(tab.Rows))
	}
}
