package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"lesm/internal/core"
	"lesm/internal/eval"
	"lesm/internal/kert"
	"lesm/internal/lda"
	"lesm/internal/synth"
	"lesm/internal/tng"
	"lesm/internal/topmine"
	"lesm/internal/turbotopics"
)

// kertSetup fits background LDA on a titles corpus and mines KERT patterns.
func kertSetup(ds *synth.Dataset, k int, seed int64) (*kert.Result, *lda.Model) {
	docs := tokensOf(ds)
	m := must(lda.Run(docs, ds.Corpus.Vocab.Size(), lda.Config{K: k, Iters: 150, Seed: seed, Background: true}))
	res := kert.Mine(docs, kert.TopicsFromLDA(m), kert.Config{MinSupport: 5, MaxLen: 4, Background: true})
	return res, m
}

// mlTopic returns the LDA topic index best aligned with the machine
// learning area under ground truth.
func mlTopic(ds *synth.Dataset, m *lda.Model) int {
	best, bestScore := 0, -1.0
	for t := 0; t < m.K; t++ {
		score := 0.0
		for _, w := range m.TopWords(t, 15) {
			aff := ds.Truth.WordAffinity(ds.Corpus.Vocab.Word(w))
			for l, v := range aff {
				if strings.Contains(ds.Truth.LeafName(l), "kernel") ||
					strings.Contains(ds.Truth.LeafName(l), "graphical") ||
					strings.Contains(ds.Truth.LeafName(l), "reinforcement") ||
					strings.Contains(ds.Truth.LeafName(l), "dimensionality") {
					score += v
				}
			}
		}
		if score > bestScore {
			best, bestScore = t, score
		}
	}
	return best
}

// kertVariants lists the Table 4.3/4.4 ranking methods.
func kertVariants() []struct {
	Name string
	V    kert.Variant
} {
	return []struct {
		Name string
		V    kert.Variant
	}{
		{"KERT-pop", kert.Variant{UsePurity: true, UseConcordance: true, UseCompleteness: true}},
		{"KERT-con", kert.Variant{UsePopularity: true, UsePurity: true, UseCompleteness: true}},
		{"KERT-com", kert.Variant{UsePopularity: true, UsePurity: true, UseConcordance: true}},
		{"KERT-pur", kert.Variant{UsePopularity: true, UseConcordance: true, UseCompleteness: true}},
		{"KERT", kert.FullKERT},
	}
}

// Table43 reproduces Table 4.3: top-10 phrases of the machine learning
// topic under each ranking variant and the kpRel baselines.
func Table43(scale float64) *Table {
	ds := synth.DBLPTitles(synth.TextConfig{NumDocs: scaled(5000, scale), Seed: 401})
	res, m := kertSetup(ds, 6, 402)
	t := &Table{ID: "table4.3", Title: "top-10 machine-learning phrases per method",
		Header: []string{"method", "top phrases"}}
	topic := mlTopic(ds, m)
	vocab := ds.Corpus.Vocab
	add := func(name string, ps []core.RankedPhrase) {
		var out []string
		for i, p := range ps {
			if i >= 10 {
				break
			}
			out = append(out, p.Display)
		}
		t.Rows = append(t.Rows, []string{name, strings.Join(out, " / ")})
	}
	add("kpRelInt*", res.KpRelInt(topic, vocab, 10))
	add("kpRel", res.KpRel(topic, vocab, 10))
	// KERT-pur here means "purity removed" (omega forced to concordance):
	// reproduce the paper's naming.
	vs := kertVariants()
	for _, v := range vs {
		add(v.Name, res.Rank(topic, v.V, vocab, 10))
	}
	t.Notes = append(t.Notes, "expected shape: baselines favor unigrams; KERT-pop worst; KERT-com leaks sub-phrases")
	return t
}

// Table44 reproduces Table 4.4: nKQM@{5,10,20} for the seven methods.
func Table44(scale float64) *Table {
	ds := synth.DBLPTitles(synth.TextConfig{NumDocs: scaled(5000, scale), Seed: 403})
	res, _ := kertSetup(ds, 6, 404)
	vocab := ds.Corpus.Vocab
	t := &Table{ID: "table4.4", Title: "nKQM@K (10 oracle judges, agreement weighted)",
		Header: []string{"method", "nKQM@5", "nKQM@10", "nKQM@20"}}
	collect := func(rank func(topic int) []core.RankedPhrase) [][]core.RankedPhrase {
		out := make([][]core.RankedPhrase, res.ContentTopics())
		for i := range out {
			out[i] = rank(i)
		}
		return out
	}
	methods := []struct {
		name   string
		topics [][]core.RankedPhrase
	}{
		{"kpRelInt*", collect(func(tp int) []core.RankedPhrase { return res.KpRelInt(tp, vocab, 30) })},
		{"kpRel", collect(func(tp int) []core.RankedPhrase { return res.KpRel(tp, vocab, 30) })},
	}
	for _, v := range kertVariants() {
		vv := v
		methods = append(methods, struct {
			name   string
			topics [][]core.RankedPhrase
		}{vv.Name, collect(func(tp int) []core.RankedPhrase { return res.Rank(tp, vv.V, vocab, 30) })})
	}
	for _, m := range methods {
		row := []string{m.name}
		for _, k := range []int{5, 10, 20} {
			row = append(row, f3(eval.NKQM(m.topics, ds.Truth, k, 10, 0.1, 405)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig42 reproduces Figure 4.2: mutual information at K on the labeled
// arXiv-style corpus for the criteria ablations.
func Fig42(scale float64) *Table {
	ds := synth.Arxiv(synth.TextConfig{NumDocs: scaled(4000, scale), Seed: 406})
	docs := tokensOf(ds)
	m := must(lda.Run(docs, ds.Corpus.Vocab.Size(), lda.Config{K: 5, Iters: 150, Seed: 407, Background: true}))
	res := kert.Mine(docs, kert.TopicsFromLDA(m), kert.Config{MinSupport: 5, MaxLen: 4, Background: true})
	vocab := ds.Corpus.Vocab
	methods := []struct {
		name string
		rank func(topic, n int) []core.RankedPhrase
	}{
		{"KERTpop+pur", func(tp, n int) []core.RankedPhrase {
			return res.Rank(tp, kert.Variant{UsePopularity: true, UsePurity: true}, vocab, n)
		}},
		{"KERT", func(tp, n int) []core.RankedPhrase { return res.Rank(tp, kert.FullKERT, vocab, n) }},
		{"KERTpop", func(tp, n int) []core.RankedPhrase {
			return res.Rank(tp, kert.Variant{UsePopularity: true}, vocab, n)
		}},
		{"kpRel", func(tp, n int) []core.RankedPhrase { return res.KpRel(tp, vocab, n) }},
		{"kpRelInt*", func(tp, n int) []core.RankedPhrase { return res.KpRelInt(tp, vocab, n) }},
		{"KERTpur", func(tp, n int) []core.RankedPhrase {
			return res.Rank(tp, kert.Variant{UsePurity: true}, vocab, n)
		}},
	}
	ks := []int{25, 50, 100, 200, 400}
	t := &Table{ID: "fig4.2", Title: "mutual information at K (labeled physics titles)"}
	t.Header = []string{"method"}
	for _, k := range ks {
		t.Header = append(t.Header, fmt.Sprintf("MI@%d", k))
	}
	for _, mth := range methods {
		row := []string{mth.name}
		for _, k := range ks {
			topics := make([][]core.RankedPhrase, res.ContentTopics())
			for tp := range topics {
				topics[tp] = mth.rank(tp, k)
			}
			row = append(row, f3(eval.MIAtK(topics, k, ds.Corpus, ds.Truth.DocLabel, 5)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "expected shape: pop+pur best, pur-only worst (Figure 4.2)")
	return t
}

// phraseMethodTopics runs the five Chapter 4 comparison methods on one
// corpus and returns per-method per-topic ranked phrases.
func phraseMethodTopics(ds *synth.Dataset, k int, seed int64) map[string][][]core.RankedPhrase {
	docs := tokensOf(ds)
	v := ds.Corpus.Vocab.Size()
	out := map[string][][]core.RankedPhrase{}

	// ToPMine.
	tm := must(topmine.Run(ds.Corpus, topmine.Config{MinSupport: 5, MaxLen: 5, Alpha: 3},
		lda.Config{K: k, Iters: 120, Seed: seed, Background: true}, topmine.RankConfig{TopN: 25}))
	out["ToPMine"] = tm.Topics

	// KERT.
	m := must(lda.Run(docs, v, lda.Config{K: k, Iters: 120, Seed: seed + 1, Background: true}))
	kr := kert.Mine(docs, kert.TopicsFromLDA(m), kert.Config{MinSupport: 5, MaxLen: 4, Background: true})
	topicsK := make([][]core.RankedPhrase, kr.ContentTopics())
	for tp := range topicsK {
		topicsK[tp] = kr.Rank(tp, kert.FullKERT, ds.Corpus.Vocab, 25)
	}
	out["KERT"] = topicsK

	// TNG.
	tm2 := must(tng.Run(docs, v, tng.Config{K: k, Iters: 100, Seed: seed + 2}))
	out["TNG"] = tm2.TopicalPhrases(ds.Corpus, 25)

	// PDLDA stand-in: Pitman-Yor-flavored n-gram sampler (see tng docs).
	pd := must(tng.Run(docs, v, tng.Config{K: k, Iters: 100, Seed: seed + 3, Discount: 0.5, ExtraWork: 15}))
	out["PDLDA*"] = pd.TopicalPhrases(ds.Corpus, 25)

	// TurboTopics.
	plain := must(lda.Run(docs, v, lda.Config{K: k, Iters: 120, Seed: seed + 4}))
	out["Turbo"] = turbotopics.Run(ds.Corpus, plain, turbotopics.Config{MinCount: 5, Sig: 3}, 25)
	return out
}

// flatHierarchy wraps per-topic phrase lists as a single-level hierarchy so
// the intrusion evaluator can consume them.
func flatHierarchy(topics [][]core.RankedPhrase) *core.TopicNode {
	h := core.NewHierarchy()
	for _, ps := range topics {
		c := h.Root.AddChild()
		c.Phrases = ps
	}
	return h.Root
}

var phraseMethodOrder = []string{"PDLDA*", "ToPMine", "KERT", "TNG", "Turbo"}

// Fig43 reproduces Figure 4.3: phrase-intrusion performance of the five
// phrase mining methods on a short-text and a long-text corpus.
func Fig43(scale float64) *Table {
	t := &Table{ID: "fig4.3", Title: "phrase intrusion (avg fraction of questions correct)",
		Header: []string{"method", "titles", "abstracts"}}
	short := synth.DBLPTitles(synth.TextConfig{NumDocs: scaled(4000, scale), Seed: 408})
	long := synth.LongText(synth.DomainAbstracts, synth.TextConfig{NumDocs: scaled(1200, scale), Seed: 409})
	ms := phraseMethodTopics(short, 6, 410)
	ml := phraseMethodTopics(long, 5, 411)
	cfg := eval.IntrusionConfig{Questions: scaled(120, scale), Seed: 412}
	for _, name := range phraseMethodOrder {
		t.Rows = append(t.Rows, []string{name,
			f2(eval.PhraseIntrusion(flatHierarchy(ms[name]), short.Truth, cfg)),
			f2(eval.PhraseIntrusion(flatHierarchy(ml[name]), long.Truth, cfg)),
		})
	}
	return t
}

// rateTopics scores a method's topic lists for coherence and phrase quality
// with the ground-truth oracle (the Figure 4.4/4.5 expert panel).
func rateTopics(topics [][]core.RankedPhrase, truth *synth.Truth) (coherence, quality float64) {
	for _, ps := range topics {
		var affs [][]float64
		multi, trueMulti := 0.0, 0.0
		for i, p := range ps {
			if i >= 10 {
				break
			}
			affs = append(affs, truth.PhraseAffinity(p.Display))
			if strings.Contains(p.Display, " ") {
				multi++
				if truth.IsGeneratorPhrase(p.Display) {
					trueMulti++
				}
			}
		}
		// Coherence: mean pairwise cosine of affinity vectors.
		s, c := 0.0, 0
		for i := 0; i < len(affs); i++ {
			for j := i + 1; j < len(affs); j++ {
				s += cosineVec(affs[i], affs[j])
				c++
			}
		}
		if c > 0 {
			coherence += s / float64(c)
		}
		// Quality: well-formed multiword expressions out of all multiword
		// expressions, with a floor when no phrases were produced at all.
		if multi > 0 {
			quality += trueMulti / multi
		}
	}
	n := float64(len(topics))
	return coherence / n, quality / n
}

func cosineVec(a, b []float64) float64 {
	var ab, aa, bb float64
	for i := range a {
		ab += a[i] * b[i]
		aa += a[i] * a[i]
		bb += b[i] * b[i]
	}
	if aa == 0 || bb == 0 {
		return 0
	}
	return ab / math.Sqrt(aa*bb)
}

func zscores(vals []float64) []float64 {
	mean, n := 0.0, float64(len(vals))
	for _, v := range vals {
		mean += v
	}
	mean /= n
	va := 0.0
	for _, v := range vals {
		va += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(va / n)
	out := make([]float64, len(vals))
	for i, v := range vals {
		if sd > 0 {
			out[i] = (v - mean) / sd
		}
	}
	return out
}

func fig44or45(id, title string, scale float64, pick func(c, q float64) float64) *Table {
	t := &Table{ID: id, Title: title, Header: []string{"method", "titles (z)", "abstracts (z)"}}
	short := synth.DBLPTitles(synth.TextConfig{NumDocs: scaled(4000, scale), Seed: 413})
	long := synth.LongText(synth.DomainAbstracts, synth.TextConfig{NumDocs: scaled(1200, scale), Seed: 414})
	ms := phraseMethodTopics(short, 6, 415)
	ml := phraseMethodTopics(long, 5, 416)
	var shortVals, longVals []float64
	for _, name := range phraseMethodOrder {
		c, q := rateTopics(ms[name], short.Truth)
		shortVals = append(shortVals, pick(c, q))
		c, q = rateTopics(ml[name], long.Truth)
		longVals = append(longVals, pick(c, q))
	}
	zs, zl := zscores(shortVals), zscores(longVals)
	for i, name := range phraseMethodOrder {
		t.Rows = append(t.Rows, []string{name, f2(zs[i]), f2(zl[i])})
	}
	return t
}

// Fig44 reproduces Figure 4.4: topical coherence z-scores.
func Fig44(scale float64) *Table {
	return fig44or45("fig4.4", "topical coherence (oracle expert panel, z-scores)", scale,
		func(c, q float64) float64 { return c })
}

// Fig45 reproduces Figure 4.5: phrase quality z-scores.
func Fig45(scale float64) *Table {
	return fig44or45("fig4.5", "phrase quality (oracle expert panel, z-scores)", scale,
		func(c, q float64) float64 { return q })
}

// Fig46 reproduces Figure 4.6: the runtime split between phrase mining and
// phrase-constrained topic modeling as the corpus grows.
func Fig46(scale float64) *Table {
	t := &Table{ID: "fig4.6", Title: "runtime decomposition of ToPMine",
		Header: []string{"#docs", "phrase mining", "PhraseLDA"}}
	for _, n := range []int{500, 1000, 2000, 4000} {
		nd := scaled(n, scale)
		ds := synth.LongText(synth.DomainAbstracts, synth.TextConfig{NumDocs: nd, Seed: 417})
		start := time.Now()
		miner := topmine.MineFrequentPhrases(ds.Corpus.Docs, topmine.Config{MinSupport: 5, MaxLen: 5, Alpha: 3})
		part := miner.SegmentCorpus(ds.Corpus.Docs)
		mine := time.Since(start)
		start = time.Now()
		must(lda.RunPhrases(part, ds.Corpus.Vocab.Size(), lda.Config{K: 5, Iters: 100, Seed: 418}))
		model := time.Since(start)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", nd), ms(mine), ms(model)})
	}
	t.Notes = append(t.Notes, "expected shape: both grow linearly; topic modeling dominates mining by a wide factor")
	return t
}

// Table45 reproduces Table 4.5: end-to-end runtimes of the phrase mining
// methods across dataset sizes.
func Table45(scale float64) *Table {
	t := &Table{ID: "table4.5", Title: "method runtimes",
		Header: []string{"method", "titles-sample", "titles", "abstracts-sample", "abstracts"}}
	datasets := []*synth.Dataset{
		synth.DBLPTitles(synth.TextConfig{NumDocs: scaled(1000, scale), Seed: 419}),
		synth.DBLPTitles(synth.TextConfig{NumDocs: scaled(5000, scale), Seed: 420}),
		synth.LongText(synth.DomainAbstracts, synth.TextConfig{NumDocs: scaled(300, scale), Seed: 421}),
		synth.LongText(synth.DomainAbstracts, synth.TextConfig{NumDocs: scaled(1500, scale), Seed: 422}),
	}
	time1 := func(f func()) string {
		start := time.Now()
		f()
		return ms(time.Since(start))
	}
	methods := []struct {
		name string
		// skipLong marks methods intractable on long text, like the paper's
		// "NA=" entries ("the exponential number of patterns generated make
		// large long-text datasets intractable" — KERT on abstracts).
		skipLong bool
		run      func(ds *synth.Dataset)
	}{
		{"PDLDA*", false, func(ds *synth.Dataset) {
			must(tng.Run(tokensOf(ds), ds.Corpus.Vocab.Size(), tng.Config{K: 5, Iters: 100, Seed: 423, Discount: 0.5, ExtraWork: 15}))
		}},
		{"Turbo", false, func(ds *synth.Dataset) {
			m := must(lda.Run(tokensOf(ds), ds.Corpus.Vocab.Size(), lda.Config{K: 5, Iters: 100, Seed: 424}))
			turbotopics.Run(ds.Corpus, m, turbotopics.Config{}, 20)
		}},
		{"TNG", false, func(ds *synth.Dataset) {
			must(tng.Run(tokensOf(ds), ds.Corpus.Vocab.Size(), tng.Config{K: 5, Iters: 100, Seed: 425}))
		}},
		{"LDA", false, func(ds *synth.Dataset) {
			must(lda.Run(tokensOf(ds), ds.Corpus.Vocab.Size(), lda.Config{K: 5, Iters: 100, Seed: 426}))
		}},
		{"KERT", true, func(ds *synth.Dataset) {
			m := must(lda.Run(tokensOf(ds), ds.Corpus.Vocab.Size(), lda.Config{K: 5, Iters: 100, Seed: 427, Background: true}))
			kert.Mine(tokensOf(ds), kert.TopicsFromLDA(m), kert.Config{MinSupport: 5, MaxLen: 4, Background: true})
		}},
		{"ToPMine", false, func(ds *synth.Dataset) {
			must(topmine.Run(ds.Corpus, topmine.Config{MinSupport: 5, MaxLen: 5, Alpha: 3},
				lda.Config{K: 5, Iters: 100, Seed: 428}, topmine.RankConfig{}))
		}},
	}
	for _, m := range methods {
		row := []string{m.name}
		for di, ds := range datasets {
			if m.skipLong && di >= 2 {
				row = append(row, "n/a (intractable)")
				continue
			}
			d := ds
			row = append(row, time1(func() { m.run(d) }))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"PDLDA* and Turbo are simplified stand-ins (DESIGN.md §2): their paper runtimes are orders of magnitude worse; treat their rows as lower bounds",
		"KERT's word-set mining blows up combinatorially on long documents, reproducing the paper's NA entries for KERT on abstracts")
	return t
}

// topMineShowcase renders a ToPMine run on one long-text domain (Tables
// 4.6-4.8): top unigrams (from PhraseLDA) and top multiword phrases.
func topMineShowcase(id, title string, domain synth.LongTextDomain, k int, scale float64, seed int64) *Table {
	ds := synth.LongText(domain, synth.TextConfig{NumDocs: scaled(1500, scale), Seed: seed})
	res := must(topmine.Run(ds.Corpus, topmine.Config{MinSupport: 5, MaxLen: 5, Alpha: 3},
		lda.Config{K: k, Iters: 150, Seed: seed + 1, Background: true}, topmine.RankConfig{TopN: 30}))
	t := &Table{ID: id, Title: title, Header: []string{"topic", "top unigrams", "top phrases"}}
	for tp := 0; tp < k; tp++ {
		var unis, phrases []string
		for _, w := range res.Model.TopWords(tp, 8) {
			unis = append(unis, ds.Corpus.Vocab.Word(w))
		}
		for _, p := range res.Topics[tp] {
			if strings.Contains(p.Display, " ") {
				phrases = append(phrases, p.Display)
			}
			if len(phrases) == 8 {
				break
			}
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("topic %d", tp+1),
			strings.Join(unis, " "), strings.Join(phrases, " / ")})
	}
	return t
}

// Table46 reproduces Table 4.6 (CS abstracts).
func Table46(scale float64) *Table {
	return topMineShowcase("table4.6", "ToPMine on CS abstracts", synth.DomainAbstracts, 5, scale, 429)
}

// Table47 reproduces Table 4.7 (AP news).
func Table47(scale float64) *Table {
	return topMineShowcase("table4.7", "ToPMine on AP-style news", synth.DomainAPNews, 5, scale, 430)
}

// Table48 reproduces Table 4.8 (Yelp reviews).
func Table48(scale float64) *Table {
	return topMineShowcase("table4.8", "ToPMine on Yelp-style reviews", synth.DomainYelp, 5, scale, 431)
}
