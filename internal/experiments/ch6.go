package experiments

import (
	"fmt"

	"lesm/internal/eval"
	"lesm/internal/relcrf"
	"lesm/internal/synth"
	"lesm/internal/tpfg"
)

// genealogyCase builds one advisor-mining test case.
func genealogyCase(seedFaculty int, years int, seed int64) (*synth.Genealogy, []tpfg.Paper, *tpfg.Network, []int) {
	g := synth.NewGenealogy(synth.GenealogyConfig{Seed: seed, SeedFaculty: seedFaculty, Years: years})
	papers := make([]tpfg.Paper, len(g.Papers))
	for i, p := range g.Papers {
		papers[i] = tpfg.Paper{Year: p.Year, Authors: p.Authors}
	}
	net := tpfg.Preprocess(papers, g.NumAuthors, tpfg.PreprocessOptions{Rules: tpfg.AllRules})
	var evalSet []int
	for a, adv := range g.AdvisorOf {
		if adv >= 0 {
			evalSet = append(evalSet, a)
		}
	}
	return g, papers, net, evalSet
}

// Table61 reproduces the Section 6.1.6 comparison: advisor prediction
// accuracy of RULE, the supervised linear baseline, IndMAX and TPFG on
// three network sizes (the paper's TEST1-3; reconstructed, see DESIGN.md).
func Table61(scale float64) *Table {
	t := &Table{ID: "table6.1", Title: "advisor mining accuracy",
		Header: []string{"dataset", "#authors", "#advised", "RULE", "logit", "IndMAX", "TPFG"}}
	cases := []struct {
		name    string
		faculty int
		years   int
		seed    int64
	}{
		{"TEST1", scaled(12, scale) + 3, 30, 601},
		{"TEST2", scaled(20, scale) + 3, 38, 602},
		{"TEST3", scaled(30, scale) + 3, 44, 603},
	}
	for _, c := range cases {
		g, papers, net, evalSet := genealogyCase(c.faculty, c.years, c.seed)
		rule := tpfg.Accuracy(tpfg.RuleBaseline(papers, g.NumAuthors), g.AdvisorOf, evalSet)
		ind := tpfg.Accuracy(tpfg.IndMaxBaseline(net, 0), g.AdvisorOf, evalSet)
		res := tpfg.Infer(net, tpfg.Config{})
		tp := tpfg.Accuracy(res.Predict(), g.AdvisorOf, evalSet)
		// Logit trained on half, evaluated on the other half (all other
		// methods are unsupervised, so report their accuracy on the same
		// test half for fairness).
		feats := tpfg.PairFeatures(papers, g.NumAuthors, net)
		var train, test []int
		for idx, i := range evalSet {
			if idx%2 == 0 {
				train = append(train, i)
			} else {
				test = append(test, i)
			}
		}
		lb := tpfg.TrainLogit(feats, net, g.AdvisorOf, train, c.seed+9)
		logit := tpfg.Accuracy(lb.Predict(feats, net), g.AdvisorOf, test)
		t.Rows = append(t.Rows, []string{
			c.name, fmt.Sprintf("%d", g.NumAuthors), fmt.Sprintf("%d", len(evalSet)),
			f3(rule), f3(logit), f3(ind), f3(tp),
		})
	}
	t.Notes = append(t.Notes, "expected shape: TPFG >= IndMAX > logit ~ RULE (joint time-constrained inference wins)")
	return t
}

// Fig64 reproduces the preprocessing ablations: accuracy of TPFG under each
// filtering-rule configuration and local-likelihood estimate.
func Fig64(scale float64) *Table {
	t := &Table{ID: "fig6.4", Title: "TPFG ablations: filtering rules and local likelihood",
		Header: []string{"variant", "candidates/author", "true advisor kept", "accuracy"}}
	g, papers, _, evalSet := genealogyCase(scaled(20, scale)+3, 38, 604)
	run := func(name string, opt tpfg.PreprocessOptions) {
		net := tpfg.Preprocess(papers, g.NumAuthors, opt)
		total := 0
		kept := 0
		for _, i := range evalSet {
			total += len(net.Cands[i])
			for _, c := range net.Cands[i] {
				if c.Advisor == g.AdvisorOf[i] {
					kept++
					break
				}
			}
		}
		res := tpfg.Infer(net, tpfg.Config{})
		acc := tpfg.Accuracy(res.Predict(), g.AdvisorOf, evalSet)
		t.Rows = append(t.Rows, []string{name,
			f2(float64(total) / float64(len(evalSet))),
			f2(float64(kept) / float64(len(evalSet))), f3(acc)})
	}
	run("all rules + avg", tpfg.PreprocessOptions{Rules: tpfg.AllRules})
	run("no rules", tpfg.PreprocessOptions{Rules: tpfg.Rules{}})
	run("R1 only", tpfg.PreprocessOptions{Rules: tpfg.Rules{R1: true}})
	run("R3+R4 only", tpfg.PreprocessOptions{Rules: tpfg.Rules{R3: true, R4: true}})
	run("kulc likelihood", tpfg.PreprocessOptions{Rules: tpfg.AllRules, Likelihood: "kulc"})
	run("ir likelihood", tpfg.PreprocessOptions{Rules: tpfg.AllRules, Likelihood: "ir"})
	run("year1 end", tpfg.PreprocessOptions{Rules: tpfg.AllRules, EndEstimate: "year1"})
	run("year2 end", tpfg.PreprocessOptions{Rules: tpfg.AllRules, EndEstimate: "year2"})
	return t
}

// Table62 reproduces the Section 6.2.4 comparison: the supervised CRF
// against unsupervised TPFG and the logistic baseline, by training
// fraction, in precision/recall/F1.
func Table62(scale float64) *Table {
	t := &Table{ID: "table6.2", Title: "supervised relation CRF vs baselines (fixed 30% test split)",
		Header: []string{"method", "train%", "P", "R", "F1"}}
	g, _, net, evalSet := genealogyCase(scaled(20, scale)+3, 40, 605)
	papers := make([]relcrf.Paper, len(g.Papers))
	for i, p := range g.Papers {
		papers[i] = relcrf.Paper{Year: p.Year, Authors: p.Authors, Venue: p.Venue}
	}
	feats := relcrf.Features(papers, g.NumAuthors, g.NumVenues, net)
	plainFeats := tpfg.PairFeatures(toPlain(papers), g.NumAuthors, net)
	cut := len(evalSet) * 7 / 10
	pool, test := evalSet[:cut], evalSet[cut:]

	addRow := func(name string, frac int, pred []int) {
		p, r, f1 := eval.PRF1(pred, g.AdvisorOf, test)
		t.Rows = append(t.Rows, []string{name, fmt.Sprintf("%d", frac), f3(p), f3(r), f3(f1)})
	}
	// Unsupervised TPFG (no training data).
	res := tpfg.Infer(net, tpfg.Config{})
	addRow("TPFG", 0, res.Predict())
	for _, frac := range []int{10, 30, 100} {
		n := len(pool) * frac / 100
		if n < 2 {
			n = 2
		}
		train := pool[:n]
		lb := tpfg.TrainLogit(plainFeats, net, g.AdvisorOf, train, 606)
		addRow("logit", frac, lb.Predict(plainFeats, net))
		m := must(relcrf.Train(net, feats, g.AdvisorOf, train, relcrf.TrainOptions{Seed: 607}))
		addRow("CRF", frac, must(m.Infer(net, feats)).Predict())
	}
	t.Notes = append(t.Notes, "expected shape: CRF >= TPFG and CRF > logit; CRF improves with training data")
	return t
}

func toPlain(papers []relcrf.Paper) []tpfg.Paper {
	out := make([]tpfg.Paper, len(papers))
	for i, p := range papers {
		out[i] = tpfg.Paper{Year: p.Year, Authors: p.Authors}
	}
	return out
}
