package experiments

import (
	"fmt"
	"strings"
	"time"

	"lesm/internal/cathy"
	"lesm/internal/hin"
	"lesm/internal/lda"
	"lesm/internal/strod"
	"lesm/internal/synth"
)

// Fig71 reproduces the Section 7.4.1 scalability experiment: wall time of
// STROD vs collapsed Gibbs LDA vs the CATHY EM step as the corpus grows.
func Fig71(scale float64) *Table {
	t := &Table{ID: "fig7.1", Title: "topic inference runtime vs corpus size (k=5)",
		Header: []string{"#docs", "STROD", "Gibbs LDA", "CATHY EM"}}
	for _, n := range []int{1000, 2000, 4000, 8000} {
		nd := scaled(n, scale)
		ds := synth.DBLPTitles(synth.TextConfig{NumDocs: nd, Seed: 701})
		docs := tokensOf(ds)
		v := ds.Corpus.Vocab.Size()

		start := time.Now()
		must(strod.Fit(strod.FromTokens(docs), v, strod.Config{K: 5, Seed: 702}))
		tS := time.Since(start)

		start = time.Now()
		must(lda.Run(docs, v, lda.Config{K: 5, Iters: 200, Seed: 703}))
		tG := time.Since(start)

		start = time.Now()
		net := hin.TermNetwork(v, docs, 0)
		must(cathy.Build(net, cathy.Options{K: 5, Levels: 1, EMIters: 100, Restarts: 1, Seed: 704}))
		tC := time.Since(start)

		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", nd), ms(tS), ms(tG), ms(tC)})
	}
	t.Notes = append(t.Notes, "expected shape: all linear-ish in corpus size; STROD fastest and the gap widens with size")
	return t
}

// Table71 reproduces the Section 7.4.2 robustness experiment: run-to-run
// variation of the recovered topic set over five random seeds.
func Table71(scale float64) *Table {
	t := &Table{ID: "table7.1", Title: "robustness: mean pairwise topic variation across 5 seeds (lower is better)",
		Header: []string{"method", "variation (mean TV distance)"}}
	ds := synth.Arxiv(synth.TextConfig{NumDocs: scaled(4000, scale), Seed: 705})
	docs := tokensOf(ds)
	v := ds.Corpus.Vocab.Size()
	sd := strod.FromTokens(docs)

	var strodRuns, gibbsRuns [][][]float64
	for seed := int64(0); seed < 5; seed++ {
		m := must(strod.Fit(sd, v, strod.Config{K: 5, Seed: 706 + seed}))
		strodRuns = append(strodRuns, m.Phi)
		g := must(lda.Run(docs, v, lda.Config{K: 5, Iters: 150, Seed: 711 + seed}))
		gibbsRuns = append(gibbsRuns, g.Phi)
	}
	pairwise := func(runs [][][]float64) float64 {
		s, c := 0.0, 0
		for i := 0; i < len(runs); i++ {
			for j := i + 1; j < len(runs); j++ {
				s += strod.MatchError(runs[i], runs[j])
				c++
			}
		}
		return s / float64(c)
	}
	t.Rows = append(t.Rows, []string{"STROD", f3(pairwise(strodRuns))})
	t.Rows = append(t.Rows, []string{"Gibbs LDA", f3(pairwise(gibbsRuns))})
	t.Notes = append(t.Notes, "expected shape: STROD near zero (deterministic moments); Gibbs varies across seeds")
	return t
}

// Table72 reproduces the Section 7.4.3 interpretability check: topic
// recovery error against ground truth plus sample top words, and a sample
// STROD topic tree.
func Table72(scale float64) *Table {
	t := &Table{ID: "table7.2", Title: "interpretability: recovery vs ground truth and sample topics",
		Header: []string{"item", "value"}}
	ds := synth.Arxiv(synth.TextConfig{NumDocs: scaled(4000, scale), Seed: 720})
	docs := tokensOf(ds)
	v := ds.Corpus.Vocab.Size()
	// Ground-truth word distributions per subfield from the generator
	// corpus itself (empirical, using true doc labels).
	truePhi := make([][]float64, 5)
	for i := range truePhi {
		truePhi[i] = make([]float64, v)
	}
	for di, d := range docs {
		l := ds.Truth.DocLabel[di]
		for _, w := range d {
			truePhi[l][w]++
		}
	}
	for i := range truePhi {
		s := 0.0
		for _, x := range truePhi[i] {
			s += x
		}
		for w := range truePhi[i] {
			truePhi[i][w] /= s
		}
	}
	sd := strod.FromTokens(docs)
	m := must(strod.Fit(sd, v, strod.Config{K: 5, Seed: 721, LearnAlpha0: true}))
	g := must(lda.Run(docs, v, lda.Config{K: 5, Iters: 200, Seed: 722}))
	t.Rows = append(t.Rows, []string{"STROD recovery error", f3(strod.MatchError(m.Phi, truePhi))})
	t.Rows = append(t.Rows, []string{"Gibbs recovery error", f3(strod.MatchError(g.Phi, truePhi))})
	t.Rows = append(t.Rows, []string{"STROD learned alpha0", f2(m.Alpha0)})
	for k := 0; k < 5; k++ {
		var words []string
		for _, w := range m.TopWords(k, 8) {
			words = append(words, ds.Corpus.Vocab.Word(w))
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("STROD topic %d", k+1), strings.Join(words, " ")})
	}
	// Sample recursive tree on the hierarchical CS corpus.
	cs := synth.DBLPTitles(synth.TextConfig{NumDocs: scaled(4000, scale), Seed: 723})
	h := must(strod.BuildTree(strod.FromTokens(tokensOf(cs)), cs.Corpus.Vocab.Size(),
		strod.TreeConfig{K: 3, Levels: 2, Config: strod.Config{Seed: 724}}))
	t.Rows = append(t.Rows, []string{"STROD tree size (3x3, 2 levels)", fmt.Sprintf("%d topics", h.Root.Size()-1)})
	return t
}
