package experiments

import (
	"fmt"
	"strings"

	"lesm/internal/cathy"
	"lesm/internal/core"
	"lesm/internal/roles"
	"lesm/internal/synth"
	"lesm/internal/topmine"
)

// rolesSetup builds the Chapter 5 pipeline: DBLP dataset, CATHYHIN
// hierarchy, phrase attachment and a role analyzer.
func rolesSetup(scale float64, seed int64) (*synth.Dataset, *cathy.Result, *roles.Analyzer) {
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: scaled(5000, scale), NumAuthors: scaled(1200, scale), Seed: seed})
	res := buildHIN(ds, 6, 2, cathy.LearnWeights, seed+1)
	miner := attachPhrases(ds, res.Hierarchy.Root, 5, 25)
	part := miner.SegmentCorpus(ds.Corpus.Docs)
	an := roles.NewAnalyzer(ds.Corpus, ds.Docs, res.Hierarchy.Root, miner, part)
	an.Names = ds.Names
	return ds, res, an
}

// dmTopic finds the hierarchy child best aligned with the data-mining area.
func alignedChild(ds *synth.Dataset, root *core.TopicNode, keywords ...string) *core.TopicNode {
	return bestAlignedTopic(root, ds, func(l int) bool {
		name := ds.Truth.LeafName(l)
		for _, k := range keywords {
			if strings.Contains(name, k) {
				return true
			}
		}
		return false
	})
}

// prolificAuthors returns the top-n authors by paper count.
func prolificAuthors(ds *synth.Dataset, n int) []int {
	counts := make([]int, ds.NumNodes[1])
	for _, d := range ds.Docs {
		for _, a := range d.Entities[1] {
			counts[a]++
		}
	}
	out := make([]int, 0, n)
	for len(out) < n {
		best, bestC := -1, -1
		for a, c := range counts {
			if c > bestC {
				best, bestC = a, c
			}
		}
		counts[best] = -1
		out = append(out, best)
	}
	return out
}

// Table51 reproduces Table 5.1: phrase-quality-only vs entity-specific vs
// combined ranking for two prolific authors in a data-mining subtopic.
func Table51(scale float64) *Table {
	ds, res, an := rolesSetup(scale, 501)
	t := &Table{ID: "table5.1", Title: "entity-specific phrase ranking (Eq. 5.1-5.2)",
		Header: []string{"ranking", "author", "top phrases"}}
	dm := alignedChild(ds, res.Hierarchy.Root, "pattern", "stream", "graph", "time series")
	if dm == nil || len(dm.Children) == 0 {
		t.Notes = append(t.Notes, "no aligned topic found at this scale")
		return t
	}
	sub := dm
	authors := prolificAuthorsInTopic(ds, an, sub.Path, 2)
	// Quality-only row (shared by both authors).
	var quality []string
	for _, p := range sub.Phrases[:min51(8, len(sub.Phrases))] {
		quality = append(quality, p.Display)
	}
	t.Rows = append(t.Rows, []string{"quality only", "-", strings.Join(quality, " / ")})
	for _, a := range authors {
		spec := an.EntityPhrases(1, a, sub.Path, 0.999, 8) // entity-specific only
		comb := an.EntityPhrases(1, a, sub.Path, 0.5, 8)   // combined
		t.Rows = append(t.Rows, []string{"entity specific", ds.Names[1][a], joinPhrases(spec)})
		t.Rows = append(t.Rows, []string{"combined", ds.Names[1][a], joinPhrases(comb)})
	}
	return t
}

func joinPhrases(ps []core.RankedPhrase) string {
	var out []string
	for _, p := range ps {
		out = append(out, p.Display)
	}
	return strings.Join(out, " / ")
}

func min51(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// prolificAuthorsInTopic ranks authors by topical frequency in a topic.
func prolificAuthorsInTopic(ds *synth.Dataset, an *roles.Analyzer, path string, n int) []int {
	ef := an.EntityFrequency(1, path)
	out := make([]int, 0, n)
	taken := map[int]bool{}
	for len(out) < n {
		best, bestV := -1, -1.0
		for a, v := range ef {
			if !taken[a] && v > bestV {
				best, bestV = a, v
			}
		}
		if best < 0 {
			break
		}
		taken[best] = true
		out = append(out, best)
	}
	return out
}

// Fig52 reproduces Figures 5.2/5.3: two prolific authors' roles across the
// subtopics of a topic, with estimated paper counts per subtopic.
func Fig52(scale float64) *Table {
	ds, res, an := rolesSetup(scale, 502)
	t := &Table{ID: "fig5.2", Title: "author roles across subtopics (entity frequency = est. papers)",
		Header: []string{"author", "topic", "est. papers", "top specific phrases"}}
	dm := alignedChild(ds, res.Hierarchy.Root, "pattern", "stream", "graph", "time series")
	if dm == nil {
		return t
	}
	authors := prolificAuthorsInTopic(ds, an, dm.Path, 2)
	for _, a := range authors {
		name := ds.Names[1][a]
		ef := an.EntityFrequency(1, dm.Path)
		t.Rows = append(t.Rows, []string{name, dm.Path, f2(ef[a]), joinPhrases(an.EntityPhrases(1, a, dm.Path, 0.5, 5))})
		for _, c := range dm.Children {
			cf := an.EntityFrequency(1, c.Path)
			t.Rows = append(t.Rows, []string{name, c.Path, f2(cf[a]), joinPhrases(an.EntityPhrases(1, a, c.Path, 0.5, 5))})
		}
	}
	t.Notes = append(t.Notes, "subtopic frequencies sum to at most the parent's (Section 5.1.2)")
	return t
}

// Table52 reproduces Table 5.2: the roles of three venues in the
// information-retrieval topic.
func Table52(scale float64) *Table {
	ds, res, an := rolesSetup(scale, 503)
	t := &Table{ID: "table5.2", Title: "venue roles in the information-retrieval topic",
		Header: []string{"venue", "topical phrases published there"}}
	ir := alignedChild(ds, res.Hierarchy.Root, "retrieval", "web search", "question", "recommendation")
	if ir == nil {
		return t
	}
	// Three venues with the largest IR-topic frequency.
	vf := an.EntityFrequency(2, ir.Path)
	for n := 0; n < 3; n++ {
		best, bestV := -1, -1.0
		for v, f := range vf {
			if f > bestV {
				best, bestV = v, f
			}
		}
		if best < 0 {
			break
		}
		vf[best] = -2
		t.Rows = append(t.Rows, []string{ds.Names[2][best], joinPhrases(an.EntityPhrases(2, best, ir.Path, 0.5, 7))})
	}
	return t
}

// Table53 reproduces Table 5.3: top authors of each subtopic under
// popularity-only vs popularity+purity ranking.
func Table53(scale float64) *Table {
	ds, res, an := rolesSetup(scale, 504)
	t := &Table{ID: "table5.3", Title: "top-5 authors per subtopic: ERank pop vs pop+pur",
		Header: []string{"subtopic", "pop", "pop+pur"}}
	dm := alignedChild(ds, res.Hierarchy.Root, "pattern", "stream", "graph", "time series")
	if dm == nil {
		return t
	}
	for _, c := range dm.Children {
		pop := an.RankEntities(1, c.Path, roles.ERankPop, 5)
		pur := an.RankEntities(1, c.Path, roles.ERankPopPur, 5)
		names := func(es []core.RankedEntity) string {
			var out []string
			for _, e := range es {
				out = append(out, e.Display)
			}
			return strings.Join(out, "; ")
		}
		label := c.Path
		if len(c.Phrases) > 0 {
			label = fmt.Sprintf("%s (%s)", c.Path, c.Phrases[0].Display)
		}
		t.Rows = append(t.Rows, []string{label, names(pop), names(pur)})
	}
	t.Notes = append(t.Notes, "expected shape: pop lists share prolific authors across subtopics; pop+pur lists are disjoint")
	return t
}

var _ = topmine.Config{}
