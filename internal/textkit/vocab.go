package textkit

import "sort"

// Vocabulary is a bidirectional mapping between word strings and dense
// integer ids. The zero value is ready to use.
type Vocabulary struct {
	ids   map[string]int
	words []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{ids: map[string]int{}}
}

// VocabularyFromWords rebuilds a vocabulary from its id-ordered word list
// (the persisted form): word i gets id i. Duplicate words keep the first
// id, matching Add's semantics, so VocabularyFromWords(v.Words()) always
// reproduces v.
func VocabularyFromWords(words []string) *Vocabulary {
	v := NewVocabulary()
	v.words = make([]string, 0, len(words))
	for _, w := range words {
		v.words = append(v.words, w)
		if _, ok := v.ids[w]; !ok {
			v.ids[w] = len(v.words) - 1
		}
	}
	return v
}

// Add returns the id for w, assigning the next free id if w is new.
func (v *Vocabulary) Add(w string) int {
	if v.ids == nil {
		v.ids = map[string]int{}
	}
	if id, ok := v.ids[w]; ok {
		return id
	}
	id := len(v.words)
	v.ids[w] = id
	v.words = append(v.words, w)
	return id
}

// ID returns the id for w and whether it is present.
func (v *Vocabulary) ID(w string) (int, bool) {
	id, ok := v.ids[w]
	return id, ok
}

// Word returns the string for id; it panics if id is out of range.
func (v *Vocabulary) Word(id int) string { return v.words[id] }

// Size returns the number of distinct words.
func (v *Vocabulary) Size() int { return len(v.words) }

// Words returns a copy of all words ordered by id.
func (v *Vocabulary) Words() []string {
	out := make([]string, len(v.words))
	copy(out, v.words)
	return out
}

// TopByCount returns up to k word ids ordered by descending counts[id],
// breaking ties by id. counts must have length >= Size.
func (v *Vocabulary) TopByCount(counts []int, k int) []int {
	ids := make([]int, len(v.words))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		if counts[ids[a]] != counts[ids[b]] {
			return counts[ids[a]] > counts[ids[b]]
		}
		return ids[a] < ids[b]
	})
	if k < len(ids) {
		ids = ids[:k]
	}
	return ids
}
