package textkit

// stopwords is a standard English stopword list (the SMART-style subset
// commonly used for topic modeling preprocessing).
var stopwords = map[string]struct{}{}

func init() {
	for _, w := range stopwordList {
		stopwords[w] = struct{}{}
	}
}

// IsStopword reports whether the lowercase token w is an English stopword.
func IsStopword(w string) bool {
	_, ok := stopwords[w]
	return ok
}

var stopwordList = []string{
	"a", "about", "above", "after", "again", "against", "all", "also", "am",
	"an", "and", "any", "are", "aren", "as", "at", "be", "because", "been",
	"before", "being", "below", "between", "both", "but", "by", "can",
	"cannot", "could", "couldn", "did", "didn", "do", "does", "doesn",
	"doing", "don", "down", "during", "each", "few", "for", "from",
	"further", "had", "hadn", "has", "hasn", "have", "haven", "having",
	"he", "her", "here", "hers", "herself", "him", "himself", "his", "how",
	"i", "if", "in", "into", "is", "isn", "it", "its", "itself", "just",
	"let", "me", "more", "most", "mustn", "my", "myself", "no", "nor",
	"not", "now", "of", "off", "on", "once", "only", "or", "other", "ought",
	"our", "ours", "ourselves", "out", "over", "own", "s", "same", "shan",
	"she", "should", "shouldn", "so", "some", "such", "t", "than", "that",
	"the", "their", "theirs", "them", "themselves", "then", "there",
	"these", "they", "this", "those", "through", "to", "too", "under",
	"until", "up", "upon", "us", "very", "was", "wasn", "we", "were",
	"weren", "what", "when", "where", "which", "while", "who", "whom",
	"why", "will", "with", "won", "would", "wouldn", "you", "your",
	"yours", "yourself", "yourselves",
	// High-frequency verbs/adverbs that carry no topical content in titles.
	"using", "based", "via", "towards", "toward", "among", "within",
	"without", "new", "approach", "study", "case",
}
