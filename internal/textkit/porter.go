package textkit

// PorterStem implements the classic Porter stemming algorithm (Porter 1980),
// used by the paper's long-text experiments (Section 4.4.2) to collapse
// inflectional variants ("cooking", "cooked" -> "cook").
//
// The implementation follows the original five-step description. It operates
// on lowercase ASCII words; words shorter than three characters are returned
// unchanged, as in the reference implementation.
func PorterStem(word string) string {
	if len(word) <= 2 {
		return word
	}
	b := []byte(word)
	for _, c := range b {
		if c < 'a' || c > 'z' {
			return word // non-ASCII-lowercase input: leave untouched
		}
	}
	b = step1a(b)
	b = step1b(b)
	b = step1c(b)
	b = step2(b)
	b = step3(b)
	b = step4(b)
	b = step5a(b)
	b = step5b(b)
	return string(b)
}

// isConsonant reports whether b[i] is a consonant per Porter's definition:
// 'y' is a consonant when at position 0 or preceded by a vowel position.
func isConsonant(b []byte, i int) bool {
	switch b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isConsonant(b, i-1)
	}
	return true
}

// measure computes m, the number of VC sequences in b[:len(b)].
func measure(b []byte) int {
	n, i := 0, 0
	// skip initial consonants
	for i < len(b) && isConsonant(b, i) {
		i++
	}
	for i < len(b) {
		// in vowel run
		for i < len(b) && !isConsonant(b, i) {
			i++
		}
		if i >= len(b) {
			break
		}
		n++
		for i < len(b) && isConsonant(b, i) {
			i++
		}
	}
	return n
}

func hasVowel(b []byte) bool {
	for i := range b {
		if !isConsonant(b, i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether b ends with a double consonant.
func endsDoubleConsonant(b []byte) bool {
	n := len(b)
	return n >= 2 && b[n-1] == b[n-2] && isConsonant(b, n-1)
}

// endsCVC reports whether b ends consonant-vowel-consonant where the final
// consonant is not w, x or y.
func endsCVC(b []byte) bool {
	n := len(b)
	if n < 3 {
		return false
	}
	if !isConsonant(b, n-3) || isConsonant(b, n-2) || !isConsonant(b, n-1) {
		return false
	}
	switch b[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(b []byte, s string) bool {
	if len(b) < len(s) {
		return false
	}
	return string(b[len(b)-len(s):]) == s
}

// replaceSuffix replaces suffix old (assumed present) with new.
func replaceSuffix(b []byte, old, new string) []byte {
	return append(b[:len(b)-len(old)], new...)
}

func step1a(b []byte) []byte {
	switch {
	case hasSuffix(b, "sses"):
		return replaceSuffix(b, "sses", "ss")
	case hasSuffix(b, "ies"):
		return replaceSuffix(b, "ies", "i")
	case hasSuffix(b, "ss"):
		return b
	case hasSuffix(b, "s"):
		return b[:len(b)-1]
	}
	return b
}

func step1b(b []byte) []byte {
	if hasSuffix(b, "eed") {
		if measure(b[:len(b)-3]) > 0 {
			return b[:len(b)-1]
		}
		return b
	}
	fix := false
	if hasSuffix(b, "ed") && hasVowel(b[:len(b)-2]) {
		b = b[:len(b)-2]
		fix = true
	} else if hasSuffix(b, "ing") && hasVowel(b[:len(b)-3]) {
		b = b[:len(b)-3]
		fix = true
	}
	if fix {
		switch {
		case hasSuffix(b, "at"), hasSuffix(b, "bl"), hasSuffix(b, "iz"):
			b = append(b, 'e')
		case endsDoubleConsonant(b) && !hasSuffix(b, "l") && !hasSuffix(b, "s") && !hasSuffix(b, "z"):
			b = b[:len(b)-1]
		case measure(b) == 1 && endsCVC(b):
			b = append(b, 'e')
		}
	}
	return b
}

func step1c(b []byte) []byte {
	if hasSuffix(b, "y") && hasVowel(b[:len(b)-1]) {
		b[len(b)-1] = 'i'
	}
	return b
}

var step2Rules = []struct{ old, new string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(b []byte) []byte {
	for _, r := range step2Rules {
		if hasSuffix(b, r.old) {
			if measure(b[:len(b)-len(r.old)]) > 0 {
				return replaceSuffix(b, r.old, r.new)
			}
			return b
		}
	}
	return b
}

var step3Rules = []struct{ old, new string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(b []byte) []byte {
	for _, r := range step3Rules {
		if hasSuffix(b, r.old) {
			if measure(b[:len(b)-len(r.old)]) > 0 {
				return replaceSuffix(b, r.old, r.new)
			}
			return b
		}
	}
	return b
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(b []byte) []byte {
	for _, s := range step4Suffixes {
		if hasSuffix(b, s) {
			stem := b[:len(b)-len(s)]
			if measure(stem) > 1 {
				if s == "ion" && len(stem) > 0 && stem[len(stem)-1] != 's' && stem[len(stem)-1] != 't' {
					return b
				}
				return stem
			}
			return b
		}
	}
	return b
}

func step5a(b []byte) []byte {
	if hasSuffix(b, "e") {
		stem := b[:len(b)-1]
		m := measure(stem)
		if m > 1 || (m == 1 && !endsCVC(stem)) {
			return stem
		}
	}
	return b
}

func step5b(b []byte) []byte {
	if measure(b) > 1 && endsDoubleConsonant(b) && hasSuffix(b, "l") {
		return b[:len(b)-1]
	}
	return b
}
