// Package textkit provides the text-processing substrate used throughout the
// module: tokenization, stopword removal, Porter stemming, vocabulary
// management and corpus containers.
//
// The paper's pipelines (Section 4.4.2) minimally pre-process text by
// lowercasing, removing stopwords and optionally stemming with the Porter
// algorithm; this package reproduces that pipeline with the standard library
// only.
package textkit
