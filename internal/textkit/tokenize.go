package textkit

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// FoldRune maps r to its canonical case-folded form: the lowercase of the
// smallest rune in r's unicode.SimpleFold orbit. This is strictly stronger
// than unicode.ToLower — case variants that lowercasing keeps apart still
// fold together (Greek final sigma 'ς' and 'σ' both become 'σ', the Kelvin
// sign 'K' becomes 'k', long s 'ſ' becomes 's') — so a query folded with
// FoldRune always matches text folded with FoldRune regardless of which
// variant either side typed. Every text path that compares user input
// against indexed text (Tokenize, the phrase and entity search indexes)
// must fold through this one helper; mixing it with strings.ToLower
// reintroduces the non-ASCII mismatch it exists to prevent.
func FoldRune(r rune) rune {
	if r < utf8.RuneSelf {
		if 'A' <= r && r <= 'Z' {
			return r + ('a' - 'A')
		}
		return r
	}
	min := r
	for f := unicode.SimpleFold(r); f != r; f = unicode.SimpleFold(f) {
		if f < min {
			min = f
		}
	}
	return unicode.ToLower(min)
}

// Fold case-folds every rune of s through FoldRune. It is the string-level
// companion of FoldRune for callers that compare whole strings (phrase
// display vs. query) rather than building tokens.
func Fold(s string) string {
	return strings.Map(FoldRune, s)
}

// Tokenize case-folds s (FoldRune) and splits it into maximal runs of
// letters and digits. Punctuation separates tokens; purely numeric tokens
// are kept (they matter for e.g. "20 conferences" style text but are
// typically removed by stopword filtering in callers that do not want
// them).
func Tokenize(s string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(FoldRune(r))
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// SplitSentences breaks s into phrase-invariant segments at punctuation that
// cannot be crossed by a phrase (commas, periods, semicolons, colons,
// question and exclamation marks, parentheses, brackets and slashes), per
// Section 4.3.1. Each returned segment is raw text to be tokenized.
func SplitSentences(s string) []string {
	isBreak := func(r rune) bool {
		switch r {
		case ',', '.', ';', ':', '?', '!', '(', ')', '[', ']', '{', '}', '/', '|', '"':
			return true
		}
		return false
	}
	var segs []string
	var b strings.Builder
	flush := func() {
		t := strings.TrimSpace(b.String())
		if t != "" {
			segs = append(segs, t)
		}
		b.Reset()
	}
	for _, r := range s {
		if isBreak(r) {
			flush()
			continue
		}
		b.WriteRune(r)
	}
	flush()
	return segs
}

// Pipeline bundles the preprocessing choices applied to raw text before
// topic or phrase mining.
type Pipeline struct {
	// RemoveStopwords drops tokens in the English stopword list.
	RemoveStopwords bool
	// Stem applies the Porter stemming algorithm to each kept token.
	Stem bool
	// MinLen drops tokens shorter than this many bytes (after stemming).
	MinLen int
}

// DefaultPipeline mirrors the paper's preprocessing: stopwords removed, no
// stemming (stemming is enabled for the long-text ToPMine experiments).
var DefaultPipeline = Pipeline{RemoveStopwords: true, MinLen: 2}

// Process tokenizes s and applies the pipeline, returning surviving tokens.
func (p Pipeline) Process(s string) []string {
	raw := Tokenize(s)
	out := raw[:0]
	for _, t := range raw {
		if p.RemoveStopwords && IsStopword(t) {
			continue
		}
		if p.Stem {
			t = PorterStem(t)
		}
		if len(t) < p.MinLen {
			continue
		}
		out = append(out, t)
	}
	return out
}

// ProcessSegments splits s into phrase-invariant segments and applies the
// pipeline to each, dropping empty segments. ToPMine consumes this form so
// that candidate phrases never cross punctuation.
func (p Pipeline) ProcessSegments(s string) [][]string {
	var out [][]string
	for _, seg := range SplitSentences(s) {
		toks := p.Process(seg)
		if len(toks) > 0 {
			out = append(out, toks)
		}
	}
	return out
}
