package textkit

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Query Processing & Optimization", []string{"query", "processing", "optimization"}},
		{"  ", nil},
		{"LDA-based (topic) models!", []string{"lda", "based", "topic", "models"}},
		{"e2e end2end 42", []string{"e2e", "end2end", "42"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestFoldCanonicalizesCaseVariants is the regression test for the
// case-folding mismatch between unicode.ToLower (per rune, what Tokenize
// used) and strings.ToLower (what the serving-side substring search used):
// both keep apart case variants that full folding merges — the Greek final
// sigma being the everyday one. A query typed with 'ς' must match indexed
// text holding 'Σ' or 'σ' no matter which fold path each side went
// through, so Fold/FoldRune are the single helper both sides use.
func TestFoldCanonicalizesCaseVariants(t *testing.T) {
	cases := []struct{ a, b string }{
		{"ΣΊΣΥΦΟΣ", "σίσυφος"}, // uppercase vs lowercase-with-final-sigma
		{"σ", "ς"},             // medial vs final sigma
		{"K", "k"},             // Kelvin sign U+212A vs ASCII k
		{"ſ", "s"},             // long s U+017F
		{"Query", "qUERY"},     // ASCII fast path
	}
	for _, c := range cases {
		if Fold(c.a) != Fold(c.b) {
			t.Errorf("Fold(%q) = %q, Fold(%q) = %q — variants must fold together", c.a, Fold(c.a), c.b, Fold(c.b))
		}
	}
	// The pre-fix mismatch this pins: strings.ToLower keeps the final
	// sigma distinct, so if Fold ever degrades to it this test fails.
	if strings.ToLower("ΣΊΣΥΦΟΣ") == strings.ToLower("σίσυφος") {
		t.Skip("strings.ToLower now folds final sigma; the helper is redundant")
	}
}

// TestTokenizeUsesFold pins that tokenization goes through the shared fold:
// the same word in any case variant yields one token form.
func TestTokenizeUsesFold(t *testing.T) {
	a := Tokenize("Σίσυφος rolls")
	b := Tokenize("ΣΊΣΥΦΟΣ ROLLS")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Tokenize case variants disagree: %v vs %v", a, b)
	}
}

func TestSplitSentences(t *testing.T) {
	got := SplitSentences("Mining frequent patterns: current status, and future directions.")
	want := []string{"Mining frequent patterns", "current status", "and future directions"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SplitSentences = %v, want %v", got, want)
	}
}

func TestStopwords(t *testing.T) {
	for _, w := range []string{"the", "of", "and", "is"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"database", "query", "mining"} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true, want false", w)
		}
	}
}

func TestPorterStem(t *testing.T) {
	// Reference pairs from the original Porter paper and test vocabulary.
	cases := map[string]string{
		"caresses":     "caress",
		"ponies":       "poni",
		"ties":         "ti",
		"caress":       "caress",
		"cats":         "cat",
		"feed":         "feed",
		"agreed":       "agre",
		"plastered":    "plaster",
		"bled":         "bled",
		"motoring":     "motor",
		"sing":         "sing",
		"conflated":    "conflat",
		"troubled":     "troubl",
		"sized":        "size",
		"hopping":      "hop",
		"tanned":       "tan",
		"falling":      "fall",
		"hissing":      "hiss",
		"fizzed":       "fizz",
		"failing":      "fail",
		"filing":       "file",
		"happy":        "happi",
		"sky":          "sky",
		"relational":   "relat",
		"conditional":  "condit",
		"rational":     "ration",
		"valenci":      "valenc",
		"digitizer":    "digit",
		"operator":     "oper",
		"feudalism":    "feudal",
		"decisiveness": "decis",
		"hopefulness":  "hope",
		"formaliti":    "formal",
		"triplicate":   "triplic",
		"formative":    "form",
		"formalize":    "formal",
		"electriciti":  "electr",
		"electrical":   "electr",
		"hopeful":      "hope",
		"goodness":     "good",
		"revival":      "reviv",
		"allowance":    "allow",
		"inference":    "infer",
		"airliner":     "airlin",
		"gyroscopic":   "gyroscop",
		"adjustable":   "adjust",
		"defensible":   "defens",
		"irritant":     "irrit",
		"replacement":  "replac",
		"adjustment":   "adjust",
		"dependent":    "depend",
		"adoption":     "adopt",
		"homologou":    "homolog",
		"communism":    "commun",
		"activate":     "activ",
		"angulariti":   "angular",
		"homologous":   "homolog",
		"effective":    "effect",
		"bowdlerize":   "bowdler",
		"probate":      "probat",
		"rate":         "rate",
		"cease":        "ceas",
		"controll":     "control",
		"roll":         "roll",
		"mining":       "mine",
		"databases":    "databas",
	}
	for in, want := range cases {
		if got := PorterStem(in); got != want {
			t.Errorf("PorterStem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPorterStemIdempotentOnShortWords(t *testing.T) {
	for _, w := range []string{"a", "ab", "Go", "x9"} {
		if got := PorterStem(w); got != w {
			t.Errorf("PorterStem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestPorterStemNeverPanicsAndShrinks(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ln := int(n%12) + 1
		b := make([]byte, ln)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		w := string(b)
		s := PorterStem(w)
		return len(s) <= len(w) && len(s) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestVocabularyRoundTrip(t *testing.T) {
	v := NewVocabulary()
	a := v.Add("alpha")
	b := v.Add("beta")
	if a2 := v.Add("alpha"); a2 != a {
		t.Fatalf("Add(alpha) twice gave %d then %d", a, a2)
	}
	if v.Size() != 2 {
		t.Fatalf("Size = %d, want 2", v.Size())
	}
	if v.Word(b) != "beta" {
		t.Fatalf("Word(%d) = %q", b, v.Word(b))
	}
	if id, ok := v.ID("beta"); !ok || id != b {
		t.Fatalf("ID(beta) = %d,%v", id, ok)
	}
	if _, ok := v.ID("gamma"); ok {
		t.Fatal("ID(gamma) should be absent")
	}
}

func TestVocabularyFromWords(t *testing.T) {
	v := NewVocabulary()
	for _, w := range []string{"alpha", "beta", "gamma"} {
		v.Add(w)
	}
	// Persist as the id-ordered word list and rebuild.
	got := VocabularyFromWords(v.Words())
	if got.Size() != v.Size() {
		t.Fatalf("Size = %d, want %d", got.Size(), v.Size())
	}
	for i := 0; i < v.Size(); i++ {
		if got.Word(i) != v.Word(i) {
			t.Fatalf("Word(%d) = %q, want %q", i, got.Word(i), v.Word(i))
		}
		if id, ok := got.ID(v.Word(i)); !ok || id != i {
			t.Fatalf("ID(%q) = %d,%v", v.Word(i), id, ok)
		}
	}
	// Adding after a rebuild continues from the next free id.
	if id := got.Add("delta"); id != 3 {
		t.Fatalf("next id after rebuild = %d, want 3", id)
	}
	// Empty list gives a usable empty vocabulary.
	empty := VocabularyFromWords(nil)
	if empty.Size() != 0 {
		t.Fatalf("empty Size = %d", empty.Size())
	}
	if id := empty.Add("x"); id != 0 {
		t.Fatalf("Add on rebuilt-empty vocab = %d", id)
	}
}

func TestVocabularyTopByCount(t *testing.T) {
	v := NewVocabulary()
	v.Add("a")
	v.Add("b")
	v.Add("c")
	top := v.TopByCount([]int{5, 9, 9}, 2)
	if !reflect.DeepEqual(top, []int{1, 2}) {
		t.Fatalf("TopByCount = %v", top)
	}
}

func TestCorpusAddText(t *testing.T) {
	c := NewCorpus()
	i := c.AddText("Mining frequent patterns, without candidate generation", DefaultPipeline)
	if i != 0 {
		t.Fatalf("index = %d", i)
	}
	d := c.Docs[0]
	if len(d.Segments) != 2 {
		t.Fatalf("segments = %d, want 2 (split at comma)", len(d.Segments))
	}
	if got := c.Phrase(d.Tokens); got != "mining frequent patterns candidate generation" {
		t.Fatalf("tokens = %q", got)
	}
	if c.TotalTokens() != 5 {
		t.Fatalf("TotalTokens = %d", c.TotalTokens())
	}
}

func TestCorpusCountsAndDF(t *testing.T) {
	c := NewCorpus()
	c.AddTokens([]string{"x", "y", "x"})
	c.AddTokens([]string{"y", "z"})
	wc := c.WordCounts()
	df := c.DocFrequency()
	xid, _ := c.Vocab.ID("x")
	yid, _ := c.Vocab.ID("y")
	zid, _ := c.Vocab.ID("z")
	if wc[xid] != 2 || wc[yid] != 2 || wc[zid] != 1 {
		t.Fatalf("WordCounts = %v", wc)
	}
	if df[xid] != 1 || df[yid] != 2 || df[zid] != 1 {
		t.Fatalf("DocFrequency = %v", df)
	}
}

func TestPipelineStemming(t *testing.T) {
	p := Pipeline{RemoveStopwords: true, Stem: true, MinLen: 2}
	got := p.Process("The databases are mining relational patterns")
	want := []string{"databas", "mine", "relat", "pattern"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("Process = %v, want %v", got, want)
	}
}
