package textkit

// Document is a sequence of vocabulary token ids, optionally broken into
// phrase-invariant segments (Section 4.3.1). Tokens is the concatenation of
// all segments.
type Document struct {
	Tokens   []int
	Segments [][]int
}

// Corpus holds an id-encoded document collection together with its
// vocabulary. This is the standard input to the topic and phrase mining
// algorithms.
type Corpus struct {
	Vocab *Vocabulary
	Docs  []Document
}

// NewCorpus returns an empty corpus with a fresh vocabulary.
func NewCorpus() *Corpus {
	return &Corpus{Vocab: NewVocabulary()}
}

// AddText processes raw text through the pipeline and appends the resulting
// document, returning its index.
func (c *Corpus) AddText(text string, p Pipeline) int {
	segs := p.ProcessSegments(text)
	var d Document
	for _, seg := range segs {
		ids := make([]int, len(seg))
		for i, w := range seg {
			ids[i] = c.Vocab.Add(w)
		}
		d.Segments = append(d.Segments, ids)
		d.Tokens = append(d.Tokens, ids...)
	}
	c.Docs = append(c.Docs, d)
	return len(c.Docs) - 1
}

// AddTokens appends a document from already-processed token strings as a
// single segment, returning its index.
func (c *Corpus) AddTokens(tokens []string) int {
	ids := make([]int, len(tokens))
	for i, w := range tokens {
		ids[i] = c.Vocab.Add(w)
	}
	c.Docs = append(c.Docs, Document{Tokens: ids, Segments: [][]int{ids}})
	return len(c.Docs) - 1
}

// TotalTokens returns the corpus length L = sum of document lengths.
func (c *Corpus) TotalTokens() int {
	n := 0
	for _, d := range c.Docs {
		n += len(d.Tokens)
	}
	return n
}

// WordCounts returns the corpus-wide frequency f(v) of every word id.
func (c *Corpus) WordCounts() []int {
	counts := make([]int, c.Vocab.Size())
	for _, d := range c.Docs {
		for _, t := range d.Tokens {
			counts[t]++
		}
	}
	return counts
}

// DocFrequency returns, for every word id, the number of documents
// containing it at least once.
func (c *Corpus) DocFrequency() []int {
	df := make([]int, c.Vocab.Size())
	seen := make([]int, c.Vocab.Size())
	for i := range seen {
		seen[i] = -1
	}
	for di, d := range c.Docs {
		for _, t := range d.Tokens {
			if seen[t] != di {
				seen[t] = di
				df[t]++
			}
		}
	}
	return df
}

// Phrase renders a sequence of word ids as a space-joined string.
func (c *Corpus) Phrase(ids []int) string {
	s := ""
	for i, id := range ids {
		if i > 0 {
			s += " "
		}
		s += c.Vocab.Word(id)
	}
	return s
}
