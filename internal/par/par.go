// Package par is the shared parallel runtime of the mining engines: a
// bounded worker pool with deterministic chunked execution, ordered
// reduction, and context-based cancellation.
//
// Every engine in the repo (CATHY EM, STROD moment accumulation, ToPMine
// mining and segmentation, TPFG message passing) funnels its hot loops
// through this package. The central guarantee is determinism: a range of n
// items is always split into the same chunks regardless of how many workers
// execute them, and reductions merge per-chunk accumulators in chunk order.
// Floating-point results are therefore bit-identical at P=1 and P=8 — the
// invariant the engines' same-seed reproducibility tests rely on.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Opts selects the execution policy an engine call runs under.
type Opts struct {
	// P is the maximum number of concurrent workers; <= 0 means
	// runtime.GOMAXPROCS(0).
	P int
	// Ctx cancels work between chunks; nil means context.Background().
	Ctx context.Context
}

// Workers resolves P to the effective worker count.
func (o Opts) Workers() int {
	if o.P > 0 {
		return o.P
	}
	return runtime.GOMAXPROCS(0)
}

// Context resolves Ctx, defaulting to context.Background().
func (o Opts) Context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// Err reports the cancellation state without doing any work.
func (o Opts) Err() error { return o.Context().Err() }

// MaxChunks is the fixed upper bound on the number of chunks a range is
// split into. Chunk boundaries depend only on the item count — never on P —
// so ordered reductions over chunks group floating-point additions
// identically at any parallelism level. It also bounds the memory spent on
// per-chunk accumulators (at most MaxChunks live copies).
const MaxChunks = 16

// NumChunks returns the number of chunks used for n items: n when n is
// small, MaxChunks otherwise.
func NumChunks(n int) int {
	if n <= 0 {
		return 0
	}
	if n < MaxChunks {
		return n
	}
	return MaxChunks
}

// ChunkBounds returns the half-open item range [lo, hi) of chunk c of n
// items. Chunks differ in size by at most one item.
func ChunkBounds(n, c int) (lo, hi int) {
	nc := NumChunks(n)
	return c * n / nc, (c + 1) * n / nc
}

// ForChunks splits [0, n) into the deterministic chunking of NumChunks /
// ChunkBounds and calls fn(c, lo, hi) once per chunk on up to o.Workers()
// goroutines. fn must only touch state that is disjoint per chunk (or per
// item). Cancellation is checked between chunks; ForChunks returns the
// context error if the run was cut short, in which case some chunks may not
// have executed.
func ForChunks(o Opts, n int, fn func(c, lo, hi int)) error {
	nc := NumChunks(n)
	if nc == 0 {
		return o.Err()
	}
	ctx := o.Context()
	w := o.Workers()
	if w > nc {
		w = nc
	}
	if w <= 1 {
		for c := 0; c < nc; c++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			lo, hi := ChunkBounds(n, c)
			fn(c, lo, hi)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				c := int(next.Add(1)) - 1
				if c >= nc {
					return
				}
				lo, hi := ChunkBounds(n, c)
				fn(c, lo, hi)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// For runs fn(lo, hi) over the deterministic chunking of [0, n) on up to
// o.Workers() goroutines. Use it when iterations write disjoint outputs and
// no reduction is needed.
func For(o Opts, n int, fn func(lo, hi int)) error {
	return ForChunks(o, n, func(_, lo, hi int) { fn(lo, hi) })
}

// MapReduce runs mapChunk over every chunk of [0, n) in parallel, then
// merges the per-chunk accumulators in chunk order, which keeps
// floating-point reductions bit-identical at any parallelism level. newAcc
// allocates one accumulator (called once per chunk); merge folds src into
// dst. The merged result is the chunk-0 accumulator. When n == 0 it returns
// a fresh accumulator.
func MapReduce[T any](o Opts, n int, newAcc func() T, mapChunk func(acc T, c, lo, hi int), merge func(dst, src T)) (T, error) {
	nc := NumChunks(n)
	if nc == 0 {
		return newAcc(), o.Err()
	}
	accs := make([]T, nc)
	err := ForChunks(o, n, func(c, lo, hi int) {
		accs[c] = newAcc()
		mapChunk(accs[c], c, lo, hi)
	})
	if err != nil {
		var zero T
		return zero, err
	}
	for c := 1; c < nc; c++ {
		merge(accs[0], accs[c])
	}
	return accs[0], nil
}
