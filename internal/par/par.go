package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lesm/internal/obs"
)

// Opts selects the execution policy an engine call runs under.
type Opts struct {
	// P is the maximum number of concurrent workers; <= 0 means
	// runtime.GOMAXPROCS(0).
	P int
	// Ctx cancels work between chunks; nil means context.Background().
	Ctx context.Context
	// Obs, when non-nil, receives one PoolStats per parallel pass
	// (chunk wait/exec latencies, pass wall time). The nil path costs
	// a single pointer check per pass; timing never influences chunk
	// boundaries or execution order, so determinism is unaffected.
	Obs obs.PoolObserver
}

// Workers resolves P to the effective worker count.
func (o Opts) Workers() int {
	if o.P > 0 {
		return o.P
	}
	return runtime.GOMAXPROCS(0)
}

// Context resolves Ctx, defaulting to context.Background().
func (o Opts) Context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// Err reports the cancellation state without doing any work.
func (o Opts) Err() error { return o.Context().Err() }

// Chunk-count policy. The number of chunks a range is split into depends
// only on the item count n — never on P — so chunk boundaries, and with
// them the grouping of floating-point additions in ordered reductions, are
// identical at any parallelism level.
//
// The policy is n-dependent so large inputs expose enough chunks to keep
// >16-core machines busy, while the MaxChunks ceiling bounds the memory
// spent on per-chunk accumulators (at most MaxChunks live copies; CATHY's
// E-step scratch, for example, is O(topics x nodes) per chunk):
//
//	n < MinChunks             -> n chunks (one item each)
//	otherwise                 -> clamp(n/MinChunkItems, MinChunks, MaxChunks)
const (
	// MinChunks is the chunk-count floor for ranges of at least MinChunks
	// items; smaller ranges get one chunk per item.
	MinChunks = 16
	// MinChunkItems is the target number of items per chunk once the floor
	// is exceeded; more chunks than n/MinChunkItems would spend more time
	// on scheduling and accumulator merging than on work.
	MinChunkItems = 8
	// MaxChunks is the ceiling on the chunk count, bounding per-chunk
	// accumulator memory and reduction cost. It is the effective worker
	// ceiling for very large inputs.
	MaxChunks = 256
)

// NumChunks returns the number of chunks the policy above assigns to n
// items. It is a pure function of n, never of P.
func NumChunks(n int) int {
	if n <= 0 {
		return 0
	}
	if n < MinChunks {
		return n
	}
	c := n / MinChunkItems
	if c < MinChunks {
		c = MinChunks
	}
	if c > MaxChunks {
		c = MaxChunks
	}
	return c
}

// NumChunksCapped is NumChunks clamped to at most max chunks, for engines
// whose per-chunk accumulators are too large for the default policy
// (CATHY's E-step scratch, STROD's vocabulary-sized moment accumulators,
// the Gibbs samplers' delta tables). Like NumChunks it is a pure function
// of n — the cap must be a constant or itself n-derived, never P-derived,
// or determinism is lost. Pair it with ForChunksN / MapReduceN.
func NumChunksCapped(n, max int) int {
	nc := NumChunks(n)
	if nc > max {
		nc = max
	}
	return nc
}

// The collapsed-Gibbs sampler chunk policy, shared by internal/lda and
// internal/tng: clamp(n/SamplerMinItems, 1, SamplerMaxChunks), lowered
// further until the per-chunk accumulators fit SamplerCellBudget.
// Deliberately coarser than the default policy, for two reasons.
// Statistically, counts are stale across chunks within a sweep (the
// AD-LDA trade), so fewer/bigger chunks keep a sampler closer to fully
// collapsed Gibbs — and the small corpora where staleness hurts most are
// exactly the ones that get few chunks. In memory, each chunk carries
// count-delta tables of O(cells) ints, so the chunk ceiling bounds the
// live table count while still exposing 64-way parallelism for corpora of
// 2048+ documents, and the cell budget (~0.5 GB of ints when saturated)
// makes a huge vocabulary shed parallelism instead of multiplying the
// serial sampler's memory.
const (
	// SamplerMinItems is the target documents per sampler chunk.
	SamplerMinItems = 32
	// SamplerMaxChunks caps the sampler chunk count (and with it the
	// number of live delta tables).
	SamplerMaxChunks = 64
	// SamplerCellBudget caps the total delta-table cells across chunks.
	SamplerCellBudget = 1 << 26
)

// SamplerChunks returns the sampler policy's chunk count for n documents
// whose per-chunk accumulators hold cells cells each. Like NumChunks it is
// a pure function of the problem shape, never of P — the determinism
// contract's requirement. Pair it with ForChunksN.
func SamplerChunks(n, cells int) int {
	nc := n / SamplerMinItems
	if nc < 1 {
		nc = 1
	}
	if nc > SamplerMaxChunks {
		nc = SamplerMaxChunks
	}
	if cells > 0 {
		if byMem := SamplerCellBudget / cells; nc > byMem {
			nc = byMem
			if nc < 1 {
				nc = 1
			}
		}
	}
	return nc
}

// ChunkBounds returns the half-open item range [lo, hi) of chunk c of n
// items under the default NumChunks policy. Chunks differ in size by at
// most one item.
func ChunkBounds(n, c int) (lo, hi int) {
	return ChunkBoundsN(n, NumChunks(n), c)
}

// ChunkBoundsN returns the half-open item range [lo, hi) of chunk c when n
// items are split into nc chunks. Chunks differ in size by at most one
// item. The intermediate products run in 64 bits so corpus-scale n cannot
// overflow on 32-bit platforms.
func ChunkBoundsN(n, nc, c int) (lo, hi int) {
	return int(int64(c) * int64(n) / int64(nc)), int(int64(c+1) * int64(n) / int64(nc))
}

// ForChunks splits [0, n) into the deterministic chunking of NumChunks /
// ChunkBounds and calls fn(c, lo, hi) once per chunk on up to o.Workers()
// goroutines. fn must only touch state that is disjoint per chunk (or per
// item). Cancellation is checked between chunks; ForChunks returns the
// context error if the run was cut short, in which case some chunks may not
// have executed.
func ForChunks(o Opts, n int, fn func(c, lo, hi int)) error {
	return ForChunksN(o, n, NumChunks(n), fn)
}

// ForChunksN is ForChunks with an explicit chunk count nc, for callers
// whose per-chunk accumulators are too large for the default policy (the
// Gibbs samplers cap nc to bound their delta count tables). nc is clamped
// to [1, n]; it must be a pure function of n (never of P) or determinism
// is lost.
func ForChunksN(o Opts, n, nc int, fn func(c, lo, hi int)) error {
	if n <= 0 {
		return o.Err()
	}
	if nc > n {
		nc = n
	}
	if nc < 1 {
		nc = 1
	}
	ctx := o.Context()
	w := o.Workers()
	if w > nc {
		w = nc
	}
	// The observed path lives in its own function: forChunksRun's fn must
	// stay single-assignment, because a variable that is both reassigned and
	// captured by the worker closures is forced into a heap cell on every
	// call — charging even the unobserved serial path one allocation per
	// pass (the Gibbs sweep loops are gated to zero by
	// TestNilRecorderSweepAllocFree).
	if o.Obs != nil {
		return forChunksObserved(o, ctx, n, nc, w, fn)
	}
	return forChunksRun(ctx, n, nc, w, fn)
}

// forChunksObserved wraps fn with per-chunk timing and emits one PoolStats
// when the pass finishes (including a cancelled pass: the partial timings
// are still a faithful record of what ran). Wait is the delay from pass
// start to a chunk's dequeue — on the serial path that degenerates to
// cumulative position, which is exactly the head-of-line delay a chunk
// experienced.
func forChunksObserved(o Opts, ctx context.Context, n, nc, w int, fn func(c, lo, hi int)) error {
	start := time.Now()
	var waitNS, execNS atomic.Int64
	defer func() {
		o.Obs.RecordPool(obs.PoolStats{
			Chunks: nc, Workers: w,
			Wait: time.Duration(waitNS.Load()),
			Exec: time.Duration(execNS.Load()),
			Wall: time.Since(start),
		})
	}()
	return forChunksRun(ctx, n, nc, w, func(c, lo, hi int) {
		t0 := time.Now()
		waitNS.Add(int64(t0.Sub(start)))
		fn(c, lo, hi)
		execNS.Add(int64(time.Since(t0)))
	})
}

// forChunksRun executes the pass. fn is deliberately a parameter and never
// reassigned, so the worker closures capture it by value and the serial
// path performs no allocation.
func forChunksRun(ctx context.Context, n, nc, w int, fn func(c, lo, hi int)) error {
	if w <= 1 {
		for c := 0; c < nc; c++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			lo, hi := ChunkBoundsN(n, nc, c)
			fn(c, lo, hi)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				c := int(next.Add(1)) - 1
				if c >= nc {
					return
				}
				lo, hi := ChunkBoundsN(n, nc, c)
				fn(c, lo, hi)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// For runs fn(lo, hi) over the deterministic chunking of [0, n) on up to
// o.Workers() goroutines. Use it when iterations write disjoint outputs and
// no reduction is needed.
func For(o Opts, n int, fn func(lo, hi int)) error {
	return ForChunks(o, n, func(_, lo, hi int) { fn(lo, hi) })
}

// MapReduce runs mapChunk over every chunk of [0, n) in parallel, then
// merges the per-chunk accumulators in chunk order, which keeps
// floating-point reductions bit-identical at any parallelism level. newAcc
// allocates one accumulator (called once per chunk); merge folds src into
// dst. The merged result is the chunk-0 accumulator. When n == 0 it returns
// a fresh accumulator.
func MapReduce[T any](o Opts, n int, newAcc func() T, mapChunk func(acc T, c, lo, hi int), merge func(dst, src T)) (T, error) {
	return MapReduceN(o, n, NumChunks(n), newAcc, mapChunk, merge)
}

// MapReduceN is MapReduce with an explicit chunk count nc, for callers
// whose accumulators are too large for the default policy (CATHY's E-step
// scratch and STROD's vocabulary-sized moment accumulators cap nc to bound
// the number of live copies). nc is clamped to [1, n]; it must be a pure
// function of n (never of P) or determinism is lost.
func MapReduceN[T any](o Opts, n, nc int, newAcc func() T, mapChunk func(acc T, c, lo, hi int), merge func(dst, src T)) (T, error) {
	if n <= 0 {
		return newAcc(), o.Err()
	}
	if nc > n {
		nc = n
	}
	if nc < 1 {
		nc = 1
	}
	accs := make([]T, nc)
	err := ForChunksN(o, n, nc, func(c, lo, hi int) {
		accs[c] = newAcc()
		mapChunk(accs[c], c, lo, hi)
	})
	if err != nil {
		var zero T
		return zero, err
	}
	for c := 1; c < nc; c++ {
		merge(accs[0], accs[c])
	}
	return accs[0], nil
}
