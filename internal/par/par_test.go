package par

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"lesm/internal/obs"
)

func TestChunkBoundsCoverRange(t *testing.T) {
	for _, n := range []int{0, 1, 2, 15, 16, 17, 100, 1000, 1001} {
		nc := NumChunks(n)
		covered := 0
		prev := 0
		for c := 0; c < nc; c++ {
			lo, hi := ChunkBounds(n, c)
			if lo != prev {
				t.Fatalf("n=%d chunk %d: lo=%d, want %d", n, c, lo, prev)
			}
			if hi < lo {
				t.Fatalf("n=%d chunk %d: hi=%d < lo=%d", n, c, hi, lo)
			}
			covered += hi - lo
			prev = hi
		}
		if covered != n {
			t.Fatalf("n=%d: chunks cover %d items", n, covered)
		}
	}
}

// TestNumChunksPolicy pins the n-dependent chunk-count policy: one chunk
// per item below the floor, then n/MinChunkItems clamped to
// [MinChunks, MaxChunks]. The count is a pure function of n — there is no
// P anywhere in the signature — which is what keeps chunk boundaries (and
// ordered reductions) identical at every parallelism level.
func TestNumChunksPolicy(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 0},
		{1, 1},
		{15, 15},
		{16, MinChunks},
		{100, MinChunks},
		{MinChunks * MinChunkItems, MinChunks},
		{1000, 125},
		{MaxChunks * MinChunkItems, MaxChunks},
		{1 << 20, MaxChunks},
	} {
		if got := NumChunks(tc.n); got != tc.want {
			t.Fatalf("NumChunks(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	// Scaling past the old 16-chunk ceiling: a large input must expose
	// enough chunks to keep a >16-core machine busy.
	if got := NumChunks(10000); got <= 16 {
		t.Fatalf("NumChunks(10000) = %d, want > 16", got)
	}
	// Monotone non-decreasing, so growing inputs never lose parallelism.
	prev := 0
	for n := 0; n <= 4096; n++ {
		if c := NumChunks(n); c < prev {
			t.Fatalf("NumChunks not monotone at n=%d: %d < %d", n, c, prev)
		} else {
			prev = c
		}
	}
}

func TestForChunksNCoversRangeWithExplicitCount(t *testing.T) {
	for _, tc := range []struct{ n, nc int }{
		{100, 7}, {100, 1}, {100, 1000}, {7, 3}, {1, 5},
	} {
		seen := make([]int32, tc.n)
		var mu sync.Mutex
		maxChunk := -1
		err := ForChunksN(Opts{P: 4}, tc.n, tc.nc, func(c, lo, hi int) {
			mu.Lock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
			if c > maxChunk {
				maxChunk = c
			}
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d nc=%d: index %d visited %d times", tc.n, tc.nc, i, c)
			}
		}
		wantChunks := tc.nc
		if wantChunks > tc.n {
			wantChunks = tc.n
		}
		if maxChunk != wantChunks-1 {
			t.Fatalf("n=%d nc=%d: max chunk index %d, want %d", tc.n, tc.nc, maxChunk, wantChunks-1)
		}
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, p := range []int{1, 2, 8, 33} {
		const n = 977
		seen := make([]int32, n)
		var mu sync.Mutex
		err := For(Opts{P: p}, n, func(lo, hi int) {
			mu.Lock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("P=%d: index %d visited %d times", p, i, c)
			}
		}
	}
}

// TestMapReduceDeterministicAcrossP is the load-bearing property: a
// floating-point reduction must be bit-identical at every parallelism level.
func TestMapReduceDeterministicAcrossP(t *testing.T) {
	const n = 10000
	xs := make([]float64, n)
	for i := range xs {
		// Values spread over magnitudes so summation order matters.
		xs[i] = 1.0 / float64(1+i*i%977)
	}
	sum := func(p int) float64 {
		s, err := MapReduce(Opts{P: p}, n,
			func() *float64 { f := 0.0; return &f },
			func(acc *float64, _, lo, hi int) {
				for i := lo; i < hi; i++ {
					*acc += xs[i]
				}
			},
			func(dst, src *float64) { *dst += *src })
		if err != nil {
			t.Fatal(err)
		}
		return *s
	}
	want := sum(1)
	for _, p := range []int{2, 3, 8, 64} {
		if got := sum(p); got != want {
			t.Fatalf("P=%d: sum %v != P=1 sum %v", p, got, want)
		}
	}
}

func TestCancelledContextReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	var mu sync.Mutex
	start := time.Now()
	err := For(Opts{P: 4, Ctx: ctx}, 1<<20, func(lo, hi int) {
		mu.Lock()
		ran++
		mu.Unlock()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// An already-cancelled context must not start every chunk; with P=4 at
	// most a few chunks can slip in before the workers observe the cancel.
	if ran >= NumChunks(1<<20) {
		t.Fatalf("all %d chunks ran despite cancelled context", ran)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancelled For did not return promptly")
	}
}

func TestMidFlightCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	err := ForChunks(Opts{P: 2, Ctx: ctx}, 1000, func(c, lo, hi int) {
		once.Do(cancel) // cancel from inside the first chunk that runs
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestOptsDefaults(t *testing.T) {
	var o Opts
	if o.Workers() < 1 {
		t.Fatalf("Workers() = %d", o.Workers())
	}
	if o.Context() == nil || o.Err() != nil {
		t.Fatal("default context should be non-nil and live")
	}
}

// TestNumChunksCappedSmallN pins the cap's behavior on serving-sized
// inputs: when n is below the cap (tiny /infer batches) the cap must not
// inflate the chunk count, and n == 0 must stay 0 — a request with no
// documents schedules no work.
func TestNumChunksCappedSmallN(t *testing.T) {
	for _, tc := range []struct{ n, cap, want int }{
		{0, 64, 0},
		{0, 1, 0},
		{1, 64, 1},
		{3, 64, 3},
		{15, 64, 15},
		{15, 4, 4},
		{16, 64, 16},
		{200, 64, 25}, // NumChunks(200) = 25, under the cap
		{10000, 64, 64},
		{10000, 1, 1},
	} {
		if got := NumChunksCapped(tc.n, tc.cap); got != tc.want {
			t.Fatalf("NumChunksCapped(%d, %d) = %d, want %d", tc.n, tc.cap, got, tc.want)
		}
	}
}

// TestChunkBoundsNTinyRanges covers the n < nc and n == 0 corners the
// serving path hits with tiny batches: every chunking must still partition
// [0, n) exactly, and empty ranges must yield only empty chunks.
func TestChunkBoundsNTinyRanges(t *testing.T) {
	for _, tc := range []struct{ n, nc int }{
		{0, 1}, {0, 4}, {1, 1}, {1, 4}, {2, 7}, {3, 64}, {5, 5}, {7, 3},
	} {
		prev := 0
		for c := 0; c < tc.nc; c++ {
			lo, hi := ChunkBoundsN(tc.n, tc.nc, c)
			if lo != prev || hi < lo || hi > tc.n {
				t.Fatalf("ChunkBoundsN(%d, %d, %d) = [%d, %d), prev end %d", tc.n, tc.nc, c, lo, hi, prev)
			}
			prev = hi
		}
		if prev != tc.n {
			t.Fatalf("n=%d nc=%d: chunks cover %d items", tc.n, tc.nc, prev)
		}
	}
}

// TestForChunksNEmptyAndTiny: n == 0 runs nothing (and still reports
// cancellation); n < nc clamps to one chunk per item.
func TestForChunksNEmptyAndTiny(t *testing.T) {
	calls := 0
	if err := ForChunksN(Opts{}, 0, 64, func(c, lo, hi int) { calls++ }); err != nil || calls != 0 {
		t.Fatalf("n=0: calls=%d err=%v", calls, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForChunksN(Opts{Ctx: ctx}, 0, 4, func(c, lo, hi int) {}); err == nil {
		t.Fatal("n=0 with cancelled ctx should surface the context error")
	}
	var mu sync.Mutex
	seen := map[int]int{}
	if err := ForChunksN(Opts{P: 8}, 3, 64, func(c, lo, hi int) {
		mu.Lock()
		for i := lo; i < hi; i++ {
			seen[i]++
		}
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 1 || seen[1] != 1 || seen[2] != 1 {
		t.Fatalf("n<nc visit counts = %v", seen)
	}
}

// poolCollector records every PoolStats a pass emits.
type poolCollector struct {
	mu    sync.Mutex
	stats []obs.PoolStats
}

func (p *poolCollector) RecordPool(s obs.PoolStats) {
	p.mu.Lock()
	p.stats = append(p.stats, s)
	p.mu.Unlock()
}

// TestForChunksPoolObserver: an attached observer receives exactly one
// PoolStats per pass, carrying the pass's chunk and worker counts and
// non-negative latencies, on both the serial and the parallel path — and
// the observer never changes which chunks run or their boundaries.
func TestForChunksPoolObserver(t *testing.T) {
	for _, p := range []int{1, 4} {
		pc := &poolCollector{}
		var mu sync.Mutex
		bounds := map[int][2]int{}
		if err := ForChunksN(Opts{P: p, Obs: pc}, 100, 8, func(c, lo, hi int) {
			mu.Lock()
			bounds[c] = [2]int{lo, hi}
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
		if len(pc.stats) != 1 {
			t.Fatalf("P=%d: observer got %d PoolStats, want 1", p, len(pc.stats))
		}
		s := pc.stats[0]
		if s.Chunks != 8 {
			t.Fatalf("P=%d: Chunks = %d, want 8", p, s.Chunks)
		}
		wantW := p
		if s.Workers != wantW {
			t.Fatalf("P=%d: Workers = %d, want %d", p, s.Workers, wantW)
		}
		if s.Wait < 0 || s.Exec < 0 || s.Wall <= 0 {
			t.Fatalf("P=%d: nonsensical latencies %+v", p, s)
		}
		if len(bounds) != 8 {
			t.Fatalf("P=%d: %d chunks ran, want 8", p, len(bounds))
		}
		for c := 0; c < 8; c++ {
			lo, hi := ChunkBoundsN(100, 8, c)
			if bounds[c] != [2]int{lo, hi} {
				t.Fatalf("P=%d chunk %d: bounds %v, want [%d %d]", p, c, bounds[c], lo, hi)
			}
		}
	}
}

// TestForChunksPoolObserverCancelled: a cancelled pass still emits its
// PoolStats — the partial timings are a faithful record of what ran.
func TestForChunksPoolObserverCancelled(t *testing.T) {
	pc := &poolCollector{}
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := ForChunksN(Opts{P: 1, Ctx: ctx, Obs: pc}, 100, 8, func(c, lo, hi int) {
		ran++
		if c == 2 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 3 {
		t.Fatalf("chunks run before cancellation = %d, want 3", ran)
	}
	if len(pc.stats) != 1 {
		t.Fatalf("cancelled pass emitted %d PoolStats, want 1", len(pc.stats))
	}
}
