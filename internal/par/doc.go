// Package par is the shared parallel runtime of the mining engines: a
// bounded worker pool with deterministic chunked execution, ordered
// reduction, and context-based cancellation. It is the scalability
// substrate behind the paper's corpus-scale ambitions (Chapter 7).
//
// Every engine in the repo (CATHY EM, STROD moment accumulation, ToPMine
// mining and segmentation, TPFG message passing, the PhraseLDA Gibbs
// sweeps, relcrf mini-batch training) funnels its hot loops through this
// package. The central guarantee is determinism: a range of n items is
// always split into the same chunks regardless of how many workers execute
// them — the chunk count is n-dependent but P-independent (NumChunks) —
// and reductions merge per-chunk accumulators in chunk order.
// Floating-point results are therefore bit-identical at any parallelism
// level, the invariant the engines' same-seed reproducibility tests rely
// on. Large inputs expose up to MaxChunks (256) chunks, so machines well
// past 16 cores keep scaling.
package par
