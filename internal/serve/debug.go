package serve

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// registerDebug mounts the Go debug surface on the serving mux:
// net/http/pprof under /debug/pprof/ and the expvar JSON dump at
// /debug/vars. Gated behind Options.Pprof because the endpoints expose
// goroutine stacks, heap contents, and the process command line — they
// are admin-scoped, not public. With the gate off, nothing registers and
// the paths 404 like any other unknown route.
//
// The handlers are registered explicitly rather than through the
// packages' init side effects on http.DefaultServeMux, which the server
// never serves.
func registerDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
}
