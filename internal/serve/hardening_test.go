package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lesm/internal/store"
)

// TestPanicRecovery: a panicking handler must answer 500 (JSON error
// body), bump lesmd_panics_total, record its request exactly once, and
// leave the server fully serving — one bad request cannot take the
// daemon down.
func TestPanicRecovery(t *testing.T) {
	s, err := New(testSnapshot(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	before := s.metrics.routes["healthz"].requests.Load()
	h := s.instrument("healthz", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal server error") {
		t.Fatalf("panic response body: %s", rec.Body.String())
	}
	if got := s.metrics.panics.Load(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}
	if got := s.metrics.routes["healthz"].requests.Load() - before; got != 1 {
		t.Fatalf("panicking request recorded %d times, want exactly 1", got)
	}

	// The counter is on /metrics and the server still serves normally.
	mrec := s.serveOnce(t, http.MethodGet, "/metrics", nil)
	if !strings.Contains(mrec.Body.String(), "lesmd_panics_total 1") {
		t.Fatalf("lesmd_panics_total missing from /metrics:\n%s", mrec.Body.String())
	}
	if rec := s.serveOnce(t, http.MethodGet, "/topics", nil); rec.Code != http.StatusOK {
		t.Fatalf("server broken after a recovered panic: %d", rec.Code)
	}

	// A handler that already wrote its response still gets its panic
	// recovered, without a second (impossible) status write.
	h = s.instrument("healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		panic("after headers")
	})
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status rewritten after headers: %d", rec.Code)
	}
	if got := s.metrics.panics.Load(); got != 2 {
		t.Fatalf("panics counter = %d, want 2", got)
	}

	// http.ErrAbortHandler is net/http's own silent-abort sentinel: it
	// must pass through un-recovered and un-counted.
	h = s.instrument("healthz", func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	})
	func() {
		defer func() {
			if r := recover(); r != http.ErrAbortHandler {
				t.Fatalf("recovered %v, want ErrAbortHandler to re-panic", r)
			}
		}()
		h(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/healthz", nil))
	}()
	if got := s.metrics.panics.Load(); got != 2 {
		t.Fatalf("ErrAbortHandler counted as a panic: %d", got)
	}
}

// TestReloadBackoff: a persistently broken snapshot must not be decoded
// on every poll tick. With exponential backoff (doubling up to 32x the
// interval), the failure count over a window stays far below the tick
// count; a repaired file still gets picked up, and the cadence resets.
func TestReloadBackoff(t *testing.T) {
	path := t.TempDir() + "/model.lesm"
	if err := store.Write(path, testSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	s, err := New(testSnapshot(t), Options{SnapshotPath: path, ReloadPoll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Replace the good file with a corrupt one: its stamp differs from
	// lastStamp on every tick (a failed reload never updates the stamp),
	// so each non-skipped tick pays a full decode attempt.
	if err := writeCorrupt(path); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.reloadFailures.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if s.metrics.reloadFailures.Load() == 0 {
		t.Fatal("poller never attempted the corrupt replacement")
	}

	// ~150 further poll intervals against a file that fails every decode.
	// Without backoff that is ~150 more failures; with it, attempts land
	// at exponentially spreading ticks — a dozen at most even when every
	// tick fires on schedule.
	base := s.metrics.reloadFailures.Load()
	time.Sleep(300 * time.Millisecond)
	fails := s.metrics.reloadFailures.Load() - base
	if fails > 20 {
		t.Fatalf("reloadFailures grew by %d over ~150 ticks: backoff not limiting retries", fails)
	}

	// Repair the file: the poller must still pick it up (the backoff skips
	// ticks, it never stops) and swap the artifact in.
	if err := store.Write(path, altSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for s.Generation() == 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := s.Generation(); g != 2 {
		t.Fatalf("repaired snapshot never loaded: gen = %d", g)
	}

	// Success reset the cadence: the next breakage is noticed at full poll
	// speed (well inside the 64ms a still-backed-off poller would wait).
	fails = s.metrics.reloadFailures.Load()
	if err := writeCorrupt(path); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for s.metrics.reloadFailures.Load() == fails && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if s.metrics.reloadFailures.Load() == fails {
		t.Fatal("poller never re-attempted after a successful reload")
	}
}
