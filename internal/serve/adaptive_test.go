package serve

import (
	"net/http"
	"runtime"
	"testing"
	"time"
)

// TestEwmaWindowTracksArrivals: unit contract of the adaptive window. It
// starts at the configured bound (fixed-flag semantics until traffic
// arrives), shrinks toward windowFactor× the observed inter-arrival gap
// under fast traffic, clamps at the floor, and decays back to the bound
// across idle ticks.
func TestEwmaWindowTracksArrivals(t *testing.T) {
	const bound = 64 * time.Millisecond
	e := newEwmaWindow(bound)
	if w := e.current(); w != bound {
		t.Fatalf("fresh window = %s, want the bound %s", w, bound)
	}

	// A steady 1ms-gap stream: the EWMA converges to ~1ms, so the window
	// settles near 4ms — well under the bound, at least the floor.
	now := time.Unix(0, 0)
	for i := 0; i < 200; i++ {
		now = now.Add(time.Millisecond)
		e.observe(now)
	}
	w := e.current()
	if w >= bound/2 {
		t.Fatalf("window did not adapt down: %s (bound %s)", w, bound)
	}
	if w < e.floor {
		t.Fatalf("window %s below floor %s", w, e.floor)
	}

	// A zero-gap burst drives the estimate to the floor, never below.
	for i := 0; i < 200; i++ {
		e.observe(now)
	}
	if w := e.current(); w != e.floor {
		t.Fatalf("burst window = %s, want the floor %s", w, e.floor)
	}

	// Idle decay: the first tick only marks the stream idle; consecutive
	// ticks relax the estimate multiplicatively back to the bound.
	e.decay()
	if w := e.current(); w != e.floor {
		t.Fatalf("first idle tick already decayed: %s", w)
	}
	// The zero-gap burst drove the estimate many orders of magnitude below
	// the floor; doubling per tick needs a few hundred ticks to climb all
	// the way back.
	for i := 0; i < 300; i++ {
		e.decay()
	}
	if w := e.current(); w != bound {
		t.Fatalf("decayed window = %s, want back at the bound %s", w, bound)
	}

	// An arrival resets idleness: the next single tick must not decay.
	e.observe(now.Add(time.Millisecond))
	e.decay()
	post := e.current()
	e.decay()
	if w := e.current(); w < post {
		t.Fatalf("window decayed below its pre-tick value: %s < %s", w, post)
	}

	// Gaps saturate at the bound: one quiet hour must not blow the EWMA
	// past what the clamp discards — a few fast arrivals right after still
	// pull the window down quickly.
	e2 := newEwmaWindow(bound)
	e2.observe(now)
	e2.observe(now.Add(time.Hour))
	if w := e2.current(); w != bound {
		t.Fatalf("idle-gap window = %s, want clamped to bound %s", w, bound)
	}
}

// TestAdaptiveWindowServesAndConverges: end-to-end over the wire — with
// AdaptiveWindow on, coalesced /infer traffic serves correctly and the
// effective window (surfaced as a gauge on /metrics) tightens below the
// configured bound after a fast request stream.
func TestAdaptiveWindowServesAndConverges(t *testing.T) {
	const bound = time.Second
	ts, _ := newTestServerPair(t, Options{
		BatchWindow: bound, AdaptiveWindow: true, MaxBatchDocs: 64,
	})
	for i := 0; i < 30; i++ {
		status, _ := postInfer(t, ts.URL, inferBody(t, int64(i), [][]int{{0, 1, 2}}, 2))
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
	}
	got := scrape(t, ts.URL)
	w := got[`lesmd_infer_batch_window_seconds`]
	if w <= 0 || w >= bound.Seconds() {
		t.Fatalf("effective window = %gs after a fast stream, want in (0, %gs)", w, bound.Seconds())
	}
}

// TestCloseStopsAdaptiveAndMetricsCollectors is the satellite goroutine
// lifecycle check: the EWMA decay ticker and the runtime-metrics collector
// both ride Server.Close — no goroutine survives it.
func TestCloseStopsAdaptiveAndMetricsCollectors(t *testing.T) {
	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	s, err := New(testSnapshot(t), Options{
		BatchWindow: 2 * time.Millisecond, AdaptiveWindow: true,
		RouteTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drive the live machinery (collector observes arrivals, ticker runs,
	// metrics collector runs) without any network goroutines.
	for i := 0; i < 3; i++ {
		rec := s.serveOnce(t, http.MethodPost, "/infer", inferBody(t, int64(i), [][]int{{0, 1, 2}}, 3))
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	if rec := s.serveOnce(t, http.MethodGet, "/metrics", nil); rec.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rec.Code)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked after Close: %d > baseline %d\n%s",
			n, baseline, buf[:runtime.Stack(buf, true)])
	}
}
