// Black-box serving harness: everything in this file goes through the
// public fit/persist surface (package lesm) and the HTTP surface
// (serve.Handler over httptest) — no internal state. It is the PR-5
// acceptance harness: every route answers over a really-fitted snapshot,
// and concurrent /infer traffic across hot-reload swaps sees zero 5xx and
// bit-deterministic theta per artifact generation.
package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lesm"
	"lesm/internal/serve"
	"lesm/internal/store"
)

// fitArtifact fits a tiny two-cluster corpus end to end (hierarchy,
// phrases, Gibbs topics, advisor) and returns the persistable artifact.
// The Gibbs seed differentiates refits.
func fitArtifact(t testing.TB, gibbsSeed int64) *lesm.Artifact {
	t.Helper()
	corpus := lesm.NewCorpus()
	a := []string{"query", "processing", "index", "database", "storage", "engine"}
	b := []string{"neural", "network", "learning", "gradient", "descent", "training"}
	for i := 0; i < 30; i++ {
		corpus.AddTokens(append(append([]string{}, a...), a[:3]...))
		corpus.AddTokens(append(append([]string{}, b...), b[:3]...))
	}
	h, err := lesm.BuildTextHierarchy(corpus, lesm.HierarchyOptions{K: 2, Levels: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lesm.AttachPhrases(corpus, nil, h, lesm.PhraseOptions{MinSupport: 5, TopN: 8}); err != nil {
		t.Fatal(err)
	}
	topics, err := lesm.InferTopicsGibbs(corpus, 2, gibbsSeed)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := lesm.MineAdvisorTree([]lesm.RelPaper{
		{Year: 2001, Authors: []int{0, 1}},
		{Year: 2002, Authors: []int{0, 1, 2}},
		{Year: 2004, Authors: []int{1, 2}},
	}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	return &lesm.Artifact{
		Hierarchy:   h,
		Topics:      topics,
		Vocab:       corpus.Vocab,
		Corpus:      lesm.NewCorpusMeta(corpus),
		RolePhrases: lesm.RolePhrasesOf(h),
		Advisor:     adv,
	}
}

func mustGet(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func mustPost(t *testing.T, url string, body []byte) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServingEndToEnd is the full production-shaped loop: fit → Save →
// mmap-load → serve (coalescing on) → exercise every route → hammer
// /infer from concurrent clients while hot-reload swaps land, asserting
// zero 5xx and per-generation deterministic outputs.
func TestServingEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.lesm")
	artA := fitArtifact(t, 11)
	if err := lesm.Save(path, artA); err != nil {
		t.Fatal(err)
	}

	snap, err := store.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(snap, serve.Options{
		SnapshotPath: path,
		MMap:         true,
		BatchWindow:  2 * time.Millisecond,
		MaxBatchDocs: 16,
		MaxInFlight:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	// --- every route answers over the fitted snapshot ---
	h := mustGet(t, ts.URL+"/healthz")
	if h["status"] != "ok" || h["generation"].(float64) != 1 {
		t.Fatalf("healthz = %v", h)
	}
	if len(h["sections"].([]any)) != 6 {
		t.Fatalf("sections = %v", h["sections"])
	}
	if got := mustGet(t, ts.URL+"/topics"); len(got["topics"].([]any)) != 2 {
		t.Fatalf("topics = %v", got)
	}
	words := mustGet(t, ts.URL+"/topics/0/top-words?n=4")["words"].([]any)
	if len(words) != 4 || words[0].(map[string]any)["word"] == "" {
		t.Fatalf("top-words = %v", words)
	}
	root := mustGet(t, ts.URL+"/hierarchy/node/o")
	if root["path"] != "o" {
		t.Fatalf("root node = %v", root)
	}
	if hits := mustGet(t, ts.URL+"/phrases/search?q=que")["hits"].([]any); len(hits) == 0 {
		t.Fatal("phrase search found nothing for 'que'")
	}
	if adv := mustGet(t, ts.URL+"/advisor/2"); adv["advisor"] == nil {
		t.Fatalf("advisor = %v", adv)
	}
	// Entity search over the fitted snapshot: a typo'd word resolves
	// fuzzily, and /entity composes the profile in one response.
	if hits := mustGet(t, ts.URL+"/search?q=databse")["hits"].([]any); len(hits) == 0 ||
		hits[0].(map[string]any)["name"] != "database" {
		t.Fatalf("fuzzy /search over fitted snapshot: %v", hits)
	}
	ent := mustGet(t, ts.URL+"/entity/query")
	if ent["resolved"].(map[string]any)["kind"] != "word" || ent["topic_mixture"] == nil {
		t.Fatalf("entity profile = %v", ent)
	}
	byDocs := mustPost(t, ts.URL+"/infer", []byte(`{"seed":3,"docs":[["query","processing","index"],["gradient","descent"]]}`))
	theta := byDocs["theta"].([]any)
	if len(theta) != 2 {
		t.Fatalf("theta = %v", theta)
	}

	// --- per-generation determinism probes ---
	probe := []byte(`{"seed":42,"ids":[[0,1,2,3],[7,8,9]],"sweeps":20}`)
	thetaOf := func() (string, uint64) {
		out := mustPost(t, ts.URL+"/infer", probe)
		b, _ := json.Marshal(out["theta"])
		return string(b), uint64(out["generation"].(float64))
	}
	tA, gen := thetaOf()
	if gen != 1 {
		t.Fatalf("probe generation = %d", gen)
	}
	artB := fitArtifact(t, 77) // a refit with a different Gibbs trajectory
	if err := lesm.Save(path, artB); err != nil {
		t.Fatal(err)
	}
	if out := mustPost(t, ts.URL+"/admin/reload", nil); out["reloaded"] != true {
		t.Fatalf("reload = %v", out)
	}
	tB, gen := thetaOf()
	if gen != 2 {
		t.Fatalf("post-reload probe generation = %d", gen)
	}

	// --- the reload race ---
	// A writer alternates refits (A at odd generations, B at even) through
	// atomic snapshot replaces + forced reloads while clients hammer
	// /infer and readers sweep the structure routes. The black-box
	// contract under the race: zero non-200 anywhere, and every /infer
	// response's theta is exactly the one its reported generation's
	// artifact produces.
	const (
		clients   = 4
		perClient = 30
		reloads   = 20
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient+reloads+64)
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			// Generation 2 (pre-race) is fit B; the race keeps alternating
			// A, B, A, ... so odd generations always serve A and even ones B.
			art := artB
			if (i % 2) == 0 {
				art = artA
			}
			if err := lesm.Save(path, art); err != nil {
				errs <- err
				return
			}
			resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("reload %d: status %d", i, resp.StatusCode)
			}
			resp.Body.Close()
			time.Sleep(2 * time.Millisecond)
		}
	}()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) { // infer clients
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(probe))
				if err != nil {
					errs <- err
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d: /infer status %d during reload race", c, resp.StatusCode)
					resp.Body.Close()
					continue
				}
				var out map[string]any
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					errs <- err
					resp.Body.Close()
					continue
				}
				resp.Body.Close()
				b, _ := json.Marshal(out["theta"])
				gen := uint64(out["generation"].(float64))
				// Generations 1, 3, 5, ... serve fit A; 2, 4, 6, ... fit B
				// (the writer alternates B, A, B, ... from generation 3).
				want := tA
				if gen%2 == 0 {
					want = tB
				}
				if string(b) != want {
					errs <- fmt.Errorf("client %d: generation %d answered a different theta than its artifact", c, gen)
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() { // structure reader
		defer wg.Done()
		urls := []string{ts.URL + "/healthz", ts.URL + "/topics", ts.URL + "/topics/1/top-words?n=3",
			ts.URL + "/hierarchy/node/o", ts.URL + "/phrases/search?q=e", ts.URL + "/advisor/1",
			ts.URL + "/search?q=trainng", ts.URL + "/entity/network",
			ts.URL + "/metrics"}
		for i := 0; i < 60; i++ {
			resp, err := http.Get(urls[i%len(urls)])
			if err != nil {
				errs <- err
				continue
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: status %d during reload race", urls[i%len(urls)], resp.StatusCode)
			}
			resp.Body.Close()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The final generation count reflects every successful swap.
	h = mustGet(t, ts.URL+"/healthz")
	if got := uint64(h["generation"].(float64)); got != 2+reloads {
		t.Fatalf("final generation = %d, want %d", got, 2+reloads)
	}

	// --- observability over the public surface ---
	// /metrics serves Prometheus text format and survived the storm with
	// the generation gauge tracking the final swap.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`lesmd_http_requests_total{route="infer"}`,
		"lesmd_http_request_duration_seconds_bucket",
		fmt.Sprintf("lesmd_reload_generation %d", 2+reloads),
		fmt.Sprintf("lesmd_reloads_total %d", 1+reloads),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition lacks %q", want)
		}
	}

	// Conditional GET over the public surface: the current generation's
	// tag revalidates to a 304; any earlier one gets a full 200 with the
	// current tag.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/topics", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	tag := resp.Header.Get("ETag")
	if want := fmt.Sprintf(`"gen-%d"`, 2+reloads); tag != want {
		t.Fatalf("post-race ETag = %q, want %q", tag, want)
	}
	req.Header.Set("If-None-Match", tag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("current-tag revalidation: status %d, want 304", resp.StatusCode)
	}
	req.Header.Set("If-None-Match", `"gen-1"`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") != tag {
		t.Fatalf("stale-tag revalidation: status %d etag %q", resp.StatusCode, resp.Header.Get("ETag"))
	}
}

// TestEntitySearchAcrossHotReload verifies over the public surface that
// the search index is rebuilt on every snapshot swap: a name only the
// replacement snapshot carries becomes resolvable exactly when the
// generation bumps, and the replaced name stops matching.
func TestEntitySearchAcrossHotReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.lesm")
	if err := lesm.Save(path, fitArtifact(t, 11)); err != nil {
		t.Fatal(err)
	}
	snap, err := store.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(snap, serve.Options{SnapshotPath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	ent := mustGet(t, ts.URL+"/entity/training")
	if ent["resolved"].(map[string]any)["kind"] != "word" || ent["generation"].(float64) != 1 {
		t.Fatalf("generation 1 entity = %v", ent)
	}

	// Replace one vocabulary word on disk and hot-reload.
	snap2, err := store.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range snap2.Vocab {
		if w == "training" {
			snap2.Vocab[i] = "quantum"
		}
	}
	if err := store.Write(path, snap2); err != nil {
		t.Fatal(err)
	}
	if out := mustPost(t, ts.URL+"/admin/reload", nil); out["reloaded"] != true {
		t.Fatalf("reload = %v", out)
	}

	ent = mustGet(t, ts.URL+"/entity/quantum")
	if ent["resolved"].(map[string]any)["name"] != "quantum" || ent["generation"].(float64) != 2 {
		t.Fatalf("generation 2 entity = %v", ent)
	}
	// The replaced word's vocabulary entry left the index with its
	// generation ("training" can still match phrase displays, which kept
	// the token — but no word entry may remain).
	for _, h := range mustGet(t, ts.URL+"/search?q=training")["hits"].([]any) {
		if m := h.(map[string]any); m["kind"] == "word" {
			t.Fatalf("replaced vocabulary word still indexed: %v", m)
		}
	}
}
