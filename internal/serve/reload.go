package serve

// Snapshot hot-reload.
//
// A refit goes live with zero downtime: the new snapshot is decoded and
// validated off to the side, a fresh artifact (vocab index, fold-in model
// with precomputed alias tables, hierarchy index, phrase index, advisor
// predictions) is built from it, and one atomic pointer swap publishes it.
// Handlers load the artifact pointer exactly once per request, so requests
// in flight across the swap finish on the artifact they started with and
// every response is internally consistent with a single generation.
//
// The generation contract: generations are assigned 1, 2, 3, ... in swap
// order; every /infer response and /healthz report carries the generation
// it answered from; identical requests answered by the same generation are
// bit-identical. Reload never blocks queries — a failed reload leaves the
// current artifact serving and surfaces the error on /healthz.

import (
	"errors"
	"io"
	"net/http"
	"os"
	"time"

	"lesm/internal/store"
)

// fileStamp is the cheap change detector for the polled snapshot file.
// store.Write lands snapshots by atomic rename, which refreshes mtime, so
// (size, mtime) is a reliable edge; /admin/reload force-reloads for the
// paranoid cases (sub-granularity mtime, same-size rewrite with a backdated
// clock).
type fileStamp struct {
	size  int64
	mtime int64 // UnixNano
}

func stampPath(path string) (fileStamp, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return fileStamp{}, err
	}
	return fileStamp{size: fi.Size(), mtime: fi.ModTime().UnixNano()}, nil
}

// Reload validates snap, builds its artifact and swaps it in as the next
// generation. On error the current artifact keeps serving. closer, when
// non-nil, is the snapshot's backing mapping; the server adopts it and
// releases it on Close.
func (s *Server) Reload(snap *store.Snapshot, closer io.Closer) error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	return s.reloadLocked(snap, closer)
}

func (s *Server) reloadLocked(snap *store.Snapshot, closer io.Closer) error {
	a, err := buildArtifact(snap, s.opt, s.nextGen+1, closer)
	if err != nil {
		return err
	}
	s.nextGen++
	// A successful swap clears any standing reload_error, whatever path
	// set it — the poller, /admin/reload, or a direct Reload call. This
	// is the ONE place the error is cleared: a reload that did not happen
	// (poller no-op tick) must not wipe an operator-visible failure.
	s.reloadErr.Store("")
	s.metrics.reloads.Add(1)
	old := s.cur.Swap(a)
	// Retire the replaced artifact's mapping instead of closing it: an
	// in-flight request that loaded the old pointer may still be reading
	// mapped memory. Retired mappings cost address space, not resident
	// memory, and are released in Close.
	if old != nil && old.closer != nil {
		s.mu.Lock()
		s.retired = append(s.retired, old.closer)
		s.mu.Unlock()
	}
	return nil
}

// ReloadFromPath reloads Options.SnapshotPath if its file stamp changed
// since the last load (or unconditionally with force). It reports whether
// a swap happened. Decode errors leave the current artifact serving.
func (s *Server) ReloadFromPath(force bool) (bool, error) {
	path := s.opt.SnapshotPath
	if path == "" {
		return false, errors.New("serve: no snapshot path configured")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	st, err := stampPath(path)
	if err != nil {
		return false, err
	}
	if !force && st == s.lastStamp {
		return false, nil
	}
	snap, closer, err := LoadSnapshot(path, s.opt.MMap)
	if err != nil {
		return false, err
	}
	if err := s.reloadLocked(snap, closer); err != nil {
		if closer != nil {
			closer.Close()
		}
		return false, err
	}
	s.lastStamp = st
	return true, nil
}

// LoadSnapshot reads a snapshot from disk, through the zero-copy mapping
// when mmap is set (the returned closer is then the mapping; nil for the
// heap path). It is the one load routine both the daemon's initial load
// (cmd/lesmd, which hands the closer to Server.AdoptCloser) and every
// hot reload go through, so the two can never diverge.
func LoadSnapshot(path string, mmap bool) (*store.Snapshot, io.Closer, error) {
	if mmap {
		m, err := store.OpenMapped(path)
		if err != nil {
			return nil, nil, err
		}
		return m.Snapshot(), m, nil
	}
	snap, err := store.Read(path)
	if err != nil {
		return nil, nil, err
	}
	return snap, nil, nil
}

// pollReload is the background mtime/size poller: a refit written over the
// snapshot path (atomically — store.Write) goes live within one poll
// interval with no operator action. Errors never stop the poller or the
// server; the latest one is surfaced on /healthz as reload_error.
//
// Failures back off exponentially: a snapshot that stays broken (corrupt
// file, yanked volume) is retried every 2nd, 4th, ... up to every 32nd
// tick instead of burning a decode attempt — and an error-log line — per
// interval. One success resets the cadence. The stamp check makes an
// unchanged-but-broken file cheap to skip anyway, but a *corrupt* file is
// re-decoded every non-skipped tick (its stamp never graduates to
// lastStamp), which is exactly the expensive case the backoff bounds.
func (s *Server) pollReload() {
	defer s.bg.Done()
	t := time.NewTicker(s.opt.ReloadPoll)
	defer t.Stop()
	failures, skip := 0, 0
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			if skip > 0 {
				skip--
				continue
			}
			// Success (including the did-nothing kind) does not touch
			// reloadErr here — only an actual swap clears it, in
			// reloadLocked, so a standing failure stays visible on
			// /healthz until a reload really lands.
			if _, err := s.ReloadFromPath(false); err != nil {
				s.reloadErr.Store(err.Error())
				s.metrics.reloadFailures.Add(1)
				if failures < 5 {
					failures++
				}
				skip = 1<<failures - 1 // 1, 3, 7, 15, then 31 skipped ticks
			} else {
				failures = 0
			}
		}
	}
}

// handleAdminReload is POST /admin/reload: an unconditional synchronous
// reload of the configured snapshot path, for operators who just landed a
// refit and do not want to wait out the poll interval (or who run without
// a poller).
func (s *Server) handleAdminReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.opt.SnapshotPath == "" {
		writeErr(w, http.StatusConflict, "no snapshot path configured (start the server with a snapshot path to enable reload)")
		return
	}
	reloaded, err := s.ReloadFromPath(true)
	if err != nil {
		s.reloadErr.Store(err.Error())
		s.metrics.reloadFailures.Add(1)
		writeErr(w, http.StatusInternalServerError, "reload failed (still serving generation %d): %v", s.Generation(), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"reloaded": reloaded, "generation": s.Generation(),
	})
}
