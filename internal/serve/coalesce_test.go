package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"lesm/internal/store"
)

// inferBody builds a canonical /infer request body.
func inferBody(t testing.TB, seed int64, ids [][]int, sweeps int) []byte {
	t.Helper()
	m := map[string]any{"seed": seed, "ids": ids}
	if sweeps > 0 {
		m["sweeps"] = sweeps
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// postInfer posts an /infer body and returns (status, decoded response).
func postInfer(t testing.TB, url string, body []byte) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	return resp.StatusCode, out
}

// thetaJSON canonicalizes a response's theta for bit-identity comparison.
func thetaJSON(t testing.TB, out map[string]any) string {
	t.Helper()
	b, err := json.Marshal(out["theta"])
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCoalescedMatchesDirect is the coalescer's headline contract: merging
// concurrent /infer requests into one fold-in batch must return every
// request exactly the bytes the un-coalesced path returns, at P=1 and
// P=8, for heterogeneous seeds and sweep counts.
func TestCoalescedMatchesDirect(t *testing.T) {
	reqs := [][]byte{
		inferBody(t, 7, [][]int{{0, 1, 2, 3}, {5, 7, 8}}, 0),
		inferBody(t, 99, [][]int{{9, 9, 9}, {}}, 5),
		inferBody(t, 7, [][]int{{4, 4, 1, 6}}, 12),
		inferBody(t, 1, [][]int{{0, 42, 3}}, 0),
	}
	for _, p := range []int{1, 8} {
		direct := newTestServer(t, Options{P: p})
		want := make([]string, len(reqs))
		for i, b := range reqs {
			status, out := postInfer(t, direct.URL, b)
			if status != http.StatusOK {
				t.Fatalf("direct request %d: status %d", i, status)
			}
			want[i] = thetaJSON(t, out)
		}

		// MaxInFlight 1 plus a held slot forces every request into one
		// merged batch — the group-commit path the test exists for.
		co, cs := newTestServerPair(t, Options{P: p, BatchWindow: time.Second, MaxBatchDocs: 64, MaxInFlight: 1})
		cs.inferSem <- struct{}{}
		got := make([]string, len(reqs))
		var wg sync.WaitGroup
		for i, b := range reqs {
			wg.Add(1)
			go func(i int, b []byte) {
				defer wg.Done()
				status, out := postInfer(t, co.URL, b)
				if status != http.StatusOK {
					t.Errorf("coalesced request %d: status %d (%v)", i, status, out)
					return
				}
				got[i] = thetaJSON(t, out)
			}(i, b)
		}
		time.Sleep(100 * time.Millisecond) // let all four park in the forming batch
		<-cs.inferSem                      // free the slot: the batch group-commits
		wg.Wait()
		if batches := cs.inferBatches.Load(); batches != 1 {
			t.Fatalf("P=%d: %d batches for 4 requests parked behind one slot, want 1 merged batch", p, batches)
		}
		for i := range reqs {
			if got[i] != want[i] {
				t.Fatalf("P=%d request %d: coalesced theta differs from direct:\n%s\n%s", p, i, got[i], want[i])
			}
		}
	}
}

// TestCoalescerBatchOfOne: a lone request in its window still completes,
// bit-identical to the direct path, and counts as one batch.
func TestCoalescerBatchOfOne(t *testing.T) {
	body := inferBody(t, 11, [][]int{{0, 1, 2}}, 0)
	direct := newTestServer(t, Options{})
	_, dout := postInfer(t, direct.URL, body)

	ts, _ := newTestServerPair(t, Options{BatchWindow: 20 * time.Millisecond})
	status, out := postInfer(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if thetaJSON(t, out) != thetaJSON(t, dout) {
		t.Fatal("batch-of-1 theta differs from direct path")
	}
	h := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if int(h["infer_batches"].(float64)) != 1 || int(h["infer_requests"].(float64)) != 1 {
		t.Fatalf("counters = %v / %v", h["infer_batches"], h["infer_requests"])
	}
}

// TestCoalescerFullRequestSkipsWindow: a request that alone fills
// MaxBatchDocs must close its batch immediately even when no pool slot is
// free — with a prohibitive 30s window, only the cap trigger can have
// dispatched it.
func TestCoalescerFullRequestSkipsWindow(t *testing.T) {
	ts, s := newTestServerPair(t, Options{BatchWindow: 30 * time.Second, MaxBatchDocs: 2, MaxInFlight: 1})
	s.inferSem <- struct{}{} // no slot free: group commit cannot trigger
	done := make(chan string, 1)
	go func() {
		status, out := postInfer(t, ts.URL, inferBody(t, 3, [][]int{{0, 1}, {5, 6}}, 4))
		done <- fmt.Sprintf("%d %v", status, out["generation"])
	}()
	// The cap-filling request must be dispatched (queued on the slot)
	// without waiting out the window.
	deadline := time.Now().Add(5 * time.Second)
	for s.inferBatches.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if s.inferBatches.Load() == 0 {
		t.Fatal("cap-filling request waited for the window instead of dispatching")
	}
	<-s.inferSem // free the slot so the parked batch can run
	select {
	case got := <-done:
		if !strings.HasPrefix(got, "200 ") {
			t.Fatalf("full request answered %s", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dispatched batch never answered")
	}
}

// TestCoalescerOverflowSpills: requests that jointly exceed MaxBatchDocs
// split across batches at a request boundary — never inside a request —
// and every response stays correct.
func TestCoalescerOverflowSpills(t *testing.T) {
	body := [][]byte{
		inferBody(t, 5, [][]int{{0, 1}, {2, 3}}, 6),
		inferBody(t, 6, [][]int{{5, 6}, {7, 8}}, 6),
		inferBody(t, 7, [][]int{{0, 9}, {4, 4}}, 6),
	}
	direct := newTestServer(t, Options{})
	want := make([]string, len(body))
	for i, b := range body {
		_, out := postInfer(t, direct.URL, b)
		want[i] = thetaJSON(t, out)
	}

	// Cap of 4 docs behind a held slot: three 2-doc requests merge until
	// 2+2 fills the first batch; the third would overflow it and must
	// spill whole into a second batch.
	ts, s := newTestServerPair(t, Options{BatchWindow: 30 * time.Second, MaxBatchDocs: 4, MaxInFlight: 1})
	s.inferSem <- struct{}{}
	var wg sync.WaitGroup
	got := make([]string, len(body))
	for i, b := range body {
		wg.Add(1)
		go func(i int, b []byte) {
			defer wg.Done()
			status, out := postInfer(t, ts.URL, b)
			if status != http.StatusOK {
				t.Errorf("request %d: status %d", i, status)
				return
			}
			got[i] = thetaJSON(t, out)
		}(i, b)
	}
	// Both batches exist before any sampling ran (the slot is held): the
	// full one dispatched on the cap, the spilled one is still forming.
	deadline := time.Now().Add(5 * time.Second)
	for s.inferBatches.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	<-s.inferSem
	wg.Wait()
	for i := range body {
		if got[i] != want[i] {
			t.Fatalf("request %d: spilled batch theta differs from direct", i)
		}
	}
	if batches := s.inferBatches.Load(); batches != 2 {
		t.Fatalf("overflow did not spill: %d batches for 6 docs at cap 4", batches)
	}
}

// TestCoalescerCancelledMemberLeavesBatchmates: cancelling one member of a
// forming batch must not perturb the others — they still answer 200 with
// the exact direct-path theta.
func TestCoalescerCancelledMemberLeavesBatchmates(t *testing.T) {
	keep := inferBody(t, 21, [][]int{{0, 1, 3}, {5, 7}}, 8)
	direct := newTestServer(t, Options{})
	_, dout := postInfer(t, direct.URL, keep)
	want := thetaJSON(t, dout)

	// A held slot parks both members in the same forming batch; the doomed
	// one is cancelled before the batch can run.
	ts, s := newTestServerPair(t, Options{BatchWindow: 30 * time.Second, MaxBatchDocs: 64, MaxInFlight: 1})
	s.inferSem <- struct{}{}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(2)
	cancelled := make(chan error, 1)
	surviving := make(chan string, 1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/infer",
			bytes.NewReader(inferBody(t, 22, [][]int{{6, 8, 9}}, 8)))
		req.Header.Set("Content-Type", "application/json")
		_, err := http.DefaultClient.Do(req)
		cancelled <- err
	}()
	go func() {
		defer wg.Done()
		time.Sleep(50 * time.Millisecond) // after the doomed member parked
		status, out := postInfer(t, ts.URL, keep)
		if status != http.StatusOK {
			t.Errorf("surviving member: status %d (%v)", status, out)
			return
		}
		surviving <- thetaJSON(t, out)
	}()
	time.Sleep(150 * time.Millisecond) // both members are in the batch
	cancel()
	if err := <-cancelled; err == nil {
		t.Fatal("cancelled member's client saw a response")
	}
	<-s.inferSem // release the slot: the batch runs without the doomed member
	wg.Wait()
	select {
	case got := <-surviving:
		if got != want {
			t.Error("surviving member's theta perturbed by cancelled batchmate")
		}
	default:
		// surviving goroutine already reported its error
	}
}

// TestCoalescerShutdownDrains: jobs parked in an open window are failed
// with 503 (not leaked, not left hanging) when the server shuts down, and
// Close returns with all background goroutines gone.
func TestCoalescerShutdownDrains(t *testing.T) {
	s, err := New(testSnapshot(t), Options{BatchWindow: 30 * time.Second, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.inferSem <- struct{}{} // hold the slot so the job stays parked in its window
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	got := make(chan int, 1)
	go func() {
		status, _ := postInfer(t, ts.URL, inferBody(t, 1, [][]int{{0, 1}}, 3))
		got <- status
	}()
	// Let the job get parked in the collector's (long) window, then close.
	time.Sleep(150 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case status := <-got:
		if status != http.StatusServiceUnavailable {
			t.Fatalf("parked job answered %d on shutdown, want 503", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked job still hanging after Close")
	}
}

// TestCloseReleasesGoroutines is the stdlib goroutine leak check for the
// whole background machinery: coalescer collector, batch runners and the
// reload poller must all exit on ctx cancel / Close.
func TestCloseReleasesGoroutines(t *testing.T) {
	// Settle and measure the baseline.
	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	path := t.TempDir() + "/model.lesm"
	if err := store.Write(path, testSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s, err := New(testSnapshot(t), Options{
		BatchWindow:    2 * time.Millisecond,
		AdaptiveWindow: true, // its decay ticker must ride the same lifecycle
		RouteTimeout:   time.Second,
		SnapshotPath:   path,
		ReloadPoll:     2 * time.Millisecond,
		Ctx:            ctx,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drive coalesced inference and reloads through the live machinery
	// without any network goroutines.
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/infer", bytes.NewReader(inferBody(t, int64(i), [][]int{{0, 1, 2}}, 3)))
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("admin reload: status %d (%s)", rec.Code, rec.Body.String())
	}

	// Satellite contract: ctx cancel alone must drain the coalescer and
	// poller (Close additionally releases mappings).
	cancel()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked after ctx cancel: %d > baseline %d\n%s",
			n, baseline, buf[:runtime.Stack(buf, true)])
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
