package serve

import (
	"net/http"
	"testing"
)

// getStatus GETs a path and returns only the status code — the debug
// routes' bodies (pprof HTML, expvar JSON) are not worth parsing here.
func getStatus(t testing.TB, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestPprofGating locks the admin-scoped debug surface: with Options.Pprof
// the pprof index and expvar are served; without it (the default) the
// routes do not exist — 404, not 403, so the closed state is
// indistinguishable from a server that never had the feature.
func TestPprofGating(t *testing.T) {
	for _, tc := range []struct {
		name string
		on   bool
		want int
	}{
		{"enabled", true, http.StatusOK},
		{"disabled", false, http.StatusNotFound},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ts := newTestServer(t, Options{Pprof: tc.on})
			for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/vars"} {
				if got := getStatus(t, ts.URL+path); got != tc.want {
					t.Errorf("GET %s with Pprof=%v: status %d, want %d", path, tc.on, got, tc.want)
				}
			}
			// The regular API is unaffected either way.
			if got := getStatus(t, ts.URL+"/healthz"); got != http.StatusOK {
				t.Errorf("GET /healthz: status %d", got)
			}
		})
	}
}

// TestMetricsSamplerFamilies: the fold-in sampler feeds the Recorder-backed
// counters, so after /infer traffic the scrape exposes non-zero sampler and
// pool telemetry, plus the Go runtime basics. Exact token accounting:
// the fold-in records len(toks) x (sweeps+1) tokens per request (the +1 is
// the deterministic init pass).
func TestMetricsSamplerFamilies(t *testing.T) {
	ts := newTestServer(t, Options{})
	postJSON(t, ts.URL+"/infer", map[string]any{"seed": 1, "ids": [][]int{{0, 1, 2}}, "sweeps": 3}, http.StatusOK)
	postJSON(t, ts.URL+"/infer", map[string]any{"seed": 2, "ids": [][]int{{5, 6}, {7}}, "sweeps": 4}, http.StatusOK)

	got := scrape(t, ts.URL)
	if v := got[`lesmd_sampler_records_total`]; v != 2 {
		t.Errorf("sampler_records_total = %g, want 2", v)
	}
	want := float64(3*(3+1) + 3*(4+1)) // 3 tokens x 4 passes + 3 tokens x 5 passes
	if v := got[`lesmd_sampler_tokens_total`]; v != want {
		t.Errorf("sampler_tokens_total = %g, want %g", v, want)
	}
	if v := got[`lesmd_pool_passes_total`]; v <= 0 {
		t.Errorf("pool_passes_total = %g, want > 0", v)
	}
	// Presence-only families: their values depend on the sampler core and
	// the runtime, but a scrape must always carry them.
	for _, key := range []string{
		`lesmd_sampler_changed_total`,
		`lesmd_sampler_proposals_total{proposal="word"}`,
		`lesmd_sampler_proposals_total{proposal="doc"}`,
		`lesmd_sampler_accepts_total{proposal="word"}`,
		`lesmd_sampler_accepts_total{proposal="doc"}`,
		`lesmd_sampler_alias_rebuilds_total`,
		`lesmd_sampler_alias_rebuild_seconds_total`,
		`lesmd_pool_wait_seconds_total`,
		`lesmd_pool_exec_seconds_total`,
	} {
		if _, ok := got[key]; !ok {
			t.Errorf("scrape missing %s", key)
		}
	}
	// Go runtime basics.
	if v := got[`go_goroutines`]; v <= 0 {
		t.Errorf("go_goroutines = %g, want > 0", v)
	}
	if v := got[`go_heap_bytes`]; v <= 0 {
		t.Errorf("go_heap_bytes = %g, want > 0", v)
	}
	if _, ok := got[`go_gc_pause_seconds_total`]; !ok {
		t.Error("scrape missing go_gc_pause_seconds_total")
	}
}
