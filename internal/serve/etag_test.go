package serve

import (
	"bytes"
	"io"
	"net/http"
	"testing"
)

// structureRoutes are the immutable-content routes that carry the
// generation ETag and honor If-None-Match.
var structureRoutes = []string{
	"/topics",
	"/topics/0/top-words?n=3",
	"/hierarchy/node/o/1",
	"/phrases/search?q=query",
	"/advisor/1",
}

// condProbe GETs url with an optional If-None-Match and returns the
// status, the response ETag, and the body length.
func condProbe(t testing.TB, url, inm string) (status int, etag string, bodyLen int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("ETag"), len(body)
}

// TestConditionalGETServesAndRevalidates pins the ETag contract on every
// structure route: the tag is the snapshot generation, If-None-Match
// revalidation returns a body-free 304, and non-matching or absent
// validators return full 200s.
func TestConditionalGETServesAndRevalidates(t *testing.T) {
	ts := newTestServer(t, Options{})
	for _, route := range structureRoutes {
		url := ts.URL + route
		status, etag, n := condProbe(t, url, "")
		if status != http.StatusOK || etag != `"gen-1"` {
			t.Fatalf("%s: status %d etag %q, want 200 %q", route, status, etag, `"gen-1"`)
		}
		if n == 0 {
			t.Fatalf("%s: empty 200 body", route)
		}
		// Matching validator: 304 with the tag and no body.
		status, etag, n = condProbe(t, url, `"gen-1"`)
		if status != http.StatusNotModified || n != 0 {
			t.Fatalf("%s If-None-Match match: status %d bodyLen %d, want 304 empty", route, status, n)
		}
		if etag != `"gen-1"` {
			t.Fatalf("%s 304 etag = %q", route, etag)
		}
		// Stale validator: full response.
		if status, _, n = condProbe(t, url, `"gen-0"`); status != http.StatusOK || n == 0 {
			t.Fatalf("%s stale validator: status %d bodyLen %d", route, status, n)
		}
		// Wildcard and weak-compare both revalidate; so does a list with
		// the tag buried in it.
		for _, inm := range []string{"*", `W/"gen-1"`, `"other", "gen-1"`} {
			if status, _, _ = condProbe(t, url, inm); status != http.StatusNotModified {
				t.Fatalf("%s If-None-Match %q: status %d, want 304", route, inm, status)
			}
		}
	}
}

// TestConditionalGETAcrossReload: a hot reload bumps the generation, so
// cached gen-1 responses revalidate to full 200s carrying the new tag,
// and the new tag then 304s.
func TestConditionalGETAcrossReload(t *testing.T) {
	ts, s := newTestServerPair(t, Options{})
	for _, route := range structureRoutes {
		if status, _, _ := condProbe(t, ts.URL+route, `"gen-1"`); status != http.StatusNotModified {
			t.Fatalf("%s pre-reload: status %d, want 304", route, status)
		}
	}
	if err := s.Reload(altSnapshot(t), nil); err != nil {
		t.Fatal(err)
	}
	for _, route := range structureRoutes {
		url := ts.URL + route
		status, etag, n := condProbe(t, url, `"gen-1"`)
		if status != http.StatusOK || etag != `"gen-2"` || n == 0 {
			t.Fatalf("%s post-reload with stale tag: status %d etag %q bodyLen %d, want fresh 200 %q",
				route, status, etag, n, `"gen-2"`)
		}
		if status, _, _ = condProbe(t, url, `"gen-2"`); status != http.StatusNotModified {
			t.Fatalf("%s post-reload current tag: status %d, want 304", route, status)
		}
	}
}

// TestNoETagOnErrorsOrDynamicRoutes: error responses and the dynamic
// routes must not carry an entity tag — a cached 404 or a revalidated
// /healthz would be actively wrong.
func TestNoETagOnErrorsOrDynamicRoutes(t *testing.T) {
	ts := newTestServer(t, Options{})
	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/topics/9/top-words", http.StatusNotFound},
		{"/hierarchy/node/o/9", http.StatusNotFound},
		{"/advisor/99", http.StatusNotFound},
		{"/phrases/search", http.StatusBadRequest}, // missing q
		{"/healthz", http.StatusOK},
		{"/metrics", http.StatusOK},
	} {
		status, etag, _ := condProbe(t, ts.URL+tc.url, "")
		if status != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.url, status, tc.want)
		}
		if etag != "" {
			t.Fatalf("%s: unexpected ETag %q", tc.url, etag)
		}
	}
	// A 404 with a (stale-format) validator stays a 404 — the conditional
	// check must run only after the request resolves to servable content.
	if status, _, _ := condProbe(t, ts.URL+"/advisor/99", `"gen-1"`); status != http.StatusNotFound {
		t.Fatalf("validated 404 became %d", status)
	}
	// POST /infer is dynamic per-request content: no ETag.
	resp2, err := http.Post(ts.URL+"/infer", "application/json",
		bytes.NewReader(inferBody(t, 1, [][]int{{0, 1}}, 3)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("infer: status %d", resp2.StatusCode)
	}
	if resp2.Header.Get("ETag") != "" {
		t.Fatalf("infer response carries an ETag %q", resp2.Header.Get("ETag"))
	}
	resp, err := http.Get(ts.URL + "/topics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("ETag") == "" {
		t.Fatal("structure route lost its ETag after mixed traffic")
	}
}
