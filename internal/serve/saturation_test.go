package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"
)

// TestSaturationShedsAndRecovers is the overload lock-in, the acceptance
// test of the admission-control design: drive 4× the system capacity
// (MaxInFlight + MaxQueue) of concurrent /infer requests into a server
// whose in-flight slots are pinned busy, and require that
//
//   - exactly capacity requests are admitted — the queue is bounded;
//   - every excess request is shed deterministically with 503 and a
//     Retry-After header, before its body is even read;
//   - a mid-saturation /metrics scrape reports the exact shed count and
//     the exact admitted/in-flight/queue-depth gauges;
//   - once the slots free, every admitted request completes 200 — no
//     admitted request is ever failed by overload (zero 5xx on admitted);
//   - after the storm drains, the goroutine count returns to the
//     pre-storm baseline (nothing leaks per shed or per admitted request).
//
// Both /infer execution paths are exercised: direct and coalesced.
func TestSaturationShedsAndRecovers(t *testing.T) {
	const (
		inflight = 2
		queue    = 4
		capacity = inflight + queue
		total    = 4 * capacity
	)
	modes := []struct {
		name string
		opt  Options
	}{
		{"direct", Options{MaxInFlight: inflight, MaxQueue: queue}},
		{"coalesced", Options{MaxInFlight: inflight, MaxQueue: queue,
			BatchWindow: 30 * time.Second, MaxBatchDocs: 64}},
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			s, err := New(testSnapshot(t), mode.opt)
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())
			t.Cleanup(func() { ts.Close(); s.Close() })

			// Baseline with the server's own goroutines already running.
			runtime.GC()
			time.Sleep(50 * time.Millisecond)
			baseline := runtime.NumGoroutine()

			// Pin every in-flight slot busy: nothing admitted can complete
			// until we release, so admission fills to exactly capacity and
			// every further request must shed.
			for i := 0; i < inflight; i++ {
				s.inferSem <- struct{}{}
			}

			type result struct {
				status     int
				retryAfter string
			}
			results := make(chan result, total)
			for i := 0; i < total; i++ {
				go func(i int) {
					resp, err := http.Post(ts.URL+"/infer", "application/json",
						bytes.NewReader(inferBody(t, int64(i), [][]int{{0, 1, 2}}, 3)))
					if err != nil {
						t.Error(err)
						results <- result{}
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					results <- result{resp.StatusCode, resp.Header.Get("Retry-After")}
				}(i)
			}

			// While the slots are pinned, admitted requests cannot answer —
			// so the first total-capacity responses are exactly the sheds.
			for i := 0; i < total-capacity; i++ {
				r := <-results
				if r.status != http.StatusServiceUnavailable {
					t.Fatalf("shed response %d: status %d, want 503", i, r.status)
				}
				if r.retryAfter == "" {
					t.Fatalf("shed response %d carries no Retry-After", i)
				}
			}

			// Mid-saturation scrape: the sheds all happened (we hold their
			// responses) and the admitted set is pinned in place, so the
			// gauges are exact, not racy.
			got := scrape(t, ts.URL)
			if v := got[`lesmd_infer_shed_total`]; v != total-capacity {
				t.Errorf("shed_total = %g, want %d", v, total-capacity)
			}
			if v := got[`lesmd_infer_admitted`]; v != capacity {
				t.Errorf("admitted = %g, want %d (bounded queue overflowed)", v, capacity)
			}
			if v := got[`lesmd_infer_in_flight`]; v != inflight {
				t.Errorf("in_flight = %g, want %d", v, inflight)
			}
			if v := got[`lesmd_infer_queue_depth`]; v != queue {
				t.Errorf("queue_depth = %g, want %d", v, queue)
			}

			// Release the slots: every admitted request must now complete
			// 200 — admission never fails a request it accepted.
			for i := 0; i < inflight; i++ {
				<-s.inferSem
			}
			for i := 0; i < capacity; i++ {
				r := <-results
				if r.status != http.StatusOK {
					t.Fatalf("admitted request answered %d, want 200", r.status)
				}
			}

			got = scrape(t, ts.URL)
			if v := got[`lesmd_infer_admitted`]; v != 0 {
				t.Errorf("post-drain admitted = %g, want 0", v)
			}
			if v := got[`lesmd_infer_requests_total`]; v != capacity {
				t.Errorf("infer_requests_total = %g, want %d", v, capacity)
			}
			if v := got[`lesmd_http_requests_total{route="infer"}`]; v != total {
				t.Errorf("infer route requests = %g, want %d", v, total)
			}
			if v := got[`lesmd_http_errors_total{route="infer",code="503"}`]; v != total-capacity {
				t.Errorf("infer 503s = %g, want %d", v, total-capacity)
			}

			// Goroutine drain: the storm must leave nothing behind. Idle
			// keep-alive client conns hold goroutines on both ends; close
			// them before comparing.
			http.DefaultClient.CloseIdleConnections()
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
				runtime.GC()
				time.Sleep(10 * time.Millisecond)
			}
			if n := runtime.NumGoroutine(); n > baseline {
				buf := make([]byte, 1<<16)
				t.Fatalf("goroutines grew across the saturation storm: %d > baseline %d\n%s",
					n, baseline, buf[:runtime.Stack(buf, true)])
			}
		})
	}
}
