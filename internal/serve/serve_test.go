package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"lesm/internal/core"
	"lesm/internal/lda"
	"lesm/internal/store"
	"lesm/internal/tpfg"
)

// testSnapshot fits a real two-topic Gibbs model over a 10-word vocabulary
// and packages it with a hierarchy, role phrases and an advisor result.
func testSnapshot(t testing.TB) *store.Snapshot {
	t.Helper()
	vocab := []string{"query", "processing", "index", "database", "storage",
		"neural", "network", "learning", "gradient", "descent"}
	var docs [][]int
	for i := 0; i < 30; i++ {
		docs = append(docs, []int{0, 1, 2, 3, 4, 0, 1, 3}, []int{5, 6, 7, 8, 9, 5, 7, 8})
	}
	m, err := lda.Run(docs, len(vocab), lda.Config{K: 2, Seed: 3, Iters: 50})
	if err != nil {
		t.Fatal(err)
	}

	h := core.NewHierarchy()
	h.Root.Phi = map[core.TypeID][]float64{core.TermType: m.Phi[0]}
	a := h.Root.AddChild()
	b := h.Root.AddChild()
	a.Rho, b.Rho = 0.5, 0.5
	a.Phi = map[core.TypeID][]float64{core.TermType: m.Phi[0]}
	b.Phi = map[core.TypeID][]float64{core.TermType: m.Phi[1]}
	a.Phrases = []core.RankedPhrase{{Words: []int{0, 1}, Display: "query processing", Score: 3}}
	b.Phrases = []core.RankedPhrase{{Words: []int{6, 7}, Display: "network learning", Score: 2}}

	totalTokens := 0
	counts := make([]int, len(vocab))
	for _, d := range docs {
		totalTokens += len(d)
		for _, w := range d {
			counts[w]++
		}
	}
	return &store.Snapshot{
		Vocab:  vocab,
		Corpus: &store.CorpusMeta{NumDocs: len(docs), TotalTokens: totalTokens, WordCounts: counts},
		// Alpha is the *fitting* prior (50/K = 25); the server must not use
		// it for fold-in by default or short-doc theta goes near-uniform.
		Topics: &store.Topics{
			K: m.K, V: m.V, Weight: m.Rho, Phi: m.Phi,
			Alpha: m.Alpha, Beta: m.Beta, NKV: m.NKV, NK: m.NK,
		},
		Hierarchy: h,
		RolePhrases: []store.TopicPhrases{
			{Path: "o/1", Phrases: []core.RankedPhrase{{Words: []int{0, 1}, Display: "query processing", Score: 3}}},
			{Path: "o/2", Phrases: []core.RankedPhrase{{Words: []int{6, 7}, Display: "network learning", Score: 2}}},
		},
		Advisor: &store.Advisor{
			Net: &tpfg.Network{
				NumAuthors: 3,
				First:      []int{1995, 2003, 2004},
				Cands: [][]tpfg.Candidate{
					nil,
					{{Advisor: 0, Start: 2003, End: 2007, Local: 0.8}},
					{{Advisor: 0, Start: 2004, End: 2008, Local: 0.5}, {Advisor: 1, Start: 2005, End: 2008, Local: 0.4}},
				},
			},
			Rank: [][]float64{{1}, {0.2, 0.8}, {0.1, 0.6, 0.3}},
		},
	}
}

func newTestServer(t testing.TB, opt Options) *httptest.Server {
	t.Helper()
	ts, _ := newTestServerPair(t, opt)
	return ts
}

// newTestServerPair also returns the Server for tests that drive reloads
// or read internals. The HTTP listener is closed before the Server so no
// handler runs concurrently with Close.
func newTestServerPair(t testing.TB, opt Options) (*httptest.Server, *Server) {
	t.Helper()
	s, err := New(testSnapshot(t), opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts, s
}

func getJSON(t testing.TB, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
	return out
}

func postJSON(t testing.TB, url string, body any, wantStatus int) map[string]any {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: bad JSON: %v", url, err)
	}
	return out
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, Options{})
	got := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if got["status"] != "ok" {
		t.Fatalf("healthz = %v", got)
	}
	if int(got["topics"].(float64)) != 2 || int(got["vocab"].(float64)) != 10 {
		t.Fatalf("healthz counts = %v", got)
	}
	secs := got["sections"].([]any)
	if len(secs) != 6 {
		t.Fatalf("sections = %v", secs)
	}
}

func TestTopWords(t *testing.T) {
	ts := newTestServer(t, Options{})
	got := getJSON(t, ts.URL+"/topics/0/top-words?n=3", http.StatusOK)
	words := got["words"].([]any)
	if len(words) != 3 {
		t.Fatalf("words = %v", words)
	}
	first := words[0].(map[string]any)
	if first["word"] == "" || first["p"].(float64) <= 0 {
		t.Fatalf("first word = %v", first)
	}
	// n larger than the vocabulary clamps instead of failing.
	got = getJSON(t, ts.URL+"/topics/1/top-words?n=1000", http.StatusOK)
	if len(got["words"].([]any)) != 10 {
		t.Fatalf("clamped words = %d", len(got["words"].([]any)))
	}
	// The two fitted topics should surface different head words.
	w0 := getJSON(t, ts.URL+"/topics/0/top-words?n=1", http.StatusOK)["words"].([]any)[0].(map[string]any)["word"]
	w1 := getJSON(t, ts.URL+"/topics/1/top-words?n=1", http.StatusOK)["words"].([]any)[0].(map[string]any)["word"]
	if w0 == w1 {
		t.Fatalf("both topics head with %q", w0)
	}
	getJSON(t, ts.URL+"/topics/7/top-words", http.StatusNotFound)
	getJSON(t, ts.URL+"/topics/0/bogus", http.StatusNotFound)
	getJSON(t, ts.URL+"/topics/0/top-words?n=zap", http.StatusBadRequest)
}

func TestNewRejectsShapeInconsistentSnapshot(t *testing.T) {
	// CRC-valid but semantically broken: a rank vector shorter than the
	// candidate list + the no-advisor node. Must be a New error, not a
	// query-time panic.
	snap := testSnapshot(t)
	snap.Advisor.Rank[2] = []float64{0.5}
	if _, err := New(snap, Options{}); err == nil || !strings.Contains(err.Error(), "rank") {
		t.Fatalf("inconsistent advisor accepted: err = %v", err)
	}
	snap = testSnapshot(t)
	snap.Topics.NK = snap.Topics.NK[:1]
	if _, err := New(snap, Options{}); err == nil {
		t.Fatal("inconsistent topic counts accepted")
	}
}

func TestHierarchyNode(t *testing.T) {
	ts := newTestServer(t, Options{})
	got := getJSON(t, ts.URL+"/hierarchy/node/o/1", http.StatusOK)
	if got["path"] != "o/1" || got["parent"] != "o" {
		t.Fatalf("node = %v", got)
	}
	phrases := got["phrases"].([]any)
	if len(phrases) != 1 || phrases[0].(map[string]any)["display"] != "query processing" {
		t.Fatalf("phrases = %v", phrases)
	}
	// Dotted ids resolve to the same node; the root lists its children.
	if dotted := getJSON(t, ts.URL+"/hierarchy/node/o.1", http.StatusOK); dotted["path"] != "o/1" {
		t.Fatalf("dotted id = %v", dotted)
	}
	root := getJSON(t, ts.URL+"/hierarchy/node/o", http.StatusOK)
	if ch := root["children"].([]any); len(ch) != 2 || ch[0] != "o/1" {
		t.Fatalf("root children = %v", ch)
	}
	getJSON(t, ts.URL+"/hierarchy/node/o/9", http.StatusNotFound)
}

func TestPhraseSearch(t *testing.T) {
	ts := newTestServer(t, Options{})
	got := getJSON(t, ts.URL+"/phrases/search?q=PROCESSING", http.StatusOK)
	hits := got["hits"].([]any)
	if len(hits) != 1 {
		t.Fatalf("hits = %v", hits)
	}
	hit := hits[0].(map[string]any)
	if hit["display"] != "query processing" || hit["path"] != "o/1" {
		t.Fatalf("hit = %v", hit)
	}
	if empty := getJSON(t, ts.URL+"/phrases/search?q=zzz", http.StatusOK); len(empty["hits"].([]any)) != 0 {
		t.Fatalf("expected no hits: %v", empty)
	}
	getJSON(t, ts.URL+"/phrases/search", http.StatusBadRequest)
}

// TestPhraseSearchLimitValidation pins the limit contract: non-positive
// limits are client errors like any other bad query param (they used to be
// silently coerced to the default 20), boundary values behave, and an
// absent limit still means the default cap.
func TestPhraseSearchLimitValidation(t *testing.T) {
	ts := newTestServer(t, Options{})
	for _, bad := range []string{"-1", "0", "-999"} {
		got := getJSON(t, ts.URL+"/phrases/search?q=n&limit="+bad, http.StatusBadRequest)
		if msg, _ := got["error"].(string); !strings.Contains(msg, "must be positive") {
			t.Fatalf("limit=%s error = %v", bad, got)
		}
	}
	// limit=1 truncates to exactly one hit; a huge limit returns all.
	if one := getJSON(t, ts.URL+"/phrases/search?q=n&limit=1", http.StatusOK); len(one["hits"].([]any)) != 1 {
		t.Fatalf("limit=1 hits = %v", one["hits"])
	}
	if all := getJSON(t, ts.URL+"/phrases/search?q=n&limit=1000", http.StatusOK); len(all["hits"].([]any)) != 2 {
		t.Fatalf("limit=1000 hits = %v", all["hits"])
	}
	if def := getJSON(t, ts.URL+"/phrases/search?q=n", http.StatusOK); len(def["hits"].([]any)) != 2 {
		t.Fatalf("default-limit hits = %v", def["hits"])
	}
	getJSON(t, ts.URL+"/phrases/search?q=n&limit=zap", http.StatusBadRequest)
}

// TestPhraseSearchEmptyHitsShape pins the JSON shape of a no-hit response:
// "hits" must be the empty array, never null — clients range over it.
func TestPhraseSearchEmptyHitsShape(t *testing.T) {
	ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/phrases/search?q=zzz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"hits":[]`) {
		t.Fatalf("empty result did not serialize hits as []: %s", buf.String())
	}
}

// TestPhraseSearchCaseFolding is the regression test for the fold
// mismatch: the phrase index folded displays with strings.ToLower while
// tokenization folded with unicode case mapping — both keep the Greek
// final sigma apart from the medial form, so an uppercase query could
// miss a phrase it plainly names. Both sides now fold through
// textkit.Fold; an uppercase query must match a display holding 'ς'.
func TestPhraseSearchCaseFolding(t *testing.T) {
	snap := testSnapshot(t)
	snap.RolePhrases = append(snap.RolePhrases, store.TopicPhrases{
		Path:    "o/2",
		Phrases: []core.RankedPhrase{{Display: "Σίσυφος learning", Score: 1}},
	})
	s, err := New(snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	// "ΣΊΣΥΦΟΣ" lowercases to a trailing medial sigma while the display's
	// final sigma stays 'ς' — strings.ToLower on both sides never matches.
	got := getJSON(t, ts.URL+"/phrases/search?q="+url.QueryEscape("ΣΊΣΥΦΟΣ"), http.StatusOK)
	hits := got["hits"].([]any)
	if len(hits) != 1 || hits[0].(map[string]any)["display"] != "Σίσυφος learning" {
		t.Fatalf("folded query missed the phrase: %v", got)
	}
}

func TestAdvisor(t *testing.T) {
	ts := newTestServer(t, Options{})
	got := getJSON(t, ts.URL+"/advisor/2", http.StatusOK)
	if int(got["advisor"].(float64)) != 0 {
		t.Fatalf("advisor = %v", got)
	}
	if got["score"].(float64) != 0.6 {
		t.Fatalf("score = %v", got)
	}
	if cands := got["candidates"].([]any); len(cands) != 2 {
		t.Fatalf("candidates = %v", cands)
	}
	// Author 0 has no candidates: the virtual no-advisor node wins.
	got = getJSON(t, ts.URL+"/advisor/0", http.StatusOK)
	if int(got["advisor"].(float64)) != -1 {
		t.Fatalf("rootless author advisor = %v", got)
	}
	getJSON(t, ts.URL+"/advisor/99", http.StatusNotFound)
	getJSON(t, ts.URL+"/advisor/xyz", http.StatusNotFound)
}

// TestAdvisorNonNumericMessage pins the error for paths that never name an
// author index ("/advisor/3/x", "/advisor/smith"): still 404, but saying
// the id is not numeric instead of the misleading out-of-range bound.
func TestAdvisorNonNumericMessage(t *testing.T) {
	ts := newTestServer(t, Options{})
	for _, p := range []string{"/advisor/3/x", "/advisor/smith"} {
		got := getJSON(t, ts.URL+p, http.StatusNotFound)
		msg, _ := got["error"].(string)
		if !strings.Contains(msg, "not a numeric author id") {
			t.Fatalf("GET %s error = %q, want non-numeric message", p, msg)
		}
		if strings.Contains(msg, "out of range") {
			t.Fatalf("GET %s still reports out-of-range: %q", p, msg)
		}
	}
	// Genuinely numeric but out of range keeps the range message.
	got := getJSON(t, ts.URL+"/advisor/99", http.StatusNotFound)
	if msg, _ := got["error"].(string); !strings.Contains(msg, "out of range") {
		t.Fatalf("numeric out-of-range error = %q", msg)
	}
}

// TestAdvisorScoreWithDuplicateCandidates is the regression test for the
// score fallback: the handler used to rediscover the predicted advisor's
// rank by scanning the candidate list for a matching advisor id, so a
// duplicated candidate made the *last* duplicate's rank win — here 0.3
// instead of the argmax mass 0.6. The score must be the argmax entry of
// the rank vector itself.
func TestAdvisorScoreWithDuplicateCandidates(t *testing.T) {
	snap := testSnapshot(t)
	snap.Advisor = &store.Advisor{
		Net: &tpfg.Network{
			NumAuthors: 3,
			First:      []int{1995, 2003, 2004},
			Cands: [][]tpfg.Candidate{
				nil,
				{{Advisor: 0, Start: 2003, End: 2007}},
				// Author 0 appears twice (distinct candidate intervals).
				{{Advisor: 0, Start: 2004, End: 2006}, {Advisor: 0, Start: 2006, End: 2008}},
			},
		},
		Rank: [][]float64{{1}, {0.2, 0.8}, {0.1, 0.6, 0.3}},
	}
	s, err := New(snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	got := getJSON(t, ts.URL+"/advisor/2", http.StatusOK)
	if int(got["advisor"].(float64)) != 0 {
		t.Fatalf("advisor = %v", got)
	}
	if score := got["score"].(float64); score != 0.6 {
		t.Fatalf("score = %v, want the argmax mass 0.6 (duplicate-candidate scan reported the last match)", score)
	}
}

func TestInferTokensAndIDs(t *testing.T) {
	ts := newTestServer(t, Options{})
	byTokens := postJSON(t, ts.URL+"/infer", map[string]any{
		"seed": 7,
		"docs": [][]string{{"query", "processing", "database", "index"}, {"neural", "learning", "gradient"}},
	}, http.StatusOK)
	byIDs := postJSON(t, ts.URL+"/infer", map[string]any{
		"seed": 7,
		"ids":  [][]int{{0, 1, 3, 2}, {5, 7, 8}},
	}, http.StatusOK)
	if !reflect.DeepEqual(byTokens["theta"], byIDs["theta"]) {
		t.Fatalf("token and id requests disagree:\n%v\n%v", byTokens["theta"], byIDs["theta"])
	}
	theta := byTokens["theta"].([]any)
	d0 := theta[0].([]any)
	d1 := theta[1].([]any)
	// The two docs are from opposite topics: argmax must differ.
	if (d0[0].(float64) > d0[1].(float64)) == (d1[0].(float64) > d1[1].(float64)) {
		t.Fatalf("both docs landed on the same topic: %v %v", d0, d1)
	}
	// The default serving prior must keep short-document theta
	// evidence-driven: a clearly topical 4-token doc should be decisive,
	// not the near-uniform the fitted 50/K prior would force.
	peak := d0[0].(float64)
	if other := d0[1].(float64); other > peak {
		peak = other
	}
	if peak < 0.7 {
		t.Fatalf("default fold-in prior swamped the evidence: %v", d0)
	}
	// Unknown words are dropped, not an error.
	postJSON(t, ts.URL+"/infer", map[string]any{
		"seed": 1, "docs": [][]string{{"zzzz", "query"}},
	}, http.StatusOK)
}

func TestOptionsClampNegatives(t *testing.T) {
	// A negative MaxInFlight must not panic make(chan); negative sweeps
	// must not silently disable refinement.
	s, err := New(testSnapshot(t), Options{MaxInFlight: -1, Sweeps: -5, MaxQueue: -3, RouteTimeout: -time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if cap(s.inferSem) != 4 || s.opt.Sweeps != 30 {
		t.Fatalf("negative options not clamped: inflight=%d sweeps=%d", cap(s.inferSem), s.opt.Sweeps)
	}
	if s.opt.MaxQueue != 64 || s.opt.RouteTimeout != 0 {
		t.Fatalf("negative traffic options not clamped: queue=%d timeout=%s", s.opt.MaxQueue, s.opt.RouteTimeout)
	}
	s2, err := New(testSnapshot(t), Options{Sweeps: 99999})
	if err != nil || s2.opt.Sweeps != maxInferSweeps {
		t.Fatalf("oversized default sweeps not capped, err=%v", err)
	}
	s2.Close()
}

func TestInferBadRequests(t *testing.T) {
	ts := newTestServer(t, Options{})
	postJSON(t, ts.URL+"/infer", map[string]any{"seed": 1}, http.StatusBadRequest)
	postJSON(t, ts.URL+"/infer", map[string]any{
		"seed": 1, "docs": [][]string{{"a"}}, "ids": [][]int{{0}},
	}, http.StatusBadRequest)
	resp, err := http.Get(ts.URL + "/infer")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /infer status = %d", resp.StatusCode)
	}
}

// TestInferDeterministicAcrossServerParallelism is the serving half of the
// determinism contract: a P=1 server and a P=NumCPU+2 server must return
// byte-identical theta for the same (seed, docs) request.
func TestInferDeterministicAcrossServerParallelism(t *testing.T) {
	req := map[string]any{
		"seed": 42,
		"ids":  [][]int{{0, 1, 2}, {5, 6, 7, 8}, {0, 9}, {}, {3, 3, 3, 3}},
	}
	var bodies []string
	for _, p := range []int{1, runtime.GOMAXPROCS(0) + 2} {
		ts := newTestServer(t, Options{P: p})
		got := postJSON(t, ts.URL+"/infer", req, http.StatusOK)
		b, _ := json.Marshal(got["theta"])
		bodies = append(bodies, string(b))
	}
	if bodies[0] != bodies[1] {
		t.Fatalf("theta differs across server parallelism:\n%s\n%s", bodies[0], bodies[1])
	}
}

// TestConcurrentMixedQueries hammers every endpoint from many goroutines;
// run under -race this is the handlers' lock-free-reads proof.
func TestConcurrentMixedQueries(t *testing.T) {
	ts := newTestServer(t, Options{MaxInFlight: 2})
	urls := []string{
		ts.URL + "/healthz",
		ts.URL + "/topics",
		ts.URL + "/topics/0/top-words?n=5",
		ts.URL + "/hierarchy/node/o/1",
		ts.URL + "/phrases/search?q=query",
		ts.URL + "/search?q=databse",
		ts.URL + "/entity/query",
		ts.URL + "/advisor/1",
	}
	inferBody, _ := json.Marshal(map[string]any{"seed": 3, "ids": [][]int{{0, 1, 2, 3}}, "sweeps": 5})
	var wg sync.WaitGroup
	errs := make(chan error, 200)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if i%4 == 0 {
					resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(inferBody))
					if err != nil {
						errs <- err
						continue
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("infer status %d", resp.StatusCode)
					}
					resp.Body.Close()
					continue
				}
				u := urls[(g+i)%len(urls)]
				resp, err := http.Get(u)
				if err != nil {
					errs <- err
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d", u, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestInferCancelledWhileQueued verifies the bounded in-flight gate
// releases waiters whose request context dies.
func TestInferCancelledWhileQueued(t *testing.T) {
	s, err := New(testSnapshot(t), Options{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the only slot directly.
	s.inferSem <- struct{}{}
	defer func() { <-s.inferSem }()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body, _ := json.Marshal(map[string]any{"seed": 1, "ids": [][]int{{0}}})
	req := httptest.NewRequest(http.MethodPost, "/infer", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("queued+cancelled infer status = %d, body %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "inference slot") {
		t.Fatalf("unexpected body: %s", rec.Body.String())
	}
}

func TestMissingSections(t *testing.T) {
	s, err := New(&store.Snapshot{Vocab: []string{"a"}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	getJSON(t, ts.URL+"/topics", http.StatusNotFound)
	getJSON(t, ts.URL+"/topics/0/top-words", http.StatusNotFound)
	getJSON(t, ts.URL+"/hierarchy/node/o", http.StatusNotFound)
	getJSON(t, ts.URL+"/phrases/search?q=a", http.StatusNotFound)
	getJSON(t, ts.URL+"/advisor/0", http.StatusNotFound)
	postJSON(t, ts.URL+"/infer", map[string]any{"seed": 1, "ids": [][]int{{0}}}, http.StatusNotFound)

	if _, err := New(&store.Snapshot{}, Options{}); err == nil {
		t.Fatal("empty snapshot accepted")
	}
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}

// TestInferSamplerOptions pins the fold-in sampler plumbing: both cores
// serve /infer, each is deterministic per (seed, docs), they follow
// distinct trajectories over the same conditional, and an unknown sampler
// name is rejected at startup rather than per request.
func TestInferSamplerOptions(t *testing.T) {
	body := map[string]any{"seed": 4, "ids": [][]int{{0, 1, 2, 0, 3}, {5, 6, 7, 8}}}
	thetaOf := func(opt Options) [][]any {
		ts := newTestServer(t, opt)
		out := postJSON(t, ts.URL+"/infer", body, http.StatusOK)
		rows := out["theta"].([]any)
		got := make([][]any, len(rows))
		for i, r := range rows {
			got[i] = r.([]any)
		}
		return got
	}
	sparse := thetaOf(Options{Sampler: lda.SamplerSparse})
	auto := thetaOf(Options{})
	dense := thetaOf(Options{Sampler: lda.SamplerDense})
	if !reflect.DeepEqual(sparse, auto) {
		t.Fatal("default sampler is not the sparse core")
	}
	// Same conditional, different trajectories: both must put doc 0 on the
	// database topic and doc 1 on the learning topic.
	argmax := func(row []any) int {
		best := 0
		for i := range row {
			if row[i].(float64) > row[best].(float64) {
				best = i
			}
		}
		return best
	}
	if argmax(sparse[0]) != argmax(dense[0]) || argmax(sparse[1]) != argmax(dense[1]) {
		t.Fatalf("cores disagree on topic assignment: sparse %v dense %v", sparse, dense)
	}

	if _, err := New(testSnapshot(t), Options{Sampler: "metropolis"}); err == nil {
		t.Fatal("unknown sampler accepted at startup")
	}
}
