package serve

// Tests for the entity search subsystem on the serving side: /search and
// /entity/:name over the per-generation search.Index, the deterministic
// index build, and conditional-GET semantics across distinct query
// strings of one generation.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"lesm/internal/core"
	"lesm/internal/store"
	"lesm/internal/tpfg"
)

func TestSearchEndpoint(t *testing.T) {
	ts := newTestServer(t, Options{})

	// Exact word: the word entry leads (exact-name bonus) and the phrase
	// containing the token follows.
	got := getJSON(t, ts.URL+"/search?q=query", http.StatusOK)
	hits := got["hits"].([]any)
	if len(hits) < 2 {
		t.Fatalf("hits = %v", hits)
	}
	top := hits[0].(map[string]any)
	if top["kind"] != "word" || top["name"] != "query" {
		t.Fatalf("top hit = %v", top)
	}
	foundPhrase := false
	for _, h := range hits {
		m := h.(map[string]any)
		if m["kind"] == "phrase" && m["name"] == "query processing" && m["path"] == "o/1" {
			foundPhrase = true
		}
	}
	if !foundPhrase {
		t.Fatalf("phrase hit missing: %v", hits)
	}

	// Fuzzy: one edit resolves to the word, with the distance surfaced.
	got = getJSON(t, ts.URL+"/search?q=databse", http.StatusOK)
	hits = got["hits"].([]any)
	if len(hits) == 0 {
		t.Fatal("fuzzy query found nothing")
	}
	top = hits[0].(map[string]any)
	if top["name"] != "database" || top["distance"].(float64) != 1 {
		t.Fatalf("fuzzy top hit = %v", top)
	}

	// Authors are typed hits too (indexed under their id digits here —
	// the test snapshot's hierarchy carries no author labels).
	got = getJSON(t, ts.URL+"/search?q=2", http.StatusOK)
	top = got["hits"].([]any)[0].(map[string]any)
	if top["kind"] != "author" || top["id"].(float64) != 2 {
		t.Fatalf("author hit = %v", top)
	}

	// Param validation mirrors /phrases/search: q required, limit must be
	// a positive integer.
	getJSON(t, ts.URL+"/search", http.StatusBadRequest)
	getJSON(t, ts.URL+"/search?q=query&limit=0", http.StatusBadRequest)
	getJSON(t, ts.URL+"/search?q=query&limit=-3", http.StatusBadRequest)
	getJSON(t, ts.URL+"/search?q=query&limit=zap", http.StatusBadRequest)
	if one := getJSON(t, ts.URL+"/search?q=query&limit=1", http.StatusOK); len(one["hits"].([]any)) != 1 {
		t.Fatalf("limit=1 hits = %v", one["hits"])
	}
}

func TestSearchEmptyHitsShape(t *testing.T) {
	ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/search?q=qqqqzzzz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), `"hits":[]`) {
		t.Fatalf("no-hit /search did not serialize hits as []: %s", buf[:n])
	}
}

func TestEntityWordProfile(t *testing.T) {
	ts := newTestServer(t, Options{})
	got := getJSON(t, ts.URL+"/entity/query", http.StatusOK)
	res := got["resolved"].(map[string]any)
	if res["kind"] != "word" || res["name"] != "query" || res["distance"].(float64) != 0 {
		t.Fatalf("resolved = %v", res)
	}
	// Composed in one response: topic mixture over the flat model,
	// hierarchy placements, and the phrases carrying the word.
	mix := got["topic_mixture"].([]any)
	if len(mix) == 0 {
		t.Fatalf("no topic mixture: %v", got)
	}
	sum := 0.0
	for _, m := range mix {
		sum += m.(map[string]any)["p"].(float64)
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("mixture not normalized: %v", mix)
	}
	// "query" is a topic-0 word in the fitted model: the mixture must be
	// decisively on one topic, not uniform.
	if top := mix[0].(map[string]any)["p"].(float64); top < 0.7 {
		t.Fatalf("mixture indecisive: %v", mix)
	}
	if nodes := got["nodes"].([]any); len(nodes) == 0 {
		t.Fatalf("no hierarchy nodes: %v", got)
	}
	phrases := got["phrases"].([]any)
	if len(phrases) != 1 || phrases[0].(map[string]any)["display"] != "query processing" {
		t.Fatalf("phrases = %v", phrases)
	}
}

func TestEntityFuzzyResolution(t *testing.T) {
	ts := newTestServer(t, Options{})
	// Edit distance 1.
	got := getJSON(t, ts.URL+"/entity/databse", http.StatusOK)
	res := got["resolved"].(map[string]any)
	if res["name"] != "database" || res["distance"].(float64) != 1 {
		t.Fatalf("distance-1 resolution = %v", res)
	}
	// Edit distance 2 on a long token.
	got = getJSON(t, ts.URL+"/entity/procesng", http.StatusOK)
	res = got["resolved"].(map[string]any)
	if res["name"] != "processing" || res["distance"].(float64) != 2 {
		t.Fatalf("distance-2 resolution = %v", res)
	}
	// Beyond the bound: 404 with a clear message.
	got = getJSON(t, ts.URL+"/entity/praacesng", http.StatusNotFound)
	if msg, _ := got["error"].(string); !strings.Contains(msg, "no entity matching") {
		t.Fatalf("miss error = %v", got)
	}
	getJSON(t, ts.URL+"/entity/", http.StatusBadRequest)
}

func TestEntityPhraseProfile(t *testing.T) {
	ts := newTestServer(t, Options{})
	got := getJSON(t, ts.URL+"/entity/"+url.PathEscape("query processing"), http.StatusOK)
	res := got["resolved"].(map[string]any)
	if res["kind"] != "phrase" {
		t.Fatalf("resolved = %v", res)
	}
	occ := got["occurrences"].([]any)
	if len(occ) != 1 || occ[0].(map[string]any)["path"] != "o/1" {
		t.Fatalf("occurrences = %v", occ)
	}
	words := got["words"].([]any)
	if len(words) != 2 || words[0].(map[string]any)["word"] != "query" || words[0].(map[string]any)["id"].(float64) != 0 {
		t.Fatalf("words = %v", words)
	}
	if _, ok := got["topic_mixture"]; !ok {
		t.Fatalf("phrase profile missing topic mixture: %v", got)
	}
}

func TestEntityAuthorProfile(t *testing.T) {
	snap := testSnapshot(t)
	// Label the authors through an author-typed entity list so name
	// resolution and hierarchy placement both engage.
	h := snap.Hierarchy
	h.TypeNames[1] = "author"
	nodes := h.Root.Children
	nodes[0].Entities[1] = []core.RankedEntity{{ID: 0, Display: "John Smith", Score: 0.9}}
	nodes[1].Entities[1] = []core.RankedEntity{{ID: 2, Display: "Ada Lovelace", Score: 0.7}}
	s, err := New(snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	// Fuzzy name lookup: "jon smith" is one edit from "John Smith".
	got := getJSON(t, ts.URL+"/entity/"+url.PathEscape("jon smith"), http.StatusOK)
	res := got["resolved"].(map[string]any)
	if res["kind"] != "author" || res["id"].(float64) != 0 || res["name"] != "John Smith" {
		t.Fatalf("resolved = %v", res)
	}
	// Author 0 advises authors 1 and 2 in the test snapshot's ranking.
	advisees := got["advisees"].([]any)
	if len(advisees) != 2 {
		t.Fatalf("advisees = %v", advisees)
	}
	if advisees[0].(map[string]any)["author"].(float64) != 1 || advisees[0].(map[string]any)["score"].(float64) != 0.8 {
		t.Fatalf("advisee 0 = %v", advisees[0])
	}
	adv := got["advisor"].(map[string]any)
	if adv["advisor"].(float64) != -1 {
		t.Fatalf("author 0 advisor = %v", adv)
	}
	nodesOut := got["nodes"].([]any)
	if len(nodesOut) != 1 || nodesOut[0].(map[string]any)["path"] != "o/1" {
		t.Fatalf("author nodes = %v", nodesOut)
	}

	// Advisee side: author 2's profile names its advisor with the argmax
	// score and its candidate list.
	got = getJSON(t, ts.URL+"/entity/"+url.PathEscape("Ada Lovelace"), http.StatusOK)
	adv = got["advisor"].(map[string]any)
	if adv["advisor"].(float64) != 0 || adv["score"].(float64) != 0.6 {
		t.Fatalf("advisor block = %v", adv)
	}
	if cands := adv["candidates"].([]any); len(cands) != 2 {
		t.Fatalf("candidates = %v", cands)
	}
}

// TestEntityIndexBuildDeterministic is the serving half of the
// bit-identical contract: two artifact builds over one snapshot yield
// search indexes with identical checksums.
func TestEntityIndexBuildDeterministic(t *testing.T) {
	snap := testSnapshot(t)
	opt := Options{}.withDefaults()
	a1, err := buildArtifact(snap, opt, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := buildArtifact(snap, opt, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a1.index.Checksum() != a2.index.Checksum() {
		t.Fatalf("index checksums differ across builds: %x vs %x", a1.index.Checksum(), a2.index.Checksum())
	}
	if a1.index.Entries() == 0 {
		t.Fatal("index is empty for a fully-populated snapshot")
	}
}

// TestConditionalGETAcrossQueryStrings pins the generation-ETag semantics
// the search routes inherit: the validator names the *generation*, not the
// response body, so a client that has any response of generation N may
// revalidate a different query string of the same generation and still get
// 304 — by design, since every response of one generation is immutable.
func TestConditionalGETAcrossQueryStrings(t *testing.T) {
	ts := newTestServer(t, Options{})
	get := func(path, inm string) (int, string) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("ETag")
	}
	code, tag := get("/search?q=query", "")
	if code != http.StatusOK || tag != `"gen-1"` {
		t.Fatalf("initial GET: %d %q", code, tag)
	}
	// Distinct query string, same generation: still 304.
	for _, p := range []string{"/search?q=network", "/entity/query", "/phrases/search?q=network"} {
		if code, _ := get(p, tag); code != http.StatusNotModified {
			t.Fatalf("GET %s with %s: %d, want 304", p, tag, code)
		}
	}
	// Error responses never validate: a bad limit is 400 even with a
	// matching validator, and carries no ETag.
	code, tag = get("/search?q=query&limit=0", `"gen-1"`)
	if code != http.StatusBadRequest || tag != "" {
		t.Fatalf("error response: %d %q", code, tag)
	}
}

// TestSearchMetricsGauges checks the index-size families appear on
// /metrics and describe the live artifact.
func TestSearchMetricsGauges(t *testing.T) {
	ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, fam := range []string{"lesmd_search_index_entries", "lesmd_search_index_terms", "lesmd_search_index_postings"} {
		if !strings.Contains(body, "# TYPE "+fam+" gauge") {
			t.Fatalf("family %s missing from /metrics", fam)
		}
	}
	// 10 vocabulary words + 2 phrases + 3 authors = 15 entries.
	if !strings.Contains(body, "lesmd_search_index_entries 15") {
		t.Fatalf("entries gauge wrong:\n%s", grepLines(body, "lesmd_search_index"))
	}
	// Latency histograms exist for the new routes via the fixed universe.
	for _, route := range []string{"search", "entity"} {
		if !strings.Contains(body, `lesmd_http_request_duration_seconds_count{route="`+route+`"}`) {
			t.Fatalf("route %s missing from duration histogram", route)
		}
	}
}

// TestSearchOnSparseSnapshots drives /search and /entity against
// snapshots missing most sections: a vocab-only snapshot still searches
// words; an advisor-only snapshot still resolves author ids.
func TestSearchOnSparseSnapshots(t *testing.T) {
	s, err := New(&store.Snapshot{Vocab: []string{"alpha", "beta"}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	got := getJSON(t, ts.URL+"/search?q=alpha", http.StatusOK)
	if hits := got["hits"].([]any); len(hits) != 1 || hits[0].(map[string]any)["kind"] != "word" {
		t.Fatalf("vocab-only search = %v", got)
	}
	// Word profile with no topics/hierarchy/roles: just the resolution.
	got = getJSON(t, ts.URL+"/entity/alpha", http.StatusOK)
	if _, hasMix := got["topic_mixture"]; hasMix {
		t.Fatalf("sparse snapshot produced a mixture: %v", got)
	}

	adv, err := New(&store.Snapshot{Advisor: &store.Advisor{
		Net:  &tpfg.Network{NumAuthors: 2, First: []int{1990, 2000}, Cands: [][]tpfg.Candidate{nil, {{Advisor: 0, Start: 2000, End: 2004}}}},
		Rank: [][]float64{{1}, {0.3, 0.7}},
	}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ats := httptest.NewServer(adv.Handler())
	t.Cleanup(func() { ats.Close(); adv.Close() })
	got = getJSON(t, ats.URL+"/entity/1", http.StatusOK)
	if got["advisor"].(map[string]any)["advisor"].(float64) != 0 {
		t.Fatalf("advisor-only profile = %v", got)
	}
}

// TestSearchIndexRebuildsOnReload pins the generation lifecycle: a hot
// reload swaps in a freshly built index atomically with the rest of the
// artifact, so names that only the new snapshot knows become searchable
// exactly when the generation bumps — and the old generation's validator
// stops matching.
func TestSearchIndexRebuildsOnReload(t *testing.T) {
	ts, s := newTestServerPair(t, Options{})
	if hits := getJSON(t, ts.URL+"/search?q=quantum", http.StatusOK)["hits"].([]any); len(hits) != 0 {
		t.Fatalf("generation 1 already knows quantum: %v", hits)
	}
	getJSON(t, ts.URL+"/entity/quantum", http.StatusNotFound)

	snap2 := testSnapshot(t)
	snap2.Vocab[4] = "quantum" // replaces "storage"; shapes stay intact
	if err := s.Reload(snap2, nil); err != nil {
		t.Fatal(err)
	}
	got := getJSON(t, ts.URL+"/search?q=quantum", http.StatusOK)
	hits := got["hits"].([]any)
	if len(hits) != 1 || hits[0].(map[string]any)["name"] != "quantum" {
		t.Fatalf("post-reload search = %v", got)
	}
	ent := getJSON(t, ts.URL+"/entity/quantum", http.StatusOK)
	if gen := ent["generation"].(float64); gen != 2 {
		t.Fatalf("post-reload entity generation = %v", gen)
	}
	// The replaced word left the index with its generation.
	if hits := getJSON(t, ts.URL+"/search?q=storage", http.StatusOK)["hits"].([]any); len(hits) != 0 {
		t.Fatalf("old generation's word still indexed: %v", hits)
	}
	// And a generation-1 validator no longer revalidates.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/search?q=quantum", nil)
	req.Header.Set("If-None-Match", `"gen-1"`)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") != `"gen-2"` {
		t.Fatalf("stale validator: %d %q", resp.StatusCode, resp.Header.Get("ETag"))
	}
}

// grepLines filters body to the lines containing needle, for test
// diagnostics.
func grepLines(body, needle string) string {
	var out []string
	for _, ln := range strings.Split(body, "\n") {
		if strings.Contains(ln, needle) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}
