package serve

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"lesm/internal/store"
)

// --- promtool-style pure-Go lint of the text exposition format ---
//
// promLint parses a Prometheus text-format (0.0.4) payload, enforcing the
// rules `promtool check metrics` would (no external binary): HELP/TYPE
// precede samples, names and labels are well-formed, values parse, no
// duplicate series, histogram le-series are cumulative and agree with
// _count, every sample belongs to a declared family. It returns every
// sample keyed exactly as rendered (name{labels} or bare name).

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type promSample struct {
	name   string            // family member name (may carry _bucket/_sum/_count)
	labels map[string]string // parsed label set
	value  float64
}

// parsePromLine splits one sample line into (sample, render key).
func parsePromLine(line string) (promSample, string, error) {
	s := promSample{labels: map[string]string{}}
	rest := line
	var labelPart string
	if brace := strings.IndexByte(rest, '{'); brace >= 0 {
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return s, "", fmt.Errorf("unbalanced braces")
		}
		s.name = rest[:brace]
		labelPart = rest[brace+1 : end]
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return s, "", fmt.Errorf("no value")
		}
		s.name = rest[:sp]
		rest = strings.TrimSpace(rest[sp+1:])
	}
	if !metricNameRe.MatchString(s.name) {
		return s, "", fmt.Errorf("bad metric name %q", s.name)
	}
	if labelPart != "" {
		for _, pair := range strings.Split(labelPart, ",") {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return s, "", fmt.Errorf("label %q missing '='", pair)
			}
			k, v := pair[:eq], pair[eq+1:]
			if !labelNameRe.MatchString(k) {
				return s, "", fmt.Errorf("bad label name %q", k)
			}
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return s, "", fmt.Errorf("label value %q not quoted", v)
			}
			if _, dup := s.labels[k]; dup {
				return s, "", fmt.Errorf("duplicate label %q", k)
			}
			s.labels[k] = v[1 : len(v)-1]
		}
	}
	v, err := strconv.ParseFloat(strings.Replace(rest, "+Inf", "Inf", 1), 64)
	if err != nil {
		return s, "", fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.value = v
	key := s.name
	if labelPart != "" {
		key += "{" + labelPart + "}"
	}
	return s, key, nil
}

// promLint validates text and returns samples keyed as rendered.
func promLint(t testing.TB, text string) map[string]float64 {
	t.Helper()
	types := map[string]string{} // family -> counter|gauge|histogram
	helped := map[string]bool{}
	samples := map[string]float64{}
	var parsed []promSample
	// A sample belongs to the family it names, or — for histograms — to
	// the family its _bucket/_sum/_count suffix strips down to.
	family := func(name string) (string, bool) {
		if _, ok := types[name]; ok {
			return name, true
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suf); base != name {
				if typ, ok := types[base]; ok && typ == "histogram" {
					return base, true
				}
			}
		}
		return "", false
	}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)
			if len(f) < 4 { // # HELP name text...
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if helped[f[2]] {
				t.Fatalf("line %d: duplicate HELP for %q", ln+1, f[2])
			}
			helped[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := f[2], f[3]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			if !helped[name] {
				t.Fatalf("line %d: TYPE for %q precedes its HELP", ln+1, name)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", ln+1, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		s, key, err := parsePromLine(line)
		if err != nil {
			t.Fatalf("line %d: %v (%q)", ln+1, err, line)
		}
		fam, ok := family(s.name)
		if !ok {
			t.Fatalf("line %d: sample %q has no declared family", ln+1, s.name)
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, key)
		}
		if types[fam] == "counter" && s.value < 0 {
			t.Fatalf("line %d: counter %q is negative", ln+1, key)
		}
		samples[key] = s.value
		parsed = append(parsed, s)
	}

	// Histogram consistency: group the _bucket series by (family, labels
	// minus le); the le-sequence must be cumulative (non-decreasing in
	// ascending bound order), end in +Inf, and the +Inf bucket must equal
	// the matching _count; a _sum must exist.
	type series struct {
		les  []float64
		vals map[float64]float64
	}
	hists := map[string]*series{}
	groupKey := func(s promSample) string {
		base := strings.TrimSuffix(s.name, "_bucket")
		keys := make([]string, 0, len(s.labels))
		for k := range s.labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for i, k := range keys {
			keys[i] = k + `="` + s.labels[k] + `"`
		}
		return base + "{" + strings.Join(keys, ",") + "}"
	}
	for _, s := range parsed {
		if !strings.HasSuffix(s.name, "_bucket") {
			continue
		}
		le, err := strconv.ParseFloat(strings.Replace(s.labels["le"], "+Inf", "Inf", 1), 64)
		if err != nil {
			t.Fatalf("series %s: bad le %q", s.name, s.labels["le"])
		}
		g := hists[groupKey(s)]
		if g == nil {
			g = &series{vals: map[float64]float64{}}
			hists[groupKey(s)] = g
		}
		g.les = append(g.les, le)
		g.vals[le] = s.value
	}
	for key, g := range hists {
		sort.Float64s(g.les)
		if len(g.les) == 0 || !math.IsInf(g.les[len(g.les)-1], +1) {
			t.Fatalf("histogram %s: no +Inf bucket", key)
		}
		prev := -1.0
		for _, le := range g.les {
			if g.vals[le] < prev {
				t.Fatalf("histogram %s: bucket le=%g (%g) below predecessor (%g) — not cumulative", key, le, g.vals[le], prev)
			}
			prev = g.vals[le]
		}
		// Rebuild the rendered keys of the matching _count/_sum series
		// from the group key.
		base := key[:strings.IndexByte(key, '{')]
		labels := strings.Trim(key[strings.IndexByte(key, '{'):], "{}")
		countKey, sumKey := base+"_count", base+"_sum"
		if labels != "" {
			countKey += "{" + labels + "}"
			sumKey += "{" + labels + "}"
		}
		count, ok := samples[countKey]
		if !ok {
			t.Fatalf("histogram %s: missing %s", key, countKey)
		}
		if inf := g.vals[math.Inf(+1)]; inf != count {
			t.Fatalf("histogram %s: +Inf bucket %g != count %g", key, inf, count)
		}
		if _, ok := samples[sumKey]; !ok {
			t.Fatalf("histogram %s: missing %s", key, sumKey)
		}
	}
	return samples
}

// scrape GETs /metrics, checks the content type, lints the payload and
// returns the parsed samples.
func scrape(t testing.TB, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return promLint(t, string(body))
}

// waitFor polls cond until true, failing the test after 10s.
func waitFor(t testing.TB, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestMetricsScrapeMatchesRequests is the scrape-correctness lock-in: the
// counters on /metrics must exactly equal the traffic this test generated,
// route by route and error by error, and the whole payload must survive
// the promtool-style lint.
func TestMetricsScrapeMatchesRequests(t *testing.T) {
	ts := newTestServer(t, Options{})

	// Exact traffic, covering success and error paths on several routes.
	for i := 0; i < 3; i++ {
		getJSON(t, ts.URL+"/topics", http.StatusOK)
	}
	getJSON(t, ts.URL+"/topics/0/top-words?n=3", http.StatusOK)
	getJSON(t, ts.URL+"/topics/0/top-words?n=5", http.StatusOK)
	getJSON(t, ts.URL+"/topics/9/top-words", http.StatusNotFound)
	getJSON(t, ts.URL+"/healthz", http.StatusOK)
	getJSON(t, ts.URL+"/hierarchy/node/o", http.StatusOK)
	getJSON(t, ts.URL+"/hierarchy/node/o/9", http.StatusNotFound)
	getJSON(t, ts.URL+"/phrases/search?q=query", http.StatusOK)
	getJSON(t, ts.URL+"/advisor/1", http.StatusOK)
	postJSON(t, ts.URL+"/infer", map[string]any{"seed": 1, "ids": [][]int{{0, 1, 2}}, "sweeps": 3}, http.StatusOK)
	postJSON(t, ts.URL+"/infer", map[string]any{"seed": 2, "ids": [][]int{{5, 6}, {7}}, "sweeps": 3}, http.StatusOK)
	postJSON(t, ts.URL+"/infer", map[string]any{"seed": 3}, http.StatusBadRequest)

	got := scrape(t, ts.URL)
	want := map[string]float64{
		`lesmd_http_requests_total{route="topics"}`:         3,
		`lesmd_http_requests_total{route="top_words"}`:      3,
		`lesmd_http_requests_total{route="healthz"}`:        1,
		`lesmd_http_requests_total{route="hierarchy_node"}`: 2,
		`lesmd_http_requests_total{route="phrases_search"}`: 1,
		`lesmd_http_requests_total{route="advisor"}`:        1,
		`lesmd_http_requests_total{route="infer"}`:          3,
		`lesmd_http_requests_total{route="admin_reload"}`:   0,
		// A scrape records itself only after rendering: the first scrape
		// reports zero metrics-route requests.
		`lesmd_http_requests_total{route="metrics"}`:                 0,
		`lesmd_http_errors_total{route="top_words",code="404"}`:      1,
		`lesmd_http_errors_total{route="hierarchy_node",code="404"}`: 1,
		`lesmd_http_errors_total{route="infer",code="400"}`:          1,
		`lesmd_infer_requests_total`:                                 2,
		`lesmd_infer_batches_total`:                                  2,
		`lesmd_infer_shed_total`:                                     0,
		`lesmd_infer_admitted`:                                       0,
		`lesmd_infer_in_flight`:                                      0,
		`lesmd_infer_queue_depth`:                                    0,
		`lesmd_reload_generation`:                                    1,
		`lesmd_reloads_total`:                                        0,
		`lesmd_reload_failures_total`:                                0,
		`lesmd_http_request_duration_seconds_count{route="infer"}`:   3,
		`lesmd_http_request_duration_seconds_count{route="topics"}`:  3,
		`lesmd_infer_batch_docs_count`:                               2,
		`lesmd_infer_batch_docs_sum`:                                 3, // 1-doc + 2-doc direct batches
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %g, want %g", k, got[k], v)
		}
	}
	if got[`lesmd_goroutines`] <= 0 {
		t.Errorf("lesmd_goroutines = %g", got[`lesmd_goroutines`])
	}

	// The second scrape sees exactly the first one, and nothing drifts.
	got = scrape(t, ts.URL)
	if v := got[`lesmd_http_requests_total{route="metrics"}`]; v != 1 {
		t.Errorf("second scrape: metrics route count = %g, want 1", v)
	}
	if v := got[`lesmd_http_requests_total{route="infer"}`]; v != 3 {
		t.Errorf("second scrape: infer count drifted to %g", v)
	}
}

// TestMetricsCoalescerBatchHistogram pins the coalescer occupancy
// telemetry: a merged batch shows up as ONE batch_docs observation whose
// sum is the total documents merged. MaxBatchDocs equal to the joint doc
// count makes the merge deterministic — the batch closes exactly when the
// third member arrives, with no timing dependence.
func TestMetricsCoalescerBatchHistogram(t *testing.T) {
	ts, s := newTestServerPair(t, Options{
		BatchWindow: 30 * time.Second, MaxBatchDocs: 6, MaxInFlight: 1,
	})
	s.inferSem <- struct{}{} // hold the slot: no group commit until we release
	done := make(chan int, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			status, _ := postInfer(t, ts.URL, inferBody(t, int64(i), [][]int{{0, 1}, {2, 3}}, 3))
			done <- status
		}(i)
	}
	// 3 × 2 docs hits the cap: the batch dispatches with all three members
	// and parks on the held slot.
	waitFor(t, func() bool { return s.inferBatches.Load() == 1 }, "cap-closed batch")
	<-s.inferSem // release: the parked batch runs
	for i := 0; i < 3; i++ {
		if status := <-done; status != http.StatusOK {
			t.Fatalf("coalesced request: status %d", status)
		}
	}
	got := scrape(t, ts.URL)
	if got[`lesmd_infer_batch_docs_count`] != 1 {
		t.Fatalf("batch_docs count = %g, want 1 merged batch", got[`lesmd_infer_batch_docs_count`])
	}
	if got[`lesmd_infer_batch_docs_sum`] != 6 {
		t.Fatalf("batch_docs sum = %g, want 6 docs", got[`lesmd_infer_batch_docs_sum`])
	}
	if got[`lesmd_infer_batch_docs_bucket{le="8"}`] != 1 {
		t.Fatalf("batch of 6 not in le=8 bucket: %g", got[`lesmd_infer_batch_docs_bucket{le="8"}`])
	}
	if got[`lesmd_infer_batch_docs_bucket{le="4"}`] != 0 {
		t.Fatalf("batch of 6 leaked into le=4 bucket: %g", got[`lesmd_infer_batch_docs_bucket{le="4"}`])
	}
	if got[`lesmd_infer_requests_total`] != 3 {
		t.Fatalf("infer_requests_total = %g, want 3", got[`lesmd_infer_requests_total`])
	}
}

// TestMetricsReloadGeneration: the generation gauge and the reload
// counters track hot reloads, including failed ones.
func TestMetricsReloadGeneration(t *testing.T) {
	path := t.TempDir() + "/model.lesm"
	if err := store.Write(path, testSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	ts, s := newTestServerPair(t, Options{SnapshotPath: path})
	if err := s.Reload(altSnapshot(t), nil); err != nil {
		t.Fatal(err)
	}
	if err := writeCorrupt(path); err != nil {
		t.Fatal(err)
	}
	if rec := s.serveOnce(t, http.MethodPost, "/admin/reload", nil); rec.Code != http.StatusInternalServerError {
		t.Fatalf("corrupt reload: %d", rec.Code)
	}
	got := scrape(t, ts.URL)
	if got[`lesmd_reload_generation`] != 2 {
		t.Fatalf("reload_generation = %g, want 2", got[`lesmd_reload_generation`])
	}
	if got[`lesmd_reloads_total`] != 1 {
		t.Fatalf("reloads_total = %g, want 1", got[`lesmd_reloads_total`])
	}
	if got[`lesmd_reload_failures_total`] != 1 {
		t.Fatalf("reload_failures_total = %g, want 1", got[`lesmd_reload_failures_total`])
	}
}

// TestPromLintCatchesBadPayloads turns the linter on itself: hand-built
// payloads violating the format rules must fail, so a green lint of the
// live scrape means something.
func TestPromLintCatchesBadPayloads(t *testing.T) {
	good := "# HELP m ok then\n# TYPE m counter\nm 1\n"
	if v := promLint(t, good)["m"]; v != 1 {
		t.Fatalf("good payload: m = %g", v)
	}
	bad := []struct{ name, text string }{
		{"sample without family", "m 1\n"},
		{"type before help", "# TYPE m counter\n# HELP m ok then\nm 1\n"},
		{"duplicate series", "# HELP m ok then\n# TYPE m counter\nm 1\nm 2\n"},
		{"negative counter", "# HELP m ok then\n# TYPE m counter\nm -1\n"},
		{"unquoted label", "# HELP m ok then\n# TYPE m counter\nm{a=b} 1\n"},
		{"bad value", "# HELP m ok then\n# TYPE m counter\nm x\n"},
		{"unknown type", "# HELP m ok then\n# TYPE m summary\nm 1\n"},
		{"histogram without +Inf",
			"# HELP h ok then\n# TYPE h histogram\n" +
				`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n"},
		{"non-cumulative histogram",
			"# HELP h ok then\n# TYPE h histogram\n" +
				`h_bucket{le="1"} 2` + "\n" + `h_bucket{le="+Inf"} 1` + "\nh_sum 1\nh_count 1\n"},
		{"histogram count mismatch",
			"# HELP h ok then\n# TYPE h histogram\n" +
				`h_bucket{le="1"} 1` + "\n" + `h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 3\n"},
		{"histogram missing sum",
			"# HELP h ok then\n# TYPE h histogram\n" +
				`h_bucket{le="+Inf"} 1` + "\nh_count 1\n"},
	}
	for _, tc := range bad {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// promLint fails via t.Fatalf (which kills its goroutine): run
			// it against a throwaway T on a sub-goroutine so the failure is
			// observable without killing this test.
			failed := make(chan bool, 1)
			go func() {
				probe := &testing.T{}
				defer func() { failed <- probe.Failed() }()
				promLint(probe, tc.text)
			}()
			if !<-failed {
				t.Fatalf("lint accepted invalid payload:\n%s", tc.text)
			}
		})
	}
}
