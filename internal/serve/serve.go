package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lesm/internal/core"
	"lesm/internal/lda"
	"lesm/internal/linalg"
	"lesm/internal/search"
	"lesm/internal/store"
	"lesm/internal/textkit"
	"lesm/internal/tpfg"
)

// Options configure a Server.
type Options struct {
	// P bounds the fold-in worker count per /infer batch (0 = GOMAXPROCS).
	P int
	// MaxInFlight caps concurrent /infer fold-in batches (direct or
	// coalesced); further requests wait until a slot frees or their
	// context is cancelled (default 4).
	MaxInFlight int
	// Sweeps is the fold-in sweep count (default 30).
	Sweeps int
	// Alpha is the fold-in document prior (default
	// lda.DefaultFoldInAlpha). The snapshot's fitted alpha (50/K by
	// convention) is deliberately NOT the default: it is calibrated for
	// whole training documents and bounds a short query document's theta
	// to near-uniform; pass it explicitly to get posterior-mean behavior.
	Alpha float64
	// Sampler selects the fold-in sampling core ("" = auto, resolved per
	// workload as in lda.Sampler.ResolveFor; "mh" = Metropolis–Hastings
	// alias proposals; "sparse" = the bucket+alias core; "dense" = the
	// O(K)-per-token core for A/B validation). All cores sample the same
	// conditional through different deterministic trajectories; the
	// non-dense ones precompute per-word alias tables at startup (~2
	// extra words of memory per topic-word cell).
	Sampler lda.Sampler

	// SnapshotPath is the on-disk snapshot backing hot reload: POST
	// /admin/reload (and the ReloadPoll poller) re-reads it and swaps the
	// serving artifact atomically. Empty disables path-driven reload;
	// Reload with an explicit snapshot still works.
	SnapshotPath string
	// ReloadPoll, when > 0 and SnapshotPath is set, polls the snapshot
	// file's (size, mtime) stamp at this interval and hot-reloads on
	// change. Zero disables polling.
	ReloadPoll time.Duration
	// MMap routes path-driven (re)loads through store.OpenMapped: the big
	// sections serve zero-copy from the mapping, and replaced mappings are
	// retired (kept mapped) until Close so in-flight requests never fault.
	MMap bool
	// BatchWindow enables /infer request coalescing with group-commit
	// semantics: while every in-flight slot is busy, arriving requests
	// merge into one forming fold-in batch; the batch dispatches as soon
	// as a slot frees, the batch reaches MaxBatchDocs, or the window
	// expires — whichever comes first. An unsaturated server therefore
	// dispatches immediately (no added latency), and the window only
	// bounds how long a request can wait for batchmates under overload.
	// Zero disables coalescing entirely. Per-request results are
	// bit-identical either way.
	BatchWindow time.Duration
	// MaxBatchDocs caps the documents of one coalesced batch (default 64).
	// A request that would overflow the cap closes the current batch and
	// spills into the next window.
	MaxBatchDocs int
	// AdaptiveWindow derives the effective coalescing window from an EWMA
	// of observed /infer inter-arrival times, bounded above by BatchWindow
	// (which must be > 0 for coalescing to be on at all) — see adaptive.go.
	// Off, the window is the fixed BatchWindow.
	AdaptiveWindow bool
	// MaxQueue bounds the /infer admission queue: at most
	// MaxInFlight+MaxQueue requests may be in the system (running or
	// waiting for a slot / parked in a forming batch); beyond that,
	// requests are shed immediately with 503 + Retry-After instead of
	// queueing without bound (default 64).
	MaxQueue int
	// RouteTimeout, when > 0, cancels any request's context after this
	// long, on every route: a queued /infer drops out of its queue, a
	// running fold-in aborts at its next cancellation check, and the
	// client gets a 503. Zero disables.
	RouteTimeout time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/ and the expvar
	// handler at /debug/vars on the serving mux. Off by default: the
	// endpoints expose stacks, heap contents, and command lines, so they
	// belong behind the same network boundary as /admin. When off the
	// paths 404 like any unregistered route.
	Pprof bool
	// Ctx, when cancelled, shuts down the server's background machinery
	// (coalescer, reload poller, in-flight coalesced batches) exactly like
	// Close (nil = background). Mapped snapshots are only released by an
	// explicit Close, which must come after the HTTP server has drained.
	Ctx context.Context
}

// withDefaults fills defaults and clamps nonsensical negatives (a negative
// MaxInFlight would panic in make(chan); a negative Sweeps would silently
// skip all refinement sweeps).
func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4
	}
	if o.Sweeps <= 0 {
		o.Sweeps = 30
	}
	if o.Sweeps > maxInferSweeps {
		o.Sweeps = maxInferSweeps
	}
	if o.Alpha <= 0 {
		o.Alpha = lda.DefaultFoldInAlpha
	}
	if o.BatchWindow < 0 {
		o.BatchWindow = 0
	}
	if o.MaxBatchDocs <= 0 {
		o.MaxBatchDocs = 64
	}
	if o.ReloadPoll < 0 {
		o.ReloadPoll = 0
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64
	}
	if o.RouteTimeout < 0 {
		o.RouteTimeout = 0
	}
	return o
}

// phraseHit is one prepared entry of the phrase search index. folded is
// the display case-folded through textkit.Fold — the same fold queries go
// through, so non-ASCII case variants match (strings.ToLower kept e.g.
// the Greek final sigma distinct from the medial form Tokenize produces).
type phraseHit struct {
	Path    string  `json:"path"`
	Display string  `json:"display"`
	Score   float64 `json:"score"`
	folded  string
}

// authorNode is one hierarchy placement of an author entity.
type authorNode struct {
	Path  string  `json:"path"`
	Score float64 `json:"score"`
}

// artifact is everything derived from one snapshot: the immutable unit a
// hot reload swaps. Handlers load the current artifact exactly once per
// request and use only it afterwards, so a swap never mixes generations
// within a response and in-flight requests finish on the artifact they
// started with. All fields are initialized in buildArtifact and never
// written afterwards; reads need no locking.
type artifact struct {
	gen     uint64
	snap    *store.Snapshot
	vocab   *textkit.Vocabulary
	foldIn  *lda.FoldInModel
	nodes   map[string]*core.TopicNode
	paths   []string // hierarchy pre-order
	phrases []phraseHit
	advisor *tpfg.Result
	// predicted[i] is advisor.Predict()[i], computed once at build so
	// /advisor lookups don't re-run the all-authors argmax per request;
	// predictedScore[i] is the rank mass of that prediction — the argmax
	// entry of Rank[i] itself, never reconstructed by scanning the
	// candidate list (duplicate candidates made that scan report the wrong
	// entry, and a predicted advisor absent from the scan silently fell
	// back to the no-advisor rank).
	predicted      []int
	predictedScore []float64
	// advisees[v] lists the authors whose predicted advisor is v,
	// ascending — the reverse edge set of predicted, for entity profiles.
	advisees map[int][]int
	// index is the generation's entity search index (always built, possibly
	// empty); it is immutable and rides the same atomic swap as the rest of
	// the artifact, so /search and /entity reads are lock-free.
	index *search.Index
	// authorNodes[id] lists the hierarchy placements of author id — the
	// nodes carrying an author-typed entity with that id (search.AuthorTypes
	// detection), in pre-order with the entity's score.
	authorNodes map[int][]authorNode
	// closer releases the snapshot's backing mapping (store.Mapped); nil
	// for heap-decoded snapshots. Closed by Server.Close, never on swap —
	// an in-flight request may still read the old mapping.
	closer io.Closer
}

// buildArtifact validates a snapshot and precomputes the serving state for
// it. The snapshot must carry at least one section; endpoints whose
// section is absent answer 404 with an explanatory error.
func buildArtifact(snap *store.Snapshot, opt Options, gen uint64, closer io.Closer) (*artifact, error) {
	if snap == nil {
		return nil, errors.New("serve: nil snapshot")
	}
	if len(snap.Sections()) == 0 {
		return nil, errors.New("serve: empty snapshot (no sections)")
	}
	// CRC-valid files can still be shape-inconsistent (e.g. rank vectors
	// disagreeing with candidate lists); reject them here instead of
	// panicking at query time.
	if err := snap.Validate(); err != nil {
		return nil, fmt.Errorf("serve: invalid snapshot: %w", err)
	}
	a := &artifact{gen: gen, snap: snap, closer: closer}

	if snap.Vocab != nil {
		a.vocab = textkit.VocabularyFromWords(snap.Vocab)
	}
	if t := snap.Topics; t != nil {
		if t.NKV != nil && t.NK != nil {
			a.foldIn = lda.FoldInModelFromCounts(t.NKV, t.NK, opt.Alpha, t.Beta)
		} else if t.Phi != nil {
			a.foldIn = lda.NewFoldInModel(t.Phi, opt.Alpha)
		}
		if a.foldIn != nil && opt.Sampler.ResolveFor(a.foldIn.K(), a.foldIn.V()) != lda.SamplerDense {
			// Pay the alias-table O(K·V) build at load, not on the first
			// /infer request against this artifact.
			a.foldIn.PrecomputeSparse()
		}
	}
	if h := snap.Hierarchy; h != nil {
		a.nodes = map[string]*core.TopicNode{}
		h.Root.Walk(func(n *core.TopicNode) {
			a.paths = append(a.paths, n.Path)
			a.nodes[n.Path] = n
		})
	}
	// Phrase search index: the roles section when present (the analyzer's
	// per-topic view), otherwise the hierarchy's attached phrase lists.
	if snap.RolePhrases != nil {
		for _, tp := range snap.RolePhrases {
			for _, p := range tp.Phrases {
				a.phrases = append(a.phrases, phraseHit{Path: tp.Path, Display: p.Display, Score: p.Score, folded: textkit.Fold(p.Display)})
			}
		}
	} else if snap.Hierarchy != nil {
		for _, path := range a.paths {
			for _, p := range a.nodes[path].Phrases {
				a.phrases = append(a.phrases, phraseHit{Path: path, Display: p.Display, Score: p.Score, folded: textkit.Fold(p.Display)})
			}
		}
	}
	if adv := snap.Advisor; adv != nil {
		a.advisor = &tpfg.Result{Net: adv.Net, Rank: adv.Rank}
		// One pass computes the prediction and its score together,
		// mirroring Predict()'s strict-> argmax (first max wins): the score
		// is the argmax rank entry itself, so it stays right when the
		// candidate list carries duplicates or the prediction is the
		// virtual no-advisor node.
		a.predicted = make([]int, adv.Net.NumAuthors)
		a.predictedScore = make([]float64, adv.Net.NumAuthors)
		a.advisees = map[int][]int{}
		for i := range a.predicted {
			best, bestV := 0, adv.Rank[i][0]
			for v := 1; v < len(adv.Rank[i]); v++ {
				if adv.Rank[i][v] > bestV {
					best, bestV = v, adv.Rank[i][v]
				}
			}
			a.predictedScore[i] = bestV
			if best == 0 {
				a.predicted[i] = -1
			} else {
				a.predicted[i] = adv.Net.Cands[i][best-1].Advisor
				a.advisees[a.predicted[i]] = append(a.advisees[a.predicted[i]], i)
			}
		}
	}
	if h := snap.Hierarchy; h != nil {
		a.authorNodes = map[int][]authorNode{}
		authorTypes := search.AuthorTypes(h)
		for _, path := range a.paths {
			for _, x := range authorTypes {
				for _, e := range a.nodes[path].Entities[x] {
					a.authorNodes[e.ID] = append(a.authorNodes[e.ID], authorNode{Path: path, Score: e.Score})
				}
			}
		}
	}
	// The entity search index is built once per generation here, so it
	// rides the same atomic artifact swap as everything else: a hot reload
	// replaces index and snapshot together, and readers never lock.
	a.index = search.FromSnapshot(snap)
	return a, nil
}

// Server answers queries over the current snapshot artifact. Structure
// lookups are lock-free reads of the atomically-swapped artifact pointer;
// /infer runs on the shared pool behind a bounded in-flight semaphore,
// optionally through the request coalescer.
type Server struct {
	opt      Options
	cur      atomic.Pointer[artifact]
	inferSem chan struct{}
	mux      *http.ServeMux

	// Background machinery lifecycle: ctx is cancelled by Close (or by
	// Options.Ctx); bg tracks the coalescer collector and reload poller,
	// batchWG the in-flight coalesced batches.
	ctx     context.Context
	cancel  context.CancelFunc
	bg      sync.WaitGroup
	batchWG sync.WaitGroup

	// jobs feeds the coalescer collector; nil when coalescing is off.
	jobs chan *inferJob

	// reloadMu serializes artifact swaps; lastStamp is the stamp of the
	// last snapshot loaded from SnapshotPath.
	reloadMu  sync.Mutex
	nextGen   uint64
	lastStamp fileStamp
	reloadErr atomic.Value // string: last path-reload failure ("" = none)

	// retired holds closers of replaced artifacts until Close: an
	// in-flight request may still be reading the old mapping, so swaps
	// must never unmap. (The cost is address space, not resident memory —
	// clean file-backed pages are evictable.)
	mu      sync.Mutex
	retired []io.Closer
	closed  bool

	// Serving metrics, surfaced on /healthz and /metrics.
	inferBatches  atomic.Uint64 // fold-in batches dispatched (direct or coalesced)
	inferRequests atomic.Uint64 // /infer requests accepted into a batch

	// metrics is the /metrics registry (metrics.go); admitted is the
	// admission-control gauge: /infer requests in the system, bounded by
	// MaxInFlight+MaxQueue. window is the adaptive coalescing window
	// state (nil unless AdaptiveWindow with coalescing on).
	metrics  *metrics
	admitted atomic.Int64
	window   *ewmaWindow
}

// New builds a server over the snapshot and starts its background
// machinery (request coalescer when BatchWindow > 0, reload poller when
// SnapshotPath + ReloadPoll are set). Callers must Close the server when
// done serving; cancelling Options.Ctx stops the background goroutines
// early but releases no mappings.
func New(snap *store.Snapshot, opt Options) (*Server, error) {
	if !opt.Sampler.Valid() {
		return nil, fmt.Errorf("serve: unknown fold-in sampler %q (want %q, %q or %q)",
			opt.Sampler, lda.SamplerMH, lda.SamplerSparse, lda.SamplerDense)
	}
	opt = opt.withDefaults()
	a, err := buildArtifact(snap, opt, 1, nil)
	if err != nil {
		return nil, err
	}
	base := opt.Ctx
	if base == nil {
		base = context.Background()
	}
	s := &Server{opt: opt, inferSem: make(chan struct{}, opt.MaxInFlight), nextGen: 1, metrics: newMetrics()}
	s.ctx, s.cancel = context.WithCancel(base)
	s.cur.Store(a)
	s.reloadErr.Store("")
	if opt.SnapshotPath != "" {
		// Best-effort initial stamp, so a poller doesn't reload a file
		// that hasn't changed since the snapshot we were handed.
		if st, err := stampPath(opt.SnapshotPath); err == nil {
			s.lastStamp = st
		}
	}

	// Every route is registered through instrument (metrics.go): per-route
	// request/error counters, latency histogram, per-route timeout.
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealth))
	mux.HandleFunc("/topics", s.instrument("topics", s.handleTopics))
	mux.HandleFunc("/topics/", s.instrument("top_words", s.handleTopicTopWords))
	mux.HandleFunc("/hierarchy/node/", s.instrument("hierarchy_node", s.handleHierarchyNode))
	mux.HandleFunc("/phrases/search", s.instrument("phrases_search", s.handlePhraseSearch))
	mux.HandleFunc("/search", s.instrument("search", s.handleSearch))
	mux.HandleFunc("/entity/", s.instrument("entity", s.handleEntity))
	mux.HandleFunc("/advisor/", s.instrument("advisor", s.handleAdvisor))
	mux.HandleFunc("/infer", s.instrument("infer", s.handleInfer))
	mux.HandleFunc("/admin/reload", s.instrument("admin_reload", s.handleAdminReload))
	mux.HandleFunc("/metrics", s.instrument("metrics", s.handleMetrics))
	if opt.Pprof {
		// Deliberately NOT instrumented: the debug routes are outside the
		// fixed route-label universe, and a long CPU profile would distort
		// the latency histograms it exists to explain.
		registerDebug(mux)
	}
	s.mux = mux

	if opt.BatchWindow > 0 {
		s.jobs = make(chan *inferJob)
		if opt.AdaptiveWindow {
			s.window = newEwmaWindow(opt.BatchWindow)
			s.bg.Add(1)
			go s.tickWindow()
		}
		s.bg.Add(1)
		go s.collect()
	}
	if opt.SnapshotPath != "" && opt.ReloadPoll > 0 {
		s.bg.Add(1)
		go s.pollReload()
	}
	s.bg.Add(1)
	go s.collectRuntime()
	return s, nil
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// AdoptCloser attaches the initial snapshot's backing resource (typically
// a store.Mapped) to the server, releasing it on Close like the mappings
// of reloaded generations. Call it right after New, before serving.
func (s *Server) AdoptCloser(c io.Closer) {
	if c == nil {
		return
	}
	s.mu.Lock()
	s.retired = append(s.retired, c)
	s.mu.Unlock()
}

// Generation returns the current artifact generation (1 for the snapshot
// New was given; +1 per successful reload).
func (s *Server) Generation() uint64 { return s.cur.Load().gen }

// Close shuts the server down: it stops the coalescer and reload poller,
// fails queued /infer jobs, waits for in-flight coalesced batches, and
// releases every snapshot mapping (current and retired). Call it after the
// HTTP server wrapping Handler has drained — handlers must not run
// concurrently with the unmapping. Idempotent.
func (s *Server) Close() error {
	s.cancel()
	s.bg.Wait()      // collector + poller exited; queued jobs failed
	s.batchWG.Wait() // coalesced batches finished replying
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	if c := s.cur.Load().closer; c != nil {
		first = c.Close()
	}
	for _, c := range s.retired {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.retired = nil
	return first
}

// --- helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return false
	}
	return true
}

// queryInt parses an integer query parameter with a default.
func queryInt(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// --- conditional GET (ETag = snapshot generation) ---
//
// Structure routes answer from one immutable artifact, and identical
// requests against one generation are bit-identical — so the artifact
// generation IS the entity tag. A client that re-validates with
// If-None-Match gets a body-free 304 until a hot reload bumps the
// generation, at which point the tag stops matching and the route serves
// the new generation's content with its new tag.

// etagOf formats generation gen as a strong ETag.
func etagOf(gen uint64) string { return `"gen-` + strconv.FormatUint(gen, 10) + `"` }

// clientHasGen reports whether the request's If-None-Match names tag.
// Weak validators compare equal (`W/"gen-3"` matches `"gen-3"`): equal
// generations are byte-equal content, which is stronger than weak
// equivalence requires.
func clientHasGen(r *http.Request, tag string) bool {
	inm := r.Header.Get("If-None-Match")
	if inm == "" {
		return false
	}
	for _, c := range strings.Split(inm, ",") {
		c = strings.TrimSpace(c)
		if c == "*" {
			return true
		}
		if strings.TrimPrefix(c, "W/") == tag {
			return true
		}
	}
	return false
}

// condGET runs the conditional-GET protocol for a structure route pinned
// to artifact a: it reports true after writing a 304 (the caller returns
// immediately), and otherwise stamps the ETag for the 200 the caller is
// about to write. Handlers call it only once the request has resolved to
// servable content — error responses carry no ETag.
func condGET(w http.ResponseWriter, r *http.Request, a *artifact) bool {
	tag := etagOf(a.gen)
	w.Header().Set("ETag", tag)
	if clientHasGen(r, tag) {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

// --- /healthz ---

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	a := s.cur.Load()
	resp := map[string]any{
		"status":         "ok",
		"sections":       a.snap.Sections(),
		"generation":     a.gen,
		"infer_batches":  s.inferBatches.Load(),
		"infer_requests": s.inferRequests.Load(),
	}
	if a.snap.Topics != nil {
		resp["topics"] = a.snap.Topics.K
	}
	if a.vocab != nil {
		resp["vocab"] = a.vocab.Size()
	}
	if a.snap.Hierarchy != nil {
		resp["hierarchy_nodes"] = len(a.paths)
	}
	if s.opt.SnapshotPath != "" {
		resp["snapshot_path"] = s.opt.SnapshotPath
		if msg := s.reloadErr.Load().(string); msg != "" {
			resp["reload_error"] = msg
		}
	}
	if s.opt.BatchWindow > 0 {
		resp["batch_window_ms"] = float64(s.opt.BatchWindow) / float64(time.Millisecond)
		resp["max_batch_docs"] = s.opt.MaxBatchDocs
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- /topics and /topics/:k/top-words ---

func (s *Server) handleTopics(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	a := s.cur.Load()
	t := a.snap.Topics
	if t == nil {
		writeErr(w, http.StatusNotFound, "snapshot has no topics section")
		return
	}
	if condGET(w, r, a) {
		return
	}
	type topicInfo struct {
		Topic  int     `json:"topic"`
		Weight float64 `json:"weight,omitempty"`
	}
	out := make([]topicInfo, 0, len(t.Phi))
	for k := range t.Phi {
		ti := topicInfo{Topic: k}
		if k < len(t.Weight) {
			ti.Weight = t.Weight[k]
		}
		out = append(out, ti)
	}
	writeJSON(w, http.StatusOK, map[string]any{"topics": out})
}

func (s *Server) handleTopicTopWords(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	a := s.cur.Load()
	t := a.snap.Topics
	if t == nil {
		writeErr(w, http.StatusNotFound, "snapshot has no topics section")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/topics/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 || parts[1] != "top-words" {
		writeErr(w, http.StatusNotFound, "unknown topics endpoint %q (want /topics/{k}/top-words)", r.URL.Path)
		return
	}
	k, err := strconv.Atoi(parts[0])
	if err != nil || k < 0 || k >= len(t.Phi) {
		writeErr(w, http.StatusNotFound, "topic %q out of range [0, %d)", parts[0], len(t.Phi))
		return
	}
	n, err := queryInt(r, "n", 10)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if condGET(w, r, a) {
		return
	}
	phi := t.Phi[k]
	if n > len(phi) {
		n = len(phi)
	}
	if n < 0 {
		n = 0
	}
	type wordInfo struct {
		ID   int     `json:"id"`
		Word string  `json:"word,omitempty"`
		P    float64 `json:"p"`
	}
	words := make([]wordInfo, 0, n)
	for _, id := range linalg.TopK(phi, n) {
		wi := wordInfo{ID: id, P: phi[id]}
		if a.vocab != nil && id < a.vocab.Size() {
			wi.Word = a.vocab.Word(id)
		}
		words = append(words, wi)
	}
	writeJSON(w, http.StatusOK, map[string]any{"topic": k, "words": words})
}

// --- /hierarchy/node/:id ---

func (s *Server) handleHierarchyNode(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	a := s.cur.Load()
	if a.nodes == nil {
		writeErr(w, http.StatusNotFound, "snapshot has no hierarchy section")
		return
	}
	// Node ids are topic paths ("o", "o/1/2"); dots are accepted as
	// separators too ("o.1.2") for clients that keep slashes out of ids.
	id := strings.TrimPrefix(r.URL.Path, "/hierarchy/node/")
	path := strings.ReplaceAll(id, ".", "/")
	n := a.nodes[path]
	if n == nil {
		writeErr(w, http.StatusNotFound, "no hierarchy node %q", id)
		return
	}
	if condGET(w, r, a) {
		return
	}
	type phraseInfo struct {
		Display string  `json:"display"`
		Score   float64 `json:"score"`
	}
	type entityInfo struct {
		ID      int     `json:"id"`
		Display string  `json:"display"`
		Score   float64 `json:"score"`
	}
	type entityGroup struct {
		Type     int          `json:"type"`
		Name     string       `json:"name,omitempty"`
		Entities []entityInfo `json:"entities"`
	}
	phrases := make([]phraseInfo, 0, len(n.Phrases))
	for _, p := range n.Phrases {
		phrases = append(phrases, phraseInfo{p.Display, p.Score})
	}
	children := make([]string, 0, len(n.Children))
	for _, c := range n.Children {
		children = append(children, c.Path)
	}
	var groups []entityGroup
	typeIDs := make([]core.TypeID, 0, len(n.Entities))
	for x := range n.Entities {
		typeIDs = append(typeIDs, x)
	}
	sort.Slice(typeIDs, func(a, b int) bool { return typeIDs[a] < typeIDs[b] })
	for _, x := range typeIDs {
		g := entityGroup{Type: int(x), Name: a.snap.Hierarchy.TypeNames[x]}
		for _, e := range n.Entities[x] {
			g.Entities = append(g.Entities, entityInfo{e.ID, e.Display, e.Score})
		}
		groups = append(groups, g)
	}
	parent := ""
	if p := n.Parent(); p != nil {
		parent = p.Path
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"path": n.Path, "level": n.Level, "rho": n.Rho,
		"parent": parent, "children": children,
		"phrases": phrases, "entities": groups,
	})
}

// --- /phrases/search ---

func (s *Server) handlePhraseSearch(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	a := s.cur.Load()
	if a.phrases == nil {
		writeErr(w, http.StatusNotFound, "snapshot has no phrases (roles or hierarchy section required)")
		return
	}
	q := textkit.Fold(strings.TrimSpace(r.URL.Query().Get("q")))
	if q == "" {
		writeErr(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	limit, err := queryInt(r, "limit", 20)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if limit <= 0 {
		writeErr(w, http.StatusBadRequest, "parameter \"limit\" must be positive, got %d", limit)
		return
	}
	if condGET(w, r, a) {
		return
	}
	var hits []phraseHit
	for _, p := range a.phrases {
		if strings.Contains(p.folded, q) {
			hits = append(hits, p)
		}
	}
	sort.SliceStable(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		if hits[a].Display != hits[b].Display {
			return hits[a].Display < hits[b].Display
		}
		return hits[a].Path < hits[b].Path
	})
	if len(hits) > limit {
		hits = hits[:limit]
	}
	if hits == nil {
		hits = []phraseHit{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"query": q, "hits": hits})
}

// --- /advisor/:author ---

func (s *Server) handleAdvisor(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	a := s.cur.Load()
	if a.advisor == nil {
		writeErr(w, http.StatusNotFound, "snapshot has no advisor section")
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/advisor/")
	author, err := strconv.Atoi(raw)
	if err != nil {
		// Distinct from out-of-range: "/advisor/3/x" or "/advisor/smith"
		// never names an author index, and the old range message sent
		// clients hunting for a numeric bound that wasn't the problem.
		// Name lookups belong to /entity/:name.
		writeErr(w, http.StatusNotFound, "author %q is not a numeric author id (fuzzy name lookup is /entity/:name)", raw)
		return
	}
	if author < 0 || author >= a.advisor.Net.NumAuthors {
		writeErr(w, http.StatusNotFound, "author %q out of range [0, %d)", raw, a.advisor.Net.NumAuthors)
		return
	}
	if condGET(w, r, a) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"author": author, "advisor": a.predicted[author], "score": a.predictedScore[author],
		"candidates": candidatesOf(a, author),
	})
}

// candInfo is one advisor candidate in /advisor and /entity responses.
type candInfo struct {
	Advisor int     `json:"advisor"`
	Rank    float64 `json:"rank"`
	Start   int     `json:"start"`
	End     int     `json:"end"`
}

// candidatesOf renders author's candidate list with rank mass. Rank[v+1]
// corresponds to Cands[v]; Rank[0] is the virtual no-advisor node.
func candidatesOf(a *artifact, author int) []candInfo {
	cands := make([]candInfo, 0, len(a.advisor.Net.Cands[author]))
	for v, c := range a.advisor.Net.Cands[author] {
		cands = append(cands, candInfo{c.Advisor, a.advisor.Rank[author][v+1], c.Start, c.End})
	}
	return cands
}

// --- /search and /entity/:name ---

// searchHit is the JSON form of one /search result.
type searchHit struct {
	Kind     string  `json:"kind"`
	Name     string  `json:"name"`
	ID       int     `json:"id"`
	Path     string  `json:"path,omitempty"`
	Weight   float64 `json:"weight,omitempty"`
	Score    float64 `json:"score"`
	Distance int     `json:"distance"`
	Matched  int     `json:"matched"`
	Of       int     `json:"of"`
}

func toSearchHit(h search.Hit) searchHit {
	return searchHit{
		Kind: h.Kind.String(), Name: h.Name, ID: h.ID, Path: h.Path,
		Weight: h.Weight, Score: h.Score, Distance: h.Distance,
		Matched: h.Matched, Of: h.Of,
	}
}

// handleSearch is GET /search?q=&limit= — ranked, typed, fuzzy hits over
// everything the snapshot knows by name (vocabulary words, phrase
// displays, author ids/labels).
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	a := s.cur.Load()
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		writeErr(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	limit, err := queryInt(r, "limit", 20)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if limit <= 0 {
		writeErr(w, http.StatusBadRequest, "parameter \"limit\" must be positive, got %d", limit)
		return
	}
	if condGET(w, r, a) {
		return
	}
	hits := []searchHit{}
	for _, h := range a.index.Search(q, limit) {
		hits = append(hits, toSearchHit(h))
	}
	writeJSON(w, http.StatusOK, map[string]any{"query": q, "hits": hits})
}

// profileCap bounds the per-section list lengths of an entity profile
// (topic mixture entries, hierarchy placements, related phrases).
const profileCap = 10

// handleEntity is GET /entity/:name — fuzzy name resolution (exact and
// edit-distance-1/2 per token) plus one composed response with everything
// the engines know about the matched entity.
func (s *Server) handleEntity(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	a := s.cur.Load()
	name := strings.TrimPrefix(r.URL.Path, "/entity/")
	if strings.TrimSpace(name) == "" {
		writeErr(w, http.StatusBadRequest, "missing entity name (want /entity/:name)")
		return
	}
	hit, ok := a.index.Resolve(name)
	if !ok {
		writeErr(w, http.StatusNotFound, "no entity matching %q (within edit distance of any indexed name)", name)
		return
	}
	if condGET(w, r, a) {
		return
	}
	resp := map[string]any{
		"query":      name,
		"resolved":   toSearchHit(hit),
		"generation": a.gen,
	}
	switch hit.Kind {
	case search.KindWord:
		s.profileWord(a, hit.ID, resp)
	case search.KindPhrase:
		s.profilePhrase(a, hit.Name, resp)
	case search.KindAuthor:
		s.profileAuthor(a, hit.ID, resp)
	}
	writeJSON(w, http.StatusOK, resp)
}

// topicShare is one entry of a topic mixture.
type topicShare struct {
	Topic int     `json:"topic"`
	P     float64 `json:"p"`
}

// nodeShare is one hierarchy placement of a word.
type nodeShare struct {
	Path string  `json:"path"`
	P    float64 `json:"p"`
}

// mixtureOf computes p(k|words) ∝ sum_w Phi[k][w] · weight_k over the
// flat topic model, normalized — the posterior topic share of the word
// set under the fitted model, descending, capped at profileCap.
func mixtureOf(t *store.Topics, words []int) []topicShare {
	if t == nil || t.Phi == nil {
		return nil
	}
	mass := make([]float64, len(t.Phi))
	total := 0.0
	for k, phi := range t.Phi {
		wk := 1.0
		if k < len(t.Weight) && t.Weight[k] > 0 {
			wk = t.Weight[k]
		}
		for _, w := range words {
			if w >= 0 && w < len(phi) {
				mass[k] += phi[w] * wk
			}
		}
		total += mass[k]
	}
	if total <= 0 {
		return nil
	}
	out := make([]topicShare, 0, len(mass))
	for k, m := range mass {
		if m > 0 {
			out = append(out, topicShare{Topic: k, P: m / total})
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].P > out[b].P })
	if len(out) > profileCap {
		out = out[:profileCap]
	}
	return out
}

// wordNodes ranks the hierarchy nodes word w loads on by the node's term
// distribution, descending, capped at profileCap.
func wordNodes(a *artifact, w int) []nodeShare {
	var out []nodeShare
	for _, path := range a.paths {
		phi := a.nodes[path].Phi[core.TermType]
		if w >= 0 && w < len(phi) && phi[w] > 0 {
			out = append(out, nodeShare{Path: path, P: phi[w]})
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].P > out[b].P })
	if len(out) > profileCap {
		out = out[:profileCap]
	}
	return out
}

// phrasesWithToken collects the phrase hits whose folded display contains
// token as a whole token, best score first, capped at profileCap.
func phrasesWithToken(a *artifact, token string) []phraseHit {
	var out []phraseHit
	for _, p := range a.phrases {
		for _, t := range textkit.Tokenize(p.folded) {
			if t == token {
				out = append(out, p)
				break
			}
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		if out[a].Display != out[b].Display {
			return out[a].Display < out[b].Display
		}
		return out[a].Path < out[b].Path
	})
	if len(out) > profileCap {
		out = out[:profileCap]
	}
	return out
}

func (s *Server) profileWord(a *artifact, w int, resp map[string]any) {
	if m := mixtureOf(a.snap.Topics, []int{w}); m != nil {
		resp["topic_mixture"] = m
	}
	if nodes := wordNodes(a, w); nodes != nil {
		resp["nodes"] = nodes
	}
	if a.vocab != nil && w < a.vocab.Size() {
		if ph := phrasesWithToken(a, textkit.Fold(a.vocab.Word(w))); ph != nil {
			resp["phrases"] = ph
		}
	}
}

func (s *Server) profilePhrase(a *artifact, display string, resp map[string]any) {
	folded := textkit.Fold(display)
	occ := []phraseHit{}
	for _, p := range a.phrases {
		if p.folded == folded {
			occ = append(occ, p)
		}
	}
	resp["occurrences"] = occ
	// The phrase's constituent words, resolved to vocabulary ids where the
	// snapshot knows them, and the composed topic mixture over those ids.
	type wordRef struct {
		Word string `json:"word"`
		ID   int    `json:"id"`
	}
	var words []wordRef
	var ids []int
	for _, tok := range textkit.Tokenize(display) {
		ref := wordRef{Word: tok, ID: -1}
		if a.vocab != nil {
			if id, ok := a.vocab.ID(tok); ok {
				ref.ID = id
				ids = append(ids, id)
			}
		}
		words = append(words, ref)
	}
	if words != nil {
		resp["words"] = words
	}
	if m := mixtureOf(a.snap.Topics, ids); m != nil {
		resp["topic_mixture"] = m
	}
}

func (s *Server) profileAuthor(a *artifact, id int, resp map[string]any) {
	if a.advisor != nil && id >= 0 && id < a.advisor.Net.NumAuthors {
		resp["advisor"] = map[string]any{
			"advisor": a.predicted[id], "score": a.predictedScore[id],
			"candidates": candidatesOf(a, id),
		}
		advisees := []map[string]any{}
		for _, j := range a.advisees[id] {
			advisees = append(advisees, map[string]any{"author": j, "score": a.predictedScore[j]})
		}
		resp["advisees"] = advisees
	}
	if nodes := a.authorNodes[id]; nodes != nil {
		resp["nodes"] = nodes
	}
}

// --- /infer ---

// maxInferSweeps caps the per-request sweep count (client-supplied or
// operator default alike) so one request cannot monopolize the pool.
const maxInferSweeps = 500

// inferRequest is the fold-in request body. Documents arrive either as
// token strings (resolved through the snapshot vocabulary; unknown words
// are dropped) or as raw vocabulary ids.
type inferRequest struct {
	Seed   int64      `json:"seed"`
	Docs   [][]string `json:"docs,omitempty"`
	IDs    [][]int    `json:"ids,omitempty"`
	Sweeps int        `json:"sweeps,omitempty"`
}

// resolveDocs turns a request's documents into vocabulary-id batches
// against one artifact's vocabulary. The error string is a client error
// (400) when non-empty.
func resolveDocs(a *artifact, req *inferRequest) ([][]int, string) {
	if req.IDs != nil {
		return req.IDs, ""
	}
	if a.vocab == nil {
		return nil, "snapshot has no vocab section; send ids instead of docs"
	}
	batch := make([][]int, len(req.Docs))
	for i, doc := range req.Docs {
		ids := make([]int, 0, len(doc))
		for _, tok := range doc {
			if id, ok := a.vocab.ID(tok); ok {
				ids = append(ids, id)
			}
		}
		batch[i] = ids
	}
	return batch, ""
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.cur.Load().foldIn == nil {
		writeErr(w, http.StatusNotFound, "snapshot has no topics section (fold-in unavailable)")
		return
	}
	// Admission control: bound the number of /infer requests in the
	// system — running plus waiting for a slot or parked in a forming
	// batch — at MaxInFlight+MaxQueue. Beyond that the server is past the
	// load it can usefully queue for, so shed immediately (503 +
	// Retry-After) before even reading the body: queue depth stays
	// bounded, shed requests cost ~nothing, and admitted requests keep
	// their latency instead of everyone timing out together.
	limit := int64(s.opt.MaxInFlight + s.opt.MaxQueue)
	if n := s.admitted.Add(1); n > limit {
		s.admitted.Add(-1)
		s.metrics.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable,
			"overloaded: %d /infer requests already in the system (max-inflight %d + max-queue %d)",
			limit, s.opt.MaxInFlight, s.opt.MaxQueue)
		return
	}
	defer s.admitted.Add(-1)
	var req inferRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if (req.Docs == nil) == (req.IDs == nil) {
		writeErr(w, http.StatusBadRequest, "exactly one of docs (token strings) or ids (vocabulary ids) required")
		return
	}
	sweeps := req.Sweeps
	if sweeps <= 0 {
		sweeps = s.opt.Sweeps
	}
	if sweeps > maxInferSweeps {
		sweeps = maxInferSweeps
	}

	if s.jobs != nil {
		s.inferCoalesced(w, r, &req, sweeps)
		return
	}

	// Direct path (coalescing off): this request is its own batch. The
	// artifact is pinned once, so a hot reload mid-request is invisible.
	a := s.cur.Load()
	if a.foldIn == nil {
		writeErr(w, http.StatusNotFound, "snapshot has no topics section (fold-in unavailable)")
		return
	}
	batch, errmsg := resolveDocs(a, &req)
	if errmsg != "" {
		writeErr(w, http.StatusBadRequest, "%s", errmsg)
		return
	}

	// Bounded in-flight batching: at most MaxInFlight fold-in batches run
	// concurrently; waiters drop out when their request is cancelled.
	select {
	case s.inferSem <- struct{}{}:
		defer func() { <-s.inferSem }()
	case <-r.Context().Done():
		writeErr(w, http.StatusServiceUnavailable, "request cancelled while waiting for an inference slot")
		return
	}

	s.inferBatches.Add(1)
	s.inferRequests.Add(1)
	s.metrics.batchDocs.Observe(float64(len(batch)))
	theta, err := lda.FoldIn(a.foldIn, batch, lda.FoldInConfig{
		Seed: req.Seed, Sweeps: sweeps, P: s.opt.P, Sampler: s.opt.Sampler, Ctx: r.Context(),
		Rec: s.metrics,
	})
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, "inference aborted: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"topics": a.foldIn.K(), "seed": req.Seed, "sweeps": sweeps,
		"generation": a.gen, "theta": theta,
	})
}
