package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"lesm/internal/core"
	"lesm/internal/lda"
	"lesm/internal/linalg"
	"lesm/internal/store"
	"lesm/internal/textkit"
	"lesm/internal/tpfg"
)

// Options configure a Server.
type Options struct {
	// P bounds the fold-in worker count per /infer batch (0 = GOMAXPROCS).
	P int
	// MaxInFlight caps concurrent /infer batches; further requests wait
	// until a slot frees or their context is cancelled (default 4).
	MaxInFlight int
	// Sweeps is the fold-in sweep count (default 30).
	Sweeps int
	// Alpha is the fold-in document prior (default
	// lda.DefaultFoldInAlpha). The snapshot's fitted alpha (50/K by
	// convention) is deliberately NOT the default: it is calibrated for
	// whole training documents and bounds a short query document's theta
	// to near-uniform; pass it explicitly to get posterior-mean behavior.
	Alpha float64
	// Sampler selects the fold-in sampling core ("" = sparse, the
	// bucket+alias core; "dense" = the O(K)-per-token core for A/B
	// validation). The sparse core samples the same conditional through a
	// different deterministic trajectory and precomputes per-word alias
	// tables at startup (~2 extra words of memory per topic-word cell).
	Sampler lda.Sampler
}

// withDefaults fills defaults and clamps nonsensical negatives (a negative
// MaxInFlight would panic in make(chan); a negative Sweeps would silently
// skip all refinement sweeps).
func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4
	}
	if o.Sweeps <= 0 {
		o.Sweeps = 30
	}
	if o.Sweeps > maxInferSweeps {
		o.Sweeps = maxInferSweeps
	}
	if o.Alpha <= 0 {
		o.Alpha = lda.DefaultFoldInAlpha
	}
	return o
}

// phraseHit is one prepared entry of the phrase search index.
type phraseHit struct {
	Path    string  `json:"path"`
	Display string  `json:"display"`
	Score   float64 `json:"score"`
	lower   string
}

// Server answers read-only queries over one immutable snapshot. All fields
// are initialized in New and never written afterwards; handlers therefore
// need no locking.
type Server struct {
	snap    *store.Snapshot
	opt     Options
	vocab   *textkit.Vocabulary
	foldIn  *lda.FoldInModel
	nodes   map[string]*core.TopicNode
	paths   []string // hierarchy pre-order
	phrases []phraseHit
	advisor *tpfg.Result
	// predicted[i] is advisor.Predict()[i], computed once at startup so
	// /advisor lookups don't re-run the all-authors argmax per request.
	predicted []int
	inferSem  chan struct{}
	mux       *http.ServeMux
}

// New builds a server over the snapshot. The snapshot must carry at least
// one section; endpoints whose section is absent answer 404 with an
// explanatory error.
func New(snap *store.Snapshot, opt Options) (*Server, error) {
	if snap == nil {
		return nil, errors.New("serve: nil snapshot")
	}
	if len(snap.Sections()) == 0 {
		return nil, errors.New("serve: empty snapshot (no sections)")
	}
	// CRC-valid files can still be shape-inconsistent (e.g. rank vectors
	// disagreeing with candidate lists); reject them here instead of
	// panicking at query time.
	if err := snap.Validate(); err != nil {
		return nil, fmt.Errorf("serve: invalid snapshot: %w", err)
	}
	if !opt.Sampler.Valid() {
		return nil, fmt.Errorf("serve: unknown fold-in sampler %q (want %q or %q)",
			opt.Sampler, lda.SamplerSparse, lda.SamplerDense)
	}
	opt = opt.withDefaults()
	s := &Server{snap: snap, opt: opt, inferSem: make(chan struct{}, opt.MaxInFlight)}

	if snap.Vocab != nil {
		s.vocab = textkit.VocabularyFromWords(snap.Vocab)
	}
	if t := snap.Topics; t != nil {
		if t.NKV != nil && t.NK != nil {
			s.foldIn = lda.FoldInModelFromCounts(t.NKV, t.NK, opt.Alpha, t.Beta)
		} else if t.Phi != nil {
			s.foldIn = lda.NewFoldInModel(t.Phi, opt.Alpha)
		}
		if s.foldIn != nil && opt.Sampler != lda.SamplerDense {
			// Pay the sparse core's O(K·V) alias build at startup, not on
			// the first /infer request.
			s.foldIn.PrecomputeSparse()
		}
	}
	if h := snap.Hierarchy; h != nil {
		s.nodes = map[string]*core.TopicNode{}
		h.Root.Walk(func(n *core.TopicNode) {
			s.paths = append(s.paths, n.Path)
			s.nodes[n.Path] = n
		})
	}
	// Phrase search index: the roles section when present (the analyzer's
	// per-topic view), otherwise the hierarchy's attached phrase lists.
	if snap.RolePhrases != nil {
		for _, tp := range snap.RolePhrases {
			for _, p := range tp.Phrases {
				s.phrases = append(s.phrases, phraseHit{Path: tp.Path, Display: p.Display, Score: p.Score, lower: strings.ToLower(p.Display)})
			}
		}
	} else if snap.Hierarchy != nil {
		for _, path := range s.paths {
			for _, p := range s.nodes[path].Phrases {
				s.phrases = append(s.phrases, phraseHit{Path: path, Display: p.Display, Score: p.Score, lower: strings.ToLower(p.Display)})
			}
		}
	}
	if a := snap.Advisor; a != nil {
		s.advisor = &tpfg.Result{Net: a.Net, Rank: a.Rank}
		s.predicted = s.advisor.Predict()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/topics", s.handleTopics)
	mux.HandleFunc("/topics/", s.handleTopicTopWords)
	mux.HandleFunc("/hierarchy/node/", s.handleHierarchyNode)
	mux.HandleFunc("/phrases/search", s.handlePhraseSearch)
	mux.HandleFunc("/advisor/", s.handleAdvisor)
	mux.HandleFunc("/infer", s.handleInfer)
	s.mux = mux
	return s, nil
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// --- helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return false
	}
	return true
}

// queryInt parses an integer query parameter with a default.
func queryInt(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// --- /healthz ---

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	resp := map[string]any{
		"status":   "ok",
		"sections": s.snap.Sections(),
	}
	if s.snap.Topics != nil {
		resp["topics"] = s.snap.Topics.K
	}
	if s.vocab != nil {
		resp["vocab"] = s.vocab.Size()
	}
	if s.snap.Hierarchy != nil {
		resp["hierarchy_nodes"] = len(s.paths)
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- /topics and /topics/:k/top-words ---

func (s *Server) handleTopics(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	t := s.snap.Topics
	if t == nil {
		writeErr(w, http.StatusNotFound, "snapshot has no topics section")
		return
	}
	type topicInfo struct {
		Topic  int     `json:"topic"`
		Weight float64 `json:"weight,omitempty"`
	}
	out := make([]topicInfo, 0, len(t.Phi))
	for k := range t.Phi {
		ti := topicInfo{Topic: k}
		if k < len(t.Weight) {
			ti.Weight = t.Weight[k]
		}
		out = append(out, ti)
	}
	writeJSON(w, http.StatusOK, map[string]any{"topics": out})
}

func (s *Server) handleTopicTopWords(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	t := s.snap.Topics
	if t == nil {
		writeErr(w, http.StatusNotFound, "snapshot has no topics section")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/topics/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 || parts[1] != "top-words" {
		writeErr(w, http.StatusNotFound, "unknown topics endpoint %q (want /topics/{k}/top-words)", r.URL.Path)
		return
	}
	k, err := strconv.Atoi(parts[0])
	if err != nil || k < 0 || k >= len(t.Phi) {
		writeErr(w, http.StatusNotFound, "topic %q out of range [0, %d)", parts[0], len(t.Phi))
		return
	}
	n, err := queryInt(r, "n", 10)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	phi := t.Phi[k]
	if n > len(phi) {
		n = len(phi)
	}
	if n < 0 {
		n = 0
	}
	type wordInfo struct {
		ID   int     `json:"id"`
		Word string  `json:"word,omitempty"`
		P    float64 `json:"p"`
	}
	words := make([]wordInfo, 0, n)
	for _, id := range linalg.TopK(phi, n) {
		wi := wordInfo{ID: id, P: phi[id]}
		if s.vocab != nil && id < s.vocab.Size() {
			wi.Word = s.vocab.Word(id)
		}
		words = append(words, wi)
	}
	writeJSON(w, http.StatusOK, map[string]any{"topic": k, "words": words})
}

// --- /hierarchy/node/:id ---

func (s *Server) handleHierarchyNode(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	if s.nodes == nil {
		writeErr(w, http.StatusNotFound, "snapshot has no hierarchy section")
		return
	}
	// Node ids are topic paths ("o", "o/1/2"); dots are accepted as
	// separators too ("o.1.2") for clients that keep slashes out of ids.
	id := strings.TrimPrefix(r.URL.Path, "/hierarchy/node/")
	path := strings.ReplaceAll(id, ".", "/")
	n := s.nodes[path]
	if n == nil {
		writeErr(w, http.StatusNotFound, "no hierarchy node %q", id)
		return
	}
	type phraseInfo struct {
		Display string  `json:"display"`
		Score   float64 `json:"score"`
	}
	type entityInfo struct {
		ID      int     `json:"id"`
		Display string  `json:"display"`
		Score   float64 `json:"score"`
	}
	type entityGroup struct {
		Type     int          `json:"type"`
		Name     string       `json:"name,omitempty"`
		Entities []entityInfo `json:"entities"`
	}
	phrases := make([]phraseInfo, 0, len(n.Phrases))
	for _, p := range n.Phrases {
		phrases = append(phrases, phraseInfo{p.Display, p.Score})
	}
	children := make([]string, 0, len(n.Children))
	for _, c := range n.Children {
		children = append(children, c.Path)
	}
	var groups []entityGroup
	typeIDs := make([]core.TypeID, 0, len(n.Entities))
	for x := range n.Entities {
		typeIDs = append(typeIDs, x)
	}
	sort.Slice(typeIDs, func(a, b int) bool { return typeIDs[a] < typeIDs[b] })
	for _, x := range typeIDs {
		g := entityGroup{Type: int(x), Name: s.snap.Hierarchy.TypeNames[x]}
		for _, e := range n.Entities[x] {
			g.Entities = append(g.Entities, entityInfo{e.ID, e.Display, e.Score})
		}
		groups = append(groups, g)
	}
	parent := ""
	if p := n.Parent(); p != nil {
		parent = p.Path
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"path": n.Path, "level": n.Level, "rho": n.Rho,
		"parent": parent, "children": children,
		"phrases": phrases, "entities": groups,
	})
}

// --- /phrases/search ---

func (s *Server) handlePhraseSearch(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	if s.phrases == nil {
		writeErr(w, http.StatusNotFound, "snapshot has no phrases (roles or hierarchy section required)")
		return
	}
	q := strings.ToLower(strings.TrimSpace(r.URL.Query().Get("q")))
	if q == "" {
		writeErr(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	limit, err := queryInt(r, "limit", 20)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if limit <= 0 {
		limit = 20 // a non-positive limit is not "unlimited"
	}
	var hits []phraseHit
	for _, p := range s.phrases {
		if strings.Contains(p.lower, q) {
			hits = append(hits, p)
		}
	}
	sort.SliceStable(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		if hits[a].Display != hits[b].Display {
			return hits[a].Display < hits[b].Display
		}
		return hits[a].Path < hits[b].Path
	})
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	if hits == nil {
		hits = []phraseHit{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"query": q, "hits": hits})
}

// --- /advisor/:author ---

func (s *Server) handleAdvisor(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	if s.advisor == nil {
		writeErr(w, http.StatusNotFound, "snapshot has no advisor section")
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/advisor/")
	author, err := strconv.Atoi(raw)
	if err != nil || author < 0 || author >= s.advisor.Net.NumAuthors {
		writeErr(w, http.StatusNotFound, "author %q out of range [0, %d)", raw, s.advisor.Net.NumAuthors)
		return
	}
	type candInfo struct {
		Advisor int     `json:"advisor"`
		Rank    float64 `json:"rank"`
		Start   int     `json:"start"`
		End     int     `json:"end"`
	}
	best := s.predicted[author]
	bestScore := s.advisor.Rank[author][0]
	cands := make([]candInfo, 0, len(s.advisor.Net.Cands[author]))
	for v, c := range s.advisor.Net.Cands[author] {
		rank := s.advisor.Rank[author][v+1]
		cands = append(cands, candInfo{c.Advisor, rank, c.Start, c.End})
		if c.Advisor == best {
			bestScore = rank
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"author": author, "advisor": best, "score": bestScore, "candidates": cands,
	})
}

// --- /infer ---

// maxInferSweeps caps the per-request sweep count (client-supplied or
// operator default alike) so one request cannot monopolize the pool.
const maxInferSweeps = 500

// inferRequest is the fold-in request body. Documents arrive either as
// token strings (resolved through the snapshot vocabulary; unknown words
// are dropped) or as raw vocabulary ids.
type inferRequest struct {
	Seed   int64      `json:"seed"`
	Docs   [][]string `json:"docs,omitempty"`
	IDs    [][]int    `json:"ids,omitempty"`
	Sweeps int        `json:"sweeps,omitempty"`
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.foldIn == nil {
		writeErr(w, http.StatusNotFound, "snapshot has no topics section (fold-in unavailable)")
		return
	}
	var req inferRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if (req.Docs == nil) == (req.IDs == nil) {
		writeErr(w, http.StatusBadRequest, "exactly one of docs (token strings) or ids (vocabulary ids) required")
		return
	}
	var batch [][]int
	if req.IDs != nil {
		batch = req.IDs
	} else {
		if s.vocab == nil {
			writeErr(w, http.StatusBadRequest, "snapshot has no vocab section; send ids instead of docs")
			return
		}
		batch = make([][]int, len(req.Docs))
		for i, doc := range req.Docs {
			ids := make([]int, 0, len(doc))
			for _, tok := range doc {
				if id, ok := s.vocab.ID(tok); ok {
					ids = append(ids, id)
				}
			}
			batch[i] = ids
		}
	}

	// Bounded in-flight batching: at most MaxInFlight fold-in batches run
	// concurrently; waiters drop out when their request is cancelled.
	select {
	case s.inferSem <- struct{}{}:
		defer func() { <-s.inferSem }()
	case <-r.Context().Done():
		writeErr(w, http.StatusServiceUnavailable, "request cancelled while waiting for an inference slot")
		return
	}

	sweeps := req.Sweeps
	if sweeps <= 0 {
		sweeps = s.opt.Sweeps
	}
	if sweeps > maxInferSweeps {
		sweeps = maxInferSweeps
	}
	theta, err := lda.FoldIn(s.foldIn, batch, lda.FoldInConfig{
		Seed: req.Seed, Sweeps: sweeps, P: s.opt.P, Sampler: s.opt.Sampler, Ctx: r.Context(),
	})
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, "inference aborted: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"topics": s.foldIn.K(), "seed": req.Seed, "sweeps": sweeps, "theta": theta,
	})
}
