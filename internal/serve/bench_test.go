package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"
)

// benchInfer measures /infer requests per second end to end (HTTP decode,
// semaphore, fold-in, JSON encode) at a given fold-in parallelism.
func benchInfer(b *testing.B, p int) {
	s, err := New(testSnapshot(b), Options{P: p, MaxInFlight: 8})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// A 32-document batch of 8-token docs per request.
	ids := make([][]int, 32)
	for i := range ids {
		ids[i] = []int{i % 10, (i + 1) % 10, (i + 2) % 10, (i + 3) % 10, i % 10, (i + 5) % 10, (i + 6) % 10, (i + 7) % 10}
	}
	body, _ := json.Marshal(map[string]any{"seed": 7, "ids": ids, "sweeps": 20})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func BenchmarkInferP1(b *testing.B)      { benchInfer(b, 1) }
func BenchmarkInferPNumCPU(b *testing.B) { benchInfer(b, runtime.GOMAXPROCS(0)) }

// benchInferConcurrent measures /infer under concurrent single-document
// clients — the workload request coalescing exists for — and reports p50
// and p99 request latency alongside the standard throughput numbers.
func benchInferConcurrent(b *testing.B, opt Options) {
	s, err := New(testSnapshot(b), opt)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(map[string]any{"seed": 7, "ids": [][]int{{0, 1, 2, 3, 5, 6, 7, 8}}, "sweeps": 20})
	var mu sync.Mutex
	var lats []time.Duration
	// 8 client goroutines per GOMAXPROCS: the coalescer only has work to
	// merge when requests actually overlap, including on 1-CPU runners.
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			t0 := time.Now()
			resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
			}
			resp.Body.Close()
			d := time.Since(t0)
			mu.Lock()
			lats = append(lats, d)
			mu.Unlock()
		}
	})
	b.StopTimer()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		b.ReportMetric(float64(lats[len(lats)/2])/1e6, "p50-ms")
		b.ReportMetric(float64(lats[len(lats)*99/100])/1e6, "p99-ms")
	}
}

// BenchmarkInferConcurrentDirect is the un-coalesced baseline: every
// request is its own fold-in batch.
func BenchmarkInferConcurrentDirect(b *testing.B) {
	benchInferConcurrent(b, Options{MaxInFlight: 8})
}

// BenchmarkInferConcurrentCoalesced merges the same request stream into
// windowed batches.
func BenchmarkInferConcurrentCoalesced(b *testing.B) {
	benchInferConcurrent(b, Options{MaxInFlight: 8, BatchWindow: time.Millisecond, MaxBatchDocs: 256})
}

// The saturated pair: a single in-flight slot models a pool with no head
// room. Direct serialization pays one batch per request through the one
// slot; the coalescer folds the same concurrent stream into a few batches.
func BenchmarkInferSaturatedDirect(b *testing.B) {
	benchInferConcurrent(b, Options{MaxInFlight: 1})
}

func BenchmarkInferSaturatedCoalesced(b *testing.B) {
	benchInferConcurrent(b, Options{MaxInFlight: 1, BatchWindow: time.Millisecond, MaxBatchDocs: 256})
}
