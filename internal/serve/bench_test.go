package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
)

// benchInfer measures /infer requests per second end to end (HTTP decode,
// semaphore, fold-in, JSON encode) at a given fold-in parallelism.
func benchInfer(b *testing.B, p int) {
	s, err := New(testSnapshot(b), Options{P: p, MaxInFlight: 8})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// A 32-document batch of 8-token docs per request.
	ids := make([][]int, 32)
	for i := range ids {
		ids[i] = []int{i % 10, (i + 1) % 10, (i + 2) % 10, (i + 3) % 10, i % 10, (i + 5) % 10, (i + 6) % 10, (i + 7) % 10}
	}
	body, _ := json.Marshal(map[string]any{"seed": 7, "ids": ids, "sweeps": 20})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func BenchmarkInferP1(b *testing.B)      { benchInfer(b, 1) }
func BenchmarkInferPNumCPU(b *testing.B) { benchInfer(b, runtime.GOMAXPROCS(0)) }
