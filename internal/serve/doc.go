// Package serve is the read side of the framework: an HTTP/JSON query
// server over model snapshots (internal/store). It answers structure
// lookups (topic top-words, hierarchy nodes, phrase search, advisor
// rankings) from immutable in-memory state, and runs fold-in Gibbs
// inference (internal/lda.FoldIn) for unseen documents on the shared
// parallel runtime.
//
// Concurrency model: everything the handlers read hangs off one immutable
// artifact value behind an atomic pointer. Handlers load the pointer once
// per request and run lock-free; a snapshot hot reload (mtime polling of
// the snapshot path, or POST /admin/reload) builds and validates the next
// artifact off to the side and swaps the pointer, so a refit goes live
// with zero downtime while in-flight requests finish on the artifact they
// started with. Every /infer response names the artifact generation it was
// answered from; identical requests against one generation are
// bit-identical.
//
// /infer runs behind a bounded in-flight semaphore, optionally through the
// request coalescer: with Options.BatchWindow set, requests merge into one
// fold-in batch with group-commit timing (dispatch on slot-free,
// batch-full or window-expiry, whichever is first — see coalesce.go).
// Because every document samples from its own request's (seed, index,
// sweep) PRNG streams, coalescing never changes a response. Snapshots can
// be served straight from a read-only memory mapping (Options.MMap /
// store.OpenMapped); replaced generations' mappings are retired until
// Close so a request racing a reload never touches unmapped memory.
//
// Traffic envelope and observability (serving v3): admission control
// bounds /infer at MaxInFlight running plus MaxQueue waiting — excess
// requests are shed before body decode with 503 + Retry-After.
// Options.RouteTimeout deadlines every route, reaching queued, coalesced
// and mid-sampling work (fold-in aborts between par chunks).
// Options.AdaptiveWindow lets an EWMA of inter-arrival gaps shrink the
// coalescing window under fast traffic (BatchWindow becomes a ceiling;
// see adaptive.go). GET /metrics renders Prometheus text format 0.0.4
// with no client library (metrics.go); structure routes carry a strong
// "gen-N" ETag and honor If-None-Match, revalidating across hot-reload
// generation bumps. All of it is locked in under -race by the saturation,
// ETag, timeout and scrape-lint suites in this package's tests.
//
// cmd/lesmd wraps this package as a standalone daemon.
package serve
