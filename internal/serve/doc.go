// Package serve is the read side of the framework: an HTTP/JSON query
// server over a loaded model snapshot (internal/store). It answers
// structure lookups (topic top-words, hierarchy nodes, phrase search,
// advisor rankings) from immutable in-memory state, and runs fold-in Gibbs
// inference (internal/lda.FoldIn) for unseen documents on the shared
// parallel runtime.
//
// Concurrency model: everything the handlers read is built once in New and
// never mutated afterwards, so query handlers run lock-free; the only
// guarded resource is the bounded in-flight semaphore that caps concurrent
// /infer batches. Inference is deterministic per request — identical
// (seed, doc index, tokens) give identical distributions at any server
// parallelism — because each document samples from its own counter-based
// PRNG stream against the frozen topic-word statistics.
//
// cmd/lesmd wraps this package as a standalone daemon.
package serve
