package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"lesm/internal/store"
)

// altSnapshot is testSnapshot with a visibly different topic model (three
// topics instead of two), so a swap is observable on every route.
func altSnapshot(t testing.TB) *store.Snapshot {
	t.Helper()
	snap := testSnapshot(t)
	t3 := &store.Topics{K: 3, V: snap.Topics.V,
		Weight: []float64{0.4, 0.4, 0.2},
		Alpha:  snap.Topics.Alpha, Beta: snap.Topics.Beta}
	for k := 0; k < 3; k++ {
		phi := make([]float64, t3.V)
		nkv := make([]int, t3.V)
		nk := 0
		for w := range phi {
			c := 1 + (w+3*k)%7
			nkv[w] = c
			nk += c
		}
		for w := range phi {
			phi[w] = (float64(nkv[w]) + t3.Beta) / (float64(nk) + float64(t3.V)*t3.Beta)
		}
		t3.Phi = append(t3.Phi, phi)
		t3.NKV = append(t3.NKV, nkv)
		t3.NK = append(t3.NK, nk)
	}
	snap.Topics = t3
	return snap
}

func (s *Server) serveOnce(t testing.TB, method, target string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	var req *http.Request
	if body != nil {
		req = httptest.NewRequest(method, target, bytes.NewReader(body))
	} else {
		req = httptest.NewRequest(method, target, nil)
	}
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// TestAdminReloadSwapsGeneration: POST /admin/reload picks up a replaced
// snapshot file, bumps the generation, and /infer answers from the new
// model; a second forced reload of the unchanged file still succeeds.
func TestAdminReloadSwapsGeneration(t *testing.T) {
	path := t.TempDir() + "/model.lesm"
	if err := store.Write(path, testSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	s, err := New(testSnapshot(t), Options{SnapshotPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	body := inferBody(t, 9, [][]int{{0, 1, 2, 3}}, 10)
	rec := s.serveOnce(t, http.MethodPost, "/infer", body)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"generation":1`) {
		t.Fatalf("gen-1 infer: %d %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"topics":2`) {
		t.Fatalf("gen-1 topics: %s", rec.Body.String())
	}

	if err := store.Write(path, altSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	rec = s.serveOnce(t, http.MethodPost, "/admin/reload", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"reloaded":true`) {
		t.Fatalf("admin reload: %d %s", rec.Code, rec.Body.String())
	}
	if g := s.Generation(); g != 2 {
		t.Fatalf("generation = %d, want 2", g)
	}
	rec = s.serveOnce(t, http.MethodPost, "/infer", body)
	if !strings.Contains(rec.Body.String(), `"generation":2`) || !strings.Contains(rec.Body.String(), `"topics":3`) {
		t.Fatalf("gen-2 infer did not see the new model: %s", rec.Body.String())
	}

	// Forced reload with no change still swaps (operator semantics).
	rec = s.serveOnce(t, http.MethodPost, "/admin/reload", nil)
	if rec.Code != http.StatusOK || s.Generation() != 3 {
		t.Fatalf("forced no-change reload: %d gen=%d", rec.Code, s.Generation())
	}
	// GET is not allowed; unconfigured path is a 409 (fresh server).
	if rec := s.serveOnce(t, http.MethodGet, "/admin/reload", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/reload = %d", rec.Code)
	}
	s2, err := New(testSnapshot(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec := s2.serveOnce(t, http.MethodPost, "/admin/reload", nil); rec.Code != http.StatusConflict {
		t.Fatalf("pathless reload = %d", rec.Code)
	}
}

// TestPollerPicksUpReplacedSnapshot: the mtime/size poller must notice an
// atomically replaced file and swap without any admin call; an unchanged
// file must NOT bump the generation.
func TestPollerPicksUpReplacedSnapshot(t *testing.T) {
	path := t.TempDir() + "/model.lesm"
	if err := store.Write(path, testSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	s, err := New(testSnapshot(t), Options{SnapshotPath: path, ReloadPoll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// No change: generation must hold across several poll intervals.
	time.Sleep(50 * time.Millisecond)
	if g := s.Generation(); g != 1 {
		t.Fatalf("poller reloaded an unchanged file: gen = %d", g)
	}

	if err := store.Write(path, altSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Generation() == 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := s.Generation(); g != 2 {
		t.Fatalf("poller missed the replaced snapshot: gen = %d", g)
	}

	// A broken replacement must not take down serving: the old artifact
	// stays live and the error is surfaced on /healthz.
	if err := writeCorrupt(path); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		rec := s.serveOnce(t, http.MethodGet, "/healthz", nil)
		if strings.Contains(rec.Body.String(), "reload_error") {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	rec := s.serveOnce(t, http.MethodGet, "/healthz", nil)
	if !strings.Contains(rec.Body.String(), "reload_error") {
		t.Fatalf("corrupt replacement not surfaced: %s", rec.Body.String())
	}
	if g := s.Generation(); g != 2 {
		t.Fatalf("corrupt replacement changed the serving artifact: gen = %d", g)
	}
	if rec := s.serveOnce(t, http.MethodGet, "/topics", nil); rec.Code != http.StatusOK {
		t.Fatalf("serving broken after failed reload: %d", rec.Code)
	}
}

// writeCorrupt clobbers the file with a CRC-corrupt but superficially
// valid snapshot.
func writeCorrupt(path string) error {
	b, err := store.Encode(&store.Snapshot{Vocab: []string{"x", "y"}})
	if err != nil {
		return err
	}
	b[len(b)-1] ^= 0xff
	return os.WriteFile(path, b, 0o644)
}

// TestMMapReloadServesAndCloses: the mmap decode path serves queries and
// hot reloads; replaced mappings stay readable until Close.
func TestMMapReloadServesAndCloses(t *testing.T) {
	path := t.TempDir() + "/model.lesm"
	if err := store.Write(path, testSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	m, err := store.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m.Snapshot(), Options{SnapshotPath: path, MMap: true})
	if err != nil {
		m.Close()
		t.Fatal(err)
	}
	// Adopt the initial mapping the same way reloads are adopted.
	s.AdoptCloser(m)

	body := inferBody(t, 4, [][]int{{0, 1, 3}, {5, 8}}, 10)
	rec := s.serveOnce(t, http.MethodPost, "/infer", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("mmap infer: %d %s", rec.Code, rec.Body.String())
	}
	first := rec.Body.String()

	// Two reloads over replaced files; old generations' mappings are
	// retired, and the original model served again must answer the same.
	if err := store.Write(path, altSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	if rec := s.serveOnce(t, http.MethodPost, "/admin/reload", nil); rec.Code != http.StatusOK {
		t.Fatalf("mmap reload 1: %d %s", rec.Code, rec.Body.String())
	}
	if err := store.Write(path, testSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	if rec := s.serveOnce(t, http.MethodPost, "/admin/reload", nil); rec.Code != http.StatusOK {
		t.Fatalf("mmap reload 2: %d %s", rec.Code, rec.Body.String())
	}
	rec = s.serveOnce(t, http.MethodPost, "/infer", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-reload infer: %d", rec.Code)
	}
	got := strings.ReplaceAll(rec.Body.String(), `"generation":3`, `"generation":1`)
	if got != first {
		t.Fatalf("same model at a later generation answered differently:\n%s\n%s", got, first)
	}
	if len(s.retired) != 2 {
		t.Fatalf("retired mappings = %d, want 2", len(s.retired))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestReloadErrorClearsOnSuccess is the regression test for the stale
// reload_error bug: a failed reload surfaced the error on /healthz, but a
// later successful reload through the direct Reload path never cleared
// it, so /healthz kept reporting a failure that had long been fixed. The
// clear now lives in reloadLocked — the ONE place a swap actually lands —
// so every reload path (admin, poller, direct) clears it, and no-op
// poller ticks cannot.
func TestReloadErrorClearsOnSuccess(t *testing.T) {
	path := t.TempDir() + "/model.lesm"
	if err := store.Write(path, testSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	s, err := New(testSnapshot(t), Options{SnapshotPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Fail a reload: /healthz must surface the error.
	if err := writeCorrupt(path); err != nil {
		t.Fatal(err)
	}
	if rec := s.serveOnce(t, http.MethodPost, "/admin/reload", nil); rec.Code != http.StatusInternalServerError {
		t.Fatalf("corrupt reload: %d", rec.Code)
	}
	rec := s.serveOnce(t, http.MethodGet, "/healthz", nil)
	if !strings.Contains(rec.Body.String(), "reload_error") {
		t.Fatalf("failed reload not surfaced: %s", rec.Body.String())
	}

	// A successful reload through the DIRECT path (the one that never
	// cleared before the fix) must wipe the standing error.
	if err := s.Reload(altSnapshot(t), nil); err != nil {
		t.Fatal(err)
	}
	rec = s.serveOnce(t, http.MethodGet, "/healthz", nil)
	if strings.Contains(rec.Body.String(), "reload_error") {
		t.Fatalf("reload_error outlived a successful reload: %s", rec.Body.String())
	}
	if g := s.Generation(); g != 2 {
		t.Fatalf("generation = %d, want 2", g)
	}

	// And back again: the error is re-set by the next failure (not stuck
	// cleared), then cleared by a successful path-driven reload.
	if rec := s.serveOnce(t, http.MethodPost, "/admin/reload", nil); rec.Code != http.StatusInternalServerError {
		t.Fatalf("second corrupt reload: %d", rec.Code)
	}
	if rec := s.serveOnce(t, http.MethodGet, "/healthz", nil); !strings.Contains(rec.Body.String(), "reload_error") {
		t.Fatalf("second failure not surfaced: %s", rec.Body.String())
	}
	if err := store.Write(path, testSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	if rec := s.serveOnce(t, http.MethodPost, "/admin/reload", nil); rec.Code != http.StatusOK {
		t.Fatalf("repaired reload: %d %s", rec.Code, rec.Body.String())
	}
	if rec := s.serveOnce(t, http.MethodGet, "/healthz", nil); strings.Contains(rec.Body.String(), "reload_error") {
		t.Fatalf("reload_error outlived the repaired admin reload: %s", rec.Body.String())
	}
}
