package serve

// Observability: a dependency-free /metrics endpoint in the Prometheus
// text exposition format (version 0.0.4).
//
// Everything on the hot path is an atomic counter or a fixed-bucket
// histogram of atomics — no locks are taken while a request is being
// served except the per-code error map, which is touched only on error
// responses. The scrape handler renders the whole registry into one
// buffer and writes it; gauges that mirror live server state (generation,
// semaphore occupancy, admission queue depth, effective coalescing
// window) are sampled at scrape time rather than maintained, so they can
// never drift from the structures they describe.
//
// The exported families:
//
//	lesmd_http_requests_total{route}            counter, every handled request
//	lesmd_http_errors_total{route,code}         counter, responses with status >= 400
//	lesmd_http_request_duration_seconds{route}  histogram, wall time per request
//	lesmd_infer_batches_total                   counter, fold-in batches dispatched
//	lesmd_infer_requests_total                  counter, /infer requests accepted into a batch
//	lesmd_infer_shed_total                      counter, /infer requests shed by admission control
//	lesmd_infer_batch_docs                      histogram, documents per dispatched batch
//	lesmd_infer_admitted                        gauge, /infer requests in the system (waiting + running)
//	lesmd_infer_in_flight                       gauge, busy in-flight slots
//	lesmd_infer_queue_depth                     gauge, admitted minus in-flight (the wait queue)
//	lesmd_infer_batch_window_seconds            gauge, effective coalescing window (EWMA-adapted when on)
//	lesmd_search_index_entries                  gauge, named entries in the current search index
//	lesmd_search_index_terms                    gauge, distinct tokens in the search index dictionary
//	lesmd_search_index_postings                 gauge, total postings in the search index
//	lesmd_reload_generation                     gauge, current artifact generation
//	lesmd_reloads_total                         counter, successful snapshot swaps
//	lesmd_reload_failures_total                 counter, failed reload attempts
//	lesmd_panics_total                          counter, handler panics recovered (500 + logged stack)
//	lesmd_goroutines                            gauge, runtime.NumGoroutine (collector-refreshed)
//
// The registry is also an obs.Recorder: the server attaches itself to
// every fold-in dispatch, so the sampler's own telemetry (tokens sampled,
// MH proposal accounting, parallel-pool latencies) lands next to the
// HTTP-side view:
//
//	lesmd_sampler_records_total                 counter, sweep/batch records received
//	lesmd_sampler_tokens_total                  counter, token-sweep visits sampled
//	lesmd_sampler_changed_total                 counter, visits that moved topic
//	lesmd_sampler_proposals_total{proposal}     counter, non-trivial MH proposals (word|doc)
//	lesmd_sampler_accepts_total{proposal}       counter, accepted MH proposals (word|doc)
//	lesmd_sampler_alias_rebuilds_total          counter, alias-table rebuilds
//	lesmd_sampler_alias_rebuild_seconds_total   counter, wall time in rebuilds
//	lesmd_pool_passes_total                     counter, parallel passes observed
//	lesmd_pool_wait_seconds_total               counter, sum of chunk dequeue waits
//	lesmd_pool_exec_seconds_total               counter, sum of chunk body wall time
//
// Go runtime basics are sampled at scrape time:
//
//	go_goroutines                               gauge, runtime.NumGoroutine
//	go_gc_pause_seconds_total                   counter, cumulative GC stop-the-world pause
//	go_heap_bytes                               gauge, bytes of allocated heap objects
//
// A scrape does not observe itself: the instrumentation wrapper records a
// request after its handler returns, so the Nth scrape reports N-1
// requests for route="metrics". The test suite's promtool-style lint
// (metrics_test.go) validates the rendered text against the format rules.

import (
	"context"
	"fmt"
	"log"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lesm/internal/obs"
)

// metricsCollectEvery is the cadence of the background runtime-stats
// collector goroutine. Scrapes also refresh the same gauges, so the
// collector only matters for keeping them warm between scrapes; its real
// contract is lifecycle: it must exit on Close (leak-tested).
const metricsCollectEvery = 2 * time.Second

// latencyBuckets are the request-duration histogram bounds in seconds,
// spanning sub-millisecond structure lookups to multi-second saturated
// fold-in batches.
var latencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// batchDocBuckets are the coalescer batch-size histogram bounds
// (documents per dispatched fold-in batch).
var batchDocBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// routeNames is the fixed route-label universe, in render order. Every
// mux registration instruments itself under exactly one of these.
var routeNames = []string{
	"healthz", "topics", "top_words", "hierarchy_node", "phrases_search",
	"search", "entity", "advisor", "infer", "admin_reload", "metrics",
}

// atomicFloat64 is a CAS-loop float accumulator (histogram sums).
type atomicFloat64 struct{ bits atomic.Uint64 }

func (f *atomicFloat64) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat64) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// histogram is a fixed-bucket Prometheus histogram: buckets[i] counts
// observations in (bounds[i-1], bounds[i]] and the extra last slot is the
// +Inf bucket. Counts are per-bucket; the cumulative le-series is formed
// at render time.
type histogram struct {
	bounds  []float64
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomicFloat64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

func (h *histogram) Observe(v float64) {
	// First bound >= v is the bucket (le is an inclusive upper bound);
	// past every bound lands in +Inf.
	h.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// routeStat is one route's counters.
type routeStat struct {
	requests atomic.Uint64
	latency  *histogram

	mu     sync.Mutex
	errors map[int]uint64 // by exact status code, >= 400 only
}

// metrics is the server's metric registry. All fields are created once in
// newMetrics and never replaced; hot-path updates are atomic.
type metrics struct {
	routes    map[string]*routeStat
	batchDocs *histogram

	shed           atomic.Uint64
	reloads        atomic.Uint64
	reloadFailures atomic.Uint64
	panics         atomic.Uint64
	goroutines     atomic.Int64

	// Sampler telemetry, fed through the obs.Recorder interface by the
	// fold-in engine. Many batches record concurrently; all atomic.
	samplerRecords atomic.Uint64
	samplerTokens  atomic.Uint64
	samplerChanged atomic.Uint64
	wordProposals  atomic.Uint64
	wordAccepts    atomic.Uint64
	docProposals   atomic.Uint64
	docAccepts     atomic.Uint64
	aliasRebuilds  atomic.Uint64
	rebuildSeconds atomicFloat64
	poolPasses     atomic.Uint64
	poolWait       atomicFloat64
	poolExec       atomicFloat64
}

// RecordSweep implements obs.Recorder: fold-in dispatches run with the
// registry attached, so each batch folds its sampler counters in here.
func (m *metrics) RecordSweep(s obs.SweepStats) {
	m.samplerRecords.Add(1)
	m.samplerTokens.Add(uint64(s.Tokens))
	m.samplerChanged.Add(uint64(s.Changed))
	m.wordProposals.Add(uint64(s.WordProposals))
	m.wordAccepts.Add(uint64(s.WordAccepts))
	m.docProposals.Add(uint64(s.DocProposals))
	m.docAccepts.Add(uint64(s.DocAccepts))
	if s.AliasRebuilds > 0 {
		m.aliasRebuilds.Add(uint64(s.AliasRebuilds))
	}
	if s.RebuildTime > 0 {
		m.rebuildSeconds.Add(s.RebuildTime.Seconds())
	}
}

// RecordPool implements obs.PoolObserver for parallel-pass telemetry.
func (m *metrics) RecordPool(p obs.PoolStats) {
	m.poolPasses.Add(1)
	m.poolWait.Add(p.Wait.Seconds())
	m.poolExec.Add(p.Exec.Seconds())
}

func newMetrics() *metrics {
	m := &metrics{routes: make(map[string]*routeStat, len(routeNames)), batchDocs: newHistogram(batchDocBuckets)}
	for _, r := range routeNames {
		m.routes[r] = &routeStat{latency: newHistogram(latencyBuckets), errors: map[int]uint64{}}
	}
	return m
}

// statusWriter captures the response status for the instrumentation
// wrapper. A handler that never calls WriteHeader implies 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with the per-route observability and traffic
// hardening that every endpoint gets: panic recovery (a panicking handler
// answers 500 with the stack logged and lesmd_panics_total bumped instead
// of killing its connection unreported), the request/error counters and
// latency histogram, and the per-route timeout (Options.RouteTimeout)
// which cancels the request's context — fold-in work in flight aborts at
// its next cancellation check and waiters drop out of their queues.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	st := s.metrics.routes[route]
	return func(w http.ResponseWriter, r *http.Request) {
		if t := s.opt.RouteTimeout; t > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), t)
			defer cancel()
			r = r.WithContext(ctx)
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		// Recording lives in the deferred recovery block so a panicking
		// handler's request is still counted — exactly once, against the
		// status the client actually saw.
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					// net/http's own abort sentinel: the server handles it
					// silently by design. Not a failure; re-panic untouched.
					panic(rec)
				}
				s.metrics.panics.Add(1)
				log.Printf("serve: panic in %s handler: %v\n%s", route, rec, debug.Stack())
				if sw.status == 0 {
					// Nothing written yet — the client can still get a
					// clean 500. Headers already sent mean the response
					// is torn; net/http closes the connection.
					writeErr(sw, http.StatusInternalServerError, "internal server error")
				}
			}
			code := sw.status
			if code == 0 {
				code = http.StatusOK // replied with neither header nor body
			}
			st.requests.Add(1)
			st.latency.Observe(time.Since(start).Seconds())
			if code >= 400 {
				st.mu.Lock()
				st.errors[code]++
				st.mu.Unlock()
			}
		}()
		h(sw, r)
	}
}

// collectRuntime is the background metrics collector: it refreshes the
// runtime gauges between scrapes and exits when the server's lifecycle
// context dies (leak-tested under Server.Close).
func (s *Server) collectRuntime() {
	defer s.bg.Done()
	t := time.NewTicker(metricsCollectEvery)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.metrics.goroutines.Store(int64(runtime.NumGoroutine()))
		}
	}
}

// --- rendering ---

func fmtFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type promWriter struct {
	b []byte
}

func (p *promWriter) family(name, help, typ string) {
	p.b = append(p.b, "# HELP "+name+" "+help+"\n"...)
	p.b = append(p.b, "# TYPE "+name+" "+typ+"\n"...)
}

func (p *promWriter) sample(name, labels string, v float64) {
	if labels != "" {
		name += "{" + labels + "}"
	}
	p.b = append(p.b, name+" "+fmtFloat(v)+"\n"...)
}

// hist renders one histogram under an already-declared family, with
// labels (may be empty) merged before the le label.
func (p *promWriter) hist(name, labels string, h *histogram) {
	cum := uint64(0)
	le := func(bound string) string {
		if labels == "" {
			return `le="` + bound + `"`
		}
		return labels + `,le="` + bound + `"`
	}
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		p.sample(name+"_bucket", le(fmtFloat(b)), float64(cum))
	}
	cum += h.buckets[len(h.bounds)].Load()
	p.sample(name+"_bucket", le("+Inf"), float64(cum))
	p.sample(name+"_sum", labels, h.sum.Load())
	p.sample(name+"_count", labels, float64(cum))
}

// renderMetrics builds the full exposition. Live-state gauges are sampled
// here so the scrape is always consistent with the serving structures.
func (s *Server) renderMetrics() []byte {
	m := s.metrics
	m.goroutines.Store(int64(runtime.NumGoroutine()))
	p := &promWriter{b: make([]byte, 0, 8<<10)}

	p.family("lesmd_http_requests_total", "Requests handled, by route.", "counter")
	for _, r := range routeNames {
		p.sample("lesmd_http_requests_total", `route="`+r+`"`, float64(m.routes[r].requests.Load()))
	}

	p.family("lesmd_http_errors_total", "Responses with status >= 400, by route and status code.", "counter")
	for _, r := range routeNames {
		st := m.routes[r]
		st.mu.Lock()
		codes := make([]int, 0, len(st.errors))
		for c := range st.errors {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			p.sample("lesmd_http_errors_total", fmt.Sprintf(`route=%q,code="%d"`, r, c), float64(st.errors[c]))
		}
		st.mu.Unlock()
	}

	p.family("lesmd_http_request_duration_seconds", "Request wall time, by route.", "histogram")
	for _, r := range routeNames {
		p.hist("lesmd_http_request_duration_seconds", `route="`+r+`"`, m.routes[r].latency)
	}

	p.family("lesmd_infer_batches_total", "Fold-in batches dispatched (direct or coalesced).", "counter")
	p.sample("lesmd_infer_batches_total", "", float64(s.inferBatches.Load()))
	p.family("lesmd_infer_requests_total", "/infer requests accepted into a batch.", "counter")
	p.sample("lesmd_infer_requests_total", "", float64(s.inferRequests.Load()))
	p.family("lesmd_infer_shed_total", "/infer requests shed by admission control (503 + Retry-After).", "counter")
	p.sample("lesmd_infer_shed_total", "", float64(m.shed.Load()))

	p.family("lesmd_infer_batch_docs", "Documents per dispatched fold-in batch.", "histogram")
	p.hist("lesmd_infer_batch_docs", "", m.batchDocs)

	admitted := s.admitted.Load()
	inflight := int64(len(s.inferSem))
	queue := admitted - inflight
	if queue < 0 {
		queue = 0
	}
	p.family("lesmd_infer_admitted", "/infer requests in the system (waiting or running).", "gauge")
	p.sample("lesmd_infer_admitted", "", float64(admitted))
	p.family("lesmd_infer_in_flight", "Busy in-flight fold-in slots (of max-inflight).", "gauge")
	p.sample("lesmd_infer_in_flight", "", float64(inflight))
	p.family("lesmd_infer_queue_depth", "/infer requests waiting for an in-flight slot.", "gauge")
	p.sample("lesmd_infer_queue_depth", "", float64(queue))

	window := s.opt.BatchWindow
	if s.window != nil {
		window = s.window.current()
	}
	p.family("lesmd_infer_batch_window_seconds", "Effective /infer coalescing window (EWMA-adapted when adaptive).", "gauge")
	p.sample("lesmd_infer_batch_window_seconds", "", window.Seconds())

	// Index-size gauges are sampled from the current artifact at scrape
	// time, so after a hot reload they describe exactly the generation
	// lesmd_reload_generation names.
	cur := s.cur.Load()
	p.family("lesmd_search_index_entries", "Named entries (words, phrases, authors) in the current generation's search index.", "gauge")
	p.sample("lesmd_search_index_entries", "", float64(cur.index.Entries()))
	p.family("lesmd_search_index_terms", "Distinct tokens in the current generation's search index dictionary.", "gauge")
	p.sample("lesmd_search_index_terms", "", float64(cur.index.Terms()))
	p.family("lesmd_search_index_postings", "Total postings in the current generation's search index.", "gauge")
	p.sample("lesmd_search_index_postings", "", float64(cur.index.Postings()))

	p.family("lesmd_reload_generation", "Current snapshot artifact generation.", "gauge")
	p.sample("lesmd_reload_generation", "", float64(cur.gen))
	p.family("lesmd_reloads_total", "Successful snapshot hot reloads.", "counter")
	p.sample("lesmd_reloads_total", "", float64(m.reloads.Load()))
	p.family("lesmd_reload_failures_total", "Failed snapshot reload attempts.", "counter")
	p.sample("lesmd_reload_failures_total", "", float64(m.reloadFailures.Load()))
	p.family("lesmd_panics_total", "Handler panics recovered by the instrumentation wrapper.", "counter")
	p.sample("lesmd_panics_total", "", float64(m.panics.Load()))

	p.family("lesmd_goroutines", "runtime.NumGoroutine at collection time.", "gauge")
	p.sample("lesmd_goroutines", "", float64(m.goroutines.Load()))

	p.family("lesmd_sampler_records_total", "Sampler sweep/batch records received from fold-in work.", "counter")
	p.sample("lesmd_sampler_records_total", "", float64(m.samplerRecords.Load()))
	p.family("lesmd_sampler_tokens_total", "Token-sweep visits sampled by fold-in work.", "counter")
	p.sample("lesmd_sampler_tokens_total", "", float64(m.samplerTokens.Load()))
	p.family("lesmd_sampler_changed_total", "Sampled visits whose topic assignment changed.", "counter")
	p.sample("lesmd_sampler_changed_total", "", float64(m.samplerChanged.Load()))
	p.family("lesmd_sampler_proposals_total", "Non-trivial Metropolis-Hastings proposals, by proposal kind.", "counter")
	p.sample("lesmd_sampler_proposals_total", `proposal="word"`, float64(m.wordProposals.Load()))
	p.sample("lesmd_sampler_proposals_total", `proposal="doc"`, float64(m.docProposals.Load()))
	p.family("lesmd_sampler_accepts_total", "Accepted Metropolis-Hastings proposals, by proposal kind.", "counter")
	p.sample("lesmd_sampler_accepts_total", `proposal="word"`, float64(m.wordAccepts.Load()))
	p.sample("lesmd_sampler_accepts_total", `proposal="doc"`, float64(m.docAccepts.Load()))
	p.family("lesmd_sampler_alias_rebuilds_total", "Alias-table rebuilds performed by sampler work.", "counter")
	p.sample("lesmd_sampler_alias_rebuilds_total", "", float64(m.aliasRebuilds.Load()))
	p.family("lesmd_sampler_alias_rebuild_seconds_total", "Wall time spent rebuilding alias tables.", "counter")
	p.sample("lesmd_sampler_alias_rebuild_seconds_total", "", m.rebuildSeconds.Load())

	p.family("lesmd_pool_passes_total", "Parallel worker-pool passes observed.", "counter")
	p.sample("lesmd_pool_passes_total", "", float64(m.poolPasses.Load()))
	p.family("lesmd_pool_wait_seconds_total", "Sum over chunks of time from pass start to chunk dequeue.", "counter")
	p.sample("lesmd_pool_wait_seconds_total", "", m.poolWait.Load())
	p.family("lesmd_pool_exec_seconds_total", "Sum over chunks of chunk body wall time.", "counter")
	p.sample("lesmd_pool_exec_seconds_total", "", m.poolExec.Load())

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.family("go_goroutines", "Number of goroutines that currently exist.", "gauge")
	p.sample("go_goroutines", "", float64(runtime.NumGoroutine()))
	p.family("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", "counter")
	p.sample("go_gc_pause_seconds_total", "", float64(ms.PauseTotalNs)/1e9)
	p.family("go_heap_bytes", "Bytes of allocated heap objects.", "gauge")
	p.sample("go_heap_bytes", "", float64(ms.HeapAlloc))
	return p.b
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(s.renderMetrics())
}
