package serve

// Request coalescing for /infer.
//
// Concurrent fold-in requests individually under-fill the shared pool:
// each one pays scheduler wake-ups, chunk bookkeeping and (for tiny
// batches) poor cache locality on the alias tables. The coalescer merges
// requests into a single lda.FoldInBatch call with group-commit timing: a
// batch forms only while every in-flight slot is busy, and dispatches on
// the earliest of slot-free / MaxBatchDocs reached / BatchWindow expired.
//
// The merge is invisible in the results: every document samples from the
// (request seed, its index within its own request, sweep) PRNG streams, so
// a coalesced request's theta is bit-identical to what the direct path
// returns (TestCoalescedMatchesDirect). Cancellation is per request — a
// member whose context dies before its batch runs is dropped from the
// batch and answered 503, and a member that disconnects mid-batch just has
// its buffered reply discarded; neither perturbs its batchmates, because
// the batch itself runs under the server's lifecycle context, not any one
// request's.
//
// Artifact pinning: a batch resolves vocabulary tokens and samples against
// the artifact current at dispatch time, and every member's response
// reports that artifact's generation — so responses are deterministic per
// generation even when a hot reload lands mid-window.

import (
	"context"
	"net/http"
	"time"

	"lesm/internal/lda"
)

// inferJob is one /infer request queued for coalescing.
type inferJob struct {
	req    *inferRequest
	sweeps int
	ctx    context.Context
	// done receives exactly one result; buffered so a batch can reply to
	// an already-departed client without blocking.
	done chan inferResult
}

// inferResult is a batch's answer to one member request.
type inferResult struct {
	status int
	errmsg string      // non-empty for error replies
	theta  [][]float64 // per-document topic distributions
	topics int
	gen    uint64
}

func (j *inferJob) docCount() int { return len(j.req.Docs) + len(j.req.IDs) }

func (j *inferJob) reply(res inferResult) { j.done <- res }

// inferCoalesced enqueues the request on the coalescer and waits for its
// batch to answer.
func (s *Server) inferCoalesced(w http.ResponseWriter, r *http.Request, req *inferRequest, sweeps int) {
	job := &inferJob{req: req, sweeps: sweeps, ctx: r.Context(), done: make(chan inferResult, 1)}
	select {
	case s.jobs <- job:
	case <-r.Context().Done():
		writeErr(w, http.StatusServiceUnavailable, "request cancelled while waiting for a batch window")
		return
	case <-s.ctx.Done():
		writeErr(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	select {
	case res := <-job.done:
		if res.errmsg != "" {
			writeErr(w, res.status, "%s", res.errmsg)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"topics": res.topics, "seed": req.Seed, "sweeps": sweeps,
			"generation": res.gen, "theta": res.theta,
		})
	case <-r.Context().Done():
		// The batch will still compute this job's documents (it cannot be
		// unpicked mid-sweep) and its reply lands in the buffered channel;
		// only the response is abandoned.
		writeErr(w, http.StatusServiceUnavailable, "request cancelled while its batch was running")
	}
}

// collect is the coalescer's collector goroutine: it opens a batch on the
// first arriving job, extends it while jobs keep arriving, and dispatches
// on the earliest of three triggers (group commit):
//
//   - a pool slot is free — an unsaturated server dispatches immediately,
//     so coalescing adds ~zero latency at low load (the batch-of-1 fast
//     path) and batches only form while every slot is busy;
//   - the batch reaches MaxBatchDocs;
//   - BatchWindow expires — the cap on formation time, bounding the extra
//     latency the first member of a batch can absorb under overload.
//
// A job that would overflow the cap closes the current batch and spills
// whole into the next one — it is never split across batches, so its
// per-request determinism key stays intact.
func (s *Server) collect() {
	defer s.bg.Done()
	maxDocs := s.opt.MaxBatchDocs
	// window is the formation-time cap: the fixed BatchWindow, or the
	// EWMA-adapted one (bounded above by BatchWindow) when AdaptiveWindow
	// is on. Each arrival feeds the inter-arrival estimate.
	window := func() time.Duration {
		if s.window != nil {
			return s.window.current()
		}
		return s.opt.BatchWindow
	}
	observe := func() {
		if s.window != nil {
			s.window.observe(time.Now())
		}
	}
	for {
		var first *inferJob
		select {
		case first = <-s.jobs:
		case <-s.ctx.Done():
			return
		}
		observe()
		batch := []*inferJob{first}
		n := first.docCount()
		owned := false // true when the collector already holds a pool slot
		// Latency fast-path: a request that alone fills the cap dispatches
		// immediately, skipping the window wait.
		if n < maxDocs {
			// A fresh Timer per window (and per spill) sidesteps Reset's
			// stop-and-drain pitfalls; a handful of garbage timers per
			// batch is noise next to the sampling work.
			timer := time.NewTimer(window())
		collecting:
			for {
				select {
				case j := <-s.jobs:
					observe()
					jn := j.docCount()
					if n+jn > maxDocs {
						// Overflow: dispatch what we have; j spills into
						// the next window.
						s.dispatch(batch, false)
						batch = []*inferJob{j}
						n = jn
						if n >= maxDocs {
							break collecting
						}
						timer.Stop()
						timer = time.NewTimer(window())
						continue
					}
					batch = append(batch, j)
					n += jn
					if n >= maxDocs {
						break collecting
					}
				case s.inferSem <- struct{}{}:
					// Group commit: capacity is free, so waiting longer
					// would only idle the pool. The slot's ownership moves
					// to the batch runner.
					owned = true
					break collecting
				case <-timer.C:
					break collecting
				case <-s.ctx.Done():
					timer.Stop()
					s.failBatch(batch, "server shutting down")
					return
				}
			}
			timer.Stop()
		}
		s.dispatch(batch, owned)
	}
}

// dispatch hands a collected batch to a runner goroutine, so the collector
// can immediately open the next window while the batch samples. owned
// marks a batch whose pool slot the collector already acquired.
func (s *Server) dispatch(batch []*inferJob, owned bool) {
	s.inferBatches.Add(1)
	s.batchWG.Add(1)
	go s.runBatch(batch, owned)
}

func (s *Server) failBatch(batch []*inferJob, msg string) {
	for _, j := range batch {
		j.reply(inferResult{status: http.StatusServiceUnavailable, errmsg: msg})
	}
}

// runBatch runs one coalesced batch: acquire an in-flight slot, pin the
// current artifact, flatten the members' documents into lda.BatchDocs
// keyed by each request's own (seed, local index, sweeps), sample once on
// the shared pool, and scatter the slices back to the members.
func (s *Server) runBatch(batch []*inferJob, owned bool) {
	defer s.batchWG.Done()
	if !owned {
		select {
		case s.inferSem <- struct{}{}:
		case <-s.ctx.Done():
			s.failBatch(batch, "server shutting down")
			return
		}
	}
	defer func() { <-s.inferSem }()
	a := s.cur.Load()
	if a.foldIn == nil {
		s.failBatch(batch, "snapshot has no topics section (fold-in unavailable)")
		return
	}

	var flat []lda.BatchDoc
	type span struct{ lo, hi int }
	live := make([]*inferJob, 0, len(batch))
	spans := make([]span, 0, len(batch))
	for _, j := range batch {
		if j.ctx.Err() != nil {
			// Dropping a cancelled member before sampling leaves its
			// batchmates' documents keyed exactly as before — no other
			// member's trajectory shifts.
			j.reply(inferResult{status: http.StatusServiceUnavailable,
				errmsg: "request cancelled before its batch ran"})
			continue
		}
		docs, errmsg := resolveDocs(a, j.req)
		if errmsg != "" {
			j.reply(inferResult{status: http.StatusBadRequest, errmsg: errmsg})
			continue
		}
		lo := len(flat)
		for i, d := range docs {
			flat = append(flat, lda.BatchDoc{Tokens: d, Seed: j.req.Seed, Index: uint64(i), Sweeps: j.sweeps})
		}
		live = append(live, j)
		spans = append(spans, span{lo, len(flat)})
	}
	if len(live) == 0 {
		return
	}
	s.inferRequests.Add(uint64(len(live)))
	s.metrics.batchDocs.Observe(float64(len(flat)))
	theta, err := lda.FoldInBatch(a.foldIn, flat, lda.FoldInConfig{
		P: s.opt.P, Sampler: s.opt.Sampler, Sweeps: s.opt.Sweeps, Ctx: s.ctx,
		Rec: s.metrics,
	})
	if err != nil {
		s.failBatch(live, "inference aborted: "+err.Error())
		return
	}
	for i, j := range live {
		sp := spans[i]
		res := inferResult{status: http.StatusOK, theta: theta[sp.lo:sp.hi], topics: a.foldIn.K(), gen: a.gen}
		if res.theta == nil {
			res.theta = [][]float64{} // a zero-document request still gets a JSON array
		}
		j.reply(res)
	}
}
