package serve

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestRouteTimeoutQueuedInfer: a request parked behind the in-flight
// semaphore must drop out of the queue when its per-route timeout expires
// — the slot holder is unaffected and the waiter gets a 503.
func TestRouteTimeoutQueuedInfer(t *testing.T) {
	ts, s := newTestServerPair(t, Options{MaxInFlight: 1, RouteTimeout: 100 * time.Millisecond})
	s.inferSem <- struct{}{} // the only slot stays busy for the whole test
	defer func() { <-s.inferSem }()

	start := time.Now()
	status, out := postInfer(t, ts.URL, inferBody(t, 1, [][]int{{0, 1, 2}}, 3))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("queued request past its timeout: status %d (%v)", status, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "inference slot") {
		t.Fatalf("unexpected error message: %v", out)
	}
	// It waited out the timeout (not shed instantly) but not forever.
	if d := time.Since(start); d < 50*time.Millisecond || d > 10*time.Second {
		t.Fatalf("queued timeout fired after %s", d)
	}
}

// TestRouteTimeoutAbortsRunningFoldIn: the timeout must cancel fold-in
// work already sampling, not just queued waiters — the batch aborts at its
// next inter-chunk cancellation check and answers 503.
func TestRouteTimeoutAbortsRunningFoldIn(t *testing.T) {
	ts, _ := newTestServerPair(t, Options{
		RouteTimeout: 150 * time.Millisecond,
		// P=1 pins the fold-in serial regardless of the host's core count,
		// and the dense core is the slowest per token: the request below
		// runs for seconds without the timeout on any machine, so a fast
		// 503 proves the abort, not the workload finishing.
		Sampler: "dense", P: 1,
	})
	// 256 documents × 400 tokens × 500 sweeps, split into 32 chunks with a
	// cancellation check before each: completing inside 150ms is
	// impossible, aborting within one chunk of the deadline is guaranteed.
	ids := make([][]int, 256)
	for i := range ids {
		doc := make([]int, 400)
		for j := range doc {
			doc[j] = (i + j) % 10
		}
		ids[i] = doc
	}
	start := time.Now()
	status, out := postInfer(t, ts.URL, inferBody(t, 7, ids, 500))
	elapsed := time.Since(start)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("oversized request: status %d after %s (%v)", status, elapsed, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "aborted") {
		t.Fatalf("expected a mid-sampling abort, got: %v", out)
	}
	// Generous bound: the abort must come from the timeout, not from the
	// sampling finishing (which takes far longer than 10s under -race).
	if elapsed > 10*time.Second {
		t.Fatalf("abort took %s — cancellation not reaching the sampler", elapsed)
	}
}

// TestRouteTimeoutCoalescedMember: a member parked in a forming batch
// times out with a 503 while its batchmates' window keeps forming, and
// the server keeps serving normally afterwards.
func TestRouteTimeoutCoalescedMember(t *testing.T) {
	ts, s := newTestServerPair(t, Options{
		MaxInFlight: 1, BatchWindow: 30 * time.Second, MaxBatchDocs: 64,
		RouteTimeout: 100 * time.Millisecond,
	})
	s.inferSem <- struct{}{} // park the forming batch: no group commit
	status, out := postInfer(t, ts.URL, inferBody(t, 1, [][]int{{0, 1, 2}}, 3))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("parked member past its timeout: status %d (%v)", status, out)
	}
	<-s.inferSem // release: the batch (sans its timed-out member) runs

	// The machinery survives the timed-out member: a fresh request on the
	// now-free server completes.
	status, out = postInfer(t, ts.URL, inferBody(t, 2, [][]int{{5, 6, 7}}, 3))
	if status != http.StatusOK {
		t.Fatalf("post-timeout request: status %d (%v)", status, out)
	}
}

// TestRouteTimeoutLeavesFastRoutesAlone: structure lookups answer far
// inside any reasonable timeout; instrumenting them with a deadline must
// not break them.
func TestRouteTimeoutLeavesFastRoutesAlone(t *testing.T) {
	ts := newTestServer(t, Options{RouteTimeout: 2 * time.Second})
	for _, route := range structureRoutes {
		getJSON(t, ts.URL+route, http.StatusOK)
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK)
	scrape(t, ts.URL)
	postJSON(t, ts.URL+"/infer", map[string]any{"seed": 1, "ids": [][]int{{0, 1}}}, http.StatusOK)
}
