package serve

// Adaptive coalescing window.
//
// A fixed -batch-window is a worst-case guess: sized for burst traffic it
// makes the first member of every batch absorb the full window under
// merely-moderate load; sized for moderate load it fails to merge bursts.
// With Options.AdaptiveWindow the flag becomes an upper bound and the
// effective window tracks the traffic itself: an EWMA of observed /infer
// inter-arrival gaps, with the window set to a few expected arrivals
//
//	window = clamp(windowFactor * ewma, floor, BatchWindow)
//
// so a saturated burst (tiny gaps) waits just long enough to catch its
// batchmates, while sparse traffic degrades to the configured bound —
// which is harmless, because the group-commit fast path dispatches
// immediately whenever an in-flight slot is free and the window only ever
// runs while every slot is busy.
//
// The estimate is updated lock-cheap on every job arrival by the
// coalescer's collector. A background decay ticker (one goroutine, joined
// by Close — leak-tested) relaxes the estimate back toward the bound
// across idle periods, so a burst-era window does not linger into the
// next traffic regime. Without the ticker a single stale tiny window
// would persist indefinitely, because no arrivals means no updates.

import (
	"sync"
	"time"
)

const (
	// ewmaAlpha is the smoothing weight of the newest inter-arrival gap.
	ewmaAlpha = 0.2
	// windowFactor sizes the window in units of expected arrivals.
	windowFactor = 4.0
	// windowFloorDiv bounds how far below the configured window the
	// adaptive one may shrink (BatchWindow/64, floored at 50µs so the
	// timer stays meaningfully above scheduler granularity).
	windowFloorDiv = 64
	// decayFactor relaxes the estimate per idle tick; the ticker fires
	// every decayEvery(bound).
	decayFactor = 2.0
)

// decayEvery is the decay ticker period for a given window bound: slow
// enough to be free, fast enough that a stale estimate clears within a
// few seconds.
func decayEvery(bound time.Duration) time.Duration {
	if d := 10 * bound; d > 100*time.Millisecond {
		return d
	}
	return 100 * time.Millisecond
}

// ewmaWindow is the adaptive-window state. All methods are safe for
// concurrent use (collector arrivals vs decay ticker vs metric scrapes).
type ewmaWindow struct {
	bound time.Duration // Options.BatchWindow: the upper bound
	floor time.Duration

	mu   sync.Mutex
	last time.Time // previous arrival; zero before the first
	ewma float64   // smoothed inter-arrival gap, seconds
	idle bool      // no arrivals since the previous decay tick
}

func newEwmaWindow(bound time.Duration) *ewmaWindow {
	floor := bound / windowFloorDiv
	if floor < 50*time.Microsecond {
		floor = 50 * time.Microsecond
	}
	if floor > bound {
		floor = bound
	}
	// Starting at the bound preserves the fixed-flag semantics until the
	// traffic has taught us a better estimate.
	return &ewmaWindow{bound: bound, floor: floor, ewma: bound.Seconds()}
}

// observe folds one job arrival into the estimate.
func (e *ewmaWindow) observe(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.idle = false
	if !e.last.IsZero() {
		gap := now.Sub(e.last).Seconds()
		// An idle stretch is not a huge inter-arrival sample — gaps
		// saturate at the bound so one quiet minute can't blow the EWMA
		// past what the clamp would discard anyway.
		if max := e.bound.Seconds(); gap > max {
			gap = max
		}
		if gap < 0 {
			gap = 0
		}
		e.ewma = (1-ewmaAlpha)*e.ewma + ewmaAlpha*gap
	}
	e.last = now
}

// current returns the effective window.
func (e *ewmaWindow) current() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	w := time.Duration(windowFactor * e.ewma * float64(time.Second))
	if w < e.floor {
		w = e.floor
	}
	if w > e.bound {
		w = e.bound
	}
	return w
}

// decay is one ticker step: the first tick after traffic only marks the
// stream idle; each consecutive idle tick relaxes the estimate toward the
// bound multiplicatively.
func (e *ewmaWindow) decay() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.idle {
		e.idle = true
		return
	}
	e.ewma *= decayFactor
	if max := e.bound.Seconds(); e.ewma > max {
		e.ewma = max
	}
}

// tickWindow is the adaptive-window decay ticker goroutine; it exits when
// the server's lifecycle context dies.
func (s *Server) tickWindow() {
	defer s.bg.Done()
	t := time.NewTicker(decayEvery(s.window.bound))
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.window.decay()
		}
	}
}
