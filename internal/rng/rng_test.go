package rng

import "testing"

// TestStreamKeying pins the properties the samplers lean on: a stream is a
// pure function of its (seed, item, round) key, distinct keys give
// distinct streams, and draws land in their documented ranges.
func TestStreamKeying(t *testing.T) {
	a := NewStream(1, 2, 3)
	b := NewStream(1, 2, 3)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same key produced different streams")
		}
	}
	keys := [][3]uint64{{1, 2, 3}, {2, 2, 3}, {1, 3, 3}, {1, 2, 4}}
	first := map[uint64][3]uint64{}
	for _, k := range keys {
		s := NewStream(int64(k[0]), k[1], k[2])
		v := s.Next()
		if prev, dup := first[v]; dup {
			t.Fatalf("keys %v and %v collide on first draw", prev, k)
		}
		first[v] = k
	}
}

func TestStreamRanges(t *testing.T) {
	s := NewStream(7, 0, 0)
	for i := 0; i < 10000; i++ {
		if f := s.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v outside [0, 1)", f)
		}
		if n := s.Intn(7); n < 0 || n >= 7 {
			t.Fatalf("Intn(7) = %d", n)
		}
	}
}
