// Package rng provides the counter-based PRNG streams behind the
// deterministic parallel samplers (the (Phrase)LDA Gibbs samplers in
// internal/lda and the TNG sampler in internal/tng).
//
// Each work item (document) gets an independent SplitMix64 stream per
// round (sweep), keyed by (seed, item, round) through the SplitMix64
// finalizer. Because a stream's output depends only on that key — never on
// which worker runs the item or how many other items were sampled first —
// a sampled trajectory is a pure function of the seed at any parallelism
// level. This is mechanism 3 of the determinism contract in
// docs/ARCHITECTURE.md.
package rng
