package rng

// Mix64 is the SplitMix64 finalizer (Steele et al., "Fast splittable
// pseudorandom number generators"), a strong 64-bit avalanche function.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a SplitMix64 generator positioned by a (seed, item, round) key.
type Stream struct {
	s uint64
}

const (
	golden    = 0x9e3779b97f4a7c15 // 2^64 / phi, the SplitMix64 increment
	roundSalt = 0xd1b54a32d192ed03
)

// NewStream derives the stream of item `item` at round number `round`
// (the Gibbs samplers key by (seed, document, sweep); round 0 is the
// initialization pass, sweeps count from 1).
func NewStream(seed int64, item, round uint64) Stream {
	s := Mix64(uint64(seed) + golden)
	s = Mix64(s ^ (item+1)*golden)
	s = Mix64(s ^ (round+1)*roundSalt)
	return Stream{s}
}

// Next advances the stream one step.
func (st *Stream) Next() uint64 {
	st.s += golden
	return Mix64(st.s)
}

// Float64 returns a uniform float64 in [0, 1).
func (st *Stream) Float64() float64 {
	return float64(st.Next()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). The modulo bias is < n/2^64 —
// irrelevant for topic-count-sized n.
func (st *Stream) Intn(n int) int {
	return int(st.Next() % uint64(n))
}
