package strod

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"lesm/internal/core"
	"lesm/internal/linalg"
	"lesm/internal/par"
)

// Config parameterizes one STROD decomposition.
type Config struct {
	// K is the number of topics to recover at this node.
	K int
	// Alpha0 is the Dirichlet concentration sum (default 1). With
	// LearnAlpha0 it is selected from a small grid by minimizing the
	// negative mass the recovery has to clip (Section 7.3.3).
	Alpha0      float64
	LearnAlpha0 bool
	// PowerTrials and PowerIters control the robust tensor power method
	// (defaults 12 and 40; Section 7.3.1's L and T).
	PowerTrials, PowerIters int
	// WhitenIters controls the orthogonal iteration for the top-K
	// eigenpairs of M2 (default 60).
	WhitenIters int
	Seed        int64
	// P bounds the worker count of the parallel moment passes and tensor
	// power trials (0 = GOMAXPROCS). Results are bit-identical at any P.
	P int
	// Ctx cancels the decomposition between chunks (nil = background).
	Ctx context.Context
}

func (c Config) parOpts() par.Opts { return par.Opts{P: c.P, Ctx: c.Ctx} }

func (c Config) withDefaults() Config {
	if c.Alpha0 == 0 {
		c.Alpha0 = 1
	}
	if c.PowerTrials == 0 {
		c.PowerTrials = 12
	}
	if c.PowerIters == 0 {
		c.PowerIters = 40
	}
	if c.WhitenIters == 0 {
		c.WhitenIters = 60
	}
	return c
}

// Model is a recovered flat topic model.
type Model struct {
	K int
	// Phi[k] is the recovered topic-word distribution.
	Phi [][]float64
	// Weight[k] is the recovered topic proportion (alpha_k / alpha0).
	Weight []float64
	// Alpha0 is the concentration actually used.
	Alpha0 float64
	// ClippedMass is the average negative mass removed when projecting the
	// recovered topics to the simplex — the recovery-quality diagnostic
	// used for hyperparameter selection.
	ClippedMass float64
}

// Fit recovers K topics from sparse documents over a vocabulary of size v
// by moment decomposition. Unlike Gibbs sampling or variational inference,
// the procedure is non-iterative over the corpus: two moment passes plus
// small-k tensor work (the Chapter 7 desiderata: bounded computation,
// robustness to restarts).
func Fit(docs []SparseDoc, v int, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if cfg.LearnAlpha0 {
		grid := []float64{0.5, 1, 2, 5}
		var best *Model
		for gi, a0 := range grid {
			c := cfg
			c.LearnAlpha0 = false
			c.Alpha0 = a0
			c.Seed = cfg.Seed + int64(gi) // independent restarts per grid point
			m, err := Fit(docs, v, c)
			if err != nil {
				return nil, err
			}
			if best == nil || m.ClippedMass < best.ClippedMass {
				best = m
			}
		}
		return best, nil
	}
	o := cfg.parOpts()
	rng := rand.New(rand.NewSource(cfg.Seed))
	mu1, err := m1(docs, v, o)
	if err != nil {
		return nil, err
	}
	w, b := whiten(docs, v, cfg.K, mu1, cfg.Alpha0, cfg.WhitenIters, rng, o)
	if err := o.Err(); err != nil {
		return nil, err
	}
	t, err := whitenedM3(docs, w, mu1, cfg.Alpha0, o)
	if err != nil {
		return nil, err
	}

	model := &Model{K: cfg.K, Alpha0: cfg.Alpha0}
	lambdas := make([]float64, 0, cfg.K)
	clipped := 0.0
	for k := 0; k < cfg.K; k++ {
		vec, lambda, err := t.PowerIteration(cfg.PowerTrials, cfg.PowerIters, rng, o)
		if err != nil {
			return nil, err
		}
		t.Deflate(lambda, vec)
		mu := b.MulVec(vec)
		// Fix sign so the distribution is mostly positive.
		s := 0.0
		for _, x := range mu {
			s += x
		}
		if s < 0 {
			linalg.Scale(mu, -1)
		}
		neg := 0.0
		pos := 0.0
		for _, x := range mu {
			if x < 0 {
				neg -= x
			} else {
				pos += x
			}
		}
		if pos > 0 {
			clipped += neg / (neg + pos)
		}
		linalg.ClipToSimplex(mu)
		model.Phi = append(model.Phi, mu)
		lambdas = append(lambdas, lambda)
	}
	model.ClippedMass = clipped / float64(cfg.K)
	// Topic weights: alpha_i proportional to 1/lambda_i^2.
	model.Weight = make([]float64, cfg.K)
	for k, l := range lambdas {
		if l <= 1e-12 {
			l = 1e-12
		}
		model.Weight[k] = 1 / (l * l)
	}
	linalg.SumTo1(model.Weight)
	// Order topics by weight for stable presentation.
	idx := make([]int, cfg.K)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, bq int) bool { return model.Weight[idx[a]] > model.Weight[idx[bq]] })
	phi := make([][]float64, cfg.K)
	wgt := make([]float64, cfg.K)
	for i, j := range idx {
		phi[i] = model.Phi[j]
		wgt[i] = model.Weight[j]
	}
	model.Phi, model.Weight = phi, wgt
	if err := o.Err(); err != nil {
		return nil, err
	}
	return model, nil
}

// DocTopics infers per-document topic mixtures by a few EM steps with the
// recovered topics held fixed (the lightweight folding-in step used when
// recursing). An optional par.Opts bounds parallelism and carries a
// cancellation context; by default folding-in runs unbounded on a
// background context (a fitted model holds no execution policy, so it can
// outlive the context it was fit under).
func (m *Model) DocTopics(docs []SparseDoc, iters int, opts ...par.Opts) ([][]float64, error) {
	var o par.Opts
	if len(opts) > 0 {
		o = opts[0]
	}
	if iters == 0 {
		iters = 10
	}
	out := make([][]float64, len(docs))
	// Documents fold in independently, so they chunk onto the worker pool;
	// each chunk writes its own slice entries with per-chunk scratch.
	err := par.For(o, len(docs), func(lo, hi int) {
		post := make([]float64, m.K)
		for di := lo; di < hi; di++ {
			d := docs[di]
			theta := make([]float64, m.K)
			copy(theta, m.Weight)
			linalg.SumTo1(theta)
			for it := 0; it < iters; it++ {
				next := make([]float64, m.K)
				for i, id := range d.IDs {
					total := 0.0
					for k := 0; k < m.K; k++ {
						post[k] = theta[k] * m.Phi[k][id]
						total += post[k]
					}
					if total <= 0 {
						continue
					}
					for k := 0; k < m.K; k++ {
						next[k] += d.Cnt[i] * post[k] / total
					}
				}
				linalg.SumTo1(next)
				theta = next
			}
			out[di] = theta
		}
	})
	return out, err
}

// TreeConfig parameterizes recursive topic-tree construction (LDA with a
// topic tree, Section 7.2).
type TreeConfig struct {
	// K children per node (uniform across the tree, like the paper's
	// experiments; set per-level variation via KPerLevel).
	K int
	// KPerLevel optionally overrides K at each level (level 0 = root split).
	KPerLevel []int
	// Levels below the root.
	Levels int
	Config Config
	// MinDocs stops recursion when fewer effective documents remain
	// (default 50).
	MinDocs int
}

// BuildTree recursively applies STROD: recover topics at a node, split every
// document's counts across the children by posterior attribution, recurse.
// It returns the context's error if cfg.Config.Ctx is cancelled mid-build.
func BuildTree(docs []SparseDoc, v int, cfg TreeConfig) (*core.Hierarchy, error) {
	if cfg.MinDocs == 0 {
		cfg.MinDocs = 50
	}
	h := core.NewHierarchy()
	var rec func(node *core.TopicNode, sub []SparseDoc, level int, seed int64) error
	rec = func(node *core.TopicNode, sub []SparseDoc, level int, seed int64) error {
		if level >= cfg.Levels {
			return nil
		}
		n := 0
		for _, d := range sub {
			if usable(d) {
				n++
			}
		}
		if n < cfg.MinDocs {
			return nil
		}
		k := cfg.K
		if level < len(cfg.KPerLevel) {
			k = cfg.KPerLevel[level]
		}
		c := cfg.Config
		c.K = k
		c.Seed = seed
		m, err := Fit(sub, v, c)
		if err != nil {
			return err
		}
		theta, err := m.DocTopics(sub, 10, c.parOpts())
		if err != nil {
			return err
		}
		// Split counts: child z receives c_dv * p(z | v, d).
		children := make([][]SparseDoc, k)
		post := make([]float64, k)
		for di, d := range sub {
			split := make([]SparseDoc, k)
			for i, id := range d.IDs {
				total := 0.0
				for z := 0; z < k; z++ {
					post[z] = theta[di][z] * m.Phi[z][id]
					total += post[z]
				}
				if total <= 0 {
					continue
				}
				for z := 0; z < k; z++ {
					cz := d.Cnt[i] * post[z] / total
					if cz < 0.05 {
						continue
					}
					split[z].IDs = append(split[z].IDs, id)
					split[z].Cnt = append(split[z].Cnt, cz)
					split[z].Len += cz
				}
			}
			for z := 0; z < k; z++ {
				if split[z].Len > 0 {
					children[z] = append(children[z], split[z])
				}
			}
		}
		for z := 0; z < k; z++ {
			child := node.AddChild()
			child.Rho = m.Weight[z]
			child.Phi[core.TermType] = m.Phi[z]
			if err := rec(child, children[z], level+1, seed*131+int64(z)+17); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(h.Root, docs, 0, cfg.Config.Seed+1); err != nil {
		return nil, err
	}
	return h, nil
}

// TopWords lists topic k's top-n word ids.
func (m *Model) TopWords(k, n int) []int {
	type wp struct {
		w int
		p float64
	}
	ws := make([]wp, len(m.Phi[k]))
	for w, p := range m.Phi[k] {
		ws[w] = wp{w, p}
	}
	sort.SliceStable(ws, func(a, b int) bool {
		if ws[a].p != ws[b].p {
			return ws[a].p > ws[b].p
		}
		return ws[a].w < ws[b].w
	})
	if n > len(ws) {
		n = len(ws)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = ws[i].w
	}
	return out
}

// MatchError greedily matches recovered topics to reference topics and
// returns the mean total-variation distance — the recovery-error metric of
// the robustness experiments (Section 7.4.2).
func MatchError(recovered, reference [][]float64) float64 {
	k := len(reference)
	usedR := make([]bool, len(recovered))
	total := 0.0
	for i := 0; i < k; i++ {
		best, bestD := -1, math.Inf(1)
		for j := range recovered {
			if usedR[j] {
				continue
			}
			d := 0.0
			for w := range reference[i] {
				d += math.Abs(reference[i][w] - recovered[j][w])
			}
			d /= 2
			if d < bestD {
				best, bestD = j, d
			}
		}
		if best >= 0 {
			usedR[best] = true
			total += bestD
		} else {
			total += 1
		}
	}
	return total / float64(k)
}
