package strod

import (
	"math"
	"math/rand"

	"lesm/internal/linalg"
	"lesm/internal/par"
)

// SparseDoc is a document as a sparse (possibly fractional) word-count
// vector. Fractional counts arise during recursive tree construction, where
// a document's counts are split across subtopics.
type SparseDoc struct {
	IDs []int
	Cnt []float64
	Len float64
}

// FromTokens converts token-id documents to sparse count form.
func FromTokens(docs [][]int) []SparseDoc {
	out := make([]SparseDoc, 0, len(docs))
	for _, d := range docs {
		m := map[int]float64{}
		for _, w := range d {
			m[w]++
		}
		sd := SparseDoc{}
		// Deterministic order: walk tokens, emit first occurrences.
		seen := map[int]bool{}
		for _, w := range d {
			if !seen[w] {
				seen[w] = true
				sd.IDs = append(sd.IDs, w)
				sd.Cnt = append(sd.Cnt, m[w])
				sd.Len += m[w]
			}
		}
		out = append(out, sd)
	}
	return out
}

// usable reports documents long enough for third-moment estimation.
func usable(d SparseDoc) bool { return d.Len >= 3 }

// maxMomentChunks caps the document chunking of the vocabulary-sized
// moment accumulators (m1's sums, applyM2's partial outputs) below the
// runtime's default policy: each chunk holds O(V) floats, so the cap
// bounds the scratch at 64 copies while still exposing 64-way parallelism.
// The k-sized third-moment accumulators stay on the default policy.
const maxMomentChunks = 64

func momentChunks(nDocs int) int { return par.NumChunksCapped(nDocs, maxMomentChunks) }

// m1 computes the first moment E[x] over usable documents. Documents are
// chunked on the worker pool and the per-chunk sums merge in chunk order, so
// the result is bit-identical at any parallelism level.
func m1(docs []SparseDoc, v int, o par.Opts) ([]float64, error) {
	type acc struct {
		out []float64
		n   float64
	}
	a, err := par.MapReduceN(o, len(docs), momentChunks(len(docs)),
		func() *acc { return &acc{out: make([]float64, v)} },
		func(a *acc, _, lo, hi int) {
			for _, d := range docs[lo:hi] {
				if !usable(d) {
					continue
				}
				for i, id := range d.IDs {
					a.out[id] += d.Cnt[i] / d.Len
				}
				a.n++
			}
		},
		func(dst, src *acc) {
			for i := range dst.out {
				dst.out[i] += src.out[i]
			}
			dst.n += src.n
		})
	if err != nil {
		return nil, err
	}
	if a.n > 0 {
		linalg.Scale(a.out, 1/a.n)
	}
	return a.out, nil
}

// applyM2 returns a matvec closure for the centered second moment
//
//	M2 = E[x1 ⊗ x2] - alpha0/(alpha0+1) * M1 ⊗ M1,
//
// where E[x1 ⊗ x2] is estimated per document as
// (c c^T - diag(c)) / (l (l-1)). Only O(nnz) work per document per call.
//
// The returned closure runs the document pass on the worker pool; each chunk
// scatters into its own partial output vector (allocated once and reused
// across the many matvec calls of the orthogonal iteration) and the partials
// merge in chunk order, keeping every call bit-identical at any parallelism
// level. The closure is not itself safe for concurrent calls.
func applyM2(docs []SparseDoc, mu1 []float64, alpha0 float64, o par.Opts) func(dst, src []float64) {
	var used []SparseDoc
	for _, d := range docs {
		if usable(d) {
			used = append(used, d)
		}
	}
	n := float64(len(used))
	c0 := alpha0 / (alpha0 + 1)
	v := len(mu1)
	partial := make([][]float64, momentChunks(len(used)))
	return func(dst, src []float64) {
		par.ForChunksN(o, len(used), momentChunks(len(used)), func(c, lo, hi int) {
			p := partial[c]
			if p == nil {
				p = make([]float64, v)
				partial[c] = p
			} else {
				for i := range p {
					p[i] = 0
				}
			}
			for _, d := range used[lo:hi] {
				dot := 0.0
				for i, id := range d.IDs {
					dot += d.Cnt[i] * src[id]
				}
				norm := 1 / (d.Len * (d.Len - 1) * n)
				for i, id := range d.IDs {
					p[id] += (d.Cnt[i]*dot - d.Cnt[i]*src[id]) * norm
				}
			}
		})
		for i := range dst {
			dst[i] = 0
		}
		for _, p := range partial {
			if p == nil {
				continue
			}
			for i := range dst {
				dst[i] += p[i]
			}
		}
		m1dot := linalg.Dot(mu1, src)
		for i := range dst {
			dst[i] -= c0 * m1dot * mu1[i]
		}
	}
}

// whiten computes W (V x K) with W^T M2 W = I and the unwhitening matrix
// B = U diag(sqrt(lambda)) with B v recovering topic directions.
func whiten(docs []SparseDoc, v, k int, mu1 []float64, alpha0 float64, iters int, rng *rand.Rand, o par.Opts) (w, b *linalg.Dense) {
	apply := applyM2(docs, mu1, alpha0, o)
	vals, vecs := linalg.TopKEigSym(v, k, apply, iters, rng)
	w = linalg.NewDense(v, k)
	b = linalg.NewDense(v, k)
	for c := 0; c < k; c++ {
		lam := vals[c]
		if lam < 1e-10 {
			lam = 1e-10
		}
		inv := 1 / math.Sqrt(lam)
		s := math.Sqrt(lam)
		for r := 0; r < v; r++ {
			w.Set(r, c, vecs.At(r, c)*inv)
			b.Set(r, c, vecs.At(r, c)*s)
		}
	}
	return w, b
}

// whitenedM3 accumulates T = M3(W, W, W), the whitened third moment, from
// sparse documents in O(nnz * k^3) per document:
//
//	E3_d = [ y⊗y⊗y - Σ_v c_v sym(Wv⊗Wv⊗y) + 2 Σ_v c_v Wv⊗Wv⊗Wv ] / (l(l-1)(l-2))
//	M3  = E3 - alpha0/(alpha0+2) * sym(E2w ⊗ m1w) + 2alpha0²/((alpha0+1)(alpha0+2)) m1w⊗m1w⊗m1w
func whitenedM3(docs []SparseDoc, w *linalg.Dense, mu1 []float64, alpha0 float64, o par.Opts) (*linalg.Tensor3, error) {
	k := w.Cols
	var used []SparseDoc
	for _, d := range docs {
		if usable(d) {
			used = append(used, d)
		}
	}
	n := float64(len(used))
	// The document pass accumulates the K^3 tensor and the K x K pairs
	// matrix per chunk (K is small, so MaxChunks live copies are cheap) and
	// merges them in chunk order — bit-identical at any parallelism level.
	type m3Acc struct {
		t   *linalg.Tensor3
		e2w *linalg.Dense
		y   []float64
	}
	acc, err := par.MapReduce(o, len(used),
		func() *m3Acc {
			return &m3Acc{t: linalg.NewTensor3(k), e2w: linalg.NewDense(k, k), y: make([]float64, k)}
		},
		func(a *m3Acc, _, lo, hi int) {
			t, e2w, y := a.t, a.e2w, a.y
			for _, d := range used[lo:hi] {
				for i := range y {
					y[i] = 0
				}
				for i, id := range d.IDs {
					row := w.Row(id)
					linalg.Axpy(d.Cnt[i], row, y)
				}
				norm3 := 1 / (d.Len * (d.Len - 1) * (d.Len - 2) * n)
				norm2 := 1 / (d.Len * (d.Len - 1) * n)
				t.AddOuter3(norm3, y, y, y)
				for i, id := range d.IDs {
					row := w.Row(id)
					t.AddSym3(-d.Cnt[i]*norm3, row, y)
					t.AddOuter3(2*d.Cnt[i]*norm3, row, row, row)
				}
				// Whitened pairs matrix for the M1-correction term.
				for a2 := 0; a2 < k; a2++ {
					for bidx := 0; bidx < k; bidx++ {
						e2w.Add(a2, bidx, y[a2]*y[bidx]*norm2)
					}
				}
				for i, id := range d.IDs {
					row := w.Row(id)
					cv := d.Cnt[i] * norm2
					for a2 := 0; a2 < k; a2++ {
						for bidx := 0; bidx < k; bidx++ {
							e2w.Add(a2, bidx, -cv*row[a2]*row[bidx])
						}
					}
				}
			}
		},
		func(dst, src *m3Acc) {
			for i := range dst.t.Data {
				dst.t.Data[i] += src.t.Data[i]
			}
			for i := range dst.e2w.Data {
				dst.e2w.Data[i] += src.e2w.Data[i]
			}
		})
	if err != nil {
		return nil, err
	}
	t, e2w := acc.t, acc.e2w
	// m1 in whitened coordinates.
	m1w := make([]float64, k)
	for r := 0; r < w.Rows; r++ {
		if mu1[r] == 0 {
			continue
		}
		linalg.Axpy(mu1[r], w.Row(r), m1w)
	}
	// Subtract sym(E2w ⊗ m1w) * alpha0/(alpha0+2).
	ca := alpha0 / (alpha0 + 2)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			e := e2w.At(i, j)
			if e == 0 {
				continue
			}
			for l := 0; l < k; l++ {
				t.Add(i, j, l, -ca*e*m1w[l])
				t.Add(i, l, j, -ca*e*m1w[l])
				t.Add(l, i, j, -ca*e*m1w[l])
			}
		}
	}
	cb := 2 * alpha0 * alpha0 / ((alpha0 + 1) * (alpha0 + 2))
	t.AddOuter3(cb, m1w, m1w, m1w)
	return t, nil
}
