package strod

import (
	"math"
	"math/rand"
	"testing"

	"lesm/internal/synth"
)

// mustFit unwraps Fit in tests that run without a cancellable context.
func mustFit(t *testing.T, docs []SparseDoc, v int, cfg Config) *Model {
	t.Helper()
	m, err := Fit(docs, v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// ldaCorpus draws documents from a true LDA model with k well-separated
// topics over v words and returns the true topic-word distributions.
func ldaCorpus(nDocs, docLen, k, v int, alpha float64, seed int64) ([][]int, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	phi := make([][]float64, k)
	block := v / k
	for t := 0; t < k; t++ {
		phi[t] = make([]float64, v)
		for w := 0; w < v; w++ {
			if w/block == t {
				phi[t][w] = 0.9/float64(block) + 0.02*rng.Float64()
			} else {
				phi[t][w] = 0.1 / float64(v-block)
			}
		}
		s := 0.0
		for _, p := range phi[t] {
			s += p
		}
		for w := range phi[t] {
			phi[t][w] /= s
		}
	}
	sampleDirichlet := func() []float64 {
		th := make([]float64, k)
		s := 0.0
		for t := 0; t < k; t++ {
			// Gamma(alpha) via Marsaglia-Tsang for alpha<1 boosted form.
			th[t] = gammaSample(rng, alpha)
			s += th[t]
		}
		for t := range th {
			th[t] /= s
		}
		return th
	}
	docs := make([][]int, nDocs)
	for d := range docs {
		theta := sampleDirichlet()
		doc := make([]int, docLen)
		for i := range doc {
			t := sampleCat(rng, theta)
			doc[i] = sampleCat(rng, phi[t])
		}
		docs[d] = doc
	}
	return docs, phi
}

func gammaSample(rng *rand.Rand, a float64) float64 {
	if a < 1 {
		return gammaSample(rng, a+1) * math.Pow(rng.Float64(), 1/a)
	}
	d := a - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		val := 1 + c*x
		if val <= 0 {
			continue
		}
		val = val * val * val
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x || math.Log(u) < 0.5*x*x+d*(1-val+math.Log(val)) {
			return d * val
		}
	}
}

func sampleCat(rng *rand.Rand, p []float64) int {
	r := rng.Float64()
	for i, v := range p {
		r -= v
		if r <= 0 {
			return i
		}
	}
	return len(p) - 1
}

func TestFitRecoversTopics(t *testing.T) {
	k, v := 4, 80
	docs, truePhi := ldaCorpus(3000, 40, k, v, 0.25, 91)
	m := mustFit(t, FromTokens(docs), v, Config{K: k, Alpha0: 1, Seed: 92})
	err := MatchError(m.Phi, truePhi)
	if err > 0.25 {
		t.Fatalf("recovery error = %v, want <= 0.25", err)
	}
	for _, phi := range m.Phi {
		s := 0.0
		for _, p := range phi {
			if p < 0 {
				t.Fatal("negative probability after clipping")
			}
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("phi sums to %v", s)
		}
	}
}

func TestFitDeterministicAcrossSeeds(t *testing.T) {
	// Robustness (Section 7.4.2): the moment method lands on the same
	// topics from different random seeds, unlike Gibbs sampling.
	k, v := 4, 60
	docs, _ := ldaCorpus(2500, 40, k, v, 0.2, 93)
	sd := FromTokens(docs)
	a := mustFit(t, sd, v, Config{K: k, Seed: 1})
	b := mustFit(t, sd, v, Config{K: k, Seed: 999})
	if err := MatchError(a.Phi, b.Phi); err > 0.05 {
		t.Fatalf("run-to-run variation = %v, want <= 0.05", err)
	}
}

func TestWeightsNormalized(t *testing.T) {
	docs, _ := ldaCorpus(1500, 30, 3, 45, 0.3, 94)
	m := mustFit(t, FromTokens(docs), 45, Config{K: 3, Seed: 95})
	s := 0.0
	for _, w := range m.Weight {
		if w < 0 {
			t.Fatalf("negative weight %v", w)
		}
		s += w
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("weights sum to %v", s)
	}
	// Ordered by weight.
	for i := 1; i < len(m.Weight); i++ {
		if m.Weight[i] > m.Weight[i-1]+1e-12 {
			t.Fatal("weights not sorted")
		}
	}
}

func TestLearnAlpha0PicksFiniteModel(t *testing.T) {
	docs, truePhi := ldaCorpus(2000, 40, 4, 60, 0.25, 96)
	m := mustFit(t, FromTokens(docs), 60, Config{K: 4, LearnAlpha0: true, Seed: 97})
	if m.Alpha0 <= 0 {
		t.Fatalf("alpha0 = %v", m.Alpha0)
	}
	if err := MatchError(m.Phi, truePhi); err > 0.3 {
		t.Fatalf("learned-alpha recovery error = %v", err)
	}
}

func TestDocTopicsInference(t *testing.T) {
	k, v := 3, 45
	docs, _ := ldaCorpus(1200, 40, k, v, 0.15, 98)
	sd := FromTokens(docs)
	m := mustFit(t, sd, v, Config{K: k, Seed: 99})
	theta, err := m.DocTopics(sd, 10)
	if err != nil {
		t.Fatal(err)
	}
	for d, th := range theta {
		s := 0.0
		for _, p := range th {
			s += p
		}
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("doc %d theta sums to %v", d, s)
		}
	}
}

func TestBuildTreeOnHierarchicalCorpus(t *testing.T) {
	ds := synth.DBLPTitles(synth.TextConfig{NumDocs: 3000, Seed: 100})
	docs := make([][]int, len(ds.Corpus.Docs))
	for i, d := range ds.Corpus.Docs {
		docs[i] = d.Tokens
	}
	h, err := BuildTree(FromTokens(docs), ds.Corpus.Vocab.Size(), TreeConfig{
		K: 3, Levels: 2, Config: Config{Seed: 101},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Root.Children) != 3 {
		t.Fatalf("root children = %d", len(h.Root.Children))
	}
	if h.Root.Height() != 2 {
		t.Fatalf("height = %d", h.Root.Height())
	}
	// Each child must carry a normalized phi.
	for _, c := range h.Root.Children {
		s := 0.0
		for _, p := range c.Phi[0] {
			s += p
		}
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("child phi sums to %v", s)
		}
	}
}
