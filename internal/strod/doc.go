// Package strod implements the scalable and robust topic discovery method
// of Chapter 7 (STROD): moment-based inference for latent Dirichlet
// allocation with a topic tree. Instead of likelihood maximization, it
// estimates the first three observable moments of the word co-occurrence
// distribution, whitens the second moment, and recovers the topic-word
// distributions by a robust orthogonal tensor decomposition of the whitened
// third moment (Section 7.3.1). The moments are accumulated from sparse
// document statistics without materializing any V x V matrix — the
// scalability device of Section 7.3.2 — and the Dirichlet concentration
// alpha0 can be selected by the data (Section 7.3.3).
package strod
