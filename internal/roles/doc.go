// Package roles implements entity topical role analysis (Chapter 5): given
// a phrase-represented topical hierarchy over a text-attached heterogeneous
// network, it answers the paper's two question types —
//
//   - Type A: what is a given entity's role in a topical community?
//     (entity-specific phrase ranking, Eq. 5.1-5.2, and the entity's
//     distribution over subtopics, Eq. 5.3-5.6)
//   - Type B: which entities play the most important roles in a community?
//     (ERank with popularity and purity, Section 5.2)
package roles
