package roles

import (
	"math"
	"sort"

	"lesm/internal/core"
	"lesm/internal/hin"
	"lesm/internal/lda"
	"lesm/internal/textkit"
	"lesm/internal/topmine"
)

// Analyzer precomputes phrase and document topical frequencies over a
// hierarchy.
type Analyzer struct {
	Corpus    *textkit.Corpus
	Docs      []hin.DocRecord
	Root      *core.TopicNode
	Miner     *topmine.Miner
	Partition []lda.PhraseDoc
	// Names optionally holds per-type entity display names (index 0 unused;
	// terms resolve through Corpus.Vocab).
	Names [][]string

	// paths enumerates topic paths in pre-order.
	paths []string
	node  map[string]*core.TopicNode
	// phraseFreq[path][phraseKey] = f_t(P); phraseTotal[path] = sum.
	phraseFreq  map[string]map[string]float64
	phraseTotal map[string]float64
	// docFreq[path][d] = f_t(d) (Eq. 5.4-5.5).
	docFreq map[string][]float64
}

// phraseKey renders word ids as the display string (stable and readable).
func (a *Analyzer) phraseKey(words []int) string { return a.Corpus.Phrase(words) }

// NewAnalyzer builds the role analyzer. The partition is the ToPMine
// segmentation of the corpus (phrases of each document); the miner supplies
// corpus phrase frequencies.
func NewAnalyzer(corpus *textkit.Corpus, docs []hin.DocRecord, root *core.TopicNode,
	miner *topmine.Miner, partition []lda.PhraseDoc) *Analyzer {

	a := &Analyzer{Corpus: corpus, Docs: docs, Root: root, Miner: miner, Partition: partition}
	a.node = map[string]*core.TopicNode{}
	root.Walk(func(n *core.TopicNode) {
		a.paths = append(a.paths, n.Path)
		a.node[n.Path] = n
	})
	a.computePhraseFrequencies()
	a.computeDocFrequencies()
	return a
}

// computePhraseFrequencies attributes every frequent phrase's corpus count
// down the hierarchy (Definition 3 via Eq. 4.3).
func (a *Analyzer) computePhraseFrequencies() {
	a.phraseFreq = map[string]map[string]float64{}
	a.phraseTotal = map[string]float64{}
	for _, p := range a.paths {
		a.phraseFreq[p] = map[string]float64{}
	}
	for ky, c := range a.Miner.FrequentPhrases(1) {
		words := topmine.DecodePhrase(ky)
		freqs := a.Root.AttributeFrequency(words, float64(c))
		k := a.phraseKey(words)
		for path, f := range freqs {
			if f > 0 {
				a.phraseFreq[path][k] = f
				a.phraseTotal[path] += f
			}
		}
	}
}

// computeDocFrequencies pushes every document's unit frequency down the
// hierarchy: a doc's share in subtopic t/z is the normalized sum over its
// frequent phrases of their subtopic shares (Eq. 5.4-5.5). Documents with no
// frequent phrase under a topic contribute nothing below it.
func (a *Analyzer) computeDocFrequencies() {
	d := len(a.Docs)
	a.docFreq = map[string][]float64{}
	rootF := make([]float64, d)
	for i := range rootF {
		rootF[i] = 1
	}
	a.docFreq[a.Root.Path] = rootF
	var rec func(n *core.TopicNode)
	rec = func(n *core.TopicNode) {
		if len(n.Children) == 0 {
			return
		}
		k := len(n.Children)
		for _, c := range n.Children {
			a.docFreq[c.Path] = make([]float64, d)
		}
		parentF := a.docFreq[n.Path]
		tpf := make([]float64, k)
		for di := 0; di < d; di++ {
			if parentF[di] == 0 {
				continue
			}
			for z := range tpf {
				tpf[z] = 0
			}
			any := false
			for _, phrase := range a.Partition[di] {
				if a.Miner.Count(phrase) < 1 {
					continue
				}
				// Only phrases that are frequent in this topic count.
				if a.phraseFreq[n.Path][a.phraseKey(phrase)] < 1 {
					continue
				}
				shares := n.SubtopicShares(phrase)
				for z := range shares {
					tpf[z] += shares[z]
				}
				any = true
			}
			if !any {
				continue
			}
			total := 0.0
			for _, v := range tpf {
				total += v
			}
			if total <= 0 {
				continue
			}
			for z, c := range n.Children {
				a.docFreq[c.Path][di] = parentF[di] * tpf[z] / total
			}
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(a.Root)
}

// DocFrequency returns f_t(d) for every document at the given topic path.
func (a *Analyzer) DocFrequency(path string) []float64 { return a.docFreq[path] }

// EntityFrequency returns f_t(E) for every type-x entity at the topic path:
// the sum of the entity's documents' topical frequencies (Eq. 5.6).
func (a *Analyzer) EntityFrequency(x core.TypeID, path string) []float64 {
	df := a.docFreq[path]
	if df == nil {
		return nil
	}
	var n int
	for _, d := range a.Docs {
		for _, e := range d.Entities[x] {
			if e+1 > n {
				n = e + 1
			}
		}
	}
	out := make([]float64, n)
	for di, d := range a.Docs {
		for _, e := range d.Entities[x] {
			out[e] += df[di]
		}
	}
	return out
}

// PhraseQuality returns r(P|t), the phrase's pointwise KL score against the
// parent topic (the hierarchy ranking function of Eq. 4.9).
func (a *Analyzer) PhraseQuality(path string, words []int) float64 {
	n := a.node[path]
	if n == nil || n.Parent() == nil {
		return 0
	}
	k := a.phraseKey(words)
	pt := a.phraseFreq[path][k] / math.Max(a.phraseTotal[path], 1)
	pp := a.phraseFreq[n.Parent().Path][k] / math.Max(a.phraseTotal[n.Parent().Path], 1)
	if pt <= 0 || pp <= 0 {
		return 0
	}
	return pt * math.Log(pt/pp)
}

// EntityPhrases answers the Type-A question with the combined ranking of
// Eq. 5.2: alpha * r(P|t,E) + (1-alpha) * r(P|t), where r(P|t,E) is the
// entity-specific pointwise KL of Eq. 5.1.
func (a *Analyzer) EntityPhrases(x core.TypeID, entity int, path string, alpha float64, topN int) []core.RankedPhrase {
	if alpha == 0 {
		alpha = 0.5
	}
	// f_t(P ∪ E): counts of the entity's docs containing P, attributed to t.
	entFreq := map[string]float64{}
	entTotal := 0.0
	for di, d := range a.Docs {
		linked := false
		for _, e := range d.Entities[x] {
			if e == entity {
				linked = true
				break
			}
		}
		if !linked {
			continue
		}
		for _, phrase := range a.Partition[di] {
			if a.Miner.Count(phrase) < 1 {
				continue
			}
			shares := a.Root.AttributeFrequency(phrase, 1)
			if f := shares[path]; f > 0 {
				entFreq[a.phraseKey(phrase)] += f
				entTotal += f
			}
		}
	}
	var out []core.RankedPhrase
	for k, ft := range a.phraseFreq[path] {
		pt := ft / math.Max(a.phraseTotal[path], 1)
		pte := entFreq[k] / math.Max(entTotal, 1)
		var rE float64
		if pt > 0 && pte > 0 {
			rE = -pt * math.Log(pt/pte)
		} else if pt > 0 {
			rE = -pt * 20 // unseen with this entity: strongly downranked
		}
		words := wordsOf(a.Corpus, k)
		score := alpha*rE + (1-alpha)*a.PhraseQuality(path, words)
		out = append(out, core.RankedPhrase{Words: words, Display: k, Score: score})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Display < out[j].Display
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}

// wordsOf re-tokenizes a phrase display string into vocabulary ids.
func wordsOf(c *textkit.Corpus, display string) []int {
	var out []int
	start := 0
	for i := 0; i <= len(display); i++ {
		if i == len(display) || display[i] == ' ' {
			if i > start {
				if id, ok := c.Vocab.ID(display[start:i]); ok {
					out = append(out, id)
				}
			}
			start = i + 1
		}
	}
	return out
}

// ERankMode selects the Type-B entity ranking function.
type ERankMode int

const (
	// ERankPop ranks by popularity p(e|t) alone.
	ERankPop ERankMode = iota
	// ERankPopPur combines popularity and purity against sibling topics
	// (Section 5.2's ERank_{Pop+Pur}).
	ERankPopPur
)

// RankEntities answers the Type-B question: the top type-x entities of the
// topic at path under the chosen ranking mode.
func (a *Analyzer) RankEntities(x core.TypeID, path string, mode ERankMode, topN int) []core.RankedEntity {
	n := a.node[path]
	if n == nil {
		return nil
	}
	ft := a.EntityFrequency(x, path)
	total := 0.0
	for _, v := range ft {
		total += v
	}
	// Sibling frequencies for the purity contrast.
	var siblings [][]float64
	var sibTotals []float64
	if mode == ERankPopPur && n.Parent() != nil {
		for _, s := range n.Parent().Children {
			if s == n {
				continue
			}
			sf := a.EntityFrequency(x, s.Path)
			st := 0.0
			for _, v := range sf {
				st += v
			}
			siblings = append(siblings, sf)
			sibTotals = append(sibTotals, st)
		}
	}
	names := a.entityNames(x, len(ft))
	var out []core.RankedEntity
	for e, f := range ft {
		if f <= 0 {
			continue
		}
		pe := f / math.Max(total, 1e-12)
		score := pe
		if mode == ERankPopPur && len(siblings) > 0 {
			worst := 0.0
			for si, sf := range siblings {
				var sfe float64
				if e < len(sf) {
					sfe = sf[e]
				}
				mix := (f + sfe) / math.Max(total+sibTotals[si], 1e-12)
				if mix > worst {
					worst = mix
				}
			}
			if worst > 0 {
				score = pe * math.Log(pe/worst)
			}
		}
		out = append(out, core.RankedEntity{ID: e, Display: names[e], Score: score})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}

// entityNames resolves display names; falls back to synthetic labels when
// Names was not provided.
func (a *Analyzer) entityNames(x core.TypeID, n int) []string {
	if a.Names != nil && int(x) < len(a.Names) && a.Names[x] != nil {
		return a.Names[x]
	}
	out := make([]string, n)
	for i := range out {
		out[i] = "entity-" + itoa(i)
	}
	return out
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [12]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
