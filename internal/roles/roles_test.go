package roles

import (
	"math"
	"testing"

	"lesm/internal/cathy"
	"lesm/internal/core"
	"lesm/internal/synth"
	"lesm/internal/topmine"
)

// setup builds a small DBLP dataset, a 2-level hierarchy and an analyzer.
func setup(t *testing.T) (*synth.Dataset, *Analyzer) {
	t.Helper()
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: 800, NumAuthors: 160, Seed: 61})
	net := ds.CollapsedNetwork(0)
	res, err := cathy.Build(net, cathy.Options{K: 3, Levels: 2, EMIters: 25, Restarts: 1, Seed: 62, Background: true})
	if err != nil {
		t.Fatal(err)
	}
	miner := topmine.MineFrequentPhrases(ds.Corpus.Docs, topmine.Config{MinSupport: 5, MaxLen: 5, Alpha: 3})
	part := miner.SegmentCorpus(ds.Corpus.Docs)
	a := NewAnalyzer(ds.Corpus, ds.Docs, res.Hierarchy.Root, miner, part)
	a.Names = ds.Names
	return ds, a
}

func TestDocFrequencyConservation(t *testing.T) {
	_, a := setup(t)
	root := a.DocFrequency("o")
	for di := range root {
		if root[di] != 1 {
			t.Fatalf("root doc freq = %v", root[di])
		}
	}
	// Children sum to at most the parent (some docs contribute nothing).
	kids := a.Root.Children
	for di := range root {
		s := 0.0
		for _, c := range kids {
			s += a.DocFrequency(c.Path)[di]
		}
		if s > 1+1e-9 {
			t.Fatalf("doc %d children freq sum = %v > 1", di, s)
		}
	}
	// Most documents should be attributed somewhere.
	attributed := 0
	for di := range root {
		for _, c := range kids {
			if a.DocFrequency(c.Path)[di] > 0 {
				attributed++
				break
			}
		}
	}
	if frac := float64(attributed) / float64(len(root)); frac < 0.7 {
		t.Fatalf("only %v of docs attributed to subtopics", frac)
	}
}

func TestEntityFrequencyMatchesDocSum(t *testing.T) {
	ds, a := setup(t)
	path := a.Root.Children[0].Path
	ef := a.EntityFrequency(1, path)
	df := a.DocFrequency(path)
	// Recompute one entity by hand.
	e := ds.Docs[0].Entities[1][0]
	want := 0.0
	for di, d := range ds.Docs {
		for _, ee := range d.Entities[1] {
			if ee == e {
				want += df[di]
			}
		}
	}
	if math.Abs(ef[e]-want) > 1e-9 {
		t.Fatalf("entity freq = %v, want %v", ef[e], want)
	}
}

func TestRankEntitiesPopularVsPure(t *testing.T) {
	_, a := setup(t)
	path := a.Root.Children[0].Path
	pop := a.RankEntities(1, path, ERankPop, 10)
	pur := a.RankEntities(1, path, ERankPopPur, 10)
	if len(pop) == 0 || len(pur) == 0 {
		t.Fatal("empty entity rankings")
	}
	for _, e := range pop {
		if e.Score <= 0 {
			t.Fatalf("pop score = %v", e.Score)
		}
		if e.Display == "" {
			t.Fatal("missing display name")
		}
	}
	// The two modes should not produce identical ordered lists in general.
	same := true
	for i := range pop {
		if i < len(pur) && pop[i].ID != pur[i].ID {
			same = false
		}
	}
	if same && len(pop) > 3 {
		t.Log("warning: pop and pop+pur rankings identical (possible but unusual)")
	}
}

func TestEntityPhrasesFavorEntitySpecificPhrases(t *testing.T) {
	ds, a := setup(t)
	// Find the most prolific author.
	counts := map[int]int{}
	for _, d := range ds.Docs {
		for _, e := range d.Entities[1] {
			counts[e]++
		}
	}
	best, bestC := -1, 0
	for e, c := range counts {
		if c > bestC {
			best, bestC = e, c
		}
	}
	path := a.Root.Children[0].Path
	ranked := a.EntityPhrases(1, best, path, 0.5, 10)
	if len(ranked) == 0 {
		t.Fatal("no entity-specific phrases")
	}
	// Scores must be finite and ordered.
	for i, p := range ranked {
		if math.IsNaN(p.Score) || math.IsInf(p.Score, 0) {
			t.Fatalf("bad score %v for %q", p.Score, p.Display)
		}
		if i > 0 && ranked[i-1].Score < p.Score {
			t.Fatal("ranking not sorted")
		}
	}
}

func TestPhraseQualityParentContrast(t *testing.T) {
	_, a := setup(t)
	child := a.Root.Children[0]
	var best string
	var bestScore float64
	for k := range a.phraseFreq[child.Path] {
		if s := a.PhraseQuality(child.Path, wordsOf(a.Corpus, k)); s > bestScore {
			best, bestScore = k, s
		}
	}
	if best == "" || bestScore <= 0 {
		t.Fatalf("no positive-quality phrase found (best %q %v)", best, bestScore)
	}
	// Root has no parent: quality 0.
	if got := a.PhraseQuality("o", []int{0}); got != 0 {
		t.Fatalf("root quality = %v", got)
	}
}

func TestSubtopicSharesSumToOne(t *testing.T) {
	_, a := setup(t)
	var n *core.TopicNode = a.Root
	shares := n.SubtopicShares([]int{0, 1})
	s := 0.0
	for _, v := range shares {
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("shares sum to %v", s)
	}
}
