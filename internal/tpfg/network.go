package tpfg

import (
	"math"
	"sort"
)

// Paper is one publication record: year plus author ids.
type Paper struct {
	Year    int
	Authors []int
}

// pairStats tracks the co-publication history of an author pair.
type pairStats struct {
	years  []int // sorted distinct years with co-publications
	counts []int // papers per year
}

func (p *pairStats) add(year int) {
	i := sort.SearchInts(p.years, year)
	if i < len(p.years) && p.years[i] == year {
		p.counts[i]++
		return
	}
	p.years = append(p.years, 0)
	copy(p.years[i+1:], p.years[i:])
	p.years[i] = year
	p.counts = append(p.counts, 0)
	copy(p.counts[i+1:], p.counts[i:])
	p.counts[i] = 1
}

// authorStats tracks an author's own publication history.
type authorStats struct {
	years  []int
	counts []int
	first  int
}

// Candidate is one potential advisor of an author with the advising-time
// estimate and local likelihood from Stage 1.
type Candidate struct {
	Advisor int
	Start   int
	End     int
	Local   float64 // l_ij, Eq. 6.3
}

// Network is the preprocessed candidate DAG G' of Section 6.1.3.
type Network struct {
	NumAuthors int
	// Cands[i] lists i's candidate advisors, sorted by id; empty means only
	// the virtual no-advisor node remains.
	Cands [][]Candidate
	// First[i] is the author's first publication year.
	First []int
}

// Rules toggles the Stage-1 filtering heuristics so their contribution can
// be ablated (the paper tests each rule's effect).
type Rules struct {
	R1 bool // drop j if IR^t < 0 at some point of the collaboration
	R2 bool // drop j if the kulc sequence never increases
	R3 bool // drop j if the collaboration lasts a single year
	R4 bool // drop j unless j started publishing >= 2 years before the first co-publication
}

// AllRules enables R1-R4.
var AllRules = Rules{true, true, true, true}

// PreprocessOptions configure Stage 1.
type PreprocessOptions struct {
	Rules Rules
	// Likelihood selects the local likelihood estimate: "kulc", "ir" or
	// "avg" (Eq. 6.3; default "avg").
	Likelihood string
	// EndEstimate selects the advising-end heuristic: "year1" (first kulc
	// decrease), "year2" (largest before/after kulc difference) or "year"
	// (the earlier of the two; default).
	EndEstimate string
}

// cumulative publication count of author a up to year t (inclusive).
func cumAt(years, counts []int, t int) float64 {
	s := 0.0
	for i, y := range years {
		if y > t {
			break
		}
		s += float64(counts[i])
	}
	return s
}

// Preprocess builds the candidate DAG from publication records (Stage 1).
func Preprocess(papers []Paper, numAuthors int, opt PreprocessOptions) *Network {
	if opt.Likelihood == "" {
		opt.Likelihood = "avg"
	}
	if opt.EndEstimate == "" {
		opt.EndEstimate = "year"
	}
	authors := make([]authorStats, numAuthors)
	for a := range authors {
		authors[a].first = math.MaxInt32
	}
	pairs := map[[2]int]*pairStats{}
	for _, p := range papers {
		for _, a := range p.Authors {
			st := &authors[a]
			i := sort.SearchInts(st.years, p.Year)
			if i < len(st.years) && st.years[i] == p.Year {
				st.counts[i]++
			} else {
				st.years = append(st.years, 0)
				copy(st.years[i+1:], st.years[i:])
				st.years[i] = p.Year
				st.counts = append(st.counts, 0)
				copy(st.counts[i+1:], st.counts[i:])
				st.counts[i] = 1
			}
			if p.Year < st.first {
				st.first = p.Year
			}
		}
		for ai := 0; ai < len(p.Authors); ai++ {
			for aj := ai + 1; aj < len(p.Authors); aj++ {
				a, b := p.Authors[ai], p.Authors[aj]
				if a == b {
					continue
				}
				if a > b {
					a, b = b, a
				}
				ps := pairs[[2]int{a, b}]
				if ps == nil {
					ps = &pairStats{}
					pairs[[2]int{a, b}] = ps
				}
				ps.add(p.Year)
			}
		}
	}

	net := &Network{NumAuthors: numAuthors, Cands: make([][]Candidate, numAuthors), First: make([]int, numAuthors)}
	for a := range authors {
		net.First[a] = authors[a].first
	}

	// kulc and IR sequences over the collaboration years (Eq. 6.1-6.2).
	kulcAt := func(i, j int, ps *pairStats, t int) float64 {
		cij := cumAt(ps.years, ps.counts, t)
		ci := cumAt(authors[i].years, authors[i].counts, t)
		cj := cumAt(authors[j].years, authors[j].counts, t)
		if ci == 0 || cj == 0 {
			return 0
		}
		return cij / 2 * (1/ci + 1/cj)
	}
	irAt := func(i, j int, ps *pairStats, t int) float64 {
		cij := cumAt(ps.years, ps.counts, t)
		ci := cumAt(authors[i].years, authors[i].counts, t)
		cj := cumAt(authors[j].years, authors[j].counts, t)
		den := ci + cj - cij
		if den == 0 {
			return 0
		}
		return (cj - ci) / den
	}

	consider := func(i, j int, ps *pairStats) {
		// Assumption 6.2: the advisor publishes strictly earlier.
		if authors[j].first >= authors[i].first {
			return
		}
		years := ps.years
		if opt.Rules.R3 && len(years) < 2 {
			return
		}
		if opt.Rules.R4 && authors[j].first+2 > years[0] {
			return
		}
		kulcSeq := make([]float64, len(years))
		irSeq := make([]float64, len(years))
		for t, y := range years {
			kulcSeq[t] = kulcAt(i, j, ps, y)
			irSeq[t] = irAt(i, j, ps, y)
		}
		if opt.Rules.R1 {
			for _, v := range irSeq {
				if v < 0 {
					return
				}
			}
		}
		if opt.Rules.R2 {
			inc := false
			for t := 1; t < len(kulcSeq); t++ {
				if kulcSeq[t] > kulcSeq[t-1] {
					inc = true
					break
				}
			}
			if !inc && len(kulcSeq) > 1 {
				return
			}
		}
		st := years[0]
		ed := estimateEnd(years, kulcSeq, opt.EndEstimate)
		// Local likelihood over [st, ed] (Eq. 6.3).
		var kSum, iSum float64
		n := 0
		for t, y := range years {
			if y < st || y > ed {
				continue
			}
			kSum += kulcSeq[t]
			iSum += irSeq[t]
			n++
		}
		if n == 0 {
			n = 1
		}
		var local float64
		switch opt.Likelihood {
		case "kulc":
			local = kSum / float64(n)
		case "ir":
			local = iSum / float64(n)
		default:
			local = (kSum + iSum) / (2 * float64(n))
		}
		if local <= 0 {
			return
		}
		net.Cands[i] = append(net.Cands[i], Candidate{Advisor: j, Start: st, End: ed, Local: local})
	}

	keys := make([][2]int, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, k := range keys {
		ps := pairs[k]
		consider(k[0], k[1], ps)
		consider(k[1], k[0], ps)
	}
	for i := range net.Cands {
		sort.Slice(net.Cands[i], func(a, b int) bool { return net.Cands[i][a].Advisor < net.Cands[i][b].Advisor })
	}
	return net
}

// estimateEnd picks the advising end year from the kulc sequence: YEAR1 is
// the first year the sequence decreases; YEAR2 maximizes the difference of
// mean kulc before and after; YEAR takes the earlier of the two.
func estimateEnd(years []int, kulc []float64, mode string) int {
	last := years[len(years)-1]
	year1 := last
	for t := 1; t < len(kulc); t++ {
		if kulc[t] < kulc[t-1] {
			year1 = years[t-1]
			break
		}
	}
	year2 := last
	bestDiff := math.Inf(-1)
	for t := 0; t < len(years); t++ {
		var pre, post float64
		for u := 0; u <= t; u++ {
			pre += kulc[u]
		}
		pre /= float64(t + 1)
		if t+1 < len(years) {
			for u := t + 1; u < len(years); u++ {
				post += kulc[u]
			}
			post /= float64(len(years) - t - 1)
		}
		if d := pre - post; d > bestDiff {
			bestDiff = d
			year2 = years[t]
		}
	}
	switch mode {
	case "year1":
		return year1
	case "year2":
		return year2
	default:
		if year1 < year2 {
			return year1
		}
		return year2
	}
}
