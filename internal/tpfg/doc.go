// Package tpfg implements the unsupervised hierarchical-relation miner of
// Section 6.1: Stage 1 preprocesses a temporal collaboration network into a
// candidate DAG using the Kulczynski and imbalance-ratio sequences
// (Eq. 6.1-6.2) and the filtering rules R1-R4; Stage 2 runs max-product
// message passing on the Time-constrained Probabilistic Factor Graph
// (Eq. 6.4-6.10) to jointly rank every author's candidate advisors.
//
// The RULE, IndMAX and logistic-regression baselines of the paper's
// comparison live in baselines.go.
package tpfg
