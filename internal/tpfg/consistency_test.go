package tpfg

import "testing"

// TestPredictionsTemporallyConsistent checks the joint-inference property
// that motivates TPFG (Assumption 6.1): along any predicted advising chain,
// an author's own advising interval ends before they start advising their
// predicted students. Independent per-pair prediction cannot guarantee
// this; the factor graph should (violations may only arise from ties in the
// max-product beliefs, so a small tolerance is allowed).
func TestPredictionsTemporallyConsistent(t *testing.T) {
	g, papers := genData(179)
	net := Preprocess(papers, g.NumAuthors, PreprocessOptions{Rules: AllRules})
	res := Infer(net, Config{})
	pred := res.Predict()

	// interval[i] = predicted advised interval of i (when advised).
	type iv struct {
		ok         bool
		start, end int
	}
	intervals := make([]iv, g.NumAuthors)
	for i, adv := range pred {
		if adv < 0 {
			continue
		}
		for _, c := range net.Cands[i] {
			if c.Advisor == adv {
				intervals[i] = iv{true, c.Start, c.End}
			}
		}
	}
	violations, pairs := 0, 0
	for i, adv := range pred {
		if adv < 0 || !intervals[adv].ok {
			continue
		}
		pairs++
		// adv is predicted to advise i starting intervals[i].start while
		// being advised until intervals[adv].end.
		if intervals[adv].end >= intervals[i].start {
			violations++
		}
	}
	if pairs == 0 {
		t.Fatal("no chained predictions to check")
	}
	if frac := float64(violations) / float64(pairs); frac > 0.05 {
		t.Fatalf("temporal consistency violated on %v of %d chained pairs", frac, pairs)
	}
}

// TestIndependentPredictionViolatesConstraints documents the contrast: the
// IndMAX baseline, which ignores the joint constraints, produces at least
// as many violations as TPFG on the same network.
func TestIndependentPredictionViolatesConstraints(t *testing.T) {
	g, papers := genData(181)
	net := Preprocess(papers, g.NumAuthors, PreprocessOptions{Rules: AllRules})

	count := func(pred []int) (violations int) {
		type iv struct {
			ok         bool
			start, end int
		}
		intervals := make([]iv, g.NumAuthors)
		for i, adv := range pred {
			if adv < 0 {
				continue
			}
			for _, c := range net.Cands[i] {
				if c.Advisor == adv {
					intervals[i] = iv{true, c.Start, c.End}
				}
			}
		}
		for i, adv := range pred {
			if adv < 0 || !intervals[adv].ok {
				continue
			}
			if intervals[adv].end >= intervals[i].start {
				violations++
			}
		}
		return violations
	}
	tpfgV := count(Infer(net, Config{}).Predict())
	indV := count(IndMaxBaseline(net, 0))
	if tpfgV > indV {
		t.Fatalf("TPFG violations (%d) exceed IndMAX (%d)", tpfgV, indV)
	}
}
