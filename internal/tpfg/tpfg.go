package tpfg

import (
	"context"
	"math"
	"sort"

	"lesm/internal/par"
)

// Config parameterizes TPFG inference (Stage 2).
type Config struct {
	// NoAdvisorWeight is the prior local likelihood of the virtual
	// no-advisor node a0 (default 0.35).
	NoAdvisorWeight float64
	// Sweeps is the number of message-passing sweeps (default 15).
	Sweeps int
	// P bounds the worker count of the parallel message passes
	// (0 = GOMAXPROCS). Results are bit-identical at any P.
	P int
	// Ctx stops inference early (nil = background). Cancellation is
	// best-effort: a cancel that lands mid-sweep leaves messages from two
	// adjacent sweeps mixed, so callers needing a hard guarantee must check
	// Ctx.Err() afterwards and discard the result (lesm.MineAdvisorTree
	// does exactly that).
	Ctx context.Context
}

func (c Config) withDefaults() Config {
	if c.NoAdvisorWeight == 0 {
		c.NoAdvisorWeight = 0.35
	}
	if c.Sweeps == 0 {
		c.Sweeps = 15
	}
	return c
}

// Result holds the inferred ranking: Rank[i][v] is r_{i,cand_v} where v
// indexes i's candidate list shifted by one (v=0 is the virtual no-advisor
// node a0). Ranks are normalized per author.
type Result struct {
	Net  *Network
	Rank [][]float64
}

var negInf = math.Inf(-1)

// Infer runs max-sum message passing on the time-constrained factor graph.
// Factor f_i couples y_i with every y_x of advisee-candidates x of i
// (Eq. 6.8): if x picks i as advisor, i's own advising interval under y_i=j
// must end before x's start (ed_ij < st_xi, Assumption 6.1).
func Infer(net *Network, cfg Config) *Result {
	cfg = cfg.withDefaults()
	n := net.NumAuthors

	// Domains: value 0 = no advisor; value v>0 = Cands[i][v-1].
	dom := make([]int, n)
	logPrior := make([][]float64, n)
	for i := 0; i < n; i++ {
		dom[i] = len(net.Cands[i]) + 1
		lp := make([]float64, dom[i])
		total := cfg.NoAdvisorWeight
		for _, c := range net.Cands[i] {
			total += c.Local
		}
		lp[0] = math.Log(cfg.NoAdvisorWeight / total)
		for v, c := range net.Cands[i] {
			lp[v+1] = math.Log(c.Local / total)
		}
		logPrior[i] = lp
	}

	// advisees[j] lists (x, idx) pairs: author x has j as candidate at
	// position idx of x's candidate list. pos[x][idx] is the position of
	// (x, idx) within advisees[j] — the reverse index that lets the
	// variable-side pass gather its incoming messages without scattering
	// across authors (the restructuring that makes the passes disjoint per
	// author, hence parallelizable over the independent subtrees).
	type adv struct{ x, idx int }
	advisees := make([][]adv, n)
	pos := make([][]int, n)
	for x := 0; x < n; x++ {
		pos[x] = make([]int, len(net.Cands[x]))
		for idx, c := range net.Cands[x] {
			pos[x][idx] = len(advisees[c.Advisor])
			advisees[c.Advisor] = append(advisees[c.Advisor], adv{x, idx})
		}
	}

	// Messages. mFV[i][v]: factor f_i -> variable y_i.
	// mVF[i][v]: variable y_i -> factor f_i.
	// mFxV[i][a][u]: factor f_i -> variable y_x (a indexes advisees[i]),
	//   over values u of y_x.
	// mVFx[i][a][u]: variable y_x -> factor f_i.
	mFV := make([][]float64, n)
	mVF := make([][]float64, n)
	mFxV := make([][][]float64, n)
	mVFx := make([][][]float64, n)
	for i := 0; i < n; i++ {
		mFV[i] = make([]float64, dom[i])
		mVF[i] = make([]float64, dom[i])
		mFxV[i] = make([][]float64, len(advisees[i]))
		mVFx[i] = make([][]float64, len(advisees[i]))
		for a, ad := range advisees[i] {
			mFxV[i][a] = make([]float64, dom[ad.x])
			mVFx[i][a] = make([]float64, dom[ad.x])
		}
	}
	normalizeMsg := func(m []float64) {
		max := negInf
		for _, v := range m {
			if v > max {
				max = v
			}
		}
		if math.IsInf(max, -1) {
			return
		}
		for i := range m {
			m[i] -= max
		}
	}

	// compat(i, a, u, v): indicator (log 0 / -inf) for factor f_i between
	// its own value v and advisee a's value u.
	compat := func(i, a int, u, v int) bool {
		ad := advisees[i][a]
		// u corresponds to x choosing candidate u-1; x chooses i iff that
		// candidate is i.
		if u == 0 || net.Cands[ad.x][u-1].Advisor != i {
			return true
		}
		if v == 0 {
			return true // i was never advised: no temporal conflict
		}
		return net.Cands[i][v-1].End < net.Cands[ad.x][u-1].Start
	}

	o := par.Opts{P: cfg.P, Ctx: cfg.Ctx}
	incoming := make([][]float64, n) // summed f_j -> y_i
	for i := 0; i < n; i++ {
		incoming[i] = make([]float64, dom[i])
	}
	for sweep := 0; sweep < cfg.Sweeps; sweep++ {
		if o.Err() != nil {
			break // best-effort: report beliefs of the completed sweeps
		}
		// Variable -> factor messages. Each variable x gathers the messages
		// of its candidate-advisor factors through the reverse index in its
		// fixed candidate order, so the floating-point sums are identical at
		// any parallelism level; writes are disjoint per variable.
		par.For(o, n, func(lo, hi int) {
			for x := lo; x < hi; x++ {
				inc := incoming[x]
				for u := range inc {
					inc[u] = 0
				}
				for idx, c := range net.Cands[x] {
					msg := mFxV[c.Advisor][pos[x][idx]]
					for u := range inc {
						inc[u] += msg[u]
					}
				}
				copy(mVF[x], inc)
				normalizeMsg(mVF[x])
			}
		})
		// y_x -> f_j: all incoming except f_j's own message, plus x's own
		// factor message mFV[x]. Disjoint per factor j.
		par.For(o, n, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				for a, ad := range advisees[j] {
					x := ad.x
					for u := 0; u < dom[x]; u++ {
						mVFx[j][a][u] = mFV[x][u] + incoming[x][u] - mFxV[j][a][u]
					}
					normalizeMsg(mVFx[j][a])
				}
			}
		})

		// Factor -> variable messages. Disjoint per factor i.
		par.For(o, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				na := len(advisees[i])
				// term[a][v] = max_u (compat ? mVFx[i][a][u] : -inf)
				term := make([][]float64, na)
				for a := 0; a < na; a++ {
					term[a] = make([]float64, dom[i])
					for v := 0; v < dom[i]; v++ {
						best := negInf
						for u := 0; u < dom[advisees[i][a].x]; u++ {
							if compat(i, a, u, v) {
								if m := mVFx[i][a][u]; m > best {
									best = m
								}
							}
						}
						term[a][v] = best
					}
				}
				sum := make([]float64, dom[i])
				for v := 0; v < dom[i]; v++ {
					s := 0.0
					for a := 0; a < na; a++ {
						s += term[a][v]
					}
					sum[v] = s
				}
				// f_i -> y_i.
				for v := 0; v < dom[i]; v++ {
					mFV[i][v] = logPrior[i][v] + sum[v]
				}
				normalizeMsg(mFV[i])
				// f_i -> y_x for each advisee a.
				for a := 0; a < na; a++ {
					x := advisees[i][a].x
					for u := 0; u < dom[x]; u++ {
						best := negInf
						for v := 0; v < dom[i]; v++ {
							if !compat(i, a, u, v) {
								continue
							}
							cand := logPrior[i][v] + mVF[i][v] + sum[v] - term[a][v]
							if cand > best {
								best = cand
							}
						}
						mFxV[i][a][u] = best
					}
					normalizeMsg(mFxV[i][a])
				}
			}
		})
	}

	// Beliefs -> normalized ranks.
	res := &Result{Net: net, Rank: make([][]float64, n)}
	for i := 0; i < n; i++ {
		b := make([]float64, dom[i])
		for v := 0; v < dom[i]; v++ {
			b[v] = mFV[i][v] + mVF[i][v]
		}
		// Softmax normalization turns max-sum beliefs into ranking scores.
		max := negInf
		for _, v := range b {
			if v > max {
				max = v
			}
		}
		s := 0.0
		for v := range b {
			b[v] = math.Exp(b[v] - max)
			s += b[v]
		}
		for v := range b {
			b[v] /= s
		}
		res.Rank[i] = b
	}
	return res
}

// Predict returns each author's top-ranked advisor (-1 for the virtual
// no-advisor node).
func (r *Result) Predict() []int {
	out := make([]int, r.Net.NumAuthors)
	for i := range out {
		best, bestV := 0, r.Rank[i][0]
		for v := 1; v < len(r.Rank[i]); v++ {
			if r.Rank[i][v] > bestV {
				best, bestV = v, r.Rank[i][v]
			}
		}
		if best == 0 {
			out[i] = -1
		} else {
			out[i] = r.Net.Cands[i][best-1].Advisor
		}
	}
	return out
}

// PredictTopK implements the paper's P@(k, theta) decision rule: author i's
// advisor is predicted as j if j ranks within the top k candidates and
// r_ij > max(theta, r_i0).
func (r *Result) PredictTopK(i, k int, theta float64) []int {
	type cv struct {
		adv  int
		rank float64
	}
	var cs []cv
	for v := 1; v < len(r.Rank[i]); v++ {
		cs = append(cs, cv{r.Net.Cands[i][v-1].Advisor, r.Rank[i][v]})
	}
	sort.SliceStable(cs, func(a, b int) bool { return cs[a].rank > cs[b].rank })
	var out []int
	for idx, c := range cs {
		if idx >= k {
			break
		}
		if c.rank > theta && c.rank > r.Rank[i][0] {
			out = append(out, c.adv)
		}
	}
	return out
}
