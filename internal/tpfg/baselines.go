package tpfg

import (
	"math"
	"math/rand"
	"sort"
)

// RuleBaseline predicts each author's advisor with the empirical rule of
// the paper's comparison (RULE): the advisor is the earliest senior
// collaborator — a co-author who started publishing at least two years
// before the first collaboration and has at least two joint papers — with
// ties broken by early-window co-publication volume. Rule systems of this
// kind have no way to arbitrate between an advisor and an advisor-lookalike
// (e.g. a senior labmate) who enters in the same year.
func RuleBaseline(papers []Paper, numAuthors int) []int {
	first := make([]int, numAuthors)
	for i := range first {
		first[i] = math.MaxInt32
	}
	for _, p := range papers {
		for _, a := range p.Authors {
			if p.Year < first[a] {
				first[a] = p.Year
			}
		}
	}
	firstCollab := make([]map[int]int, numAuthors)
	early := make([]map[int]float64, numAuthors)
	total := make([]map[int]float64, numAuthors)
	for i := range firstCollab {
		firstCollab[i] = map[int]int{}
		early[i] = map[int]float64{}
		total[i] = map[int]float64{}
	}
	for _, p := range papers {
		for _, a := range p.Authors {
			for _, b := range p.Authors {
				if a == b {
					continue
				}
				if y, ok := firstCollab[a][b]; !ok || p.Year < y {
					firstCollab[a][b] = p.Year
				}
				total[a][b]++
				if p.Year <= first[a]+1 {
					early[a][b]++
				}
			}
		}
	}
	out := make([]int, numAuthors)
	for i := range out {
		out[i] = -1
		bestYear := math.MaxInt32
		bestEarly := -1.0
		keys := make([]int, 0, len(firstCollab[i]))
		for j := range firstCollab[i] {
			keys = append(keys, j)
		}
		sort.Ints(keys)
		for _, j := range keys {
			fc := firstCollab[i][j]
			if first[j]+2 > fc || total[i][j] < 2 {
				continue // not senior enough or too few joint papers
			}
			if fc < bestYear || (fc == bestYear && early[i][j] > bestEarly) {
				bestYear = fc
				bestEarly = early[i][j]
				out[i] = j
			}
		}
	}
	return out
}

// IndMaxBaseline predicts each author's advisor as the candidate with the
// maximal local likelihood, with no joint time-constraint reasoning — the
// ablation that isolates TPFG's dependency modeling.
func IndMaxBaseline(net *Network, noAdvisorWeight float64) []int {
	if noAdvisorWeight == 0 {
		noAdvisorWeight = 0.35
	}
	out := make([]int, net.NumAuthors)
	for i := range out {
		out[i] = -1
		best := noAdvisorWeight
		for _, c := range net.Cands[i] {
			if c.Local > best {
				best = c.Local
				out[i] = c.Advisor
			}
		}
	}
	return out
}

// PairFeatures extracts the per-candidate feature vector used by the
// supervised baselines and the relational CRF: average kulc, average IR,
// collaboration duration, seniority gap, co-publication count, and the
// fraction of the advisee's early papers co-authored with the candidate.
func PairFeatures(papers []Paper, numAuthors int, net *Network) map[[2]int][]float64 {
	first := net.First
	coCount := map[[2]int]float64{}
	early := map[[2]int]float64{}
	earlyTotal := make([]float64, numAuthors)
	for _, p := range papers {
		for _, a := range p.Authors {
			if p.Year <= first[a]+3 {
				earlyTotal[a]++
			}
			for _, b := range p.Authors {
				if a == b {
					continue
				}
				coCount[[2]int{a, b}]++
				if p.Year <= first[a]+3 {
					early[[2]int{a, b}]++
				}
			}
		}
	}
	out := map[[2]int][]float64{}
	for i := range net.Cands {
		for _, c := range net.Cands[i] {
			j := c.Advisor
			dur := float64(c.End - c.Start + 1)
			gap := float64(first[i] - first[j])
			ef := 0.0
			if earlyTotal[i] > 0 {
				ef = early[[2]int{i, j}] / earlyTotal[i]
			}
			out[[2]int{i, j}] = []float64{
				c.Local, dur, gap, coCount[[2]int{i, j}], ef, 1, // bias last
			}
		}
	}
	return out
}

// LogitBaseline is the linear-classifier stand-in for the paper's SVM
// comparison (both are linear margin models; DESIGN.md §2): a logistic
// regression over PairFeatures trained on labeled authors, predicting each
// test author's advisor as the highest-scoring candidate.
type LogitBaseline struct {
	W []float64
}

// TrainLogit fits weights by SGD on (candidate, is-true-advisor) pairs.
func TrainLogit(feats map[[2]int][]float64, net *Network, advisorOf []int, trainIdx []int, seed int64) *LogitBaseline {
	rng := rand.New(rand.NewSource(seed))
	var dim int
	for _, f := range feats {
		dim = len(f)
		break
	}
	w := make([]float64, dim)
	type ex struct {
		f []float64
		y float64
	}
	var data []ex
	for _, i := range trainIdx {
		for _, c := range net.Cands[i] {
			f := feats[[2]int{i, c.Advisor}]
			y := 0.0
			if advisorOf[i] == c.Advisor {
				y = 1
			}
			data = append(data, ex{f, y})
		}
	}
	if len(data) == 0 {
		return &LogitBaseline{W: w}
	}
	lr := 0.1
	for epoch := 0; epoch < 50; epoch++ {
		rng.Shuffle(len(data), func(a, b int) { data[a], data[b] = data[b], data[a] })
		for _, e := range data {
			z := 0.0
			for d := range w {
				z += w[d] * e.f[d]
			}
			p := 1 / (1 + math.Exp(-z))
			g := e.y - p
			for d := range w {
				w[d] += lr * (g*e.f[d] - 1e-4*w[d])
			}
		}
		lr *= 0.95
	}
	return &LogitBaseline{W: w}
}

// Predict returns the advisor prediction for every author (-1 = none): the
// best-scoring candidate if its probability exceeds 0.5, else none.
func (l *LogitBaseline) Predict(feats map[[2]int][]float64, net *Network) []int {
	out := make([]int, net.NumAuthors)
	for i := range out {
		out[i] = -1
		best := 0.0
		for _, c := range net.Cands[i] {
			f := feats[[2]int{i, c.Advisor}]
			z := 0.0
			for d := range l.W {
				z += l.W[d] * f[d]
			}
			p := 1 / (1 + math.Exp(-z))
			if p > 0.5 && p > best {
				best = p
				out[i] = c.Advisor
			}
		}
	}
	return out
}

// Accuracy scores predictions against ground truth over the evaluable
// authors (those with a true advisor), as in Section 6.1.6: a hit requires
// predicting exactly the true advisor.
func Accuracy(pred, truth []int, eval []int) float64 {
	if len(eval) == 0 {
		return 0
	}
	hit := 0
	for _, i := range eval {
		if pred[i] == truth[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(eval))
}
