package tpfg

import (
	"math"
	"testing"

	"lesm/internal/synth"
)

func genData(seed int64) (*synth.Genealogy, []Paper) {
	g := synth.NewGenealogy(synth.GenealogyConfig{Seed: seed})
	papers := make([]Paper, len(g.Papers))
	for i, p := range g.Papers {
		papers[i] = Paper{Year: p.Year, Authors: p.Authors}
	}
	return g, papers
}

func evalSet(g *synth.Genealogy) []int {
	var out []int
	for a, adv := range g.AdvisorOf {
		if adv >= 0 {
			out = append(out, a)
		}
	}
	return out
}

func TestPreprocessKeepsTrueAdvisors(t *testing.T) {
	g, papers := genData(71)
	net := Preprocess(papers, g.NumAuthors, PreprocessOptions{Rules: AllRules})
	eval := evalSet(g)
	kept := 0
	for _, i := range eval {
		for _, c := range net.Cands[i] {
			if c.Advisor == g.AdvisorOf[i] {
				kept++
				break
			}
		}
	}
	if frac := float64(kept) / float64(len(eval)); frac < 0.8 {
		t.Fatalf("true advisor kept in candidate set for only %v of advised authors", frac)
	}
}

func TestPreprocessCandidateDAGAcyclic(t *testing.T) {
	g, papers := genData(72)
	net := Preprocess(papers, g.NumAuthors, PreprocessOptions{Rules: AllRules})
	// Candidates always start publishing strictly earlier, so the candidate
	// graph ordered by first year is a DAG by construction.
	for i, cands := range net.Cands {
		for _, c := range cands {
			if net.First[c.Advisor] >= net.First[i] {
				t.Fatalf("candidate %d of %d violates the partial order", c.Advisor, i)
			}
			if c.Start > c.End {
				t.Fatalf("advising interval [%d,%d] invalid", c.Start, c.End)
			}
			if c.Local <= 0 || math.IsNaN(c.Local) {
				t.Fatalf("bad local likelihood %v", c.Local)
			}
		}
	}
}

func TestInferRanksNormalized(t *testing.T) {
	g, papers := genData(73)
	net := Preprocess(papers, g.NumAuthors, PreprocessOptions{Rules: AllRules})
	res := Infer(net, Config{Sweeps: 8})
	for i, r := range res.Rank {
		s := 0.0
		for _, v := range r {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("author %d has invalid rank %v", i, v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("author %d ranks sum to %v", i, s)
		}
	}
}

func TestTPFGBeatsBaselines(t *testing.T) {
	g, papers := genData(74)
	net := Preprocess(papers, g.NumAuthors, PreprocessOptions{Rules: AllRules})
	eval := evalSet(g)

	res := Infer(net, Config{})
	tpfgAcc := Accuracy(res.Predict(), g.AdvisorOf, eval)
	ruleAcc := Accuracy(RuleBaseline(papers, g.NumAuthors), g.AdvisorOf, eval)
	indAcc := Accuracy(IndMaxBaseline(net, 0), g.AdvisorOf, eval)
	t.Logf("accuracy: TPFG=%.3f RULE=%.3f IndMAX=%.3f", tpfgAcc, ruleAcc, indAcc)

	if tpfgAcc < 0.6 {
		t.Fatalf("TPFG accuracy = %v, want >= 0.6", tpfgAcc)
	}
	if tpfgAcc < ruleAcc {
		t.Fatalf("TPFG (%v) should not lose to RULE (%v)", tpfgAcc, ruleAcc)
	}
	if tpfgAcc+1e-9 < indAcc {
		t.Fatalf("TPFG (%v) should not lose to IndMAX (%v)", tpfgAcc, indAcc)
	}
}

func TestLogitBaselineLearns(t *testing.T) {
	g, papers := genData(75)
	net := Preprocess(papers, g.NumAuthors, PreprocessOptions{Rules: AllRules})
	eval := evalSet(g)
	feats := PairFeatures(papers, g.NumAuthors, net)
	// Half train, half test.
	var train, test []int
	for idx, i := range eval {
		if idx%2 == 0 {
			train = append(train, i)
		} else {
			test = append(test, i)
		}
	}
	lb := TrainLogit(feats, net, g.AdvisorOf, train, 76)
	acc := Accuracy(lb.Predict(feats, net), g.AdvisorOf, test)
	if acc < 0.5 {
		t.Fatalf("logit accuracy = %v, want >= 0.5", acc)
	}
}

func TestPredictTopK(t *testing.T) {
	g, papers := genData(77)
	net := Preprocess(papers, g.NumAuthors, PreprocessOptions{Rules: AllRules})
	res := Infer(net, Config{})
	eval := evalSet(g)
	// top-3 with low theta must contain the top-1 prediction.
	pred := res.Predict()
	for _, i := range eval[:min(50, len(eval))] {
		top3 := res.PredictTopK(i, 3, 0.01)
		if pred[i] >= 0 {
			found := false
			for _, a := range top3 {
				if a == pred[i] {
					found = true
				}
			}
			if !found {
				t.Fatalf("author %d: top-1 %d missing from top-3 %v", i, pred[i], top3)
			}
		}
	}
}

func TestRuleAblationChangesCandidates(t *testing.T) {
	g, papers := genData(78)
	all := Preprocess(papers, g.NumAuthors, PreprocessOptions{Rules: AllRules})
	none := Preprocess(papers, g.NumAuthors, PreprocessOptions{Rules: Rules{}})
	countAll, countNone := 0, 0
	for i := range all.Cands {
		countAll += len(all.Cands[i])
		countNone += len(none.Cands[i])
	}
	if countNone <= countAll {
		t.Fatalf("disabling rules should enlarge candidate sets: %d vs %d", countNone, countAll)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
