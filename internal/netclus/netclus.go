package netclus

import (
	"math"
	"math/rand"

	"lesm/internal/core"
	"lesm/internal/hin"
)

// Config parameterizes one NetClus clustering.
type Config struct {
	K int
	// LambdaS is the smoothing parameter toward the global background
	// distribution (the paper tunes it per dataset; default 0.3).
	LambdaS float64
	Iters   int
	Seed    int64
	// Restarts selects the best of several random initializations by data
	// log-likelihood (default 3); EM-style clustering of this kind is prone
	// to local optima.
	Restarts int
}

func (c Config) withDefaults() Config {
	if c.LambdaS == 0 {
		c.LambdaS = 0.3
	}
	if c.Iters == 0 {
		c.Iters = 40
	}
	if c.Restarts == 0 {
		c.Restarts = 3
	}
	return c
}

// Model is a fitted NetClus clustering.
type Model struct {
	K int
	// Posterior[d][k] is p(k | doc d).
	Posterior [][]float64
	// Rank[x][k][i] is p(node i | cluster k) for node type x (smoothed).
	Rank [][][]float64
	// Prior[k] is p(k).
	Prior []float64
	// LogL is the final data log-likelihood (used to pick among restarts).
	LogL float64
}

// docNodes lists every (type, node) incidence of a document, with terms as
// type 0.
func docNodes(d hin.DocRecord, numTypes int) [][2]int {
	var out [][2]int
	for _, w := range d.Tokens {
		out = append(out, [2]int{0, w})
	}
	for x := 1; x < numTypes; x++ {
		for _, e := range d.Entities[core.TypeID(x)] {
			out = append(out, [2]int{x, e})
		}
	}
	return out
}

// Run fits NetClus to the documents of a text-attached network, keeping the
// best of Config.Restarts random initializations.
func Run(docs []hin.DocRecord, numNodes []int, cfg Config) *Model {
	cfg = cfg.withDefaults()
	var best *Model
	for r := 0; r < cfg.Restarts; r++ {
		m := runOnce(docs, numNodes, cfg, cfg.Seed+int64(r)*7919)
		if best == nil || m.LogL > best.LogL {
			best = m
		}
	}
	return best
}

func runOnce(docs []hin.DocRecord, numNodes []int, cfg Config, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	nTypes := len(numNodes)
	d := len(docs)
	k := cfg.K

	post := make([][]float64, d)
	for i := range post {
		post[i] = make([]float64, k)
		for j := range post[i] {
			post[i][j] = rng.Float64() + 0.1
		}
		normalize(post[i])
	}

	// Global (background) distributions per type.
	global := make([][]float64, nTypes)
	for x := range global {
		global[x] = make([]float64, numNodes[x])
	}
	incidence := make([][][2]int, d)
	for di, doc := range docs {
		incidence[di] = docNodes(doc, nTypes)
		for _, tn := range incidence[di] {
			global[tn[0]][tn[1]]++
		}
	}
	for x := range global {
		normalize(global[x])
	}

	model := &Model{K: k, Posterior: post}
	for it := 0; it < cfg.Iters; it++ {
		// Ranking step: p(i|k) per type from soft memberships.
		rank := make([][][]float64, nTypes)
		for x := 0; x < nTypes; x++ {
			rank[x] = make([][]float64, k)
			for c := 0; c < k; c++ {
				rank[x][c] = make([]float64, numNodes[x])
			}
		}
		prior := make([]float64, k)
		for di := range docs {
			for c := 0; c < k; c++ {
				w := post[di][c]
				prior[c] += w
				if w == 0 {
					continue
				}
				for _, tn := range incidence[di] {
					rank[tn[0]][c][tn[1]] += w
				}
			}
		}
		normalize(prior)
		for x := 0; x < nTypes; x++ {
			for c := 0; c < k; c++ {
				normalize(rank[x][c])
				for i := range rank[x][c] {
					rank[x][c][i] = (1-cfg.LambdaS)*rank[x][c][i] + cfg.LambdaS*global[x][i]
				}
			}
		}
		// Posterior step: p(k|doc) from the attribute likelihood.
		logL := 0.0
		for di := range docs {
			logp := make([]float64, k)
			for c := 0; c < k; c++ {
				lp := math.Log(math.Max(prior[c], 1e-300))
				for _, tn := range incidence[di] {
					lp += math.Log(math.Max(rank[tn[0]][c][tn[1]], 1e-300))
				}
				logp[c] = lp
			}
			logL += logSumExp(logp)
			softmax(logp, post[di])
		}
		model.Rank = rank
		model.Prior = prior
		model.LogL = logL
	}
	return model
}

func logSumExp(logp []float64) float64 {
	max := math.Inf(-1)
	for _, v := range logp {
		if v > max {
			max = v
		}
	}
	s := 0.0
	for _, v := range logp {
		s += math.Exp(v - max)
	}
	return max + math.Log(s)
}

func normalize(x []float64) {
	s := 0.0
	for _, v := range x {
		s += v
	}
	if s <= 0 {
		for i := range x {
			x[i] = 1 / float64(len(x))
		}
		return
	}
	for i := range x {
		x[i] /= s
	}
}

func softmax(logp, out []float64) {
	max := math.Inf(-1)
	for _, v := range logp {
		if v > max {
			max = v
		}
	}
	s := 0.0
	for i, v := range logp {
		out[i] = math.Exp(v - max)
		s += out[i]
	}
	for i := range out {
		out[i] /= s
	}
}

// BuildHierarchy applies NetClus recursively with hard document partitions,
// producing a topical hierarchy comparable to CATHYHIN's output.
func BuildHierarchy(docs []hin.DocRecord, numNodes []int, levels int, cfg Config) *core.Hierarchy {
	h := core.NewHierarchy()
	var rec func(node *core.TopicNode, idx []int, level int, seed int64)
	rec = func(node *core.TopicNode, idx []int, level int, seed int64) {
		if level >= levels || len(idx) < cfg.K*5 {
			return
		}
		sub := make([]hin.DocRecord, len(idx))
		for i, di := range idx {
			sub[i] = docs[di]
		}
		c := cfg
		c.Seed = seed
		m := Run(sub, numNodes, c)
		parts := make([][]int, cfg.K)
		for i, di := range idx {
			best := 0
			for k := range m.Posterior[i] {
				if m.Posterior[i][k] > m.Posterior[i][best] {
					best = k
				}
			}
			parts[best] = append(parts[best], di)
		}
		for k := 0; k < cfg.K; k++ {
			child := node.AddChild()
			child.Rho = m.Prior[k]
			for x := 0; x < len(numNodes); x++ {
				child.Phi[core.TypeID(x)] = m.Rank[x][k]
			}
			rec(child, parts[k], level+1, seed*31+int64(k)+1)
		}
	}
	all := make([]int, len(docs))
	for i := range all {
		all[i] = i
	}
	rec(h.Root, all, 0, cfg.Seed+1)
	return h
}
