// Package netclus implements the NetClus baseline (Sun et al. 2009) used in
// the paper's Chapter 3 comparisons: ranking-based clustering of a
// star-schema information network. Documents are the center objects; terms
// and entities are attribute objects. Each cluster maintains smoothed
// ranking distributions per attribute type, and documents get posterior
// cluster memberships from the product of their attributes' conditional
// ranks.
//
// For the Topic Intrusion comparison the paper applies NetClus level by
// level; BuildHierarchy reproduces that by hard-partitioning documents at
// each node and re-clustering each part ("hard partitioning of papers",
// Section 3.3.3).
package netclus
