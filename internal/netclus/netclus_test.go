package netclus

import (
	"math"
	"testing"

	"lesm/internal/synth"
)

func TestRunClustersDBLP(t *testing.T) {
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: 600, NumAuthors: 150, Seed: 31})
	m := Run(ds.Docs, ds.NumNodes, Config{K: 6, Iters: 25, Seed: 32})
	// Posteriors normalized.
	for d, p := range m.Posterior {
		s := 0.0
		for _, v := range p {
			s += v
		}
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("doc %d posterior sums to %v", d, s)
		}
	}
	// Clustering should beat chance against ground-truth areas: measure
	// cluster purity.
	argmax := func(x []float64) int {
		b := 0
		for i := range x {
			if x[i] > x[b] {
				b = i
			}
		}
		return b
	}
	// majority label per cluster
	counts := make([]map[int]int, 6)
	for i := range counts {
		counts[i] = map[int]int{}
	}
	for d := range ds.Docs {
		counts[argmax(m.Posterior[d])][ds.Truth.DocLabel[d]]++
	}
	correct, total := 0, 0
	for _, c := range counts {
		best := 0
		for _, v := range c {
			if v > best {
				best = v
			}
			total += v
		}
		correct += best
	}
	if purity := float64(correct) / float64(total); purity < 0.5 {
		t.Fatalf("cluster purity = %v, want >= 0.5", purity)
	}
}

func TestRankDistributionsNormalized(t *testing.T) {
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: 300, NumAuthors: 80, Seed: 33})
	m := Run(ds.Docs, ds.NumNodes, Config{K: 3, Iters: 15, Seed: 34})
	for x := range m.Rank {
		for k := range m.Rank[x] {
			s := 0.0
			for _, v := range m.Rank[x][k] {
				s += v
			}
			if math.Abs(s-1) > 1e-6 {
				t.Fatalf("rank[%d][%d] sums to %v", x, k, s)
			}
		}
	}
}

func TestBuildHierarchyShape(t *testing.T) {
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: 600, NumAuthors: 150, Seed: 35})
	h := BuildHierarchy(ds.Docs, ds.NumNodes, 2, Config{K: 3, Iters: 10, Seed: 36})
	if len(h.Root.Children) != 3 {
		t.Fatalf("children = %d", len(h.Root.Children))
	}
	if h.Root.Height() != 2 {
		t.Fatalf("height = %d", h.Root.Height())
	}
}
