// Package turbotopics implements a TurboTopics-style baseline (Blei &
// Lafferty 2009): after a plain LDA run, adjacent same-topic tokens are
// recursively merged into multiword expressions whenever their collocation
// is statistically significant. The original uses permutation tests over a
// back-off n-gram model; we use the same normal-approximation significance
// score as ToPMine (Eq. 4.7), which preserves the method's behaviour at a
// fraction of the cost (the substitution is recorded in DESIGN.md §2 —
// TurboTopics' runtime in Table 4.5 is therefore a lower bound).
package turbotopics
