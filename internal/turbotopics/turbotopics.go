package turbotopics

import (
	"encoding/binary"
	"math"
	"sort"

	"lesm/internal/core"
	"lesm/internal/lda"
	"lesm/internal/textkit"
)

// Config parameterizes the merging loop.
type Config struct {
	// MinCount is the minimum frequency for a merged expression (default 5).
	MinCount int
	// Sig is the significance threshold in standard deviations (default 4).
	Sig float64
	// Rounds bounds the recursive merging passes (default 4, enough for
	// 5-grams).
	Rounds int
}

func (c Config) withDefaults() Config {
	if c.MinCount == 0 {
		c.MinCount = 5
	}
	if c.Sig == 0 {
		c.Sig = 4
	}
	if c.Rounds == 0 {
		c.Rounds = 4
	}
	return c
}

// unit is a token or previously merged expression.
type unit struct {
	words []int
	topic int
}

// Run merges significant same-topic adjacencies given an LDA model's
// assignments and returns ranked topical phrases per topic.
func Run(corpus *textkit.Corpus, model *lda.Model, cfg Config, topN int) [][]core.RankedPhrase {
	cfg = cfg.withDefaults()
	// Sequence of units per document, initialized from tokens.
	docs := make([][]unit, len(corpus.Docs))
	totalUnits := 0
	for d, doc := range corpus.Docs {
		us := make([]unit, len(doc.Tokens))
		for i, w := range doc.Tokens {
			us[i] = unit{words: []int{w}, topic: model.Z[d][i]}
		}
		docs[d] = us
		totalUnits += len(us)
	}
	key := func(ws []int) string {
		b := make([]byte, 4*len(ws))
		for i, w := range ws {
			binary.LittleEndian.PutUint32(b[4*i:], uint32(w))
		}
		return string(b)
	}
	for round := 0; round < cfg.Rounds; round++ {
		// Count units and same-topic adjacent pairs.
		uc := map[string]int{}
		pc := map[string]int{}
		for _, us := range docs {
			for i, u := range us {
				uc[key(u.words)]++
				if i+1 < len(us) && us[i+1].topic == u.topic {
					joint := append(append([]int{}, u.words...), us[i+1].words...)
					pc[key(joint)]++
				}
			}
		}
		// Decide merges: pair is significant if observed count beats the
		// independence expectation by cfg.Sig standard deviations.
		l := float64(totalUnits)
		shouldMerge := func(a, b unit) bool {
			joint := append(append([]int{}, a.words...), b.words...)
			f := float64(pc[key(joint)])
			if f < float64(cfg.MinCount) {
				return false
			}
			exp := l * (float64(uc[key(a.words)]) / l) * (float64(uc[key(b.words)]) / l)
			return (f-exp)/math.Sqrt(f) >= cfg.Sig
		}
		merged := false
		for d, us := range docs {
			var out []unit
			i := 0
			for i < len(us) {
				if i+1 < len(us) && us[i].topic == us[i+1].topic && shouldMerge(us[i], us[i+1]) {
					out = append(out, unit{
						words: append(append([]int{}, us[i].words...), us[i+1].words...),
						topic: us[i].topic,
					})
					i += 2
					merged = true
					continue
				}
				out = append(out, us[i])
				i++
			}
			docs[d] = out
		}
		if !merged {
			break
		}
	}
	// Rank per topic by frequency (multiword first when tied is implicit in
	// counts; the baseline ranks by raw frequency as the original does).
	k := model.K
	counts := make([]map[string]int, k)
	repr := make([]map[string][]int, k)
	for t := range counts {
		counts[t] = map[string]int{}
		repr[t] = map[string][]int{}
	}
	for _, us := range docs {
		for _, u := range us {
			if u.topic >= k { // background topic excluded
				continue
			}
			ky := key(u.words)
			counts[u.topic][ky]++
			repr[u.topic][ky] = u.words
		}
	}
	out := make([][]core.RankedPhrase, k)
	for t := 0; t < k; t++ {
		var ps []core.RankedPhrase
		for ky, c := range counts[t] {
			if c < cfg.MinCount {
				continue
			}
			ws := repr[t][ky]
			ps = append(ps, core.RankedPhrase{Words: ws, Display: corpus.Phrase(ws), Score: float64(c)})
		}
		sort.SliceStable(ps, func(a, b int) bool {
			if ps[a].Score != ps[b].Score {
				return ps[a].Score > ps[b].Score
			}
			return ps[a].Display < ps[b].Display
		})
		if topN > 0 && len(ps) > topN {
			ps = ps[:topN]
		}
		out[t] = ps
	}
	return out
}
