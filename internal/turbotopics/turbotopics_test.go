package turbotopics

import (
	"strings"
	"testing"

	"lesm/internal/lda"
	"lesm/internal/synth"
)

func TestRunMergesCollocations(t *testing.T) {
	ds := synth.Arxiv(synth.TextConfig{NumDocs: 1000, Seed: 51})
	docs := make([][]int, len(ds.Corpus.Docs))
	for i, d := range ds.Corpus.Docs {
		docs[i] = d.Tokens
	}
	m := lda.Must(lda.Run(docs, ds.Corpus.Vocab.Size(), lda.Config{K: 5, Iters: 80, Seed: 52}))
	topics := Run(ds.Corpus, m, Config{MinCount: 5, Sig: 3}, 15)
	if len(topics) != 5 {
		t.Fatalf("topics = %d", len(topics))
	}
	multi, pure := 0, 0
	for _, topic := range topics {
		for _, p := range topic {
			if strings.Contains(p.Display, " ") {
				multi++
				aff := ds.Truth.PhraseAffinity(p.Display)
				max := 0.0
				for _, v := range aff {
					if v > max {
						max = v
					}
				}
				if max > 0.5 {
					pure++
				}
			}
		}
	}
	if multi == 0 {
		t.Fatal("no merged collocations")
	}
	if float64(pure)/float64(multi) < 0.5 {
		t.Fatalf("merged phrases mostly impure: %d/%d", pure, multi)
	}
}

func TestNoMergeAcrossTopics(t *testing.T) {
	// With a tiny corpus engineered so adjacent tokens always differ in
	// topic assignment, no merges can occur.
	ds := synth.Arxiv(synth.TextConfig{NumDocs: 200, Seed: 53})
	docs := make([][]int, len(ds.Corpus.Docs))
	for i, d := range ds.Corpus.Docs {
		docs[i] = d.Tokens
	}
	m := lda.Must(lda.Run(docs, ds.Corpus.Vocab.Size(), lda.Config{K: 2, Iters: 10, Seed: 54}))
	// Force alternating topics.
	for d := range m.Z {
		for i := range m.Z[d] {
			m.Z[d][i] = i % 2
		}
	}
	topics := Run(ds.Corpus, m, Config{MinCount: 2, Sig: 0.1}, 50)
	for _, topic := range topics {
		for _, p := range topic {
			if strings.Contains(p.Display, " ") {
				t.Fatalf("merged across topic boundary: %q", p.Display)
			}
		}
	}
}
