package cathy

import (
	"context"
	"math"
	"math/rand"

	"lesm/internal/core"
	"lesm/internal/hin"
	"lesm/internal/obs"
	"lesm/internal/par"
)

// WeightMode selects how link-type weights alpha_{x,y} are set
// (Section 3.3.1's three CATHYHIN variants).
type WeightMode int

const (
	// EqualWeights uses alpha = 1 for every link type (the basic model).
	EqualWeights WeightMode = iota
	// NormWeights sets alpha_{x,y} = 1 / M_{x,y}, forcing equal total weight
	// per link type (the heuristic baseline).
	NormWeights
	// LearnWeights learns alpha by the closed-form update of Eq. 3.37.
	LearnWeights
)

// Options configure hierarchy construction.
type Options struct {
	// K fixes the number of children per topic; 0 selects k per topic by BIC
	// over [2, MaxK] (Section 3.2.3).
	K int
	// MaxK bounds BIC model selection (default 8, the paper's "small
	// number ... such as 10").
	MaxK int
	// Levels is the number of levels to grow below the root (default 2).
	Levels int
	// EMIters is the EM iteration budget per restart (default 60).
	EMIters int
	// Restarts is the number of random EM restarts; the best-likelihood
	// solution wins (default 2).
	Restarts int
	// Seed drives all randomness.
	Seed int64
	// Weights selects the link-type weighting variant.
	Weights WeightMode
	// Background enables the background topic of Section 3.2.1 (on for
	// CATHYHIN; CATHY's text-only model of Section 3.1 runs without it).
	Background bool
	// MinLinkWeight is the threshold for keeping a link in a child
	// subnetwork (default 1, per "we remove links whose weight is less
	// than 1").
	MinLinkWeight float64
	// MinNetworkWeight stops recursion when a topic's network is smaller
	// than this total weight (default 50).
	MinNetworkWeight float64
	// P is the worker count for the parallel E-step (0 = GOMAXPROCS).
	// Results are bit-identical at any P.
	P int
	// Ctx cancels construction between EM sweeps (nil = background).
	Ctx context.Context
	// Rec, when non-nil, receives one obs.SweepStats per EM sweep
	// (Engine "cathy", Label "<path> k=<k> r<restart>", LogLikelihood
	// filled from the E-step) plus pool telemetry. Observational only:
	// the fitted hierarchy is bit-identical with or without it.
	Rec obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.MaxK == 0 {
		o.MaxK = 8
	}
	if o.Levels == 0 {
		o.Levels = 2
	}
	if o.EMIters == 0 {
		o.EMIters = 60
	}
	if o.Restarts == 0 {
		o.Restarts = 2
	}
	if o.MinLinkWeight == 0 {
		o.MinLinkWeight = 1
	}
	if o.MinNetworkWeight == 0 {
		o.MinNetworkWeight = 50
	}
	return o
}

// Result is a constructed hierarchy plus per-topic artifacts: the subnetwork
// each topic owns and the learned link-type weights used to split it.
type Result struct {
	Hierarchy *core.Hierarchy
	// Networks maps topic path -> the network clustered at that topic (the
	// root's entry is the input network).
	Networks map[string]*hin.Network
	// Alphas maps topic path -> learned link-type weights used when
	// splitting that topic (nil when the topic was not split).
	Alphas map[string]map[hin.TypePair]float64
	// ChosenK maps topic path -> the number of children selected.
	ChosenK map[string]int
}

// Build constructs a topical hierarchy from an edge-weighted network in the
// top-down recursive manner of Sections 3.1-3.2. It returns the context's
// error if opt.Ctx is cancelled mid-build.
func Build(net *hin.Network, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	o := par.Opts{P: opt.P, Ctx: opt.Ctx}
	if opt.Rec != nil {
		o.Obs = opt.Rec
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	h := core.NewHierarchy()
	h.TypeNames = map[core.TypeID]string{}
	for x, name := range net.TypeNames {
		h.TypeNames[core.TypeID(x)] = name
	}
	res := &Result{
		Hierarchy: h,
		Networks:  map[string]*hin.Network{"o": net},
		Alphas:    map[string]map[hin.TypePair]float64{},
		ChosenK:   map[string]int{},
	}
	// The root's phi is the normalized weighted degree per type.
	for x := 0; x < net.NumTypes(); x++ {
		h.Root.Phi[core.TypeID(x)] = degreeDistribution(net, core.TypeID(x))
	}
	var grow func(t *core.TopicNode, g *hin.Network, level int) error
	grow = func(t *core.TopicNode, g *hin.Network, level int) error {
		if level >= opt.Levels || g.TotalWeight() < opt.MinNetworkWeight {
			return nil
		}
		k := opt.K
		if k == 0 {
			var err error
			k, err = selectK(g, t, opt, rng, o)
			if err != nil {
				return err
			}
		}
		if k < 2 {
			return nil
		}
		res.ChosenK[t.Path] = k
		em, err := runBest(g, t, k, opt, rng, o)
		if err != nil {
			return err
		}
		res.Alphas[t.Path] = em.alpha
		subs := em.childNetworks(opt.MinLinkWeight)
		for z := 0; z < k; z++ {
			c := t.AddChild()
			c.Rho = em.rho[z+1] // rho[0] is background
			for x := 0; x < g.NumTypes(); x++ {
				c.Phi[core.TypeID(x)] = em.phi[z+1][x]
			}
			res.Networks[c.Path] = subs[z]
		}
		for z, c := range t.Children {
			if err := grow(c, subs[z], level+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := grow(h.Root, net, 0); err != nil {
		return nil, err
	}
	return res, nil
}

// degreeDistribution returns the normalized weighted degree of type-x nodes.
// Pairs iterate in sorted order so the fractional-weight sums of child
// networks are bit-reproducible run to run.
func degreeDistribution(g *hin.Network, x core.TypeID) []float64 {
	d := make([]float64, g.NumNodes[x])
	for _, p := range g.SortedPairs() {
		for _, l := range g.Links[p] {
			if p.X == x {
				d[l.I] += l.W
			}
			if p.Y == x {
				d[l.J] += l.W
			}
		}
	}
	s := 0.0
	for _, v := range d {
		s += v
	}
	if s > 0 {
		for i := range d {
			d[i] /= s
		}
	}
	return d
}

// selectK chooses the child count by minimizing BIC (Section 3.2.3):
// BIC = -2 log L + |V^t| k log |E^t|, scanning k in [2, MaxK].
func selectK(g *hin.Network, t *core.TopicNode, opt Options, rng *rand.Rand, o par.Opts) (int, error) {
	nLinks := g.TotalLinks()
	if nLinks == 0 {
		return 0, nil
	}
	activeNodes := 0
	for x := 0; x < g.NumTypes(); x++ {
		for _, d := range degreeDistribution(g, core.TypeID(x)) {
			if d > 0 {
				activeNodes++
			}
		}
	}
	bestK, bestBIC := 0, math.Inf(1)
	short := opt
	short.Restarts = 1
	short.EMIters = opt.EMIters / 2
	if short.EMIters < 10 {
		short.EMIters = 10
	}
	for k := 2; k <= opt.MaxK; k++ {
		em, err := runBest(g, t, k, short, rng, o)
		if err != nil {
			return 0, err
		}
		bic := -2*em.logL + float64(activeNodes*k)*math.Log(float64(nLinks))
		if bic < bestBIC {
			bestBIC = bic
			bestK = k
		}
	}
	return bestK, nil
}
