package cathy

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"lesm/internal/core"
	"lesm/internal/par"
	"lesm/internal/synth"
)

// TestEMDeterministicAcrossParallelism is the runtime-layer invariant: the
// chunked E-step reduction must give bit-identical parameters at P=1 and
// P=8 from the same random initialization.
func TestEMDeterministicAcrossParallelism(t *testing.T) {
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: 400, NumAuthors: 100, Seed: 31})
	net := ds.CollapsedNetwork(0)
	opt := Options{K: 3, EMIters: 20, Restarts: 1, Levels: 1, Background: true,
		Weights: LearnWeights}.withDefaults()
	run := func(p int) *emState {
		root := core.NewHierarchy().Root
		st, err := runBest(net, root, 3, opt, rand.New(rand.NewSource(77)), par.Opts{P: p})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(1), run(8)
	if a.logL != b.logL {
		t.Fatalf("logL differs: P=1 %v, P=8 %v", a.logL, b.logL)
	}
	for z := range a.rho {
		if a.rho[z] != b.rho[z] {
			t.Fatalf("rho[%d] differs: %v vs %v", z, a.rho[z], b.rho[z])
		}
	}
	for z := range a.phi {
		for x := range a.phi[z] {
			for i := range a.phi[z][x] {
				if a.phi[z][x][i] != b.phi[z][x][i] {
					t.Fatalf("phi[%d][%d][%d] differs: %v vs %v",
						z, x, i, a.phi[z][x][i], b.phi[z][x][i])
				}
			}
		}
	}
	for p := range a.alpha {
		if a.alpha[p] != b.alpha[p] {
			t.Fatalf("alpha[%v] differs: %v vs %v", p, a.alpha[p], b.alpha[p])
		}
	}
}

func TestBuildCancelledContext(t *testing.T) {
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: 400, NumAuthors: 100, Seed: 32})
	net := ds.CollapsedNetwork(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Build(net, Options{K: 3, Levels: 2, Seed: 1, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
