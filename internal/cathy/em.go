package cathy

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"lesm/internal/core"
	"lesm/internal/hin"
	"lesm/internal/obs"
	"lesm/internal/par"
)

// emState holds the parameters of one clustering step: k subtopics plus the
// background topic (index 0) over the typed network g.
type emState struct {
	g          *hin.Network
	k          int
	background bool
	pairs      []hin.TypePair
	// linkOff[pi] is the first flat link index of pair pi; linkOff[len(pairs)]
	// is the total link count. The flat index drives deterministic chunking
	// of the E-step across workers.
	linkOff []int
	// pairW[pi] caches sum of raw link weights of pair pi.
	pairW []float64
	// alpha is the link-type weight per pair (Section 3.2.2).
	alpha map[hin.TypePair]float64
	// rho[z] for z in 0..k; rho[0] is the background share (0 if disabled).
	rho []float64
	// phi[z][x][i]; phi[0] is the background distribution per type.
	phi [][][]float64
	// parentPhi[x][i] is phi^x_t of the topic being split (the second end of
	// background links draws from it).
	parentPhi [][]float64
	// childW[pi][li][z-1] is the expected weight of link li of pair pi in
	// subtopic z (both directions summed), filled by the final E pass.
	childW [][][]float64
	logL   float64
	// accs is the pool of per-chunk E-step accumulators, reused across
	// sweeps (the per-worker scratch of the parallel runtime).
	accs []*sweepAcc
}

// sweepAcc is one chunk's E-step accumulator. Chunks are merged in chunk
// order, so results are bit-identical at any parallelism level.
type sweepAcc struct {
	rho    []float64
	phi    [][][]float64
	s      []float64 // per-link posterior scratch
	logL   float64
	totalW float64
}

func newSweepAcc(nz int, g *hin.Network) *sweepAcc {
	a := &sweepAcc{rho: make([]float64, nz), s: make([]float64, nz)}
	a.phi = make([][][]float64, nz)
	for z := 0; z < nz; z++ {
		a.phi[z] = make([][]float64, g.NumTypes())
		for x := 0; x < g.NumTypes(); x++ {
			a.phi[z][x] = make([]float64, g.NumNodes[x])
		}
	}
	return a
}

func (a *sweepAcc) reset() {
	for i := range a.rho {
		a.rho[i] = 0
	}
	for z := range a.phi {
		for x := range a.phi[z] {
			d := a.phi[z][x]
			for i := range d {
				d[i] = 0
			}
		}
	}
	a.logL = 0
	a.totalW = 0
}

// runBest runs EM with opt.Restarts random initializations and returns the
// best-likelihood state (the paper's standard multi-start strategy).
func runBest(g *hin.Network, t *core.TopicNode, k int, opt Options, rng *rand.Rand, o par.Opts) (*emState, error) {
	var best *emState
	for r := 0; r < opt.Restarts; r++ {
		st := newEMState(g, t, k, opt, rng)
		label := ""
		if opt.Rec != nil {
			label = fmt.Sprintf("%s k=%d r%d", t.Path, k, r)
		}
		if err := st.run(opt, o, label); err != nil {
			return nil, err
		}
		if best == nil || st.logL > best.logL {
			best = st
		}
	}
	return best, nil
}

func newEMState(g *hin.Network, t *core.TopicNode, k int, opt Options, rng *rand.Rand) *emState {
	st := &emState{g: g, k: k, background: opt.Background}
	for p := range g.Links {
		st.pairs = append(st.pairs, p)
	}
	sort.Slice(st.pairs, func(a, b int) bool {
		if st.pairs[a].X != st.pairs[b].X {
			return st.pairs[a].X < st.pairs[b].X
		}
		return st.pairs[a].Y < st.pairs[b].Y
	})
	st.linkOff = make([]int, len(st.pairs)+1)
	st.pairW = make([]float64, len(st.pairs))
	for pi, p := range st.pairs {
		st.linkOff[pi+1] = st.linkOff[pi] + len(g.Links[p])
		w := 0.0
		for _, l := range g.Links[p] {
			w += l.W
		}
		st.pairW[pi] = w
	}
	st.alpha = map[hin.TypePair]float64{}
	switch opt.Weights {
	case NormWeights:
		for _, p := range st.pairs {
			if w := g.PairWeight(p); w > 0 {
				st.alpha[p] = 1 / w
			} else {
				st.alpha[p] = 1
			}
		}
		st.normalizeAlpha()
	default:
		for _, p := range st.pairs {
			st.alpha[p] = 1
		}
	}
	// parentPhi: the current topic's ranking distribution per type; for the
	// root this is the degree distribution (set by Build), and for non-root
	// topics it is the phi estimated when the parent was split.
	st.parentPhi = make([][]float64, g.NumTypes())
	for x := 0; x < g.NumTypes(); x++ {
		if p, ok := t.Phi[core.TypeID(x)]; ok && len(p) == g.NumNodes[x] {
			st.parentPhi[x] = p
		} else {
			st.parentPhi[x] = degreeDistribution(g, core.TypeID(x))
		}
	}
	// Random initialization of phi and rho.
	st.phi = make([][][]float64, k+1)
	for z := 0; z <= k; z++ {
		st.phi[z] = make([][]float64, g.NumTypes())
		for x := 0; x < g.NumTypes(); x++ {
			d := make([]float64, g.NumNodes[x])
			base := degreeDistribution(g, core.TypeID(x))
			for i := range d {
				d[i] = base[i] * (0.5 + rng.Float64())
			}
			normalize(d)
			st.phi[z][x] = d
		}
	}
	st.rho = make([]float64, k+1)
	bg := 0.0
	if st.background {
		bg = 0.15 // initial background share
	}
	st.rho[0] = bg
	for z := 1; z <= k; z++ {
		st.rho[z] = (1 - bg) / float64(k)
	}
	return st
}

func normalize(d []float64) {
	s := 0.0
	for _, v := range d {
		s += v
	}
	if s <= 0 {
		for i := range d {
			d[i] = 1 / float64(len(d))
		}
		return
	}
	for i := range d {
		d[i] /= s
	}
}

func (st *emState) normalizeAlpha() {
	// Rescale alphas so the weighted geometric mean is 1 (Theorem 3.2's
	// invariance constraint), keeping likelihoods comparable across modes.
	logSum, n := 0.0, 0.0
	for _, p := range st.pairs {
		np := float64(len(st.g.Links[p]))
		logSum += np * math.Log(st.alpha[p])
		n += np
	}
	if n == 0 {
		return
	}
	gmean := math.Exp(logSum / n)
	for _, p := range st.pairs {
		st.alpha[p] /= gmean
	}
}

// run executes opt.EMIters E/M sweeps, optionally re-estimating the
// link-type weights, then fills childW and the final log-likelihood.
// When opt.Rec is set, each sweep (including the final childW pass)
// emits one obs.SweepStats carrying the E-step log-likelihood — CATHY's
// convergence trace comes for free since the E pass computes it anyway.
func (st *emState) run(opt Options, o par.Opts, label string) error {
	nLinks := st.linkOff[len(st.pairs)]
	sweeps := opt.EMIters + 1
	emit := func(it int, took time.Duration) {
		if opt.Rec == nil {
			return
		}
		opt.Rec.RecordSweep(obs.SweepStats{
			Engine: "cathy",
			Label:  label,
			Sweep:  it,
			Sweeps: sweeps,
			Docs:   nLinks,
			// Each link is visited in both directions per E pass.
			Tokens:        2 * int64(nLinks),
			Chunks:        sweepChunks(nLinks),
			SweepTime:     took,
			LogLikelihood: st.logL,
		})
	}
	var t0 time.Time
	for it := 0; it < opt.EMIters; it++ {
		if opt.Rec != nil {
			t0 = time.Now()
		}
		if err := st.sweep(false, o); err != nil {
			return err
		}
		if opt.Weights == LearnWeights && it >= 2 && it%5 == 2 {
			if err := st.updateAlpha(o); err != nil {
				return err
			}
		}
		emit(it+1, time.Since(t0))
	}
	if opt.Rec != nil {
		t0 = time.Now()
	}
	if err := st.sweep(true, o); err != nil {
		return err
	}
	emit(sweeps, time.Since(t0))
	return nil
}

// pairAt returns the index of the pair containing flat link index i.
func (st *emState) pairAt(i int) int {
	return sort.SearchInts(st.linkOff, i+1) - 1
}

// maxSweepChunks caps the E-step's link chunking below the runtime's
// default policy: each chunk holds a sweepAcc of O(topics x nodes) floats,
// so the cap bounds the scratch at 32 copies while still exposing 32-way
// parallelism.
const maxSweepChunks = 32

func sweepChunks(nLinks int) int { return par.NumChunksCapped(nLinks, maxSweepChunks) }

// sweep performs one E+M step. When final is true it also records per-link
// child weights and the log-likelihood under the pre-update parameters. The
// E pass runs on the shared worker pool: links are chunked deterministically
// by flat index, each chunk accumulates into its own scratch (from the
// reusable pool), and chunks merge in order — so the result is identical at
// any parallelism level.
func (st *emState) sweep(final bool, o par.Opts) error {
	k := st.k
	g := st.g
	nz := k + 1
	nLinks := st.linkOff[len(st.pairs)]
	if final {
		st.childW = make([][][]float64, len(st.pairs))
		for pi, p := range st.pairs {
			cw := make([][]float64, len(g.Links[p]))
			for li := range cw {
				cw[li] = make([]float64, k)
			}
			st.childW[pi] = cw
		}
	}
	if st.accs == nil {
		st.accs = make([]*sweepAcc, sweepChunks(nLinks))
	}
	err := par.ForChunksN(o, nLinks, sweepChunks(nLinks), func(c, lo, hi int) {
		acc := st.accs[c]
		if acc == nil {
			acc = newSweepAcc(nz, g)
			st.accs[c] = acc
		} else {
			acc.reset()
		}
		s := acc.s
		for pi, idx := st.pairAt(lo), lo; idx < hi; pi++ {
			p := st.pairs[pi]
			links := g.Links[p]
			a := st.alpha[p]
			x, y := int(p.X), int(p.Y)
			end := hi - st.linkOff[pi]
			if end > len(links) {
				end = len(links)
			}
			for li := idx - st.linkOff[pi]; li < end; li++ {
				l := links[li]
				w := a * l.W
				acc.totalW += 2 * w // both directions
				var cwz []float64
				if final {
					cwz = st.childW[pi][li]
				}
				// Two directions: (I first, J second) and (J first, I second).
				for dir := 0; dir < 2; dir++ {
					var fx, fy int // first-end type, second-end type
					var fi, fj int // first-end node, second-end node
					if dir == 0 {
						fx, fy, fi, fj = x, y, l.I, l.J
					} else {
						fx, fy, fi, fj = y, x, l.J, l.I
					}
					total := 0.0
					for z := 1; z <= k; z++ {
						v := st.rho[z] * st.phi[z][fx][fi] * st.phi[z][fy][fj]
						s[z] = v
						total += v
					}
					if st.background {
						v := st.rho[0] * st.phi[0][fx][fi] * st.parentPhi[fy][fj]
						s[0] = v
						total += v
					} else {
						s[0] = 0
					}
					if total <= 0 {
						// Degenerate link: spread uniformly over subtopics.
						for z := 1; z <= k; z++ {
							s[z] = 1
						}
						total = float64(k)
					}
					acc.logL += w * math.Log(total)
					for z := 1; z <= k; z++ {
						e := w * s[z] / total
						acc.rho[z] += e
						acc.phi[z][fx][fi] += e
						acc.phi[z][fy][fj] += e
						if final {
							cwz[z-1] += e
						}
					}
					if st.background {
						e := w * s[0] / total
						acc.rho[0] += e
						acc.phi[0][fx][fi] += e
					}
				}
			}
			idx = st.linkOff[pi] + end
		}
	})
	if err != nil {
		return err
	}
	// Ordered merge of the chunk accumulators. The merged phi arrays are
	// fresh because the M-step installs them into st.phi.
	rhoAcc := make([]float64, nz)
	phiAcc := make([][][]float64, nz)
	for z := 0; z < nz; z++ {
		phiAcc[z] = make([][]float64, g.NumTypes())
		for x := 0; x < g.NumTypes(); x++ {
			phiAcc[z][x] = make([]float64, g.NumNodes[x])
		}
	}
	logL := 0.0
	totalW := 0.0
	for c := 0; c < sweepChunks(nLinks); c++ {
		acc := st.accs[c]
		logL += acc.logL
		totalW += acc.totalW
		for z := 0; z < nz; z++ {
			rhoAcc[z] += acc.rho[z]
			for x := 0; x < g.NumTypes(); x++ {
				dst, src := phiAcc[z][x], acc.phi[z][x]
				for i := range dst {
					dst[i] += src[i]
				}
			}
		}
	}
	// Add the theta term: sum over pairs of (directed weight)*log(theta_xy),
	// theta_xy = directed pair weight / total directed weight; minus M.
	for pi, p := range st.pairs {
		pw := 2 * st.alpha[p] * st.pairW[pi]
		if pw > 0 && totalW > 0 {
			logL += pw * math.Log(pw/totalW)
		}
	}
	logL -= totalW
	st.logL = logL
	// M-step.
	for z := 0; z <= st.k; z++ {
		if z == 0 && !st.background {
			continue
		}
		for x := 0; x < g.NumTypes(); x++ {
			normalize(phiAcc[z][x])
			st.phi[z][x] = phiAcc[z][x]
		}
	}
	normalize(rhoAcc)
	if !st.background {
		rhoAcc[0] = 0
		normalize(rhoAcc)
		rhoAcc[0] = 0
	}
	st.rho = rhoAcc
	return nil
}

// updateAlpha re-estimates link-type weights by the closed form of Eq. 3.37:
// alpha is inversely proportional to sigma_{x,y}, the average per-link KL
// surprise of the observed weights under the current model, normalized to a
// unit weighted geometric mean. The per-link surprise accumulates on the
// worker pool with the same deterministic chunking as the E-step.
func (st *emState) updateAlpha(o par.Opts) error {
	k := st.k
	nLinks := st.linkOff[len(st.pairs)]
	sums, err := par.MapReduce(o, nLinks,
		func() []float64 { return make([]float64, len(st.pairs)) },
		func(acc []float64, _, lo, hi int) {
			for pi, idx := st.pairAt(lo), lo; idx < hi; pi++ {
				p := st.pairs[pi]
				links := st.g.Links[p]
				x, y := int(p.X), int(p.Y)
				mxy := st.pairW[pi]
				end := hi - st.linkOff[pi]
				if end > len(links) {
					end = len(links)
				}
				for li := idx - st.linkOff[pi]; li < end; li++ {
					l := links[li]
					for dir := 0; dir < 2; dir++ {
						var fx, fy, fi, fj int
						if dir == 0 {
							fx, fy, fi, fj = x, y, l.I, l.J
						} else {
							fx, fy, fi, fj = y, x, l.J, l.I
						}
						sij := 0.0
						for z := 1; z <= k; z++ {
							sij += st.rho[z] * st.phi[z][fx][fi] * st.phi[z][fy][fj]
						}
						if st.background {
							sij += st.rho[0] * st.phi[0][fx][fi] * st.parentPhi[fy][fj]
						}
						if sij <= 1e-300 {
							sij = 1e-300
						}
						acc[pi] += l.W * math.Log(l.W/(mxy*sij))
					}
				}
				idx = st.linkOff[pi] + end
			}
		},
		func(dst, src []float64) {
			for i := range dst {
				dst[i] += src[i]
			}
		})
	if err != nil {
		return err
	}
	for pi, p := range st.pairs {
		links := st.g.Links[p]
		if len(links) == 0 {
			continue
		}
		s := sums[pi] / float64(2*len(links))
		if s < 1e-6 {
			s = 1e-6
		}
		st.alpha[p] = 1 / s
	}
	st.normalizeAlpha()
	// Clamp extreme weights for numerical safety.
	for p, a := range st.alpha {
		if a > 1e3 {
			st.alpha[p] = 1e3
		} else if a < 1e-3 {
			st.alpha[p] = 1e-3
		}
	}
	return nil
}

// childNetworks extracts the per-subtopic subnetworks: links whose expected
// subtopic weight is at least minW survive with that weight (Section 3.1's
// "expected number of links attributed to that topic, ignoring values less
// than 1").
func (st *emState) childNetworks(minW float64) []*hin.Network {
	subs := make([]*hin.Network, st.k)
	for z := range subs {
		s := hin.NewNetwork(st.g.TypeNames, st.g.NumNodes)
		s.Names = st.g.Names
		subs[z] = s
	}
	for pi, p := range st.pairs {
		links := st.g.Links[p]
		for li, l := range links {
			for z := 0; z < st.k; z++ {
				if w := st.childW[pi][li][z]; w >= minW {
					subs[z].Links[p] = append(subs[z].Links[p], hin.Link{I: l.I, J: l.J, W: w})
				}
			}
		}
	}
	return subs
}
