// Package cathy implements CATHY (Section 3.1) and CATHYHIN (Section 3.2):
// recursive construction of a topical hierarchy by clustering an
// edge-weighted (heterogeneous) network with a Poisson link-generation model
// fit by EM.
//
// One clustering step softly partitions every link's weight across k
// subtopics plus an optional background topic (Eq. 3.24-3.29); the per-topic
// expected link weights then define the child subnetworks that are clustered
// recursively. Link-type weights can be learned (Eq. 3.37) so that, e.g.,
// venue links dominate at the top level of a bibliographic network but not
// below (Figure 3.8).
package cathy
