package cathy

import (
	"math"
	"math/rand"
	"testing"

	"lesm/internal/core"
	"lesm/internal/hin"
	"lesm/internal/par"
)

// TestScaleInvarianceLemma31 verifies Lemma 3.1: multiplying every link
// weight by a constant c leaves the EM solution (q, rho, phi) unchanged for
// the topic and all descendants. The EM must be started from the same
// random initialization, which the shared seed guarantees.
func TestScaleInvarianceLemma31(t *testing.T) {
	base := blockNetwork(2)
	for _, c := range []float64{0.5, 3, 17} {
		scaled := hin.NewNetwork(base.TypeNames, base.NumNodes)
		for p, ls := range base.Links {
			out := make([]hin.Link, len(ls))
			for i, l := range ls {
				out[i] = hin.Link{I: l.I, J: l.J, W: l.W * c}
			}
			scaled.Links[p] = out
		}
		opt := Options{K: 2, EMIters: 50, Restarts: 1, Levels: 1}.withDefaults()
		root1 := core.NewHierarchy().Root
		root2 := core.NewHierarchy().Root
		st1, _ := runBest(base, root1, 2, opt, rand.New(rand.NewSource(99)), par.Opts{})
		st2, _ := runBest(scaled, root2, 2, opt, rand.New(rand.NewSource(99)), par.Opts{})
		for z := 1; z <= 2; z++ {
			if math.Abs(st1.rho[z]-st2.rho[z]) > 1e-9 {
				t.Fatalf("c=%v: rho[%d] %v != %v", c, z, st1.rho[z], st2.rho[z])
			}
			for i := range st1.phi[z][0] {
				if math.Abs(st1.phi[z][0][i]-st2.phi[z][0][i]) > 1e-9 {
					t.Fatalf("c=%v: phi[%d][%d] %v != %v", c, z, i, st1.phi[z][0][i], st2.phi[z][0][i])
				}
			}
		}
	}
}

// TestSubnetworkWeightsScaleWithInput confirms the companion fact: child
// network weights scale linearly with the input scaling (the expected link
// attribution eˆ is c times larger), which is why Theorem 3.2 can trade
// alpha scalings for weight scalings.
func TestSubnetworkWeightsScaleWithInput(t *testing.T) {
	base := blockNetwork(2)
	scaled := hin.NewNetwork(base.TypeNames, base.NumNodes)
	for p, ls := range base.Links {
		out := make([]hin.Link, len(ls))
		for i, l := range ls {
			out[i] = hin.Link{I: l.I, J: l.J, W: l.W * 4}
		}
		scaled.Links[p] = out
	}
	opt := Options{K: 2, EMIters: 50, Restarts: 1, Levels: 1}.withDefaults()
	st1, _ := runBest(base, core.NewHierarchy().Root, 2, opt, rand.New(rand.NewSource(7)), par.Opts{})
	st2, _ := runBest(scaled, core.NewHierarchy().Root, 2, opt, rand.New(rand.NewSource(7)), par.Opts{})
	w1 := 0.0
	for _, sub := range st1.childNetworks(0) {
		w1 += sub.TotalWeight()
	}
	w2 := 0.0
	for _, sub := range st2.childNetworks(0) {
		w2 += sub.TotalWeight()
	}
	if math.Abs(w2-4*w1) > 1e-6*w2 {
		t.Fatalf("child weights %v not 4x %v", w2, w1)
	}
}
