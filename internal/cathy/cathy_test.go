package cathy

import (
	"math"
	"math/rand"
	"testing"

	"lesm/internal/core"
	"lesm/internal/hin"
	"lesm/internal/par"
	"lesm/internal/synth"
)

// blockNetwork builds a two-community homogeneous network: nodes 0..4
// densely linked, nodes 5..9 densely linked, with weak cross links.
func blockNetwork(cross float64) *hin.Network {
	n := hin.NewNetwork([]string{"term"}, []int{10})
	p := hin.Pair(0, 0)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			n.Links[p] = append(n.Links[p], hin.Link{I: i, J: j, W: 10})
			n.Links[p] = append(n.Links[p], hin.Link{I: i + 5, J: j + 5, W: 10})
		}
	}
	if cross > 0 {
		n.Links[p] = append(n.Links[p], hin.Link{I: 0, J: 5, W: cross})
	}
	n.SortLinks()
	return n
}

func TestEMSeparatesBlocks(t *testing.T) {
	net := blockNetwork(1)
	opt := Options{K: 2, EMIters: 80, Restarts: 3, Levels: 1}.withDefaults()
	rng := rand.New(rand.NewSource(1))
	root := core.NewHierarchy().Root
	st, err := runBest(net, root, 2, opt, rng, par.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	// Each topic's phi should concentrate on one block.
	mass := func(z, lo int) float64 {
		s := 0.0
		for i := lo; i < lo+5; i++ {
			s += st.phi[z][0][i]
		}
		return s
	}
	ok := (mass(1, 0) > 0.9 && mass(2, 5) > 0.9) || (mass(1, 5) > 0.9 && mass(2, 0) > 0.9)
	if !ok {
		t.Fatalf("blocks not separated: %v %v %v %v", mass(1, 0), mass(1, 5), mass(2, 0), mass(2, 5))
	}
	// rho should split roughly evenly.
	if math.Abs(st.rho[1]-st.rho[2]) > 0.2 {
		t.Fatalf("rho unbalanced: %v", st.rho)
	}
}

func TestEMLikelihoodNonDecreasing(t *testing.T) {
	net := blockNetwork(2)
	opt := Options{K: 2, Levels: 1}.withDefaults()
	rng := rand.New(rand.NewSource(2))
	root := core.NewHierarchy().Root
	st := newEMState(net, root, 2, opt, rng)
	prev := math.Inf(-1)
	for it := 0; it < 30; it++ {
		if err := st.sweep(false, par.Opts{}); err != nil {
			t.Fatal(err)
		}
		if st.logL < prev-1e-6 {
			t.Fatalf("log-likelihood decreased at iter %d: %v -> %v", it, prev, st.logL)
		}
		prev = st.logL
	}
}

func TestPhiAndRhoNormalized(t *testing.T) {
	net := blockNetwork(1)
	opt := Options{K: 3, EMIters: 25, Restarts: 1, Levels: 1, Background: true}.withDefaults()
	rng := rand.New(rand.NewSource(3))
	root := core.NewHierarchy().Root
	root.Phi[0] = degreeDistribution(net, 0)
	st, err := runBest(net, root, 3, opt, rng, par.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	rhoSum := 0.0
	for _, r := range st.rho {
		rhoSum += r
	}
	if math.Abs(rhoSum-1) > 1e-9 {
		t.Fatalf("rho sums to %v", rhoSum)
	}
	for z := 0; z <= 3; z++ {
		s := 0.0
		for _, v := range st.phi[z][0] {
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("phi[%d] sums to %v", z, s)
		}
	}
}

func TestChildNetworksPartitionWeight(t *testing.T) {
	net := blockNetwork(1)
	opt := Options{K: 2, EMIters: 40, Restarts: 1, Levels: 1}.withDefaults()
	rng := rand.New(rand.NewSource(4))
	root := core.NewHierarchy().Root
	st, err := runBest(net, root, 2, opt, rng, par.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	subs := st.childNetworks(0) // keep everything to check conservation
	total := 0.0
	for _, s := range subs {
		total += s.TotalWeight()
	}
	// Both directions are accumulated, so child weight ~= 2x parent weight
	// when no background absorbs mass.
	want := 2 * net.TotalWeight()
	if math.Abs(total-want)/want > 1e-6 {
		t.Fatalf("children total %v, want %v", total, want)
	}
	// A child subnetwork must never contain a link absent from the parent.
	parentHas := map[[2]int]bool{}
	for _, l := range net.Links[hin.Pair(0, 0)] {
		parentHas[[2]int{l.I, l.J}] = true
	}
	for _, s := range subs {
		for _, l := range s.Links[hin.Pair(0, 0)] {
			if !parentHas[[2]int{l.I, l.J}] {
				t.Fatalf("child link (%d,%d) not in parent", l.I, l.J)
			}
		}
	}
}

func TestBuildHierarchyOnDBLP(t *testing.T) {
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: 600, NumAuthors: 150, Seed: 5})
	net := ds.CollapsedNetwork(0)
	res, err := Build(net, Options{K: 3, Levels: 2, EMIters: 30, Restarts: 1, Seed: 6, Background: true})
	if err != nil {
		t.Fatal(err)
	}
	h := res.Hierarchy
	if len(h.Root.Children) != 3 {
		t.Fatalf("root children = %d", len(h.Root.Children))
	}
	if h.Root.Height() != 2 {
		t.Fatalf("height = %d", h.Root.Height())
	}
	// Every topic has per-type phi of the right lengths.
	h.Root.Walk(func(n *core.TopicNode) {
		if n.Path == "o" {
			return
		}
		for x := 0; x < 3; x++ {
			if len(n.Phi[core.TypeID(x)]) != net.NumNodes[x] {
				t.Fatalf("topic %s phi[%d] len %d", n.Path, x, len(n.Phi[core.TypeID(x)]))
			}
		}
		if n.Rho < 0 || n.Rho > 1 {
			t.Fatalf("topic %s rho=%v", n.Path, n.Rho)
		}
	})
	// Path notation matches Section 3.1 (o/1, o/1/2, ...).
	if h.Root.Children[0].Path != "o/1" {
		t.Fatalf("path = %q", h.Root.Children[0].Path)
	}
	if len(h.Root.Children[0].Children) > 0 && h.Root.Children[0].Children[1].Path != "o/1/2" {
		t.Fatalf("grandchild path = %q", h.Root.Children[0].Children[1].Path)
	}
}

func TestLearnWeightsFindsInformativeTypes(t *testing.T) {
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: 500, NumAuthors: 120, Seed: 7})
	net := ds.CollapsedNetwork(0)
	res, err := Build(net, Options{K: 6, Levels: 1, EMIters: 30, Restarts: 1, Seed: 8,
		Background: true, Weights: LearnWeights})
	if err != nil {
		t.Fatal(err)
	}
	alphas := res.Alphas["o"]
	if len(alphas) == 0 {
		t.Fatal("no learned alphas")
	}
	for p, a := range alphas {
		if a <= 0 || math.IsNaN(a) {
			t.Fatalf("alpha[%v] = %v", p, a)
		}
	}
}

func TestBICSelectsReasonableK(t *testing.T) {
	// A network with two crisp communities should select a small k, and the
	// chosen split must be recorded.
	net := blockNetwork(1)
	res, err := Build(net, Options{Levels: 1, MaxK: 4, EMIters: 30, Restarts: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	k := res.ChosenK["o"]
	if k < 2 || k > 4 {
		t.Fatalf("chosen k = %d", k)
	}
	if len(res.Hierarchy.Root.Children) != k {
		t.Fatalf("children %d != chosen %d", len(res.Hierarchy.Root.Children), k)
	}
}

func TestDegreeDistribution(t *testing.T) {
	net := blockNetwork(0)
	d := degreeDistribution(net, 0)
	s := 0.0
	for _, v := range d {
		s += v
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("degree dist sums to %v", s)
	}
	// All nodes symmetric within blocks.
	if math.Abs(d[0]-d[7]) > 1e-12 {
		t.Fatalf("expected symmetric degrees, got %v vs %v", d[0], d[7])
	}
}
