// Package synth generates the synthetic datasets that stand in for the
// paper's corpora (DBLP, Google NEWS, arXiv, DBLP abstracts, AP news, Yelp,
// and the DBLP temporal collaboration network). Every generator is
// deterministic given a seed and exposes the full ground truth so that
// oracle judges can replace the paper's human annotators (see DESIGN.md §2).
package synth
