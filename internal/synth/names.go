package synth

import "fmt"

var firstNames = []string{
	"Wei", "Jing", "Ming", "Elena", "Rajesh", "Anika", "Carlos", "Sofia",
	"Hiro", "Yuki", "Omar", "Fatima", "Ivan", "Olga", "Pierre", "Claire",
	"Lars", "Ingrid", "Marco", "Giulia", "Sanjay", "Priya", "Ahmed", "Leila",
	"Jan", "Eva", "Pedro", "Lucia", "Tomas", "Hana", "Kofi", "Ama",
	"Dmitri", "Nadia", "Erik", "Freya", "Chen", "Mei", "Andre", "Camille",
	"Stefan", "Petra", "Diego", "Valeria", "Kenji", "Aiko", "Tariq", "Yasmin",
	"Viktor", "Irina", "Paulo", "Beatriz", "Anders", "Sigrid", "Raul", "Ines",
	"Goran", "Mira", "Ewan", "Niamh",
}

var lastNames = []string{
	"Zhang", "Kumar", "Garcia", "Tanaka", "Hassan", "Petrov", "Dubois",
	"Larsson", "Rossi", "Sharma", "Ali", "Novak", "Silva", "Kowalski",
	"Mensah", "Ivanov", "Nielsen", "Chen", "Moreau", "Weber", "Torres",
	"Sato", "Rahman", "Popov", "Costa", "Berg", "Ramos", "Horvat",
	"Murphy", "Walsh", "Okafor", "Nakamura", "Haddad", "Volkov", "Pereira",
	"Lindqvist", "Ricci", "Gupta", "Farouk", "Svoboda", "Santos", "Nowak",
	"Boateng", "Smirnov", "Jensen", "Wang", "Lefevre", "Fischer", "Vargas",
	"Kimura", "Chowdhury", "Orlov", "Almeida", "Strand", "Delgado", "Kovac",
	"Byrne", "Quinn", "Eze", "Takahashi",
}

// makeNames deterministically generates n distinct person names.
func makeNames(n int) []string {
	out := make([]string, n)
	for i := 0; i < n; i++ {
		f := firstNames[i%len(firstNames)]
		l := lastNames[(i/len(firstNames))%len(lastNames)]
		gen := i / (len(firstNames) * len(lastNames))
		if gen == 0 {
			out[i] = fmt.Sprintf("%s %s", f, l)
		} else {
			out[i] = fmt.Sprintf("%s %s %d", f, l, gen+1)
		}
	}
	return out
}
