package synth

import "strings"

// TopicSpec is a ground-truth topic: a name, the multiword phrases and
// unigrams characteristic of it, and child subtopics. Documents are emitted
// from leaf topics; phrases of ancestors leak in with lower probability,
// giving the parent-subset structure the paper describes ("a child topic is
// a subset of its parent topic").
type TopicSpec struct {
	Name     string
	Phrases  []string
	Unigrams []string
	Children []*TopicSpec
}

// Flatten returns all nodes of the spec tree in pre-order.
func (t *TopicSpec) Flatten() []*TopicSpec {
	out := []*TopicSpec{t}
	for _, c := range t.Children {
		out = append(out, c.Flatten()...)
	}
	return out
}

// Leaves returns the leaf specs in pre-order.
func (t *TopicSpec) Leaves() []*TopicSpec {
	if len(t.Children) == 0 {
		return []*TopicSpec{t}
	}
	var out []*TopicSpec
	for _, c := range t.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// allWords returns the unigrams plus every word of every phrase of the node.
func (t *TopicSpec) allWords() []string {
	var out []string
	out = append(out, t.Unigrams...)
	for _, p := range t.Phrases {
		out = append(out, strings.Fields(p)...)
	}
	return out
}

// backgroundUnigrams are generic research-paper words shared by every topic,
// the "background topic" of Section 3.2.1.
var backgroundUnigrams = []string{
	"algorithm", "method", "model", "framework", "analysis", "system",
	"problem", "efficient", "effective", "novel", "evaluation",
	"performance", "technique", "application", "results", "scalable",
	"adaptive", "robust", "general", "automatic", "improved", "fast",
	"dynamic", "optimal", "practical",
}

// dblpSpec is the computer-science topic tree used by the DBLP-like
// generator: the six areas of the paper's 20-conference dataset, each with
// four subtopics, with phrase vocabulary lifted from the paper's own case
// studies (Figures 3.3-3.4, Tables 3.6, 4.3, 5.1-5.4).
func dblpSpec() *TopicSpec {
	return &TopicSpec{
		Name:    "computer science",
		Phrases: []string{"experimental evaluation", "real world data"},
		Unigrams: []string{
			"data", "information", "knowledge", "computing", "software",
		},
		Children: []*TopicSpec{
			{
				Name: "databases",
				Phrases: []string{
					"database systems", "query processing", "data management",
					"relational databases",
				},
				Unigrams: []string{"database", "query", "queries", "storage", "relational", "schema"},
				Children: []*TopicSpec{
					{
						Name: "query processing and optimization",
						Phrases: []string{
							"query processing", "query optimization", "materialized views",
							"deductive databases", "query evaluation", "query rewriting",
							"efficient query processing", "selectivity estimation",
						},
						Unigrams: []string{"query", "optimization", "views", "joins", "plans", "cost"},
					},
					{
						Name: "concurrency control and transactions",
						Phrases: []string{
							"concurrency control", "transaction management", "main memory",
							"distributed database systems", "load balancing", "locking protocols",
							"nested transactions", "recovery protocols",
						},
						Unigrams: []string{"transactions", "concurrency", "recovery", "locking", "distributed", "replication"},
					},
					{
						Name: "data integration and warehousing",
						Phrases: []string{
							"data integration", "data warehousing", "schema matching",
							"data cleaning", "entity resolution", "data exchange",
							"record linkage", "view maintenance",
						},
						Unigrams: []string{"integration", "warehouse", "schema", "mappings", "sources", "cleaning"},
					},
					{
						Name: "xml and semistructured data",
						Phrases: []string{
							"xml data", "xml query", "semistructured data", "xpath queries",
							"tree pattern matching", "xml documents", "schema validation",
							"twig queries",
						},
						Unigrams: []string{"xml", "xpath", "documents", "trees", "semistructured", "validation"},
					},
				},
			},
			{
				Name: "data mining",
				Phrases: []string{
					"data mining", "knowledge discovery", "mining patterns",
					"large datasets",
				},
				Unigrams: []string{"mining", "patterns", "discovery", "interesting", "large", "massive"},
				Children: []*TopicSpec{
					{
						Name: "pattern and rule mining",
						Phrases: []string{
							"association rules", "frequent patterns", "mining association rules",
							"frequent itemsets", "mining frequent patterns", "sequential patterns",
							"candidate generation", "closed patterns",
						},
						Unigrams: []string{"frequent", "itemsets", "rules", "association", "support", "apriori"},
					},
					{
						Name: "stream mining",
						Phrases: []string{
							"data streams", "mining data streams", "sensor networks",
							"concept drift", "sliding window", "stream processing",
							"continuous queries", "distributed streams",
						},
						Unigrams: []string{"streams", "stream", "online", "windows", "evolving", "sensors"},
					},
					{
						Name: "time series and similarity search",
						Phrases: []string{
							"time series", "nearest neighbor", "similarity search",
							"time series data", "moving objects", "dynamic time warping",
							"nearest neighbor queries", "trajectory data",
						},
						Unigrams: []string{"series", "similarity", "temporal", "indexing", "distance", "trajectories"},
					},
					{
						Name: "graph and network mining",
						Phrases: []string{
							"social networks", "large graphs", "graph mining",
							"mining large graphs", "community detection", "link prediction",
							"anomaly detection", "outlier detection",
						},
						Unigrams: []string{"graphs", "networks", "communities", "nodes", "edges", "outliers"},
					},
				},
			},
			{
				Name: "information retrieval",
				Phrases: []string{
					"information retrieval", "web search", "retrieval",
					"information retrieval system",
				},
				Unigrams: []string{"retrieval", "search", "documents", "ranking", "relevance", "web"},
				Children: []*TopicSpec{
					{
						Name: "ad hoc retrieval",
						Phrases: []string{
							"document retrieval", "relevance feedback", "query expansion",
							"language modeling", "vector space model", "retrieval models",
							"pseudo relevance feedback", "term weighting",
						},
						Unigrams: []string{"relevance", "ranking", "terms", "feedback", "precision", "recall"},
					},
					{
						Name: "web search",
						Phrases: []string{
							"web search", "search engine", "world wide web", "web pages",
							"link analysis", "search results", "query logs", "click data",
						},
						Unigrams: []string{"web", "engine", "pages", "links", "users", "clicks"},
					},
					{
						Name: "question answering and summarization",
						Phrases: []string{
							"question answering", "text summarization", "answer extraction",
							"multi document summarization", "passage retrieval",
							"factoid questions", "sentence extraction", "textual entailment",
						},
						Unigrams: []string{"questions", "answers", "summaries", "passages", "sentences", "entailment"},
					},
					{
						Name: "recommendation and filtering",
						Phrases: []string{
							"collaborative filtering", "recommender systems", "text classification",
							"text categorization", "spam filtering", "content based filtering",
							"rating prediction", "user profiles",
						},
						Unigrams: []string{"recommendation", "filtering", "ratings", "preferences", "items", "profiles"},
					},
				},
			},
			{
				Name: "machine learning",
				Phrases: []string{
					"machine learning", "learning algorithms", "supervised learning",
					"statistical learning",
				},
				Unigrams: []string{"learning", "training", "classification", "prediction", "features", "labels"},
				Children: []*TopicSpec{
					{
						Name: "kernel methods and classification",
						Phrases: []string{
							"support vector machines", "feature selection", "decision trees",
							"kernel methods", "large margin", "active learning",
							"ensemble methods", "naive bayes",
						},
						Unigrams: []string{"classifiers", "kernels", "margin", "boosting", "svm", "accuracy"},
					},
					{
						Name: "probabilistic graphical models",
						Phrases: []string{
							"graphical models", "conditional random fields", "hidden markov models",
							"bayesian networks", "belief propagation", "variational inference",
							"markov random fields", "latent variable models",
						},
						Unigrams: []string{"probabilistic", "bayesian", "inference", "latent", "posterior", "likelihood"},
					},
					{
						Name: "reinforcement learning",
						Phrases: []string{
							"reinforcement learning", "markov decision processes", "policy iteration",
							"temporal difference learning", "function approximation",
							"multi armed bandits", "reward shaping", "q learning",
						},
						Unigrams: []string{"reinforcement", "policy", "reward", "agent", "exploration", "control"},
					},
					{
						Name: "dimensionality reduction and clustering",
						Phrases: []string{
							"dimensionality reduction", "matrix factorization", "spectral clustering",
							"principal component analysis", "manifold learning",
							"nonnegative matrix factorization", "subspace clustering", "feature extraction",
						},
						Unigrams: []string{"clustering", "dimensionality", "subspace", "embedding", "manifold", "factorization"},
					},
				},
			},
			{
				Name: "natural language processing",
				Phrases: []string{
					"natural language", "language processing", "computational linguistics",
					"natural language processing",
				},
				Unigrams: []string{"language", "text", "linguistic", "words", "corpus", "semantic"},
				Children: []*TopicSpec{
					{
						Name: "machine translation",
						Phrases: []string{
							"machine translation", "statistical machine translation", "word alignment",
							"translation models", "phrase based translation", "bilingual corpora",
							"translation quality", "language pairs",
						},
						Unigrams: []string{"translation", "bilingual", "alignment", "source", "target", "fluency"},
					},
					{
						Name: "parsing and tagging",
						Phrases: []string{
							"dependency parsing", "part of speech tagging", "syntactic parsing",
							"treebank grammars", "constituency parsing", "morphological analysis",
							"chunking", "grammar induction",
						},
						Unigrams: []string{"parsing", "syntax", "tagging", "grammar", "dependencies", "treebank"},
					},
					{
						Name: "information extraction",
						Phrases: []string{
							"information extraction", "named entity recognition", "relation extraction",
							"word sense disambiguation", "semantic role labeling",
							"coreference resolution", "entity linking", "event extraction",
						},
						Unigrams: []string{"extraction", "entities", "relations", "mentions", "annotation", "disambiguation"},
					},
					{
						Name: "speech and dialogue",
						Phrases: []string{
							"speech recognition", "spoken language", "dialogue systems",
							"acoustic models", "speech synthesis", "language models",
							"speaker identification", "prosody modeling",
						},
						Unigrams: []string{"speech", "acoustic", "spoken", "dialogue", "utterances", "phonetic"},
					},
				},
			},
			{
				Name: "artificial intelligence",
				Phrases: []string{
					"artificial intelligence", "knowledge representation", "intelligent systems",
					"knowledge base",
				},
				Unigrams: []string{"reasoning", "knowledge", "intelligent", "agents", "logic", "planning"},
				Children: []*TopicSpec{
					{
						Name: "automated reasoning and logic",
						Phrases: []string{
							"description logic", "modal logic", "belief revision",
							"automated reasoning", "theorem proving", "answer set programming",
							"first order logic", "satisfiability testing",
						},
						Unigrams: []string{"logic", "reasoning", "satisfiability", "proofs", "axioms", "semantics"},
					},
					{
						Name: "search and planning",
						Phrases: []string{
							"heuristic search", "constraint satisfaction", "automated planning",
							"constraint satisfaction problems", "local search", "game playing",
							"plan generation", "state space search",
						},
						Unigrams: []string{"search", "planning", "constraints", "heuristics", "games", "solvers"},
					},
					{
						Name: "multi agent systems",
						Phrases: []string{
							"multi agent systems", "mechanism design", "game theory",
							"auction mechanisms", "coalition formation", "agent negotiation",
							"social choice", "distributed problem solving",
						},
						Unigrams: []string{"agents", "mechanisms", "auctions", "strategies", "equilibrium", "cooperation"},
					},
					{
						Name: "knowledge bases and expert systems",
						Phrases: []string{
							"expert system", "knowledge base", "ontology engineering",
							"knowledge acquisition", "semantic web", "rule based systems",
							"case based reasoning", "knowledge sharing",
						},
						Unigrams: []string{"ontology", "rules", "expert", "facts", "taxonomy", "acquisition"},
					},
				},
			},
		},
	}
}

// dblpVenues maps each top-level DBLP area index to its conference names,
// mirroring the paper's 20-conference selection.
var dblpVenues = [][]string{
	{"SIGMOD", "VLDB", "ICDE", "PODS", "EDBT"},
	{"KDD", "ICDM", "SDM"},
	{"SIGIR", "ECIR", "WWW", "CIKM"},
	{"ICML", "NIPS", "ECML"},
	{"ACL", "EMNLP", "HLT-NAACL"},
	{"AAAI", "IJCAI"},
}

// newsSpec builds the 16-story NEWS topic tree of Section 3.3 with person
// and location entity pools per story. Subtopics of each story are formed by
// partitioning its aspect phrases, giving real subtopic structure without
// hand-curating 48 nodes.
type newsStory struct {
	Name     string
	Phrases  []string
	Unigrams []string
	Persons  []string
	Places   []string
}

var newsStories = []newsStory{
	{
		Name: "bill clinton",
		Phrases: []string{
			"bill clinton", "clinton foundation", "former president", "clinton speech",
			"democratic convention", "clinton global initiative", "white house years", "book tour",
		},
		Unigrams: []string{"clinton", "president", "speech", "foundation", "campaign", "democratic"},
		Persons:  []string{"Bill Clinton", "Hillary Clinton", "Chelsea Clinton", "Al Gore"},
		Places:   []string{"Washington", "New York", "Arkansas", "Little Rock"},
	},
	{
		Name: "boston marathon",
		Phrases: []string{
			"boston marathon", "marathon bombing", "finish line", "pressure cooker bomb",
			"marathon runners", "bombing suspects", "manhunt lockdown", "memorial service",
		},
		Unigrams: []string{"marathon", "bombing", "boston", "runners", "explosions", "suspects"},
		Persons:  []string{"Dzhokhar Tsarnaev", "Tamerlan Tsarnaev", "Deval Patrick", "Thomas Menino"},
		Places:   []string{"Boston", "Watertown", "Massachusetts", "Cambridge"},
	},
	{
		Name: "earthquake",
		Phrases: []string{
			"earthquake magnitude", "death toll", "rescue workers", "aftershocks hit",
			"tsunami warning", "collapsed buildings", "relief efforts", "epicenter located",
		},
		Unigrams: []string{"earthquake", "quake", "magnitude", "rescue", "survivors", "damage"},
		Persons:  []string{"Ban Ki-moon", "Red Cross Chief", "Rescue Coordinator", "Seismology Expert"},
		Places:   []string{"Sichuan", "Japan", "Haiti", "Chile"},
	},
	{
		Name: "egypt",
		Phrases: []string{
			"egypts president", "muslim brotherhood", "tahrir square protests", "egypt imf loan",
			"military council", "morsi government", "egypts prosecutor general", "constitutional declaration",
		},
		Unigrams: []string{"egypt", "egyptian", "morsi", "protests", "brotherhood", "cairo"},
		Persons:  []string{"Mohamed Morsi", "Hosni Mubarak", "Mohamed ElBaradei", "Ahmed Shafik"},
		Places:   []string{"Egypt", "Cairo", "Tahrir Square", "Port Said"},
	},
	{
		Name: "gaza",
		Phrases: []string{
			"gaza strip", "rocket attacks", "cease fire", "israeli airstrikes",
			"hamas militants", "border crossing", "civilian casualties", "gaza conflict",
		},
		Unigrams: []string{"gaza", "hamas", "rockets", "airstrikes", "militants", "ceasefire"},
		Persons:  []string{"Ismail Haniyeh", "Khaled Mashal", "Ehud Barak", "Mohammed Deif"},
		Places:   []string{"Gaza", "Gaza City", "Rafah", "Khan Younis"},
	},
	{
		Name: "iran",
		Phrases: []string{
			"nuclear program", "uranium enrichment", "economic sanctions", "nuclear talks",
			"supreme leader", "revolutionary guard", "oil exports", "nuclear facilities",
		},
		Unigrams: []string{"iran", "iranian", "nuclear", "sanctions", "enrichment", "tehran"},
		Persons:  []string{"Mahmoud Ahmadinejad", "Ali Khamenei", "Saeed Jalili", "Hassan Rouhani"},
		Places:   []string{"Iran", "Tehran", "Natanz", "Qom"},
	},
	{
		Name: "israel",
		Phrases: []string{
			"israeli government", "peace talks", "west bank settlements", "prime minister netanyahu",
			"israeli elections", "security cabinet", "palestinian authority", "two state solution",
		},
		Unigrams: []string{"israel", "israeli", "netanyahu", "settlements", "palestinians", "jerusalem"},
		Persons:  []string{"Benjamin Netanyahu", "Shimon Peres", "Ehud Olmert", "Tzipi Livni"},
		Places:   []string{"Israel", "Jerusalem", "Tel Aviv", "West Bank"},
	},
	{
		Name: "joe biden",
		Phrases: []string{
			"vice president biden", "biden remarks", "gun control task force", "debate performance",
			"campaign trail", "senate career", "foreign policy experience", "biden gaffe",
		},
		Unigrams: []string{"biden", "vice", "president", "debate", "senate", "delaware"},
		Persons:  []string{"Joe Biden", "Jill Biden", "Paul Ryan", "Barack Obama"},
		Places:   []string{"Washington", "Delaware", "Wilmington", "Capitol Hill"},
	},
	{
		Name: "microsoft",
		Phrases: []string{
			"windows 8", "surface tablet", "software giant", "windows phone",
			"office suite", "xbox console", "search engine bing", "enterprise software",
		},
		Unigrams: []string{"microsoft", "windows", "software", "tablet", "ballmer", "devices"},
		Persons:  []string{"Steve Ballmer", "Bill Gates", "Steven Sinofsky", "Satya Nadella"},
		Places:   []string{"Redmond", "Seattle", "Silicon Valley", "New York"},
	},
	{
		Name: "mitt romney",
		Phrases: []string{
			"mitt romney", "romney campaign", "republican nominee", "obama romney",
			"presidential debate", "swing states", "tax returns", "romney rally",
		},
		Unigrams: []string{"romney", "republican", "campaign", "nominee", "election", "voters"},
		Persons:  []string{"Mitt Romney", "Paul Ryan", "Ann Romney", "Barack Obama"},
		Places:   []string{"Ohio", "Florida", "Massachusetts", "Virginia"},
	},
	{
		Name: "nuclear power",
		Phrases: []string{
			"nuclear power plant", "nuclear reactors", "radiation leaks", "nuclear safety",
			"spent fuel", "nuclear energy policy", "reactor shutdown", "nuclear waste storage",
		},
		Unigrams: []string{"nuclear", "reactor", "radiation", "plant", "fukushima", "energy"},
		Persons:  []string{"Plant Operator", "Energy Secretary", "Safety Inspector", "Naoto Kan"},
		Places:   []string{"Fukushima", "Japan", "Chernobyl", "Three Mile Island"},
	},
	{
		Name: "steve jobs",
		Phrases: []string{
			"steve jobs", "apple founder", "jobs biography", "medical leave",
			"product launches", "jobs resignation", "pancreatic cancer", "apple ceo",
		},
		Unigrams: []string{"jobs", "apple", "iphone", "ipad", "visionary", "cupertino"},
		Persons:  []string{"Steve Jobs", "Tim Cook", "Steve Wozniak", "Walter Isaacson"},
		Places:   []string{"Cupertino", "Silicon Valley", "San Francisco", "Palo Alto"},
	},
	{
		Name: "sudan",
		Phrases: []string{
			"south sudan", "oil fields", "border clashes", "darfur conflict",
			"peace agreement", "refugee camps", "independence referendum", "disputed region",
		},
		Unigrams: []string{"sudan", "sudanese", "darfur", "khartoum", "juba", "refugees"},
		Persons:  []string{"Omar al-Bashir", "Salva Kiir", "Riek Machar", "UN Envoy"},
		Places:   []string{"Sudan", "South Sudan", "Khartoum", "Darfur"},
	},
	{
		Name: "syria",
		Phrases: []string{
			"syrian government", "assad regime", "civil war", "opposition forces",
			"chemical weapons", "syrian rebels", "refugee crisis", "damascus suburbs",
		},
		Unigrams: []string{"syria", "syrian", "assad", "rebels", "damascus", "aleppo"},
		Persons:  []string{"Bashar al-Assad", "Kofi Annan", "Lakhdar Brahimi", "Free Syrian Army Commander"},
		Places:   []string{"Syria", "Damascus", "Aleppo", "Homs"},
	},
	{
		Name: "unemployment",
		Phrases: []string{
			"unemployment rate", "jobs report", "labor market", "jobless claims",
			"economic recovery", "payroll growth", "federal reserve stimulus", "hiring slowdown",
		},
		Unigrams: []string{"unemployment", "jobs", "economy", "hiring", "workers", "payrolls"},
		Persons:  []string{"Ben Bernanke", "Labor Secretary", "Chief Economist", "Treasury Secretary"},
		Places:   []string{"Washington", "Wall Street", "Detroit", "California"},
	},
	{
		Name: "us crime",
		Phrases: []string{
			"shooting rampage", "gun control", "police investigation", "school shooting",
			"murder trial", "death penalty", "crime scene", "assault weapons ban",
		},
		Unigrams: []string{"shooting", "police", "gunman", "victims", "trial", "crime"},
		Persons:  []string{"Police Chief", "District Attorney", "Adam Lanza", "James Holmes"},
		Places:   []string{"Newtown", "Aurora", "Connecticut", "Colorado"},
	},
}

// newsSpec converts the story list into a topic tree: root -> 16 stories,
// each story split into subtopics by partitioning its phrases.
func newsSpec() *TopicSpec {
	root := &TopicSpec{
		Name:     "news",
		Unigrams: []string{"officials", "reported", "statement", "country", "government", "people"},
	}
	for _, s := range newsStories {
		story := &TopicSpec{Name: s.Name, Unigrams: s.Unigrams}
		// Two subtopics per story: first and second half of the aspects.
		half := len(s.Phrases) / 2
		story.Children = []*TopicSpec{
			{Name: s.Name + " aspect a", Phrases: s.Phrases[:half], Unigrams: s.Unigrams[:3]},
			{Name: s.Name + " aspect b", Phrases: s.Phrases[half:], Unigrams: s.Unigrams[3:]},
		}
		root.Children = append(root.Children, story)
	}
	return root
}

// arxivSpec is the labeled 5-subfield physics corpus of Section 4.4.1.
func arxivSpec() *TopicSpec {
	return &TopicSpec{
		Name:     "physics",
		Unigrams: []string{"measurement", "theory", "experimental", "quantum", "energy"},
		Children: []*TopicSpec{
			{
				Name: "optics",
				Phrases: []string{
					"optical fiber", "laser pulses", "photonic crystal", "nonlinear optics",
					"optical tweezers", "beam propagation", "frequency comb", "second harmonic generation",
				},
				Unigrams: []string{"optical", "laser", "photon", "waveguide", "refractive", "lens", "beam"},
			},
			{
				Name: "fluid dynamics",
				Phrases: []string{
					"turbulent flow", "reynolds number", "boundary layer", "vortex shedding",
					"navier stokes equations", "shear flow", "rayleigh benard convection", "drag reduction",
				},
				Unigrams: []string{"flow", "turbulence", "vortex", "viscosity", "convection", "fluid", "instability"},
			},
			{
				Name: "atomic physics",
				Phrases: []string{
					"bose einstein condensate", "ultracold atoms", "optical lattice", "atom interferometry",
					"rydberg atoms", "magnetic trapping", "hyperfine structure", "laser cooling",
				},
				Unigrams: []string{"atoms", "atomic", "condensate", "trap", "cooling", "spin", "lattice"},
			},
			{
				Name: "instrumentation and detectors",
				Phrases: []string{
					"silicon detectors", "data acquisition", "readout electronics", "calorimeter calibration",
					"muon chambers", "trigger system", "photomultiplier tubes", "beam test",
				},
				Unigrams: []string{"detector", "calibration", "readout", "sensors", "resolution", "electronics", "trigger"},
			},
			{
				Name: "plasma physics",
				Phrases: []string{
					"magnetic confinement", "tokamak plasmas", "plasma turbulence", "fusion reactor",
					"magnetohydrodynamic instabilities", "electron temperature", "plasma waves", "laser plasma interaction",
				},
				Unigrams: []string{"plasma", "magnetic", "fusion", "tokamak", "discharge", "electron", "ion"},
			},
		},
	}
}

// yelpSpec reproduces the review-domain topics visible in Table 4.8.
func yelpSpec() *TopicSpec {
	return &TopicSpec{
		Name:     "yelp reviews",
		Unigrams: []string{"good", "place", "time", "great", "love", "staff", "nice", "friendly"},
		Children: []*TopicSpec{
			{
				Name: "breakfast and coffee",
				Phrases: []string{
					"ice cream", "iced tea", "french toast", "hash browns", "eggs benedict",
					"peanut butter", "cup of coffee", "scrambled eggs", "frozen yogurt",
				},
				Unigrams: []string{"coffee", "breakfast", "eggs", "tea", "chocolate", "cream", "cake", "sweet"},
			},
			{
				Name: "asian food",
				Phrases: []string{
					"spring rolls", "fried rice", "egg rolls", "chinese food", "pad thai",
					"dim sum", "thai food", "lunch specials", "sushi rolls",
				},
				Unigrams: []string{"food", "chicken", "rice", "sushi", "roll", "noodles", "ordered", "dish"},
			},
			{
				Name: "hotels",
				Phrases: []string{
					"parking lot", "front desk", "room was clean", "pool area", "staying at the hotel",
					"free wifi", "spring training", "dog park", "staff is friendly",
				},
				Unigrams: []string{"room", "hotel", "parking", "stay", "pool", "clean", "area", "desk"},
			},
			{
				Name: "grocery stores",
				Phrases: []string{
					"grocery store", "great selection", "farmers market", "great prices", "parking lot",
					"shopping center", "prices are reasonable", "love this place", "wal mart",
				},
				Unigrams: []string{"store", "shop", "prices", "selection", "buy", "items", "market", "find"},
			},
			{
				Name: "mexican food",
				Phrases: []string{
					"mexican food", "chips and salsa", "carne asada", "fish tacos", "sweet potato fries",
					"rice and beans", "hot dog", "mac and cheese", "food was good",
				},
				Unigrams: []string{"tacos", "burger", "fries", "cheese", "salsa", "burrito", "beans", "ordered"},
			},
		},
	}
}

// apNewsSpec reproduces the AP-news (1989) topics of Table 4.7.
func apNewsSpec() *TopicSpec {
	return &TopicSpec{
		Name:     "ap news",
		Unigrams: []string{"year", "state", "officials", "reported", "government", "national"},
		Children: []*TopicSpec{
			{
				Name: "environment and energy",
				Phrases: []string{
					"energy department", "environmental protection agency", "nuclear weapons", "acid rain",
					"nuclear power plant", "hazardous waste", "savannah river", "natural gas",
				},
				Unigrams: []string{"plant", "nuclear", "environmental", "energy", "waste", "chemical", "power"},
			},
			{
				Name: "religion",
				Phrases: []string{
					"roman catholic", "pope john paul", "catholic church", "anti semitism",
					"baptist church", "lutheran church", "church members", "episcopal church",
				},
				Unigrams: []string{"church", "catholic", "religious", "bishop", "pope", "jewish", "christian"},
			},
			{
				Name: "middle east",
				Phrases: []string{
					"gaza strip", "west bank", "palestine liberation organization", "arab reports",
					"prime minister", "israel radio", "occupied territories", "occupied west bank",
				},
				Unigrams: []string{"palestinian", "israeli", "israel", "arab", "plo", "army", "occupied"},
			},
			{
				Name: "government and budget",
				Phrases: []string{
					"president bush", "white house", "bush administration", "house and senate",
					"members of congress", "defense secretary", "capital gains tax", "pay raise",
				},
				Unigrams: []string{"bush", "house", "senate", "congress", "tax", "budget", "committee"},
			},
			{
				Name: "health care",
				Phrases: []string{
					"health care", "medical center", "aids virus", "drug abuse",
					"food and drug administration", "aids patients", "centers for disease control", "heart disease",
				},
				Unigrams: []string{"drug", "health", "aids", "hospital", "medical", "patients", "disease"},
			},
		},
	}
}

// abstractsSpec reproduces the DBLP-abstracts topics of Table 4.6 by reusing
// five areas of the CS tree with their subtopic vocabulary merged (abstracts
// mix subtopic language freely).
func abstractsSpec() *TopicSpec {
	cs := dblpSpec()
	root := &TopicSpec{Name: "cs abstracts", Unigrams: cs.Unigrams}
	pick := []int{0, 1, 3, 4, 5} // databases, data mining, ML, NLP, AI
	for _, i := range pick {
		area := cs.Children[i]
		merged := &TopicSpec{Name: area.Name, Phrases: append([]string(nil), area.Phrases...),
			Unigrams: append([]string(nil), area.Unigrams...)}
		for _, sub := range area.Children {
			merged.Phrases = append(merged.Phrases, sub.Phrases...)
			merged.Unigrams = append(merged.Unigrams, sub.Unigrams...)
		}
		root.Children = append(root.Children, merged)
	}
	return root
}
