package synth

import (
	"math"
	"reflect"
	"testing"

	"lesm/internal/core"
)

func TestSpecFlattenAndLeaves(t *testing.T) {
	s := dblpSpec()
	if len(s.Children) != 6 {
		t.Fatalf("areas = %d, want 6", len(s.Children))
	}
	if got := len(s.Leaves()); got != 24 {
		t.Fatalf("leaves = %d, want 24", got)
	}
	if got := len(s.Flatten()); got != 31 {
		t.Fatalf("flatten = %d, want 31 (root+6+24)", got)
	}
}

func TestNewsSpecShape(t *testing.T) {
	s := newsSpec()
	if len(s.Children) != 16 {
		t.Fatalf("stories = %d", len(s.Children))
	}
	for _, st := range s.Children {
		if len(st.Children) != 2 {
			t.Fatalf("story %q has %d subtopics", st.Name, len(st.Children))
		}
	}
}

func TestDBLPDeterministic(t *testing.T) {
	cfg := DBLPConfig{NumPapers: 200, NumAuthors: 60, Seed: 42}
	a := DBLP(cfg)
	b := DBLP(cfg)
	if len(a.Docs) != 200 || len(b.Docs) != 200 {
		t.Fatalf("doc counts %d,%d", len(a.Docs), len(b.Docs))
	}
	if !reflect.DeepEqual(a.Truth.DocLeaf, b.Truth.DocLeaf) {
		t.Fatal("DocLeaf differs between runs with same seed")
	}
	if !reflect.DeepEqual(a.Corpus.Docs[17].Tokens, b.Corpus.Docs[17].Tokens) {
		t.Fatal("tokens differ between runs with same seed")
	}
}

func TestDBLPStructure(t *testing.T) {
	ds := DBLP(DBLPConfig{NumPapers: 500, NumAuthors: 120, Seed: 7})
	if ds.NumNodes[1] != 120 {
		t.Fatalf("authors = %d", ds.NumNodes[1])
	}
	if ds.NumNodes[2] != 20 {
		t.Fatalf("venues = %d, want 20 conferences", ds.NumNodes[2])
	}
	for d, rec := range ds.Docs {
		if len(rec.Tokens) < 6 {
			t.Fatalf("doc %d too short: %d", d, len(rec.Tokens))
		}
		if len(rec.Entities[1]) == 0 {
			t.Fatalf("doc %d has no authors", d)
		}
		if len(rec.Entities[2]) != 1 {
			t.Fatalf("doc %d venue count = %d", d, len(rec.Entities[2]))
		}
	}
	// Most papers should be in their venue's area (noise is 5%).
	agree := 0
	for d := range ds.Docs {
		vi := ds.Docs[d].Entities[2][0]
		vaff := ds.Truth.EntityAffinity(2, vi)
		leaf := ds.Truth.DocLeaf[d]
		if vaff[leaf] > 0 {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(ds.Docs)); frac < 0.9 {
		t.Fatalf("venue-area agreement = %v, want >= 0.9", frac)
	}
}

func TestDBLPAreaOnly(t *testing.T) {
	ds := DBLP(DBLPConfig{NumPapers: 100, NumAuthors: 40, Seed: 1, AreaOnly: 1})
	if ds.Truth.NumLeaves() != 4 {
		t.Fatalf("DB-area leaves = %d, want 4", ds.Truth.NumLeaves())
	}
	if ds.NumNodes[2] != 5 {
		t.Fatalf("DB-area venues = %d, want 5", ds.NumNodes[2])
	}
}

func TestAffinitiesSumToOne(t *testing.T) {
	ds := DBLP(DBLPConfig{NumPapers: 100, NumAuthors: 40, Seed: 3})
	tr := ds.Truth
	sum := func(x []float64) float64 {
		s := 0.0
		for _, v := range x {
			s += v
		}
		return s
	}
	for _, w := range []string{"query", "learning", "nonexistentword"} {
		if s := sum(tr.WordAffinity(w)); math.Abs(s-1) > 1e-9 {
			t.Fatalf("WordAffinity(%q) sums to %v", w, s)
		}
	}
	if s := sum(tr.PhraseAffinity("support vector machines")); math.Abs(s-1) > 1e-9 {
		t.Fatalf("phrase affinity sums to %v", s)
	}
	// A leaf phrase should be concentrated on one leaf.
	aff := tr.PhraseAffinity("query optimization")
	max := 0.0
	for _, v := range aff {
		if v > max {
			max = v
		}
	}
	if max < 0.99 {
		t.Fatalf("leaf phrase affinity max = %v, want concentrated", max)
	}
	// An area phrase should be spread over the area's 4 leaves.
	aff = tr.PhraseAffinity("database systems")
	nz := 0
	for _, v := range aff {
		if v > 0 {
			nz++
		}
	}
	if nz != 4 {
		t.Fatalf("area phrase spread over %d leaves, want 4", nz)
	}
}

func TestNewsDataset(t *testing.T) {
	ds := News(NewsConfig{NumArticles: 300, Seed: 5, Stories: 4})
	if ds.Truth.NumLeaves() != 8 {
		t.Fatalf("4 stories should give 8 leaves, got %d", ds.Truth.NumLeaves())
	}
	if len(ds.Docs) != 300 {
		t.Fatalf("articles = %d", len(ds.Docs))
	}
	for d, rec := range ds.Docs {
		if len(rec.Entities[1]) == 0 || len(rec.Entities[2]) == 0 {
			t.Fatalf("doc %d missing entities", d)
		}
	}
	n := ds.CollapsedNetwork(0)
	if n.NumTypes() != 3 {
		t.Fatalf("types = %d", n.NumTypes())
	}
	// All six pair types should have links.
	if n.TotalLinks() == 0 {
		t.Fatal("no links")
	}
}

func TestCollapsedNetworkSkipsVenueVenue(t *testing.T) {
	ds := DBLP(DBLPConfig{NumPapers: 150, NumAuthors: 50, Seed: 2})
	n := ds.CollapsedNetwork(0)
	if got := len(n.Links[core22()]); got != 0 {
		t.Fatalf("venue-venue links = %d, want 0", got)
	}
	if n.Names[2][0] == "" {
		t.Fatal("venue names missing")
	}
}

func core22() (p struct{ X, Y core.TypeID }) { p.X, p.Y = 2, 2; return }

func TestArxivLabels(t *testing.T) {
	ds := Arxiv(TextConfig{NumDocs: 250, Seed: 9})
	if ds.Truth.NumLeaves() != 5 {
		t.Fatalf("leaves = %d", ds.Truth.NumLeaves())
	}
	counts := make([]int, 5)
	for _, l := range ds.Truth.DocLabel {
		counts[l]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("subfield %d has no docs", i)
		}
	}
}

func TestLongTextDomains(t *testing.T) {
	for _, dom := range []LongTextDomain{DomainAbstracts, DomainAPNews, DomainYelp} {
		ds := LongText(dom, TextConfig{NumDocs: 50, Seed: 11})
		if len(ds.Docs) != 50 {
			t.Fatalf("domain %d: docs = %d", dom, len(ds.Docs))
		}
		if len(ds.Corpus.Docs[0].Tokens) < 20 {
			t.Fatalf("domain %d: long-text docs too short (%d)", dom, len(ds.Corpus.Docs[0].Tokens))
		}
	}
}

func TestGenealogySimulation(t *testing.T) {
	g := NewGenealogy(GenealogyConfig{Seed: 13})
	if g.NumAuthors < 50 {
		t.Fatalf("authors = %d, too few", g.NumAuthors)
	}
	if len(g.Papers) < 500 {
		t.Fatalf("papers = %d, too few", len(g.Papers))
	}
	advised := g.NumAdvised()
	if advised < g.NumAuthors/2 {
		t.Fatalf("advised = %d of %d, too few", advised, g.NumAuthors)
	}
	// Advisor must always predate the student and intervals must be sane.
	firstYear := make([]int, g.NumAuthors)
	for i := range firstYear {
		firstYear[i] = 1 << 30
	}
	for _, p := range g.Papers {
		for _, a := range p.Authors {
			if p.Year < firstYear[a] {
				firstYear[a] = p.Year
			}
		}
	}
	for a, adv := range g.AdvisorOf {
		if adv < 0 {
			continue
		}
		if g.AdviseStart[a] > g.AdviseEnd[a] {
			t.Fatalf("author %d: interval [%d,%d]", a, g.AdviseStart[a], g.AdviseEnd[a])
		}
		if firstYear[adv] < 1<<30 && firstYear[a] < 1<<30 && firstYear[adv] > firstYear[a] {
			t.Fatalf("author %d starts before advisor %d", a, adv)
		}
	}
	// No advising cycles: follow advisor chain, must terminate.
	for a := range g.AdvisorOf {
		seen := map[int]bool{}
		cur := a
		for g.AdvisorOf[cur] >= 0 {
			if seen[cur] {
				t.Fatalf("cycle at author %d", a)
			}
			seen[cur] = true
			cur = g.AdvisorOf[cur]
		}
	}
	// Determinism.
	g2 := NewGenealogy(GenealogyConfig{Seed: 13})
	if !reflect.DeepEqual(g.AdvisorOf, g2.AdvisorOf) || len(g.Papers) != len(g2.Papers) {
		t.Fatal("genealogy not deterministic")
	}
}

func TestMakeNamesUnique(t *testing.T) {
	names := makeNames(500)
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
	}
}
