package synth

import (
	"math/rand"
	"strings"

	"lesm/internal/core"
	"lesm/internal/hin"
	"lesm/internal/linalg"
	"lesm/internal/textkit"
)

// Dataset is a generated text-attached heterogeneous network: an id-encoded
// corpus, the per-document entity attachments, and the full generation
// ground truth.
type Dataset struct {
	Corpus    *textkit.Corpus
	Docs      []hin.DocRecord
	TypeNames []string
	NumNodes  []int
	// Names[x] holds display names of type-x entities (nil for terms, which
	// resolve through Corpus.Vocab).
	Names [][]string
	Truth *Truth
}

// Truth records how the dataset was generated: the topic tree, per-document
// leaf and top-level labels, and entity-to-topic affinities. Oracle judges
// (internal/eval) use it in place of the paper's human annotators.
type Truth struct {
	Root *TopicSpec
	// Nodes is Root.Flatten(); LeafIdx are indices into Nodes of the leaves.
	Nodes   []*TopicSpec
	LeafIdx []int
	// DocLeaf[d] is the index (into LeafIdx) of document d's primary leaf
	// topic; DocLabel[d] is the index of its top-level topic.
	DocLeaf  []int
	DocLabel []int
	// wordAff maps a word to its distribution over leaves.
	wordAff map[string][]float64
	// phraseAff maps a full phrase string to its distribution over leaves.
	phraseAff map[string][]float64
	// EntityAff[x][i] is entity i of type x's distribution over leaves
	// (nil slice for the term type).
	EntityAff [][][]float64
}

// NumLeaves returns the number of ground-truth leaf topics.
func (t *Truth) NumLeaves() int { return len(t.LeafIdx) }

// LeafName returns the name of ground-truth leaf l.
func (t *Truth) LeafName(l int) string { return t.Nodes[t.LeafIdx[l]].Name }

// TopLevelNames returns the names of the root's children.
func (t *Truth) TopLevelNames() []string {
	out := make([]string, len(t.Root.Children))
	for i, c := range t.Root.Children {
		out[i] = c.Name
	}
	return out
}

// WordAffinity returns the generator's distribution over leaf topics for a
// word; unknown words get a uniform distribution.
func (t *Truth) WordAffinity(word string) []float64 {
	if a, ok := t.wordAff[word]; ok {
		return a
	}
	u := make([]float64, t.NumLeaves())
	linalg.SumTo1(u)
	return u
}

// PhraseAffinity returns the distribution over leaf topics for a phrase:
// the exact generator phrase affinity when known, otherwise the average of
// the word affinities.
func (t *Truth) PhraseAffinity(phrase string) []float64 {
	if a, ok := t.phraseAff[phrase]; ok {
		return a
	}
	words := strings.Fields(phrase)
	acc := make([]float64, t.NumLeaves())
	for _, w := range words {
		linalg.Axpy(1, t.WordAffinity(w), acc)
	}
	linalg.SumTo1(acc)
	return acc
}

// IsGeneratorPhrase reports whether the exact phrase appears in the ground
// truth topic tree.
func (t *Truth) IsGeneratorPhrase(phrase string) bool {
	_, ok := t.phraseAff[phrase]
	return ok
}

// EntityAffinity returns entity i of type x's distribution over leaf topics.
func (t *Truth) EntityAffinity(x core.TypeID, i int) []float64 {
	if int(x) < len(t.EntityAff) && t.EntityAff[x] != nil && t.EntityAff[x][i] != nil {
		return t.EntityAff[x][i]
	}
	u := make([]float64, t.NumLeaves())
	linalg.SumTo1(u)
	return u
}

// leafsUnder returns the indices (into LeafIdx) of leaves under node spec.
func (t *Truth) leafsUnder(spec *TopicSpec) []int {
	want := map[*TopicSpec]bool{}
	for _, l := range spec.Leaves() {
		want[l] = true
	}
	var out []int
	for li, ni := range t.LeafIdx {
		if want[t.Nodes[ni]] {
			out = append(out, li)
		}
	}
	return out
}

// newTruth indexes a spec tree and precomputes word and phrase affinities.
func newTruth(root *TopicSpec) *Truth {
	t := &Truth{Root: root, Nodes: root.Flatten()}
	leafSet := map[*TopicSpec]int{}
	for ni, n := range t.Nodes {
		if len(n.Children) == 0 {
			leafSet[n] = len(t.LeafIdx)
			t.LeafIdx = append(t.LeafIdx, ni)
		}
	}
	nl := len(t.LeafIdx)
	t.wordAff = map[string][]float64{}
	t.phraseAff = map[string][]float64{}
	addMass := func(m map[string][]float64, key string, leaves []int, w float64) {
		a := m[key]
		if a == nil {
			a = make([]float64, nl)
			m[key] = a
		}
		for _, l := range leaves {
			a[l] += w / float64(len(leaves))
		}
	}
	for _, n := range t.Nodes {
		leaves := t.leafsUnder(n)
		for _, w := range n.allWords() {
			addMass(t.wordAff, w, leaves, 1)
		}
		for _, p := range n.Phrases {
			addMass(t.phraseAff, p, leaves, 1)
		}
	}
	for _, a := range t.wordAff {
		linalg.SumTo1(a)
	}
	for _, a := range t.phraseAff {
		linalg.SumTo1(a)
	}
	return t
}

// emitConfig controls token emission for one document.
type emitConfig struct {
	minLen, maxLen int
	bgProb         float64 // probability of a background unigram
	phraseProb     float64 // probability (after bg) of emitting a phrase
	parentProb     float64 // probability a phrase/unigram comes from an ancestor
}

// emit generates tokens for a document whose primary topic is the leaf spec,
// with ancestors providing general vocabulary.
func emit(rng *rand.Rand, leaf *TopicSpec, ancestors []*TopicSpec, cfg emitConfig) []string {
	target := cfg.minLen
	if cfg.maxLen > cfg.minLen {
		target += rng.Intn(cfg.maxLen - cfg.minLen + 1)
	}
	var out []string
	pickNode := func() *TopicSpec {
		if len(ancestors) > 0 && rng.Float64() < cfg.parentProb {
			return ancestors[rng.Intn(len(ancestors))]
		}
		return leaf
	}
	for len(out) < target {
		r := rng.Float64()
		switch {
		case r < cfg.bgProb:
			out = append(out, backgroundUnigrams[rng.Intn(len(backgroundUnigrams))])
		case r < cfg.bgProb+cfg.phraseProb:
			n := pickNode()
			if len(n.Phrases) == 0 {
				n = leaf
			}
			if len(n.Phrases) == 0 {
				out = append(out, n.Unigrams[rng.Intn(len(n.Unigrams))])
				continue
			}
			p := n.Phrases[rng.Intn(len(n.Phrases))]
			out = append(out, strings.Fields(p)...)
		default:
			n := pickNode()
			if len(n.Unigrams) == 0 {
				n = leaf
			}
			out = append(out, n.Unigrams[rng.Intn(len(n.Unigrams))])
		}
	}
	return out
}

// CollapsedNetwork builds the heterogeneous collapsed network (Example 3.1)
// for the dataset, attaching display names. skipSameVenue drops venue-venue
// links (papers have one venue).
func (d *Dataset) CollapsedNetwork(window int) *hin.Network {
	var skips []hin.TypePair
	for x := 1; x < len(d.TypeNames); x++ {
		if d.TypeNames[x] == "venue" {
			skips = append(skips, hin.TypePair{X: core.TypeID(x), Y: core.TypeID(x)})
		}
	}
	n := hin.BuildCollapsed(d.TypeNames, d.NumNodes, d.Docs, hin.BuildOptions{Window: window, SkipPairs: skips})
	for x := range d.Names {
		if d.Names[x] != nil {
			n.Names[x] = d.Names[x]
		}
	}
	if n.Names[0] == nil {
		n.Names[0] = d.Corpus.Vocab.Words()
	}
	return n
}

// DBLPConfig parameterizes the DBLP-like bibliographic generator.
type DBLPConfig struct {
	NumPapers  int
	NumAuthors int
	Seed       int64
	// TitleMin/TitleMax bound title token counts.
	TitleMin, TitleMax int
	// VenueNoise is the probability a paper's area ignores its venue.
	VenueNoise float64
	// AreaOnly restricts generation to a single top-level area, identified
	// by 1-based index (0 = all areas); AreaOnly=1 is the "Database area"
	// dataset of Table 3.2.
	AreaOnly int
}

func (c DBLPConfig) withDefaults() DBLPConfig {
	if c.NumPapers == 0 {
		c.NumPapers = 6000
	}
	if c.NumAuthors == 0 {
		c.NumAuthors = c.NumPapers / 4
	}
	if c.TitleMin == 0 {
		c.TitleMin = 6
	}
	if c.TitleMax == 0 {
		c.TitleMax = 11
	}
	if c.VenueNoise == 0 {
		c.VenueNoise = 0.05
	}
	return c
}

// DBLP generates a bibliographic text-attached heterogeneous network in the
// image of the paper's 20-conference DBLP dataset: term/author/venue node
// types and five link types.
func DBLP(cfg DBLPConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	spec := dblpSpec()
	if cfg.AreaOnly > 0 {
		area := spec.Children[cfg.AreaOnly-1]
		spec = &TopicSpec{Name: spec.Name, Phrases: spec.Phrases, Unigrams: spec.Unigrams,
			Children: []*TopicSpec{area}}
	}
	truth := newTruth(spec)
	nl := truth.NumLeaves()

	// Venues: flatten the per-area lists (restricted if AreaOnly).
	type venueInfo struct {
		name string
		area int
	}
	var venues []venueInfo
	for ai := range spec.Children {
		srcArea := ai
		if cfg.AreaOnly > 0 {
			srcArea = cfg.AreaOnly - 1
		}
		for _, v := range dblpVenues[srcArea] {
			venues = append(venues, venueInfo{v, ai})
		}
	}

	// Authors: primary leaf by round-robin with Zipf-like productivity.
	authorNames := makeNames(cfg.NumAuthors)
	authorLeaf := make([]int, cfg.NumAuthors)
	authorWeight := make([]float64, cfg.NumAuthors)
	leafAuthors := make([][]int, nl)
	for a := 0; a < cfg.NumAuthors; a++ {
		l := a % nl
		authorLeaf[a] = l
		leafAuthors[l] = append(leafAuthors[l], a)
		rank := a/nl + 1
		authorWeight[a] = 1 / float64(rank)
	}

	// Leaves grouped by top-level area for venue-driven topic choice.
	areaLeaves := make([][]int, len(spec.Children))
	for ai, areaSpec := range spec.Children {
		areaLeaves[ai] = truth.leafsUnder(areaSpec)
	}

	// Ancestor chain per leaf (area + root).
	leafAncestors := make([][]*TopicSpec, nl)
	leafSpecOf := make([]*TopicSpec, nl)
	for li, ni := range truth.LeafIdx {
		leafSpecOf[li] = truth.Nodes[ni]
	}
	for ai, areaSpec := range spec.Children {
		for _, li := range areaLeaves[ai] {
			if leafSpecOf[li] == areaSpec {
				leafAncestors[li] = []*TopicSpec{spec}
			} else {
				leafAncestors[li] = []*TopicSpec{areaSpec, spec}
			}
		}
	}

	ecfg := emitConfig{minLen: cfg.TitleMin, maxLen: cfg.TitleMax, bgProb: 0.18, phraseProb: 0.55, parentProb: 0.25}
	ds := &Dataset{
		Corpus:    textkit.NewCorpus(),
		TypeNames: []string{"term", "author", "venue"},
		Names:     [][]string{nil, authorNames, nil},
		Truth:     truth,
	}
	vnames := make([]string, len(venues))
	for i, v := range venues {
		vnames[i] = v.name
	}
	ds.Names[2] = vnames

	sampleAuthors := func(leaf int, k int) []int {
		pool := leafAuthors[leaf]
		if len(pool) == 0 {
			return nil
		}
		total := 0.0
		for _, a := range pool {
			total += authorWeight[a]
		}
		chosen := map[int]bool{}
		var out []int
		for len(out) < k && len(out) < len(pool) {
			r := rng.Float64() * total
			for _, a := range pool {
				r -= authorWeight[a]
				if r <= 0 {
					if !chosen[a] {
						chosen[a] = true
						out = append(out, a)
					}
					break
				}
			}
		}
		return out
	}

	for p := 0; p < cfg.NumPapers; p++ {
		vi := rng.Intn(len(venues))
		area := venues[vi].area
		if rng.Float64() < cfg.VenueNoise {
			area = rng.Intn(len(spec.Children))
		}
		leaf := areaLeaves[area][rng.Intn(len(areaLeaves[area]))]
		tokens := emit(rng, leafSpecOf[leaf], leafAncestors[leaf], ecfg)
		ds.Corpus.AddTokens(tokens)
		na := 2 + rng.Intn(3)
		authors := sampleAuthors(leaf, na)
		doc := hin.DocRecord{
			Tokens:   ds.Corpus.Docs[len(ds.Corpus.Docs)-1].Tokens,
			Entities: map[core.TypeID][]int{1: authors, 2: {vi}},
		}
		ds.Docs = append(ds.Docs, doc)
		truth.DocLeaf = append(truth.DocLeaf, leaf)
		truth.DocLabel = append(truth.DocLabel, area)
	}
	ds.NumNodes = []int{ds.Corpus.Vocab.Size(), cfg.NumAuthors, len(venues)}

	// Entity affinities.
	truth.EntityAff = make([][][]float64, 3)
	truth.EntityAff[1] = make([][]float64, cfg.NumAuthors)
	for a := 0; a < cfg.NumAuthors; a++ {
		aff := make([]float64, nl)
		aff[authorLeaf[a]] = 1
		truth.EntityAff[1][a] = aff
	}
	truth.EntityAff[2] = make([][]float64, len(venues))
	for vi, v := range venues {
		aff := make([]float64, nl)
		for _, l := range areaLeaves[v.area] {
			aff[l] = 1
		}
		linalg.SumTo1(aff)
		truth.EntityAff[2][vi] = aff
	}
	return ds
}

// NewsConfig parameterizes the NEWS-like generator.
type NewsConfig struct {
	NumArticles int
	Seed        int64
	// Stories restricts generation to the first n stories (0 = all 16); the
	// paper's "4 topics subset" uses 4 (Bill Clinton, Boston Marathon,
	// Earthquake, Egypt — the first four in our list).
	Stories int
	// ExtractionNoise is the probability an attached entity comes from the
	// wrong story, simulating the information-extraction noise the paper
	// observes in NEWS entity links.
	ExtractionNoise float64
}

func (c NewsConfig) withDefaults() NewsConfig {
	if c.NumArticles == 0 {
		c.NumArticles = 6000
	}
	if c.Stories == 0 {
		c.Stories = len(newsStories)
	}
	if c.ExtractionNoise == 0 {
		c.ExtractionNoise = 0.10
	}
	return c
}

// News generates a news text-attached heterogeneous network with term,
// person and location node types (six link types).
func News(cfg NewsConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	stories := newsStories[:cfg.Stories]
	full := newsSpec()
	spec := &TopicSpec{Name: full.Name, Unigrams: full.Unigrams, Children: full.Children[:cfg.Stories]}
	truth := newTruth(spec)
	nl := truth.NumLeaves()

	// Entity pools: persons and locations, per story.
	var personNames, placeNames []string
	personStory := map[int]int{}
	placeStory := map[int]int{}
	personsByStory := make([][]int, len(stories))
	placesByStory := make([][]int, len(stories))
	seenPerson := map[string]int{}
	seenPlace := map[string]int{}
	for si, s := range stories {
		for _, p := range s.Persons {
			id, ok := seenPerson[p]
			if !ok {
				id = len(personNames)
				personNames = append(personNames, p)
				seenPerson[p] = id
				personStory[id] = si
			}
			personsByStory[si] = append(personsByStory[si], id)
		}
		for _, p := range s.Places {
			id, ok := seenPlace[p]
			if !ok {
				id = len(placeNames)
				placeNames = append(placeNames, p)
				seenPlace[p] = id
				placeStory[id] = si
			}
			placesByStory[si] = append(placesByStory[si], id)
		}
	}

	storyLeaves := make([][]int, len(stories))
	for si, storySpec := range spec.Children {
		storyLeaves[si] = truth.leafsUnder(storySpec)
	}
	leafSpecOf := make([]*TopicSpec, nl)
	leafStory := make([]int, nl)
	leafAncestors := make([][]*TopicSpec, nl)
	for li, ni := range truth.LeafIdx {
		leafSpecOf[li] = truth.Nodes[ni]
	}
	for si, storySpec := range spec.Children {
		for _, li := range storyLeaves[si] {
			leafStory[li] = si
			leafAncestors[li] = []*TopicSpec{storySpec, spec}
		}
	}

	ecfg := emitConfig{minLen: 7, maxLen: 13, bgProb: 0.15, phraseProb: 0.5, parentProb: 0.3}
	ds := &Dataset{
		Corpus:    textkit.NewCorpus(),
		TypeNames: []string{"term", "person", "location"},
		Names:     [][]string{nil, personNames, placeNames},
		Truth:     truth,
	}
	pickEntities := func(pool []int, all []string, k int) []int {
		var out []int
		seen := map[int]bool{}
		for len(out) < k {
			var id int
			if rng.Float64() < cfg.ExtractionNoise {
				id = rng.Intn(len(all))
			} else {
				id = pool[rng.Intn(len(pool))]
			}
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		return out
	}
	for a := 0; a < cfg.NumArticles; a++ {
		si := rng.Intn(len(stories))
		leaf := storyLeaves[si][rng.Intn(len(storyLeaves[si]))]
		tokens := emit(rng, leafSpecOf[leaf], leafAncestors[leaf], ecfg)
		ds.Corpus.AddTokens(tokens)
		doc := hin.DocRecord{
			Tokens: ds.Corpus.Docs[len(ds.Corpus.Docs)-1].Tokens,
			Entities: map[core.TypeID][]int{
				1: pickEntities(personsByStory[si], personNames, 1+rng.Intn(3)),
				2: pickEntities(placesByStory[si], placeNames, 1+rng.Intn(3)),
			},
		}
		ds.Docs = append(ds.Docs, doc)
		truth.DocLeaf = append(truth.DocLeaf, leaf)
		truth.DocLabel = append(truth.DocLabel, si)
	}
	ds.NumNodes = []int{ds.Corpus.Vocab.Size(), len(personNames), len(placeNames)}

	truth.EntityAff = make([][][]float64, 3)
	truth.EntityAff[1] = make([][]float64, len(personNames))
	for id := range personNames {
		aff := make([]float64, nl)
		for _, l := range storyLeaves[personStory[id]] {
			aff[l] = 1
		}
		linalg.SumTo1(aff)
		truth.EntityAff[1][id] = aff
	}
	truth.EntityAff[2] = make([][]float64, len(placeNames))
	for id := range placeNames {
		aff := make([]float64, nl)
		for _, l := range storyLeaves[placeStory[id]] {
			aff[l] = 1
		}
		linalg.SumTo1(aff)
		truth.EntityAff[2][id] = aff
	}
	return ds
}

// TextConfig parameterizes the plain-text generators (arXiv titles and the
// long-text corpora of Tables 4.6-4.8).
type TextConfig struct {
	NumDocs        int
	Seed           int64
	DocMin, DocMax int
}

func (c TextConfig) withDefaults(minLen, maxLen, docs int) TextConfig {
	if c.NumDocs == 0 {
		c.NumDocs = docs
	}
	if c.DocMin == 0 {
		c.DocMin = minLen
	}
	if c.DocMax == 0 {
		c.DocMax = maxLen
	}
	return c
}

// textDataset emits a flat-topic labeled corpus from the children of spec.
func textDataset(spec *TopicSpec, cfg TextConfig, bg, phrase float64) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	truth := newTruth(spec)
	nl := truth.NumLeaves()
	leafSpecOf := make([]*TopicSpec, nl)
	leafAncestors := make([][]*TopicSpec, nl)
	leafLabel := make([]int, nl)
	for li, ni := range truth.LeafIdx {
		leafSpecOf[li] = truth.Nodes[ni]
	}
	for ci, child := range spec.Children {
		for _, li := range truth.leafsUnder(child) {
			leafLabel[li] = ci
			if leafSpecOf[li] == child {
				leafAncestors[li] = []*TopicSpec{spec}
			} else {
				leafAncestors[li] = []*TopicSpec{child, spec}
			}
		}
	}
	ecfg := emitConfig{minLen: cfg.DocMin, maxLen: cfg.DocMax, bgProb: bg, phraseProb: phrase, parentProb: 0.15}
	ds := &Dataset{
		Corpus:    textkit.NewCorpus(),
		TypeNames: []string{"term"},
		Names:     [][]string{nil},
		Truth:     truth,
	}
	for d := 0; d < cfg.NumDocs; d++ {
		leaf := rng.Intn(nl)
		tokens := emit(rng, leafSpecOf[leaf], leafAncestors[leaf], ecfg)
		ds.Corpus.AddTokens(tokens)
		ds.Docs = append(ds.Docs, hin.DocRecord{Tokens: ds.Corpus.Docs[len(ds.Corpus.Docs)-1].Tokens})
		truth.DocLeaf = append(truth.DocLeaf, leaf)
		truth.DocLabel = append(truth.DocLabel, leafLabel[leaf])
	}
	ds.NumNodes = []int{ds.Corpus.Vocab.Size()}
	truth.EntityAff = make([][][]float64, 1)
	return ds
}

// Arxiv generates the labeled 5-subfield physics title corpus (§4.4.1).
func Arxiv(cfg TextConfig) *Dataset {
	return textDataset(arxivSpec(), cfg.withDefaults(6, 11, 4000), 0.18, 0.5)
}

// LongTextDomain selects the long-text corpus flavor.
type LongTextDomain int

// Long-text domains replicated from the paper's scalability evaluation.
const (
	DomainAbstracts LongTextDomain = iota // DBLP abstracts (Table 4.6)
	DomainAPNews                          // AP news articles (Table 4.7)
	DomainYelp                            // Yelp reviews (Table 4.8)
)

// LongText generates a long-document corpus for the given domain.
func LongText(domain LongTextDomain, cfg TextConfig) *Dataset {
	switch domain {
	case DomainAPNews:
		return textDataset(apNewsSpec(), cfg.withDefaults(40, 90, 1500), 0.3, 0.4)
	case DomainYelp:
		return textDataset(yelpSpec(), cfg.withDefaults(30, 70, 2000), 0.35, 0.4)
	default:
		return textDataset(abstractsSpec(), cfg.withDefaults(40, 100, 1500), 0.3, 0.4)
	}
}

// DBLPTitles generates a text-only CS title corpus (the "DBLP titles"
// dataset of Section 4.4.2) using the full CS topic tree.
func DBLPTitles(cfg TextConfig) *Dataset {
	return textDataset(dblpSpec(), cfg.withDefaults(6, 11, 5000), 0.18, 0.55)
}
