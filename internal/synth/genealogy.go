package synth

import "math/rand"

// GenealogyPaper is one publication record of the temporal collaboration
// network: the publication year, the author ids, and a venue id (used by the
// supervised relation model's heterogeneous features).
type GenealogyPaper struct {
	Year    int
	Authors []int
	Venue   int
}

// Genealogy is a simulated academic-genealogy dataset: a publication network
// plus the ground-truth advisor forest, standing in for the paper's manually
// labeled DBLP advisor-advisee data (Section 6.1.6).
type Genealogy struct {
	Papers      []GenealogyPaper
	AuthorNames []string
	NumAuthors  int
	NumVenues   int
	// AdvisorOf[a] is a's ground-truth advisor id, or -1 when a entered the
	// field independently (a root of the advising forest).
	AdvisorOf []int
	// AdviseStart and AdviseEnd give the true advising interval for advised
	// authors; zero for roots.
	AdviseStart, AdviseEnd []int
}

// GenealogyConfig parameterizes the simulation.
type GenealogyConfig struct {
	Seed        int64
	SeedFaculty int
	StartYear   int
	Years       int
	// TakeProb is the per-year probability a faculty member with capacity
	// takes a new student.
	TakeProb float64
	// FacultyProb is the probability a graduate becomes faculty.
	FacultyProb float64
	// PeerProb is the per-year probability a faculty member co-authors with
	// a random peer (confounder links not explained by advising).
	PeerProb float64
	// LabmateOnlyProb is the per-year probability a student publishes with a
	// senior labmate and WITHOUT the advisor — the confounder that makes
	// senior labmates look advisor-like to local heuristics, while TPFG's
	// time constraints rule them out (a labmate still being advised cannot
	// advise).
	LabmateOnlyProb float64
	// CrossGroupProb is the per-year probability a student co-authors with
	// a faculty member other than the advisor (external collaborations).
	CrossGroupProb float64
	// MentorProb is the probability a new student enters with a pre-PhD
	// mentor: two first-year papers with a different senior faculty member,
	// published before the first advisor co-publication. Earliest-senior-
	// collaborator rules misattribute these students.
	MentorProb float64
}

func (c GenealogyConfig) withDefaults() GenealogyConfig {
	if c.SeedFaculty == 0 {
		c.SeedFaculty = 20
	}
	if c.StartYear == 0 {
		c.StartYear = 1970
	}
	if c.Years == 0 {
		c.Years = 42
	}
	if c.TakeProb == 0 {
		c.TakeProb = 0.45
	}
	if c.FacultyProb == 0 {
		c.FacultyProb = 0.35
	}
	if c.PeerProb == 0 {
		c.PeerProb = 0.3
	}
	if c.LabmateOnlyProb == 0 {
		c.LabmateOnlyProb = 0.8
	}
	if c.CrossGroupProb == 0 {
		c.CrossGroupProb = 0.25
	}
	if c.MentorProb == 0 {
		c.MentorProb = 0.35
	}
	return c
}

type person struct {
	id          int
	isFaculty   bool
	activeFrom  int   // first publication year
	students    []int // current student ids
	venues      []int // preferred venues
	gradYear    int   // for students: expected graduation year
	advisor     int
	adviseStart int
	inIndustry  bool
}

// NewGenealogy simulates academic careers: faculty take students, co-publish
// with them during the advising interval, students graduate and a fraction
// become faculty themselves; faculty also co-author with peers, creating
// collaboration links not explained by advising. All randomness is driven by
// the seed.
func NewGenealogy(cfg GenealogyConfig) *Genealogy {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	const numVenues = 15
	var people []*person
	newPerson := func(year int, advisor int) *person {
		p := &person{id: len(people), activeFrom: year, advisor: advisor}
		nv := 2 + rng.Intn(2)
		for i := 0; i < nv; i++ {
			p.venues = append(p.venues, rng.Intn(numVenues))
		}
		people = append(people, p)
		return p
	}
	g := &Genealogy{NumVenues: numVenues}
	addPaper := func(year int, authors []int, venue int) {
		g.Papers = append(g.Papers, GenealogyPaper{Year: year, Authors: authors, Venue: venue})
	}

	// Seed faculty enter over the first decade.
	for i := 0; i < cfg.SeedFaculty; i++ {
		p := newPerson(cfg.StartYear+rng.Intn(10), -1)
		p.isFaculty = true
	}

	endYear := cfg.StartYear + cfg.Years
	for year := cfg.StartYear; year < endYear; year++ {
		n := len(people) // snapshot: newcomers join next year
		for idx := 0; idx < n; idx++ {
			p := people[idx]
			if p.activeFrom > year {
				continue
			}
			if p.isFaculty {
				// A faculty member always publishes in the first active
				// year, so advisors are never "junior" to their students.
				if year == p.activeFrom {
					addPaper(year, []int{p.id}, p.venues[rng.Intn(len(p.venues))])
				}
				// Faculty publish with current students.
				for _, sid := range p.students {
					authors := []int{sid, p.id}
					// Often a labmate joins.
					if len(p.students) > 1 && rng.Float64() < 0.7 {
						mate := p.students[rng.Intn(len(p.students))]
						if mate != sid {
							authors = append(authors, mate)
						}
					}
					addPaper(year, authors, p.venues[rng.Intn(len(p.venues))])
					// Confounder: a paper with a senior labmate, advisor
					// absent. The senior labmate is the advisor-lookalike.
					if rng.Float64() < cfg.LabmateOnlyProb {
						var senior []int
						for _, mate := range p.students {
							if mate != sid && people[mate].activeFrom < people[sid].activeFrom {
								senior = append(senior, mate)
							}
						}
						if len(senior) > 0 {
							mate := senior[rng.Intn(len(senior))]
							addPaper(year, []int{sid, mate}, p.venues[rng.Intn(len(p.venues))])
						}
					}
					// Confounder: cross-group collaboration with another
					// faculty member, advisor absent.
					if rng.Float64() < cfg.CrossGroupProb && n > 1 {
						other := people[rng.Intn(n)]
						if other.id != p.id && other.id != sid && other.isFaculty && other.activeFrom <= year {
							addPaper(year, []int{sid, other.id}, other.venues[rng.Intn(len(other.venues))])
						}
					}
				}
				// Peer collaboration (confounders).
				if rng.Float64() < cfg.PeerProb && n > 1 {
					peer := people[rng.Intn(n)]
					if peer.id != p.id && peer.isFaculty && peer.activeFrom <= year {
						addPaper(year, []int{p.id, peer.id}, p.venues[rng.Intn(len(p.venues))])
					}
				}
				// Solo faculty paper occasionally.
				if rng.Float64() < 0.25 {
					addPaper(year, []int{p.id}, p.venues[rng.Intn(len(p.venues))])
				}
				// Take a new student.
				if len(p.students) < 4 && rng.Float64() < cfg.TakeProb && year < endYear-3 {
					s := newPerson(year, p.id)
					s.gradYear = year + 4 + rng.Intn(3)
					if s.gradYear > endYear {
						s.gradYear = endYear
					}
					s.adviseStart = year
					// Students adopt mostly the advisor's venues.
					s.venues = append([]int(nil), p.venues...)
					p.students = append(p.students, s.id)
					// Pre-PhD mentor confounder: two first-year papers with
					// another senior faculty member, before any advisor
					// co-publication.
					if rng.Float64() < cfg.MentorProb {
						m := people[rng.Intn(n)]
						if m.isFaculty && m.id != p.id && m.activeFrom+2 <= year {
							for q := 0; q < 2; q++ {
								addPaper(year, []int{s.id, m.id}, m.venues[rng.Intn(len(m.venues))])
							}
						}
					}
				}
				// Graduate students whose time is up.
				var remaining []int
				for _, sid := range p.students {
					s := people[sid]
					if year >= s.gradYear {
						if rng.Float64() < cfg.FacultyProb {
							s.isFaculty = true
						} else {
							s.inIndustry = true
						}
						continue
					}
					remaining = append(remaining, sid)
				}
				p.students = remaining
			} else if p.inIndustry {
				// Industry researchers publish occasionally with random
				// co-authors, adding collaboration noise.
				if rng.Float64() < 0.15 && n > 1 {
					other := people[rng.Intn(n)]
					if other.id != p.id && other.activeFrom <= year {
						addPaper(year, []int{p.id, other.id}, p.venues[rng.Intn(len(p.venues))])
					}
				}
			}
		}
	}

	g.NumAuthors = len(people)
	g.AuthorNames = makeNames(g.NumAuthors)
	g.AdvisorOf = make([]int, g.NumAuthors)
	g.AdviseStart = make([]int, g.NumAuthors)
	g.AdviseEnd = make([]int, g.NumAuthors)
	for _, p := range people {
		g.AdvisorOf[p.id] = p.advisor
		if p.advisor >= 0 {
			g.AdviseStart[p.id] = p.adviseStart
			g.AdviseEnd[p.id] = p.gradYear
		}
	}
	return g
}

// NumAdvised returns how many authors have a ground-truth advisor.
func (g *Genealogy) NumAdvised() int {
	n := 0
	for _, a := range g.AdvisorOf {
		if a >= 0 {
			n++
		}
	}
	return n
}
