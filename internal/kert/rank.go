package kert

import (
	"math"
	"sort"

	"lesm/internal/core"
	"lesm/internal/textkit"
)

// Variant selects which criteria participate in the ranking function,
// reproducing the ablations of Section 4.4.1.
type Variant struct {
	// UsePopularity multiplies by kappa_pop (off = the KERT-pop ablation).
	UsePopularity bool
	// UsePurity includes the purity term with weight 1-omega (off = KERT-pur,
	// i.e. omega forced to 1).
	UsePurity bool
	// UseConcordance includes the concordance term with weight omega
	// (off = KERT-con, i.e. omega forced to 0).
	UseConcordance bool
	// UseCompleteness applies the gamma filter (off = KERT-com).
	UseCompleteness bool
}

// FullKERT enables all four criteria.
var FullKERT = Variant{true, true, true, true}

// scores holds a pattern's criterion values for one topic.
type scores struct {
	pop, pur, con, com float64
}

func (r *Result) criterion(pi, t int) scores {
	p := r.Patterns[pi]
	var s scores
	ft := p.Topical[t]
	s.pop = ft / r.Nt[t]
	// Purity: contrast against the worst mixing topic (Eq. 4.5).
	worst := math.Inf(-1)
	for u := range r.topics {
		if u == t {
			continue
		}
		mix := (ft + p.Topical[u]) / r.Njoint[t][u]
		if mix > worst {
			worst = mix
		}
	}
	if ft > 0 && worst > 0 {
		s.pur = math.Log(ft/r.Nt[t]) - math.Log(worst)
	} else if ft > 0 {
		s.pur = 0
	} else {
		s.pur = math.Inf(-1)
	}
	// Concordance (Eq. 4.1), on document-frequency probabilities.
	n := float64(r.NumDocs)
	s.con = math.Log(float64(p.Count) / n)
	for _, w := range p.Words {
		s.con -= math.Log(float64(r.wordCount[w]) / n)
	}
	// Completeness (Eq. 4.2), precomputed over one-word extensions.
	s.com = r.com[pi]
	return s
}

// computeCompleteness fills r.com: for every pattern P,
// 1 - max_{P' = P + one word, P' frequent} f(P')/f(P).
func (r *Result) computeCompleteness() {
	r.com = make([]float64, len(r.Patterns))
	maxExt := make([]float64, len(r.Patterns))
	sub := make([]int, 0, r.cfg.MaxLen)
	for qi := range r.Patterns {
		q := r.Patterns[qi]
		if len(q.Words) < 2 {
			continue
		}
		for drop := range q.Words {
			sub = sub[:0]
			for i, w := range q.Words {
				if i != drop {
					sub = append(sub, w)
				}
			}
			if pi, ok := r.index[setKey(sub)]; ok {
				if f := float64(q.Count) / float64(r.Patterns[pi].Count); f > maxExt[pi] {
					maxExt[pi] = f
				}
			}
		}
	}
	for pi := range r.com {
		r.com[pi] = 1 - maxExt[pi]
	}
}

// Quality computes the topical phrase quality of pattern pi in topic t under
// the given variant (Eq. 4.6).
func (r *Result) Quality(pi, t int, v Variant) float64 {
	s := r.criterion(pi, t)
	if v.UseCompleteness && s.com <= r.cfg.Gamma {
		return 0
	}
	inner := 0.0
	switch {
	case v.UsePurity && v.UseConcordance:
		inner = (1-r.cfg.Omega)*s.pur + r.cfg.Omega*s.con
	case v.UsePurity:
		inner = s.pur
	case v.UseConcordance:
		inner = s.con
	default:
		inner = 1
	}
	if v.UsePopularity {
		return s.pop * inner
	}
	return inner
}

// ContentTopics returns the number of rankable topics (background excluded).
func (r *Result) ContentTopics() int {
	k := len(r.topics)
	if r.cfg.Background {
		k--
	}
	return k
}

// Rank returns the topN patterns of topic t under the variant, rendered with
// the vocabulary.
func (r *Result) Rank(t int, v Variant, vocab *textkit.Vocabulary, topN int) []core.RankedPhrase {
	type cand struct {
		pi    int
		score float64
	}
	var cands []cand
	for pi := range r.Patterns {
		if r.Patterns[pi].Topical[t] < float64(r.cfg.MinSupport) {
			continue
		}
		sc := r.Quality(pi, t, v)
		if sc <= 0 || math.IsInf(sc, 0) || math.IsNaN(sc) {
			continue
		}
		cands = append(cands, cand{pi, sc})
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		return setKey(r.Patterns[cands[a].pi].Words) < setKey(r.Patterns[cands[b].pi].Words)
	})
	if topN > 0 && len(cands) > topN {
		cands = cands[:topN]
	}
	out := make([]core.RankedPhrase, len(cands))
	for i, c := range cands {
		p := r.Patterns[c.pi]
		out[i] = core.RankedPhrase{
			Words:   p.Display,
			Display: renderWords(p.Display, vocab),
			Score:   c.score,
		}
	}
	return out
}

// RankAll ranks every content topic.
func (r *Result) RankAll(v Variant, vocab *textkit.Vocabulary, topN int) [][]core.RankedPhrase {
	out := make([][]core.RankedPhrase, r.ContentTopics())
	for t := range out {
		out[t] = r.Rank(t, v, vocab, topN)
	}
	return out
}

func renderWords(words []int, vocab *textkit.Vocabulary) string {
	s := ""
	for i, w := range words {
		if i > 0 {
			s += " "
		}
		s += vocab.Word(w)
	}
	return s
}

// KpRel ranks patterns by the relevance-only baseline of Zhao et al.
// (Section 4.4.1): per-word topical relevance combined multiplicatively over
// the pattern's constituents, which induces the unigram bias the paper
// reports.
func (r *Result) KpRel(t int, vocab *textkit.Vocabulary, topN int) []core.RankedPhrase {
	return r.kpBaseline(t, vocab, topN, false)
}

// KpRelInt ranks with the kpRelInt* variant: kpRel multiplied by an
// interestingness factor reimplemented as the pattern's relative corpus
// frequency (the paper's footnote 3 substitution for re-tweets).
func (r *Result) KpRelInt(t int, vocab *textkit.Vocabulary, topN int) []core.RankedPhrase {
	return r.kpBaseline(t, vocab, topN, true)
}

func (r *Result) kpBaseline(t int, vocab *textkit.Vocabulary, topN int, interest bool) []core.RankedPhrase {
	phi := r.topics[t].Phi
	// Global word distribution for the contrast term.
	global := make([]float64, len(phi))
	total := 0.0
	for w, c := range r.wordCount {
		if w < len(global) {
			global[w] = float64(c)
			total += float64(c)
		}
	}
	for w := range global {
		global[w] /= math.Max(total, 1)
	}
	rel := func(w int) float64 {
		if w >= len(phi) || phi[w] <= 0 || global[w] <= 0 {
			return 1e-12
		}
		v := phi[w] * math.Log(phi[w]/global[w])
		if v < 1e-12 {
			return 1e-12
		}
		return v
	}
	type cand struct {
		pi    int
		score float64
	}
	var cands []cand
	for pi := range r.Patterns {
		p := r.Patterns[pi]
		if p.Topical[t] < float64(r.cfg.MinSupport) {
			continue
		}
		sc := 1.0
		for _, w := range p.Words {
			sc *= rel(w)
		}
		if interest {
			sc *= float64(p.Count) / float64(r.NumDocs)
		}
		cands = append(cands, cand{pi, sc})
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		return setKey(r.Patterns[cands[a].pi].Words) < setKey(r.Patterns[cands[b].pi].Words)
	})
	if topN > 0 && len(cands) > topN {
		cands = cands[:topN]
	}
	out := make([]core.RankedPhrase, len(cands))
	for i, c := range cands {
		p := r.Patterns[c.pi]
		out[i] = core.RankedPhrase{Words: p.Display, Display: renderWords(p.Display, vocab), Score: c.score}
	}
	return out
}
