package kert

import (
	"encoding/binary"
	"sort"

	"lesm/internal/lda"
)

// Topic is one topic's parameters from the upstream topic model: a word
// distribution and a corpus share (Section 4.2.2's phi and rho).
type Topic struct {
	Phi []float64
	Rho float64
}

// TopicsFromLDA converts a fitted LDA model into KERT topic parameters; the
// background topic, when present, comes last (mark it with
// Config.Background so that it joins attribution but not ranking).
func TopicsFromLDA(m *lda.Model) []Topic {
	out := make([]Topic, len(m.Phi))
	for k := range m.Phi {
		out[k] = Topic{Phi: m.Phi[k], Rho: m.Rho[k]}
	}
	return out
}

// Config parameterizes mining and ranking.
type Config struct {
	// MinSupport is both the pattern frequency threshold and the topical
	// frequency threshold mu (default 5).
	MinSupport int
	// MaxLen caps pattern size (default 4).
	MaxLen int
	// Gamma is the completeness filter threshold (default 0.5); 0 keeps all
	// closed patterns (the KERT-com ablation).
	Gamma float64
	// Omega mixes purity (1-omega) and concordance (omega) inside the
	// quality function (default 0.5).
	Omega float64
	// Background marks the last entry of the topic slice as a background
	// topic: it takes part in frequency attribution and purity contrast but
	// is not ranked.
	Background bool
}

func (c Config) withDefaults() Config {
	if c.MinSupport == 0 {
		c.MinSupport = 5
	}
	if c.MaxLen == 0 {
		c.MaxLen = 4
	}
	if c.Gamma == 0 {
		c.Gamma = 0.5
	}
	if c.Omega == 0 {
		c.Omega = 0.5
	}
	return c
}

// Pattern is a mined frequent word-set with its topical attribution.
type Pattern struct {
	// Words in canonical (sorted-id) order; Display gives the natural
	// surface order (mean in-document position).
	Words   []int
	Display []int
	// Count is the number of supporting documents, f(P).
	Count int
	// Topical[t] is the estimated topical frequency f_t(P) (Eq. 4.3).
	Topical []float64
}

// Result holds mined patterns plus the corpus statistics the ranking
// criteria need.
type Result struct {
	cfg      Config
	topics   []Topic
	Patterns []Pattern
	index    map[string]int // canonical key -> index in Patterns
	NumDocs  int
	// Nt[t] is the number of documents containing at least one frequent
	// topic-t phrase (the popularity denominator, Eq. 4.4).
	Nt []float64
	// Njoint[t][u] = |docs with a frequent topic-t phrase OR topic-u phrase|
	// (the purity denominator N_{t,t'}, Eq. 4.5).
	Njoint [][]float64
	// wordCount[v] is the document frequency of word v.
	wordCount map[int]int
	// com[pi] is the precomputed completeness score of pattern pi (Eq. 4.2).
	com []float64
}

func setKey(words []int) string {
	b := make([]byte, 4*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(w))
	}
	return string(b)
}

// Mine extracts frequent word-set patterns from short documents and
// attributes their frequency to the given topics.
func Mine(docs [][]int, topics []Topic, cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{cfg: cfg, topics: topics, NumDocs: len(docs), index: map[string]int{}, wordCount: map[int]int{}}

	// Distinct sorted word sets per document.
	bags := make([][]int, len(docs))
	for d, doc := range docs {
		seen := map[int]bool{}
		var bag []int
		for _, w := range doc {
			if !seen[w] {
				seen[w] = true
				bag = append(bag, w)
			}
		}
		sort.Ints(bag)
		bags[d] = bag
		for _, w := range bag {
			res.wordCount[w]++
		}
	}

	// Level-wise Apriori with prefix pruning over sorted bags.
	frequent := map[string]int{} // all frequent patterns, any level
	prevLevel := map[string]bool{}
	for w, c := range res.wordCount {
		if c >= cfg.MinSupport {
			prevLevel[setKey([]int{w})] = true
			frequent[setKey([]int{w})] = c
		}
	}
	cur := make([]int, 0, cfg.MaxLen)
	for n := 2; n <= cfg.MaxLen && len(prevLevel) > 0; n++ {
		level := map[string]int{}
		for _, bag := range bags {
			// Filter the bag to frequent unigrams to shrink enumeration.
			var items []int
			for _, w := range bag {
				if res.wordCount[w] >= cfg.MinSupport {
					items = append(items, w)
				}
			}
			if len(items) < n {
				continue
			}
			var rec func(start int)
			rec = func(start int) {
				if len(cur) == n {
					level[setKey(cur)]++
					return
				}
				for i := start; i < len(items); i++ {
					cur = append(cur, items[i])
					// Prefix pruning: the current (partial) set must be a
					// frequent pattern of its size before extension.
					if len(cur) < n {
						if len(cur) == 1 || prevOK(frequent, cur, cfg.MinSupport) {
							rec(i + 1)
						}
					} else if prevOK(frequent, cur[:len(cur)-1], cfg.MinSupport) {
						level[setKey(cur)]++
					}
					cur = cur[:len(cur)-1]
				}
			}
			rec(0)
		}
		next := map[string]bool{}
		for k, c := range level {
			if c >= cfg.MinSupport {
				frequent[k] = c
				next[k] = true
			}
		}
		prevLevel = next
	}

	// Materialize patterns with topical attribution (Eq. 4.3).
	keys := make([]string, 0, len(frequent))
	for k := range frequent {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		words := decodeSet(k)
		p := Pattern{Words: words, Count: frequent[k]}
		p.Topical = attribute(float64(p.Count), words, topics)
		res.index[k] = len(res.Patterns)
		res.Patterns = append(res.Patterns, p)
	}

	// Second pass: display order and the Nt / Njoint statistics.
	res.computeDocStats(bags, docs)
	res.computeCompleteness()
	return res
}

func prevOK(frequent map[string]int, cur []int, mu int) bool {
	c, ok := frequent[setKey(cur)]
	return ok && c >= mu
}

func decodeSet(k string) []int {
	out := make([]int, len(k)/4)
	for i := range out {
		out[i] = int(binary.LittleEndian.Uint32([]byte(k[4*i : 4*i+4])))
	}
	return out
}

// attribute implements Eq. 4.3: f_t(P) = f(P) * rho_t prod phi_t(v) /
// sum_c rho_c prod phi_c(v).
func attribute(f float64, words []int, topics []Topic) []float64 {
	shares := make([]float64, len(topics))
	total := 0.0
	for t, tp := range topics {
		p := tp.Rho
		for _, w := range words {
			if w < len(tp.Phi) {
				p *= tp.Phi[w]
			} else {
				p = 0
			}
		}
		shares[t] = p
		total += p
	}
	out := make([]float64, len(topics))
	if total <= 0 {
		return out
	}
	for t := range out {
		out[t] = f * shares[t] / total
	}
	return out
}

// computeDocStats fills display orders, Nt and Njoint.
func (r *Result) computeDocStats(bags [][]int, docs [][]int) {
	k := len(r.topics)
	posSum := make([][]float64, len(r.Patterns))
	posCnt := make([]float64, len(r.Patterns))
	for i := range posSum {
		posSum[i] = make([]float64, len(r.Patterns[i].Words))
	}
	r.Nt = make([]float64, k)
	r.Njoint = make([][]float64, k)
	for t := range r.Njoint {
		r.Njoint[t] = make([]float64, k)
	}
	mu := float64(r.cfg.MinSupport)
	for d, bag := range bags {
		// First word positions in the original document.
		firstPos := map[int]int{}
		for i, w := range docs[d] {
			if _, ok := firstPos[w]; !ok {
				firstPos[w] = i
			}
		}
		mask := make([]bool, k)
		// Enumerate the doc's frequent patterns by subset recursion bounded
		// by the pattern index.
		var cur []int
		var rec func(start int)
		rec = func(start int) {
			if len(cur) > 0 {
				pi, ok := r.index[setKey(cur)]
				if !ok {
					return // not frequent: no superset is frequent either
				}
				for wi, w := range cur {
					posSum[pi][wi] += float64(firstPos[w])
				}
				posCnt[pi]++
				for t := 0; t < k; t++ {
					if r.Patterns[pi].Topical[t] >= mu {
						mask[t] = true
					}
				}
			}
			if len(cur) == r.cfg.MaxLen {
				return
			}
			for i := start; i < len(bag); i++ {
				cur = append(cur, bag[i])
				rec(i + 1)
				cur = cur[:len(cur)-1]
			}
		}
		rec(0)
		for t := 0; t < k; t++ {
			if mask[t] {
				r.Nt[t]++
			}
			for u := 0; u < k; u++ {
				if mask[t] || mask[u] {
					r.Njoint[t][u]++
				}
			}
		}
	}
	// Display order: sort words by mean first position.
	for pi := range r.Patterns {
		p := &r.Patterns[pi]
		type wp struct {
			w   int
			pos float64
		}
		ws := make([]wp, len(p.Words))
		for i, w := range p.Words {
			pos := 0.0
			if posCnt[pi] > 0 {
				pos = posSum[pi][i] / posCnt[pi]
			}
			ws[i] = wp{w, pos}
		}
		sort.SliceStable(ws, func(a, b int) bool { return ws[a].pos < ws[b].pos })
		p.Display = make([]int, len(ws))
		for i, w := range ws {
			p.Display[i] = w.w
		}
	}
	// Guard against zero denominators.
	for t := 0; t < k; t++ {
		if r.Nt[t] == 0 {
			r.Nt[t] = 1
		}
		for u := 0; u < k; u++ {
			if r.Njoint[t][u] == 0 {
				r.Njoint[t][u] = 1
			}
		}
	}
}
