// Package kert implements KERT (Section 4.2): topical phrase mining for
// short, content-representative text. Frequent word-set patterns are mined
// from the documents, their frequency is distributed over topics with the
// topic model (Eq. 4.3), and phrases are ranked by combining the four
// criteria of Section 4.1 — popularity, purity, concordance and completeness
// (Eq. 4.1-4.6).
//
// The package also provides the kpRel and kpRelInt* ranking baselines of
// Zhao et al. used in the paper's comparison (Section 4.4.1).
package kert
