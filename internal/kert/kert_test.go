package kert

import (
	"math"
	"strings"
	"testing"

	"lesm/internal/lda"
	"lesm/internal/synth"
	"lesm/internal/textkit"
)

// miniSetup builds a tiny two-topic corpus where topic 0 contains the
// recurring phrase {support, vector, machines} and topic 1 the phrase
// {query, processing}.
func miniSetup() ([][]int, []Topic, *textkit.Vocabulary) {
	v := textkit.NewVocabulary()
	w := func(s string) int { return v.Add(s) }
	sup, vec, mac := w("support"), w("vector"), w("machines")
	que, pro := w("query"), w("processing")
	cls, dbs := w("classification"), w("databases")
	var docs [][]int
	for i := 0; i < 12; i++ {
		docs = append(docs, []int{sup, vec, mac, cls})
	}
	for i := 0; i < 12; i++ {
		docs = append(docs, []int{que, pro, dbs})
	}
	phi0 := make([]float64, v.Size())
	phi1 := make([]float64, v.Size())
	for _, id := range []int{sup, vec, mac, cls} {
		phi0[id] = 0.25
	}
	for _, id := range []int{que, pro, dbs} {
		phi1[id] = 1.0 / 3
	}
	topics := []Topic{{Phi: phi0, Rho: 0.5}, {Phi: phi1, Rho: 0.5}}
	return docs, topics, v
}

func TestMineFindsPatternsAndAttributesTopically(t *testing.T) {
	docs, topics, vocab := miniSetup()
	res := Mine(docs, topics, Config{MinSupport: 5, MaxLen: 3})
	// {support, vector, machines} must be found with support 12 and
	// assigned to topic 0.
	sup, _ := vocab.ID("support")
	vec, _ := vocab.ID("vector")
	mac, _ := vocab.ID("machines")
	pi, ok := res.index[setKey([]int{sup, vec, mac})]
	if !ok {
		t.Fatal("trigram pattern not mined")
	}
	p := res.Patterns[pi]
	if p.Count != 12 {
		t.Fatalf("count = %d", p.Count)
	}
	if p.Topical[0] < 11.9 || p.Topical[1] > 0.1 {
		t.Fatalf("trigram topical = %v", p.Topical)
	}
}

func TestTopicalFrequencySumsToTotal(t *testing.T) {
	docs, topics, _ := miniSetup()
	res := Mine(docs, topics, Config{MinSupport: 5, MaxLen: 3})
	for _, p := range res.Patterns {
		s := 0.0
		for _, f := range p.Topical {
			s += f
		}
		if math.Abs(s-float64(p.Count)) > 1e-9 {
			t.Fatalf("pattern %v: topical sums to %v, count %d", p.Words, s, p.Count)
		}
	}
}

func TestCompletenessFiltersSubPhrases(t *testing.T) {
	docs, topics, vocab := miniSetup()
	res := Mine(docs, topics, Config{MinSupport: 5, MaxLen: 3, Gamma: 0.5})
	ranked := res.Rank(0, FullKERT, vocab, 10)
	for _, p := range ranked {
		// {support, vector} always extends to the trigram, so it must be
		// filtered; same for any pair subset.
		if p.Display == "support vector" || p.Display == "vector machines" {
			t.Fatalf("incomplete phrase %q survived the gamma filter", p.Display)
		}
	}
	// Without completeness the pair comes back.
	noCom := Variant{UsePopularity: true, UsePurity: true, UseConcordance: true}
	ranked = res.Rank(0, noCom, vocab, 50)
	seenPair := false
	for _, p := range ranked {
		if strings.Count(p.Display, " ") == 1 && strings.Contains(p.Display, "vector") {
			seenPair = true
		}
	}
	if !seenPair {
		t.Fatal("KERT-com should retain incomplete sub-phrases")
	}
}

func TestDisplayOrderFollowsSurfaceOrder(t *testing.T) {
	docs, topics, vocab := miniSetup()
	res := Mine(docs, topics, Config{MinSupport: 5, MaxLen: 3})
	sup, _ := vocab.ID("support")
	vec, _ := vocab.ID("vector")
	mac, _ := vocab.ID("machines")
	pi, ok := res.index[setKey([]int{sup, vec, mac})]
	if !ok {
		t.Fatal("trigram pattern not mined")
	}
	if got := renderWords(res.Patterns[pi].Display, vocab); got != "support vector machines" {
		t.Fatalf("display = %q", got)
	}
}

func TestVariantsChangeRanking(t *testing.T) {
	ds := synth.DBLPTitles(synth.TextConfig{NumDocs: 1500, Seed: 21})
	m := lda.Must(lda.Run(corpusDocs(ds), ds.Corpus.Vocab.Size(),
		lda.Config{K: 6, Iters: 80, Seed: 22, Background: true}))
	topics := TopicsFromLDA(m)
	res := Mine(corpusDocs(ds), topics, Config{MinSupport: 5, MaxLen: 4, Background: true})
	full := res.RankAll(FullKERT, ds.Corpus.Vocab, 10)
	pur := res.RankAll(Variant{UsePopularity: true, UseConcordance: true, UseCompleteness: true}, ds.Corpus.Vocab, 10)
	if len(full) != 6 {
		t.Fatalf("topics = %d", len(full))
	}
	diff := false
	for t2 := range full {
		if len(full[t2]) == 0 {
			t.Fatalf("topic %d empty ranking", t2)
		}
		for i := range full[t2] {
			if i < len(pur[t2]) && full[t2][i].Display != pur[t2][i].Display {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("removing purity changed nothing — variant plumbing broken")
	}
}

func TestKERTPrefersPhrasesOverBaseline(t *testing.T) {
	ds := synth.DBLPTitles(synth.TextConfig{NumDocs: 1500, Seed: 23})
	m := lda.Must(lda.Run(corpusDocs(ds), ds.Corpus.Vocab.Size(),
		lda.Config{K: 6, Iters: 80, Seed: 24, Background: true}))
	topics := TopicsFromLDA(m)
	res := Mine(corpusDocs(ds), topics, Config{MinSupport: 5, MaxLen: 4, Background: true})
	kertMulti, baseMulti := 0, 0
	for t2 := 0; t2 < 6; t2++ {
		for i, p := range res.Rank(t2, FullKERT, ds.Corpus.Vocab, 10) {
			if i < 10 && strings.Contains(p.Display, " ") {
				kertMulti++
			}
		}
		for i, p := range res.KpRel(t2, ds.Corpus.Vocab, 10) {
			if i < 10 && strings.Contains(p.Display, " ") {
				baseMulti++
			}
		}
	}
	if kertMulti <= baseMulti {
		t.Fatalf("KERT multiword count %d <= kpRel %d; expected phrase preference", kertMulti, baseMulti)
	}
}

func corpusDocs(ds *synth.Dataset) [][]int {
	docs := make([][]int, len(ds.Corpus.Docs))
	for i, d := range ds.Corpus.Docs {
		docs[i] = d.Tokens
	}
	return docs
}
