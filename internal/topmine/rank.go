package topmine

import (
	"context"
	"math"
	"sort"

	"lesm/internal/core"
	"lesm/internal/lda"
	"lesm/internal/par"
	"lesm/internal/textkit"
)

// Result bundles the full ToPMine pipeline output: mined counts, the induced
// bag-of-phrases partition, the phrase-constrained topic model, and the
// ranked topical phrases per topic.
type Result struct {
	Miner     *Miner
	Partition []lda.PhraseDoc
	Model     *lda.Model
	// Topics[t] is the ranked phrase list of topic t (background topic
	// excluded when present).
	Topics [][]core.RankedPhrase
}

// RankConfig controls topical phrase ranking (Section 4.3.3).
type RankConfig struct {
	// Omega mixes purity-driven pointwise KL with the significance prior
	// (default 0.5): (1-ω)·r_t(P) + ω·p(P|t)·log sig(P).
	Omega float64
	// TopN truncates each topic's ranked list (default 30).
	TopN int
	// P bounds the worker count of the parallel counting and scoring
	// passes (0 = GOMAXPROCS). Rankings are identical at any P.
	P int
	// Ctx cancels ranking between work chunks (nil = background).
	Ctx context.Context
}

func (c RankConfig) parOpts() par.Opts { return par.Opts{P: c.P, Ctx: c.Ctx} }

func (c RankConfig) withDefaults() RankConfig {
	if c.Omega == 0 {
		c.Omega = 0.5
	}
	if c.TopN == 0 {
		c.TopN = 30
	}
	return c
}

// Run executes mining, segmentation, PhraseLDA and ranking end to end. It
// returns the context's error if cfg.Ctx is cancelled mid-pipeline.
func Run(corpus *textkit.Corpus, cfg Config, ldaCfg lda.Config, rankCfg RankConfig) (*Result, error) {
	o := cfg.parOpts()
	miner := MineFrequentPhrases(corpus.Docs, cfg)
	if err := o.Err(); err != nil {
		return nil, err
	}
	partition := miner.SegmentCorpus(corpus.Docs)
	if err := o.Err(); err != nil {
		return nil, err
	}
	// The PhraseLDA stage inherits the pipeline's execution policy unless
	// the caller set its own.
	if ldaCfg.P == 0 {
		ldaCfg.P = cfg.P
	}
	if ldaCfg.Ctx == nil {
		ldaCfg.Ctx = cfg.Ctx
	}
	model, err := lda.RunPhrases(partition, corpus.Vocab.Size(), ldaCfg)
	if err != nil {
		return nil, err
	}
	if rankCfg.P == 0 {
		rankCfg.P = cfg.P
	}
	if rankCfg.Ctx == nil {
		rankCfg.Ctx = cfg.Ctx
	}
	topics, err := RankPhrases(corpus, miner, partition, model, rankCfg)
	if err != nil {
		return nil, err
	}
	return &Result{Miner: miner, Partition: partition, Model: model, Topics: topics}, nil
}

// topicCounts accumulates per-topic and corpus-wide phrase-instance counts
// over one document chunk; chunks merge in chunk order. All values are
// whole counts stored in float64, so the merged numbers are exact and
// independent of the chunking.
type topicCounts struct {
	cnt         []map[string]float64
	totals      []float64
	globalCnt   map[string]float64
	globalTotal float64
}

// RankPhrases ranks every phrase within every topic by
// (1-ω)·p(P|t)·log(p(P|t)/p(P)) + ω·p(P|t)·log sig(P), the Section 4.3.3
// ranking function with the corpus as the parent topic.
//
// Counting runs as a chunk-ordered reduction over the partition and
// scoring in parallel over topics, so the ranking is identical at any
// cfg.P. RankPhrases only returns an error when cfg.Ctx is cancelled.
func RankPhrases(corpus *textkit.Corpus, miner *Miner, partition []lda.PhraseDoc, model *lda.Model, cfg RankConfig) ([][]core.RankedPhrase, error) {
	cfg = cfg.withDefaults()
	o := cfg.parOpts()
	k := model.K
	// Count phrase instances per topic from the sampled assignments.
	acc, err := par.MapReduce(o, len(partition),
		func() *topicCounts {
			a := &topicCounts{
				cnt:       make([]map[string]float64, k),
				totals:    make([]float64, k),
				globalCnt: map[string]float64{},
			}
			for t := range a.cnt {
				a.cnt[t] = map[string]float64{}
			}
			return a
		},
		func(a *topicCounts, _, lo, hi int) {
			for d := lo; d < hi; d++ {
				for p, phrase := range partition[d] {
					t := model.PhraseZ[d][p]
					if t >= k { // background topic: not ranked
						continue
					}
					ky := key(phrase)
					a.cnt[t][ky]++
					a.totals[t]++
					a.globalCnt[ky]++
					a.globalTotal++
				}
			}
		},
		func(dst, src *topicCounts) {
			for t := range dst.cnt {
				for ky, c := range src.cnt[t] {
					dst.cnt[t][ky] += c
				}
				dst.totals[t] += src.totals[t]
			}
			for ky, c := range src.globalCnt {
				dst.globalCnt[ky] += c
			}
			dst.globalTotal += src.globalTotal
		})
	if err != nil {
		return nil, err
	}
	out := make([][]core.RankedPhrase, k)
	err = par.For(o, k, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			var ranked []core.RankedPhrase
			for ky, c := range acc.cnt[t] {
				words := decodeKey(ky)
				// Multiword phrases must be mined-frequent; unigrams must meet
				// support too.
				if miner.Count(words) < miner.cfg.MinSupport {
					continue
				}
				pt := c / math.Max(acc.totals[t], 1)
				pg := acc.globalCnt[ky] / math.Max(acc.globalTotal, 1)
				rt := 0.0
				if pt > 0 && pg > 0 {
					rt = pt * math.Log(pt/pg)
				}
				s := miner.phraseSignificance(words)
				if s < 1 {
					s = 1
				}
				score := (1-cfg.Omega)*rt + cfg.Omega*pt*math.Log(s)
				ranked = append(ranked, core.RankedPhrase{
					Words:   words,
					Display: corpus.Phrase(words),
					Score:   score,
				})
			}
			// The comparison is a total order (no two distinct phrases share a
			// Display), so the sorted list is independent of map iteration
			// order.
			sort.SliceStable(ranked, func(a, b int) bool {
				if ranked[a].Score != ranked[b].Score {
					return ranked[a].Score > ranked[b].Score
				}
				return ranked[a].Display < ranked[b].Display
			})
			if len(ranked) > cfg.TopN {
				ranked = ranked[:cfg.TopN]
			}
			out[t] = ranked
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// phraseSignificance generalizes Eq. 4.7 to a whole phrase against the
// independence of all of its words; unigrams score 1 (no collocation
// evidence either way).
func (m *Miner) phraseSignificance(phrase []int) float64 {
	if len(phrase) < 2 {
		return 1
	}
	f := float64(m.Count(phrase))
	if f <= 0 {
		return 0
	}
	l := float64(m.L)
	exp := l
	for _, w := range phrase {
		exp *= float64(m.Count([]int{w})) / l
	}
	return (f - exp) / math.Sqrt(f)
}

// VisualizeHierarchy attaches ranked phrases to every topic of a CATHY-built
// hierarchy: each mined phrase's corpus frequency is attributed down the
// tree with Eq. 4.3/4.8, and each topic ranks phrases by the pointwise
// KL-divergence of its share against the parent's (Eq. 4.9).
//
// Frequency attribution runs in parallel over candidate phrases and
// ranking in parallel over topic nodes on the shared runtime; per-topic
// totals accumulate serially in the candidates' sorted order, so the
// attached lists are identical at any o.P. VisualizeHierarchy only returns
// an error when o.Ctx is cancelled, in which case some nodes may be left
// without phrase lists.
func VisualizeHierarchy(corpus *textkit.Corpus, miner *Miner, root *core.TopicNode, topN int, o par.Opts) error {
	if topN == 0 {
		topN = 30
	}
	type cand struct {
		words []int
		freq  float64
	}
	var cands []cand
	for ky, c := range miner.FrequentPhrases(1) {
		cands = append(cands, cand{decodeKey(ky), float64(c)})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].freq != cands[b].freq {
			return cands[a].freq > cands[b].freq
		}
		return key(cands[a].words) < key(cands[b].words)
	})
	// Attribute each phrase's frequency to every topic (read-only walks of
	// the tree, disjoint output slots), then total per topic in candidate
	// order so the floating-point sums are P-independent.
	attributed := make([]map[string]float64, len(cands)) // topic path -> freq
	if err := par.For(o, len(cands), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			attributed[i] = root.AttributeFrequency(cands[i].words, cands[i].freq)
		}
	}); err != nil {
		return err
	}
	freqAt := map[string]map[string]float64{} // phrase key -> topic path -> freq
	totals := map[string]float64{}
	for i, c := range cands {
		freqAt[key(c.words)] = attributed[i]
		for path, f := range attributed[i] {
			totals[path] += f
		}
	}
	var nodes []*core.TopicNode
	root.Walk(func(n *core.TopicNode) {
		if n.Parent() != nil {
			nodes = append(nodes, n)
		}
	})
	return par.For(o, len(nodes), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			n := nodes[j]
			parent := n.Parent()
			var ranked []core.RankedPhrase
			for _, c := range cands {
				ky := key(c.words)
				ft := freqAt[ky][n.Path]
				fp := freqAt[ky][parent.Path]
				if ft < 1 {
					continue
				}
				pt := ft / math.Max(totals[n.Path], 1)
				pp := fp / math.Max(totals[parent.Path], 1)
				if pp <= 0 {
					pp = 1e-12
				}
				score := pt * math.Log(pt/pp)
				// Mild significance prior keeps junk n-grams out.
				if s := m2sig(miner, c.words); s > 1 {
					score += 0.1 * pt * math.Log(s)
				}
				ranked = append(ranked, core.RankedPhrase{Words: c.words, Display: corpus.Phrase(c.words), Score: score})
			}
			sort.SliceStable(ranked, func(a, b int) bool {
				if ranked[a].Score != ranked[b].Score {
					return ranked[a].Score > ranked[b].Score
				}
				return ranked[a].Display < ranked[b].Display
			})
			if len(ranked) > topN {
				ranked = ranked[:topN]
			}
			n.Phrases = ranked
		}
	})
}

func m2sig(m *Miner, words []int) float64 { return m.phraseSignificance(words) }
