package topmine

import (
	"math"
	"sort"

	"lesm/internal/core"
	"lesm/internal/lda"
	"lesm/internal/textkit"
)

// Result bundles the full ToPMine pipeline output: mined counts, the induced
// bag-of-phrases partition, the phrase-constrained topic model, and the
// ranked topical phrases per topic.
type Result struct {
	Miner     *Miner
	Partition []lda.PhraseDoc
	Model     *lda.Model
	// Topics[t] is the ranked phrase list of topic t (background topic
	// excluded when present).
	Topics [][]core.RankedPhrase
}

// RankConfig controls topical phrase ranking (Section 4.3.3).
type RankConfig struct {
	// Omega mixes purity-driven pointwise KL with the significance prior
	// (default 0.5): (1-ω)·r_t(P) + ω·p(P|t)·log sig(P).
	Omega float64
	// TopN truncates each topic's ranked list (default 30).
	TopN int
}

func (c RankConfig) withDefaults() RankConfig {
	if c.Omega == 0 {
		c.Omega = 0.5
	}
	if c.TopN == 0 {
		c.TopN = 30
	}
	return c
}

// Run executes mining, segmentation, PhraseLDA and ranking end to end. It
// returns the context's error if cfg.Ctx is cancelled mid-pipeline.
func Run(corpus *textkit.Corpus, cfg Config, ldaCfg lda.Config, rankCfg RankConfig) (*Result, error) {
	o := cfg.parOpts()
	miner := MineFrequentPhrases(corpus.Docs, cfg)
	if err := o.Err(); err != nil {
		return nil, err
	}
	partition := miner.SegmentCorpus(corpus.Docs)
	if err := o.Err(); err != nil {
		return nil, err
	}
	model := lda.RunPhrases(partition, corpus.Vocab.Size(), ldaCfg)
	topics := RankPhrases(corpus, miner, partition, model, rankCfg)
	return &Result{Miner: miner, Partition: partition, Model: model, Topics: topics}, nil
}

// RankPhrases ranks every phrase within every topic by
// (1-ω)·p(P|t)·log(p(P|t)/p(P)) + ω·p(P|t)·log sig(P), the Section 4.3.3
// ranking function with the corpus as the parent topic.
func RankPhrases(corpus *textkit.Corpus, miner *Miner, partition []lda.PhraseDoc, model *lda.Model, cfg RankConfig) [][]core.RankedPhrase {
	cfg = cfg.withDefaults()
	k := model.K
	// Count phrase instances per topic from the sampled assignments.
	cnt := make([]map[string]float64, k)
	for t := range cnt {
		cnt[t] = map[string]float64{}
	}
	totals := make([]float64, k)
	globalCnt := map[string]float64{}
	globalTotal := 0.0
	for d, doc := range partition {
		for p, phrase := range doc {
			t := model.PhraseZ[d][p]
			if t >= k { // background topic: not ranked
				continue
			}
			ky := key(phrase)
			cnt[t][ky]++
			totals[t]++
			globalCnt[ky]++
			globalTotal++
		}
	}
	out := make([][]core.RankedPhrase, k)
	for t := 0; t < k; t++ {
		var ranked []core.RankedPhrase
		for ky, c := range cnt[t] {
			words := decodeKey(ky)
			// Multiword phrases must be mined-frequent; unigrams must meet
			// support too.
			if miner.Count(words) < miner.cfg.MinSupport {
				continue
			}
			pt := c / math.Max(totals[t], 1)
			pg := globalCnt[ky] / math.Max(globalTotal, 1)
			rt := 0.0
			if pt > 0 && pg > 0 {
				rt = pt * math.Log(pt/pg)
			}
			s := miner.phraseSignificance(words)
			if s < 1 {
				s = 1
			}
			score := (1-cfg.Omega)*rt + cfg.Omega*pt*math.Log(s)
			ranked = append(ranked, core.RankedPhrase{
				Words:   words,
				Display: corpus.Phrase(words),
				Score:   score,
			})
		}
		sort.SliceStable(ranked, func(a, b int) bool {
			if ranked[a].Score != ranked[b].Score {
				return ranked[a].Score > ranked[b].Score
			}
			return ranked[a].Display < ranked[b].Display
		})
		if len(ranked) > cfg.TopN {
			ranked = ranked[:cfg.TopN]
		}
		out[t] = ranked
	}
	return out
}

// phraseSignificance generalizes Eq. 4.7 to a whole phrase against the
// independence of all of its words; unigrams score 1 (no collocation
// evidence either way).
func (m *Miner) phraseSignificance(phrase []int) float64 {
	if len(phrase) < 2 {
		return 1
	}
	f := float64(m.Count(phrase))
	if f <= 0 {
		return 0
	}
	l := float64(m.L)
	exp := l
	for _, w := range phrase {
		exp *= float64(m.Count([]int{w})) / l
	}
	return (f - exp) / math.Sqrt(f)
}

// VisualizeHierarchy attaches ranked phrases to every topic of a CATHY-built
// hierarchy: each mined phrase's corpus frequency is attributed down the
// tree with Eq. 4.3/4.8, and each topic ranks phrases by the pointwise
// KL-divergence of its share against the parent's (Eq. 4.9).
func VisualizeHierarchy(corpus *textkit.Corpus, miner *Miner, root *core.TopicNode, topN int) {
	if topN == 0 {
		topN = 30
	}
	type cand struct {
		words []int
		freq  float64
	}
	var cands []cand
	for ky, c := range miner.FrequentPhrases(1) {
		cands = append(cands, cand{decodeKey(ky), float64(c)})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].freq != cands[b].freq {
			return cands[a].freq > cands[b].freq
		}
		return key(cands[a].words) < key(cands[b].words)
	})
	// Attribute each phrase's frequency to every topic, then score.
	freqAt := map[string]map[string]float64{} // phrase key -> topic path -> freq
	for _, c := range cands {
		freqAt[key(c.words)] = root.AttributeFrequency(c.words, c.freq)
	}
	totals := map[string]float64{}
	for _, byTopic := range freqAt {
		for path, f := range byTopic {
			totals[path] += f
		}
	}
	root.Walk(func(n *core.TopicNode) {
		if n.Parent() == nil {
			return
		}
		parent := n.Parent()
		var ranked []core.RankedPhrase
		for _, c := range cands {
			ky := key(c.words)
			ft := freqAt[ky][n.Path]
			fp := freqAt[ky][parent.Path]
			if ft < 1 {
				continue
			}
			pt := ft / math.Max(totals[n.Path], 1)
			pp := fp / math.Max(totals[parent.Path], 1)
			if pp <= 0 {
				pp = 1e-12
			}
			score := pt * math.Log(pt/pp)
			// Mild significance prior keeps junk n-grams out.
			if s := m2sig(miner, c.words); s > 1 {
				score += 0.1 * pt * math.Log(s)
			}
			ranked = append(ranked, core.RankedPhrase{Words: c.words, Display: corpus.Phrase(c.words), Score: score})
		}
		sort.SliceStable(ranked, func(a, b int) bool {
			if ranked[a].Score != ranked[b].Score {
				return ranked[a].Score > ranked[b].Score
			}
			return ranked[a].Display < ranked[b].Display
		})
		if len(ranked) > topN {
			ranked = ranked[:topN]
		}
		n.Phrases = ranked
	})
}

func m2sig(m *Miner, words []int) float64 { return m.phraseSignificance(words) }
