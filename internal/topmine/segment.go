package topmine

import (
	"math"

	"lesm/internal/lda"
	"lesm/internal/par"
	"lesm/internal/textkit"
)

// sig computes the collocation significance of merging adjacent phrases p1
// and p2 (Eq. 4.7): the number of standard deviations by which the observed
// count of the concatenation exceeds its expectation under the
// independent-Bernoulli null model, with the sample count as the variance
// estimate.
func (m *Miner) sig(p1, p2 []int) float64 {
	joint := make([]int, 0, len(p1)+len(p2))
	joint = append(joint, p1...)
	joint = append(joint, p2...)
	fJoint := float64(m.Count(joint))
	if fJoint < float64(m.cfg.MinSupport) {
		return math.Inf(-1) // merged phrase not frequent: cannot merge
	}
	l := float64(m.L)
	mu := l * (float64(m.Count(p1)) / l) * (float64(m.Count(p2)) / l)
	return (fJoint - mu) / math.Sqrt(fJoint)
}

// Segment induces a partition of a document into a bag of phrases
// (Algorithm 2): adjacent phrase instances are merged bottom-up, always
// taking the currently most significant merge, until no candidate merge
// reaches the significance threshold. Segments (phrase-invariant punctuation
// boundaries) are partitioned independently.
func (m *Miner) Segment(doc textkit.Document) [][]int {
	var out [][]int
	for _, seg := range doc.Segments {
		out = append(out, m.segmentTokens(seg)...)
	}
	return out
}

func (m *Miner) segmentTokens(toks []int) [][]int {
	// Start from unit phrases.
	phrases := make([][]int, len(toks))
	for i, w := range toks {
		phrases[i] = []int{w}
	}
	// Repeatedly apply the best merge. Segments are short (punctuation
	// bounded), so a scan per merge matches the heap-based Algorithm 2's
	// result at equivalent asymptotic cost for our segment lengths.
	for len(phrases) > 1 {
		best, bestSig := -1, math.Inf(-1)
		for i := 0; i+1 < len(phrases); i++ {
			if s := m.sig(phrases[i], phrases[i+1]); s > bestSig {
				best, bestSig = i, s
			}
		}
		if best < 0 || bestSig < m.cfg.Alpha {
			break
		}
		merged := append(append([]int{}, phrases[best]...), phrases[best+1]...)
		phrases = append(phrases[:best+1], phrases[best+2:]...)
		phrases[best] = merged
	}
	return phrases
}

// SegmentCorpus partitions every document, returning the bag-of-phrases form
// consumed by PhraseLDA. Documents segment independently against the
// read-only mined counts, so they chunk onto the worker pool; a cancelled
// context leaves later entries nil (Run surfaces the error).
func (m *Miner) SegmentCorpus(docs []textkit.Document) []lda.PhraseDoc {
	out := make([]lda.PhraseDoc, len(docs))
	par.For(m.cfg.parOpts(), len(docs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = m.Segment(docs[i])
		}
	})
	return out
}
