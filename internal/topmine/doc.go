// Package topmine implements ToPMine (Section 4.3): frequent contiguous
// phrase mining with position-based Apriori pruning and data antimonotonicity
// (Algorithm 1), bottom-up agglomerative document segmentation guided by a
// collocation significance score (Algorithm 2), and topical phrase ranking
// over the resulting bag-of-phrases (Section 4.3.3).
package topmine
