package topmine

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"lesm/internal/lda"
	"lesm/internal/synth"
	"lesm/internal/textkit"
)

func corpusFrom(lines []string) *textkit.Corpus {
	c := textkit.NewCorpus()
	for _, l := range lines {
		c.AddText(l, textkit.Pipeline{MinLen: 1})
	}
	return c
}

func TestMineFrequentPhrasesBasic(t *testing.T) {
	var lines []string
	for i := 0; i < 6; i++ {
		lines = append(lines, "mining frequent patterns quickly")
	}
	lines = append(lines, "other words entirely")
	c := corpusFrom(lines)
	m := MineFrequentPhrases(c.Docs, Config{MinSupport: 5, MaxLen: 4})
	id := func(w string) int {
		i, ok := c.Vocab.ID(w)
		if !ok {
			t.Fatalf("missing word %q", w)
		}
		return i
	}
	if got := m.Count([]int{id("mining"), id("frequent")}); got != 6 {
		t.Fatalf("count(mining frequent) = %d", got)
	}
	if got := m.Count([]int{id("mining"), id("frequent"), id("patterns")}); got != 6 {
		t.Fatalf("count(trigram) = %d", got)
	}
	if got := m.Count([]int{id("other"), id("words")}); got != 0 {
		t.Fatalf("infrequent bigram counted: %d", got)
	}
}

// bruteCounts counts all contiguous n-grams (n >= 2) with support >= mu the
// naive way, mirroring what Algorithm 1 must produce.
func bruteCounts(c *textkit.Corpus, mu, maxLen int) map[string]int {
	raw := map[string]int{}
	for _, d := range c.Docs {
		for _, seg := range d.Segments {
			for n := 2; n <= maxLen; n++ {
				for i := 0; i+n <= len(seg); i++ {
					raw[key(seg[i:i+n])]++
				}
			}
		}
	}
	out := map[string]int{}
	for k, v := range raw {
		if v >= mu {
			out[k] = v
		}
	}
	return out
}

func TestMiningMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := textkit.NewCorpus()
		vocabulary := []string{"a", "b", "c", "d", "e"}
		for d := 0; d < 30; d++ {
			ln := 3 + rng.Intn(8)
			toks := make([]string, ln)
			for i := range toks {
				toks[i] = vocabulary[rng.Intn(len(vocabulary))]
			}
			c.AddTokens(toks)
		}
		mu := 3
		m := MineFrequentPhrases(c.Docs, Config{MinSupport: mu, MaxLen: 4})
		want := bruteCounts(c, mu, 4)
		got := m.FrequentPhrases(2)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentationPartitionProperty(t *testing.T) {
	ds := synth.DBLPTitles(synth.TextConfig{NumDocs: 400, Seed: 3})
	m := MineFrequentPhrases(ds.Corpus.Docs, Config{MinSupport: 5, MaxLen: 5})
	for d, doc := range ds.Corpus.Docs {
		parts := m.Segment(doc)
		var rebuilt []int
		for _, p := range parts {
			rebuilt = append(rebuilt, p...)
		}
		if !reflect.DeepEqual(rebuilt, doc.Tokens) {
			t.Fatalf("doc %d: partition does not reconstruct document", d)
		}
	}
}

func TestSegmentationFindsKnownPhrases(t *testing.T) {
	ds := synth.DBLPTitles(synth.TextConfig{NumDocs: 1200, Seed: 4})
	m := MineFrequentPhrases(ds.Corpus.Docs, Config{MinSupport: 5, MaxLen: 5, Alpha: 3})
	found := 0
	checked := 0
	for _, doc := range ds.Corpus.Docs[:300] {
		for _, p := range m.Segment(doc) {
			if len(p) >= 2 {
				phrase := ds.Corpus.Phrase(p)
				checked++
				// Count how many multi-word segments are true generator
				// phrases (or contiguous parts of them).
				aff := ds.Truth.PhraseAffinity(phrase)
				max := 0.0
				for _, v := range aff {
					if v > max {
						max = v
					}
				}
				if max > 0.2 {
					found++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("segmentation produced no multiword phrases")
	}
	if frac := float64(found) / float64(checked); frac < 0.6 {
		t.Fatalf("only %v of multiword segments look like true phrases", frac)
	}
}

func TestRunPipelineRanksTopicalPhrases(t *testing.T) {
	ds := synth.Arxiv(synth.TextConfig{NumDocs: 1500, Seed: 5})
	res, err := Run(ds.Corpus, Config{MinSupport: 5, MaxLen: 5, Alpha: 3},
		lda.Config{K: 5, Iters: 120, Seed: 6, Background: true}, RankConfig{TopN: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Topics) != 5 {
		t.Fatalf("topics = %d", len(res.Topics))
	}
	// Each topic's top phrases should include at least one multiword phrase,
	// and most top-5 phrases should be topically pure under ground truth.
	multi := 0
	pure := 0
	total := 0
	for _, topic := range res.Topics {
		if len(topic) == 0 {
			t.Fatal("empty topic ranking")
		}
		for i, p := range topic {
			if i >= 5 {
				break
			}
			total++
			if strings.Contains(p.Display, " ") {
				multi++
			}
			aff := ds.Truth.PhraseAffinity(p.Display)
			max := 0.0
			for _, v := range aff {
				if v > max {
					max = v
				}
			}
			if max > 0.5 {
				pure++
			}
		}
	}
	if multi == 0 {
		t.Fatal("no multiword phrases in any top-5")
	}
	if frac := float64(pure) / float64(total); frac < 0.5 {
		t.Fatalf("purity of top phrases = %v", frac)
	}
}

func TestPhraseSignificanceOrdering(t *testing.T) {
	// A true collocation should outscore a chance pairing of common words.
	var lines []string
	for i := 0; i < 40; i++ {
		lines = append(lines, "support vector machines are great")
	}
	for i := 0; i < 40; i++ {
		lines = append(lines, "great support indeed friend")
		lines = append(lines, "vector fields friend great")
	}
	c := corpusFrom(lines)
	m := MineFrequentPhrases(c.Docs, Config{MinSupport: 5, MaxLen: 3})
	id := func(w string) int { i, _ := c.Vocab.ID(w); return i }
	svSig := m.phraseSignificance([]int{id("support"), id("vector")})
	if svSig <= 0 {
		t.Fatalf("collocation significance = %v", svSig)
	}
	if uni := m.phraseSignificance([]int{id("support")}); uni != 1 {
		t.Fatalf("unigram significance = %v, want 1", uni)
	}
}

func TestDecodeKeyRoundTrip(t *testing.T) {
	f := func(a, b, c uint16) bool {
		p := []int{int(a), int(b), int(c)}
		return reflect.DeepEqual(decodeKey(key(p)), p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
