package topmine

import (
	"context"
	"encoding/binary"

	"lesm/internal/par"
	"lesm/internal/textkit"
)

// Config parameterizes phrase mining and segmentation.
type Config struct {
	// MinSupport is the frequency threshold mu for a candidate phrase
	// (default 5; "we can set a minimum support that grows linearly with
	// corpus size" — callers scale it).
	MinSupport int
	// MaxLen caps mined phrase length (default 6).
	MaxLen int
	// Alpha is the significance threshold (in standard deviations) for
	// merging two adjacent phrases during segmentation (default 4).
	Alpha float64
	// P bounds the worker count of the parallel counting and segmentation
	// passes (0 = GOMAXPROCS). Results are identical at any P.
	P int
	// Ctx cancels mining between chunks (nil = background). A cancelled
	// miner holds partial counts; Run surfaces the context error.
	Ctx context.Context
}

func (c Config) parOpts() par.Opts { return par.Opts{P: c.P, Ctx: c.Ctx} }

func (c Config) withDefaults() Config {
	if c.MinSupport == 0 {
		c.MinSupport = 5
	}
	if c.MaxLen == 0 {
		c.MaxLen = 6
	}
	if c.Alpha == 0 {
		c.Alpha = 4
	}
	return c
}

// Miner holds the aggregate counts produced by frequent phrase mining and
// answers count queries during segmentation and ranking.
type Miner struct {
	cfg    Config
	counts map[string]int
	// L is the corpus token count (the null model's number of Bernoulli
	// trials, Section 4.3.2).
	L int
}

// key encodes a word-id sequence as a map key.
func key(phrase []int) string {
	b := make([]byte, 4*len(phrase))
	for i, w := range phrase {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(w))
	}
	return string(b)
}

// decodeKey reverses key.
func decodeKey(k string) []int {
	out := make([]int, len(k)/4)
	for i := range out {
		out[i] = int(binary.LittleEndian.Uint32([]byte(k[4*i : 4*i+4])))
	}
	return out
}

// MineFrequentPhrases runs Algorithm 1 over the documents' segments:
// contiguous candidate phrases are counted level-wise; a position stays
// active only while the phrase starting there remains frequent (downward
// closure), and a document leaves consideration once it has no active
// positions (data antimonotonicity).
func MineFrequentPhrases(docs []textkit.Document, cfg Config) *Miner {
	cfg = cfg.withDefaults()
	o := cfg.parOpts()
	m := &Miner{cfg: cfg, counts: map[string]int{}}

	// Work on segments: phrases never cross phrase-invariant punctuation.
	type seg struct{ toks []int }
	var segs []seg
	for _, d := range docs {
		m.L += len(d.Tokens)
		for _, s := range d.Segments {
			segs = append(segs, seg{s})
		}
	}

	// Level 1: word counts. Segments chunk onto the worker pool; per-chunk
	// counters merge by integer addition, so the result is independent of
	// the parallelism level.
	l1, err := par.MapReduce(o, len(segs),
		func() map[string]int { return map[string]int{} },
		func(acc map[string]int, _, lo, hi int) {
			for _, s := range segs[lo:hi] {
				for _, w := range s.toks {
					acc[key([]int{w})]++
				}
			}
		},
		func(dst, src map[string]int) {
			for k, c := range src {
				dst[k] += c
			}
		})
	if err != nil {
		return m
	}
	m.counts = l1

	// active[si] holds the indices where a frequent (n-1)-phrase starts.
	active := make([][]int, len(segs))
	alive := make([]int, 0, len(segs))
	for si, s := range segs {
		idx := make([]int, len(s.toks))
		for i := range idx {
			idx[i] = i
		}
		active[si] = idx
		alive = append(alive, si)
	}

	for n := 2; n <= cfg.MaxLen && len(alive) > 0; n++ {
		// One level counts on the worker pool: m.counts is read-only during
		// the pass, active[si] updates are disjoint per segment, and the
		// per-chunk level counters and survivor lists merge in chunk order.
		type lvlAcc struct {
			level map[string]int
			next  []int
		}
		a, err := par.MapReduce(o, len(alive),
			func() *lvlAcc { return &lvlAcc{level: map[string]int{}} },
			func(a *lvlAcc, _, lo, hi int) {
				buf := make([]int, 0, cfg.MaxLen)
				for _, si := range alive[lo:hi] {
					toks := segs[si].toks
					// Keep positions whose (n-1)-phrase is frequent and that
					// can still host an (n-1)-phrase (Algorithm 1, line 1.7;
					// dropping the boundary position plays the role of line
					// 1.8's max-index removal).
					var nxt []int
					for _, i := range active[si] {
						if i+n-1 > len(toks) {
							continue
						}
						buf = append(buf[:0], toks[i:i+n-1]...)
						if m.counts[key(buf)] >= cfg.MinSupport {
							nxt = append(nxt, i)
						}
					}
					if len(nxt) == 0 {
						active[si] = nil
						continue
					}
					activeSet := make(map[int]bool, len(nxt))
					for _, i := range nxt {
						activeSet[i] = true
					}
					for _, i := range nxt {
						if activeSet[i+1] && i+n <= len(toks) {
							a.level[key(toks[i:i+n])]++
						}
					}
					active[si] = nxt
					a.next = append(a.next, si)
				}
			},
			func(dst, src *lvlAcc) {
				for k, c := range src.level {
					dst.level[k] += c
				}
				dst.next = append(dst.next, src.next...)
			})
		if err != nil {
			return m
		}
		// Promote frequent n-phrases into the global counter.
		promoted := false
		for k, c := range a.level {
			if c >= cfg.MinSupport {
				m.counts[k] = c
				promoted = true
			}
		}
		if !promoted {
			break
		}
		alive = a.next
	}

	// Drop infrequent unigrams from the counter? No: unigram counts are
	// needed for the null model; keep all of them.
	return m
}

// Count returns the mined frequency of a phrase (0 if it was pruned).
func (m *Miner) Count(phrase []int) int { return m.counts[key(phrase)] }

// FrequentPhrases returns every mined phrase of length >= minLen whose count
// meets the miner's support threshold, with counts.
func (m *Miner) FrequentPhrases(minLen int) map[string]int {
	out := map[string]int{}
	for k, c := range m.counts {
		if len(k)/4 >= minLen && c >= m.cfg.MinSupport {
			out[k] = c
		}
	}
	return out
}

// DecodePhrase converts a FrequentPhrases key back to word ids.
func DecodePhrase(k string) []int { return decodeKey(k) }
