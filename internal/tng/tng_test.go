package tng

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"lesm/internal/synth"
)

func TestRunProducesPhrases(t *testing.T) {
	ds := synth.Arxiv(synth.TextConfig{NumDocs: 800, Seed: 41})
	docs := make([][]int, len(ds.Corpus.Docs))
	for i, d := range ds.Corpus.Docs {
		docs[i] = d.Tokens
	}
	m, err := Run(docs, ds.Corpus.Vocab.Size(), Config{K: 5, Iters: 60, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Phi) != 5 {
		t.Fatalf("phi rows = %d", len(m.Phi))
	}
	phrases := m.TopicalPhrases(ds.Corpus, 15)
	multi := 0
	for _, topic := range phrases {
		if len(topic) == 0 {
			t.Fatal("empty topic")
		}
		for _, p := range topic {
			if strings.Contains(p.Display, " ") {
				multi++
			}
		}
	}
	if multi == 0 {
		t.Fatal("TNG produced no multiword phrases")
	}
}

func TestStatusChainsShareTopic(t *testing.T) {
	ds := synth.Arxiv(synth.TextConfig{NumDocs: 300, Seed: 43})
	docs := make([][]int, len(ds.Corpus.Docs))
	for i, d := range ds.Corpus.Docs {
		docs[i] = d.Tokens
	}
	m, err := Run(docs, ds.Corpus.Vocab.Size(), Config{K: 4, Iters: 30, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	for d := range docs {
		for i := 1; i < len(docs[d]); i++ {
			if m.X[d][i] == 1 && m.Z[d][i] != m.Z[d][i-1] {
				t.Fatalf("doc %d pos %d: bigram continuation with different topic", d, i)
			}
		}
		if len(m.X[d]) > 0 && m.X[d][0] == 1 {
			t.Fatalf("doc %d starts with continuation status", d)
		}
	}
}

// TestRunDeterministicAcrossP pins the parallel-sampler contract the
// chunk/delta redesign brought over from internal/lda: chunk boundaries
// and per-document PRNG streams depend only on (seed, doc, sweep), and
// deltas merge in chunk order, so the fitted model must be bit-identical
// at P=1 and P=8.
func TestRunDeterministicAcrossP(t *testing.T) {
	ds := synth.Arxiv(synth.TextConfig{NumDocs: 300, Seed: 45})
	docs := make([][]int, len(ds.Corpus.Docs))
	for i, d := range ds.Corpus.Docs {
		docs[i] = d.Tokens
	}
	run := func(p int) *Model {
		m, err := Run(docs, ds.Corpus.Vocab.Size(), Config{K: 4, Iters: 20, Seed: 46, P: p})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	want := run(1)
	for _, p := range []int{2, 8} {
		if got := run(p); !reflect.DeepEqual(want, got) {
			t.Fatalf("P=%d model differs from P=1 model", p)
		}
	}
}

func TestRunValidatesInputs(t *testing.T) {
	if _, err := Run([][]int{{0}}, 3, Config{K: 0, Iters: 1}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := Run([][]int{{0}}, 0, Config{K: 2, Iters: 1}); err == nil {
		t.Fatal("empty vocabulary accepted")
	}
	if _, err := Run([][]int{{7}}, 3, Config{K: 2, Iters: 1}); err == nil {
		t.Fatal("out-of-range token accepted")
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	docs := [][]int{{0, 1, 2}, {1, 2, 0}}
	if m, err := Run(docs, 3, Config{K: 2, Iters: 10, Seed: 1, Ctx: ctx}); !errors.Is(err, context.Canceled) || m != nil {
		t.Fatalf("model=%v err=%v, want nil model and context.Canceled", m, err)
	}
}
