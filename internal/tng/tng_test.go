package tng

import (
	"strings"
	"testing"

	"lesm/internal/synth"
)

func TestRunProducesPhrases(t *testing.T) {
	ds := synth.Arxiv(synth.TextConfig{NumDocs: 800, Seed: 41})
	docs := make([][]int, len(ds.Corpus.Docs))
	for i, d := range ds.Corpus.Docs {
		docs[i] = d.Tokens
	}
	m := Run(docs, ds.Corpus.Vocab.Size(), Config{K: 5, Iters: 60, Seed: 42})
	if len(m.Phi) != 5 {
		t.Fatalf("phi rows = %d", len(m.Phi))
	}
	phrases := m.TopicalPhrases(ds.Corpus, 15)
	multi := 0
	for _, topic := range phrases {
		if len(topic) == 0 {
			t.Fatal("empty topic")
		}
		for _, p := range topic {
			if strings.Contains(p.Display, " ") {
				multi++
			}
		}
	}
	if multi == 0 {
		t.Fatal("TNG produced no multiword phrases")
	}
}

func TestStatusChainsShareTopic(t *testing.T) {
	ds := synth.Arxiv(synth.TextConfig{NumDocs: 300, Seed: 43})
	docs := make([][]int, len(ds.Corpus.Docs))
	for i, d := range ds.Corpus.Docs {
		docs[i] = d.Tokens
	}
	m := Run(docs, ds.Corpus.Vocab.Size(), Config{K: 4, Iters: 30, Seed: 44})
	for d := range docs {
		for i := 1; i < len(docs[d]); i++ {
			if m.X[d][i] == 1 && m.Z[d][i] != m.Z[d][i-1] {
				t.Fatalf("doc %d pos %d: bigram continuation with different topic", d, i)
			}
		}
		if len(m.X[d]) > 0 && m.X[d][0] == 1 {
			t.Fatalf("doc %d starts with continuation status", d)
		}
	}
}
