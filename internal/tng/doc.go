// Package tng implements a Topical N-Gram baseline (Wang, McCallum & Wei
// 2007) in the simplified form the paper's Chapter 4 comparisons require:
// a collapsed Gibbs sampler with a per-token bigram-status variable. When a
// token's status is 1 it continues a phrase with the previous token, draws
// its word from a (topic, previous-word)-specific bigram distribution, and
// shares the previous token's topic; consecutive status-1 tokens chain into
// n-grams ("these bigrams can be combined to form n-gram phrases").
//
// It also provides PYNgram, a Pitman-Yor-flavored variant standing in for
// PD-LDA (Lindsey et al. 2012): identical structure but with a discount on
// bigram table counts, and a deliberately heavier sampling loop — PD-LDA's
// hierarchical Pitman-Yor machinery is the reason the paper reports it as
// orders of magnitude slower (Table 4.5). See DESIGN.md §2 for the
// substitution note.
package tng
