package tng

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"lesm/internal/core"
	"lesm/internal/obs"
	"lesm/internal/par"
	"lesm/internal/rng"
	"lesm/internal/textkit"
)

// Config parameterizes the sampler.
type Config struct {
	K     int
	Alpha float64 // doc-topic prior (default 50/K)
	Beta  float64 // topic-word prior (default 0.01)
	Delta float64 // bigram-word prior (default 0.01)
	Gamma float64 // bigram-status Beta prior (default 1)
	Iters int     // default 150
	Seed  int64
	// Discount applies a Pitman-Yor-style discount to bigram counts
	// (PYNgram only).
	Discount float64
	// ExtraWork multiplies inner-loop work to emulate PD-LDA's CRP
	// bookkeeping cost (PYNgram only; 0 = none).
	ExtraWork int
	// P bounds the worker count of the parallel sweeps (0 = GOMAXPROCS).
	// The fitted model is bit-identical at any P.
	P int
	// Ctx cancels sampling between work chunks (nil = background); a
	// cancelled run returns the context error and no model.
	Ctx context.Context
	// Rec, when non-nil, receives one obs.SweepStats per sweep (Engine
	// "tng") plus pool telemetry. Observational only: the fitted model
	// is bit-identical with Rec set or nil at any P.
	Rec obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 50 / float64(c.K)
	}
	if c.Beta == 0 {
		c.Beta = 0.01
	}
	if c.Delta == 0 {
		c.Delta = 0.01
	}
	if c.Gamma == 0 {
		c.Gamma = 1
	}
	if c.Iters == 0 {
		c.Iters = 150
	}
	return c
}

// Model is the fitted n-gram topic model.
type Model struct {
	K int
	// Phi[k][v] is the unigram topic-word distribution.
	Phi [][]float64
	// Rho[k] is the topic share.
	Rho []float64
	// Z[d][i] and X[d][i] are the final topic and bigram-status assignments.
	Z, X [][]int
}

type bigramKey struct {
	topic, prev int
}

// trigramKey addresses one bigram-table cell (topic, prev word, word) —
// the flat key the chunk deltas use so a delta is a single map instead of
// a map of maps.
type trigramKey struct {
	topic, prev, word int
}

// tngDelta is one chunk's private diff against the sweep-start global
// tables: dense tables with a dirty list for the topic-word counts (merge
// cost O(cells touched)), dense merges for the small arrays, and flat maps
// for the sparse bigram tables (integer adds, so the map iteration order
// of the merge cannot change the result). The delta also holds read-only
// references to the frozen globals so the eff* accessors can answer
// "global + own-chunk delta" without per-document closures in the hot
// loop (the pattern internal/lda's sparseChunk uses).
type tngDelta struct {
	v       int
	kv      [][]int // [k][v]
	k       []int   // [k]
	touched []bool  // [k*v]
	dirty   []int
	n0, n1  []int // [v]
	big     map[trigramKey]int
	bigTot  map[bigramKey]int
	probs   []float64 // [2k] sampling scratch, reused across the chunk's docs
	// changed tallies (z, x) assignment changes for observability;
	// harvested per sweep only when a Recorder is attached and never
	// read by the sampling math.
	changed int64

	// Frozen sweep-start globals (read-only during a pass).
	gKV     [][]int
	gK      []int
	gN0     []int
	gN1     []int
	gBig    map[bigramKey]map[int]int
	gBigTot map[bigramKey]int
}

func newTngDelta(k, v int, gKV [][]int, gK, gN0, gN1 []int, gBig map[bigramKey]map[int]int, gBigTot map[bigramKey]int) *tngDelta {
	kv := make([][]int, k)
	for i := range kv {
		kv[i] = make([]int, v)
	}
	return &tngDelta{
		v: v, kv: kv, k: make([]int, k),
		touched: make([]bool, k*v),
		n0:      make([]int, v), n1: make([]int, v),
		big:    map[trigramKey]int{},
		bigTot: map[bigramKey]int{},
		probs:  make([]float64, 2*k),
		gKV:    gKV, gK: gK, gN0: gN0, gN1: gN1, gBig: gBig, gBigTot: gBigTot,
	}
}

// Effective counts: sweep-start global + own-chunk delta.
func (d *tngDelta) effKV(k, w int) int { return d.gKV[k][w] + d.kv[k][w] }
func (d *tngDelta) effK(k int) int     { return d.gK[k] + d.k[k] }
func (d *tngDelta) effN0(w int) int    { return d.gN0[w] + d.n0[w] }
func (d *tngDelta) effN1(w int) int    { return d.gN1[w] + d.n1[w] }
func (d *tngDelta) effBig(key bigramKey, w int) int {
	c := d.big[trigramKey{key.topic, key.prev, w}]
	if m := d.gBig[key]; m != nil {
		c += m[w]
	}
	return c
}
func (d *tngDelta) effBigTot(key bigramKey) int { return d.gBigTot[key] + d.bigTot[key] }

func (d *tngDelta) addKV(k, w, c int) {
	idx := k*d.v + w
	if !d.touched[idx] {
		d.touched[idx] = true
		d.dirty = append(d.dirty, idx)
	}
	d.kv[k][w] += c
	d.k[k] += c
}

func (d *tngDelta) addBig(key bigramKey, w, c int) {
	d.big[trigramKey{key.topic, key.prev, w}] += c
	d.bigTot[key] += c
}

// applyTo folds the delta into the global tables and resets it.
func (d *tngDelta) applyTo(nKV [][]int, nK []int, n0, n1 []int, big map[bigramKey]map[int]int, bigTot map[bigramKey]int) {
	for _, idx := range d.dirty {
		k, w := idx/d.v, idx%d.v
		if c := d.kv[k][w]; c != 0 {
			nKV[k][w] += c
			d.kv[k][w] = 0
		}
		d.touched[idx] = false
	}
	d.dirty = d.dirty[:0]
	for k, c := range d.k {
		nK[k] += c
		d.k[k] = 0
	}
	for w, c := range d.n0 {
		if c != 0 {
			n0[w] += c
			d.n0[w] = 0
		}
	}
	for w, c := range d.n1 {
		if c != 0 {
			n1[w] += c
			d.n1[w] = 0
		}
	}
	for tk, c := range d.big {
		if c == 0 {
			continue
		}
		key := bigramKey{tk.topic, tk.prev}
		m := big[key]
		if m == nil {
			m = map[int]int{}
			big[key] = m
		}
		m[tk.word] += c
	}
	for key, c := range d.bigTot {
		if c != 0 {
			bigTot[key] += c
		}
	}
	clear(d.big)
	clear(d.bigTot)
}

// Run fits the model to id-encoded documents.
//
// Like the internal/lda samplers, sweeps execute as chunked passes over
// the documents on the shared parallel runtime: the global count tables
// (topic-word, bigram, and status tables alike) are frozen for the pass,
// each chunk records its changes in a private delta and samples against
// global + own-chunk delta, and deltas merge in chunk order afterwards.
// Every document draws from its own (Seed, doc, sweep) SplitMix64 stream,
// so the fitted model is bit-identical at any Config.P. Run returns an
// error when the config or a token id is invalid, or when Config.Ctx is
// cancelled.
func Run(docs [][]int, v int, cfg Config) (*Model, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("tng: Config.K = %d, need at least 1 topic", cfg.K)
	}
	if v <= 0 {
		return nil, fmt.Errorf("tng: vocabulary size %d, need at least 1", v)
	}
	for di, doc := range docs {
		for i, w := range doc {
			if w < 0 || w >= v {
				return nil, fmt.Errorf("tng: doc %d token %d: word id %d outside vocabulary [0, %d)", di, i, w, v)
			}
		}
	}
	cfg = cfg.withDefaults()
	o := par.Opts{P: cfg.P, Ctx: cfg.Ctx}
	if cfg.Rec != nil {
		o.Obs = cfg.Rec
	}
	k := cfg.K
	d := len(docs)

	nDK := make([][]int, d)
	nKV := make([][]int, k)
	nK := make([]int, k)
	for i := range nKV {
		nKV[i] = make([]int, v)
	}
	// Bigram tables: counts of (topic, prev) -> word, and status counts per
	// previous word.
	big := map[bigramKey]map[int]int{}
	bigTot := map[bigramKey]int{}
	n1 := make([]int, v) // prev word continued
	n0 := make([]int, v) // prev word not continued

	z := make([][]int, d)
	x := make([][]int, d)

	// Chunk policy shared with internal/lda's samplers (par.SamplerChunks);
	// the per-chunk dense delta tables hold k*v cells each.
	nc := par.SamplerChunks(d, k*v)
	deltas := make([]*tngDelta, nc)
	for c := range deltas {
		deltas[c] = newTngDelta(k, v, nKV, nK, n0, n1, big, bigTot)
	}

	// pass runs one chunked pass and merges the deltas in chunk order.
	pass := func(sweep uint64, visit func(di int, st *rng.Stream, dl *tngDelta)) error {
		if d == 0 {
			return o.Err()
		}
		err := par.ForChunksN(o, d, nc, func(c, lo, hi int) {
			dl := deltas[c]
			for di := lo; di < hi; di++ {
				st := rng.NewStream(cfg.Seed, uint64(di), sweep)
				visit(di, &st, dl)
			}
		})
		if err != nil {
			return err
		}
		for _, dl := range deltas {
			dl.applyTo(nKV, nK, n0, n1, big, bigTot)
		}
		return nil
	}

	err := pass(0, func(di int, st *rng.Stream, dl *tngDelta) {
		doc := docs[di]
		z[di] = make([]int, len(doc))
		x[di] = make([]int, len(doc))
		nDK[di] = make([]int, k)
		for i, w := range doc {
			zi := st.Intn(k)
			xi := 0
			if i > 0 && st.Float64() < 0.2 {
				xi = 1
				zi = z[di][i-1]
			}
			z[di][i], x[di][i] = zi, xi
			nDK[di][zi]++
			if xi == 0 {
				dl.addKV(zi, w, 1)
			} else {
				dl.addBig(bigramKey{zi, doc[i-1]}, w, 1)
			}
			if i > 0 {
				if xi == 1 {
					dl.n1[doc[i-1]]++
				} else {
					dl.n0[doc[i-1]]++
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}

	vb := float64(v) * cfg.Beta
	vd := float64(v) * cfg.Delta
	var totTok int64
	if cfg.Rec != nil {
		for _, doc := range docs {
			totTok += int64(len(doc))
		}
	}
	for it := 0; it < cfg.Iters; it++ {
		var t0 time.Time
		if cfg.Rec != nil {
			t0 = time.Now()
		}
		err := pass(uint64(it+1), func(di int, st *rng.Stream, dl *tngDelta) {
			doc := docs[di]
			probs := dl.probs
			for i, w := range doc {
				zi, xi := z[di][i], x[di][i]
				zOld, xOld := zi, xi
				// Remove token.
				nDK[di][zi]--
				if xi == 0 {
					dl.addKV(zi, w, -1)
				} else {
					dl.addBig(bigramKey{zi, doc[i-1]}, w, -1)
				}
				if i > 0 {
					if xi == 1 {
						dl.n1[doc[i-1]]--
					} else {
						dl.n0[doc[i-1]]--
					}
				}
				// Joint sample of (x, z). x=1 allowed only mid-document
				// and ties the topic to the previous token's topic.
				total := 0.0
				for kk := 0; kk < k; kk++ {
					p := (float64(nDK[di][kk]) + cfg.Alpha) *
						(float64(dl.effKV(kk, w)) + cfg.Beta) / (float64(dl.effK(kk)) + vb)
					if i > 0 {
						p *= float64(dl.effN0(doc[i-1])) + cfg.Gamma
					}
					probs[kk] = p
					total += p
				}
				if i > 0 {
					prevZ := z[di][i-1]
					key := bigramKey{prevZ, doc[i-1]}
					cnt := float64(dl.effBig(key, w))
					if cnt < 0 {
						cnt = 0
					}
					disc := cfg.Discount
					bw := cnt - disc
					if bw < 0 {
						bw = 0
					}
					p := (float64(nDK[di][prevZ]) + cfg.Alpha) *
						(bw + cfg.Delta) / (float64(dl.effBigTot(key)) + vd) *
						(float64(dl.effN1(doc[i-1])) + cfg.Gamma)
					probs[k+prevZ] = p
					total += p
					for kk := 0; kk < k; kk++ {
						if kk != prevZ {
							probs[k+kk] = 0
						}
					}
				} else {
					for kk := 0; kk < k; kk++ {
						probs[k+kk] = 0
					}
				}
				if cfg.ExtraWork > 0 {
					// Emulate CRP table bookkeeping cost.
					s := 0.0
					for e := 0; e < cfg.ExtraWork; e++ {
						for kk := 0; kk < 2*k; kk++ {
							s += probs[kk] * float64(e+1)
						}
					}
					_ = s
				}
				r := st.Float64() * total
				pick := 0
				for idx := 0; idx < 2*k; idx++ {
					r -= probs[idx]
					if r <= 0 {
						pick = idx
						break
					}
				}
				if pick < k {
					zi, xi = pick, 0
				} else {
					zi, xi = pick-k, 1
				}
				if zi != zOld || xi != xOld {
					dl.changed++
				}
				z[di][i], x[di][i] = zi, xi
				nDK[di][zi]++
				if xi == 0 {
					dl.addKV(zi, w, 1)
				} else {
					dl.addBig(bigramKey{zi, doc[i-1]}, w, 1)
				}
				if i > 0 {
					if xi == 1 {
						dl.n1[doc[i-1]]++
					} else {
						dl.n0[doc[i-1]]++
					}
				}
			}
		})
		if err != nil {
			return nil, err
		}
		if cfg.Rec != nil {
			var changed int64
			for _, dl := range deltas {
				changed += dl.changed
				dl.changed = 0
			}
			ch := nc
			if d < ch {
				ch = d
			}
			cfg.Rec.RecordSweep(obs.SweepStats{
				Engine:        "tng",
				Sweep:         it + 1,
				Sweeps:        cfg.Iters,
				Docs:          d,
				Tokens:        totTok,
				Changed:       changed,
				Chunks:        ch,
				SweepTime:     time.Since(t0),
				LogLikelihood: math.NaN(),
			})
		}
	}

	m := &Model{K: k, Z: z, X: x}
	m.Phi = make([][]float64, k)
	total := 0
	for kk := 0; kk < k; kk++ {
		m.Phi[kk] = make([]float64, v)
		for w := 0; w < v; w++ {
			m.Phi[kk][w] = (float64(nKV[kk][w]) + cfg.Beta) / (float64(nK[kk]) + vb)
		}
		total += nK[kk]
	}
	m.Rho = make([]float64, k)
	for kk := 0; kk < k; kk++ {
		if total > 0 {
			m.Rho[kk] = float64(nK[kk]) / float64(total)
		} else {
			m.Rho[kk] = 1 / float64(k)
		}
	}
	return m, nil
}

// TopicalPhrases extracts the maximal status-1 runs as phrases and ranks
// them per topic by frequency.
func (m *Model) TopicalPhrases(corpus *textkit.Corpus, topN int) [][]core.RankedPhrase {
	counts := make([]map[string]int, m.K)
	repr := make([]map[string][]int, m.K)
	for k := range counts {
		counts[k] = map[string]int{}
		repr[k] = map[string][]int{}
	}
	for di, doc := range corpus.Docs {
		toks := doc.Tokens
		i := 0
		for i < len(toks) {
			j := i + 1
			for j < len(toks) && m.X[di][j] == 1 {
				j++
			}
			k := m.Z[di][i]
			phrase := toks[i:j]
			key := corpus.Phrase(phrase)
			counts[k][key]++
			repr[k][key] = phrase
			i = j
		}
	}
	out := make([][]core.RankedPhrase, m.K)
	for k := range counts {
		var ps []core.RankedPhrase
		for key, c := range counts[k] {
			ps = append(ps, core.RankedPhrase{Words: repr[k][key], Display: key, Score: float64(c)})
		}
		sort.SliceStable(ps, func(a, b int) bool {
			if ps[a].Score != ps[b].Score {
				return ps[a].Score > ps[b].Score
			}
			return ps[a].Display < ps[b].Display
		})
		if topN > 0 && len(ps) > topN {
			ps = ps[:topN]
		}
		out[k] = ps
	}
	return out
}
