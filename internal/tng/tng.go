package tng

import (
	"math/rand"
	"sort"

	"lesm/internal/core"
	"lesm/internal/textkit"
)

// Config parameterizes the sampler.
type Config struct {
	K     int
	Alpha float64 // doc-topic prior (default 50/K)
	Beta  float64 // topic-word prior (default 0.01)
	Delta float64 // bigram-word prior (default 0.01)
	Gamma float64 // bigram-status Beta prior (default 1)
	Iters int     // default 150
	Seed  int64
	// Discount applies a Pitman-Yor-style discount to bigram counts
	// (PYNgram only).
	Discount float64
	// ExtraWork multiplies inner-loop work to emulate PD-LDA's CRP
	// bookkeeping cost (PYNgram only; 0 = none).
	ExtraWork int
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 50 / float64(c.K)
	}
	if c.Beta == 0 {
		c.Beta = 0.01
	}
	if c.Delta == 0 {
		c.Delta = 0.01
	}
	if c.Gamma == 0 {
		c.Gamma = 1
	}
	if c.Iters == 0 {
		c.Iters = 150
	}
	return c
}

// Model is the fitted n-gram topic model.
type Model struct {
	K int
	// Phi[k][v] is the unigram topic-word distribution.
	Phi [][]float64
	// Rho[k] is the topic share.
	Rho []float64
	// Z[d][i] and X[d][i] are the final topic and bigram-status assignments.
	Z, X [][]int
}

type bigramKey struct {
	topic, prev int
}

// Run fits the model to id-encoded documents.
func Run(docs [][]int, v int, cfg Config) *Model {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := cfg.K
	d := len(docs)

	nDK := make([][]int, d)
	nKV := make([][]int, k)
	nK := make([]int, k)
	for i := range nKV {
		nKV[i] = make([]int, v)
	}
	// Bigram tables: counts of (topic, prev) -> word, and status counts per
	// previous word.
	big := map[bigramKey]map[int]int{}
	bigTot := map[bigramKey]int{}
	n1 := make([]int, v) // prev word continued
	n0 := make([]int, v) // prev word not continued

	z := make([][]int, d)
	x := make([][]int, d)
	for di, doc := range docs {
		z[di] = make([]int, len(doc))
		x[di] = make([]int, len(doc))
		nDK[di] = make([]int, k)
		for i, w := range doc {
			zi := rng.Intn(k)
			xi := 0
			if i > 0 && rng.Float64() < 0.2 {
				xi = 1
				zi = z[di][i-1]
			}
			z[di][i], x[di][i] = zi, xi
			nDK[di][zi]++
			if xi == 0 {
				nKV[zi][w]++
				nK[zi]++
			} else {
				key := bigramKey{zi, doc[i-1]}
				if big[key] == nil {
					big[key] = map[int]int{}
				}
				big[key][w]++
				bigTot[key]++
			}
			if i > 0 {
				if xi == 1 {
					n1[doc[i-1]]++
				} else {
					n0[doc[i-1]]++
				}
			}
		}
	}

	vb := float64(v) * cfg.Beta
	vd := float64(v) * cfg.Delta
	probs := make([]float64, 2*k)
	for it := 0; it < cfg.Iters; it++ {
		for di, doc := range docs {
			for i, w := range doc {
				zi, xi := z[di][i], x[di][i]
				// Remove token.
				nDK[di][zi]--
				if xi == 0 {
					nKV[zi][w]--
					nK[zi]--
				} else {
					key := bigramKey{zi, doc[i-1]}
					big[key][w]--
					bigTot[key]--
				}
				if i > 0 {
					if xi == 1 {
						n1[doc[i-1]]--
					} else {
						n0[doc[i-1]]--
					}
				}
				// Joint sample of (x, z). x=1 allowed only mid-document
				// and ties the topic to the previous token's topic.
				total := 0.0
				for kk := 0; kk < k; kk++ {
					p := (float64(nDK[di][kk]) + cfg.Alpha) *
						(float64(nKV[kk][w]) + cfg.Beta) / (float64(nK[kk]) + vb)
					if i > 0 {
						p *= float64(n0[doc[i-1]]) + cfg.Gamma
					}
					probs[kk] = p
					total += p
				}
				if i > 0 {
					prevZ := z[di][i-1]
					key := bigramKey{prevZ, doc[i-1]}
					cnt := 0.0
					if m := big[key]; m != nil {
						cnt = float64(m[w])
					}
					if cnt < 0 {
						cnt = 0
					}
					disc := cfg.Discount
					bw := cnt - disc
					if bw < 0 {
						bw = 0
					}
					p := (float64(nDK[di][prevZ]) + cfg.Alpha) *
						(bw + cfg.Delta) / (float64(bigTot[key]) + vd) *
						(float64(n1[doc[i-1]]) + cfg.Gamma)
					probs[k+prevZ] = p
					total += p
					for kk := 0; kk < k; kk++ {
						if kk != prevZ {
							probs[k+kk] = 0
						}
					}
				} else {
					for kk := 0; kk < k; kk++ {
						probs[k+kk] = 0
					}
				}
				if cfg.ExtraWork > 0 {
					// Emulate CRP table bookkeeping cost.
					s := 0.0
					for e := 0; e < cfg.ExtraWork; e++ {
						for kk := 0; kk < 2*k; kk++ {
							s += probs[kk] * float64(e+1)
						}
					}
					_ = s
				}
				r := rng.Float64() * total
				pick := 0
				for idx := 0; idx < 2*k; idx++ {
					r -= probs[idx]
					if r <= 0 {
						pick = idx
						break
					}
				}
				if pick < k {
					zi, xi = pick, 0
				} else {
					zi, xi = pick-k, 1
				}
				z[di][i], x[di][i] = zi, xi
				nDK[di][zi]++
				if xi == 0 {
					nKV[zi][w]++
					nK[zi]++
				} else {
					key := bigramKey{zi, doc[i-1]}
					if big[key] == nil {
						big[key] = map[int]int{}
					}
					big[key][w]++
					bigTot[key]++
				}
				if i > 0 {
					if xi == 1 {
						n1[doc[i-1]]++
					} else {
						n0[doc[i-1]]++
					}
				}
			}
		}
	}

	m := &Model{K: k, Z: z, X: x}
	m.Phi = make([][]float64, k)
	total := 0
	for kk := 0; kk < k; kk++ {
		m.Phi[kk] = make([]float64, v)
		for w := 0; w < v; w++ {
			m.Phi[kk][w] = (float64(nKV[kk][w]) + cfg.Beta) / (float64(nK[kk]) + vb)
		}
		total += nK[kk]
	}
	m.Rho = make([]float64, k)
	for kk := 0; kk < k; kk++ {
		if total > 0 {
			m.Rho[kk] = float64(nK[kk]) / float64(total)
		} else {
			m.Rho[kk] = 1 / float64(k)
		}
	}
	return m
}

// TopicalPhrases extracts the maximal status-1 runs as phrases and ranks
// them per topic by frequency.
func (m *Model) TopicalPhrases(corpus *textkit.Corpus, topN int) [][]core.RankedPhrase {
	counts := make([]map[string]int, m.K)
	repr := make([]map[string][]int, m.K)
	for k := range counts {
		counts[k] = map[string]int{}
		repr[k] = map[string][]int{}
	}
	for di, doc := range corpus.Docs {
		toks := doc.Tokens
		i := 0
		for i < len(toks) {
			j := i + 1
			for j < len(toks) && m.X[di][j] == 1 {
				j++
			}
			k := m.Z[di][i]
			phrase := toks[i:j]
			key := corpus.Phrase(phrase)
			counts[k][key]++
			repr[k][key] = phrase
			i = j
		}
	}
	out := make([][]core.RankedPhrase, m.K)
	for k := range counts {
		var ps []core.RankedPhrase
		for key, c := range counts[k] {
			ps = append(ps, core.RankedPhrase{Words: repr[k][key], Display: key, Score: float64(c)})
		}
		sort.SliceStable(ps, func(a, b int) bool {
			if ps[a].Score != ps[b].Score {
				return ps[a].Score > ps[b].Score
			}
			return ps[a].Display < ps[b].Display
		})
		if topN > 0 && len(ps) > topN {
			ps = ps[:topN]
		}
		out[k] = ps
	}
	return out
}
