package core

import (
	"fmt"
	"sort"
	"strings"
)

// TypeID identifies a node type in a heterogeneous network (e.g. term,
// author, venue). Type 0 is the term (word) type by convention.
type TypeID int

// TermType is the node type holding vocabulary terms by convention.
const TermType TypeID = 0

// RankedPhrase is a phrase together with the score that ranked it within a
// topic. Words holds the vocabulary ids of the constituent words; Display is
// the human-readable surface form.
type RankedPhrase struct {
	Words   []int
	Display string
	Score   float64
}

// RankedEntity is an entity (node of some non-term type) ranked within a
// topic.
type RankedEntity struct {
	ID      int
	Display string
	Score   float64
}

// TopicNode is one topic in a topical hierarchy. Every non-leaf topic has
// Children subtopics; each topic carries a per-type distribution over nodes
// (phi), a share of its parent's links (rho), and, once visualization has
// run, ranked phrases and entities.
type TopicNode struct {
	// Path denotes the topic by the top-down path from the root, e.g. "o",
	// "o/1", "o/1/2" (Section 3.1 notation).
	Path string
	// Level is the number of '/' in Path: the root is level 0.
	Level int
	// Rho is the expected fraction of the parent topic's links attributed to
	// this topic (rho_{pi(t),chi(t)}); 1 for the root.
	Rho float64
	// Phi[x] is the ranking distribution over type-x nodes in this topic
	// (phi^x_t). Phi[TermType] is the word distribution.
	Phi map[TypeID][]float64
	// Phrases is the ordered list of representative phrases (P_t).
	Phrases []RankedPhrase
	// Entities[x] is the ordered list of representative type-x entities.
	Entities map[TypeID][]RankedEntity
	// Children are the subtopics, indexed 1..C_t in Path notation.
	Children []*TopicNode

	parent *TopicNode
}

// Hierarchy is a phrase-represented, entity-enriched topical hierarchy
// (Definition 2). TypeNames maps TypeID to a human-readable type name.
type Hierarchy struct {
	Root      *TopicNode
	TypeNames map[TypeID]string
}

// NewHierarchy returns a hierarchy with a fresh root topic denoted "o".
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		Root:      &TopicNode{Path: "o", Rho: 1, Phi: map[TypeID][]float64{}, Entities: map[TypeID][]RankedEntity{}},
		TypeNames: map[TypeID]string{TermType: "term"},
	}
}

// AddChild appends a new subtopic under t and returns it. The child path
// extends the parent path with the 1-based child index.
func (t *TopicNode) AddChild() *TopicNode {
	c := &TopicNode{
		Path:     fmt.Sprintf("%s/%d", t.Path, len(t.Children)+1),
		Level:    t.Level + 1,
		Phi:      map[TypeID][]float64{},
		Entities: map[TypeID][]RankedEntity{},
		parent:   t,
	}
	t.Children = append(t.Children, c)
	return c
}

// Parent returns the parent topic, or nil for the root.
func (t *TopicNode) Parent() *TopicNode { return t.parent }

// Walk visits t and all descendants in depth-first pre-order.
func (t *TopicNode) Walk(visit func(*TopicNode)) {
	visit(t)
	for _, c := range t.Children {
		c.Walk(visit)
	}
}

// Leaves returns all leaf topics below (and possibly including) t in
// pre-order.
func (t *TopicNode) Leaves() []*TopicNode {
	var out []*TopicNode
	t.Walk(func(n *TopicNode) {
		if len(n.Children) == 0 {
			out = append(out, n)
		}
	})
	return out
}

// Find returns the topic with the given path under t, or nil.
func (t *TopicNode) Find(path string) *TopicNode {
	var found *TopicNode
	t.Walk(func(n *TopicNode) {
		if n.Path == path {
			found = n
		}
	})
	return found
}

// Height returns the maximal level over all topics in the subtree rooted at
// t, relative to the absolute levels stored in the nodes.
func (t *TopicNode) Height() int {
	h := t.Level
	t.Walk(func(n *TopicNode) {
		if n.Level > h {
			h = n.Level
		}
	})
	return h
}

// Size returns the number of topics in the subtree rooted at t.
func (t *TopicNode) Size() int {
	n := 0
	t.Walk(func(*TopicNode) { n++ })
	return n
}

// TopPhrases returns the display strings of the first k ranked phrases.
func (t *TopicNode) TopPhrases(k int) []string {
	if k > len(t.Phrases) {
		k = len(t.Phrases)
	}
	out := make([]string, 0, k)
	for _, p := range t.Phrases[:k] {
		out = append(out, p.Display)
	}
	return out
}

// TopEntities returns the display strings of the first k ranked type-x
// entities.
func (t *TopicNode) TopEntities(x TypeID, k int) []string {
	es := t.Entities[x]
	if k > len(es) {
		k = len(es)
	}
	out := make([]string, 0, k)
	for _, e := range es[:k] {
		out = append(out, e.Display)
	}
	return out
}

// SortPhrases orders the topic's phrase list by descending score,
// breaking ties by display string for determinism.
func (t *TopicNode) SortPhrases() {
	sort.SliceStable(t.Phrases, func(i, j int) bool {
		if t.Phrases[i].Score != t.Phrases[j].Score {
			return t.Phrases[i].Score > t.Phrases[j].Score
		}
		return t.Phrases[i].Display < t.Phrases[j].Display
	})
}

// String renders the hierarchy as an indented tree of topic paths and top
// phrases, suitable for terminal output.
func (h *Hierarchy) String() string {
	var b strings.Builder
	var rec func(n *TopicNode, depth int)
	rec = func(n *TopicNode, depth int) {
		fmt.Fprintf(&b, "%s%s", strings.Repeat("  ", depth), n.Path)
		if ps := n.TopPhrases(5); len(ps) > 0 {
			fmt.Fprintf(&b, ": %s", strings.Join(ps, " / "))
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(h.Root, 0)
	return b.String()
}
