// Package core defines the shared output structures of the latent entity
// structure mining framework: phrase-represented, entity-enriched topical
// hierarchies (Definition 2 of the paper) and ranked lists of phrases and
// entities attached to each topic.
//
// All mining engines in this module (CATHY, CATHYHIN, STROD) emit values of
// these types, and the downstream analyses (topical phrase mining, entity
// role analysis) consume and enrich them.
package core
