package core

// SubtopicShares computes p(t/z | P, t) for every child z of t given a
// phrase P (Eq. 4.3 / Eq. 4.8): the probability that an occurrence of P in
// topic t belongs to subtopic z, assuming each word of the phrase is
// generated independently from the subtopic's word distribution and the
// subtopic priors are the rho values.
//
// The returned slice has one entry per child and sums to 1 (uniform if all
// children assign zero probability).
func (t *TopicNode) SubtopicShares(words []int) []float64 {
	k := len(t.Children)
	shares := make([]float64, k)
	if k == 0 {
		return shares
	}
	total := 0.0
	for z, c := range t.Children {
		phi := c.Phi[TermType]
		p := c.Rho
		for _, w := range words {
			if w < len(phi) {
				p *= phi[w]
			} else {
				p = 0
			}
		}
		shares[z] = p
		total += p
	}
	if total <= 0 {
		for z := range shares {
			shares[z] = 1 / float64(k)
		}
		return shares
	}
	for z := range shares {
		shares[z] /= total
	}
	return shares
}

// AttributeFrequency distributes a phrase's frequency at topic t down the
// hierarchy (Definition 3: topical frequency): it returns a map from topic
// path to f_topic(P), where f at each node is the parent's frequency times
// the node's share. The map includes t itself with the given frequency.
func (t *TopicNode) AttributeFrequency(words []int, freq float64) map[string]float64 {
	out := map[string]float64{}
	var rec func(n *TopicNode, f float64)
	rec = func(n *TopicNode, f float64) {
		out[n.Path] = f
		if len(n.Children) == 0 || f == 0 {
			for _, c := range n.Children {
				out[c.Path] = 0
			}
			return
		}
		shares := n.SubtopicShares(words)
		for z, c := range n.Children {
			rec(c, f*shares[z])
		}
	}
	rec(t, freq)
	return out
}
