package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func buildTree() *Hierarchy {
	h := NewHierarchy()
	a := h.Root.AddChild()
	b := h.Root.AddChild()
	a1 := a.AddChild()
	a.AddChild()
	_ = a1
	_ = b
	return h
}

func TestPathNotation(t *testing.T) {
	h := buildTree()
	if h.Root.Path != "o" {
		t.Fatalf("root path = %q", h.Root.Path)
	}
	if h.Root.Children[0].Path != "o/1" || h.Root.Children[1].Path != "o/2" {
		t.Fatalf("child paths = %q %q", h.Root.Children[0].Path, h.Root.Children[1].Path)
	}
	if h.Root.Children[0].Children[1].Path != "o/1/2" {
		t.Fatalf("grandchild path = %q", h.Root.Children[0].Children[1].Path)
	}
	if h.Root.Children[0].Children[1].Level != 2 {
		t.Fatalf("level = %d", h.Root.Children[0].Children[1].Level)
	}
}

func TestWalkLeavesFindSize(t *testing.T) {
	h := buildTree()
	if h.Root.Size() != 5 {
		t.Fatalf("size = %d", h.Root.Size())
	}
	if got := len(h.Root.Leaves()); got != 3 {
		t.Fatalf("leaves = %d", got)
	}
	if h.Root.Find("o/1/2") == nil {
		t.Fatal("Find failed")
	}
	if h.Root.Find("o/9") != nil {
		t.Fatal("Find should miss")
	}
	if h.Root.Height() != 2 {
		t.Fatalf("height = %d", h.Root.Height())
	}
	if h.Root.Children[0].Parent() != h.Root {
		t.Fatal("parent link broken")
	}
}

func TestSortAndTopPhrases(t *testing.T) {
	n := &TopicNode{Phrases: []RankedPhrase{
		{Display: "b", Score: 1},
		{Display: "a", Score: 3},
		{Display: "c", Score: 2},
	}}
	n.SortPhrases()
	if got := n.TopPhrases(2); got[0] != "a" || got[1] != "c" {
		t.Fatalf("top = %v", got)
	}
	if got := n.TopPhrases(10); len(got) != 3 {
		t.Fatalf("overlong top = %v", got)
	}
}

func TestTopEntities(t *testing.T) {
	n := &TopicNode{Entities: map[TypeID][]RankedEntity{
		1: {{ID: 4, Display: "x"}, {ID: 2, Display: "y"}},
	}}
	if got := n.TopEntities(1, 1); len(got) != 1 || got[0] != "x" {
		t.Fatalf("entities = %v", got)
	}
	if got := n.TopEntities(2, 3); got != nil && len(got) != 0 {
		t.Fatalf("missing type should be empty, got %v", got)
	}
}

func TestHierarchyString(t *testing.T) {
	h := buildTree()
	h.Root.Children[0].Phrases = []RankedPhrase{{Display: "query processing", Score: 1}}
	s := h.String()
	if !strings.Contains(s, "o/1: query processing") {
		t.Fatalf("render missing phrases:\n%s", s)
	}
	if strings.Count(s, "\n") != 5 {
		t.Fatalf("render lines = %d", strings.Count(s, "\n"))
	}
}

func TestSubtopicSharesProperties(t *testing.T) {
	// Property: shares always form a distribution, for any phi values.
	f := func(p1, p2, p3 uint8, w uint8) bool {
		n := &TopicNode{}
		a := n.AddChild()
		b := n.AddChild()
		a.Rho = 0.5
		b.Rho = 0.5
		a.Phi = map[TypeID][]float64{TermType: {float64(p1) / 255, float64(p2) / 255}}
		b.Phi = map[TypeID][]float64{TermType: {float64(p3) / 255, 0.1}}
		shares := n.SubtopicShares([]int{int(w) % 2})
		s := 0.0
		for _, v := range shares {
			if v < 0 {
				return false
			}
			s += v
		}
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAttributeFrequencyConserves(t *testing.T) {
	n := &TopicNode{Path: "o"}
	a := n.AddChild()
	b := n.AddChild()
	a.Rho, b.Rho = 0.6, 0.4
	a.Phi = map[TypeID][]float64{TermType: {0.9, 0.1}}
	b.Phi = map[TypeID][]float64{TermType: {0.1, 0.9}}
	freqs := n.AttributeFrequency([]int{0}, 10)
	if freqs["o"] != 10 {
		t.Fatalf("root freq = %v", freqs["o"])
	}
	if math.Abs(freqs["o/1"]+freqs["o/2"]-10) > 1e-9 {
		t.Fatalf("children sum to %v", freqs["o/1"]+freqs["o/2"])
	}
	if freqs["o/1"] <= freqs["o/2"] {
		t.Fatalf("word 0 should mostly go to o/1: %v vs %v", freqs["o/1"], freqs["o/2"])
	}
	// Unknown word (out of phi range) -> uniform fallback.
	uf := n.AttributeFrequency([]int{99}, 4)
	if math.Abs(uf["o/1"]-2) > 1e-9 {
		t.Fatalf("fallback share = %v", uf["o/1"])
	}
}
