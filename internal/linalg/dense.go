package linalg

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense allocates a zeroed Rows x Cols matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view of row i (shared storage).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns a*b; it panics on dimension mismatch since that is a
// programming error, not a data error.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range brow {
				crow[j] += av * brow[j]
			}
		}
	}
	return c
}

// MulVec returns a * x as a new vector.
func (m *Dense) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d * %d", m.Rows, m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Scale multiplies every element of x by s in place.
func Scale(x []float64, s float64) {
	for i := range x {
		x[i] *= s
	}
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	for i := range x {
		y[i] += a * x[i]
	}
}

// Normalize scales x to unit Euclidean norm in place and returns the
// original norm; a zero vector is left unchanged.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n > 0 {
		Scale(x, 1/n)
	}
	return n
}

// SumTo1 scales a nonnegative vector to sum to one in place. A zero vector
// becomes uniform.
func SumTo1(x []float64) {
	s := 0.0
	for _, v := range x {
		s += v
	}
	if s <= 0 {
		for i := range x {
			x[i] = 1 / float64(len(x))
		}
		return
	}
	Scale(x, 1/s)
}

// ClipToSimplex zeroes negative entries and renormalizes to the probability
// simplex, the standard post-processing after moment-based topic recovery.
func ClipToSimplex(x []float64) {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
	SumTo1(x)
}
