package linalg

import "testing"

// Alias-table microbenchmarks: the Gibbs samplers rebuild one table per
// vocabulary word per sweep (Build, amortized over the corpus's tokens)
// and consume one Draw per token landing in the q bucket.

func BenchmarkAliasBuild256(b *testing.B) {
	weights := make([]float64, 256)
	for i := range weights {
		weights[i] = 1 / float64(i+1)
	}
	out := make([]int32, 256)
	for i := range out {
		out[i] = int32(i)
	}
	prob := make([]float64, 256)
	alias := make([]int32, 256)
	var bl AliasBuilder
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl.Build(out, weights, prob, alias)
	}
}

func BenchmarkAliasDraw(b *testing.B) {
	weights := make([]float64, 256)
	for i := range weights {
		weights[i] = 1 / float64(i+1)
	}
	a := NewAlias(weights)
	s := uint64(1)
	b.ResetTimer()
	acc := 0
	for i := 0; i < b.N; i++ {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		u := float64((z^(z>>31))>>11) / (1 << 53)
		acc += a.Draw(u)
	}
	_ = acc
}
