package linalg

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"lesm/internal/par"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMulAndTranspose(t *testing.T) {
	a := &Dense{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	b := &Dense{Rows: 3, Cols: 2, Data: []float64{7, 8, 9, 10, 11, 12}}
	c := Mul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if !almostEqual(c.Data[i], v, 1e-12) {
			t.Fatalf("Mul = %v, want %v", c.Data, want)
		}
	}
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 {
		t.Fatalf("transpose wrong: %+v", at)
	}
}

func TestMulVec(t *testing.T) {
	a := &Dense{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}
	y := a.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
}

func randomSymmetric(n int, rng *rand.Rand) *Dense {
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func TestSymEigReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		n := 3 + trial
		a := randomSymmetric(n, rng)
		vals, vecs := SymEig(a)
		// Check A v_i = lambda_i v_i for each column.
		for c := 0; c < n; c++ {
			v := make([]float64, n)
			for r := 0; r < n; r++ {
				v[r] = vecs.At(r, c)
			}
			av := a.MulVec(v)
			for r := 0; r < n; r++ {
				if !almostEqual(av[r], vals[c]*v[r], 1e-8) {
					t.Fatalf("trial %d: eigenpair %d violated: %v vs %v", trial, c, av[r], vals[c]*v[r])
				}
			}
		}
		// Descending order.
		for c := 1; c < n; c++ {
			if vals[c] > vals[c-1]+1e-12 {
				t.Fatalf("eigenvalues not sorted: %v", vals)
			}
		}
	}
}

func TestSymEigOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomSymmetric(6, rng)
	_, vecs := SymEig(a)
	vtv := Mul(vecs.T(), vecs)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(vtv.At(i, j), want, 1e-9) {
				t.Fatalf("V^T V not identity at (%d,%d): %v", i, j, vtv.At(i, j))
			}
		}
	}
}

func TestTopKEigSymMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, k := 12, 3
	// PSD matrix: B B^T.
	b := NewDense(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := Mul(b, b.T())
	fullVals, _ := SymEig(a)
	apply := func(dst, src []float64) { copy(dst, a.MulVec(src)) }
	vals, vecs := TopKEigSym(n, k, apply, 100, rng)
	for i := 0; i < k; i++ {
		if !almostEqual(vals[i], fullVals[i], 1e-6*math.Max(1, fullVals[0])) {
			t.Fatalf("top-%d eigenvalue %v != %v", i, vals[i], fullVals[i])
		}
	}
	// Residual check.
	for c := 0; c < k; c++ {
		v := make([]float64, n)
		for r := 0; r < n; r++ {
			v[r] = vecs.At(r, c)
		}
		av := a.MulVec(v)
		for r := 0; r < n; r++ {
			if !almostEqual(av[r], vals[c]*v[r], 1e-5*math.Max(1, fullVals[0])) {
				t.Fatalf("top-k eigenpair %d residual too large", c)
			}
		}
	}
}

func TestGramSchmidtProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := 8, 4
		q := NewDense(n, k)
		for i := range q.Data {
			q.Data[i] = rng.NormFloat64()
		}
		GramSchmidt(q, rng)
		qtq := Mul(q.T(), q)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEqual(qtq.At(i, j), want, 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
	Normalize(x)
	if !almostEqual(Norm2(x), 1, 1e-12) {
		t.Fatalf("normalized norm = %v", Norm2(x))
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if !almostEqual(y[0], 1+2*0.6, 1e-12) {
		t.Fatalf("Axpy = %v", y)
	}
	z := []float64{-1, 2, 3}
	ClipToSimplex(z)
	if z[0] != 0 || !almostEqual(z[1]+z[2], 1, 1e-12) {
		t.Fatalf("ClipToSimplex = %v", z)
	}
	u := []float64{0, 0}
	SumTo1(u)
	if u[0] != 0.5 || u[1] != 0.5 {
		t.Fatalf("SumTo1 zero vector = %v", u)
	}
}

func TestTensorOuterAndApply(t *testing.T) {
	k := 3
	tt := NewTensor3(k)
	x := []float64{1, 2, 0}
	tt.AddOuter3(2, x, x, x)
	if tt.At(1, 1, 1) != 16 {
		t.Fatalf("At(1,1,1) = %v, want 16", tt.At(1, 1, 1))
	}
	if tt.At(0, 1, 1) != 8 {
		t.Fatalf("At(0,1,1) = %v, want 8", tt.At(0, 1, 1))
	}
	v := []float64{1, 1, 1}
	dst := make([]float64, k)
	tt.Apply2(dst, v)
	// T(I,v,v)_i = 2 * x_i * (x.v)^2 = 2*x_i*9
	if dst[0] != 18 || dst[1] != 36 || dst[2] != 0 {
		t.Fatalf("Apply2 = %v", dst)
	}
	if got := tt.Apply3(v, v, v); got != 54 {
		t.Fatalf("Apply3 = %v", got)
	}
}

func TestTensorPowerRecoversOrthogonalDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := 4
	// Build T = sum_i lambda_i e_i^{⊗3} in a random orthonormal basis.
	q := NewDense(k, k)
	for i := range q.Data {
		q.Data[i] = rng.NormFloat64()
	}
	GramSchmidt(q, rng)
	lambdas := []float64{5, 3, 2, 1}
	tt := NewTensor3(k)
	cols := make([][]float64, k)
	for c := 0; c < k; c++ {
		v := make([]float64, k)
		for r := 0; r < k; r++ {
			v[r] = q.At(r, c)
		}
		cols[c] = v
		tt.AddOuter3(lambdas[c], v, v, v)
	}
	recovered := map[int]bool{}
	for iter := 0; iter < k; iter++ {
		v, lambda, err := tt.PowerIteration(10, 60, rng, par.Opts{})
		if err != nil {
			t.Fatal(err)
		}
		// Find which ground-truth component this matches.
		found := -1
		for c := 0; c < k; c++ {
			d := math.Abs(Dot(v, cols[c]))
			if d > 0.99 {
				found = c
			}
		}
		if found < 0 {
			t.Fatalf("iteration %d recovered no ground-truth direction (lambda=%v)", iter, lambda)
		}
		if recovered[found] {
			t.Fatalf("component %d recovered twice", found)
		}
		recovered[found] = true
		if !almostEqual(lambda, lambdas[found], 0.05) {
			t.Fatalf("lambda %v, want %v", lambda, lambdas[found])
		}
		tt.Deflate(lambda, v)
	}
}

func TestTopK(t *testing.T) {
	v := []float64{0.2, 0.5, 0.2, 0.9}
	if got := TopK(v, 3); !reflect.DeepEqual(got, []int{3, 1, 0}) {
		t.Fatalf("TopK = %v, want [3 1 0] (tie to lower index)", got)
	}
	if got := TopK(v, 10); !reflect.DeepEqual(got, []int{3, 1, 0, 2}) {
		t.Fatalf("overlong n = %v", got)
	}
	if got := TopK(v, 0); got != nil {
		t.Fatalf("n=0 gave %v", got)
	}
	if got := TopK(nil, 5); got != nil {
		t.Fatalf("empty input gave %v", got)
	}
	// Agreement with a full sort on a larger input.
	big := make([]float64, 400)
	for i := range big {
		big[i] = float64((i * 7919) % 97)
	}
	got := TopK(big, 25)
	idx := make([]int, len(big))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if big[idx[a]] != big[idx[b]] {
			return big[idx[a]] > big[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if !reflect.DeepEqual(got, idx[:25]) {
		t.Fatalf("TopK disagrees with full sort:\n%v\n%v", got, idx[:25])
	}
}
