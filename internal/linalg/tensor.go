package linalg

import (
	"math/rand"

	"lesm/internal/par"
)

// Tensor3 is a dense symmetric-use 3-mode tensor of dimension K x K x K,
// stored flat. STROD's whitened third moment lives here (K = number of
// topics, small).
type Tensor3 struct {
	K    int
	Data []float64
}

// NewTensor3 allocates a zeroed K x K x K tensor.
func NewTensor3(k int) *Tensor3 {
	return &Tensor3{K: k, Data: make([]float64, k*k*k)}
}

// At returns element (i, j, l).
func (t *Tensor3) At(i, j, l int) float64 { return t.Data[(i*t.K+j)*t.K+l] }

// Add increments element (i, j, l) by v.
func (t *Tensor3) Add(i, j, l int, v float64) { t.Data[(i*t.K+j)*t.K+l] += v }

// AddOuter3 adds w * x ⊗ y ⊗ z to the tensor.
func (t *Tensor3) AddOuter3(w float64, x, y, z []float64) {
	k := t.K
	for i := 0; i < k; i++ {
		wi := w * x[i]
		if wi == 0 {
			continue
		}
		base := i * k * k
		for j := 0; j < k; j++ {
			wij := wi * y[j]
			if wij == 0 {
				continue
			}
			row := t.Data[base+j*k : base+(j+1)*k]
			for l := 0; l < k; l++ {
				row[l] += wij * z[l]
			}
		}
	}
}

// AddSym3 adds w times the symmetrization of x ⊗ x ⊗ y over the three mode
// placements of y: x⊗x⊗y + x⊗y⊗x + y⊗x⊗x.
func (t *Tensor3) AddSym3(w float64, x, y []float64) {
	t.AddOuter3(w, x, x, y)
	t.AddOuter3(w, x, y, x)
	t.AddOuter3(w, y, x, x)
}

// Apply2 computes dst = T(I, v, v): dst_i = sum_{j,l} T[i,j,l] v_j v_l.
func (t *Tensor3) Apply2(dst, v []float64) {
	k := t.K
	for i := 0; i < k; i++ {
		s := 0.0
		base := i * k * k
		for j := 0; j < k; j++ {
			vj := v[j]
			if vj == 0 {
				continue
			}
			row := t.Data[base+j*k : base+(j+1)*k]
			inner := 0.0
			for l := 0; l < k; l++ {
				inner += row[l] * v[l]
			}
			s += vj * inner
		}
		dst[i] = s
	}
}

// Apply3 computes T(u, v, w) = sum_{i,j,l} T[i,j,l] u_i v_j w_l.
func (t *Tensor3) Apply3(u, v, w []float64) float64 {
	k := t.K
	s := 0.0
	for i := 0; i < k; i++ {
		ui := u[i]
		if ui == 0 {
			continue
		}
		base := i * k * k
		for j := 0; j < k; j++ {
			vj := v[j]
			if vj == 0 {
				continue
			}
			row := t.Data[base+j*k : base+(j+1)*k]
			inner := 0.0
			for l := 0; l < k; l++ {
				inner += row[l] * w[l]
			}
			s += ui * vj * inner
		}
	}
	return s
}

// Deflate subtracts lambda * v ⊗ v ⊗ v in place.
func (t *Tensor3) Deflate(lambda float64, v []float64) {
	t.AddOuter3(-lambda, v, v, v)
}

// PowerIteration runs the robust tensor power method (Anandkumar et al.;
// Section 7.3.1) on t: nTrials random restarts of nIters power updates,
// keeping the candidate with the largest eigenvalue, then polishing it with
// nIters further updates. It returns the eigenvector and eigenvalue.
//
// Trials are independent, so they run on the shared worker pool: the start
// vectors are drawn from rng up front (preserving the serial random stream),
// each trial iterates in its own scratch, and the winner is selected by
// (eigenvalue, then lowest trial index) — the same answer the serial scan
// produces, at any parallelism level.
func (t *Tensor3) PowerIteration(nTrials, nIters int, rng *rand.Rand, o par.Opts) ([]float64, float64, error) {
	k := t.K
	starts := make([][]float64, nTrials)
	for trial := range starts {
		v := make([]float64, k)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		Normalize(v)
		starts[trial] = v
	}
	lambdas := make([]float64, nTrials)
	err := par.For(o, nTrials, func(lo, hi int) {
		next := make([]float64, k)
		for trial := lo; trial < hi; trial++ {
			cur := starts[trial]
			for it := 0; it < nIters; it++ {
				t.Apply2(next, cur)
				if Normalize(next) == 0 {
					break
				}
				copy(cur, next)
			}
			lambdas[trial] = t.Apply3(cur, cur, cur)
		}
	})
	if err != nil {
		return nil, 0, err
	}
	best := make([]float64, k)
	bestLambda := 0.0
	for trial := 0; trial < nTrials; trial++ {
		if lambdas[trial] > bestLambda {
			bestLambda = lambdas[trial]
			copy(best, starts[trial])
		}
	}
	// Polish the winning candidate.
	cur := make([]float64, k)
	next := make([]float64, k)
	copy(cur, best)
	for it := 0; it < nIters; it++ {
		t.Apply2(next, cur)
		if Normalize(next) == 0 {
			break
		}
		copy(cur, next)
	}
	lambda := t.Apply3(cur, cur, cur)
	if lambda > bestLambda {
		bestLambda = lambda
		copy(best, cur)
	}
	return best, bestLambda, nil
}
