package linalg

// Walker alias tables: O(1) draws from a fixed discrete distribution after
// an O(n) build (Walker 1977, with Vose's stable construction). The Gibbs
// samplers use one table per vocabulary word for the dense word-proposal
// bucket, rebuilt once per sweep from the frozen global count tables, so
// the build is written to run allocation-free against caller-provided
// backing storage (AliasBuilder) and the table itself is a value type that
// can live inside a per-word slice.

// Alias is a built alias table over n weighted outcomes. The zero value is
// an empty table with Total 0; Draw must not be called on it.
type Alias struct {
	n int
	// prob[i] is the acceptance threshold of column i in [0, 1]; a draw
	// landing in column i with intra-column position >= prob[i] is
	// redirected to alias[i].
	prob  []float64
	alias []int32
	// out maps column indices to outcome ids; nil means the identity
	// (outcome i is i).
	out []int32
	// Total is the sum of the input weights — the distribution's
	// unnormalized mass, which bucket-decomposed samplers need to weigh
	// this table against their other buckets.
	Total float64
}

// N returns the number of outcomes.
func (a *Alias) N() int { return a.n }

// Empty reports whether the table has no drawable mass.
func (a *Alias) Empty() bool { return a.n == 0 || a.Total <= 0 }

// Draw maps one uniform variate u in [0, 1) to an outcome id. A single
// variate drives both the column choice and the accept/redirect test (the
// standard one-uniform trick), so callers consume exactly one PRNG step
// per draw — the determinism contract's bookkeeping stays trivial.
func (a *Alias) Draw(u float64) int {
	f := u * float64(a.n)
	i := int(f)
	if i >= a.n { // u == 1-ulp rounding up
		i = a.n - 1
	}
	if f-float64(i) >= a.prob[i] {
		i = int(a.alias[i])
	}
	if a.out != nil {
		return int(a.out[i])
	}
	return i
}

// Mass returns the exact probability mass the built table assigns to each
// column (before the out mapping), for verification: column i contributes
// prob[i]/n to itself and (1-prob[i])/n to alias[i]. A correct build makes
// Mass()[i] == weights[i]/Total up to float rounding.
func (a *Alias) Mass() []float64 {
	mass := make([]float64, a.n)
	inv := 1 / float64(a.n)
	for i := 0; i < a.n; i++ {
		mass[i] += a.prob[i] * inv
		mass[int(a.alias[i])] += (1 - a.prob[i]) * inv
	}
	return mass
}

// AliasBuilder builds alias tables, reusing its internal worklists across
// builds. The zero value is ready to use; a builder must not be shared
// across goroutines.
type AliasBuilder struct {
	small, large []int32
}

// NewAlias builds a standalone table over weights with identity outcomes.
// Weights must be nonnegative; all-zero weights yield an empty table.
func NewAlias(weights []float64) *Alias {
	var b AliasBuilder
	a := b.Build(nil, weights, nil, nil)
	return &a
}

// Build constructs the table for the given nonnegative weights. out, when
// non-nil, supplies the outcome id of each weight (and is retained by the
// table, not copied). prob and alias, when non-nil, must have len(weights)
// and become the table's backing storage — callers batching many small
// tables (one per vocabulary word) slice them out of two shared arrays;
// nil allocates fresh storage.
//
// The construction is Vose's: scale weights to mean 1, pair each
// deficient column with a surplus one. Worklists fill in ascending index
// order and pop from the end, so the built table — and with it every
// sampled trajectory — is a pure function of the weights.
func (b *AliasBuilder) Build(out []int32, weights []float64, prob []float64, alias []int32) Alias {
	n := len(weights)
	if prob == nil {
		prob = make([]float64, n)
	}
	if alias == nil {
		alias = make([]int32, n)
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if n == 0 || total <= 0 {
		return Alias{}
	}
	scale := float64(n) / total
	b.small = b.small[:0]
	b.large = b.large[:0]
	for i, w := range weights {
		prob[i] = w * scale
		alias[i] = int32(i)
		if prob[i] < 1 {
			b.small = append(b.small, int32(i))
		} else {
			b.large = append(b.large, int32(i))
		}
	}
	for len(b.small) > 0 && len(b.large) > 0 {
		s := b.small[len(b.small)-1]
		b.small = b.small[:len(b.small)-1]
		l := b.large[len(b.large)-1]
		alias[s] = l
		// Column l donates (1 - prob[s]) of its surplus to column s.
		prob[l] -= 1 - prob[s]
		if prob[l] < 1 {
			b.large = b.large[:len(b.large)-1]
			b.small = append(b.small, l)
		}
	}
	// Leftovers on either list sit at (or within rounding of) exactly 1.
	for _, i := range b.large {
		prob[i] = 1
	}
	for _, i := range b.small {
		prob[i] = 1
	}
	return Alias{n: n, prob: prob, alias: alias, out: out, Total: total}
}
