package linalg

import (
	"math"
	"math/rand"
	"sort"
)

// SymEig computes the full eigendecomposition of the symmetric matrix a
// using the cyclic Jacobi method. It returns eigenvalues in descending order
// and the corresponding eigenvectors as the columns of the returned matrix.
// a is not modified.
func SymEig(a *Dense) (vals []float64, vecs *Dense) {
	n := a.Rows
	m := a.Clone()
	v := NewDense(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-24 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-18 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/cols p and q of m.
				for k := 0; k < n; k++ {
					akp, akq := m.At(k, p), m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := m.At(p, k), m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m.At(i, i)
	}
	// Sort by descending eigenvalue, permuting eigenvector columns.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewDense(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs
}

// GramSchmidt orthonormalizes the columns of q in place using the modified
// Gram-Schmidt process. Columns that become numerically zero are replaced by
// deterministic pseudo-random unit vectors re-orthogonalized against the
// previous columns.
func GramSchmidt(q *Dense, rng *rand.Rand) {
	n, k := q.Rows, q.Cols
	col := make([]float64, n)
	getCol := func(j int) {
		for i := 0; i < n; i++ {
			col[i] = q.At(i, j)
		}
	}
	setCol := func(j int) {
		for i := 0; i < n; i++ {
			q.Set(i, j, col[i])
		}
	}
	for j := 0; j < k; j++ {
		getCol(j)
		for attempt := 0; ; attempt++ {
			for p := 0; p < j; p++ {
				dot := 0.0
				for i := 0; i < n; i++ {
					dot += col[i] * q.At(i, p)
				}
				for i := 0; i < n; i++ {
					col[i] -= dot * q.At(i, p)
				}
			}
			if Normalize(col) > 1e-12 || attempt > 3 {
				break
			}
			for i := range col {
				col[i] = rng.NormFloat64()
			}
		}
		setCol(j)
	}
}

// TopKEigSym computes the k algebraically largest eigenpairs of an n x n
// symmetric positive semi-definite operator given only as a matrix-vector
// product apply(dst, src) (dst = A*src). It uses orthogonal (subspace)
// iteration with a Rayleigh-Ritz projection, which converges geometrically
// for PSD operators and never materializes A — the scalability device of
// Section 7.3.2.
//
// It returns eigenvalues in descending order and eigenvectors as columns.
func TopKEigSym(n, k int, apply func(dst, src []float64), iters int, rng *rand.Rand) ([]float64, *Dense) {
	if k > n {
		k = n
	}
	q := NewDense(n, k)
	for i := range q.Data {
		q.Data[i] = rng.NormFloat64()
	}
	GramSchmidt(q, rng)
	src := make([]float64, n)
	dst := make([]float64, n)
	aq := NewDense(n, k)
	for it := 0; it < iters; it++ {
		for j := 0; j < k; j++ {
			for i := 0; i < n; i++ {
				src[i] = q.At(i, j)
			}
			apply(dst, src)
			for i := 0; i < n; i++ {
				aq.Set(i, j, dst[i])
			}
		}
		copy(q.Data, aq.Data)
		GramSchmidt(q, rng)
	}
	// Rayleigh-Ritz: B = Q^T A Q (k x k), eigendecompose, rotate Q.
	b := NewDense(k, k)
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			src[i] = q.At(i, j)
		}
		apply(dst, src)
		for l := 0; l < k; l++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += q.At(i, l) * dst[i]
			}
			b.Set(l, j, s)
		}
	}
	// Symmetrize to wash out numerical asymmetry.
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			m := (b.At(i, j) + b.At(j, i)) / 2
			b.Set(i, j, m)
			b.Set(j, i, m)
		}
	}
	vals, rot := SymEig(b)
	vecs := Mul(q, rot)
	return vals, vecs
}
