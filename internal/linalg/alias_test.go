package linalg

import (
	"math"
	"testing"
)

// TestAliasExactDistributionSmall verifies the table exactly on small
// outcome sets: the built (prob, alias) pair induces a closed-form
// probability per outcome (column i keeps prob[i]/n, donates the rest to
// alias[i]); that measure must equal weights/total up to float rounding,
// for a battery of shapes including zeros and extreme skew.
func TestAliasExactDistributionSmall(t *testing.T) {
	cases := [][]float64{
		{1},
		{1, 1},
		{1, 0},
		{0.25, 0.75},
		{3, 1, 2},
		{0, 0, 5, 0},
		{1e-9, 1, 1e9},
		{2, 2, 2, 2, 2},
		{0.1, 0.2, 0.3, 0.4, 0, 1.5},
	}
	for ci, weights := range cases {
		a := NewAlias(weights)
		total := 0.0
		for _, w := range weights {
			total += w
		}
		if math.Abs(a.Total-total) > 1e-12*total {
			t.Fatalf("case %d: Total = %v, want %v", ci, a.Total, total)
		}
		mass := a.Mass()
		for i, w := range weights {
			want := w / total
			if math.Abs(mass[i]-want) > 1e-12 {
				t.Fatalf("case %d outcome %d: table mass %v, want %v", ci, i, mass[i], want)
			}
		}
	}
}

// TestAliasDrawGridMatchesMass drives Draw over an exhaustive fine grid of
// uniform variates and checks the empirical outcome frequencies against
// the table's analytic mass — exercising the one-uniform column+threshold
// decoding path, not just the construction.
func TestAliasDrawGridMatchesMass(t *testing.T) {
	weights := []float64{3, 0, 1, 2, 0.5}
	a := NewAlias(weights)
	const grid = 200000
	counts := make([]int, len(weights))
	for i := 0; i < grid; i++ {
		u := (float64(i) + 0.5) / grid
		counts[a.Draw(u)]++
	}
	for i, w := range weights {
		want := w / a.Total
		got := float64(counts[i]) / grid
		// The grid quantizes each column boundary to 1/grid; n columns
		// contribute at most n boundary cells of error per outcome.
		if math.Abs(got-want) > float64(2*len(weights))/grid {
			t.Fatalf("outcome %d: grid frequency %v, want %v", i, got, want)
		}
	}
}

// TestAliasGoodnessOfFitLargeK draws from a 500-outcome power-law table
// with a deterministic PRNG and applies a chi-square test against the
// expected counts (threshold ~ df + 4*sqrt(2*df), far beyond the 99.9th
// percentile — the test guards against gross bias, not noise).
func TestAliasGoodnessOfFitLargeK(t *testing.T) {
	const k = 500
	weights := make([]float64, k)
	for i := range weights {
		weights[i] = 1 / float64(i+1)
	}
	a := NewAlias(weights)
	const draws = 2_000_000
	counts := make([]int, k)
	// SplitMix64, inlined to keep linalg dependency-free.
	s := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return float64((z^(z>>31))>>11) / (1 << 53)
	}
	for i := 0; i < draws; i++ {
		counts[a.Draw(next())]++
	}
	chi2 := 0.0
	for i, w := range weights {
		exp := w / a.Total * draws
		d := float64(counts[i]) - exp
		chi2 += d * d / exp
	}
	df := float64(k - 1)
	if limit := df + 4*math.Sqrt(2*df); chi2 > limit {
		t.Fatalf("chi-square %v exceeds %v (df %v): alias draws are biased", chi2, limit, df)
	}
}

// TestAliasOutcomeMapping checks the sparse-outcome form used by the
// Gibbs samplers (CSC segments with explicit topic ids) and backing-store
// reuse.
func TestAliasOutcomeMapping(t *testing.T) {
	out := []int32{7, 2, 9}
	weights := []float64{1, 2, 1}
	prob := make([]float64, 3)
	alias := make([]int32, 3)
	var b AliasBuilder
	a := b.Build(out, weights, prob, alias)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		u := (float64(i) + 0.5) / 1000
		got := a.Draw(u)
		if got != 7 && got != 2 && got != 9 {
			t.Fatalf("Draw returned %d, not an outcome id", got)
		}
		seen[got] = true
	}
	if len(seen) != 3 {
		t.Fatalf("outcomes seen = %v, want all of 7, 2, 9", seen)
	}
}

func TestAliasEmpty(t *testing.T) {
	if a := NewAlias(nil); !a.Empty() {
		t.Fatal("nil-weight table not empty")
	}
	if a := NewAlias([]float64{0, 0}); !a.Empty() {
		t.Fatal("zero-weight table not empty")
	}
	var b AliasBuilder
	if a := b.Build(nil, []float64{1}, nil, nil); a.Empty() {
		t.Fatal("singleton table reported empty")
	}
}

func TestIndexSet(t *testing.T) {
	s := NewIndexSet(8)
	if s.Len() != 0 {
		t.Fatal("fresh set not empty")
	}
	s.Add(3)
	s.Add(5)
	s.Add(3) // duplicate: no-op
	if s.Len() != 2 || !s.Has(3) || !s.Has(5) || s.Has(0) {
		t.Fatalf("after adds: len=%d", s.Len())
	}
	s.Remove(3)
	s.Remove(3) // absent: no-op
	if s.Len() != 1 || s.Has(3) || !s.Has(5) {
		t.Fatalf("after remove: len=%d", s.Len())
	}
	s.Add(0)
	s.Add(7)
	got := map[int32]bool{}
	for _, i := range s.Indices() {
		got[i] = true
	}
	if len(got) != 3 || !got[0] || !got[5] || !got[7] {
		t.Fatalf("indices = %v", s.Indices())
	}
	s.Clear()
	if s.Len() != 0 || s.Has(5) {
		t.Fatal("clear left members behind")
	}
	// Reusable after Clear.
	s.Add(2)
	if s.Len() != 1 || !s.Has(2) {
		t.Fatal("set unusable after Clear")
	}
}
