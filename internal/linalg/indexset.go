package linalg

// IndexSet tracks the set of nonzero positions of an external counter
// vector with O(1) add and remove — the sparse count-list primitive behind
// the Gibbs samplers' per-document topic lists. The sampler keeps its
// dense counts (nDK) as the source of truth and mirrors the support here,
// so bucket walks touch only the K_d topics a document actually uses
// instead of all K.
//
// Membership changes use swap-delete, so Indices() order depends on the
// exact operation history — which the samplers make a pure function of
// (seed, corpus), preserving the determinism contract.
type IndexSet struct {
	nz  []int32
	pos []int32 // pos[i] = index of i in nz, or -1 when absent
}

// NewIndexSet returns an empty set over the universe [0, n).
func NewIndexSet(n int) *IndexSet {
	s := &IndexSet{nz: make([]int32, 0, n), pos: make([]int32, n)}
	for i := range s.pos {
		s.pos[i] = -1
	}
	return s
}

// Len returns the number of members.
func (s *IndexSet) Len() int { return len(s.nz) }

// Indices returns the members in internal order. The slice is owned by the
// set and invalidated by the next Add/Remove/Clear.
func (s *IndexSet) Indices() []int32 { return s.nz }

// Has reports membership of i.
func (s *IndexSet) Has(i int) bool { return s.pos[i] >= 0 }

// Add inserts i; a no-op if already present.
func (s *IndexSet) Add(i int) {
	if s.pos[i] >= 0 {
		return
	}
	s.pos[i] = int32(len(s.nz))
	s.nz = append(s.nz, int32(i))
}

// Remove deletes i by swapping the last member into its slot; a no-op if
// absent.
func (s *IndexSet) Remove(i int) {
	p := s.pos[i]
	if p < 0 {
		return
	}
	last := s.nz[len(s.nz)-1]
	s.nz[p] = last
	s.pos[last] = p
	s.nz = s.nz[:len(s.nz)-1]
	s.pos[i] = -1
}

// Clear empties the set in O(members).
func (s *IndexSet) Clear() {
	for _, i := range s.nz {
		s.pos[i] = -1
	}
	s.nz = s.nz[:0]
}
