// Package linalg is a small dense linear-algebra substrate built on the
// standard library only. It provides exactly what the moment-based topic
// inference (Chapter 7, STROD) and the relational CRF need: dense
// matrix/vector arithmetic, a cyclic-Jacobi symmetric eigensolver, orthogonal
// iteration for the top-k eigenpairs of implicitly defined symmetric
// operators, and 3-mode tensor utilities.
package linalg
