package linalg

import (
	"math"
	"testing"

	"lesm/internal/par"
)

// buildSet runs the Count/Layout/Put/Build protocol over a dense column-
// major matrix m[col][id], skipping zeros.
func buildSet(t *testing.T, s *AliasSet, m [][]float64) {
	t.Helper()
	s.Reset(len(m))
	for c, col := range m {
		for _, w := range col {
			if w > 0 {
				s.Count(c)
			}
		}
	}
	s.Layout()
	for c, col := range m {
		for id, w := range col {
			if w > 0 {
				s.Put(c, int32(id), w)
			}
		}
	}
	if err := s.Build(par.Opts{}); err != nil {
		t.Fatal(err)
	}
}

func TestAliasSetBuildAndWeight(t *testing.T) {
	m := [][]float64{
		{0, 3, 0, 1.5, 0.25}, // mixed zeros and weights
		{},                   // no entries at all
		{0, 0, 0, 0, 0},      // all-zero column
		{7},                  // single entry
	}
	var s AliasSet
	buildSet(t, &s, m)

	if s.Cols() != 4 {
		t.Fatalf("Cols() = %d, want 4", s.Cols())
	}
	for c, col := range m {
		wantMass := 0.0
		for _, w := range col {
			wantMass += w
		}
		if math.Abs(s.Mass[c]-wantMass) > 1e-12 {
			t.Fatalf("Mass[%d] = %v, want %v", c, s.Mass[c], wantMass)
		}
		for id := 0; id < 6; id++ {
			want := 0.0
			if id < len(col) {
				want = col[id]
			}
			if got := s.Weight(c, int32(id)); got != want {
				t.Fatalf("Weight(%d, %d) = %v, want %v", c, id, got, want)
			}
		}
	}
	// Empty columns draw nothing; non-empty columns draw only stored ids
	// with the right long-run frequencies (exact via the grid trick: the
	// alias draw partitions [0,1) into n equal columns).
	if !s.Tab[1].Empty() || !s.Tab[2].Empty() {
		t.Fatal("empty columns must yield empty tables")
	}
	const grid = 1 << 16
	hist := make([]float64, 5)
	for i := 0; i < grid; i++ {
		hist[s.Tab[0].Draw((float64(i)+0.5)/grid)]++
	}
	for id, w := range m[0] {
		got := hist[id] / grid
		want := w / s.Mass[0]
		if math.Abs(got-want) > 2e-3 {
			t.Fatalf("column 0 id %d drawn with frequency %v, want %v", id, got, want)
		}
	}
}

// TestAliasSetReuseAcrossBuilds pins the double-buffer contract the MH
// sampler relies on: a rebuild with different contents (including a
// different column count) must fully supersede the previous build, with
// the backing storage reused.
func TestAliasSetReuseAcrossBuilds(t *testing.T) {
	var s AliasSet
	buildSet(t, &s, [][]float64{{1, 2, 3}, {4, 5}})
	buildSet(t, &s, [][]float64{{0, 9}})
	if s.Cols() != 1 {
		t.Fatalf("Cols() = %d after rebuild, want 1", s.Cols())
	}
	if s.Mass[0] != 9 {
		t.Fatalf("Mass[0] = %v after rebuild, want 9", s.Mass[0])
	}
	if got := s.Weight(0, 0); got != 0 {
		t.Fatalf("Weight(0, 0) = %v after rebuild, want 0 (entry gone)", got)
	}
	if got := s.Weight(0, 1); got != 9 {
		t.Fatalf("Weight(0, 1) = %v after rebuild, want 9", got)
	}
	if s.Tab[0].Draw(0.37) != 1 {
		t.Fatal("rebuilt single-entry column must always draw id 1")
	}
}
