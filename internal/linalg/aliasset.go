package linalg

import (
	"sort"

	"lesm/internal/par"
)

// AliasSet is a family of Walker alias tables over the columns of a sparse
// nonnegative matrix held in CSC form — one table per column, all backed by
// four shared arrays sized to the matrix's nonzeros. The Gibbs samplers use
// one instance per vocabulary (column = word, entry id = topic): the sparse
// core rebuilds its q-bucket tables through it every sweep, and the MH core
// keeps two instances double-buffered so a background rebuild never blocks
// a sweep (see internal/lda/mh.go).
//
// A build is three passes over the owner's nonzeros:
//
//	s.Reset(cols)                  // clear tallies, keep backing storage
//	s.Count(col)   per nonzero     // tally column sizes
//	s.Layout()                     // offsets + array sizing
//	s.Put(col, id, weight)         // fill, ids ascending per column
//	s.Build(o)                     // per-column table builds on the pool
//
// Each column's table build is independent, so Build parallelizes without
// affecting the result; the whole set is a pure function of the Put calls.
type AliasSet struct {
	// Mass[c] is column c's total weight — the mass bucket-decomposed
	// samplers weigh the table against their other buckets, and the MH
	// core's proposal normalizer.
	Mass []float64
	// Tab[c] is column c's alias table; its Draw returns entry ids.
	Tab []Alias

	cols int
	cnt  []int
	off  []int

	ids     []int32
	weights []float64
	prob    []float64
	alias   []int32
}

// Cols returns the column count of the last Reset.
func (s *AliasSet) Cols() int { return s.cols }

// Reset prepares the set for a new build over cols columns, retaining all
// backing storage from earlier builds.
func (s *AliasSet) Reset(cols int) {
	s.cols = cols
	if cap(s.Mass) < cols {
		s.Mass = make([]float64, cols)
		s.Tab = make([]Alias, cols)
		s.cnt = make([]int, cols)
		s.off = make([]int, cols+1)
	}
	s.Mass = s.Mass[:cols]
	s.Tab = s.Tab[:cols]
	s.cnt = s.cnt[:cols]
	s.off = s.off[:cols+1]
	for c := range s.cnt {
		s.cnt[c] = 0
	}
}

// Count tallies one nonzero of column col during the counting pass.
func (s *AliasSet) Count(col int) { s.cnt[col]++ }

// Layout turns the tallies into column offsets and sizes the shared entry
// arrays. cnt is reused as the fill cursor for Put. Offsets are int, not
// int32: the nonzero count is bounded by the owner's token count, and a
// production-scale fit can push that past 2^31 — an int32 accumulator
// would wrap and index the shared arrays negatively.
func (s *AliasSet) Layout() {
	s.off[0] = 0
	for c := 0; c < s.cols; c++ {
		s.off[c+1] = s.off[c] + s.cnt[c]
		s.cnt[c] = 0
	}
	nnz := s.off[s.cols]
	if cap(s.ids) < nnz {
		s.ids = make([]int32, nnz)
		s.weights = make([]float64, nnz)
		s.prob = make([]float64, nnz)
		s.alias = make([]int32, nnz)
	}
	s.ids = s.ids[:nnz]
	s.weights = s.weights[:nnz]
	s.prob = s.prob[:nnz]
	s.alias = s.alias[:nnz]
}

// Put appends entry (id, weight) to column col during the fill pass. Ids
// must arrive in ascending order within each column — Weight binary-
// searches them — which row-major scans of a (row=id, col) matrix produce
// naturally.
func (s *AliasSet) Put(col int, id int32, weight float64) {
	i := s.off[col] + s.cnt[col]
	s.cnt[col]++
	s.ids[i] = id
	s.weights[i] = weight
}

// Build constructs every column's alias table on the shared pool and
// records the column masses. Columns with no entries get the empty table
// (Mass 0).
func (s *AliasSet) Build(o par.Opts) error {
	return par.For(o, s.cols, func(lo, hi int) {
		var b AliasBuilder
		for c := lo; c < hi; c++ {
			f, e := s.off[c], s.off[c+1]
			if f == e {
				s.Tab[c] = Alias{}
				s.Mass[c] = 0
				continue
			}
			s.Tab[c] = b.Build(s.ids[f:e], s.weights[f:e], s.prob[f:e], s.alias[f:e])
			s.Mass[c] = s.Tab[c].Total
		}
	})
}

// Weight returns the weight column col assigned to id at build time, 0
// when the column has no such entry. O(log n_col) — the MH samplers call
// it to evaluate their stale proposal density at arbitrary ids.
func (s *AliasSet) Weight(col int, id int32) float64 {
	f, e := s.off[col], s.off[col+1]
	ids := s.ids[f:e]
	i := sort.Search(len(ids), func(j int) bool { return ids[j] >= id })
	if i < len(ids) && ids[i] == id {
		return s.weights[f+i]
	}
	return 0
}
