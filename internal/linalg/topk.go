package linalg

// TopK returns the indices of the n largest values of v in descending
// order, ties broken toward the lower index. Selection keeps a size-n
// min-heap over v — O(len(v) log n) instead of the O(len(v) log len(v))
// full sort — which matters when callers ask for ~10 entries out of
// vocabulary-sized rows (TopicModel.TopWords, the lesmd top-words
// endpoint). n is clamped to len(v); n <= 0 returns nil.
func TopK(v []float64, n int) []int {
	if n > len(v) {
		n = len(v)
	}
	if n <= 0 {
		return nil
	}
	// less orders the heap worst-first: lower value, ties broken by HIGHER
	// index so that the lowest-index entry among equals survives.
	less := func(a, b int) bool {
		if v[a] != v[b] {
			return v[a] < v[b]
		}
		return a > b
	}
	heap := make([]int, 0, n)
	siftUp := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !less(heap[i], heap[parent]) {
				break
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	siftDown := func(i int) {
		for {
			small := i
			if l := 2*i + 1; l < len(heap) && less(heap[l], heap[small]) {
				small = l
			}
			if r := 2*i + 2; r < len(heap) && less(heap[r], heap[small]) {
				small = r
			}
			if small == i {
				return
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
	}
	for w := range v {
		if len(heap) < n {
			heap = append(heap, w)
			siftUp(len(heap) - 1)
		} else if less(heap[0], w) {
			heap[0] = w
			siftDown(0)
		}
	}
	// Drain worst-first into the output back-to-front.
	out := make([]int, len(heap))
	for i := len(heap) - 1; i >= 0; i-- {
		out[i] = heap[0]
		heap[0] = heap[len(heap)-1]
		heap = heap[:len(heap)-1]
		siftDown(0)
	}
	return out
}
